// Reduced-configuration leader-kill torture as a unit test; the full
// matrix (60-step stream, every kill point) runs as
// tools/nidc_crash_torture --leader-kill in CI.

#include "nidc/repl/torture.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::string TortureDir(const std::string& name) {
  return testing::TempDir() + "/nidc_leader_kill_test_" + name;
}

TEST(LeaderKillTortureTest, EarlyKillPointsPromoteBitIdentically) {
  // The first ~30 kill points cover the opening rotation (which ships the
  // follower's base snapshot), the first WAL appends + live record ships,
  // and the first checkpoint seal, under all three crash-flush policies.
  repl::LeaderKillOptions options;
  options.torture.dir = TortureDir("early_leader");
  options.follower_dir = TortureDir("early_follower");
  options.torture.num_steps = 12;
  options.torture.checkpoint_every = 4;
  options.torture.max_kill_points = 30;
  Result<TortureReport> report = repl::RunLeaderKillTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->kill_points_exercised, 30u);
  EXPECT_EQ(report->recoveries, 30u);
}

TEST(LeaderKillTortureTest, TinyShipQueueStillPromotesBitIdentically) {
  // A queue of one record forces snapshot/park catch-up paths whenever a
  // follower session is not perfectly in sync; the bit-identical promise
  // must not depend on the queue bound.
  repl::LeaderKillOptions options;
  options.torture.dir = TortureDir("queue_leader");
  options.follower_dir = TortureDir("queue_follower");
  options.torture.num_steps = 10;
  options.torture.checkpoint_every = 3;
  options.torture.max_kill_points = 20;
  options.max_queue_records = 1;
  Result<TortureReport> report = repl::RunLeaderKillTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->kill_points_exercised, 20u);
}

}  // namespace
}  // namespace nidc
