#include "nidc/util/status.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto f = []() -> Status {
    NIDC_RETURN_NOT_OK(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_EQ(f().code(), StatusCode::kIOError);
}

TEST(ReturnNotOkMacroTest, PassesThroughOk) {
  auto f = []() -> Status {
    NIDC_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(f().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace nidc
