#include "nidc/obs/cluster_health.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/metrics.h"
#include "nidc/text/sparse_vector.h"

namespace nidc {
namespace {

SparseVector Vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromEntries(std::move(entries));
}

obs::ClusterObservation Cluster(uint64_t id, SparseVector representative,
                                std::vector<uint32_t> members) {
  obs::ClusterObservation c;
  c.id = id;
  c.representative = std::move(representative);
  c.members = std::move(members);
  return c;
}

obs::StepObservation TwoClusterStep(uint64_t step) {
  obs::StepObservation o;
  o.step = step;
  o.g = 0.5;
  o.num_active = 4;
  o.clusters.push_back(Cluster(0, Vec({{1, 1.0}, {2, 1.0}}), {0, 1}));
  o.clusters.push_back(Cluster(1, Vec({{3, 1.0}}), {2, 3}));
  return o;
}

TEST(ClusterHealthTest, InvalidBeforeFirstStep) {
  obs::ClusterHealthMonitor monitor;
  EXPECT_FALSE(monitor.snapshot().valid);
}

TEST(ClusterHealthTest, IdenticalStepsHaveZeroDriftAndChurn) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  monitor.ObserveStep(TwoClusterStep(1));
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  ASSERT_TRUE(snapshot.valid);
  EXPECT_TRUE(snapshot.has_previous);
  EXPECT_DOUBLE_EQ(snapshot.mean_drift, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max_drift, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.membership_churn, 0.0);
  EXPECT_EQ(snapshot.docs_tracked, 4u);
  EXPECT_EQ(snapshot.docs_moved, 0u);
  EXPECT_EQ(snapshot.clusters_created, 0u);
  EXPECT_EQ(snapshot.clusters_vanished, 0u);
}

TEST(ClusterHealthTest, FirstStepHasNoBaseline) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  ASSERT_TRUE(snapshot.valid);
  EXPECT_FALSE(snapshot.has_previous);
  EXPECT_DOUBLE_EQ(snapshot.mean_drift, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.membership_churn, 0.0);
}

TEST(ClusterHealthTest, ChurnIsHandComputable) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  // Doc 1 moves from cluster 0 to cluster 1; docs 0, 2, 3 stay. Doc 4 is
  // new and must not count toward the churn basis.
  obs::StepObservation next;
  next.step = 1;
  next.g = 0.5;
  next.num_active = 5;
  next.clusters.push_back(Cluster(0, Vec({{1, 1.0}, {2, 1.0}}), {0}));
  next.clusters.push_back(Cluster(1, Vec({{3, 1.0}}), {1, 2, 3, 4}));
  monitor.ObserveStep(next);
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  EXPECT_EQ(snapshot.docs_tracked, 4u);
  EXPECT_EQ(snapshot.docs_moved, 1u);
  EXPECT_DOUBLE_EQ(snapshot.membership_churn, 0.25);
}

TEST(ClusterHealthTest, DriftIsMatchedByIdNotPosition) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  // Same clusters, listed in the opposite order. Matching by position
  // would report a large spurious drift.
  obs::StepObservation swapped = TwoClusterStep(1);
  std::swap(swapped.clusters[0], swapped.clusters[1]);
  monitor.ObserveStep(swapped);
  EXPECT_DOUBLE_EQ(monitor.snapshot().mean_drift, 0.0);
}

TEST(ClusterHealthTest, OrthogonalRepresentativeDriftsToOne) {
  obs::ClusterHealthMonitor monitor;
  obs::StepObservation first;
  first.step = 0;
  first.num_active = 1;
  first.clusters.push_back(Cluster(7, Vec({{1, 1.0}}), {0}));
  monitor.ObserveStep(first);
  obs::StepObservation second;
  second.step = 1;
  second.num_active = 1;
  second.clusters.push_back(Cluster(7, Vec({{2, 1.0}}), {0}));
  monitor.ObserveStep(second);
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  EXPECT_NEAR(snapshot.mean_drift, 1.0, 1e-12);
  EXPECT_NEAR(snapshot.max_drift, 1.0, 1e-12);
}

TEST(ClusterHealthTest, TracksCreatedAndVanishedIds) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  obs::StepObservation next;
  next.step = 1;
  next.num_active = 4;
  next.clusters.push_back(Cluster(0, Vec({{1, 1.0}, {2, 1.0}}), {0, 1}));
  next.clusters.push_back(Cluster(5, Vec({{9, 1.0}}), {2, 3}));
  monitor.ObserveStep(next);
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  EXPECT_EQ(snapshot.clusters_created, 1u);   // id 5 is new
  EXPECT_EQ(snapshot.clusters_vanished, 1u);  // id 1 is gone
  // The fresh cluster reports zero drift (no baseline to drift from).
  for (const obs::ClusterHealthRow& row : snapshot.clusters) {
    if (row.id == 5) {
      EXPECT_DOUBLE_EQ(row.drift, 0.0);
    }
  }
}

TEST(ClusterHealthTest, ClusterAgeCountsStepsSinceFirstSeen) {
  obs::ClusterHealthMonitor monitor;
  monitor.ObserveStep(TwoClusterStep(0));
  monitor.ObserveStep(TwoClusterStep(1));
  monitor.ObserveStep(TwoClusterStep(2));
  for (const obs::ClusterHealthRow& row : monitor.snapshot().clusters) {
    EXPECT_EQ(row.age_steps, 2u);
  }
}

TEST(ClusterHealthTest, EwmaSeedsFromFirstObservationThenBlends) {
  obs::ClusterHealthOptions options;
  options.ewma_alpha = 0.5;
  obs::ClusterHealthMonitor monitor(options);

  obs::StepObservation first = TwoClusterStep(0);
  first.num_active = 10;
  first.num_outliers = 2;  // rate 2 / 10 = 0.2 seeds the EWMA
  monitor.ObserveStep(first);
  EXPECT_DOUBLE_EQ(monitor.snapshot().outlier_rate_ewma, 0.2);

  obs::StepObservation second = TwoClusterStep(1);
  second.num_active = 10;
  second.num_outliers = 4;  // rate 0.4; EWMA 0.5*0.4 + 0.5*0.2 = 0.3
  monitor.ObserveStep(second);
  const obs::HealthSnapshot snapshot = monitor.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.outlier_rate, 0.4);
  EXPECT_NEAR(snapshot.outlier_rate_ewma, 0.3, 1e-12);
}

TEST(ClusterHealthTest, GDeltaEwmaSmoothsAbsoluteDeltas) {
  obs::ClusterHealthOptions options;
  options.ewma_alpha = 0.5;
  obs::ClusterHealthMonitor monitor(options);
  obs::StepObservation step = TwoClusterStep(0);
  step.g = 0.5;  // first step has no ΔG baseline — seeds the EWMA at 0
  monitor.ObserveStep(step);
  EXPECT_DOUBLE_EQ(monitor.snapshot().g_delta_ewma, 0.0);
  step.step = 1;
  step.g = 0.3;  // |ΔG| = 0.2; EWMA 0.5*0.2 + 0.5*0 = 0.1
  monitor.ObserveStep(step);
  EXPECT_NEAR(monitor.snapshot().g_delta_ewma, 0.1, 1e-12);
  step.step = 2;
  step.g = 0.3;  // |ΔG| = 0; EWMA 0.5*0 + 0.5*0.1 = 0.05
  monitor.ObserveStep(step);
  EXPECT_NEAR(monitor.snapshot().g_delta_ewma, 0.05, 1e-12);
}

TEST(ClusterHealthTest, PublishesHealthMetricsWhenRegistrySupplied) {
  obs::MetricsRegistry registry;
  obs::ClusterHealthOptions options;
  options.metrics = &registry;
  obs::ClusterHealthMonitor monitor(options);
  monitor.ObserveStep(TwoClusterStep(0));
  monitor.ObserveStep(TwoClusterStep(1));
  EXPECT_EQ(registry.GetCounter("health.steps")->Value(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.topic_drift")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.membership_churn")->Value(),
                   0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.docs_tracked")->Value(), 4.0);
}

}  // namespace
}  // namespace nidc
