#include "nidc/obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nidc/obs/event_log.h"
#include "nidc/obs/metrics.h"

namespace nidc::obs {
namespace {

// Compressed windows so a test can burn through "days" in synthetic time:
// fast pair 10s/60s, slow pair 120s/600s.
SloEngine::Options FastOptions() {
  SloEngine::Options options;
  options.fast_short_seconds = 10.0;
  options.fast_long_seconds = 60.0;
  options.slow_short_seconds = 120.0;
  options.slow_long_seconds = 600.0;
  return options;
}

const SloBurn* FindBurn(const std::vector<SloBurn>& burns,
                        const std::string& tenant,
                        const std::string& objective) {
  for (const SloBurn& burn : burns) {
    if (burn.tenant == tenant && burn.objective == objective) return &burn;
  }
  return nullptr;
}

TEST(SloEngineTest, HealthyTenantDoesNotBurn) {
  SloEngine engine(FastOptions());
  for (int i = 0; i < 100; ++i) {
    engine.ObserveLatency("alpha", 0.01, 1000.0 + i * 0.1);
    engine.ObserveRequest("alpha", /*ok=*/true, 1000.0 + i * 0.1);
  }
  const auto burns = engine.Evaluate(1010.0);
  const SloBurn* latency = FindBurn(burns, "alpha", "latency");
  const SloBurn* availability = FindBurn(burns, "alpha", "availability");
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(availability, nullptr);
  EXPECT_FALSE(latency->burning);
  EXPECT_FALSE(availability->burning);
  EXPECT_EQ(latency->bad, 0u);
  EXPECT_TRUE(engine.BurningTenants(1010.0).empty());
  EXPECT_EQ(engine.burn_events(), 0u);
}

TEST(SloEngineTest, SustainedLatencyViolationBurnsBothWindows) {
  SloEngine::Options options = FastOptions();
  options.default_objective.latency_threshold_seconds = 0.1;
  SloEngine engine(options);
  // Every observation blows the threshold: burn = 1 / (1 - 0.999) = 1000x
  // in every window — far beyond both pair thresholds.
  for (int i = 0; i < 200; ++i) {
    engine.ObserveLatency("alpha", 5.0, 1000.0 + i * 0.05);
  }
  const auto burns = engine.Evaluate(1010.0);
  const SloBurn* latency = FindBurn(burns, "alpha", "latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_TRUE(latency->burning);
  EXPECT_GT(latency->fast_short_burn, options.fast_burn_threshold);
  EXPECT_GT(latency->fast_long_burn, options.fast_burn_threshold);
  EXPECT_EQ(latency->bad, 200u);
  EXPECT_EQ(engine.BurningTenants(1010.0),
            std::vector<std::string>{"alpha"});
}

TEST(SloEngineTest, ShortBurstAloneDoesNotPage) {
  SloEngine::Options options = FastOptions();
  options.default_objective.availability_target = 0.9;
  SloEngine engine(options);
  // A long healthy history dilutes the long windows...
  for (int i = 0; i < 2000; ++i) {
    engine.ObserveRequest("alpha", /*ok=*/true, 1000.0 + i * 0.25);
  }
  const double burst_at = 1000.0 + 2000 * 0.25;
  // ...then a brief total outage inside one fast-short window only.
  for (int i = 0; i < 5; ++i) {
    engine.ObserveRequest("alpha", /*ok=*/false, burst_at + i * 0.5);
  }
  const auto burns = engine.Evaluate(burst_at + 3.0);
  const SloBurn* availability = FindBurn(burns, "alpha", "availability");
  ASSERT_NE(availability, nullptr);
  // The short window burns hot but the long window vetoes the page.
  EXPECT_GT(availability->fast_short_burn, availability->fast_long_burn);
  EXPECT_FALSE(availability->burning);
}

TEST(SloEngineTest, BurnEdgeEmitsEventOnce) {
  MetricsRegistry registry;
  EventLog events(64, &registry);
  SloEngine::Options options = FastOptions();
  options.default_objective.latency_threshold_seconds = 0.1;
  options.metrics = &registry;
  options.events = &events;
  SloEngine engine(options);
  for (int i = 0; i < 100; ++i) {
    engine.ObserveLatency("alpha", 5.0, 1000.0 + i * 0.05);
  }
  engine.Evaluate(1005.0);
  EXPECT_EQ(engine.burn_events(), 1u);
  // Still burning: the edge already fired, no duplicate event.
  engine.Evaluate(1006.0);
  EXPECT_EQ(engine.burn_events(), 1u);
  EXPECT_EQ(registry.GetCounter("slo.burn_events")->Value(), 1u);
  bool saw_burn_event = false;
  for (const auto& event : events.Recent()) {
    if (event.type == EventType::kSloBurn) saw_burn_event = true;
  }
  EXPECT_TRUE(saw_burn_event);

  // Once the burn ages out of every window the edge re-arms.
  engine.Evaluate(5000.0);
  for (int i = 0; i < 100; ++i) {
    engine.ObserveLatency("alpha", 5.0, 6000.0 + i * 0.05);
  }
  engine.Evaluate(6005.0);
  EXPECT_EQ(engine.burn_events(), 2u);
}

TEST(SloEngineTest, PerTenantObjectiveOverride) {
  SloEngine::Options options = FastOptions();
  options.default_objective.latency_threshold_seconds = 10.0;
  SloEngine engine(options);
  SloObjective strict;
  strict.latency_threshold_seconds = 0.001;
  engine.SetObjective("strict", strict);
  for (int i = 0; i < 50; ++i) {
    engine.ObserveLatency("strict", 0.5, 1000.0 + i * 0.1);
    engine.ObserveLatency("lenient", 0.5, 1000.0 + i * 0.1);
  }
  const auto burns = engine.Evaluate(1005.0);
  const SloBurn* strict_burn = FindBurn(burns, "strict", "latency");
  const SloBurn* lenient_burn = FindBurn(burns, "lenient", "latency");
  ASSERT_NE(strict_burn, nullptr);
  ASSERT_NE(lenient_burn, nullptr);
  EXPECT_TRUE(strict_burn->burning);
  EXPECT_FALSE(lenient_burn->burning);
}

TEST(SloEngineTest, MetricsFamilyIsEager) {
  MetricsRegistry registry;
  SloEngine::Options options = FastOptions();
  options.metrics = &registry;
  SloEngine engine(options);
  const auto snapshot = registry.Snapshot();
  bool saw_evaluations = false;
  bool saw_burning = false;
  for (const auto& metric : snapshot) {
    if (metric.name == "slo.evaluations") saw_evaluations = true;
    if (metric.name == "slo.tenants_burning") saw_burning = true;
  }
  EXPECT_TRUE(saw_evaluations);
  EXPECT_TRUE(saw_burning);

  engine.ObserveLatency("alpha", 0.1, 1000.0);
  engine.ObserveRequest("alpha", false, 1000.0);
  engine.Evaluate(1001.0);
  EXPECT_EQ(registry.GetCounter("slo.evaluations")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("slo.latency_observations")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("slo.requests_observed")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("slo.bad_events")->Value(), 1u);
}

TEST(SloEngineTest, RenderJsonCarriesBurnFields) {
  SloEngine::Options options = FastOptions();
  options.default_objective.latency_threshold_seconds = 0.1;
  SloEngine engine(options);
  for (int i = 0; i < 100; ++i) {
    engine.ObserveLatency("alpha", 5.0, 1000.0 + i * 0.05);
  }
  const std::string json = engine.RenderJson(1005.0);
  EXPECT_NE(json.find("\"tenant\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"objective\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"burning\":true"), std::string::npos);
  EXPECT_NE(json.find("\"burn_thresholds\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
}

TEST(SloEngineTest, WindowCountsAgeOut) {
  SloEngine::Options options = FastOptions();
  options.default_objective.availability_target = 0.9;
  SloEngine engine(options);
  for (int i = 0; i < 20; ++i) {
    engine.ObserveRequest("alpha", /*ok=*/false, 1000.0 + i * 0.1);
  }
  const auto hot = engine.Evaluate(1003.0);
  const SloBurn* burning = FindBurn(hot, "alpha", "availability");
  ASSERT_NE(burning, nullptr);
  EXPECT_TRUE(burning->burning);
  // 10x the slow-long window later every bucket has lapsed.
  const auto cold = engine.Evaluate(1000.0 + 6000.0);
  const SloBurn* calm = FindBurn(cold, "alpha", "availability");
  ASSERT_NE(calm, nullptr);
  EXPECT_FALSE(calm->burning);
  EXPECT_EQ(calm->bad, 0u);
}

}  // namespace
}  // namespace nidc::obs
