#include "nidc/shard/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "nidc/corpus/corpus_io.h"

namespace nidc::shard {
namespace {

TEST(ShardIngestTest, ParsesWellFormedJsonl) {
  const std::string body =
      "{\"time\": 1.5, \"text\": \"first article\", \"topic\": 3, "
      "\"source\": \"ap\"}\n"
      "{\"time\": 2.25, \"text\": \"second article\"}\n";
  auto docs = ParseIngestJsonl(body);
  ASSERT_TRUE(docs.ok()) << docs.status().ToString();
  ASSERT_EQ(docs->size(), 2u);
  EXPECT_DOUBLE_EQ((*docs)[0].time, 1.5);
  EXPECT_EQ((*docs)[0].text, "first article");
  EXPECT_EQ((*docs)[0].topic, 3);
  EXPECT_EQ((*docs)[0].source, "ap");
  EXPECT_EQ((*docs)[1].topic, kNoTopic);
  EXPECT_EQ((*docs)[1].source, "");
}

TEST(ShardIngestTest, BlankLinesAreSkippedAndEmptyBodyIsValid) {
  auto docs = ParseIngestJsonl("\n\n{\"time\": 1.0, \"text\": \"x\"}\n\n");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 1u);
  auto empty = ParseIngestJsonl("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ShardIngestTest, MalformedLineFailsWithLineDiagnostic) {
  const std::string body =
      "{\"time\": 1.0, \"text\": \"fine\"}\n"
      "{\"time\": oops}\n";
  auto docs = ParseIngestJsonl(body);
  ASSERT_FALSE(docs.ok());
  EXPECT_EQ(docs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(docs.status().ToString().find("line 2"), std::string::npos)
      << docs.status().ToString();
}

TEST(ShardIngestTest, RejectsMissingOrInvalidRequiredFields) {
  EXPECT_FALSE(ParseIngestJsonl("{\"text\": \"no time\"}").ok());
  EXPECT_FALSE(ParseIngestJsonl("{\"time\": 1.0}").ok());
  EXPECT_FALSE(ParseIngestJsonl("{\"time\": 1.0, \"text\": \"\"}").ok());
  // Whitespace-only text sanitizes to nothing analyzable either.
  EXPECT_FALSE(
      ParseIngestJsonl("{\"time\": 1.0, \"text\": \"\\t\\n\"}").ok());
  // Non-finite time.
  EXPECT_FALSE(
      ParseIngestJsonl("{\"time\": \"nan\", \"text\": \"x\"}").ok());
  // Unknown fields are rejected, not ignored: a typoed "topc" silently
  // dropping the label would corrupt evaluation feeds.
  EXPECT_FALSE(ParseIngestJsonl(
                   "{\"time\": 1.0, \"text\": \"x\", \"topc\": 1}")
                   .ok());
}

TEST(ShardIngestTest, SanitizesTextLikeCorpusIo) {
  EXPECT_EQ(SanitizeText("a\tb\nc\rd"), "a b c d");
  auto docs = ParseIngestJsonl(
      "{\"time\": 1.0, \"text\": \"tab\\there\\nand newline\"}");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].text, "tab here and newline");
}

TEST(ShardIngestTest, TimesSnapToTheTsvPrecisionGrid) {
  // corpus.tsv stores times as %.6f; a live time must equal what a
  // reopen re-reads, or recovered state diverges from live state.
  const double raw = 1.23456789123;
  char rendered[64];
  std::snprintf(rendered, sizeof(rendered), "%.6f", raw);
  const double expected = std::strtod(rendered, nullptr);
  auto docs = ParseIngestJsonl("{\"time\": 1.23456789123, \"text\": \"x\"}");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].time, expected);
  EXPECT_NE((*docs)[0].time, raw);
}

TEST(ShardIngestTest, FormatParseRoundTripIsIdentity) {
  std::vector<RawDocument> docs(3);
  docs[0].time = 0.125;
  docs[0].text = "plain text";
  docs[0].topic = 7;
  docs[0].source = "wire \"svc\"";
  docs[1].time = 1.000001;
  docs[1].text = "quotes \" and backslash \\ and unicode \xc3\xa9";
  docs[2].time = 2.5;
  docs[2].text = "already\tdirty\ntext";

  const std::string body = FormatIngestJsonl(docs);
  auto parsed = ParseIngestJsonl(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ((*parsed)[i].time, docs[i].time) << i;
    EXPECT_EQ((*parsed)[i].text, SanitizeText(docs[i].text)) << i;
    EXPECT_EQ((*parsed)[i].topic, docs[i].topic) << i;
    EXPECT_EQ((*parsed)[i].source, docs[i].source) << i;
  }
  // A second round trip is a fixed point: parse(format(parse(x))) ==
  // parse(x) — the property that makes CLI and HTTP clients equivalent.
  EXPECT_EQ(FormatIngestJsonl(*parsed), body);
}

}  // namespace
}  // namespace nidc::shard
