#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "nidc/forgetting/forgetting_model.h"

namespace nidc {
namespace {

TEST(ForgettingParamsTest, LambdaFromHalfLife) {
  ForgettingParams p;
  p.half_life_days = 7.0;
  // λ^β = 1/2 by construction (Eq. 2).
  EXPECT_NEAR(std::pow(p.Lambda(), 7.0), 0.5, 1e-12);
}

TEST(ForgettingParamsTest, PaperParameterValues) {
  // Experiment 1: β = 7 days, γ = 14 days "correspond to λ = 0.9 and
  // ε = 0.25" (the paper rounds λ).
  ForgettingParams p;
  p.half_life_days = 7.0;
  p.life_span_days = 14.0;
  EXPECT_NEAR(p.Lambda(), 0.9057, 5e-4);
  EXPECT_NEAR(p.Epsilon(), 0.25, 1e-12);  // 2^(-14/7) exactly
}

TEST(ForgettingParamsTest, ThirtyDayHalfLife) {
  // Experiment 2's β = 30 "corresponds to λ = 0.98".
  ForgettingParams p;
  p.half_life_days = 30.0;
  EXPECT_NEAR(p.Lambda(), 0.9772, 5e-4);
}

TEST(ForgettingParamsTest, LambdaInOpenUnitInterval) {
  for (double beta : {0.5, 1.0, 7.0, 30.0, 365.0}) {
    ForgettingParams p;
    p.half_life_days = beta;
    EXPECT_GT(p.Lambda(), 0.0) << beta;
    EXPECT_LT(p.Lambda(), 1.0) << beta;
  }
}

TEST(ForgettingParamsTest, EpsilonIsPowerLaw) {
  ForgettingParams p;
  p.half_life_days = 10.0;
  p.life_span_days = 30.0;
  // ε = 2^(-γ/β) = 2^-3.
  EXPECT_NEAR(p.Epsilon(), 0.125, 1e-12);
}

TEST(ForgettingParamsTest, ValidationRejectsNonPositive) {
  ForgettingParams p;
  p.half_life_days = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.half_life_days = 7.0;
  p.life_span_days = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p.life_span_days = 14.0;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ForgettingParamsTest, ValidationRejectsNonFinite) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  ForgettingParams p;
  p.half_life_days = nan;
  EXPECT_FALSE(p.Validate().ok());
  p.half_life_days = inf;
  EXPECT_FALSE(p.Validate().ok());
  p.half_life_days = 7.0;
  p.life_span_days = nan;
  EXPECT_FALSE(p.Validate().ok());
  p.life_span_days = inf;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ForgettingParamsTest, ValidationRejectsEpsilonOutsideUnitInterval) {
  // 2^(-gamma/beta) underflows to exactly 0 for extreme gamma/beta — a
  // document would then never expire by weight comparison, so Validate
  // must reject the pair even though both inputs are individually legal.
  ForgettingParams p;
  p.half_life_days = 1.0;
  p.life_span_days = 1e7;
  EXPECT_EQ(p.Epsilon(), 0.0);
  EXPECT_FALSE(p.Validate().ok());
}

}  // namespace
}  // namespace nidc
