#include "nidc/baselines/single_pass_incr.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class SinglePassTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions baghdad weapons", 0.5, 1);
    corpus_.AddText("olympics skating nagano medal", 1.0, 2);
    corpus_.AddText("olympics hockey nagano games", 1.5, 2);
    docs_ = {0, 1, 2, 3};
  }
  Corpus corpus_;
  std::vector<DocId> docs_;
};

TEST_F(SinglePassTest, JoinsSimilarSpawnsDissimilar) {
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 0.1;
  opts.window_days = 0.0;  // no decay
  auto result = RunSinglePass(corpus_, model, docs_, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 2u);
  EXPECT_EQ(result->clusters[0], (std::vector<DocId>{0, 1}));
  EXPECT_EQ(result->clusters[1], (std::vector<DocId>{2, 3}));
  EXPECT_EQ(result->num_seeded, 2u);
}

TEST_F(SinglePassTest, HighThresholdMakesSingletons) {
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 0.99;
  opts.window_days = 0.0;
  auto result = RunSinglePass(corpus_, model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 4u);
}

TEST_F(SinglePassTest, ZeroThresholdStillSpawnsOnOrthogonal) {
  // Even with threshold 0, a doc with similarity exactly 0 to every
  // cluster seeds a new one only if best_sim < 0 is impossible — it joins.
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 0.0;
  opts.window_days = 0.0;
  auto result = RunSinglePass(corpus_, model, docs_, opts);
  ASSERT_TRUE(result.ok());
  // First doc seeds; the rest join something (sim >= 0 >= threshold).
  EXPECT_EQ(result->clusters.size(), 1u);
}

TEST_F(SinglePassTest, TimeDecayBlocksStaleClusters) {
  // A cluster idle longer than the window decays to similarity 0.
  Corpus corpus;
  corpus.AddText("alpha beta gamma", 0.0, 1);
  corpus.AddText("alpha beta gamma", 40.0, 1);  // same text, 40 days later
  corpus.AddText("unrelated filler words", 50.0, 2);  // keeps idf nonzero
  TfIdfModel model(corpus, {0, 1, 2});
  SinglePassOptions opts;
  opts.threshold = 0.2;
  opts.window_days = 30.0;
  auto result = RunSinglePass(corpus, model, {0, 1}, opts);
  ASSERT_TRUE(result.ok());
  // Without decay they'd merge (identical text); with a 30-day window the
  // 40-day-old cluster is dead.
  EXPECT_EQ(result->clusters.size(), 2u);
}

TEST_F(SinglePassTest, DecayWithinWindowStillJoins) {
  Corpus corpus;
  corpus.AddText("alpha beta gamma", 0.0, 1);
  corpus.AddText("alpha beta gamma", 5.0, 1);
  corpus.AddText("unrelated filler words", 50.0, 2);  // keeps idf nonzero
  TfIdfModel model(corpus, {0, 1, 2});
  SinglePassOptions opts;
  opts.threshold = 0.2;
  opts.window_days = 30.0;
  auto result = RunSinglePass(corpus, model, {0, 1}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 1u);
}

TEST_F(SinglePassTest, MaxClustersForcesJoin) {
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 0.99;  // nothing would join voluntarily
  opts.window_days = 0.0;
  opts.max_clusters = 1;
  auto result = RunSinglePass(corpus_, model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 1u);
  EXPECT_EQ(result->clusters[0].size(), 4u);
}

TEST_F(SinglePassTest, RejectsBadThreshold) {
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 1.5;
  EXPECT_FALSE(RunSinglePass(corpus_, model, docs_, opts).ok());
}

TEST_F(SinglePassTest, RejectsUnknownDoc) {
  TfIdfModel model(corpus_, {0, 1});
  SinglePassOptions opts;
  EXPECT_FALSE(RunSinglePass(corpus_, model, {0, 1, 2}, opts).ok());
}

TEST_F(SinglePassTest, ClusterTimestampTracksNewestMember) {
  TfIdfModel model(corpus_, docs_);
  SinglePassOptions opts;
  opts.threshold = 0.1;
  opts.window_days = 0.0;
  auto result = RunSinglePass(corpus_, model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->last_update[0], 0.5);
  EXPECT_DOUBLE_EQ(result->last_update[1], 1.5);
}

}  // namespace
}  // namespace nidc
