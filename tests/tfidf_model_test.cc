#include "nidc/baselines/tfidf_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class TfIdfTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("apple banana apple", 0.0);    // apple x2, banana
    corpus_.AddText("apple cherry", 0.0);          // apple, cherry
    corpus_.AddText("banana cherry banana", 0.0);  // banana x2, cherry
    docs_ = {0, 1, 2};
  }
  Corpus corpus_;
  std::vector<DocId> docs_;
};

TEST_F(TfIdfTest, VectorsAreUnitNorm) {
  TfIdfModel model(corpus_, docs_);
  for (DocId d : docs_) {
    EXPECT_NEAR(model.Vector(d).Norm(), 1.0, 1e-12) << d;
  }
}

TEST_F(TfIdfTest, IdfIsLogNOverDf) {
  TfIdfModel model(corpus_, docs_);
  const TermId apple = corpus_.vocabulary().Lookup("appl");
  const TermId banana = corpus_.vocabulary().Lookup("banana");
  ASSERT_NE(apple, kInvalidTermId);
  // apple and banana each appear in 2 of 3 docs.
  EXPECT_NEAR(model.Idf(apple), std::log(3.0 / 2.0), 1e-12);
  EXPECT_NEAR(model.Idf(banana), std::log(3.0 / 2.0), 1e-12);
}

TEST_F(TfIdfTest, UbiquitousTermGetsZeroWeight) {
  Corpus corpus;
  corpus.AddText("shared alpha", 0.0);
  corpus.AddText("shared beta", 0.0);
  TfIdfModel model(corpus, {0, 1});
  const TermId shared = corpus.vocabulary().Lookup("share");
  ASSERT_NE(shared, kInvalidTermId);
  EXPECT_DOUBLE_EQ(model.Idf(shared), 0.0);  // log(2/2)
  // With idf 0 the term vanishes from vectors → docs are orthogonal.
  EXPECT_DOUBLE_EQ(model.Cosine(0, 1), 0.0);
}

TEST_F(TfIdfTest, CosineSelfIsOne) {
  TfIdfModel model(corpus_, docs_);
  for (DocId d : docs_) {
    EXPECT_NEAR(model.Cosine(d, d), 1.0, 1e-12);
  }
}

TEST_F(TfIdfTest, CosineSymmetricAndBounded) {
  TfIdfModel model(corpus_, docs_);
  for (DocId a : docs_) {
    for (DocId b : docs_) {
      EXPECT_DOUBLE_EQ(model.Cosine(a, b), model.Cosine(b, a));
      EXPECT_GE(model.Cosine(a, b), 0.0);
      EXPECT_LE(model.Cosine(a, b), 1.0 + 1e-12);
    }
  }
}

TEST_F(TfIdfTest, SubsetScopesDf) {
  // Restricting the model to docs {0, 1} changes df and idf.
  TfIdfModel model(corpus_, {0, 1});
  const TermId apple = corpus_.vocabulary().Lookup("appl");
  EXPECT_DOUBLE_EQ(model.Idf(apple), 0.0);  // in both subset docs
  EXPECT_FALSE(model.Contains(2));
  EXPECT_TRUE(model.Contains(0));
}

TEST_F(TfIdfTest, UnknownTermIdfZero) {
  TfIdfModel model(corpus_, docs_);
  EXPECT_DOUBLE_EQ(model.Idf(static_cast<TermId>(9999)), 0.0);
}

}  // namespace
}  // namespace nidc
