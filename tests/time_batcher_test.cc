#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nidc/corpus/stream.h"

namespace nidc {
namespace {

std::vector<DocumentBatch> AddOk(TimeBatcher* batcher, DocId id,
                                 DayTime time) {
  std::vector<DocumentBatch> closed;
  EXPECT_TRUE(batcher->Add(id, time, &closed).ok());
  return closed;
}

TEST(TimeBatcherTest, AccumulatesWithinOpenWindow) {
  TimeBatcher batcher(0.0, 1.0);
  EXPECT_TRUE(AddOk(&batcher, 0, 0.1).empty());
  EXPECT_TRUE(AddOk(&batcher, 1, 0.9).empty());
  EXPECT_EQ(batcher.pending(), 2u);
  EXPECT_DOUBLE_EQ(batcher.cursor(), 0.0);
}

TEST(TimeBatcherTest, ArrivalPastBoundaryClosesWindow) {
  TimeBatcher batcher(0.0, 1.0);
  AddOk(&batcher, 0, 0.5);
  const auto closed = AddOk(&batcher, 1, 1.2);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_DOUBLE_EQ(closed[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(closed[0].end, 1.0);
  EXPECT_EQ(closed[0].docs, (std::vector<DocId>{0}));
  EXPECT_EQ(batcher.pending(), 1u);  // doc 1 sits in the new open window
  EXPECT_DOUBLE_EQ(batcher.cursor(), 1.0);
}

TEST(TimeBatcherTest, LongGapEmitsEmptyWindows) {
  TimeBatcher batcher(0.0, 1.0);
  AddOk(&batcher, 0, 0.5);
  const auto closed = AddOk(&batcher, 1, 3.5);
  ASSERT_EQ(closed.size(), 3u);  // [0,1) with doc 0, then empty [1,2), [2,3)
  EXPECT_EQ(closed[0].docs, (std::vector<DocId>{0}));
  EXPECT_TRUE(closed[1].empty());
  EXPECT_TRUE(closed[2].empty());
  EXPECT_DOUBLE_EQ(closed[2].end, 3.0);
}

TEST(TimeBatcherTest, RejectsDocumentOlderThanOpenWindow) {
  TimeBatcher batcher(0.0, 1.0);
  AddOk(&batcher, 0, 2.5);  // cursor now 2.0
  std::vector<DocumentBatch> closed;
  const Status late = batcher.Add(1, 1.5, &closed);
  EXPECT_EQ(late.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(batcher.pending(), 1u);  // nothing changed
}

TEST(TimeBatcherTest, RejectsNaNTime) {
  TimeBatcher batcher(0.0, 1.0);
  std::vector<DocumentBatch> closed;
  EXPECT_EQ(batcher.Add(0, std::nan(""), &closed).code(),
            StatusCode::kInvalidArgument);
}

TEST(TimeBatcherTest, ExactBoundaryArrivalOpensNextWindow) {
  // Windows are half-open: a document at exactly cursor + step belongs to
  // the next window and closes the current one.
  TimeBatcher batcher(0.0, 1.0);
  const auto closed = AddOk(&batcher, 0, 1.0);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed[0].empty());
  EXPECT_EQ(batcher.pending(), 1u);
}

TEST(TimeBatcherTest, FlushUntilClosesPartialFinalWindow) {
  TimeBatcher batcher(0.0, 1.0);
  AddOk(&batcher, 0, 2.2);
  std::vector<DocumentBatch> closed;
  batcher.FlushUntil(2.6, &closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_DOUBLE_EQ(closed[0].begin, 2.0);
  EXPECT_DOUBLE_EQ(closed[0].end, 2.6);  // clamped, like a stream's end
  EXPECT_EQ(closed[0].docs, (std::vector<DocId>{0}));
  EXPECT_DOUBLE_EQ(batcher.cursor(), 2.6);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(TimeBatcherTest, FlushUntilBeforeCursorIsNoOp) {
  TimeBatcher batcher(5.0, 1.0);
  std::vector<DocumentBatch> closed;
  batcher.FlushUntil(3.0, &closed);
  EXPECT_TRUE(closed.empty());
  EXPECT_DOUBLE_EQ(batcher.cursor(), 5.0);
}

TEST(TimeBatcherTest, SeekRequiresEmptyPendingWindow) {
  TimeBatcher batcher(0.0, 1.0);
  AddOk(&batcher, 0, 0.5);
  EXPECT_EQ(batcher.SeekTo(4.0).code(), StatusCode::kFailedPrecondition);
  std::vector<DocumentBatch> closed;
  batcher.FlushUntil(1.0, &closed);
  EXPECT_TRUE(batcher.SeekTo(4.0).ok());
  EXPECT_DOUBLE_EQ(batcher.cursor(), 4.0);
}

TEST(TimeBatcherTest, CursorAdvancesByAccumulationNotMultiplication) {
  // 0.1 is not representable in binary; repeated addition and
  // multiplication disagree after enough steps. Both front ends must use
  // the accumulated value — this pins the batcher to it.
  TimeBatcher batcher(0.0, 0.1);
  std::vector<DocumentBatch> closed;
  batcher.FlushUntil(10.0, &closed);
  DayTime accumulated = 0.0;
  for (int i = 0; i < 100; ++i) accumulated += 0.1;
  // The last full window boundary the batcher produced must equal the
  // accumulated sum bit for bit (no 0.1 * k rounding).
  ASSERT_GE(closed.size(), 100u);
  EXPECT_EQ(closed[99].end, accumulated);
}

TEST(TimeBatcherTest, PushMatchesPullBitIdentically) {
  // The equivalence the shard layer is built on: pushing a corpus's
  // documents through a TimeBatcher produces the same window sequence as
  // pulling it through a DocumentStream.
  Corpus corpus;
  corpus.AddText("alpha bravo", 0.25);
  corpus.AddText("charlie delta", 1.17);
  corpus.AddText("echo foxtrot", 1.93);
  corpus.AddText("golf hotel", 4.61);
  corpus.AddText("india juliet", 4.62);
  const DayTime start = 0.0;
  const DayTime end = 5.3;
  const double step = 0.7;

  std::vector<DocumentBatch> pulled;
  DocumentStream stream(&corpus, start, end, step);
  while (auto batch = stream.Next()) pulled.push_back(std::move(*batch));

  std::vector<DocumentBatch> pushed;
  TimeBatcher batcher(start, step);
  for (DocId id = 0; id < static_cast<DocId>(corpus.size()); ++id) {
    ASSERT_TRUE(batcher.Add(id, corpus.doc(id).time, &pushed).ok());
  }
  batcher.FlushUntil(end, &pushed);

  ASSERT_EQ(pushed.size(), pulled.size());
  for (size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(pushed[i].begin, pulled[i].begin) << "window " << i;
    EXPECT_EQ(pushed[i].end, pulled[i].end) << "window " << i;
    EXPECT_EQ(pushed[i].docs, pulled[i].docs) << "window " << i;
  }
}

}  // namespace
}  // namespace nidc
