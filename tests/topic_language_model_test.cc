#include "nidc/synth/topic_language_model.h"

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "nidc/text/porter_stemmer.h"
#include "nidc/text/tokenizer.h"

namespace nidc {
namespace {

std::vector<TopicSpec> TwoTopics() {
  TopicSpec a;
  a.id = 1;
  a.name = "Topic A";
  a.shape = ActivityShape::FromWindowCounts({10});
  TopicSpec b;
  b.id = 2;
  b.name = "Topic B";
  b.shape = ActivityShape::FromWindowCounts({10});
  return {a, b};
}

TEST(WordFactoryTest, WordsAreDistinct) {
  WordFactory factory(1);
  std::set<std::string> words;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(words.insert(factory.MakeWord()).second);
  }
}

TEST(WordFactoryTest, WordsSurviveTokenizer) {
  WordFactory factory(2);
  Tokenizer tokenizer;
  for (int i = 0; i < 200; ++i) {
    const std::string word = factory.MakeWord();
    const auto tokens = tokenizer.Tokenize(word);
    ASSERT_EQ(tokens.size(), 1u) << word;
    EXPECT_EQ(tokens[0], word);
  }
}

TEST(WordFactoryTest, WordsAreMostlyStemmerInert) {
  // The synthetic language is designed so preprocessing keeps terms intact;
  // a small residual of accidental suffix matches is tolerated.
  WordFactory factory(3);
  PorterStemmer stemmer;
  int changed = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const std::string word = factory.MakeWord();
    if (stemmer.Stem(word) != word) ++changed;
  }
  EXPECT_LT(changed, n / 10);
}

TEST(WordFactoryTest, DeterministicPerSeed) {
  WordFactory a(7);
  WordFactory b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.MakeWord(), b.MakeWord());
}

TEST(TopicLanguageModelTest, EveryTopicGetsItsVocabulary) {
  TopicLmOptions opts;
  opts.topic_vocab = 25;
  TopicLanguageModel lm(TwoTopics(), opts, 11);
  EXPECT_EQ(lm.TopicWords(1).size(), 25u);
  EXPECT_EQ(lm.TopicWords(2).size(), 25u);
  EXPECT_EQ(lm.background_words().size(), opts.background_vocab);
}

TEST(TopicLanguageModelTest, ZeroOverlapMakesVocabulariesDisjoint) {
  TopicLmOptions opts;
  opts.overlap_fraction = 0.0;
  TopicLanguageModel lm(TwoTopics(), opts, 13);
  std::set<std::string> a(lm.TopicWords(1).begin(), lm.TopicWords(1).end());
  for (const std::string& w : lm.TopicWords(2)) {
    EXPECT_FALSE(a.contains(w)) << w;
  }
  for (const std::string& w : lm.background_words()) {
    EXPECT_FALSE(a.contains(w)) << w;
  }
}

TEST(TopicLanguageModelTest, DefaultOverlapSharesPoolWords) {
  // With many topics drawing from a finite shared pool, some pair of
  // topics must share a vocabulary word (cross-topic confusability).
  std::vector<TopicSpec> topics;
  for (int i = 1; i <= 20; ++i) {
    TopicSpec t;
    t.id = i;
    t.name = "T" + std::to_string(i);
    t.shape = ActivityShape::FromWindowCounts({1});
    topics.push_back(std::move(t));
  }
  TopicLmOptions opts;
  opts.shared_topic_pool = 50;  // small pool forces collisions
  TopicLanguageModel lm(topics, opts, 13);
  size_t shared_pairs = 0;
  for (int i = 1; i <= 20; ++i) {
    std::set<std::string> a(lm.TopicWords(i).begin(),
                            lm.TopicWords(i).end());
    for (int j = i + 1; j <= 20; ++j) {
      for (const std::string& w : lm.TopicWords(j)) {
        if (a.contains(w)) {
          ++shared_pairs;
          break;
        }
      }
    }
  }
  EXPECT_GT(shared_pairs, 0u);
}

TEST(TopicLanguageModelTest, UniqueWordsStayTopicExclusive) {
  // Even with overlap on, each topic keeps unique signature words no other
  // topic carries.
  TopicLanguageModel lm(TwoTopics(), {}, 13);
  std::set<std::string> b(lm.TopicWords(2).begin(), lm.TopicWords(2).end());
  size_t exclusive = 0;
  for (const std::string& w : lm.TopicWords(1)) {
    if (!b.contains(w)) ++exclusive;
  }
  EXPECT_GT(exclusive, lm.options().topic_vocab / 2);
}

TEST(TopicLanguageModelTest, DocumentLengthWithinBounds) {
  TopicLmOptions opts;
  opts.doc_length_min = 30;
  opts.doc_length_max = 100;
  TopicLanguageModel lm(TwoTopics(), opts, 17);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string text = lm.GenerateText(1, &rng);
    std::istringstream iss(text);
    size_t tokens = 0;
    std::string tok;
    while (iss >> tok) ++tokens;
    EXPECT_GE(tokens, 30u);
    EXPECT_LE(tokens, 100u);
  }
}

TEST(TopicLanguageModelTest, DocumentsMixTopicAndBackground) {
  TopicLmOptions opts;
  opts.topic_word_fraction = 0.5;
  opts.topic_fraction_jitter = 0.0;
  TopicLanguageModel lm(TwoTopics(), opts, 19);
  std::set<std::string> topic_words(lm.TopicWords(1).begin(),
                                    lm.TopicWords(1).end());
  Rng rng(2);
  size_t topical = 0;
  size_t total = 0;
  for (int i = 0; i < 50; ++i) {
    std::istringstream iss(lm.GenerateText(1, &rng));
    std::string tok;
    while (iss >> tok) {
      ++total;
      if (topic_words.contains(tok)) ++topical;
    }
  }
  const double fraction = static_cast<double>(topical) / total;
  EXPECT_NEAR(fraction, 0.5, 0.06);
}

TEST(TopicLanguageModelTest, SameTopicDocsShareMoreVocabulary) {
  TopicLanguageModel lm(TwoTopics(), {}, 23);
  Rng rng(3);
  auto tokens = [&](TopicId topic) {
    std::set<std::string> out;
    std::istringstream iss(lm.GenerateText(topic, &rng));
    std::string tok;
    while (iss >> tok) out.insert(tok);
    return out;
  };
  auto overlap = [](const std::set<std::string>& a,
                    const std::set<std::string>& b) {
    size_t n = 0;
    for (const auto& w : a) {
      if (b.contains(w)) ++n;
    }
    return n;
  };
  // Average over several draws to keep the test stable.
  size_t same = 0;
  size_t cross = 0;
  for (int i = 0; i < 10; ++i) {
    same += overlap(tokens(1), tokens(1));
    cross += overlap(tokens(1), tokens(2));
  }
  EXPECT_GT(same, cross);
}

TEST(TopicLanguageModelTest, GenerationDeterministicPerRngState) {
  TopicLanguageModel lm(TwoTopics(), {}, 29);
  Rng a(4);
  Rng b(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lm.GenerateText(1, &a), lm.GenerateText(1, &b));
  }
}

}  // namespace
}  // namespace nidc
