#include "nidc/eval/contingency.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(ContingencyTest, PrecisionRecallF1Basics) {
  Contingency t{6, 2, 3, 10};
  EXPECT_NEAR(t.Precision(), 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(t.Recall(), 6.0 / 9.0, 1e-12);
  // F1 = 2a/(2a+b+c) = 12/17.
  EXPECT_NEAR(t.F1(), 12.0 / 17.0, 1e-12);
}

TEST(ContingencyTest, F1IsHarmonicMean) {
  Contingency t{4, 4, 1, 0};
  const double p = t.Precision();
  const double r = t.Recall();
  EXPECT_NEAR(t.F1(), 2.0 * p * r / (p + r), 1e-12);
}

TEST(ContingencyTest, EmptyCellsYieldZeroNotNan) {
  Contingency t{};
  EXPECT_DOUBLE_EQ(t.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(t.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(t.F1(), 0.0);
}

TEST(ContingencyTest, PerfectCluster) {
  Contingency t{5, 0, 0, 20};
  EXPECT_DOUBLE_EQ(t.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(t.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(t.F1(), 1.0);
}

TEST(ContingencyTest, MergeSumsCells) {
  Contingency a{1, 2, 3, 4};
  Contingency b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.a, 11u);
  EXPECT_EQ(a.b, 22u);
  EXPECT_EQ(a.c, 33u);
  EXPECT_EQ(a.d, 44u);
}

}  // namespace
}  // namespace nidc
