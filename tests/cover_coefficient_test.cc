#include "nidc/core/cover_coefficient.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class CoverCoefficientTest : public testing::Test {
 protected:
  std::unique_ptr<ForgettingModel> MakeModel(Corpus* corpus,
                                             DayTime now = 0.0) {
    ForgettingParams params;
    params.half_life_days = 7.0;
    params.life_span_days = 365.0;
    auto model = std::make_unique<ForgettingModel>(corpus, params);
    model->AdvanceTo(now);
    std::vector<DocId> ids;
    for (DocId d = 0; d < corpus->size(); ++d) ids.push_back(d);
    model->AddDocuments(ids);
    return model;
  }
};

TEST_F(CoverCoefficientTest, IsolatedDocumentFullyDecoupled) {
  Corpus corpus;
  corpus.AddText("alpha beta", 0.0);
  corpus.AddText("gamma delta", 0.0);
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  // No shared terms: δ = 1 for both, n_c = 2.
  EXPECT_NEAR(cc.decoupling[0], 1.0, 1e-12);
  EXPECT_NEAR(cc.decoupling[1], 1.0, 1e-12);
  EXPECT_NEAR(cc.nc, 2.0, 1e-12);
  EXPECT_EQ(cc.EstimatedClusterCount(), 2u);
}

TEST_F(CoverCoefficientTest, IdenticalDocumentsShareCoupling) {
  Corpus corpus;
  corpus.AddText("alpha beta", 0.0);
  corpus.AddText("alpha beta", 0.0);
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  // Equal weights, fully shared terms: δ = 1/2 each, n_c = 1.
  EXPECT_NEAR(cc.decoupling[0], 0.5, 1e-12);
  EXPECT_NEAR(cc.decoupling[1], 0.5, 1e-12);
  EXPECT_EQ(cc.EstimatedClusterCount(), 1u);
}

TEST_F(CoverCoefficientTest, DeltaBoundedByOne) {
  Corpus corpus;
  corpus.AddText("alpha beta gamma alpha", 0.0);
  corpus.AddText("beta gamma delta", 0.0);
  corpus.AddText("delta epsilon zeta epsilon", 0.0);
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  for (double delta : cc.decoupling) {
    EXPECT_GT(delta, 0.0);
    EXPECT_LE(delta, 1.0 + 1e-12);
  }
}

TEST_F(CoverCoefficientTest, NcEstimateTracksPlantedClusterCount) {
  // Three groups of near-duplicate docs → n_c should be close to 3.
  Corpus corpus;
  for (int i = 0; i < 4; ++i) corpus.AddText("alpha beta gamma", 0.0);
  for (int i = 0; i < 4; ++i) corpus.AddText("delta epsilon zeta", 0.0);
  for (int i = 0; i < 4; ++i) corpus.AddText("theta kappa lambda", 0.0);
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  EXPECT_NEAR(cc.nc, 3.0, 0.25);
}

TEST_F(CoverCoefficientTest, SeedPowerPrefersCoupledMidLengthDocs) {
  Corpus corpus;
  corpus.AddText("alpha beta gamma delta epsilon", 0.0);  // rich, coupled
  corpus.AddText("alpha beta", 0.0);                      // short, coupled
  corpus.AddText("unique solitary words entirely", 0.0);  // decoupled
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  // δ=1 ⇒ ψ=0 ⇒ zero seed power for the isolated doc.
  EXPECT_NEAR(cc.seed_power[2], 0.0, 1e-12);
  // The longer coupled doc outranks the shorter one.
  EXPECT_GT(cc.seed_power[0], cc.seed_power[1]);
}

TEST_F(CoverCoefficientTest, ForgettingWeightsShiftDecoupling) {
  // Old and new doc share terms; with decay the new doc dominates the
  // column sums, so the new doc's δ rises toward 1 while the old doc's
  // contribution fades.
  Corpus corpus;
  corpus.AddText("alpha beta gamma", 0.0);
  corpus.AddText("alpha beta gamma", 28.0);
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  ForgettingModel model(&corpus, params);
  model.AddDocuments({0});
  model.AdvanceTo(28.0);
  model.AddDocuments({1});
  const CoverCoefficients cc = ComputeCoverCoefficients(model);
  // dw_old = 1/16: new doc covers ~16/17 of every column.
  EXPECT_GT(cc.decoupling[1], 0.9);
  EXPECT_LT(cc.decoupling[0], 0.15);
}

TEST_F(CoverCoefficientTest, EmptyDocumentContributesZeroDelta) {
  Corpus corpus;
  corpus.AddText("the of and", 0.0);  // analyzes to nothing
  corpus.AddText("real words here", 0.0);
  auto model = MakeModel(&corpus);
  const CoverCoefficients cc = ComputeCoverCoefficients(*model);
  EXPECT_DOUBLE_EQ(cc.decoupling[0], 0.0);
  EXPECT_DOUBLE_EQ(cc.seed_power[0], 0.0);
}

}  // namespace
}  // namespace nidc
