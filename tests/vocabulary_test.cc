#include "nidc/text/vocabulary.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInFirstSeenOrder) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.GetOrAdd("beta"), 1u);
  EXPECT_EQ(v.GetOrAdd("gamma"), 2u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary v;
  const TermId id = v.GetOrAdd("term");
  EXPECT_EQ(v.GetOrAdd("term"), id);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, LookupWithoutInterning) {
  Vocabulary v;
  v.GetOrAdd("known");
  EXPECT_EQ(v.Lookup("known"), 0u);
  EXPECT_EQ(v.Lookup("unknown"), kInvalidTermId);
  EXPECT_EQ(v.size(), 1u);  // Lookup never grows
}

TEST(VocabularyTest, TermOfRoundTrips) {
  Vocabulary v;
  const TermId id = v.GetOrAdd("roundtrip");
  Result<std::string> term = v.TermOf(id);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term.value(), "roundtrip");
}

TEST(VocabularyTest, TermOfOutOfRange) {
  Vocabulary v;
  EXPECT_EQ(v.TermOf(0).status().code(), StatusCode::kOutOfRange);
  v.GetOrAdd("x");
  EXPECT_EQ(v.TermOf(5).status().code(), StatusCode::kOutOfRange);
}

TEST(VocabularyTest, TermsVectorMatchesIds) {
  Vocabulary v;
  v.GetOrAdd("a");
  v.GetOrAdd("b");
  ASSERT_EQ(v.terms().size(), 2u);
  EXPECT_EQ(v.terms()[0], "a");
  EXPECT_EQ(v.terms()[1], "b");
}

TEST(VocabularyTest, EmptyVocabulary) {
  Vocabulary v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Lookup("anything"), kInvalidTermId);
}

TEST(VocabularyTest, ManyTermsStayConsistent) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.GetOrAdd("term" + std::to_string(i)),
              static_cast<TermId>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.Lookup("term" + std::to_string(i)),
              static_cast<TermId>(i));
  }
}

}  // namespace
}  // namespace nidc
