#include "nidc/core/cluster.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nidc/util/random.h"

namespace nidc {
namespace {

// Builds a corpus of `n` random synthetic documents and a similarity
// context over all of them.
class ClusterFixture {
 public:
  explicit ClusterFixture(size_t n, uint64_t seed = 99) {
    Rng rng(seed);
    const char* words[] = {"alpha", "beta",  "gamma", "delta", "epsilon",
                           "zeta",  "theta", "kappa", "sigma", "omega"};
    for (size_t i = 0; i < n; ++i) {
      std::string text;
      const size_t len = 4 + rng.NextBounded(8);
      for (size_t j = 0; j < len; ++j) {
        if (!text.empty()) text += ' ';
        text += words[rng.NextBounded(10)];
      }
      corpus_.AddText(text, static_cast<double>(i) * 0.5, 1);
    }
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AdvanceTo(static_cast<double>(n) * 0.5);
    std::vector<DocId> ids;
    for (size_t i = 0; i < n; ++i) ids.push_back(static_cast<DocId>(i));
    model_->AddDocuments(ids);
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }

  const SimilarityContext& ctx() const { return *ctx_; }

 private:
  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST(ClusterTest, EmptyClusterBasics) {
  Cluster c;
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.AvgSim(), 0.0);
  EXPECT_DOUBLE_EQ(c.cr_self(), 0.0);
  EXPECT_DOUBLE_EQ(c.ss(), 0.0);
}

TEST(ClusterTest, SingletonHasZeroAvgSim) {
  ClusterFixture f(3);
  Cluster c;
  c.Add(0, f.ctx());
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.AvgSim(), 0.0);
  // cr_self of a singleton is the self-similarity (Eq. 22 with |C|=1).
  EXPECT_NEAR(c.cr_self(), f.ctx().SelfSim(0), 1e-15);
  EXPECT_NEAR(c.ss(), f.ctx().SelfSim(0), 1e-15);
}

TEST(ClusterTest, PairAvgSimIsPairSimilarity) {
  ClusterFixture f(3);
  Cluster c;
  c.Add(0, f.ctx());
  c.Add(1, f.ctx());
  // avg_sim({a,b}) = (sim(a,b) + sim(b,a)) / 2 = sim(a,b).
  EXPECT_NEAR(c.AvgSim(), f.ctx().Sim(0, 1), 1e-12);
}

TEST(ClusterTest, Eq22IdentityHolds) {
  // cr_sim(C,C) = |C|(|C|-1)·avg_sim(C) + ss(C), with avg_sim computed
  // naively from pairwise similarities.
  ClusterFixture f(12);
  Cluster c;
  for (DocId d = 0; d < 12; ++d) c.Add(d, f.ctx());
  const double n = 12.0;
  EXPECT_NEAR(c.cr_self(),
              n * (n - 1.0) * c.AvgSimNaive(f.ctx()) + c.ss(), 1e-9);
}

TEST(ClusterTest, AvgSimMatchesNaiveAsClusterGrows) {
  ClusterFixture f(20);
  Cluster c;
  for (DocId d = 0; d < 20; ++d) {
    c.Add(d, f.ctx());
    EXPECT_NEAR(c.AvgSim(), c.AvgSimNaive(f.ctx()), 1e-9) << "n=" << d + 1;
  }
}

TEST(ClusterTest, AvgSimIfAddedMatchesActualAdd) {
  // Eq. 26 (the fast gain path) must predict exactly what Add produces.
  ClusterFixture f(15);
  Cluster c;
  for (DocId d = 0; d < 10; ++d) c.Add(d, f.ctx());
  for (DocId d = 10; d < 15; ++d) {
    const double predicted = c.AvgSimIfAdded(d, f.ctx());
    Cluster copy = c;
    copy.Add(d, f.ctx());
    EXPECT_NEAR(predicted, copy.AvgSim(), 1e-9) << d;
  }
}

TEST(ClusterTest, RemoveIsInverseOfAdd) {
  // The paper omits the deletion formulas; verify ours against recompute.
  ClusterFixture f(12);
  Cluster c;
  for (DocId d = 0; d < 12; ++d) c.Add(d, f.ctx());
  const double avg_before = c.AvgSim();
  c.Remove(7, f.ctx());
  EXPECT_EQ(c.size(), 11u);
  EXPECT_FALSE(c.Contains(7));
  EXPECT_NEAR(c.AvgSim(), c.AvgSimNaive(f.ctx()), 1e-9);
  c.Add(7, f.ctx());
  EXPECT_NEAR(c.AvgSim(), avg_before, 1e-9);
}

TEST(ClusterTest, RemoveDownToEmptySnapsToZero) {
  ClusterFixture f(4);
  Cluster c;
  c.Add(0, f.ctx());
  c.Add(1, f.ctx());
  c.Remove(0, f.ctx());
  c.Remove(1, f.ctx());
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.cr_self(), 0.0);
  EXPECT_DOUBLE_EQ(c.ss(), 0.0);
  EXPECT_TRUE(c.representative().empty());
}

TEST(ClusterTest, RepresentativeIsSumOfPsi) {
  ClusterFixture f(6);
  Cluster c;
  SparseVector expected;
  for (DocId d = 0; d < 6; ++d) {
    c.Add(d, f.ctx());
    expected.AddScaled(f.ctx().Psi(d), 1.0);
  }
  for (const auto& e : expected.entries()) {
    EXPECT_NEAR(c.representative().ValueAt(e.id), e.value, 1e-12);
  }
}

TEST(ClusterTest, CrSimWithDocIsRepresentativeDot) {
  ClusterFixture f(8);
  Cluster c;
  for (DocId d = 0; d < 5; ++d) c.Add(d, f.ctx());
  // cr_sim(C, {d}) = Σ_{x∈C} sim(x, d) (Eq. 21 for singleton q).
  for (DocId d = 5; d < 8; ++d) {
    double expected = 0.0;
    for (DocId x = 0; x < 5; ++x) expected += f.ctx().Sim(x, d);
    EXPECT_NEAR(c.CrSimWithDoc(d, f.ctx()), expected, 1e-12);
  }
}

TEST(ClusterTest, Eq25UnionIdentity) {
  // avg_sim(C_p ∪ C_q) from the two representatives (Eq. 25) equals the
  // naive recompute on the union.
  ClusterFixture f(14);
  Cluster p;
  Cluster q;
  for (DocId d = 0; d < 8; ++d) p.Add(d, f.ctx());
  for (DocId d = 8; d < 14; ++d) q.Add(d, f.ctx());
  const double np = 8.0;
  const double nq = 6.0;
  const double eq25 =
      (p.cr_self() + 2.0 * p.CrSimWith(q) + q.cr_self() - p.ss() - q.ss()) /
      ((np + nq) * (np + nq - 1.0));
  Cluster merged;
  for (DocId d = 0; d < 14; ++d) merged.Add(d, f.ctx());
  EXPECT_NEAR(eq25, merged.AvgSimNaive(f.ctx()), 1e-9);
  EXPECT_NEAR(eq25, merged.AvgSim(), 1e-9);
}

TEST(ClusterTest, AvgSimIfMergedMatchesEq25AndMerge) {
  ClusterFixture f(14);
  Cluster p;
  Cluster q;
  for (DocId d = 0; d < 8; ++d) p.Add(d, f.ctx());
  for (DocId d = 8; d < 14; ++d) q.Add(d, f.ctx());
  const double predicted = p.AvgSimIfMerged(q);
  Cluster merged = p;
  Cluster q_copy = q;
  merged.MergeFrom(&q_copy);
  EXPECT_NEAR(predicted, merged.AvgSim(), 1e-10);
  EXPECT_NEAR(predicted, merged.AvgSimNaive(f.ctx()), 1e-9);
  EXPECT_TRUE(q_copy.empty());
  EXPECT_EQ(merged.size(), 14u);
}

TEST(ClusterTest, MergeFromEmptyIsNoop) {
  ClusterFixture f(4);
  Cluster p;
  p.Add(0, f.ctx());
  p.Add(1, f.ctx());
  const double before = p.AvgSim();
  Cluster empty;
  p.MergeFrom(&empty);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NEAR(p.AvgSim(), before, 1e-15);
}

TEST(ClusterTest, MergeIntoEmptyAdopts) {
  ClusterFixture f(4);
  Cluster p;
  Cluster q;
  q.Add(0, f.ctx());
  q.Add(1, f.ctx());
  const double avg = q.AvgSim();
  p.MergeFrom(&q);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NEAR(p.AvgSim(), avg, 1e-15);
}

TEST(ClusterTest, RefreshClearsDrift) {
  ClusterFixture f(10);
  Cluster c;
  // Heavy add/remove churn to accumulate float drift.
  for (int round = 0; round < 50; ++round) {
    for (DocId d = 0; d < 10; ++d) {
      if (c.Contains(d)) {
        c.Remove(d, f.ctx());
      } else {
        c.Add(d, f.ctx());
      }
    }
  }
  const double naive = c.AvgSimNaive(f.ctx());
  c.Refresh(f.ctx());
  EXPECT_NEAR(c.AvgSim(), naive, 1e-12);
  EXPECT_NEAR(c.cr_self(), c.representative().SquaredNorm(), 1e-12);
}

// Parameterized sweep: the Eq. 24/26 identities hold across corpus sizes
// and seeds.
class ClusterPropertyTest
    : public testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ClusterPropertyTest, FastPathsMatchNaive) {
  const auto [n, seed] = GetParam();
  ClusterFixture f(n, seed);
  Rng rng(seed ^ 0x777);
  Cluster c;
  std::vector<bool> in(n, false);
  for (int step = 0; step < 200; ++step) {
    const DocId d = static_cast<DocId>(rng.NextBounded(n));
    if (in[d]) {
      c.Remove(d, f.ctx());
      in[d] = false;
    } else {
      // Check the gain prediction right before the mutation.
      const double predicted = c.AvgSimIfAdded(d, f.ctx());
      c.Add(d, f.ctx());
      in[d] = true;
      EXPECT_NEAR(predicted, c.AvgSim(), 1e-8);
    }
  }
  EXPECT_NEAR(c.AvgSim(), c.AvgSimNaive(f.ctx()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterPropertyTest,
    testing::Combine(testing::Values(size_t{5}, size_t{15}, size_t{30}),
                     testing::Values(uint64_t{1}, uint64_t{9},
                                     uint64_t{1234})));

}  // namespace
}  // namespace nidc
