#include "nidc/text/inverted_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "nidc/util/random.h"

namespace nidc {
namespace {

Document MakeDoc(DocId id, std::vector<SparseVector::Entry> entries) {
  Document doc;
  doc.id = id;
  doc.terms = SparseVector::FromEntries(std::move(entries));
  return doc;
}

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.num_docs(), 0u);
  EXPECT_EQ(index.num_terms(), 0u);
  EXPECT_TRUE(index.Postings(0).empty());
  EXPECT_EQ(index.DocumentFrequency(0), 0u);
}

TEST(InvertedIndexTest, AddBuildsPostings) {
  InvertedIndex index;
  index.Add(MakeDoc(0, {{1, 2.0}, {3, 1.0}}));
  index.Add(MakeDoc(1, {{3, 4.0}}));
  EXPECT_EQ(index.num_docs(), 2u);
  EXPECT_EQ(index.num_terms(), 2u);
  const auto postings = index.Postings(3);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], (Posting{0, 1.0}));
  EXPECT_EQ(postings[1], (Posting{1, 4.0}));
  EXPECT_EQ(index.DocumentFrequency(1), 1u);
  EXPECT_EQ(index.DocumentFrequency(3), 2u);
}

TEST(InvertedIndexTest, ZeroEntriesSkipped) {
  InvertedIndex index;
  Document doc = MakeDoc(0, {{1, 1.0}});
  doc.terms.AddScaled(SparseVector::FromEntries({{2, 0.0}}), 1.0);
  index.Add(doc);
  EXPECT_TRUE(index.Postings(2).empty());
}

TEST(InvertedIndexTest, RemoveHidesDocument) {
  InvertedIndex index;
  const Document a = MakeDoc(0, {{1, 1.0}, {2, 1.0}});
  const Document b = MakeDoc(1, {{2, 1.0}});
  index.Add(a);
  index.Add(b);
  index.Remove(a);
  EXPECT_FALSE(index.Contains(0));
  EXPECT_TRUE(index.Contains(1));
  EXPECT_TRUE(index.Postings(1).empty());
  ASSERT_EQ(index.Postings(2).size(), 1u);
  EXPECT_EQ(index.Postings(2)[0].doc, 1u);
  EXPECT_EQ(index.DocumentFrequency(2), 1u);
}

TEST(InvertedIndexTest, ReAddAfterRemove) {
  InvertedIndex index;
  const Document a = MakeDoc(0, {{1, 1.0}});
  index.Add(a);
  index.Remove(a);
  index.Add(a);
  EXPECT_TRUE(index.Contains(0));
  EXPECT_EQ(index.Postings(1).size(), 1u);
}

TEST(InvertedIndexTest, CandidatesShareATerm) {
  InvertedIndex index;
  index.Add(MakeDoc(0, {{1, 1.0}, {2, 1.0}}));
  index.Add(MakeDoc(1, {{2, 1.0}, {3, 1.0}}));
  index.Add(MakeDoc(2, {{9, 1.0}}));
  const SparseVector query = SparseVector::FromEntries({{2, 1.0}, {5, 1.0}});
  auto candidates = index.Candidates(query, /*exclude=*/99);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<DocId>{0, 1}));
}

TEST(InvertedIndexTest, CandidatesExcludeSelf) {
  InvertedIndex index;
  index.Add(MakeDoc(0, {{1, 1.0}}));
  index.Add(MakeDoc(1, {{1, 1.0}}));
  auto candidates = index.Candidates(
      SparseVector::FromEntries({{1, 1.0}}), /*exclude=*/0);
  EXPECT_EQ(candidates, (std::vector<DocId>{1}));
}

TEST(InvertedIndexTest, CandidatesDedupAcrossTerms) {
  InvertedIndex index;
  index.Add(MakeDoc(0, {{1, 1.0}, {2, 1.0}, {3, 1.0}}));
  auto candidates = index.Candidates(
      SparseVector::FromEntries({{1, 1.0}, {2, 1.0}, {3, 1.0}}), 99);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(InvertedIndexTest, ClearResets) {
  InvertedIndex index;
  index.Add(MakeDoc(0, {{1, 1.0}}));
  index.Clear();
  EXPECT_EQ(index.num_docs(), 0u);
  EXPECT_TRUE(index.Postings(1).empty());
  index.Add(MakeDoc(0, {{1, 1.0}}));  // id reusable after Clear
  EXPECT_EQ(index.num_docs(), 1u);
}

TEST(InvertedIndexTest, HeavyChurnStaysConsistent) {
  // Randomized add/remove churn; the index must always agree with a naive
  // membership model.
  Rng rng(99);
  InvertedIndex index;
  std::vector<Document> docs;
  for (DocId id = 0; id < 60; ++id) {
    std::vector<SparseVector::Entry> entries;
    const size_t n = 1 + rng.NextBounded(6);
    for (size_t t = 0; t < n; ++t) {
      entries.push_back({static_cast<TermId>(rng.NextBounded(20)), 1.0});
    }
    docs.push_back(MakeDoc(id, std::move(entries)));
  }
  std::set<DocId> alive;
  for (int step = 0; step < 500; ++step) {
    const DocId id = static_cast<DocId>(rng.NextBounded(60));
    if (alive.contains(id)) {
      index.Remove(docs[id]);
      alive.erase(id);
    } else {
      index.Add(docs[id]);
      alive.insert(id);
    }
  }
  EXPECT_EQ(index.num_docs(), alive.size());
  // Document frequencies match a naive recount for every term.
  for (TermId t = 0; t < 20; ++t) {
    size_t df = 0;
    for (DocId id : alive) {
      if (docs[id].terms.ValueAt(t) > 0.0) ++df;
    }
    EXPECT_EQ(index.DocumentFrequency(t), df) << "term " << t;
    for (const Posting& p : index.Postings(t)) {
      EXPECT_TRUE(alive.contains(p.doc));
      EXPECT_DOUBLE_EQ(p.tf, docs[p.doc].terms.ValueAt(t));
    }
  }
  // Candidates equal the naive overlap set.
  for (DocId probe = 0; probe < 10; ++probe) {
    auto candidates = index.Candidates(docs[probe].terms, probe);
    std::set<DocId> expected;
    for (DocId id : alive) {
      if (id == probe) continue;
      if (docs[id].terms.Dot(docs[probe].terms) > 0.0) expected.insert(id);
    }
    std::set<DocId> got(candidates.begin(), candidates.end());
    EXPECT_EQ(got, expected) << "probe " << probe;
  }
}

}  // namespace
}  // namespace nidc
