#include "nidc/shard/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "nidc/obs/reqtrace.h"
#include "nidc/shard/ingest.h"
#include "nidc/shard/tenant.h"

namespace nidc::shard {
namespace {

TenantConfig SmallConfig() {
  TenantConfig config;
  config.params.half_life_days = 7.0;
  config.params.life_span_days = 30.0;
  config.k = 3;
  config.step_days = 1.0;
  config.start_time = 0.0;
  config.seed = 42;
  return config;
}

// A deterministic little feed: `days` windows, `per_day` docs each, with
// per-tenant distinct vocabulary so different tenants cluster differently.
std::vector<RawDocument> MakeFeed(const std::string& salt, int days,
                                  int per_day) {
  std::vector<RawDocument> docs;
  for (int d = 0; d < days; ++d) {
    for (int i = 0; i < per_day; ++i) {
      RawDocument doc;
      doc.time = d + 0.1 + 0.8 * i / per_day;
      doc.topic = i % 3;
      doc.text = salt + "term" + std::to_string(i % 5) + " " + salt +
                 "word" + std::to_string((i + d) % 7) + " shared common " +
                 salt + "tail" + std::to_string(i % 2);
      docs.push_back(std::move(doc));
    }
  }
  // The wire codec round trip every real client's documents go through.
  auto parsed = ParseIngestJsonl(FormatIngestJsonl(docs));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

std::vector<std::vector<RawDocument>> InBatches(
    const std::vector<RawDocument>& docs, size_t batch_docs) {
  std::vector<std::vector<RawDocument>> batches;
  for (size_t off = 0; off < docs.size(); off += batch_docs) {
    const size_t n = std::min(batch_docs, docs.size() - off);
    batches.emplace_back(docs.begin() + off, docs.begin() + off + n);
  }
  return batches;
}

// What the service must reproduce: the same feed through a standalone
// Tenant, no service, no queues, no shard threads.
std::string ReferenceDigest(const std::string& dir,
                            const TenantConfig& config,
                            const std::vector<RawDocument>& docs,
                            DayTime flush_until) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  TenantRuntime runtime;
  auto tenant = Tenant::Create("reference", dir, config, runtime);
  EXPECT_TRUE(tenant.ok()) << tenant.status().ToString();
  for (const auto& batch : InBatches(docs, 16)) {
    EXPECT_TRUE((*tenant)->Ingest(batch).ok());
  }
  EXPECT_TRUE((*tenant)->FlushUntil(flush_until).ok());
  return (*tenant)->StateDigest();
}

class ShardServiceTest : public testing::Test {
 protected:
  std::string Root(const std::string& name) {
    const std::string root =
        testing::TempDir() + "/nidc_shard_service_" + name;
    std::filesystem::remove_all(root);
    return root;
  }

  std::unique_ptr<ShardService> StartService(
      const std::string& root, size_t shards, size_t queue_capacity = 64,
      obs::RequestTracer* tracer = nullptr) {
    ShardServiceOptions options;
    options.root = root;
    options.num_shards = shards;
    options.threads_per_shard = 1;
    options.queue_capacity = queue_capacity;
    options.tracer = tracer;
    auto service = ShardService::Start(std::move(options));
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }
};

TEST_F(ShardServiceTest, ValidatesTenantNames) {
  EXPECT_TRUE(ShardService::ValidateTenantName("news-feed_01.a").ok());
  EXPECT_FALSE(ShardService::ValidateTenantName("").ok());
  EXPECT_FALSE(ShardService::ValidateTenantName(".hidden").ok());
  EXPECT_FALSE(ShardService::ValidateTenantName("has/slash").ok());
  EXPECT_FALSE(ShardService::ValidateTenantName("has space").ok());
  EXPECT_FALSE(ShardService::ValidateTenantName(std::string(65, 'a')).ok());
}

TEST_F(ShardServiceTest, ShardAssignmentIsStable) {
  auto service = StartService(Root("stable"), 4);
  // FNV-1a is fixed; these pins fail if the hash ever changes, which
  // would reshuffle every deployment's tenant->shard map on restart.
  EXPECT_EQ(service->ShardOf("alpha"), service->ShardOf("alpha"));
  EXPECT_LT(service->ShardOf("alpha"), 4u);
  service->Stop();
}

TEST_F(ShardServiceTest, CreateIngestFlushMatchesReference) {
  const std::string root = Root("basic");
  const auto feed = MakeFeed("basic", 5, 8);
  const DayTime flush_until = 6.0;
  const std::string expected = ReferenceDigest(
      root + "_ref", SmallConfig(), feed, flush_until);

  auto service = StartService(root, 2);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  for (const auto& batch : InBatches(feed, 16)) {
    ASSERT_TRUE(service->EnqueueIngest("alpha", batch).ok());
  }
  ASSERT_TRUE(service->Flush("alpha", flush_until).ok());
  auto digest = service->StateDigest("alpha");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(*digest, expected);

  const auto infos = service->Tenants();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "alpha");
  EXPECT_EQ(infos[0].docs_ingested, feed.size());
  EXPECT_FALSE(infos[0].failed);
  EXPECT_DOUBLE_EQ(infos[0].now, flush_until);
  service->Stop();
}

TEST_F(ShardServiceTest, DuplicateCreateAndUnknownTenantAreRejected) {
  auto service = StartService(Root("dup"), 1);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  EXPECT_EQ(service->CreateTenant("alpha", SmallConfig()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(service->EnqueueIngest("ghost", {}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->Flush("ghost", 1.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->StateDigest("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->EvictTenant("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(service->CreateTenant("bad name", SmallConfig()).code(),
            StatusCode::kInvalidArgument);
  service->Stop();
}

TEST_F(ShardServiceTest, EvictThenReopenRestoresIdenticalState) {
  const std::string root = Root("evict");
  const auto feed = MakeFeed("evict", 4, 6);
  auto service = StartService(root, 2);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  for (const auto& batch : InBatches(feed, 8)) {
    ASSERT_TRUE(service->EnqueueIngest("alpha", batch).ok());
  }
  ASSERT_TRUE(service->Flush("alpha", 5.0).ok());
  auto before = service->StateDigest("alpha");
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service->EvictTenant("alpha").ok());
  EXPECT_EQ(service->StateDigest("alpha").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service->TenantNames().empty());

  // The directory survived; reopening recovers bit-identical state.
  ASSERT_TRUE(service->OpenTenant("alpha").ok());
  auto after = service->StateDigest("alpha");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // And the reopened tenant keeps ingesting where the feed left off.
  RawDocument more;
  more.time = 6.5;
  more.text = "evictterm0 late arrival common";
  ASSERT_TRUE(service->EnqueueIngest("alpha", {more}).ok());
  service->Drain();
  EXPECT_EQ(service->GetTenant("alpha")->docs_ingested(), feed.size() + 1);
  service->Stop();
}

TEST_F(ShardServiceTest, RestartRecoversEveryTenantOntoItsShard) {
  const std::string root = Root("restart");
  const std::vector<std::string> names = {"alpha", "bravo", "charlie"};
  std::vector<std::string> digests;
  {
    auto service = StartService(root, 3);
    for (const auto& name : names) {
      ASSERT_TRUE(service->CreateTenant(name, SmallConfig()).ok());
      for (const auto& batch : InBatches(MakeFeed(name, 3, 5), 8)) {
        ASSERT_TRUE(service->EnqueueIngest(name, batch).ok());
      }
      ASSERT_TRUE(service->Flush(name, 4.0).ok());
      auto digest = service->StateDigest(name);
      ASSERT_TRUE(digest.ok());
      digests.push_back(*digest);
    }
    service->Stop();  // clean shutdown: final checkpoints
  }
  auto service = StartService(root, 3);
  EXPECT_EQ(service->TenantNames(), names);
  for (size_t i = 0; i < names.size(); ++i) {
    auto digest = service->StateDigest(names[i]);
    ASSERT_TRUE(digest.ok());
    EXPECT_EQ(*digest, digests[i]) << names[i];
    EXPECT_EQ(service->GetTenant(names[i])->name(), names[i]);
  }
  service->Stop();
}

TEST_F(ShardServiceTest, CrashImageRecoversToTheSameState) {
  const std::string root = Root("crash");
  const std::string image = root + "_image";
  const auto feed = MakeFeed("crash", 4, 6);
  std::vector<std::string> digests(2);
  {
    auto service = StartService(root, 2);
    ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
    ASSERT_TRUE(service->CreateTenant("bravo", SmallConfig()).ok());
    for (const auto& batch : InBatches(feed, 8)) {
      ASSERT_TRUE(service->EnqueueIngest("alpha", batch).ok());
      ASSERT_TRUE(service->EnqueueIngest("bravo", batch).ok());
    }
    service->Drain();  // applied + WAL-durable, but NOT cleanly closed
    auto alpha = service->StateDigest("alpha");
    auto bravo = service->StateDigest("bravo");
    ASSERT_TRUE(alpha.ok() && bravo.ok());
    digests[0] = *alpha;
    digests[1] = *bravo;
    // A crash image: the tenant directories exactly as a kill -9 would
    // leave them — open WAL tail, no final checkpoint, no Close.
    std::filesystem::remove_all(image);
    std::filesystem::copy(root, image,
                          std::filesystem::copy_options::recursive);
    service->Stop();
  }
  auto service = StartService(image, 2);
  EXPECT_EQ(service->TenantNames(),
            (std::vector<std::string>{"alpha", "bravo"}));
  auto alpha = service->StateDigest("alpha");
  auto bravo = service->StateDigest("bravo");
  ASSERT_TRUE(alpha.ok() && bravo.ok());
  EXPECT_EQ(*alpha, digests[0]);
  EXPECT_EQ(*bravo, digests[1]);
  service->Stop();
}

TEST_F(ShardServiceTest, FullQueueAnswersOutOfRangeAndLosesNothing) {
  const std::string root = Root("backpressure");
  const auto feed = MakeFeed("press", 6, 10);
  const DayTime flush_until = 7.0;
  const std::string expected = ReferenceDigest(
      root + "_ref", SmallConfig(), feed, flush_until);

  // Capacity 1: while the single worker is busy stepping one batch, a
  // second batch can sit queued and a third must be pushed back.
  auto service = StartService(root, 1, /*queue_capacity=*/1);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  uint64_t rejections = 0;
  for (const auto& batch : InBatches(feed, 5)) {
    for (;;) {  // the client contract: back off and retry on 429
      Status status = service->EnqueueIngest("alpha", batch);
      if (status.ok()) break;
      ASSERT_EQ(status.code(), StatusCode::kOutOfRange)
          << status.ToString();
      ++rejections;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(service->Flush("alpha", flush_until).ok());
  auto digest = service->StateDigest("alpha");
  ASSERT_TRUE(digest.ok());
  // Backpressure must only delay work, never corrupt or reorder it.
  EXPECT_EQ(*digest, expected);
  EXPECT_EQ(service->metrics()
                ->GetCounter("shard.ingest.rejected_batches")
                ->Value(),
            rejections);
  service->Stop();
}

TEST_F(ShardServiceTest, ConcurrentMultiTenantIngestMatchesReferences) {
  // Many client threads, many tenants, several shards — run under TSan
  // in CI. Every tenant must end bit-identical to its single-stream
  // reference no matter how the shard workers interleave.
  const std::string root = Root("concurrent");
  constexpr size_t kTenants = 6;
  const DayTime flush_until = 5.0;
  std::vector<std::vector<RawDocument>> feeds;
  std::vector<std::string> expected;
  for (size_t t = 0; t < kTenants; ++t) {
    feeds.push_back(MakeFeed("t" + std::to_string(t), 4, 6));
    expected.push_back(ReferenceDigest(root + "_ref" + std::to_string(t),
                                       SmallConfig(), feeds[t],
                                       flush_until));
  }

  auto service = StartService(root, 4, /*queue_capacity=*/2);
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        service->CreateTenant("t" + std::to_string(t), SmallConfig()).ok());
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string name = "t" + std::to_string(t);
      for (const auto& batch : InBatches(feeds[t], 7)) {
        for (;;) {
          Status status = service->EnqueueIngest(name, batch);
          if (status.ok()) break;
          if (status.code() != StatusCode::kOutOfRange) {
            failed.store(true);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  ASSERT_FALSE(failed.load());
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        service->Flush("t" + std::to_string(t), flush_until).ok());
  }
  service->Drain();
  for (size_t t = 0; t < kTenants; ++t) {
    auto digest = service->StateDigest("t" + std::to_string(t));
    ASSERT_TRUE(digest.ok());
    EXPECT_EQ(*digest, expected[t]) << "tenant " << t;
  }
  service->Stop();
}

TEST_F(ShardServiceTest, StopIsIdempotentAndRejectsLateWork) {
  auto service = StartService(Root("stop"), 2);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  service->Stop();
  service->Stop();
  EXPECT_EQ(service->EnqueueIngest("alpha", {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service->Flush("alpha", 1.0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ShardServiceTest, TracedIngestStampsEveryPipelineStage) {
  obs::RequestTracer tracer;
  auto service = StartService(Root("traced"), 1, 64, &tracer);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());

  const obs::TraceContext trace = tracer.Mint();
  tracer.Begin(trace, "alpha");
  tracer.RecordStage(trace, obs::Stage::kIngest);
  ASSERT_TRUE(
      service->EnqueueIngest("alpha", MakeFeed("traced", 1, 4), trace).ok());
  // Closing the window drives the batch through the whole durable
  // pipeline: window close, WAL commit, step, checkpoint.
  ASSERT_TRUE(service->Flush("alpha", 2.0).ok());

  obs::TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(trace, &record));
  EXPECT_TRUE(record.completed);
  EXPECT_FALSE(record.resumed);
  // The acceptance bar: at least 5 ordered stages on one ingest trace.
  EXPECT_GE(record.stages.size(), 5u);
  for (size_t i = 1; i < record.stages.size(); ++i) {
    EXPECT_GE(record.stages[i].seconds, record.stages[i - 1].seconds);
  }
  for (const obs::Stage stage :
       {obs::Stage::kIngest, obs::Stage::kEnqueue, obs::Stage::kDequeue,
        obs::Stage::kWindowClose, obs::Stage::kWalCommit,
        obs::Stage::kStep}) {
    EXPECT_GE(record.StageSeconds(stage), 0.0)
        << "missing stage " << obs::StageName(stage);
  }
  EXPECT_GE(record.EndToEndSeconds(), 0.0);
  service->Stop();
}

TEST_F(ShardServiceTest, TraceSurvivesEvictAndReopen) {
  // The crash-recovery contract of the tracer: a document bound to a
  // trace before its tenant goes down still completes its stage record —
  // flagged resumed — after recovery re-drives the open window.
  obs::RequestTracer tracer;
  const std::string root = Root("trace_recover");
  auto service = StartService(root, 1, 64, &tracer);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());

  const obs::TraceContext trace = tracer.Mint();
  tracer.Begin(trace, "alpha");
  tracer.RecordStage(trace, obs::Stage::kIngest);
  RawDocument doc;
  doc.time = 0.5;  // inside the open window [0, 1): not yet stepped
  doc.text = "recoverterm pending window common";
  ASSERT_TRUE(service->EnqueueIngest("alpha", {doc}, trace).ok());
  service->Drain();
  {
    obs::TraceRecord record;
    ASSERT_TRUE(tracer.Lookup(trace, &record));
    EXPECT_FALSE(record.completed);  // window still open
  }

  // Down and back up. The doc->trace binding lives in the tracer, not
  // the tenant, so it survives the teardown.
  ASSERT_TRUE(service->EvictTenant("alpha").ok());
  ASSERT_TRUE(service->OpenTenant("alpha").ok());
  // Recovery re-primed the unstepped tail; closing the window now
  // finishes the trace's pipeline.
  ASSERT_TRUE(service->Flush("alpha", 2.0).ok());

  obs::TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(trace, &record));
  EXPECT_TRUE(record.completed);
  EXPECT_TRUE(record.resumed);
  EXPECT_GE(record.StageSeconds(obs::Stage::kWindowClose), 0.0);
  EXPECT_GE(record.StageSeconds(obs::Stage::kWalCommit), 0.0);
  EXPECT_GE(record.StageSeconds(obs::Stage::kStep), 0.0);
  service->Stop();
}

TEST_F(ShardServiceTest, RetryAfterHintTracksDrainRate) {
  auto service = StartService(Root("retry_hint"), 1);
  // Before any completions there is no rate to derive: fall back to 1s.
  EXPECT_EQ(service->RetryAfterHintSeconds(0), 1);

  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  for (const auto& batch : InBatches(MakeFeed("retry", 3, 6), 4)) {
    ASSERT_TRUE(service->EnqueueIngest("alpha", batch).ok());
  }
  service->Drain();
  // With completions observed and an empty queue the hint stays at the
  // floor; it must always be a sane header value.
  const int hint = service->RetryAfterHintSeconds(0);
  EXPECT_GE(hint, 1);
  EXPECT_LE(hint, 30);
  // Out-of-range shard index is answered with the fallback, not a crash.
  EXPECT_EQ(service->RetryAfterHintSeconds(99), 1);
  service->Stop();
}

TEST_F(ShardServiceTest, IngestErrorsDoNotPoisonTheTenant) {
  auto service = StartService(Root("badbatch"), 1);
  ASSERT_TRUE(service->CreateTenant("alpha", SmallConfig()).ok());
  RawDocument good;
  good.time = 2.0;
  good.text = "perfectly fine document";
  ASSERT_TRUE(service->EnqueueIngest("alpha", {good}).ok());
  service->Drain();
  // Out-of-order: older than everything already ingested. The tenant
  // rejects the batch on its shard; the rejection is visible in metrics
  // (shard.ingest.failed), and the tenant keeps serving.
  RawDocument stale;
  stale.time = 0.5;
  stale.text = "too old";
  ASSERT_TRUE(service->EnqueueIngest("alpha", {stale}).ok());
  service->Drain();
  EXPECT_EQ(
      service->metrics()->GetCounter("shard.ingest.failed")->Value(), 1u);
  EXPECT_FALSE(service->GetTenant("alpha")->failed());
  EXPECT_EQ(service->GetTenant("alpha")->docs_ingested(), 1u);
  service->Stop();
}

}  // namespace
}  // namespace nidc::shard
