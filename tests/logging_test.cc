#include "nidc/util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <regex>
#include <thread>

namespace nidc {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, FilteredMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the test asserts no crash / no UB.
  NIDC_LOG(Debug) << "invisible " << 42;
  NIDC_LOG(Info) << "also invisible";
  NIDC_LOG(Warning) << "still invisible";
}

TEST_F(LoggingTest, EmittedMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  NIDC_LOG(Info) << "hello " << 1 << " " << 2.5;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 1 2.5"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysPassesDefaultFilter) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  NIDC_LOG(Error) << "boom";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ERROR"), std::string::npos);
  EXPECT_NE(err.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, LinesCarryIsoTimestampAndThreadId) {
  testing::internal::CaptureStderr();
  NIDC_LOG(Info) << "stamped";
  const std::string err = testing::internal::GetCapturedStderr();
  // 2026-08-06T14:03:21.042Z [nidc INFO t0] stamped
  const std::regex prefix(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[nidc INFO t\d+\] stamped)");
  EXPECT_TRUE(std::regex_search(err, prefix)) << "got: " << err;
}

TEST_F(LoggingTest, ThreadIdsDifferAcrossThreads) {
  testing::internal::CaptureStderr();
  NIDC_LOG(Info) << "from main";
  std::thread([] { NIDC_LOG(Info) << "from worker"; }).join();
  const std::string err = testing::internal::GetCapturedStderr();
  const std::regex tid(R"(t(\d+)\] from)");
  auto it = std::sregex_iterator(err.begin(), err.end(), tid);
  ASSERT_EQ(std::distance(it, std::sregex_iterator()), 2);
  const std::string first = (*it)[1];
  const std::string second = (*std::next(it))[1];
  EXPECT_NE(first, second);
}

TEST_F(LoggingTest, EnvVarControlsLevel) {
  setenv("NIDC_LOG_LEVEL", "error", /*overwrite=*/1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  setenv("NIDC_LOG_LEVEL", "WARN", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);

  setenv("NIDC_LOG_LEVEL", "Debug", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  // Unrecognized and unset values leave the level untouched.
  setenv("NIDC_LOG_LEVEL", "verbose", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  unsetenv("NIDC_LOG_LEVEL");
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

}  // namespace
}  // namespace nidc
