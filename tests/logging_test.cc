#include "nidc/util/logging.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, FilteredMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the test asserts no crash / no UB.
  NIDC_LOG(Debug) << "invisible " << 42;
  NIDC_LOG(Info) << "also invisible";
  NIDC_LOG(Warning) << "still invisible";
}

TEST_F(LoggingTest, EmittedMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  NIDC_LOG(Info) << "hello " << 1 << " " << 2.5;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 1 2.5"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysPassesDefaultFilter) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  NIDC_LOG(Error) << "boom";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ERROR"), std::string::npos);
  EXPECT_NE(err.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace nidc
