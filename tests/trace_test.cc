#include "nidc/obs/trace.h"

#include <gtest/gtest.h>

namespace nidc::obs {
namespace {

const TraceNode* FindChild(const TraceNode& parent, const std::string& name) {
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

TEST(TracerTest, NoTracerInstalledIsANoOp) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  // Must not crash or record anywhere.
  NIDC_SPAN("orphan");
}

TEST(TracerTest, SpansNestIntoATree) {
  Tracer tracer;
  {
    ScopedTracerInstall install(&tracer);
    NIDC_SPAN("outer");
    {
      NIDC_SPAN("inner");
    }
    { NIDC_SPAN("inner2"); }
  }
  const TraceNode& root = tracer.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode* outer = FindChild(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_GE(outer->seconds, 0.0);
  ASSERT_EQ(outer->children.size(), 2u);
  EXPECT_NE(FindChild(*outer, "inner"), nullptr);
  EXPECT_NE(FindChild(*outer, "inner2"), nullptr);
}

TEST(TracerTest, RepeatedSpansAggregate) {
  Tracer tracer;
  {
    ScopedTracerInstall install(&tracer);
    NIDC_SPAN("run");
    for (int i = 0; i < 50; ++i) {
      NIDC_SPAN("sweep");
    }
  }
  const TraceNode* run = FindChild(tracer.root(), "run");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->children.size(), 1u);
  const TraceNode* sweep = FindChild(*run, "sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->count, 50u);
}

TEST(TracerTest, ResetDropsTheTreeButKeepsRecording) {
  Tracer tracer;
  ScopedTracerInstall install(&tracer);
  { NIDC_SPAN("before"); }
  tracer.Reset();
  EXPECT_TRUE(tracer.root().children.empty());
  { NIDC_SPAN("after"); }
  ASSERT_EQ(tracer.root().children.size(), 1u);
  EXPECT_EQ(tracer.root().children[0]->name, "after");
}

TEST(TracerTest, InstallRestoresThePreviousTracer) {
  Tracer outer_tracer;
  Tracer inner_tracer;
  ScopedTracerInstall outer(&outer_tracer);
  EXPECT_EQ(Tracer::Current(), &outer_tracer);
  {
    ScopedTracerInstall inner(&inner_tracer);
    EXPECT_EQ(Tracer::Current(), &inner_tracer);
    NIDC_SPAN("inner-only");
  }
  EXPECT_EQ(Tracer::Current(), &outer_tracer);
  EXPECT_TRUE(outer_tracer.root().children.empty());
  EXPECT_EQ(inner_tracer.root().children.size(), 1u);
}

TEST(TracerTest, RenderListsEveryNode) {
  Tracer tracer;
  {
    ScopedTracerInstall install(&tracer);
    NIDC_SPAN("phase");
    { NIDC_SPAN("subphase"); }
    { NIDC_SPAN("subphase"); }
  }
  const std::string text = tracer.Render();
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("subphase"), std::string::npos);
  EXPECT_NE(text.find("x2"), std::string::npos);
}

}  // namespace
}  // namespace nidc::obs
