#include "nidc/util/string_util.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("nothing"), "nothing");
}

TEST(TrimTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutput) {
  std::string long_arg(1000, 'a');
  const std::string out = StringPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace nidc
