#include "nidc/corpus/time_window.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(MakeWindowsTest, EqualLengthWindows) {
  auto windows = MakeWindows(0.0, 3, 10.0);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 10.0);
  EXPECT_DOUBLE_EQ(windows[2].begin, 20.0);
  EXPECT_DOUBLE_EQ(windows[2].end, 30.0);
}

TEST(MakeWindowsTest, LastWindowOverride) {
  auto windows = MakeWindows(0.0, 6, 30.0, 28.0);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_DOUBLE_EQ(windows[5].begin, 150.0);
  EXPECT_DOUBLE_EQ(windows[5].end, 178.0);  // the paper's 178-day span
}

TEST(MakeWindowsTest, WindowsAreContiguous) {
  auto windows = MakeWindows(5.0, 4, 7.0);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i].begin, windows[i - 1].end);
  }
}

TEST(TimeWindowTest, ContainsIsHalfOpen) {
  TimeWindow w{10.0, 20.0, "w"};
  EXPECT_TRUE(w.Contains(10.0));
  EXPECT_TRUE(w.Contains(19.999));
  EXPECT_FALSE(w.Contains(20.0));
  EXPECT_FALSE(w.Contains(9.999));
  EXPECT_DOUBLE_EQ(w.LengthDays(), 10.0);
}

class WindowStatsTest : public testing::Test {
 protected:
  void SetUp() override {
    // Window [0, 10): topic 1 x3, topic 2 x1, unlabeled x1.
    corpus_.AddText("alpha beta", 1.0, 1);
    corpus_.AddText("alpha gamma", 2.0, 1);
    corpus_.AddText("alpha delta", 3.0, 1);
    corpus_.AddText("epsilon zeta", 4.0, 2);
    corpus_.AddText("eta theta", 5.0);
    // Outside the window.
    corpus_.AddText("iota", 15.0, 1);
  }
  Corpus corpus_;
};

TEST_F(WindowStatsTest, CountsDocsAndTopics) {
  WindowStats stats = ComputeWindowStats(corpus_, {0.0, 10.0, "w1"});
  EXPECT_EQ(stats.num_docs, 5u);  // unlabeled doc still counts as a doc
  EXPECT_EQ(stats.num_topics, 2u);
  EXPECT_EQ(stats.min_topic_size, 1u);
  EXPECT_EQ(stats.max_topic_size, 3u);
  EXPECT_DOUBLE_EQ(stats.median_topic_size, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_topic_size, 2.0);
}

TEST_F(WindowStatsTest, EmptyWindow) {
  WindowStats stats = ComputeWindowStats(corpus_, {100.0, 110.0, "empty"});
  EXPECT_EQ(stats.num_docs, 0u);
  EXPECT_EQ(stats.num_topics, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_topic_size, 0.0);
}

TEST_F(WindowStatsTest, OddTopicCountMedian) {
  corpus_.AddText("kappa", 6.0, 3);
  corpus_.AddText("lambda", 6.5, 3);
  WindowStats stats = ComputeWindowStats(corpus_, {0.0, 10.0, "w1"});
  // Sizes 1, 2, 3 -> median 2.
  EXPECT_EQ(stats.num_topics, 3u);
  EXPECT_DOUBLE_EQ(stats.median_topic_size, 2.0);
}

TEST(TopicHistogramTest, BucketsPerDay) {
  Corpus c;
  c.AddText("a", 0.2, 5);
  c.AddText("b", 0.8, 5);
  c.AddText("c", 2.5, 5);
  c.AddText("d", 1.5, 6);  // different topic
  auto hist = TopicHistogram(c, 5, 0.0, 4.0);
  EXPECT_EQ(hist, (std::vector<size_t>{2, 0, 1, 0}));
}

TEST(TopicHistogramTest, RangeClipsDocs) {
  Corpus c;
  c.AddText("a", 0.5, 5);
  c.AddText("b", 9.5, 5);
  auto hist = TopicHistogram(c, 5, 1.0, 5.0);
  EXPECT_EQ(hist.size(), 4u);
  for (size_t count : hist) EXPECT_EQ(count, 0u);
}

TEST(TopicHistogramTest, EmptyRange) {
  Corpus c;
  EXPECT_TRUE(TopicHistogram(c, 5, 3.0, 3.0).empty());
}

TEST(RenderAsciiHistogramTest, ShapesMatchCounts) {
  const std::string out = RenderAsciiHistogram({0, 2, 4}, 2);
  // Two rows plus an axis; the tallest bucket fills both rows.
  const auto lines = [&] {
    std::vector<std::string> v;
    size_t pos = 0;
    while (pos < out.size()) {
      const size_t next = out.find('\n', pos);
      v.push_back(out.substr(pos, next - pos));
      pos = next + 1;
    }
    return v;
  }();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "  #");
  EXPECT_EQ(lines[1], " ##");
  EXPECT_EQ(lines[2], "---");
}

TEST(RenderAsciiHistogramTest, AllZeroRendersDots) {
  EXPECT_EQ(RenderAsciiHistogram({0, 0, 0}, 4), "...\n");
}

TEST(RenderAsciiHistogramTest, EmptyInput) {
  EXPECT_EQ(RenderAsciiHistogram({}, 4), "");
}

}  // namespace
}  // namespace nidc
