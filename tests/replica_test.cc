#include "nidc/repl/replica.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/state_io.h"
#include "nidc/obs/metrics.h"
#include "nidc/store/torture.h"
#include "nidc/util/fault_env.h"

namespace nidc {
namespace {

std::string FreshDir(const std::string& name) {
  Env* env = Env::Default();
  const std::string dir = testing::TempDir() + "/nidc_replica_test_" + name;
  env->CreateDir(dir);
  if (auto names = env->ListDir(dir); names.ok()) {
    for (const std::string& entry : *names) {
      env->RemoveFile(dir + "/" + entry);
    }
  }
  return dir;
}

// Converts the leader's durability commit stream into the canonical wire
// frame sequence an in-sync follower receives: the opening rotation as the
// base snapshot, every WAL append as a record, every later rotation as a
// seal of the previous generation.
class RecordingSink : public ReplicationSink {
 public:
  void OnWalRecord(uint64_t generation, uint64_t sequence,
                   uint64_t leader_steps, std::string_view payload) override {
    repl::ReplFrame frame;
    frame.type = repl::FrameType::kWalRecord;
    frame.generation = generation;
    frame.sequence = sequence;
    frame.leader_steps = leader_steps;
    frame.payload = std::string(payload);
    frames.push_back(std::move(frame));
  }

  void OnRotate(uint64_t generation, uint64_t sealed_records,
                uint64_t leader_steps, const std::string& snapshot) override {
    repl::ReplFrame frame;
    if (frames.empty()) {
      frame.type = repl::FrameType::kSnapshot;
      frame.generation = generation;
      frame.sequence = 0;
      frame.payload = snapshot;
    } else {
      frame.type = repl::FrameType::kSeal;
      frame.generation = generation - 1;
      frame.sequence = sealed_records;
    }
    frame.leader_steps = leader_steps;
    frames.push_back(std::move(frame));
  }

  std::vector<repl::ReplFrame> frames;
};

class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest() {
    TortureOptions shape;
    shape.num_steps = 24;
    stream_ = BuildTortureStream(shape);
    params_ = shape.params;
    incremental_.kmeans.k = 4;
  }

  // Runs the whole stream through a durable leader wired to a
  // RecordingSink and returns the recorded frame sequence.
  std::vector<repl::ReplFrame> RecordLeaderRun(const std::string& dir) {
    RecordingSink sink;
    DurableOptions durable;
    durable.dir = dir;
    durable.checkpoint_every = 5;
    durable.sink = &sink;
    auto leader = DurableClusterer::Open(stream_.corpus.get(), params_,
                                         incremental_, durable);
    EXPECT_TRUE(leader.ok()) << leader.status().ToString();
    for (size_t i = 0; i < stream_.batches.size(); ++i) {
      auto result = (*leader)->Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    EXPECT_TRUE((*leader)->Close().ok());
    return std::move(sink.frames);
  }

  Result<std::unique_ptr<repl::ReplicaClusterer>> OpenReplica(
      const std::string& dir, Env* env = nullptr) {
    repl::ReplicaOptions replica;
    replica.dir = dir;
    replica.env = env;
    return repl::ReplicaClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, replica);
  }

  std::string ReferenceFingerprint() {
    IncrementalClusterer reference(stream_.corpus.get(), params_,
                                   incremental_);
    for (size_t i = 0; i < stream_.batches.size(); ++i) {
      auto result = reference.Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    return SerializeState(CaptureState(reference));
  }

  // Promotes `replica` and returns the promoted leader's fingerprint.
  std::string PromotedFingerprint(
      std::unique_ptr<repl::ReplicaClusterer> replica) {
    DurableOptions durable;
    durable.checkpoint_every = 5;
    auto promoted = replica->Promote(durable);
    EXPECT_TRUE(promoted.ok()) << promoted.status().ToString();
    if (!promoted.ok()) return "";
    const std::string fingerprint =
        SerializeState(CaptureState((*promoted)->clusterer()));
    EXPECT_TRUE((*promoted)->Close().ok());
    return fingerprint;
  }

  TortureStream stream_;
  ForgettingParams params_;
  IncrementalOptions incremental_;
};

TEST_F(ReplicaTest, FollowsTheLiveStreamAndPromotesBitIdentically) {
  const auto frames = RecordLeaderRun(FreshDir("live_leader"));
  ASSERT_GT(frames.size(), 10u);
  auto replica = OpenReplica(FreshDir("live_follower"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  for (const repl::ReplFrame& frame : frames) {
    ASSERT_TRUE((*replica)->Apply(frame).ok());
  }
  const repl::ReplicaStats stats = (*replica)->stats();
  EXPECT_EQ(stats.lag_records, 0u);
  EXPECT_GT(stats.records_applied, 0u);
  EXPECT_GT(stats.local_rotations, 0u);
  EXPECT_EQ(stats.record_gaps, 0u);
  EXPECT_EQ(PromotedFingerprint(std::move(*replica)),
            ReferenceFingerprint());
}

TEST_F(ReplicaTest, RestartedFollowerSkipsAlreadyAppliedFrames) {
  const auto frames = RecordLeaderRun(FreshDir("restart_leader"));
  const std::string dir = FreshDir("restart_follower");
  {
    auto replica = OpenReplica(dir);
    ASSERT_TRUE(replica.ok()) << replica.status().ToString();
    for (size_t i = 0; i < frames.size() / 2; ++i) {
      ASSERT_TRUE((*replica)->Apply(frames[i]).ok());
    }
    ASSERT_TRUE((*replica)->Close().ok());
  }
  // Reopen at the persisted watermark and replay the entire stream from
  // the beginning, as a reconnecting leader would after losing track of
  // the follower: everything already applied must be skipped, the rest
  // applied, and the result must still match the reference.
  auto replica = OpenReplica(dir);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_GT((*replica)->applied_steps(), 0u);
  for (const repl::ReplFrame& frame : frames) {
    ASSERT_TRUE((*replica)->Apply(frame).ok());
  }
  const repl::ReplicaStats stats = (*replica)->stats();
  EXPECT_GT(stats.records_skipped + stats.stale_frames, 0u);
  EXPECT_EQ(PromotedFingerprint(std::move(*replica)),
            ReferenceFingerprint());
}

TEST_F(ReplicaTest, KilledMidCatchUpResumesFromItsOwnWal) {
  const auto frames = RecordLeaderRun(FreshDir("kill_leader"));
  const std::string dir = FreshDir("kill_follower");
  const std::string reference = ReferenceFingerprint();
  constexpr CrashFlush kPolicies[] = {CrashFlush::kDropUnsynced,
                                      CrashFlush::kTornWrite,
                                      CrashFlush::kKeepUnsynced};
  uint64_t crashes = 0;
  for (uint64_t kill = 1;; ++kill) {
    FreshDir("kill_follower");  // wipe
    FaultInjectionEnv fault_env(Env::Default());
    auto doomed = OpenReplica(dir, &fault_env);
    ASSERT_TRUE(doomed.ok()) << doomed.status().ToString();
    fault_env.ArmCrashAtOp(kill, kPolicies[(kill - 1) % 3]);
    for (const repl::ReplFrame& frame : frames) {
      const Status applied = (*doomed)->Apply(frame);
      if (!applied.ok()) {
        ASSERT_EQ(applied.code(), StatusCode::kIOError)
            << applied.ToString();
        break;
      }
    }
    const bool crashed = fault_env.crashed();
    fault_env.Disarm();
    doomed->reset();  // discard without a clean close, like a real kill

    // Restart on the real filesystem (exactly the bytes the crash left
    // behind), replay the full stream, and require bit-identical state.
    auto restarted = OpenReplica(dir);
    ASSERT_TRUE(restarted.ok())
        << "kill " << kill << ": " << restarted.status().ToString();
    for (const repl::ReplFrame& frame : frames) {
      ASSERT_TRUE((*restarted)->Apply(frame).ok()) << "kill " << kill;
    }
    ASSERT_EQ(PromotedFingerprint(std::move(*restarted)), reference)
        << "kill " << kill;
    if (!crashed) break;  // the whole replay ran without reaching the op
    ++crashes;
    ASSERT_LT(kill, 10000u) << "kill sweep did not terminate";
  }
  EXPECT_GT(crashes, 10u);
}

TEST_F(ReplicaTest, StaleDuplicateGapAndMismatchedSealFrames) {
  const auto frames = RecordLeaderRun(FreshDir("frames_leader"));
  // Index of the first seal so the replica below sits mid-generation-1.
  size_t first_seal = frames.size();
  for (size_t i = 0; i < frames.size(); ++i) {
    if (frames[i].type == repl::FrameType::kSeal) {
      first_seal = i;
      break;
    }
  }
  ASSERT_GT(first_seal, 2u);
  ASSERT_LT(first_seal, frames.size());

  auto replica = OpenReplica(FreshDir("frames_follower"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  // A record before any snapshot is an un-bridgeable gap.
  EXPECT_EQ((*replica)->Apply(frames[1]).code(),
            StatusCode::kFailedPrecondition);
  for (size_t i = 0; i < first_seal; ++i) {
    ASSERT_TRUE((*replica)->Apply(frames[i]).ok());
  }

  // Duplicate of the newest applied record: idempotent skip.
  EXPECT_TRUE((*replica)->Apply(frames[first_seal - 1]).ok());
  // Stale generation (the long-gone base snapshot): skipped, not applied.
  EXPECT_TRUE((*replica)->Apply(frames[0]).ok());
  // A gap within the generation: refused so the connection resyncs.
  repl::ReplFrame gap = frames[first_seal - 1];
  gap.sequence += 2;
  EXPECT_EQ((*replica)->Apply(gap).code(), StatusCode::kFailedPrecondition);
  // A future generation's record: refused the same way.
  repl::ReplFrame future = frames[first_seal - 1];
  future.generation += 3;
  EXPECT_EQ((*replica)->Apply(future).code(),
            StatusCode::kFailedPrecondition);
  // A seal that does not match the watermark: refused.
  repl::ReplFrame bad_seal = frames[first_seal];
  bad_seal.sequence += 1;
  EXPECT_EQ((*replica)->Apply(bad_seal).code(),
            StatusCode::kFailedPrecondition);

  const repl::ReplicaStats stats = (*replica)->stats();
  EXPECT_GE(stats.records_skipped, 1u);
  EXPECT_GE(stats.stale_frames, 1u);
  EXPECT_GE(stats.record_gaps, 2u);

  // The stream still continues cleanly from the real seal.
  for (size_t i = first_seal; i < frames.size(); ++i) {
    ASSERT_TRUE((*replica)->Apply(frames[i]).ok());
  }
  EXPECT_EQ(PromotedFingerprint(std::move(*replica)),
            ReferenceFingerprint());
}

}  // namespace
}  // namespace nidc
