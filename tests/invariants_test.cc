// Cross-module property tests: invariants that must hold over randomized
// corpora and parameter sweeps, independent of any particular data set.

#include <algorithm>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "nidc/core/hot_topics.h"
#include "nidc/core/incremental_clusterer.h"
#include "nidc/corpus/corpus_io.h"
#include "nidc/corpus/stream.h"
#include "nidc/eval/f1_measures.h"
#include "nidc/synth/tdt2_like_generator.h"

namespace nidc {
namespace {

// One reduced-scale corpus per (seed) parameter, clustered with the
// extended K-means; checks structural invariants of the result.
class ClusteringInvariantsTest
    : public testing::TestWithParam<std::tuple<uint64_t, double, size_t>> {
 protected:
  void SetUp() override {
    const auto [seed, beta, k] = GetParam();
    GeneratorOptions gopts;
    gopts.scale = 0.06;
    gopts.seed = seed;
    Tdt2LikeGenerator generator(gopts);
    corpus_ = std::move(generator.Generate()).value();

    const TimeWindow w = PaperWindows()[1];
    docs_ = corpus_->DocsInRange(w.begin, w.end);
    ASSERT_GT(docs_.size(), 20u);

    ForgettingParams params;
    params.half_life_days = beta;
    params.life_span_days = 30.0;
    ExtendedKMeansOptions kmeans;
    kmeans.k = k;
    kmeans.seed = seed ^ 0xC0;
    BatchClusterer clusterer(corpus_.get(), params, kmeans);
    auto run = clusterer.Run(docs_, w.end);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    result_ = run->clustering;
  }

  std::unique_ptr<Corpus> corpus_;
  std::vector<DocId> docs_;
  ClusteringResult result_;
};

TEST_P(ClusteringInvariantsTest, ResultIsAPartition) {
  // Every input document appears exactly once: in one cluster or on the
  // outlier list; nothing else appears.
  std::set<DocId> seen;
  for (const auto& members : result_.clusters) {
    for (DocId d : members) {
      EXPECT_TRUE(seen.insert(d).second) << "duplicate doc " << d;
    }
  }
  for (DocId d : result_.outliers) {
    EXPECT_TRUE(seen.insert(d).second) << "outlier also clustered: " << d;
  }
  EXPECT_EQ(seen.size(), docs_.size());
  for (DocId d : docs_) EXPECT_TRUE(seen.contains(d));
}

TEST_P(ClusteringInvariantsTest, GMatchesAvgSims) {
  double g = 0.0;
  for (size_t p = 0; p < result_.clusters.size(); ++p) {
    g += static_cast<double>(result_.clusters[p].size()) *
         result_.avg_sims[p];
  }
  EXPECT_NEAR(result_.g, g, 1e-9);
  EXPECT_GE(result_.g, 0.0);
}

TEST_P(ClusteringInvariantsTest, GHistoryConsistent) {
  ASSERT_EQ(result_.g_history.size(),
            static_cast<size_t>(result_.iterations) + 1);
  EXPECT_DOUBLE_EQ(result_.g_history.back(), result_.g);
}

TEST_P(ClusteringInvariantsTest, AvgSimsNonNegativeAndSingletonsZero) {
  for (size_t p = 0; p < result_.clusters.size(); ++p) {
    EXPECT_GE(result_.avg_sims[p], -1e-12);
    if (result_.clusters[p].size() <= 1) {
      EXPECT_DOUBLE_EQ(result_.avg_sims[p], 0.0);
    }
  }
}

TEST_P(ClusteringInvariantsTest, MarkingTablesAreConsistent) {
  auto marked = MarkClusters(*corpus_, result_.clusters, docs_, {});
  for (const MarkedCluster& mc : marked) {
    if (!mc.marked()) continue;
    // a + b == cluster size; a + c == topic size within the universe.
    EXPECT_EQ(mc.table.a + mc.table.b, mc.cluster_size);
    size_t topic_size = 0;
    for (DocId d : docs_) {
      if (corpus_->doc(d).topic == mc.topic) ++topic_size;
    }
    EXPECT_EQ(mc.table.a + mc.table.c, topic_size);
    // All four cells tile the evaluation universe.
    EXPECT_EQ(mc.table.a + mc.table.b + mc.table.c + mc.table.d,
              docs_.size());
    EXPECT_GE(mc.precision, 0.6);
  }
  const GlobalF1 f1 = ComputeGlobalF1(marked);
  EXPECT_GE(f1.micro_f1, 0.0);
  EXPECT_LE(f1.micro_f1, 1.0);
  EXPECT_LE(f1.macro_f1, 1.0);
}

TEST_P(ClusteringInvariantsTest, HotTopicMassesBounded) {
  ForgettingParams params;
  params.half_life_days = std::get<1>(GetParam());
  params.life_span_days = 30.0;
  ForgettingModel model(corpus_.get(), params);
  model.RebuildFromScratch(docs_, PaperWindows()[1].end);
  HotTopicOptions opts;
  opts.max_topics = 0;
  const auto digest = RankHotTopics(model, result_, opts);
  double total = 0.0;
  for (const HotTopic& topic : digest) {
    EXPECT_GE(topic.mass, 0.0);
    total += topic.mass;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
  // Digest is sorted by mass.
  for (size_t i = 1; i < digest.size(); ++i) {
    EXPECT_GE(digest[i - 1].mass, digest[i].mass);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusteringInvariantsTest,
    testing::Combine(testing::Values(uint64_t{11}, uint64_t{22},
                                     uint64_t{33}),
                     testing::Values(7.0, 30.0),
                     testing::Values(size_t{8}, size_t{20})));

// Generator → corpus-file → reload round trip preserves everything the
// pipeline consumes.
TEST(RoundTripInvariantsTest, GeneratedCorpusSurvivesDiskRoundTrip) {
  GeneratorOptions gopts;
  gopts.scale = 0.05;
  Tdt2LikeGenerator generator(gopts);
  auto raw = generator.GenerateRaw();
  ASSERT_TRUE(raw.ok());

  const std::string path = testing::TempDir() + "/nidc_roundtrip.tsv";
  ASSERT_TRUE(SaveRawDocuments(path, *raw).ok());
  auto reloaded = LoadCorpus(path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());

  // Build the original corpus directly and compare document by document.
  auto original = generator.Generate();
  ASSERT_TRUE(original.ok());
  ASSERT_EQ((*original)->size(), (*reloaded)->size());
  for (DocId d = 0; d < (*original)->size(); ++d) {
    const Document& a = (*original)->doc(d);
    const Document& b = (*reloaded)->doc(d);
    EXPECT_EQ(a.topic, b.topic);
    EXPECT_NEAR(a.time, b.time, 1e-6);
    EXPECT_EQ(a.source, b.source);
    EXPECT_DOUBLE_EQ(a.Length(), b.Length());
    EXPECT_EQ(a.terms.size(), b.terms.size());
  }
  // Vocabularies were built in the same order → identical interning.
  EXPECT_EQ((*original)->vocabulary().size(),
            (*reloaded)->vocabulary().size());
}

// The incremental clusterer's bookkeeping stays exact over a long stream
// with heavy expiration churn.
TEST(LongRunInvariantsTest, ActiveSetAlwaysMatchesWeights) {
  GeneratorOptions gopts;
  gopts.scale = 0.05;
  gopts.seed = 777;
  Tdt2LikeGenerator generator(gopts);
  auto corpus = std::move(generator.Generate()).value();

  ForgettingParams params;
  params.half_life_days = 3.0;
  params.life_span_days = 6.0;  // aggressive churn
  IncrementalOptions opts;
  opts.kmeans.k = 8;
  IncrementalClusterer clusterer(corpus.get(), params, opts);

  DocumentStream stream(corpus.get(), 0.0, 178.0, 2.0);
  while (auto batch = stream.Next()) {
    auto step = clusterer.Step(batch->docs, batch->end);
    if (!step.ok()) continue;
    const ForgettingModel& model = clusterer.model();
    double sum = 0.0;
    for (DocId id : model.active_docs()) {
      const double w = model.Weight(id);
      EXPECT_GE(w, params.Epsilon());  // expiration is complete
      EXPECT_LE(w, 1.0 + 1e-12);
      sum += w;
    }
    EXPECT_NEAR(model.TotalWeight(), sum, 1e-6 * std::max(1.0, sum));
    // Clustering covered exactly the active set.
    EXPECT_EQ(step->clustering.TotalAssigned() +
                  step->clustering.outliers.size(),
              model.num_active());
  }
}

}  // namespace
}  // namespace nidc
