#include "nidc/baselines/group_average_clustering.h"

#include <set>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class GacTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* fruit[] = {"apple banana orchard fruit",
                           "banana apple harvest fruit",
                           "orchard apple banana ripe",
                           "fruit harvest ripe apple"};
    const char* finance[] = {"stock market shares trading",
                             "market shares broker trading",
                             "stock broker market rally",
                             "shares rally trading stock"};
    DayTime t = 0.0;
    for (const char* s : fruit) corpus_.AddText(s, t += 0.1, 1);
    for (const char* s : finance) corpus_.AddText(s, t += 0.1, 2);
    docs_ = {0, 1, 2, 3, 4, 5, 6, 7};
  }
  Corpus corpus_;
  std::vector<DocId> docs_;
};

TEST_F(GacTest, MergesDownToTarget) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 2;
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 2u);
  EXPECT_GE(result->passes, 1);
}

TEST_F(GacTest, ClustersAreTopicPure) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 2;
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& members : result->clusters) {
    std::set<TopicId> topics;
    for (DocId d : members) topics.insert(corpus_.doc(d).topic);
    EXPECT_EQ(topics.size(), 1u);
  }
}

TEST_F(GacTest, AllDocsSurviveClustering) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 3;
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  std::set<DocId> seen;
  for (const auto& c : result->clusters) {
    for (DocId d : c) seen.insert(d);
  }
  EXPECT_EQ(seen.size(), docs_.size());
}

TEST_F(GacTest, TargetLargerThanNLeavesSingletons) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 100;
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), docs_.size());
}

TEST_F(GacTest, SmallBucketsStillReachTarget) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 2;
  opts.bucket_size = 3;
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 2u);
}

TEST_F(GacTest, QualityGateCanBlockMerges) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 1;
  opts.min_merge_similarity = 1e9;  // nothing is ever similar enough
  auto result = RunGroupAverageClustering(model, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), docs_.size());
}

TEST_F(GacTest, RejectsBadOptions) {
  TfIdfModel model(corpus_, docs_);
  GacOptions opts;
  opts.target_clusters = 0;
  EXPECT_FALSE(RunGroupAverageClustering(model, docs_, opts).ok());
  opts.target_clusters = 2;
  opts.bucket_size = 1;
  EXPECT_FALSE(RunGroupAverageClustering(model, docs_, opts).ok());
  opts.bucket_size = 10;
  opts.reduction_factor = 1.5;
  EXPECT_FALSE(RunGroupAverageClustering(model, docs_, opts).ok());
}

}  // namespace
}  // namespace nidc
