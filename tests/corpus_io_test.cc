#include "nidc/corpus/corpus_io.h"

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(CorpusIoTest, FormatAndParseRoundTrip) {
  RawDocument doc;
  doc.time = 12.25;
  doc.topic = 20074;
  doc.source = "APW";
  doc.text = "protests erupted in lagos";
  Result<RawDocument> parsed = ParseRawDocument(FormatRawDocument(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->time, 12.25);
  EXPECT_EQ(parsed->topic, 20074);
  EXPECT_EQ(parsed->source, "APW");
  EXPECT_EQ(parsed->text, "protests erupted in lagos");
}

TEST(CorpusIoTest, FormatSanitizesTabsAndNewlines) {
  RawDocument doc;
  doc.text = "line1\nline2\twith tab";
  const std::string line = FormatRawDocument(doc);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // Exactly the three field-separating tabs survive.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 3);
}

TEST(CorpusIoTest, ParseRejectsWrongFieldCount) {
  EXPECT_EQ(ParseRawDocument("only\tthree\tfields").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRawDocument("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, ParseRejectsBadNumbers) {
  EXPECT_EQ(ParseRawDocument("notanumber\t1\tsrc\ttext").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, SaveAndLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/nidc_corpus_io_test.tsv";
  std::vector<RawDocument> docs;
  for (int i = 0; i < 5; ++i) {
    RawDocument d;
    d.time = i * 1.5;
    d.topic = 100 + i;
    d.source = "CNN";
    d.text = "document number " + std::to_string(i);
    docs.push_back(d);
  }
  ASSERT_TRUE(SaveRawDocuments(path, docs).ok());

  Result<std::vector<RawDocument>> loaded = LoadRawDocuments(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].time, i * 1.5);
    EXPECT_EQ((*loaded)[i].topic, 100 + i);
    EXPECT_EQ((*loaded)[i].text, docs[i].text);
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadCorpusAnalyzesText) {
  const std::string path = testing::TempDir() + "/nidc_corpus_load_test.tsv";
  RawDocument d;
  d.time = 1.0;
  d.topic = 42;
  d.source = "VOA";
  d.text = "nuclear tests in india";
  ASSERT_TRUE(SaveRawDocuments(path, {d}).ok());

  Result<std::unique_ptr<Corpus>> corpus = LoadCorpus(path);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ((*corpus)->size(), 1u);
  EXPECT_NE((*corpus)->vocabulary().Lookup("nuclear"), kInvalidTermId);
  EXPECT_EQ((*corpus)->doc(0).topic, 42);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadRawDocuments("/definitely/not/here.tsv").status().code(),
            StatusCode::kIOError);
}

TEST(CorpusIoTest, LoadReportsLineNumberOnError) {
  const std::string path = testing::TempDir() + "/nidc_corpus_bad_test.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# header comment\n1.0\t5\tsrc\tok text\ngarbage line\n", f);
  fclose(f);
  Result<std::vector<RawDocument>> loaded = LoadRawDocuments(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, CommentsAndBlankLinesSkipped) {
  const std::string path = testing::TempDir() + "/nidc_corpus_cmt_test.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# comment\n\n2.0\t7\tABC\tsome text\n", f);
  fclose(f);
  Result<std::vector<RawDocument>> loaded = LoadRawDocuments(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, ParseRejectsNonFiniteTime) {
  EXPECT_EQ(ParseRawDocument("nan\t1\tsrc\ttext").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRawDocument("inf\t1\tsrc\ttext").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, LenientLoadSkipsAndCountsBadRecords) {
  const std::string path = testing::TempDir() + "/nidc_corpus_lenient.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs(
      "1.0\t5\tsrc\tgood one\n"
      "garbage line\n"
      "nan\t5\tsrc\tbad time\n"
      "3.0\t6\tsrc\tgood two\n",
      f);
  fclose(f);

  // Strict (default) fails on line 2 but still reports what it saw.
  CorpusReadStats strict_stats;
  Result<std::vector<RawDocument>> strict =
      LoadRawDocuments(path, {}, &strict_stats);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict_stats.bad_records, 1u);

  // Lenient skips both damaged lines and keeps the good ones.
  CorpusReadOptions lenient;
  lenient.strict = false;
  CorpusReadStats stats;
  Result<std::vector<RawDocument>> loaded =
      LoadRawDocuments(path, lenient, &stats);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].text, "good one");
  EXPECT_EQ((*loaded)[1].text, "good two");
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_EQ(stats.bad_records, 2u);
  EXPECT_NE(stats.first_error.find(":2"), std::string::npos);

  CorpusReadStats corpus_stats;
  Result<std::unique_ptr<Corpus>> corpus =
      LoadCorpus(path, lenient, &corpus_stats);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ((*corpus)->size(), 2u);
  EXPECT_EQ(corpus_stats.bad_records, 2u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = testing::TempDir() + "/nidc_corpus_atomic.tsv";
  RawDocument d;
  d.time = 4.0;
  d.topic = 9;
  d.source = "NYT";
  d.text = "first version";
  ASSERT_TRUE(SaveRawDocuments(path, {d}).ok());
  d.text = "second version";
  ASSERT_TRUE(SaveRawDocuments(path, {d}).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
  Result<std::vector<RawDocument>> loaded = LoadRawDocuments(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].text, "second version");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nidc
