#include "nidc/baselines/spherical_kmeans.h"

#include <set>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class SphericalKMeansTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* fruit[] = {"apple banana orchard fruit",
                           "banana apple harvest fruit",
                           "orchard apple banana ripe"};
    const char* finance[] = {"stock market shares trading",
                             "market shares broker trading",
                             "stock broker market rally"};
    for (const char* s : fruit) corpus_.AddText(s, 0.0, 1);
    for (const char* s : finance) corpus_.AddText(s, 0.0, 2);
    docs_ = {0, 1, 2, 3, 4, 5};
  }
  Corpus corpus_;
  std::vector<DocId> docs_;
};

TEST_F(SphericalKMeansTest, SeparatesPlantedClusters) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 2;
  opts.seed = 7;
  auto result = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 2u);
  for (const auto& members : result->clusters) {
    std::set<TopicId> topics;
    for (DocId d : members) topics.insert(corpus_.doc(d).topic);
    EXPECT_EQ(topics.size(), 1u);
  }
}

TEST_F(SphericalKMeansTest, AllDocsAssigned) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 3;
  auto result = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (const auto& c : result->clusters) total += c.size();
  EXPECT_EQ(total, docs_.size());
}

TEST_F(SphericalKMeansTest, ConvergesAndReportsIterations) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 2;
  auto result = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_GE(result->iterations, 1);
  EXPECT_GT(result->objective, 0.0);
}

TEST_F(SphericalKMeansTest, CentroidsAreUnitNorm) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 2;
  auto result = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(result.ok());
  for (size_t p = 0; p < result->centroids.size(); ++p) {
    if (result->clusters[p].empty()) continue;
    EXPECT_NEAR(result->centroids[p].Norm(), 1.0, 1e-9);
  }
}

TEST_F(SphericalKMeansTest, DeterministicForSeed) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 2;
  opts.seed = 99;
  auto a = RunSphericalKMeans(model, opts);
  auto b = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clusters, b->clusters);
}

TEST_F(SphericalKMeansTest, KClampedToN) {
  TfIdfModel model(corpus_, docs_);
  SphericalKMeansOptions opts;
  opts.k = 50;
  auto result = RunSphericalKMeans(model, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), docs_.size());
}

TEST_F(SphericalKMeansTest, RejectsBadInput) {
  TfIdfModel empty(corpus_, {});
  SphericalKMeansOptions opts;
  EXPECT_FALSE(RunSphericalKMeans(empty, opts).ok());
  TfIdfModel model(corpus_, docs_);
  opts.k = 0;
  EXPECT_FALSE(RunSphericalKMeans(model, opts).ok());
}

}  // namespace
}  // namespace nidc
