#include "nidc/core/state_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class StateIoTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions baghdad embargo", 0.5, 1);
    corpus_.AddText("olympics skating nagano medal", 1.0, 2);
    corpus_.AddText("olympics hockey nagano final", 1.5, 2);
  }

  ForgettingParams Params() {
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 30.0;
    return p;
  }

  IncrementalOptions Options() {
    IncrementalOptions o;
    o.kmeans.k = 2;
    o.kmeans.seed = 3;
    return o;
  }

  Corpus corpus_;
};

TEST_F(StateIoTest, SerializeParseRoundTrip) {
  IncrementalClusterer clusterer(&corpus_, Params(), Options());
  ASSERT_TRUE(clusterer.Step({0, 1, 2, 3}, 2.0).ok());

  const ClustererState state = CaptureState(clusterer);
  Result<ClustererState> parsed = ParseState(SerializeState(state));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->now, 2.0);
  EXPECT_DOUBLE_EQ(parsed->params.half_life_days, 7.0);
  EXPECT_EQ(parsed->active_docs, state.active_docs);
  ASSERT_TRUE(parsed->last_result.has_value());
  EXPECT_EQ(parsed->last_result->clusters, state.last_result->clusters);
  EXPECT_EQ(parsed->last_result->outliers, state.last_result->outliers);
  EXPECT_DOUBLE_EQ(parsed->last_result->g, state.last_result->g);
  EXPECT_EQ(parsed->last_result->iterations,
            state.last_result->iterations);
  EXPECT_EQ(parsed->last_result->converged, state.last_result->converged);
}

TEST_F(StateIoTest, StateWithoutResultRoundTrips) {
  ClustererState state;
  state.params = Params();
  state.now = 5.0;
  state.active_docs = {0, 2};
  Result<ClustererState> parsed = ParseState(SerializeState(state));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->last_result.has_value());
  EXPECT_EQ(parsed->active_docs, (std::vector<DocId>{0, 2}));
}

TEST_F(StateIoTest, FileRoundTrip) {
  IncrementalClusterer clusterer(&corpus_, Params(), Options());
  ASSERT_TRUE(clusterer.Step({0, 1, 2, 3}, 2.0).ok());
  const std::string path = testing::TempDir() + "/nidc_state_test.txt";
  ASSERT_TRUE(SaveState(CaptureState(clusterer), path).ok());
  Result<ClustererState> loaded = LoadState(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->active_docs.size(), 4u);
  std::remove(path.c_str());
}

TEST_F(StateIoTest, RestoreReproducesStatisticsExactly) {
  IncrementalClusterer original(&corpus_, Params(), Options());
  ASSERT_TRUE(original.Step({0, 1}, 1.0).ok());
  ASSERT_TRUE(original.Step({2, 3}, 2.0).ok());

  auto restored = RestoreClusterer(&corpus_, Options(),
                                   CaptureState(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const ForgettingModel& a = original.model();
  const ForgettingModel& b = (*restored)->model();
  ASSERT_EQ(a.num_active(), b.num_active());
  EXPECT_DOUBLE_EQ(a.TotalWeight(), b.TotalWeight());
  for (DocId id : a.active_docs()) {
    EXPECT_DOUBLE_EQ(a.Weight(id), b.Weight(id)) << id;
    EXPECT_DOUBLE_EQ(a.PrDoc(id), b.PrDoc(id)) << id;
  }
  for (TermId t = 0; t < corpus_.vocabulary().size(); ++t) {
    EXPECT_NEAR(a.PrTerm(t), b.PrTerm(t), 1e-15) << t;
  }
}

TEST_F(StateIoTest, RestoredClustererContinuesSeamlessly) {
  IncrementalClusterer original(&corpus_, Params(), Options());
  ASSERT_TRUE(original.Step({0, 1, 2, 3}, 2.0).ok());
  auto restored = RestoreClusterer(&corpus_, Options(),
                                   CaptureState(original));
  ASSERT_TRUE(restored.ok());

  corpus_.AddText("tobacco settlement senate vote", 3.0, 3);
  auto step_restored = (*restored)->Step({4}, 3.0);
  auto step_original = original.Step({4}, 3.0);
  ASSERT_TRUE(step_restored.ok());
  ASSERT_TRUE(step_original.ok());
  // Same seeding (membership) + identical statistics → same clusters.
  EXPECT_EQ(step_restored->clustering.clusters,
            step_original->clustering.clusters);
}

TEST_F(StateIoTest, RestoreRecomputesRepresentatives) {
  IncrementalClusterer original(&corpus_, Params(), Options());
  ASSERT_TRUE(original.Step({0, 1, 2, 3}, 2.0).ok());
  auto restored = RestoreClusterer(&corpus_, Options(),
                                   CaptureState(original));
  ASSERT_TRUE(restored.ok());
  const auto& orig_result = *original.last_result();
  const auto& rest_result = *(*restored)->last_result();
  ASSERT_EQ(orig_result.representatives.size(),
            rest_result.representatives.size());
  for (size_t p = 0; p < orig_result.representatives.size(); ++p) {
    const auto& a = orig_result.representatives[p];
    const auto& b = rest_result.representatives[p];
    for (const auto& e : a.entries()) {
      EXPECT_NEAR(b.ValueAt(e.id), e.value, 1e-12);
    }
  }
}

TEST_F(StateIoTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseState("").ok());
  EXPECT_FALSE(ParseState("random text").ok());
  EXPECT_FALSE(ParseState("nidc-state v2\n").ok());
  EXPECT_FALSE(ParseState("nidc-state v1\nparams -1 5\n").ok());
  EXPECT_FALSE(
      ParseState("nidc-state v1\nparams 7 30\nnow 1\nactive 3 1 2\n").ok());
}

TEST_F(StateIoTest, RestoreRejectsForeignCorpus) {
  ClustererState state;
  state.params = Params();
  state.now = 10.0;
  state.active_docs = {0, 99};  // 99 does not exist
  EXPECT_EQ(RestoreClusterer(&corpus_, Options(), state).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateIoTest, RestoreRejectsFutureDocuments) {
  ClustererState state;
  state.params = Params();
  state.now = 0.2;  // doc 2 was acquired at t=1.0 > 0.2
  state.active_docs = {0, 2};
  EXPECT_EQ(RestoreClusterer(&corpus_, Options(), state).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadState("/no/such/state.txt").status().code(),
            StatusCode::kIOError);
}

TEST_F(StateIoTest, ExactSectionAndStepCountRoundTripBitExactly) {
  IncrementalClusterer clusterer(&corpus_, Params(), Options());
  ASSERT_TRUE(clusterer.Step({0, 1}, 1.0).ok());
  ASSERT_TRUE(clusterer.Step({2, 3}, 2.0).ok());

  const ClustererState state = CaptureState(clusterer);
  ASSERT_TRUE(state.exact.has_value());
  EXPECT_EQ(state.step_count, 2u);

  Result<ClustererState> parsed = ParseState(SerializeState(state));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->step_count, 2u);
  ASSERT_TRUE(parsed->exact.has_value());
  // Hex-float (%a) serialization: every double survives to the last bit.
  EXPECT_EQ(parsed->exact->now, state.exact->now);
  EXPECT_EQ(parsed->exact->tdw, state.exact->tdw);
  EXPECT_EQ(parsed->exact->weights, state.exact->weights);
  EXPECT_EQ(parsed->exact->term_scale, state.exact->term_scale);
  EXPECT_EQ(parsed->exact->term_sums, state.exact->term_sums);
}

TEST_F(StateIoTest, RestoreRejectsDuplicateActiveIds) {
  ClustererState state;
  state.params = Params();
  state.now = 10.0;
  state.active_docs = {0, 1, 0};
  EXPECT_EQ(RestoreClusterer(&corpus_, Options(), state).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateIoTest, LegacyV1SnapshotStillLoads) {
  // A v1 snapshot has no steps line and no exact section; restoring one
  // rebuilds statistics from acquisition times instead.
  const std::string v1 =
      "nidc-state v1\n"
      "params 7 30\n"
      "now 2\n"
      "active 2 0 1\n"
      "clusters none\n";
  Result<ClustererState> parsed = ParseState(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->step_count, 0u);
  EXPECT_FALSE(parsed->exact.has_value());
  auto restored = RestoreClusterer(&corpus_, Options(), *parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->model().num_active(), 2u);
}

}  // namespace
}  // namespace nidc
