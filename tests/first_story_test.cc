#include "nidc/core/first_story.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class FirstStoryTest : public testing::Test {
 protected:
  void SetUp() override {
    // Note: under the paper's idf (1/√Pr(t_k)), the unique terms of
    // decayed documents get enormous idf and dominate their ψ direction,
    // so follow-up stories need substantial vocabulary overlap to score
    // as similar — the texts below overlap heavily on purpose.
    corpus_.AddText("earthquake shakes city rescue teams", 0.0, 1);
    corpus_.AddText("rescue teams search earthquake rubble", 0.5, 1);
    corpus_.AddText("soccer final fans celebrate victory", 1.0, 2);
    corpus_.AddText("earthquake rescue teams search rubble city", 1.5, 1);
    corpus_.AddText("election campaign candidates debate", 20.0, 3);
    corpus_.AddText("earthquake shakes city rescue teams", 40.0, 1);
  }

  ForgettingParams Params(double gamma = 10.0) {
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = gamma;
    return p;
  }

  Corpus corpus_;
};

TEST_F(FirstStoryTest, VeryFirstDocumentIsNovel) {
  FirstStoryDetector detector(&corpus_, Params());
  auto verdicts = detector.Observe({0}, 0.0);
  ASSERT_TRUE(verdicts.ok());
  ASSERT_EQ(verdicts->size(), 1u);
  EXPECT_TRUE((*verdicts)[0].is_first_story);
  EXPECT_DOUBLE_EQ((*verdicts)[0].max_similarity, 0.0);
}

TEST_F(FirstStoryTest, FollowUpStoryIsNotNovel) {
  FirstStoryDetector detector(&corpus_, Params());
  ASSERT_TRUE(detector.Observe({0}, 0.0).ok());
  auto verdicts = detector.Observe({1}, 0.5);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_FALSE((*verdicts)[0].is_first_story);
  EXPECT_GT((*verdicts)[0].max_similarity, 0.25);
  EXPECT_EQ((*verdicts)[0].nearest, 0u);
}

TEST_F(FirstStoryTest, NewTopicFires) {
  FirstStoryDetector detector(&corpus_, Params());
  ASSERT_TRUE(detector.Observe({0, 1}, 0.5).ok());
  auto verdicts = detector.Observe({2}, 1.0);  // soccer: brand new
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE((*verdicts)[0].is_first_story);
}

TEST_F(FirstStoryTest, WithinBatchOrderingCounts) {
  // Docs 0 and 1 arrive together: 0 is novel, 1 matches 0.
  FirstStoryDetector detector(&corpus_, Params());
  auto verdicts = detector.Observe({0, 1}, 0.5);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE((*verdicts)[0].is_first_story);
  EXPECT_FALSE((*verdicts)[1].is_first_story);
}

TEST_F(FirstStoryTest, ExpiredTopicReFires) {
  // The earthquake topic expires (γ=10) long before day 40; its
  // resurgence is a first story again — the forgetting-based behaviour.
  FirstStoryDetector detector(&corpus_, Params(10.0));
  ASSERT_TRUE(detector.Observe({0, 1}, 0.5).ok());
  ASSERT_TRUE(detector.Observe({3}, 1.5).ok());
  auto verdict = detector.Observe({5}, 40.0);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE((*verdict)[0].is_first_story);
  EXPECT_EQ(detector.model().num_active(), 1u);  // everything else expired
}

TEST_F(FirstStoryTest, LongLifeSpanSuppressesReFire) {
  FirstStoryDetector detector(&corpus_, Params(365.0));
  ASSERT_TRUE(detector.Observe({0, 1}, 0.5).ok());
  ASSERT_TRUE(detector.Observe({3}, 1.5).ok());
  auto verdict = detector.Observe({5}, 40.0);
  ASSERT_TRUE(verdict.ok());
  // The old earthquake docs are still active: no first story.
  EXPECT_FALSE((*verdict)[0].is_first_story);
}

TEST_F(FirstStoryTest, CountsAccumulate) {
  FirstStoryDetector detector(&corpus_, Params());
  ASSERT_TRUE(detector.Observe({0, 1, 2, 3}, 1.5).ok());
  // earthquake (novel), follow-up, soccer (novel), follow-up.
  EXPECT_EQ(detector.num_first_stories(), 2u);
}

TEST_F(FirstStoryTest, RejectsTimeTravel) {
  FirstStoryDetector detector(&corpus_, Params());
  ASSERT_TRUE(detector.Observe({4}, 20.0).ok());
  EXPECT_FALSE(detector.Observe({0}, 1.0).ok());
}

TEST_F(FirstStoryTest, ThresholdIsRespected) {
  FirstStoryOptions opts;
  opts.novelty_threshold = 1.01;  // everything is novel
  FirstStoryDetector detector(&corpus_, Params(), opts);
  auto verdicts = detector.Observe({0, 1}, 0.5);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE((*verdicts)[0].is_first_story);
  EXPECT_TRUE((*verdicts)[1].is_first_story);
}

}  // namespace
}  // namespace nidc
