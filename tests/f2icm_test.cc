#include "nidc/baselines/f2icm.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class F2IcmTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* iraq[] = {"iraq weapons inspection baghdad",
                          "iraq sanctions baghdad embargo",
                          "iraq inspectors weapons crisis"};
    const char* games[] = {"olympics skating medal nagano",
                           "olympics hockey nagano final",
                           "skating gold nagano games"};
    DayTime t = 0.0;
    for (const char* s : iraq) corpus_.AddText(s, t += 0.1, 1);
    for (const char* s : games) corpus_.AddText(s, t += 0.1, 2);
    ForgettingParams params;
    params.half_life_days = 7.0;
    params.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, params);
    model_->AdvanceTo(1.0);
    model_->AddDocuments({0, 1, 2, 3, 4, 5});
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST_F(F2IcmTest, SeparatesPlantedTopics) {
  F2IcmOptions opts;
  opts.num_seeds = 2;
  auto result = RunF2Icm(*model_, *ctx_, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->clusters.size(), 2u);
  for (const auto& members : result->clusters) {
    std::set<TopicId> topics;
    for (DocId d : members) topics.insert(corpus_.doc(d).topic);
    EXPECT_EQ(topics.size(), 1u);
  }
  EXPECT_TRUE(result->outliers.empty());
}

TEST_F(F2IcmTest, SeedsLeadTheirClusters) {
  F2IcmOptions opts;
  opts.num_seeds = 2;
  auto result = RunF2Icm(*model_, *ctx_, opts);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < result->seeds.size(); ++s) {
    ASSERT_FALSE(result->clusters[s].empty());
    EXPECT_EQ(result->clusters[s].front(), result->seeds[s]);
  }
}

TEST_F(F2IcmTest, EstimatedSeedCountIsReasonable) {
  auto result = RunF2Icm(*model_, *ctx_, {});
  ASSERT_TRUE(result.ok());
  // Two planted topics with heavy intra-overlap: n_c lands near 2-3.
  EXPECT_GE(result->seeds.size(), 2u);
  EXPECT_LE(result->seeds.size(), 4u);
  EXPECT_GT(result->nc_estimate, 1.0);
}

TEST_F(F2IcmTest, AllDocumentsAccountedFor) {
  auto result = RunF2Icm(*model_, *ctx_, {});
  ASSERT_TRUE(result.ok());
  size_t total = result->outliers.size();
  for (const auto& members : result->clusters) total += members.size();
  EXPECT_EQ(total, 6u);
}

TEST_F(F2IcmTest, DisjointDocBecomesOutlierOrSeed) {
  corpus_.AddText("xylophone quixotic zephyr", 1.0, 9);
  model_->AddDocuments({6});
  SimilarityContext ctx(*model_);
  F2IcmOptions opts;
  opts.num_seeds = 2;
  auto result = RunF2Icm(*model_, ctx, opts);
  ASSERT_TRUE(result.ok());
  // δ=1 ⇒ seed power 0 ⇒ never a seed; similarity 0 to both seeds ⇒
  // outlier.
  EXPECT_EQ(result->outliers, (std::vector<DocId>{6}));
}

TEST_F(F2IcmTest, MaxSeedsCapsEstimate) {
  F2IcmOptions opts;
  opts.max_seeds = 1;
  auto result = RunF2Icm(*model_, *ctx_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 1u);
}

TEST_F(F2IcmTest, RejectsEmptyModel) {
  Corpus empty;
  ForgettingParams params;
  ForgettingModel model(&empty, params);
  SimilarityContext ctx(model);
  EXPECT_FALSE(RunF2Icm(model, ctx, {}).ok());
}

TEST_F(F2IcmTest, NoveltyBiasInSeedSelection) {
  // Two identical-content groups, one fresh, one four half-lives old: the
  // fresh group's documents carry the seed power.
  Corpus corpus;
  for (int i = 0; i < 3; ++i) corpus.AddText("alpha beta gamma", 0.0, 1);
  for (int i = 0; i < 3; ++i) corpus.AddText("alpha beta gamma", 28.0, 2);
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  ForgettingModel model(&corpus, params);
  model.AddDocuments({0, 1, 2});
  model.AdvanceTo(28.0);
  model.AddDocuments({3, 4, 5});
  SimilarityContext ctx(model);
  F2IcmOptions opts;
  opts.num_seeds = 1;
  auto result = RunF2Icm(model, ctx, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->seeds[0], 3u);  // a fresh document seeds the cluster
}

}  // namespace
}  // namespace nidc
