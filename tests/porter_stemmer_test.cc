#include "nidc/text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class PorterTest : public testing::Test {
 protected:
  std::string Stem(std::string_view w) { return stemmer_.Stem(w); }
  PorterStemmer stemmer_;
};

TEST_F(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(Stem("a"), "a");
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("by"), "by");
}

TEST_F(PorterTest, NonAlphabeticPassThrough) {
  EXPECT_EQ(Stem("e-mail"), "e-mail");
  EXPECT_EQ(Stem("o'brien"), "o'brien");
  EXPECT_EQ(Stem("tdt2"), "tdt2");
}

// Step 1a examples from Porter's paper.
TEST_F(PorterTest, Step1aPlurals) {
  EXPECT_EQ(Stem("caresses"), "caress");
  EXPECT_EQ(Stem("ponies"), "poni");
  EXPECT_EQ(Stem("ties"), "ti");
  EXPECT_EQ(Stem("caress"), "caress");
  EXPECT_EQ(Stem("cats"), "cat");
}

// Step 1b examples from Porter's paper.
TEST_F(PorterTest, Step1bPastAndGerund) {
  EXPECT_EQ(Stem("feed"), "feed");
  EXPECT_EQ(Stem("agreed"), "agre");
  EXPECT_EQ(Stem("plastered"), "plaster");
  EXPECT_EQ(Stem("bled"), "bled");
  EXPECT_EQ(Stem("motoring"), "motor");
  EXPECT_EQ(Stem("sing"), "sing");
}

TEST_F(PorterTest, Step1bCleanupRules) {
  EXPECT_EQ(Stem("conflated"), "conflat");
  EXPECT_EQ(Stem("troubled"), "troubl");
  EXPECT_EQ(Stem("sized"), "size");
  EXPECT_EQ(Stem("hopping"), "hop");
  EXPECT_EQ(Stem("tanned"), "tan");
  EXPECT_EQ(Stem("falling"), "fall");
  EXPECT_EQ(Stem("hissing"), "hiss");
  EXPECT_EQ(Stem("fizzed"), "fizz");
  EXPECT_EQ(Stem("failing"), "fail");
  EXPECT_EQ(Stem("filing"), "file");
}

TEST_F(PorterTest, Step1cYToI) {
  EXPECT_EQ(Stem("happy"), "happi");
  EXPECT_EQ(Stem("sky"), "sky");
}

// Step 2 examples from Porter's paper.
TEST_F(PorterTest, Step2DoubleSuffixes) {
  EXPECT_EQ(Stem("relational"), "relat");
  EXPECT_EQ(Stem("conditional"), "condit");
  EXPECT_EQ(Stem("rational"), "ration");
  EXPECT_EQ(Stem("digitizer"), "digit");
  EXPECT_EQ(Stem("vietnamization"), "vietnam");
  EXPECT_EQ(Stem("predication"), "predic");
  EXPECT_EQ(Stem("operator"), "oper");
  EXPECT_EQ(Stem("feudalism"), "feudal");
  EXPECT_EQ(Stem("decisiveness"), "decis");
  EXPECT_EQ(Stem("hopefulness"), "hope");
  EXPECT_EQ(Stem("callousness"), "callous");
  EXPECT_EQ(Stem("formality"), "formal");
  EXPECT_EQ(Stem("sensitivity"), "sensit");
}

// Step 3 examples.
TEST_F(PorterTest, Step3Suffixes) {
  EXPECT_EQ(Stem("triplicate"), "triplic");
  EXPECT_EQ(Stem("formative"), "form");
  EXPECT_EQ(Stem("formalize"), "formal");
  EXPECT_EQ(Stem("electricity"), "electr");
  EXPECT_EQ(Stem("electrical"), "electr");
  EXPECT_EQ(Stem("hopeful"), "hope");
  EXPECT_EQ(Stem("goodness"), "good");
}

// Step 4 examples.
TEST_F(PorterTest, Step4Suffixes) {
  EXPECT_EQ(Stem("revival"), "reviv");
  EXPECT_EQ(Stem("allowance"), "allow");
  EXPECT_EQ(Stem("inference"), "infer");
  EXPECT_EQ(Stem("airliner"), "airlin");
  EXPECT_EQ(Stem("adjustable"), "adjust");
  EXPECT_EQ(Stem("defensible"), "defens");
  EXPECT_EQ(Stem("replacement"), "replac");
  EXPECT_EQ(Stem("adjustment"), "adjust");
  EXPECT_EQ(Stem("dependent"), "depend");
  EXPECT_EQ(Stem("adoption"), "adopt");
  EXPECT_EQ(Stem("communism"), "commun");
  EXPECT_EQ(Stem("activate"), "activ");
  EXPECT_EQ(Stem("effective"), "effect");
}

// Step 5 examples.
TEST_F(PorterTest, Step5FinalE) {
  EXPECT_EQ(Stem("probate"), "probat");
  EXPECT_EQ(Stem("rate"), "rate");
  EXPECT_EQ(Stem("cease"), "ceas");
}

TEST_F(PorterTest, Step5DoubleL) {
  EXPECT_EQ(Stem("controll"), "control");
  EXPECT_EQ(Stem("roll"), "roll");
}

TEST_F(PorterTest, NewswireWordsMergeToSharedStems) {
  EXPECT_EQ(Stem("bombings"), Stem("bombing"));
  EXPECT_EQ(Stem("elections"), Stem("election"));
  EXPECT_EQ(Stem("clustering"), Stem("clustered"));
  EXPECT_EQ(Stem("economics"), Stem("economic"));
  EXPECT_EQ(Stem("nuclear"), "nuclear");
}

TEST_F(PorterTest, StemIsIdempotentOnCommonWords) {
  for (const char* word :
       {"running", "happily", "national", "governments", "violence",
        "olympics", "settlement", "approval", "shooting", "crisis"}) {
    const std::string once = Stem(word);
    EXPECT_EQ(Stem(once), once) << word;
  }
}

TEST_F(PorterTest, ArgumentStaysArgument) {
  EXPECT_EQ(Stem("argument"), "argument");
}

}  // namespace
}  // namespace nidc
