// Socket-level replication tests: a real leader (DurableClusterer +
// WalShipper + ReplListener) streaming to a real follower (ReplicaClusterer
// + TcpReplClient) over loopback TCP. Frame pumping, reconnect handshakes
// and heartbeats all run on their production threads here, so this file is
// also the ThreadSanitizer workload for the repl/ subsystem.

#include "nidc/repl/tcp.h"

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "nidc/core/state_io.h"
#include "nidc/store/torture.h"

namespace nidc {
namespace {

std::string FreshDir(const std::string& name) {
  Env* env = Env::Default();
  const std::string dir = testing::TempDir() + "/nidc_repl_tcp_test_" + name;
  env->CreateDir(dir);
  if (auto names = env->ListDir(dir); names.ok()) {
    for (const std::string& entry : *names) {
      env->RemoveFile(dir + "/" + entry);
    }
  }
  return dir;
}

bool WaitFor(const std::function<bool()>& predicate, double seconds = 20.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

class ReplTcpTest : public ::testing::Test {
 protected:
  ReplTcpTest() {
    TortureOptions shape;
    shape.num_steps = 20;
    stream_ = BuildTortureStream(shape);
    params_ = shape.params;
    incremental_.kmeans.k = 4;
  }

  Result<std::unique_ptr<DurableClusterer>> OpenLeader(
      const std::string& dir, repl::WalShipper* shipper) {
    DurableOptions durable;
    durable.dir = dir;
    durable.checkpoint_every = 5;
    durable.sink = shipper;
    return DurableClusterer::Open(stream_.corpus.get(), params_,
                                  incremental_, durable);
  }

  Result<std::unique_ptr<repl::ReplicaClusterer>> OpenReplica(
      const std::string& dir) {
    repl::ReplicaOptions replica;
    replica.dir = dir;
    return repl::ReplicaClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, replica);
  }

  void Feed(DurableClusterer* leader, size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      auto result = leader->Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
  }

  TortureStream stream_;
  ForgettingParams params_;
  IncrementalOptions incremental_;
};

TEST_F(ReplTcpTest, FollowerCatchesUpAndTracksTheLiveStream) {
  repl::ShipperOptions ship_options;
  ship_options.dir = FreshDir("live_leader");
  repl::WalShipper shipper(ship_options);
  auto leader = OpenLeader(ship_options.dir, &shipper);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  // Half the stream happens before the follower exists — the connection
  // handshake must catch it up from the snapshot/queue, not the live feed.
  Feed(leader->get(), 0, 10);

  repl::ReplListener listener(&shipper);
  ASSERT_TRUE(listener.Start(0).ok());
  shipper.StartHeartbeats(/*interval_s=*/0.05);

  auto replica = OpenReplica(FreshDir("live_follower"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  repl::TcpReplClientOptions client_options;
  client_options.port = listener.port();
  client_options.recv_timeout_s = 0.2;
  repl::TcpReplClient client(replica->get(), client_options);
  ASSERT_TRUE(client.Start().ok());

  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->applied_steps() == (*leader)->applied_steps();
  })) << "catch-up stalled at " << (*replica)->applied_steps() << "/"
      << (*leader)->applied_steps();

  // The rest of the stream arrives live.
  Feed(leader->get(), 10, stream_.batches.size());
  ASSERT_TRUE((*leader)->Close().ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->applied_steps() == (*leader)->applied_steps();
  }));
  // Heartbeats keep the freshness clock moving while the leader is idle.
  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->stats().last_frame_age_seconds < 0.5;
  }));
  const repl::ReplicaStats stats = (*replica)->stats();
  EXPECT_EQ(stats.lag_records, 0u);
  EXPECT_EQ(stats.leader_steps, (*leader)->applied_steps());

  client.Stop();
  listener.Stop();
  EXPECT_TRUE(client.fatal_status().ok());

  // Promoted state matches the leader bit for bit.
  DurableOptions durable;
  durable.checkpoint_every = 5;
  auto promoted = (*replica)->Promote(durable);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(SerializeState(CaptureState((*promoted)->clusterer())),
            SerializeState(CaptureState((*leader)->clusterer())));
  ASSERT_TRUE((*promoted)->Close().ok());
}

TEST_F(ReplTcpTest, ReconnectsOutOfOrderAndResumesFromItsWatermark) {
  repl::ShipperOptions ship_options;
  ship_options.dir = FreshDir("reconnect_leader");
  repl::WalShipper shipper(ship_options);
  auto leader = OpenLeader(ship_options.dir, &shipper);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();

  repl::ReplListener listener(&shipper);
  ASSERT_TRUE(listener.Start(0).ok());

  auto replica = OpenReplica(FreshDir("reconnect_follower"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  {
    repl::TcpReplClientOptions client_options;
    client_options.port = listener.port();
    client_options.recv_timeout_s = 0.2;
    repl::TcpReplClient client(replica->get(), client_options);
    ASSERT_TRUE(client.Start().ok());
    Feed(leader->get(), 0, 8);
    ASSERT_TRUE(WaitFor([&] {
      return (*replica)->applied_steps() == (*leader)->applied_steps();
    }));
    client.Stop();  // follower goes away mid-stream
  }

  // The leader advances (including a rotation) while nobody is listening;
  // a brand-new connection with the replica's persisted watermark must
  // resynchronize without any cross-connection state.
  Feed(leader->get(), 8, 16);
  const uint64_t connects_before = listener.connections_accepted();
  repl::TcpReplClientOptions client_options;
  client_options.port = listener.port();
  client_options.recv_timeout_s = 0.2;
  repl::TcpReplClient client(replica->get(), client_options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->applied_steps() == (*leader)->applied_steps();
  }));
  EXPECT_GT(listener.connections_accepted(), connects_before);

  Feed(leader->get(), 16, stream_.batches.size());
  ASSERT_TRUE((*leader)->Close().ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->applied_steps() == (*leader)->applied_steps();
  }));
  client.Stop();
  listener.Stop();
  EXPECT_EQ((*replica)->stats().record_gaps, 0u);
  ASSERT_TRUE((*replica)->Close().ok());
}

TEST_F(ReplTcpTest, ClientBacksOffUntilTheLeaderAppears) {
  // Grab an ephemeral port, then release it so the client dials a dead
  // port first: every attempt must fail fast and back off, not hang.
  uint16_t port = 0;
  {
    repl::ShipperOptions probe_options;
    probe_options.dir = FreshDir("probe");
    repl::WalShipper probe_shipper(probe_options);
    repl::ReplListener probe(&probe_shipper);
    ASSERT_TRUE(probe.Start(0).ok());
    port = probe.port();
    probe.Stop();
  }

  auto replica = OpenReplica(FreshDir("backoff_follower"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  repl::TcpReplClientOptions client_options;
  client_options.port = port;
  client_options.initial_backoff_s = 0.01;
  client_options.max_backoff_s = 0.05;
  client_options.recv_timeout_s = 0.2;
  repl::TcpReplClient client(replica->get(), client_options);
  ASSERT_TRUE(client.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.fatal_status().ok());

  // The leader comes up on that port; the client's next retry connects
  // and replication proceeds.
  repl::ShipperOptions ship_options;
  ship_options.dir = FreshDir("backoff_leader");
  repl::WalShipper shipper(ship_options);
  auto leader = OpenLeader(ship_options.dir, &shipper);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  repl::ReplListener listener(&shipper);
  ASSERT_TRUE(listener.Start(port).ok());
  ASSERT_TRUE(WaitFor([&] { return client.connected(); }));
  Feed(leader->get(), 0, 6);
  ASSERT_TRUE((*leader)->Close().ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*replica)->applied_steps() == (*leader)->applied_steps();
  }));
  EXPECT_GE(client.connects(), 1u);
  client.Stop();
  listener.Stop();
  ASSERT_TRUE((*replica)->Close().ok());
}

}  // namespace
}  // namespace nidc
