#include "nidc/obs/provenance.h"

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/extended_kmeans.h"
#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"

namespace nidc {
namespace {

obs::DecisionRecord Assigned(uint64_t doc, uint64_t cluster) {
  obs::DecisionRecord record;
  record.doc = doc;
  record.verdict = obs::ProvenanceVerdict::kAssigned;
  record.cluster_id = cluster;
  record.runner_up_id = cluster + 1;
  record.best_gain = 0.5;
  record.runner_up_gain = 0.25;
  record.margin = 0.25;
  return record;
}

TEST(ProvenanceLogTest, RecordAssignsSequenceAndStep) {
  obs::ProvenanceLog log(8);
  log.SetStep(3);
  log.Record(Assigned(10, 0));
  log.Record(Assigned(11, 1));
  const std::vector<obs::DecisionRecord> records = log.Recent();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 0u);
  EXPECT_EQ(records[1].sequence, 1u);
  EXPECT_EQ(records[0].step, 3u);
  EXPECT_EQ(records[1].step, 3u);
}

TEST(ProvenanceLogTest, RingEvictionDropsOldestAndForgetsLookup) {
  obs::ProvenanceLog log(4);
  for (uint64_t doc = 0; doc < 6; ++doc) log.Record(Assigned(doc, 0));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  // The two oldest decisions are gone from the ring *and* the doc index.
  EXPECT_FALSE(log.Lookup(0).has_value());
  EXPECT_FALSE(log.Lookup(1).has_value());
  ASSERT_TRUE(log.Lookup(5).has_value());
  const std::vector<obs::DecisionRecord> records = log.Recent();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().doc, 2u);
  EXPECT_EQ(records.back().doc, 5u);
  const std::vector<obs::DecisionRecord> capped = log.Recent(2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[0].doc, 4u);
  EXPECT_EQ(capped[1].doc, 5u);
}

TEST(ProvenanceLogTest, LookupReturnsNewestRecordForDoc) {
  obs::ProvenanceLog log(8);
  log.Record(Assigned(7, 1));
  log.Record(Assigned(7, 2));
  const std::optional<obs::DecisionRecord> record = log.Lookup(7);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->sequence, 1u);
  EXPECT_EQ(record->cluster_id, 2u);
}

TEST(ProvenanceLogTest, OverwritingOlderDuplicateKeepsNewerIndexEntry) {
  // Ring of 2 holding two records for doc 7: evicting the older one must
  // not drop the doc-index entry that points at the newer record.
  obs::ProvenanceLog log(2);
  log.Record(Assigned(7, 1));
  log.Record(Assigned(7, 2));
  log.Record(Assigned(8, 3));  // overwrites sequence 0 (doc 7, cluster 1)
  const std::optional<obs::DecisionRecord> record = log.Lookup(7);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->sequence, 1u);
  EXPECT_EQ(record->cluster_id, 2u);
  ASSERT_TRUE(log.Lookup(8).has_value());
}

TEST(ProvenanceLogTest, PublishesCountersAndRetainedGauge) {
  obs::MetricsRegistry registry;
  obs::ProvenanceLog log(2, &registry);
  EXPECT_EQ(registry.GetCounter("provenance.records")->Value(), 0u);
  for (uint64_t doc = 0; doc < 3; ++doc) log.Record(Assigned(doc, 0));
  EXPECT_EQ(registry.GetCounter("provenance.records")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("provenance.dropped")->Value(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("provenance.retained")->Value(), 2.0);
}

TEST(ProvenanceLogTest, JsonOmitsInapplicableFields) {
  obs::DecisionRecord outlier;
  outlier.doc = 42;
  outlier.verdict = obs::ProvenanceVerdict::kOutlier;
  const std::string json = obs::RenderDecisionJson(outlier);
  const Result<obs::JsonValue> parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->Find("verdict")->string_value, "outlier");
  EXPECT_EQ(parsed->Find("path")->string_value, "merge");
  EXPECT_EQ(parsed->Find("quantized")->string_value, "off");
  EXPECT_EQ(parsed->Find("cluster"), nullptr);
  EXPECT_EQ(parsed->Find("runner_up"), nullptr);
  EXPECT_EQ(parsed->Find("kernel"), nullptr);

  obs::DecisionRecord assigned = Assigned(7, 17);
  assigned.path = obs::ProvenancePath::kSlotted;
  assigned.quantized = obs::QuantizedOutcome::kCertified;
  assigned.kernel = "avx2";
  const Result<obs::JsonValue> full =
      obs::ParseJson(obs::RenderDecisionJson(assigned));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->Find("path")->string_value, "slotted");
  EXPECT_EQ(full->Find("quantized")->string_value, "certified");
  EXPECT_EQ(full->Find("kernel")->string_value, "avx2");
  EXPECT_DOUBLE_EQ(full->Find("cluster")->number, 17.0);
  EXPECT_DOUBLE_EQ(full->Find("runner_up")->number, 18.0);
  EXPECT_DOUBLE_EQ(full->Find("margin")->number, 0.25);
}

TEST(ProvenanceLogTest, ExportJsonlWritesParseableLines) {
  obs::ProvenanceLog log(8);
  log.SetStep(2);
  log.Record(Assigned(10, 0));
  obs::DecisionRecord outlier;
  outlier.doc = 11;
  log.Record(outlier);

  const std::string path = testing::TempDir() + "/provenance_test.jsonl";
  ASSERT_TRUE(log.ExportJsonl(path).ok());

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const Result<obs::JsonValue> parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->is_object());
    EXPECT_NE(parsed->Find("doc"), nullptr);
    EXPECT_NE(parsed->Find("verdict"), nullptr);
    EXPECT_NE(parsed->Find("margin"), nullptr);
  }
  EXPECT_EQ(lines, 2u);
}

// ---------------------------------------------------------------------------
// Path-equivalence property: the margins the sweeps record must be
// bit-identical across the merge, indexed and slotted scoring paths —
// the same guarantee the clustering-equivalence tests prove for the
// assignments themselves, extended to the provenance capture.

class ProvenanceEquivalenceTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* iraq[] = {"iraq weapons inspection baghdad",
                          "iraq sanctions embargo baghdad",
                          "iraq inspectors weapons crisis",
                          "baghdad standoff weapons inspection"};
    const char* games[] = {"olympics skating medal nagano",
                           "olympics hockey nagano final",
                           "skating gold nagano games",
                           "olympics medal ceremony games"};
    const char* court[] = {"tobacco settlement senate lawsuit",
                           "tobacco lawsuit billions settlement",
                           "senate vote tobacco bill",
                           "settlement lawsuit vote senate"};
    DayTime t = 0.0;
    for (const char* s : iraq) corpus_.AddText(s, t += 0.1, 1);
    for (const char* s : games) corpus_.AddText(s, t += 0.1, 2);
    for (const char* s : court) corpus_.AddText(s, t += 0.1, 3);
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AdvanceTo(2.0);
    std::vector<DocId> ids(12);
    for (DocId d = 0; d < 12; ++d) ids[d] = d;
    model_->AddDocuments(ids);
    ctx_ = std::make_unique<SimilarityContext>(*model_);
    docs_ = ids;
  }

  // Runs the extended K-means with a provenance sink and returns the
  // flushed decisions keyed by document id.
  std::map<uint64_t, obs::DecisionRecord> Decisions(bool use_rep_index,
                                                    bool move_only_sweep,
                                                    bool quantized) {
    obs::ProvenanceLog log(64);
    ExtendedKMeansOptions opts;
    opts.k = 3;
    opts.seed = 5;
    opts.use_rep_index = use_rep_index;
    opts.move_only_sweep = move_only_sweep;
    opts.quantized_scoring = quantized;
    opts.provenance = &log;
    const Result<ClusteringResult> result =
        RunExtendedKMeans(*ctx_, docs_, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::map<uint64_t, obs::DecisionRecord> by_doc;
    for (const obs::DecisionRecord& record : log.Recent()) {
      by_doc[record.doc] = record;
    }
    return by_doc;
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
  std::vector<DocId> docs_;
};

TEST_F(ProvenanceEquivalenceTest, MarginsBitIdenticalAcrossScoringPaths) {
  const auto merge = Decisions(false, false, false);
  const auto indexed = Decisions(true, false, false);
  const auto slotted = Decisions(true, true, false);
  ASSERT_EQ(merge.size(), docs_.size());
  ASSERT_EQ(indexed.size(), docs_.size());
  ASSERT_EQ(slotted.size(), docs_.size());
  for (DocId id : docs_) {
    const obs::DecisionRecord& m = merge.at(id);
    const obs::DecisionRecord& i = indexed.at(id);
    const obs::DecisionRecord& s = slotted.at(id);
    EXPECT_EQ(m.path, obs::ProvenancePath::kMerge);
    EXPECT_EQ(i.path, obs::ProvenancePath::kIndexed);
    EXPECT_EQ(s.path, obs::ProvenancePath::kSlotted);
    EXPECT_EQ(m.quantized, obs::QuantizedOutcome::kOff);
    EXPECT_EQ(s.quantized, obs::QuantizedOutcome::kOff);
    for (const obs::DecisionRecord* other : {&i, &s}) {
      EXPECT_EQ(m.verdict, other->verdict) << "doc " << id;
      EXPECT_EQ(m.cluster_id, other->cluster_id) << "doc " << id;
      EXPECT_EQ(m.runner_up_id, other->runner_up_id) << "doc " << id;
      // EXPECT_EQ on doubles is exact comparison — bit-identical gains,
      // not approximately-equal ones.
      EXPECT_EQ(m.best_gain, other->best_gain) << "doc " << id;
      EXPECT_EQ(m.runner_up_gain, other->runner_up_gain) << "doc " << id;
      EXPECT_EQ(m.margin, other->margin) << "doc " << id;
    }
    EXPECT_EQ(m.margin, m.best_gain - m.runner_up_gain);
    EXPECT_GE(m.margin, 0.0);
    if (m.verdict == obs::ProvenanceVerdict::kAssigned) {
      EXPECT_NE(m.cluster_id, obs::DecisionRecord::kNoId);
      EXPECT_GT(m.best_gain, 0.0);
    } else if (m.verdict == obs::ProvenanceVerdict::kOutlier) {
      EXPECT_EQ(m.cluster_id, obs::DecisionRecord::kNoId);
    }
  }
}

TEST_F(ProvenanceEquivalenceTest, QuantizedRunKeepsDecisionsAndBoundsMargins) {
  const auto exact = Decisions(true, true, false);
  const auto quantized = Decisions(true, true, true);
  ASSERT_EQ(quantized.size(), docs_.size());
  for (DocId id : docs_) {
    const obs::DecisionRecord& e = exact.at(id);
    const obs::DecisionRecord& q = quantized.at(id);
    // The certified pass never changes a decision — same verdict, same
    // winner — it only changes how the margin was established.
    EXPECT_EQ(e.verdict, q.verdict) << "doc " << id;
    EXPECT_EQ(e.cluster_id, q.cluster_id) << "doc " << id;
    EXPECT_NE(q.quantized, obs::QuantizedOutcome::kOff);
    EXPECT_GT(std::strlen(q.kernel), 0u);
    EXPECT_GE(q.margin, 0.0);
    EXPECT_EQ(q.margin, q.best_gain - q.runner_up_gain);
    if (q.quantized == obs::QuantizedOutcome::kRecheck) {
      // Re-checked documents were scored exactly: their recorded gains
      // match the unquantized run bit for bit.
      EXPECT_EQ(e.best_gain, q.best_gain) << "doc " << id;
      EXPECT_EQ(e.runner_up_gain, q.runner_up_gain) << "doc " << id;
    }
  }
}

}  // namespace
}  // namespace nidc
