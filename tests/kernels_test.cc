// Unit tests for the vectorized scoring kernels: dispatch-table plumbing
// (ParseKind / Available / Select), fp16 shadow conversions, bit-identity
// of every compiled-in exact kernel against the scalar reference on
// odd / aligned / tail posting lengths on both sides of the AVX-512
// register-resident threshold, and the quantization error bound the sweep's
// certification relies on — including denormal weights, fp16 overflow, and
// the exact fp64 home side-channel.

#include "nidc/core/kernels/kernels.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/util/random.h"

namespace nidc::kernels {
namespace {

// Restores the process-global kernel selection on scope exit.
struct KernelGuard {
  Kind saved = Active().kind;
  ~KernelGuard() { Select(saved); }
};

constexpr Kind kAllKinds[] = {Kind::kScalar, Kind::kAvx2, Kind::kAvx512};

// A self-owned padded SoA posting index plus one document row, with the
// same layout invariants FlatRepIndex maintains: per-term entries sorted by
// ascending distinct cluster id, arrays padded with kPostingPadding zeroed
// slots, fp16 shadow built with HalfFromDouble.
struct TestIndex {
  std::vector<size_t> offsets;
  std::vector<uint32_t> clusters;
  std::vector<double> weights;
  std::vector<uint16_t> qweights;
  std::vector<uint32_t> row_terms;
  std::vector<double> row_values;
  size_t k = 0;

  PostingsView View() const {
    return {offsets.data(), clusters.data(),  weights.data(),
            qweights.data(), offsets.size() - 1, k};
  }
  DocRow Row() const { return {row_terms.data(), row_values.data(),
                               row_terms.size()}; }
  void Finish() {
    const size_t n = clusters.size();
    clusters.resize(n + kPostingPadding, 0);
    weights.resize(n + kPostingPadding, 0.0);
    qweights.assign(weights.size(), 0);
    for (size_t e = 0; e < n; ++e) qweights[e] = HalfFromDouble(weights[e]);
  }
};

// Posting lengths cycle 0..K (zero-length terms included), so every vector
// width sees full blocks, odd remainders, and empty tails. The row touches
// every term.
TestIndex MakeIndex(size_t k, size_t terms, uint64_t seed,
                    double weight_scale = 0.1) {
  TestIndex idx;
  idx.k = k;
  Rng rng(seed);
  idx.offsets.push_back(0);
  for (size_t t = 0; t < terms; ++t) {
    const size_t len = t % (k + 1);
    std::vector<uint32_t> ids;
    for (size_t p : rng.SampleWithoutReplacement(k, len)) {
      ids.push_back(static_cast<uint32_t>(p));
    }
    std::sort(ids.begin(), ids.end());
    for (uint32_t c : ids) {
      idx.clusters.push_back(c);
      idx.weights.push_back((rng.NextDouble() - 0.25) * weight_scale);
    }
    idx.offsets.push_back(idx.clusters.size());
    idx.row_terms.push_back(static_cast<uint32_t>(t));
    idx.row_values.push_back(rng.NextDouble() * 0.2);
  }
  idx.Finish();
  return idx;
}

TEST(KernelsTest, ParseKindRoundTripsAndRejectsUnknown) {
  for (Kind kind : kAllKinds) {
    Kind parsed;
    ASSERT_TRUE(ParseKind(KindName(kind), &parsed)) << KindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  Kind out;
  EXPECT_FALSE(ParseKind("", &out));
  EXPECT_FALSE(ParseKind("sse2", &out));
  EXPECT_FALSE(ParseKind("AVX2", &out));  // case-sensitive, like the env var
  EXPECT_FALSE(ParseKind("avx5121", &out));
}

TEST(KernelsTest, ScalarAlwaysAvailableAndSelectable) {
  KernelGuard guard;
  EXPECT_TRUE(Available(Kind::kScalar));
  Select(Kind::kScalar);
  EXPECT_EQ(Active().kind, Kind::kScalar);
  EXPECT_STREQ(Active().name, "scalar");
  ASSERT_NE(Active().score, nullptr);
  ASSERT_NE(Active().score_quantized, nullptr);
  for (Kind kind : kAllKinds) {
    if (!Available(kind)) continue;
    Select(kind);
    EXPECT_EQ(Active().kind, kind);
    EXPECT_STREQ(Active().name, KindName(kind));
  }
}

TEST(KernelsTest, HalfConversionBasics) {
  EXPECT_EQ(HalfToFloat(HalfFromDouble(0.0)), 0.0f);
  EXPECT_EQ(HalfToFloat(HalfFromDouble(1.0)), 1.0f);
  EXPECT_EQ(HalfToFloat(HalfFromDouble(-2.0)), -2.0f);
  EXPECT_EQ(HalfToFloat(HalfFromDouble(65504.0)), 65504.0f);  // fp16 max
  // Beyond ±65504 the shadow saturates to infinity — the sweep's
  // finiteness checks then force the exact path.
  EXPECT_TRUE(std::isinf(HalfToFloat(HalfFromDouble(65520.0))));
  EXPECT_TRUE(std::isinf(HalfToFloat(HalfFromDouble(1e300))));
  EXPECT_TRUE(std::isinf(HalfToFloat(HalfFromDouble(
      -std::numeric_limits<double>::infinity()))));
}

TEST(KernelsTest, HalfConversionRelativeErrorWithinBound) {
  // Normal fp16 range: round-to-nearest gives relative error ≤ 2^-11 per
  // rounding; the margin budgets 2^-10 to also cover the double→fp16
  // double-rounding. Spot-check across the full normal exponent range.
  Rng rng(99);
  for (int e = -14; e <= 15; ++e) {
    for (int i = 0; i < 32; ++i) {
      const double v = std::ldexp(1.0 + rng.NextDouble(), e);
      if (v > 65504.0) continue;
      const double back = HalfToFloat(HalfFromDouble(v));
      EXPECT_LE(std::fabs(back - v), std::fabs(v) * 0x1p-10) << v;
    }
  }
}

TEST(KernelsTest, HalfConversionDenormalAbsoluteError) {
  // Below 2^-14 fp16 goes subnormal: absolute quantization error is at
  // most half the subnormal quantum 2^-24 — the abs_term side of the
  // sweep's margin. fp64 values below fp16 subnormal resolution flush to
  // (signed) zero.
  for (double v : {0x1p-15, 0x1.8p-16, 0x1p-20, 0x1p-24, 0x1.fp-25}) {
    const double back = HalfToFloat(HalfFromDouble(v));
    EXPECT_LE(std::fabs(back - v), 0x1p-25) << v;
    const double nback = HalfToFloat(HalfFromDouble(-v));
    EXPECT_LE(std::fabs(nback + v), 0x1p-25) << -v;
  }
  EXPECT_EQ(HalfToFloat(HalfFromDouble(0x1p-26)), 0.0f);
  EXPECT_EQ(HalfToFloat(HalfFromDouble(1e-300)), 0.0f);
}

TEST(KernelsTest, ExactKernelsBitIdenticalToScalar) {
  KernelGuard guard;
  // K values straddle every dispatch regime: tiny, the AVX-512
  // register-resident limit (16), just past it, and a multi-vector spill.
  for (size_t k : {3u, 16u, 17u, 33u}) {
    TestIndex idx = MakeIndex(k, /*terms=*/97, /*seed=*/1000 + k);
    const PostingsView view = idx.View();
    const DocRow row = idx.Row();
    // Home absent (kNoHome) and every possible home cluster id.
    std::vector<uint32_t> homes = {kNoHome};
    for (size_t p = 0; p < k; ++p) homes.push_back(static_cast<uint32_t>(p));
    for (uint32_t home : homes) {
      Select(Kind::kScalar);
      std::vector<double> ref_scores(k);
      double ref_attached = 0.0;
      const uint64_t ref_entries =
          Active().score(view, row, home, ref_scores.data(), &ref_attached);
      for (Kind kind : {Kind::kAvx2, Kind::kAvx512}) {
        if (!Available(kind)) continue;
        SCOPED_TRACE(std::string(KindName(kind)) + " k=" +
                     std::to_string(k) + " home=" + std::to_string(home));
        Select(kind);
        std::vector<double> scores(k, 123.0);  // kernel must zero these
        double attached = 123.0;
        const uint64_t entries =
            Active().score(view, row, home, scores.data(), &attached);
        EXPECT_EQ(entries, ref_entries);
        EXPECT_EQ(attached, ref_attached);
        for (size_t p = 0; p < k; ++p) {
          EXPECT_EQ(scores[p], ref_scores[p]) << "cluster " << p;
        }
      }
    }
  }
}

// The sweep's margin coefficients for a row (see extended_kmeans.cc).
void MarginOf(const DocRow& row, double* rel, double* abs_term) {
  double vmax = 0.0;
  for (size_t i = 0; i < row.size; ++i) {
    vmax = std::max(vmax, std::fabs(row.values[i]));
  }
  const double r = static_cast<double>(row.size);
  const double gamma_n = (r + 4.0) * 0x1p-24;
  ASSERT_LT(gamma_n, 0.5);
  *rel = 4.0 * (0x1p-10 + gamma_n / (1.0 - gamma_n));
  *abs_term = 4.0 * r * (0x1p-25 * vmax + 1e-40);
}

TEST(KernelsTest, QuantizedScoresWithinCertifiedMargin) {
  KernelGuard guard;
  for (size_t k : {5u, 16u, 33u}) {
    // Mixed magnitudes: normal-range weights and fp16-subnormal ones.
    for (double scale : {0.5, 1e-5}) {
      TestIndex idx = MakeIndex(k, /*terms=*/64, /*seed=*/7 + k, scale);
      const PostingsView view = idx.View();
      const DocRow row = idx.Row();
      Select(Kind::kScalar);
      std::vector<double> exact(k);
      double exact_attached = 0.0;
      Active().score(view, row, kNoHome, exact.data(), &exact_attached);
      double rel = 0.0;
      double abs_term = 0.0;
      MarginOf(row, &rel, &abs_term);
      for (Kind kind : kAllKinds) {
        if (!Available(kind)) continue;
        SCOPED_TRACE(std::string(KindName(kind)) + " k=" +
                     std::to_string(k) + " scale=" + std::to_string(scale));
        Select(kind);
        std::vector<float> q(k, -1.0f);
        std::vector<float> qa(k, -1.0f);
        double ha = 0.0;
        double hd = 0.0;
        Active().score_quantized(view, row, kNoHome, q.data(), qa.data(),
                                 &ha, &hd);
        for (size_t p = 0; p < k; ++p) {
          const double bound =
              rel * static_cast<double>(qa[p]) + abs_term;
          EXPECT_LE(std::fabs(static_cast<double>(q[p]) - exact[p]), bound)
              << "cluster " << p;
          EXPECT_GE(qa[p], 0.0f);
        }
      }
    }
  }
}

TEST(KernelsTest, QuantizedHomeSideChannelBitIdenticalToExact) {
  KernelGuard guard;
  for (size_t k : {4u, 16u, 21u}) {
    TestIndex idx = MakeIndex(k, /*terms=*/80, /*seed=*/300 + k);
    const PostingsView view = idx.View();
    const DocRow row = idx.Row();
    for (uint32_t home = 0; home < k; ++home) {
      Select(Kind::kScalar);
      std::vector<double> exact(k);
      double exact_attached = 0.0;
      Active().score(view, row, home, exact.data(), &exact_attached);
      for (Kind kind : kAllKinds) {
        if (!Available(kind)) continue;
        SCOPED_TRACE(std::string(KindName(kind)) + " k=" +
                     std::to_string(k) + " home=" + std::to_string(home));
        Select(kind);
        std::vector<float> q(k);
        std::vector<float> qa(k);
        double ha = 123.0;
        double hd = 123.0;
        Active().score_quantized(view, row, home, q.data(), qa.data(), &ha,
                                 &hd);
        // The home cluster's cross terms ride an exact fp64 side-channel
        // in term-major order — bit-identical to the exact kernel's home
        // lane, regardless of the surrounding fp32 arithmetic.
        EXPECT_EQ(ha, exact_attached);
        EXPECT_EQ(hd, exact[home]);
      }
    }
  }
}

TEST(KernelsTest, Fp16OverflowPoisonsAbsSumsSoTheSweepMustRecheck) {
  KernelGuard guard;
  // One weight beyond fp16 max: its shadow is +inf, so the quantized score
  // and absolute sum of that cluster become non-finite — the sweep's
  // finiteness checks then refuse to certify and re-score exactly.
  TestIndex idx;
  idx.k = 3;
  idx.offsets = {0, 2};
  idx.clusters = {0, 2};
  idx.weights = {1.0, 1e6};
  idx.row_terms = {0};
  idx.row_values = {0.5};
  idx.Finish();
  for (Kind kind : kAllKinds) {
    if (!Available(kind)) continue;
    SCOPED_TRACE(KindName(kind));
    Select(kind);
    std::vector<float> q(idx.k);
    std::vector<float> qa(idx.k);
    double ha = 0.0;
    double hd = 0.0;
    Active().score_quantized(idx.View(), idx.Row(), kNoHome, q.data(),
                             qa.data(), &ha, &hd);
    EXPECT_FALSE(std::isfinite(qa[2]));
    EXPECT_TRUE(std::isfinite(q[0]));
    EXPECT_NEAR(q[0], 0.5f, 0.5f * 0x1p-10);
  }
}

TEST(KernelsTest, EmptyRowAndEmptyPostingsScoreZero) {
  KernelGuard guard;
  TestIndex idx;
  idx.k = 4;
  idx.offsets = {0, 0, 0};  // two terms, both with empty postings
  idx.row_terms = {0, 1};
  idx.row_values = {0.25, 0.75};
  idx.Finish();
  for (Kind kind : kAllKinds) {
    if (!Available(kind)) continue;
    SCOPED_TRACE(KindName(kind));
    Select(kind);
    std::vector<double> scores(idx.k, 7.0);
    double attached = 7.0;
    EXPECT_EQ(Active().score(idx.View(), idx.Row(), kNoHome, scores.data(),
                             &attached),
              0u);
    for (double s : scores) EXPECT_EQ(s, 0.0);
    EXPECT_EQ(attached, 0.0);
    const DocRow empty{nullptr, nullptr, 0};
    EXPECT_EQ(Active().score(idx.View(), empty, 1, scores.data(),
                             &attached),
              0u);
    for (double s : scores) EXPECT_EQ(s, 0.0);
  }
}

}  // namespace
}  // namespace nidc::kernels
