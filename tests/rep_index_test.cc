#include "nidc/core/rep_index.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/cluster_set.h"
#include "nidc/util/random.h"

namespace nidc {
namespace {

SparseVector Vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromEntries(std::move(entries));
}

TEST(ClusterRepIndexTest, PostingsMirrorAddedVectors) {
  ClusterRepIndex index(3);
  index.Add(0, Vec({{1, 0.5}, {2, 0.25}}));
  index.Add(1, Vec({{2, 1.0}, {3, 2.0}}));
  index.Add(0, Vec({{2, 0.75}}));

  auto p2 = index.PostingsOf(2);
  ASSERT_EQ(p2.size(), 2u);
  double w0 = 0.0;
  double w1 = 0.0;
  for (const auto& [cluster, weight] : p2) {
    if (cluster == 0) w0 = weight;
    if (cluster == 1) w1 = weight;
  }
  EXPECT_DOUBLE_EQ(w0, 1.0);  // 0.25 + 0.75
  EXPECT_DOUBLE_EQ(w1, 1.0);
  EXPECT_EQ(index.PostingsOf(99).size(), 0u);
}

TEST(ClusterRepIndexTest, ScoreAllMatchesPerClusterDots) {
  ClusterRepIndex index(4);
  std::vector<SparseVector> reps(4);
  Rng rng(77);
  for (size_t p = 0; p < 4; ++p) {
    std::vector<SparseVector::Entry> entries;
    for (int j = 0; j < 6; ++j) {
      entries.push_back({static_cast<TermId>(rng.NextBounded(12)),
                         rng.NextDouble()});
    }
    reps[p] = Vec(std::move(entries));
    index.Add(p, reps[p]);
  }
  for (int probe = 0; probe < 20; ++probe) {
    std::vector<SparseVector::Entry> entries;
    for (int j = 0; j < 5; ++j) {
      entries.push_back({static_cast<TermId>(rng.NextBounded(12)),
                         rng.NextDouble()});
    }
    const SparseVector psi = Vec(std::move(entries));
    std::vector<double> scores;
    index.ScoreAll(psi, &scores);
    ASSERT_EQ(scores.size(), 4u);
    for (size_t p = 0; p < 4; ++p) {
      EXPECT_NEAR(scores[p], reps[p].Dot(psi), 1e-12);
    }
  }
}

TEST(ClusterRepIndexTest, RemovingLastContributorSnapsWeightToExactZero) {
  ClusterRepIndex index(2);
  const SparseVector a = Vec({{5, 0.1}, {6, 0.2}});
  const SparseVector b = Vec({{5, 0.3}});
  index.Add(0, a);
  index.Add(0, b);
  index.Remove(0, a);
  // Term 6 lost its only contributor: tombstoned, not a float residual.
  EXPECT_EQ(index.PostingsOf(6).size(), 0u);
  // Term 5 still has b's weight.
  auto p5 = index.PostingsOf(5);
  ASSERT_EQ(p5.size(), 1u);
  EXPECT_NEAR(p5[0].second, 0.3, 1e-15);
  index.Remove(0, b);
  EXPECT_EQ(index.PostingsOf(5).size(), 0u);
  std::vector<double> scores;
  index.ScoreAll(Vec({{5, 1.0}, {6, 1.0}}), &scores);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(ClusterRepIndexTest, TombstoneReviveRestoresPosting) {
  ClusterRepIndex index(2);
  const SparseVector a = Vec({{7, 1.5}});
  index.Add(0, a);
  index.Add(1, a);
  index.Remove(0, a);
  index.Add(0, Vec({{7, 2.5}}));
  auto p7 = index.PostingsOf(7);
  ASSERT_EQ(p7.size(), 2u);
  for (const auto& [cluster, weight] : p7) {
    if (cluster == 0) {
      EXPECT_DOUBLE_EQ(weight, 2.5);
    }
    if (cluster == 1) {
      EXPECT_DOUBLE_EQ(weight, 1.5);
    }
  }
}

TEST(ClusterRepIndexTest, StatsTrackTombstoneLifecycle) {
  ClusterRepIndex index(2);
  const SparseVector a = Vec({{7, 1.5}});
  index.Add(0, a);
  index.Add(1, a);
  EXPECT_EQ(index.stats().live_entries, 2u);
  EXPECT_EQ(index.stats().dead_entries, 0u);
  EXPECT_EQ(index.stats().tombstones_created, 0u);

  index.Remove(0, a);
  EXPECT_EQ(index.stats().live_entries, 1u);
  EXPECT_EQ(index.stats().dead_entries, 1u);
  EXPECT_EQ(index.stats().tombstones_created, 1u);

  index.Add(0, Vec({{7, 2.5}}));
  EXPECT_EQ(index.stats().live_entries, 2u);
  EXPECT_EQ(index.stats().dead_entries, 0u);
  EXPECT_EQ(index.stats().tombstones_revived, 1u);
}

TEST(ClusterRepIndexTest, ResetPreservesCumulativeStats) {
  ClusterRepIndex index(2);
  const SparseVector a = Vec({{3, 1.0}});
  index.Add(0, a);
  index.Remove(0, a);
  const uint64_t tombstones = index.stats().tombstones_created;
  EXPECT_EQ(tombstones, 1u);
  // The single-entry list compacts on the remove, so the cumulative
  // compaction counters are also non-zero here.
  EXPECT_EQ(index.stats().compactions, 1u);
  index.Reset(2);
  EXPECT_EQ(index.stats().live_entries, 0u);
  EXPECT_EQ(index.stats().dead_entries, 0u);
  EXPECT_EQ(index.stats().tombstones_created, tombstones);
}

TEST(ClusterRepIndexDeathTest, RemovingUnknownTermDiesLoudly) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ClusterRepIndex index(2);
  index.Add(0, Vec({{1, 1.0}}));
  EXPECT_DEATH(index.Remove(0, Vec({{2, 1.0}})), "never added");
  EXPECT_DEATH(index.Remove(1, Vec({{1, 1.0}})), "never added");
}

// Randomized equivalence: a ClusterSet with the rep index enabled is driven
// through random assign/detach/refresh sequences; after every mutation the
// document-at-a-time scores must match the brute-force
// `representative().Dot(psi)` path within 1e-12.
class RepIndexEquivalenceTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* pool[] = {"alpha", "bravo",  "charlie", "delta", "echo",
                          "fox",   "golf",   "hotel",   "india", "juliet",
                          "kilo",  "lima",   "mike",    "nov",   "oscar",
                          "papa",  "quebec", "romeo",   "sierra", "tango",
                          "umbra", "victor", "whiskey", "xray",  "yankee",
                          "zulu",  "anchor", "beacon",  "cobalt", "dynamo"};
    Rng words(321);
    const size_t n_docs = 60;
    for (size_t i = 0; i < n_docs; ++i) {
      std::string text;
      for (int j = 0; j < 8; ++j) {
        if (j > 0) text += ' ';
        text += pool[words.NextBounded(30)];
      }
      corpus_.AddText(text, 0.5 + 0.01 * static_cast<double>(i),
                      static_cast<TopicId>(i % 5));
    }
    ForgettingParams params;
    params.half_life_days = 7.0;
    params.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, params);
    model_->AdvanceTo(2.0);
    std::vector<DocId> ids(n_docs);
    for (DocId d = 0; d < static_cast<DocId>(n_docs); ++d) ids[d] = d;
    model_->AddDocuments(ids);
    ctx_ = std::make_unique<SimilarityContext>(*model_);
    docs_ = ids;
  }

  void ExpectScoresMatch(const ClusterSet& set) {
    std::vector<double> scores;
    for (DocId id : docs_) {
      const SparseVector& psi = ctx_->Psi(id);
      set.ScoreAllClusters(psi, &scores);
      ASSERT_EQ(scores.size(), set.num_clusters());
      for (size_t p = 0; p < set.num_clusters(); ++p) {
        const double brute = set.cluster(p).representative().Dot(psi);
        EXPECT_NEAR(scores[p], brute, 1e-12)
            << "doc " << id << " cluster " << p;
      }
    }
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
  std::vector<DocId> docs_;
};

TEST_F(RepIndexEquivalenceTest, RandomizedAssignDetachRefreshSequences) {
  const size_t k = 6;
  ClusterSet set(k, /*use_rep_index=*/true);
  ASSERT_TRUE(set.rep_index_enabled());
  Rng rng(99);
  for (int op = 0; op < 400; ++op) {
    const DocId id = docs_[rng.NextBounded(docs_.size())];
    // ~1/8 detach, ~1/16 full refresh, otherwise a random (re)assignment.
    const uint64_t roll = rng.NextBounded(16);
    if (roll == 0) {
      set.RefreshAll(*ctx_);
    } else if (roll <= 2) {
      set.Assign(id, kUnassigned, *ctx_);
    } else {
      set.Assign(id, static_cast<int>(rng.NextBounded(k)), *ctx_);
    }
    if (op % 20 == 0) ExpectScoresMatch(set);
  }
  ExpectScoresMatch(set);
  // And once more from the canonical (refreshed) state.
  set.RefreshAll(*ctx_);
  ExpectScoresMatch(set);
}

TEST_F(RepIndexEquivalenceTest, IndexedGainsMatchMergeGains) {
  const size_t k = 4;
  ClusterSet set(k, /*use_rep_index=*/true);
  Rng rng(7);
  for (DocId id : docs_) {
    set.Assign(id, static_cast<int>(rng.NextBounded(k)), *ctx_);
  }
  std::vector<double> scores;
  for (DocId id : docs_) {
    set.Assign(id, kUnassigned, *ctx_);
    set.ScoreAllClusters(ctx_->Psi(id), &scores);
    for (size_t p = 0; p < k; ++p) {
      const Cluster& c = set.cluster(p);
      if (c.empty()) continue;
      EXPECT_NEAR(c.GainInGGivenT(scores[p]), c.GainInGIfAdded(id, *ctx_),
                  1e-12);
      EXPECT_NEAR(c.GainGivenT(scores[p]), c.GainIfAdded(id, *ctx_), 1e-12);
    }
    set.Assign(id, static_cast<int>(rng.NextBounded(k)), *ctx_);
  }
}

// ---------------------------------------------------------------------------
// FlatRepIndex: the CSR posting index behind slotted move-only sweeps.
// ---------------------------------------------------------------------------

class FlatRepIndexTest : public RepIndexEquivalenceTest {
 protected:
  // Builds a merge-scoring ClusterSet with the same memberships as the
  // round-robin assignment used by the tests, assigned in the same order —
  // its representatives carry bit-identical coefficients to the ones a
  // slotted set's CSR rebuild accumulates.
  ClusterSet MakeMergeTwin(size_t k) const {
    ClusterSet twin(k, ClusterScoring::kMerge);
    for (size_t i = 0; i < docs_.size(); ++i) {
      twin.Assign(docs_[i], static_cast<int>(i % k), *ctx_);
    }
    return twin;
  }
};

TEST_F(FlatRepIndexTest, BuildFromClustersMatchesRepresentativeDots) {
  const size_t k = 5;
  ClusterSet set(k, ClusterScoring::kSlotted);
  for (size_t i = 0; i < docs_.size(); ++i) {
    set.Assign(docs_[i], static_cast<int>(i % k), *ctx_);
  }
  set.RefreshAll(*ctx_);
  const FlatRepIndex& index = set.flat_index();
  ASSERT_TRUE(index.built());
  EXPECT_EQ(index.stats().builds, 1u);
  std::vector<double> scores;
  for (DocId id : docs_) {
    index.ScoreAll(*ctx_, ctx_->SlotOf(id), &scores);
    ASSERT_EQ(scores.size(), k);
    const SparseVector& psi = ctx_->Psi(id);
    for (size_t p = 0; p < k; ++p) {
      // Bit-identical, not merely close: the CSR build accumulates weights
      // in member order and the scan in ascending term order — the exact
      // float operations of representative().Dot(psi).
      EXPECT_EQ(scores[p], set.cluster(p).representative().Dot(psi))
          << "doc " << id << " cluster " << p;
    }
  }
}

TEST_F(FlatRepIndexTest, ScoreAllDetachedMatchesPhysicalRemoval) {
  const size_t k = 5;
  ClusterSet set(k, ClusterScoring::kSlotted);
  for (size_t i = 0; i < docs_.size(); ++i) {
    set.Assign(docs_[i], static_cast<int>(i % k), *ctx_);
  }
  set.RefreshAll(*ctx_);
  std::vector<double> scores;
  for (DocId id : docs_) {
    const size_t home = static_cast<size_t>(set.ClusterOf(id));
    double attached = 0.0;
    set.flat_index().ScoreAllDetached(*ctx_, ctx_->SlotOf(id), home, &scores,
                                      &attached);
    // A fresh merge twin per document: physically detaching and re-attaching
    // in a shared twin would perturb its coefficients by a rounding step and
    // break the bit-for-bit comparison for later documents.
    ClusterSet twin = MakeMergeTwin(k);
    const SparseVector& psi = ctx_->Psi(id);
    EXPECT_EQ(attached, twin.cluster(home).representative().Dot(psi))
        << "doc " << id;
    twin.Assign(id, kUnassigned, *ctx_);
    for (size_t p = 0; p < k; ++p) {
      EXPECT_EQ(scores[p], twin.cluster(p).representative().Dot(psi))
          << "doc " << id << " cluster " << p;
    }
  }
}

TEST_F(FlatRepIndexTest, MoveMaintenanceTracksRepresentatives) {
  const size_t k = 5;
  ClusterSet set(k, ClusterScoring::kSlotted);
  for (size_t i = 0; i < docs_.size(); ++i) {
    set.Assign(docs_[i], static_cast<int>(i % k), *ctx_);
  }
  set.RefreshAll(*ctx_);
  Rng rng(1234);
  std::vector<double> scores;
  for (int move = 0; move < 200; ++move) {
    const DocId id = docs_[rng.NextBounded(docs_.size())];
    const int target = rng.NextBounded(8) == 0
                           ? kUnassigned
                           : static_cast<int>(rng.NextBounded(k));
    set.Assign(id, target, *ctx_);
    if (move % 25 != 0) continue;
    for (DocId probe : docs_) {
      set.flat_index().ScoreAll(*ctx_, ctx_->SlotOf(probe), &scores);
      const SparseVector& psi = ctx_->Psi(probe);
      for (size_t p = 0; p < k; ++p) {
        // 1e-12, not bit-exact: zero-snapped tombstones intentionally clear
        // float residuals the merge representatives keep.
        EXPECT_NEAR(scores[p], set.cluster(p).representative().Dot(psi),
                    1e-12)
            << "probe " << probe << " cluster " << p;
      }
    }
  }
  EXPECT_GT(set.flat_index().stats().moves_applied, 0u);
  // A rebuild clears overlay and tombstones and restores bit-identity.
  set.RefreshAll(*ctx_);
  EXPECT_EQ(set.flat_index().stats().dead_entries, 0u);
  for (DocId probe : docs_) {
    set.flat_index().ScoreAll(*ctx_, ctx_->SlotOf(probe), &scores);
    const SparseVector& psi = ctx_->Psi(probe);
    for (size_t p = 0; p < k; ++p) {
      EXPECT_EQ(scores[p], set.cluster(p).representative().Dot(psi));
    }
  }
}

TEST_F(FlatRepIndexTest, ApplyIsANoOpBeforeTheFirstBuild) {
  ClusterSet set(3, ClusterScoring::kSlotted);
  EXPECT_FALSE(set.flat_index().built());
  for (size_t i = 0; i < docs_.size(); ++i) {
    set.Assign(docs_[i], static_cast<int>(i % 3), *ctx_);
  }
  // Seeding-style assigns before the first RefreshAll maintain nothing.
  EXPECT_EQ(set.flat_index().stats().moves_applied, 0u);
  EXPECT_EQ(set.flat_index().stats().live_entries, 0u);
  set.RefreshAll(*ctx_);
  EXPECT_TRUE(set.flat_index().built());
  EXPECT_GT(set.flat_index().stats().live_entries, 0u);
}

TEST_F(FlatRepIndexTest, BuildFromRepresentativesSkipsOutOfVocabularyTerms) {
  std::vector<SparseVector> reps(2);
  reps[0] = ctx_->Psi(docs_[0]);
  // A degenerate seed representative mentioning a term no active document
  // contains: it can never match a ψ, so the build drops it.
  std::vector<SparseVector::Entry> alien = reps[0].entries();
  alien.push_back({9999999, 42.0});
  reps[1] = SparseVector::FromEntries(std::move(alien));
  FlatRepIndex index;
  index.BuildFromRepresentatives(*ctx_, reps);
  ASSERT_TRUE(index.built());
  std::vector<double> scores;
  for (DocId id : docs_) {
    index.ScoreAll(*ctx_, ctx_->SlotOf(id), &scores);
    const SparseVector& psi = ctx_->Psi(id);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0], reps[0].Dot(psi)) << "doc " << id;
    EXPECT_EQ(scores[1], reps[1].Dot(psi)) << "doc " << id;
  }
}

// Tiny two-document corpus with disjoint vocabularies: every structural
// transition of the flat index (tombstone, overlay entry, revive, rebuild)
// is observable term by term.
class FlatRepIndexLifecycleTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("alpha bravo", 0.25, 0);
    corpus_.AddText("charlie delta", 0.5, 1);
    ForgettingParams params;
    params.half_life_days = 7.0;
    params.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, params);
    model_->AdvanceTo(1.0);
    model_->AddDocuments({0, 1});
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST_F(FlatRepIndexLifecycleTest, MovesTombstoneOldPairsAndOverlayNewOnes) {
  ClusterSet set(2, ClusterScoring::kSlotted);
  set.Assign(0, 0, *ctx_);
  set.Assign(1, 1, *ctx_);
  set.RefreshAll(*ctx_);
  const FlatRepIndex& index = set.flat_index();
  EXPECT_EQ(index.stats().live_entries, 4u);  // 2 terms per document

  // Doc 0 moves to cluster 1: its two (term, cluster 0) base entries become
  // tombstones, and (term, cluster 1) pairs exist nowhere in the base — the
  // overlay takes them.
  set.Assign(0, 1, *ctx_);
  EXPECT_EQ(index.stats().tombstones_created, 2u);
  EXPECT_EQ(index.stats().delta_entries_added, 2u);
  EXPECT_EQ(index.stats().dead_entries, 2u);
  EXPECT_EQ(index.stats().live_entries, 4u);
  const SparseVector& psi0 = ctx_->Psi(0);
  for (const auto& [term, value] : psi0.entries()) {
    auto postings = index.PostingsOf(*ctx_, term);
    ASSERT_EQ(postings.size(), 1u) << "term " << term;
    EXPECT_EQ(postings[0].first, 1u);
    EXPECT_EQ(postings[0].second, value);
  }
  std::vector<double> scores;
  index.ScoreAll(*ctx_, ctx_->SlotOf(0), &scores);
  EXPECT_EQ(scores[0], 0.0);  // exact zero: tombstones snap, no residual
  EXPECT_EQ(scores[1], set.cluster(1).representative().Dot(psi0));

  // Moving back revives the base tombstones and tombstones the overlay.
  set.Assign(0, 0, *ctx_);
  EXPECT_EQ(index.stats().tombstones_revived, 2u);
  EXPECT_EQ(index.stats().tombstones_created, 4u);
  for (const auto& [term, value] : psi0.entries()) {
    auto postings = index.PostingsOf(*ctx_, term);
    ASSERT_EQ(postings.size(), 1u) << "term " << term;
    EXPECT_EQ(postings[0].first, 0u);
    EXPECT_EQ(postings[0].second, value);
  }

  // A rebuild flushes overlay and tombstones back into a clean base.
  set.RefreshAll(*ctx_);
  EXPECT_EQ(index.stats().builds, 2u);
  EXPECT_EQ(index.stats().dead_entries, 0u);
  EXPECT_EQ(index.stats().live_entries, 4u);
}

TEST(SimilarityContextDeathTest, UnknownDocIdFailsLoudlyWithId) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Corpus corpus;
  corpus.AddText("alpha bravo charlie", 0.5, 1);
  ForgettingParams params;
  ForgettingModel model(&corpus, params);
  model.AdvanceTo(1.0);
  model.AddDocuments({0});
  SimilarityContext ctx(model);
  EXPECT_DEATH(ctx.Psi(4242), "4242");
  EXPECT_DEATH(ctx.SelfSim(4242), "4242");
}

}  // namespace
}  // namespace nidc
