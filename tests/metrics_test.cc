#include "nidc/obs/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "nidc/util/thread_pool.h"

namespace nidc::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0
  h.Observe(1.0);    // bucket 0 (le semantics: bound is inclusive)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(100.0);  // bucket 2
  h.Observe(100.5);  // +Inf overflow
  EXPECT_EQ(h.CumulativeCount(0), 2u);
  EXPECT_EQ(h.CumulativeCount(1), 4u);
  EXPECT_EQ(h.CumulativeCount(2), 5u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
}

TEST(HistogramTest, NegativeAndBelowFirstBound) {
  Histogram h({0.0, 1.0});
  h.Observe(-5.0);
  h.Observe(0.0);
  EXPECT_EQ(h.CumulativeCount(0), 2u);
  EXPECT_EQ(h.TotalCount(), 2u);
}

TEST(MetricsRegistryTest, GetReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("steps");
  Counter* b = registry.GetCounter("steps");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossManyRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("c0");
  first->Increment(7);
  // Enough registrations to force reallocation in vector-backed storage;
  // the deque-backed registry must keep `first` valid.
  for (int i = 1; i < 200; ++i) {
    registry.GetCounter("c" + std::to_string(i));
    registry.GetGauge("g" + std::to_string(i));
  }
  EXPECT_EQ(first->Value(), 7u);
  EXPECT_EQ(registry.GetCounter("c0"), first);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedOnFirstRegistration) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  Histogram* again = registry.GetHistogram("lat", {5.0, 6.0, 7.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(3);
  registry.GetGauge("alpha")->Set(1.5);
  registry.GetHistogram("mid", {1.0})->Observe(0.5);
  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].value, 1.5);
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[1].kind, MetricSample::Kind::kHistogram);
  ASSERT_EQ(samples[1].buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[1].buckets[0].first, 1.0);
  EXPECT_EQ(samples[1].buckets[0].second, 1u);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_DOUBLE_EQ(samples[1].sum, 0.5);
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("parallel.increments");
  Gauge* gauge = registry.GetGauge("parallel.adds");
  Histogram* histogram =
      registry.GetHistogram("parallel.observations", {100.0, 1000.0});

  constexpr size_t kItems = 10000;
  ThreadPool pool(4);
  pool.ParallelFor(kItems, /*grain=*/64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Increment();
      gauge->Add(1.0);
      histogram->Observe(static_cast<double>(i % 200));
    }
  });

  EXPECT_EQ(counter->Value(), kItems);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kItems));
  EXPECT_EQ(histogram->TotalCount(), kItems);
  // i % 200 spends half its time in [0, 100] (0..100 inclusive = 101 of
  // 200 residues, kItems/200 hits each).
  EXPECT_EQ(histogram->CumulativeCount(0), kItems / 200 * 101);
  EXPECT_EQ(histogram->CumulativeCount(1), kItems);
}

TEST(MetricsRegistryDeathTest, KindMismatchIsFatal) {
  MetricsRegistry registry;
  registry.GetCounter("name");
  EXPECT_DEATH(registry.GetGauge("name"), "registered as a different kind");
}

}  // namespace
}  // namespace nidc::obs
