#include "nidc/synth/tdt2_like_generator.h"

#include <map>

#include <gtest/gtest.h>

namespace nidc {
namespace {

// Full-scale generation is a few seconds; share one corpus across tests.
class GeneratorTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new Tdt2LikeGenerator();
    auto corpus = generator_->Generate();
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    corpus_ = corpus.value().release();
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete generator_;
    corpus_ = nullptr;
    generator_ = nullptr;
  }

  static Tdt2LikeGenerator* generator_;
  static Corpus* corpus_;
};

Tdt2LikeGenerator* GeneratorTest::generator_ = nullptr;
Corpus* GeneratorTest::corpus_ = nullptr;

TEST_F(GeneratorTest, CorpusSizeMatchesPaper) {
  EXPECT_EQ(corpus_->size(), 7578u);
  EXPECT_EQ(corpus_->TopicCounts().size(), 96u);
}

TEST_F(GeneratorTest, ChronologicallySorted) {
  EXPECT_TRUE(corpus_->IsChronological());
}

TEST_F(GeneratorTest, WindowDocTotalsMatchTable2) {
  const size_t expected[6] = {1820, 2393, 823, 570, 1090, 882};
  auto windows = PaperWindows();
  for (size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(corpus_->DocsInRange(windows[w].begin, windows[w].end).size(),
              expected[w])
        << windows[w].label;
  }
}

TEST_F(GeneratorTest, NamedTopicCountsMatchTable5) {
  auto counts = corpus_->TopicCounts();
  EXPECT_EQ(counts[20001], 1034u);
  EXPECT_EQ(counts[20002], 923u);
  EXPECT_EQ(counts[20015], 1439u);
  EXPECT_EQ(counts[20074], 50u);
  EXPECT_EQ(counts[20077], 117u);
  EXPECT_EQ(counts[20078], 15u);
  EXPECT_EQ(counts[20086], 138u);
}

TEST_F(GeneratorTest, AllTimesWithinSpan) {
  EXPECT_GE(corpus_->MinTime(), 0.0);
  EXPECT_LT(corpus_->MaxTime(), 178.0);
}

TEST_F(GeneratorTest, SourcesCycleThroughNewswires) {
  std::map<std::string, size_t> sources;
  for (const Document& d : corpus_->docs()) ++sources[d.source];
  EXPECT_EQ(sources.size(), 6u);
  for (const auto& [name, count] : sources) EXPECT_GT(count, 1000u);
}

TEST_F(GeneratorTest, UnabomberHistogramShape) {
  // Figure 6: bulk in the first half of window 1, resurgence late window 4.
  auto hist = TopicHistogram(*corpus_, 20077, 0.0, 178.0);
  size_t first_half_w1 = 0;
  size_t late_w4 = 0;
  size_t mid_span = 0;  // windows 2-3 (days 36..90) should be silent
  for (size_t day = 0; day < hist.size(); ++day) {
    if (day < 15) first_half_w1 += hist[day];
    if (day >= 110 && day < 120) late_w4 += hist[day];
    if (day >= 40 && day < 90) mid_span += hist[day];
  }
  EXPECT_EQ(first_half_w1, 95u);
  EXPECT_EQ(late_w4, 10u);
  EXPECT_EQ(mid_span, 0u);
}

TEST_F(GeneratorTest, DenmarkStrikeStraddlesWindows4And5) {
  auto hist = TopicHistogram(*corpus_, 20078, 0.0, 178.0);
  size_t in_range = 0;
  for (size_t day = 113; day < 127 && day < hist.size(); ++day) {
    in_range += hist[day];
  }
  EXPECT_EQ(in_range, 15u);  // every document in the narrow straddle
}

TEST_F(GeneratorTest, NigerianProtestDensestLateW4EarlyW6) {
  auto hist = TopicHistogram(*corpus_, 20074, 0.0, 178.0);
  size_t late_w4 = 0;
  size_t early_w6 = 0;
  for (size_t day = 110; day < 120; ++day) late_w4 += hist[day];
  for (size_t day = 150; day < 158; ++day) early_w6 += hist[day];
  EXPECT_EQ(late_w4, 20u);
  EXPECT_EQ(early_w6, 20u);
}

TEST_F(GeneratorTest, TopicNameLookup) {
  EXPECT_EQ(generator_->TopicName(20086), "GM Strike");
  EXPECT_EQ(generator_->TopicName(12345), "topic12345");
}

TEST(GeneratorOptionsTest, ScaleShrinksCorpus) {
  GeneratorOptions opts;
  opts.scale = 0.1;
  Tdt2LikeGenerator gen(opts);
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  // Rounding varies per topic; the total lands near 758.
  EXPECT_GT((*corpus)->size(), 500u);
  EXPECT_LT((*corpus)->size(), 1000u);
}

TEST(GeneratorOptionsTest, SameSeedSameCorpus) {
  GeneratorOptions opts;
  opts.scale = 0.05;
  Tdt2LikeGenerator a(opts);
  Tdt2LikeGenerator b(opts);
  auto raw_a = a.GenerateRaw();
  auto raw_b = b.GenerateRaw();
  ASSERT_TRUE(raw_a.ok());
  ASSERT_TRUE(raw_b.ok());
  ASSERT_EQ(raw_a->size(), raw_b->size());
  for (size_t i = 0; i < raw_a->size(); ++i) {
    EXPECT_EQ((*raw_a)[i].text, (*raw_b)[i].text);
    EXPECT_DOUBLE_EQ((*raw_a)[i].time, (*raw_b)[i].time);
  }
}

TEST(GeneratorOptionsTest, DifferentSeedsDifferentCorpora) {
  GeneratorOptions a_opts;
  a_opts.scale = 0.05;
  a_opts.seed = 1;
  GeneratorOptions b_opts = a_opts;
  b_opts.seed = 2;
  auto raw_a = Tdt2LikeGenerator(a_opts).GenerateRaw();
  auto raw_b = Tdt2LikeGenerator(b_opts).GenerateRaw();
  ASSERT_TRUE(raw_a.ok());
  ASSERT_TRUE(raw_b.ok());
  bool any_diff = raw_a->size() != raw_b->size();
  for (size_t i = 0; !any_diff && i < raw_a->size(); ++i) {
    any_diff = (*raw_a)[i].text != (*raw_b)[i].text;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorOptionsTest, InvalidScaleRejected) {
  GeneratorOptions opts;
  opts.scale = 0.0;
  EXPECT_FALSE(Tdt2LikeGenerator(opts).Generate().ok());
}

}  // namespace
}  // namespace nidc
