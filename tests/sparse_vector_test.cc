#include "nidc/text/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nidc/util/random.h"

namespace nidc {
namespace {

SparseVector Make(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromEntries(std::move(entries));
}

TEST(SparseVectorTest, FromEntriesSortsById) {
  SparseVector v = Make({{5, 1.0}, {2, 2.0}, {9, 3.0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].id, 2u);
  EXPECT_EQ(v.entries()[1].id, 5u);
  EXPECT_EQ(v.entries()[2].id, 9u);
}

TEST(SparseVectorTest, FromEntriesCoalescesDuplicates) {
  SparseVector v = Make({{3, 1.0}, {3, 2.5}, {1, 1.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueAt(3), 3.5);
  EXPECT_DOUBLE_EQ(v.ValueAt(1), 1.0);
}

TEST(SparseVectorTest, ValueAtMissingIsZero) {
  SparseVector v = Make({{1, 1.0}});
  EXPECT_DOUBLE_EQ(v.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(2), 0.0);
}

TEST(SparseVectorTest, EmptyVector) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.Norm(), 0.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.Dot(v), 0.0);
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  SparseVector a = Make({{1, 1.0}, {3, 2.0}});
  SparseVector b = Make({{2, 5.0}, {4, 7.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(SparseVectorTest, DotOverlapping) {
  SparseVector a = Make({{1, 2.0}, {2, 3.0}, {5, 1.0}});
  SparseVector b = Make({{2, 4.0}, {5, 10.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0 * 4.0 + 1.0 * 10.0);
}

TEST(SparseVectorTest, DotIsSymmetric) {
  SparseVector a = Make({{1, 2.0}, {7, -1.0}});
  SparseVector b = Make({{1, 0.5}, {3, 9.0}, {7, 2.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
}

TEST(SparseVectorTest, SquaredNormEqualsSelfDot) {
  SparseVector a = Make({{1, 2.0}, {4, -3.0}, {9, 0.5}});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), a.Dot(a));
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(a.SquaredNorm()));
}

TEST(SparseVectorTest, SumAddsValues) {
  SparseVector a = Make({{1, 2.0}, {4, 3.0}});
  EXPECT_DOUBLE_EQ(a.Sum(), 5.0);
}

TEST(SparseVectorTest, ScaledMultipliesAll) {
  SparseVector a = Make({{1, 2.0}, {4, 3.0}});
  SparseVector b = a.Scaled(2.0);
  EXPECT_DOUBLE_EQ(b.ValueAt(1), 4.0);
  EXPECT_DOUBLE_EQ(b.ValueAt(4), 6.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(1), 2.0);  // original untouched
}

TEST(SparseVectorTest, AddScaledMergesIds) {
  SparseVector a = Make({{1, 1.0}, {3, 1.0}});
  SparseVector b = Make({{2, 1.0}, {3, 2.0}});
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(2), 2.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(3), 5.0);
  ASSERT_EQ(a.size(), 3u);
  // Order invariant preserved.
  EXPECT_LT(a.entries()[0].id, a.entries()[1].id);
  EXPECT_LT(a.entries()[1].id, a.entries()[2].id);
}

TEST(SparseVectorTest, AddScaledIntoEmpty) {
  SparseVector a;
  SparseVector b = Make({{2, 3.0}});
  a.AddScaled(b, 1.5);
  EXPECT_DOUBLE_EQ(a.ValueAt(2), 4.5);
}

TEST(SparseVectorTest, AddScaledZeroFactorIsNoop) {
  SparseVector a = Make({{1, 1.0}});
  SparseVector b = Make({{2, 5.0}});
  a.AddScaled(b, 0.0);
  EXPECT_EQ(a.size(), 1u);
}

TEST(SparseVectorTest, AddThenSubtractCancels) {
  SparseVector a = Make({{1, 1.0}, {5, 2.0}});
  SparseVector b = Make({{1, 4.0}, {9, 3.0}});
  SparseVector original = a;
  a.AddScaled(b, 1.0);
  a.AddScaled(b, -1.0);
  a.Prune(1e-12);
  EXPECT_DOUBLE_EQ(a.ValueAt(1), original.ValueAt(1));
  EXPECT_DOUBLE_EQ(a.ValueAt(5), original.ValueAt(5));
  EXPECT_DOUBLE_EQ(a.ValueAt(9), 0.0);
}

TEST(SparseVectorTest, PruneDropsSmallEntries) {
  SparseVector a = Make({{1, 1e-15}, {2, 1.0}, {3, -1e-15}});
  a.Prune(1e-12);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.ValueAt(2), 1.0);
}

TEST(SparseAccumulatorTest, AccumulatesAndConverts) {
  SparseAccumulator acc;
  acc.Add(3, 1.0);
  acc.Add(1, 2.0);
  acc.Add(3, 1.0);
  SparseVector v = acc.ToVector();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueAt(3), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(1), 2.0);
}

TEST(SparseAccumulatorTest, ClearEmpties) {
  SparseAccumulator acc;
  acc.Add(1, 1.0);
  acc.Clear();
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.ToVector().empty());
}

// ---- Property tests over random vectors ----

class SparseVectorPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  SparseVector RandomVector(Rng* rng, size_t max_terms = 40,
                            TermId id_space = 100) {
    std::vector<SparseVector::Entry> entries;
    const size_t n = rng->NextBounded(max_terms);
    for (size_t i = 0; i < n; ++i) {
      entries.push_back({static_cast<TermId>(rng->NextBounded(id_space)),
                         rng->NextDouble() * 4.0 - 2.0});
    }
    return SparseVector::FromEntries(std::move(entries));
  }
};

TEST_P(SparseVectorPropertyTest, DotMatchesDenseComputation) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector a = RandomVector(&rng);
    SparseVector b = RandomVector(&rng);
    double expected = 0.0;
    for (TermId id = 0; id < 100; ++id) {
      expected += a.ValueAt(id) * b.ValueAt(id);
    }
    EXPECT_NEAR(a.Dot(b), expected, 1e-9);
  }
}

TEST_P(SparseVectorPropertyTest, AddScaledLinearity) {
  Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector a = RandomVector(&rng);
    SparseVector b = RandomVector(&rng);
    const double f = rng.NextDouble() * 3.0 - 1.5;
    SparseVector sum = a;
    sum.AddScaled(b, f);
    for (TermId id = 0; id < 100; ++id) {
      EXPECT_NEAR(sum.ValueAt(id), a.ValueAt(id) + f * b.ValueAt(id), 1e-9);
    }
  }
}

TEST_P(SparseVectorPropertyTest, CauchySchwarz) {
  Rng rng(GetParam() ^ 0xdef);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector a = RandomVector(&rng);
    SparseVector b = RandomVector(&rng);
    EXPECT_LE(std::abs(a.Dot(b)), a.Norm() * b.Norm() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nidc
