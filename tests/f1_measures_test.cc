#include "nidc/eval/f1_measures.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

MarkedCluster Marked(size_t idx, TopicId topic, Contingency table) {
  MarkedCluster mc;
  mc.cluster_index = idx;
  mc.cluster_size = table.a + table.b;
  mc.topic = topic;
  mc.table = table;
  mc.precision = table.Precision();
  mc.recall = table.Recall();
  return mc;
}

MarkedCluster Unmarked(size_t idx, size_t size) {
  MarkedCluster mc;
  mc.cluster_index = idx;
  mc.cluster_size = size;
  return mc;
}

TEST(GlobalF1Test, SingleClusterMicroEqualsMacro) {
  auto g = ComputeGlobalF1({Marked(0, 1, {8, 2, 2, 0})});
  EXPECT_NEAR(g.micro_f1, 0.8, 1e-12);
  EXPECT_NEAR(g.macro_f1, 0.8, 1e-12);
  EXPECT_EQ(g.num_marked, 1u);
}

TEST(GlobalF1Test, MicroMergesTables) {
  // Cluster A: a=1,b=1,c=0 (F1=2/3); cluster B: a=9,b=0,c=1 (F1=18/19).
  auto g = ComputeGlobalF1(
      {Marked(0, 1, {1, 1, 0, 0}), Marked(1, 2, {9, 0, 1, 0})});
  // Merged: a=10,b=1,c=1 -> F1 = 20/22.
  EXPECT_NEAR(g.micro_f1, 20.0 / 22.0, 1e-12);
  // Macro: mean of 2/3 and 18/19.
  EXPECT_NEAR(g.macro_f1, (2.0 / 3.0 + 18.0 / 19.0) / 2.0, 1e-12);
  // Micro weighting favors the big cluster: micro > macro here.
  EXPECT_GT(g.micro_f1, g.macro_f1);
}

TEST(GlobalF1Test, UnmarkedClustersExcluded) {
  auto g = ComputeGlobalF1(
      {Marked(0, 1, {5, 0, 0, 0}), Unmarked(1, 7), Unmarked(2, 3)});
  EXPECT_NEAR(g.micro_f1, 1.0, 1e-12);
  EXPECT_NEAR(g.macro_f1, 1.0, 1e-12);
  EXPECT_EQ(g.num_marked, 1u);
  EXPECT_EQ(g.num_evaluated, 3u);
}

TEST(GlobalF1Test, NoMarkedClustersGiveZero) {
  auto g = ComputeGlobalF1({Unmarked(0, 4), Unmarked(1, 2)});
  EXPECT_DOUBLE_EQ(g.micro_f1, 0.0);
  EXPECT_DOUBLE_EQ(g.macro_f1, 0.0);
  EXPECT_EQ(g.num_marked, 0u);
}

TEST(GlobalF1Test, EmptyInput) {
  auto g = ComputeGlobalF1({});
  EXPECT_DOUBLE_EQ(g.micro_f1, 0.0);
  EXPECT_EQ(g.num_evaluated, 0u);
}

TEST(GlobalF1Test, MicroPrecisionRecallReported) {
  auto g = ComputeGlobalF1({Marked(0, 1, {6, 2, 3, 0})});
  EXPECT_NEAR(g.micro_precision, 0.75, 1e-12);
  EXPECT_NEAR(g.micro_recall, 6.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace nidc
