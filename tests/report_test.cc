#include "nidc/eval/report.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::vector<MarkedCluster> SampleMarking() {
  MarkedCluster a;
  a.cluster_index = 0;
  a.cluster_size = 10;
  a.topic = 20013;
  a.table = {8, 2, 1, 20};
  a.precision = a.table.Precision();
  a.recall = a.table.Recall();
  MarkedCluster b;
  b.cluster_index = 1;
  b.cluster_size = 4;
  return {a, b};
}

TEST(ReportTest, ClusterReportListsMarkedAndUnmarked) {
  const std::string out = RenderClusterReport(SampleMarking());
  EXPECT_NE(out.find("topic20013"), std::string::npos);
  EXPECT_NE(out.find("(unmarked)"), std::string::npos);
  EXPECT_NE(out.find("0.80"), std::string::npos);  // precision 8/10
}

TEST(ReportTest, ClusterReportUsesNamer) {
  TopicNamer namer = [](TopicId id) {
    return id == 20013 ? std::string("1998 Winter Olympics")
                       : std::string("?");
  };
  const std::string out = RenderClusterReport(SampleMarking(), namer);
  EXPECT_NE(out.find("1998 Winter Olympics"), std::string::npos);
}

TEST(ReportTest, BarsReflectValues) {
  const std::string out = RenderPrecisionRecallBars(SampleMarking(), 10);
  // Precision 0.8 over width 10 -> 8 filled glyphs.
  EXPECT_NE(out.find("########.."), std::string::npos);
  EXPECT_NE(out.find("(unmarked"), std::string::npos);
}

TEST(ReportTest, Table4RowFormat) {
  GlobalF1 short_beta;
  short_beta.micro_f1 = 0.34;
  short_beta.macro_f1 = 0.42;
  GlobalF1 long_beta;
  long_beta.micro_f1 = 0.52;
  long_beta.macro_f1 = 0.59;
  const std::string row = FormatTable4Row("first", short_beta, long_beta);
  EXPECT_NE(row.find("first"), std::string::npos);
  EXPECT_NE(row.find("0.34 / 0.52"), std::string::npos);
  EXPECT_NE(row.find("0.42 / 0.59"), std::string::npos);
}

}  // namespace
}  // namespace nidc
