#include "nidc/eval/clustering_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class MetricsTest : public testing::Test {
 protected:
  void SetUp() override {
    // 4 docs of topic 1, 4 docs of topic 2, 2 unlabeled.
    for (int i = 0; i < 4; ++i) corpus_.AddText("t1", 0.0, 1);
    for (int i = 0; i < 4; ++i) corpus_.AddText("t2", 0.0, 2);
    for (int i = 0; i < 2; ++i) corpus_.AddText("none", 0.0);
  }
  Corpus corpus_;
};

TEST_F(MetricsTest, PerfectClusteringScoresOne) {
  auto m = ComputeClusteringMetrics(corpus_, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  EXPECT_DOUBLE_EQ(m.purity, 1.0);
  EXPECT_NEAR(m.nmi, 1.0, 1e-12);
  EXPECT_NEAR(m.adjusted_rand, 1.0, 1e-12);
  EXPECT_EQ(m.num_docs, 8u);
  EXPECT_EQ(m.num_clusters, 2u);
  EXPECT_EQ(m.num_topics, 2u);
}

TEST_F(MetricsTest, SingleClusterHasZeroNmiAndAri) {
  auto m = ComputeClusteringMetrics(corpus_,
                                    {{0, 1, 2, 3, 4, 5, 6, 7}});
  EXPECT_DOUBLE_EQ(m.purity, 0.5);
  EXPECT_NEAR(m.nmi, 0.0, 1e-12);       // H(C) = 0 → MI = 0
  EXPECT_NEAR(m.adjusted_rand, 0.0, 1e-12);
}

TEST_F(MetricsTest, MaximallyMixedScoresNearZeroAri) {
  // Two clusters each 2+2 of both topics: agreement is exactly chance.
  auto m = ComputeClusteringMetrics(corpus_, {{0, 1, 4, 5}, {2, 3, 6, 7}});
  EXPECT_DOUBLE_EQ(m.purity, 0.5);
  // ARI at (or slightly below) chance level; exact value here is −1/6.
  EXPECT_LT(m.adjusted_rand, 0.05);
  EXPECT_GT(m.adjusted_rand, -0.3);
  EXPECT_NEAR(m.nmi, 0.0, 1e-12);
}

TEST_F(MetricsTest, PartialMixingIsBetween) {
  auto m = ComputeClusteringMetrics(corpus_, {{0, 1, 2, 4}, {3, 5, 6, 7}});
  EXPECT_DOUBLE_EQ(m.purity, 0.75);
  EXPECT_GT(m.nmi, 0.0);
  EXPECT_LT(m.nmi, 1.0);
  EXPECT_GT(m.adjusted_rand, 0.0);
  EXPECT_LT(m.adjusted_rand, 1.0);
}

TEST_F(MetricsTest, UnlabeledDocsIgnored) {
  auto with = ComputeClusteringMetrics(corpus_,
                                       {{0, 1, 2, 3, 8}, {4, 5, 6, 7, 9}});
  auto without = ComputeClusteringMetrics(corpus_,
                                          {{0, 1, 2, 3}, {4, 5, 6, 7}});
  EXPECT_DOUBLE_EQ(with.purity, without.purity);
  EXPECT_DOUBLE_EQ(with.nmi, without.nmi);
  EXPECT_EQ(with.num_docs, 8u);
}

TEST_F(MetricsTest, SplitTopicLowersAriNotPurity) {
  // Topic 1 split across two pure clusters: purity stays 1, ARI drops.
  auto m = ComputeClusteringMetrics(corpus_, {{0, 1}, {2, 3}, {4, 5, 6, 7}});
  EXPECT_DOUBLE_EQ(m.purity, 1.0);
  EXPECT_LT(m.adjusted_rand, 1.0);
  EXPECT_GT(m.adjusted_rand, 0.3);
}

TEST_F(MetricsTest, EmptyInputsAreSafe) {
  auto none = ComputeClusteringMetrics(corpus_, {});
  EXPECT_EQ(none.num_docs, 0u);
  EXPECT_DOUBLE_EQ(none.purity, 0.0);
  auto only_unlabeled = ComputeClusteringMetrics(corpus_, {{8, 9}});
  EXPECT_EQ(only_unlabeled.num_docs, 0u);
  EXPECT_DOUBLE_EQ(only_unlabeled.nmi, 0.0);
}

TEST_F(MetricsTest, SingletonsClusteringNmiIsPositiveButAriZeroish) {
  auto m = ComputeClusteringMetrics(
      corpus_, {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}});
  EXPECT_DOUBLE_EQ(m.purity, 1.0);  // trivially pure
  // ARI corrects for that: all-singletons has no pair agreements.
  EXPECT_NEAR(m.adjusted_rand, 0.0, 1e-9);
  EXPECT_GT(m.nmi, 0.0);
  EXPECT_LT(m.nmi, 1.0);
}

}  // namespace
}  // namespace nidc
