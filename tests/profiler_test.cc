#include "nidc/obs/profiler.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/trace.h"

namespace nidc::obs {
namespace {

TEST(PhaseProfilerTest, SpansAggregateByCollapsedPath) {
  PhaseProfiler profiler;
  {
    ScopedProfilerInstall install(&profiler);
    NIDC_SPAN("a");
    { NIDC_SPAN("b"); }
    { NIDC_SPAN("b"); }
  }
  EXPECT_EQ(profiler.spans_recorded(), 3u);
  const std::vector<PhaseProfiler::PhaseStats> stats = profiler.Snapshot();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t a_count = 0;
  uint64_t ab_count = 0;
  for (const PhaseProfiler::PhaseStats& phase : stats) {
    EXPECT_GE(phase.wall_seconds, 0.0);
    EXPECT_GE(phase.cpu_seconds, 0.0);
    if (phase.path == "a") a_count = phase.count;
    if (phase.path == "a;b") ab_count = phase.count;
  }
  EXPECT_EQ(a_count, 1u);
  EXPECT_EQ(ab_count, 2u);
}

TEST(PhaseProfilerTest, NoInstalledProfilerRecordsNothing) {
  PhaseProfiler profiler;
  { NIDC_SPAN("orphan"); }
  EXPECT_EQ(profiler.spans_recorded(), 0u);
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(PhaseProfilerTest, InstallIsScopedAndRestoresPrevious) {
  PhaseProfiler outer;
  PhaseProfiler inner;
  ScopedProfilerInstall install_outer(&outer);
  EXPECT_EQ(ScopedProfilerInstall::Current(), &outer);
  {
    ScopedProfilerInstall install_inner(&inner);
    EXPECT_EQ(ScopedProfilerInstall::Current(), &inner);
    NIDC_SPAN("x");
  }
  EXPECT_EQ(ScopedProfilerInstall::Current(), &outer);
  EXPECT_EQ(inner.spans_recorded(), 1u);
  EXPECT_EQ(outer.spans_recorded(), 0u);
}

TEST(PhaseProfilerTest, SetStepRollsCurrentIntoLastStep) {
  PhaseProfiler profiler;
  ScopedProfilerInstall install(&profiler);
  profiler.SetStep(1);
  { NIDC_SPAN("work"); }
  EXPECT_TRUE(profiler.LastStep().empty());
  profiler.SetStep(2);
  EXPECT_EQ(profiler.step(), 2u);
  const std::vector<PhaseProfiler::PhaseStats> last = profiler.LastStep();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].path, "work");
  // An empty step clears the last-step profile; totals persist.
  profiler.SetStep(3);
  EXPECT_TRUE(profiler.LastStep().empty());
  EXPECT_EQ(profiler.Snapshot().size(), 1u);
}

TEST(PhaseProfilerTest, CollapsedSelfTimeExcludesChildren) {
  PhaseProfiler profiler;
  // Deterministic spans through the aggregation API: "a" spends 3s
  // inclusive, its child "a;b" 1s, so a's self time is 2s.
  profiler.RecordSpan("a;b", "b", 0.5, 1.0, 0.5, 0, 1);
  profiler.RecordSpan("a", "a", 0.0, 3.0, 2.0, 0, 1);
  const std::string collapsed = profiler.RenderCollapsed();
  EXPECT_NE(collapsed.find("a 2000000\n"), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("a;b 1000000\n"), std::string::npos) << collapsed;
}

TEST(PhaseProfilerTest, CollapsedSelfTimeFloorsAtZero) {
  PhaseProfiler profiler;
  // Child wall exceeding the parent's (possible when a pool worker's span
  // outlives the submitting phase) must clamp, not go negative.
  profiler.RecordSpan("p;c", "c", 0.0, 5.0, 0.0, 0, 1);
  profiler.RecordSpan("p", "p", 0.0, 1.0, 0.0, 0, 1);
  EXPECT_NE(profiler.RenderCollapsed().find("p 0\n"), std::string::npos);
}

TEST(PhaseProfilerTest, RenderJsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  PhaseProfiler::Options options;
  options.metrics = &registry;
  PhaseProfiler profiler(options);
  profiler.SetStep(4);
  profiler.RecordSpan("a", "a", 0.0, 0.25, 0.125, 3, 1);
  profiler.SetStep(5);
  const Result<JsonValue> parsed = ParseJson(profiler.RenderJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("step")->number, 5.0);
  EXPECT_DOUBLE_EQ(parsed->Find("spans")->number, 1.0);
  const JsonValue* totals = parsed->Find("totals");
  ASSERT_TRUE(totals->is_array());
  ASSERT_EQ(totals->array.size(), 1u);
  EXPECT_EQ(totals->array[0].Find("path")->string_value, "a");
  EXPECT_DOUBLE_EQ(totals->array[0].Find("wall_us")->number, 250000.0);
  EXPECT_DOUBLE_EQ(totals->array[0].Find("pool_tasks")->number, 3.0);
  const JsonValue* last = parsed->Find("last_step");
  ASSERT_TRUE(last->is_array());
  EXPECT_EQ(last->array.size(), 1u);
  // The instruments published into the registry track the aggregation.
  EXPECT_EQ(registry.GetCounter("profile.spans")->Value(), 1u);
}

TEST(PhaseProfilerTest, ChromeTraceIsBoundedAndRebased) {
  MetricsRegistry registry;
  PhaseProfiler::Options options;
  options.trace_capacity = 2;
  options.metrics = &registry;
  PhaseProfiler profiler(options);
  for (int i = 0; i < 5; ++i) {
    profiler.RecordSpan("a", "a", 100.0 + i, 0.5, 0.25, 0, 1);
  }
  const Result<JsonValue> parsed = ParseJson(profiler.RenderChromeTrace());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Ring of 2: only the two newest raw events survive; three dropped.
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(registry.GetCounter("profile.trace_dropped")->Value(), 3u);
  // Rebased onto the oldest retained event: ts 0 then 1s.
  EXPECT_DOUBLE_EQ(events->array[0].Find("ts")->number, 0.0);
  EXPECT_DOUBLE_EQ(events->array[1].Find("ts")->number, 1e6);
  EXPECT_EQ(events->array[0].Find("ph")->string_value, "X");
  EXPECT_DOUBLE_EQ(events->array[0].Find("dur")->number, 500000.0);
}

TEST(PhaseProfilerTest, PhaseCapBoundsDistinctPaths) {
  PhaseProfiler::Options options;
  options.max_phases = 2;
  PhaseProfiler profiler(options);
  profiler.RecordSpan("a", "a", 0.0, 0.1, 0.0, 0, 1);
  profiler.RecordSpan("b", "b", 0.0, 0.1, 0.0, 0, 1);
  profiler.RecordSpan("c", "c", 0.0, 0.1, 0.0, 0, 1);
  // The third path is dropped from aggregation, but still counted.
  EXPECT_EQ(profiler.Snapshot().size(), 2u);
  EXPECT_EQ(profiler.spans_recorded(), 3u);
}

}  // namespace
}  // namespace nidc::obs
