#include "nidc/serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/metrics.h"

namespace nidc {
namespace {

struct FetchResult {
  bool ok = false;
  int status = 0;
  std::string body;
};

// Minimal blocking HTTP client: one request, reads to EOF (the server
// closes after each response).
FetchResult Fetch(uint16_t port, const std::string& target,
                  const std::string& method = "GET") {
  FetchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return result;
  result.status = std::atoi(response.c_str() + space + 1);
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.body = response.substr(body_start + 4);
  }
  result.ok = true;
  return result;
}

TEST(HttpServerTest, ServesRegisteredHandler) {
  serve::HttpServer server;
  server.Handle("/hello", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "world";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);
  const FetchResult result = Fetch(server.port(), "/hello");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "world");
  server.Stop();
}

TEST(HttpServerTest, HandlerSeesPathAndQuery) {
  serve::HttpServer server;
  server.Handle("/echo", [](const serve::HttpRequest& request) {
    serve::HttpResponse response;
    response.body = request.method + " " + request.path + " ?" +
                    request.query;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result = Fetch(server.port(), "/echo?n=3&x=y");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.body, "GET /echo ?n=3&x=y");
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404) {
  obs::MetricsRegistry registry;
  serve::HttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result = Fetch(server.port(), "/nope");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 404);
  EXPECT_EQ(registry.GetCounter("serve.not_found")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("serve.requests")->Value(), 1u);
  server.Stop();
}

TEST(HttpServerTest, UnsupportedMethodIs405) {
  serve::HttpServer server;
  server.Handle("/hello", [](const serve::HttpRequest&) {
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result = Fetch(server.port(), "/hello", "PUT");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 405);
  server.Stop();
}

// Sends a raw request string and returns the parsed response.
FetchResult FetchRaw(uint16_t port, const std::string& request) {
  FetchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }
  (void)!::write(fd, request.data(), request.size());
  // EOF the write side so a server waiting for more body bytes sees the
  // hangup immediately instead of waiting out its receive timeout.
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return result;
  result.status = std::atoi(response.c_str() + space + 1);
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.body = response.substr(body_start + 4);
  }
  result.ok = true;
  return result;
}

FetchResult Post(uint16_t port, const std::string& target,
                 const std::string& body) {
  return FetchRaw(port, "POST " + target +
                            " HTTP/1.1\r\nHost: localhost\r\n"
                            "Content-Length: " +
                            std::to_string(body.size()) +
                            "\r\nConnection: close\r\n\r\n" + body);
}

TEST(HttpServerTest, PostDeliversTheBodyToTheHandler) {
  serve::HttpServer server;
  server.Handle("/submit", [](const serve::HttpRequest& request) {
    serve::HttpResponse response;
    response.body = request.method + " got [" + request.body + "]";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result = Post(server.port(), "/submit", "hello body");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "POST got [hello body]");
  // An empty body is fine too.
  const FetchResult empty = Post(server.port(), "/submit", "");
  ASSERT_TRUE(empty.ok);
  EXPECT_EQ(empty.status, 200);
  EXPECT_EQ(empty.body, "POST got []");
  server.Stop();
}

TEST(HttpServerTest, PostWithoutContentLengthIsAnEmptyBody) {
  // RFC 7230 §3.3.3: no Content-Length on a request means a zero-length
  // body (`curl -X POST` control-plane calls look like this). The
  // connection must close afterwards so unframed stray bytes can never
  // be parsed as a pipelined next request.
  serve::HttpServer server;
  std::string seen_body = "unset";
  server.Handle("/submit", [&seen_body](const serve::HttpRequest& request) {
    seen_body = request.body;
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result =
      FetchRaw(server.port(),
               "POST /submit HTTP/1.1\r\nHost: localhost\r\n\r\n");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(seen_body, "");
  server.Stop();
}

TEST(HttpServerTest, PostWithMalformedContentLengthIs411) {
  serve::HttpServer server;
  server.Handle("/submit", [](const serve::HttpRequest&) {
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult result =
      FetchRaw(server.port(),
               "POST /submit HTTP/1.1\r\nHost: localhost\r\n"
               "Content-Length: banana\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 411);
  server.Stop();
}

TEST(HttpServerTest, OversizedPostBodyIs413) {
  serve::HttpServer server;
  bool handler_ran = false;
  server.Handle("/submit", [&handler_ran](const serve::HttpRequest&) {
    handler_ran = true;
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  // The refusal happens on the declared length alone — before any body
  // bytes are buffered — so an over-limit upload costs no memory.
  const FetchResult result = FetchRaw(
      server.port(),
      "POST /submit HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
          std::to_string(serve::kMaxBodyBytes + 1) +
          "\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 413);
  EXPECT_FALSE(handler_ran);
  // A body exactly at the cap is accepted.
  const FetchResult at_cap =
      Post(server.port(), "/submit", std::string(serve::kMaxBodyBytes, 'x'));
  ASSERT_TRUE(at_cap.ok);
  EXPECT_EQ(at_cap.status, 200);
  EXPECT_TRUE(handler_ran);
  server.Stop();
}

TEST(HttpServerTest, TruncatedPostBodyIs400) {
  obs::MetricsRegistry registry;
  serve::HttpServer server(&registry);
  server.Handle("/submit", [](const serve::HttpRequest&) {
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  // Declares 100 bytes but hangs up after 5: the read loop must give up
  // (peer EOF) and reject, not dispatch a short body.
  const FetchResult result =
      FetchRaw(server.port(),
               "POST /submit HTTP/1.1\r\nHost: localhost\r\n"
               "Content-Length: 100\r\nConnection: close\r\n\r\nhello");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 400);
  EXPECT_EQ(registry.GetCounter("serve.bad_requests")->Value(), 1u);
  server.Stop();
}

TEST(HttpServerTest, PortInUseIsAnIOErrorStatus) {
  serve::HttpServer first;
  ASSERT_TRUE(first.Start(0).ok());
  serve::HttpServer second;
  const Status status = second.Start(first.port());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST(HttpServerTest, StartWhileRunningIsFailedPrecondition) {
  serve::HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(server.Start(0).code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  serve::HttpServer server;
  server.Stop();  // no-op before Start
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();  // no-op after Stop
  EXPECT_FALSE(server.running());
  // A stopped server can be started again on a fresh port.
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClientsAllGetAnswers) {
  serve::HttpServer server;
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &successes] {
      for (int i = 0; i < kRequestsEach; ++i) {
        const FetchResult result = Fetch(server.port(), "/ping");
        if (result.ok && result.status == 200 && result.body == "pong") {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(successes.load(), kClients * kRequestsEach);
  EXPECT_EQ(server.requests_served(),
            static_cast<uint64_t>(kClients * kRequestsEach));
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestIs400) {
  obs::MetricsRegistry registry;
  serve::HttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage = "NONSENSE\r\n\r\n";
  ASSERT_GT(::write(fd, garbage.data(), garbage.size()), 0);
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_EQ(registry.GetCounter("serve.bad_requests")->Value(), 1u);
  server.Stop();
}

// Opens a raw connection to the server without sending anything.
int ConnectOnly(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(HttpServerTest, SilentClientTimesOutAndOthersStillServed) {
  serve::HttpServer server;
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  // A client that connects and never sends a byte must not wedge the
  // single-threaded accept loop: its recv timeout expires and the next
  // client is served.
  const int silent = ConnectOnly(server.port());
  ASSERT_GE(silent, 0);
  const FetchResult result = Fetch(server.port(), "/ping");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.body, "pong");
  ::close(silent);
  server.Stop();
}

TEST(HttpServerTest, PeerHangupMidResponseDoesNotKillServer) {
  serve::HttpServer server;
  // Large enough that the response cannot fit in the socket buffers, so
  // the server is still writing when the peer resets the connection.
  const std::string big(16 << 20, 'x');
  server.Handle("/big", [&big](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = big;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ConnectOnly(server.port());
  ASSERT_GE(fd, 0);
  const std::string request =
      "GET /big HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  ASSERT_GT(::write(fd, request.data(), request.size()), 0);
  // Abort the connection with an RST (SO_LINGER 0) without reading the
  // response; the server's send must see EPIPE/ECONNRESET, not SIGPIPE.
  linger hard_close{};
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
  ::close(fd);
  // The process survived iff the next request is answered normally.
  const FetchResult result = Fetch(server.port(), "/big");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body.size(), big.size());
  server.Stop();
}

TEST(HttpServerTest, StopCutsInFlightConnectionLoose) {
  serve::HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int silent = ConnectOnly(server.port());
  ASSERT_GE(silent, 0);
  // Give the accept loop a moment to pick the connection up so Stop()
  // exercises the in-flight shutdown path rather than the listen socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Well under the 2s socket timeout: Stop() shut the connection down
  // instead of waiting it out.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  EXPECT_FALSE(server.running());
  ::close(silent);
}

TEST(HttpServerTest, KeepAliveServesPipelinedRequestsOnOneConnection) {
  obs::MetricsRegistry registry;
  serve::HttpServer server(&registry);
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  // Three requests up front on one socket; only the last asks to close.
  // The worker must answer all three before hanging up (the leftover
  // buffer carries each pipelined request into the next loop turn).
  const std::string one =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\n\r\n";
  const std::string last =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  const int fd = ConnectOnly(server.port());
  ASSERT_GE(fd, 0);
  const std::string wire = one + one + last;
  ASSERT_GT(::write(fd, wire.data(), wire.size()), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t answers = 0;
  for (size_t pos = response.find("HTTP/1.1 200");
       pos != std::string::npos;
       pos = response.find("HTTP/1.1 200", pos + 1)) {
    ++answers;
  }
  EXPECT_EQ(answers, 3u) << response;
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_EQ(registry.GetCounter("serve.keepalive_reuses")->Value(), 2u);
  server.Stop();
}

TEST(HttpServerTest, Http10ClientGetsOneResponseAndAPromptClose) {
  serve::HttpServer server;
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const auto t0 = std::chrono::steady_clock::now();
  const FetchResult result =
      FetchRaw(server.port(), "GET /ping HTTP/1.0\r\n\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "pong");
  // The server closed right after the response instead of keeping the
  // socket open until its 2s receive timeout fired.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  server.Stop();
}

TEST(HttpServerTest, KeepAliveOffClosesAfterEveryResponse) {
  serve::HttpServerOptions options;
  options.keep_alive = false;
  serve::HttpServer server(options);
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ConnectOnly(server.port());
  ASSERT_GE(fd, 0);
  // No Connection: close from the client — the server volunteers it.
  const std::string request =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_GT(::write(fd, request.data(), request.size()), 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(response.find("Connection: close"), std::string::npos)
      << response;
  EXPECT_NE(response.find("pong"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  server.Stop();
}

TEST(HttpServerTest, ExtraHeadersAreEmitted) {
  serve::HttpServer server;
  server.Handle("/throttled", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.status = 429;
    response.extra_headers.emplace_back("Retry-After", "7");
    response.body = "slow down";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ConnectOnly(server.port());
  ASSERT_GE(fd, 0);
  const std::string request =
      "GET /throttled HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: close\r\n\r\n";
  ASSERT_GT(::write(fd, request.data(), request.size()), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("429"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 7"), std::string::npos)
      << response;
  server.Stop();
}

TEST(HttpServerTest, SingleWorkerPoolStillServesEveryClient) {
  serve::HttpServerOptions options;
  options.num_workers = 1;
  serve::HttpServer server(options);
  server.Handle("/ping", [](const serve::HttpRequest&) {
    serve::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(server.num_workers(), 1u);
  for (int i = 0; i < 6; ++i) {
    const FetchResult result = Fetch(server.port(), "/ping");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.body, "pong");
  }
  server.Stop();
}

}  // namespace
}  // namespace nidc
