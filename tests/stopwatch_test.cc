#include "nidc/util/stopwatch.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch sw;
  const double s = sw.ElapsedSeconds();
  const double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // sampled at different instants; loose
}

TEST(StopwatchTest, RestartResetsClock) {
  Stopwatch sw;
  // Burn a little time (volatile write defeats loop elision).
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), before + 1e-3);
}

TEST(FormatDurationTest, MinutesFormat) {
  EXPECT_EQ(Stopwatch::FormatDuration(105.0), "1min45sec");
  EXPECT_EQ(Stopwatch::FormatDuration(3497.0), "58min17sec");
}

TEST(FormatDurationTest, SecondsFormat) {
  EXPECT_EQ(Stopwatch::FormatDuration(2.5), "2.50sec");
}

TEST(FormatDurationTest, MillisFormat) {
  EXPECT_EQ(Stopwatch::FormatDuration(0.0123), "12.30ms");
}

TEST(FormatDurationTest, RoundingAtMinuteBoundary) {
  EXPECT_EQ(Stopwatch::FormatDuration(60.0), "1min00sec");
  EXPECT_EQ(Stopwatch::FormatDuration(119.6), "2min00sec");  // carries up
}

}  // namespace
}  // namespace nidc
