#include "nidc/obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/event_log.h"
#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"

namespace nidc::obs {
namespace {

// Brute-force nearest-rank percentile, the reference the store's windows
// are checked against.
double BruteForcePercentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size()));
  size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

TimeSeriesStore::Options SmallOptions() {
  TimeSeriesStore::Options options;
  options.raw_capacity = 4;
  options.mid_capacity = 2;
  options.coarse_capacity = 1;
  options.mid_bucket = 4;
  options.coarse_bucket = 8;
  return options;
}

TEST(TimeSeriesStoreTest, RawWindowsKeepPerStepValuesUpToCapacity) {
  TimeSeriesStore store(SmallOptions());
  for (uint64_t step = 0; step < 10; ++step) {
    store.ObserveSample("m", step, static_cast<double>(step + 1));
  }
  // raw_capacity = 4: only the 4 newest 1-step windows survive.
  const std::vector<SeriesWindow> raw = store.Series("m", 1);
  ASSERT_EQ(raw.size(), 4u);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[i].start_step, 6u + i);
    EXPECT_EQ(raw[i].count, 1u);
    const double value = static_cast<double>(7 + i);
    EXPECT_DOUBLE_EQ(raw[i].min, value);
    EXPECT_DOUBLE_EQ(raw[i].max, value);
    EXPECT_DOUBLE_EQ(raw[i].mean, value);
    EXPECT_DOUBLE_EQ(raw[i].p50, value);
    EXPECT_DOUBLE_EQ(raw[i].p99, value);
  }
}

TEST(TimeSeriesStoreTest, DownsampledWindowMathIsExact) {
  TimeSeriesStore store(SmallOptions());
  for (uint64_t step = 0; step < 10; ++step) {
    store.ObserveSample("m", step, static_cast<double>(step + 1));
  }
  // mid_bucket = 4: windows [1..4], [5..8] complete, [9,10] pending.
  const std::vector<SeriesWindow> mid = store.Series("m", 4);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].start_step, 0u);
  EXPECT_EQ(mid[0].count, 4u);
  EXPECT_DOUBLE_EQ(mid[0].min, 1.0);
  EXPECT_DOUBLE_EQ(mid[0].max, 4.0);
  EXPECT_DOUBLE_EQ(mid[0].mean, 2.5);
  EXPECT_DOUBLE_EQ(mid[0].p50, 2.0);  // sorted[ceil(0.5*4)-1] = sorted[1]
  EXPECT_DOUBLE_EQ(mid[0].p99, 4.0);  // sorted[ceil(0.99*4)-1] = sorted[3]
  EXPECT_EQ(mid[1].start_step, 4u);
  EXPECT_DOUBLE_EQ(mid[1].mean, 6.5);
  // The partially filled pending bucket is exposed as a shorter window.
  EXPECT_EQ(mid[2].start_step, 8u);
  EXPECT_EQ(mid[2].count, 2u);
  EXPECT_DOUBLE_EQ(mid[2].min, 9.0);
  EXPECT_DOUBLE_EQ(mid[2].max, 10.0);

  // coarse_bucket = 8: one complete window of [1..8] plus pending [9,10].
  const std::vector<SeriesWindow> coarse = store.Series("m", 8);
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse[0].count, 8u);
  EXPECT_DOUBLE_EQ(coarse[0].mean, 4.5);
  EXPECT_DOUBLE_EQ(coarse[0].p50, 4.0);
  EXPECT_DOUBLE_EQ(coarse[0].p99, 8.0);

  // Unknown names and resolutions yield empty (Has distinguishes).
  EXPECT_TRUE(store.Series("m", 5).empty());
  EXPECT_TRUE(store.Series("nope", 1).empty());
  EXPECT_TRUE(store.Has("m"));
  EXPECT_FALSE(store.Has("nope"));
  const std::vector<size_t> resolutions = store.Resolutions();
  ASSERT_EQ(resolutions.size(), 3u);
  EXPECT_EQ(resolutions[0], 1u);
  EXPECT_EQ(resolutions[1], 4u);
  EXPECT_EQ(resolutions[2], 8u);
}

TEST(TimeSeriesStoreTest, PercentilesMatchBruteForceOnIrregularData) {
  TimeSeriesStore::Options options;
  options.mid_bucket = 100;
  TimeSeriesStore store(options);
  // Deterministic scrambled values (LCG), one mid window of all 100.
  std::vector<double> values;
  uint64_t state = 12345;
  for (uint64_t step = 0; step < 100; ++step) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double value = static_cast<double>(state % 1000) / 7.0;
    values.push_back(value);
    store.ObserveSample("m", step, value);
  }
  const std::vector<SeriesWindow> mid = store.Series("m", 100);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].count, 100u);
  EXPECT_DOUBLE_EQ(mid[0].p50, BruteForcePercentile(values, 0.50));
  EXPECT_DOUBLE_EQ(mid[0].p99, BruteForcePercentile(values, 0.99));
  EXPECT_DOUBLE_EQ(mid[0].min, *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(mid[0].max, *std::max_element(values.begin(), values.end()));
}

TEST(TimeSeriesStoreTest, AnomalyDetectorFiresAtHandComputedZScore) {
  TimeSeriesStore::Options options;
  options.anomaly_alpha = 0.5;
  options.anomaly_threshold = 2.0;
  options.anomaly_min_samples = 3;
  EventLog events(16);
  options.events = &events;
  TimeSeriesStore store(options);

  // EWMA recurrences with alpha = 0.5 feeding 10,10,10,10:
  //   mean: 0 -> 5 -> 7.5 -> 8.75 -> 9.375
  //   var:  0 -> 25 -> 18.75 -> 10.9375 -> 5.859375
  // The 4th sample (value 10, prior mean 8.75, prior var 10.9375) gives
  // z = 1.25/sqrt(10.9375) = 0.378 — no firing.
  for (uint64_t step = 0; step < 4; ++step) {
    store.ObserveSample("m", step, 10.0);
  }
  EXPECT_EQ(store.anomalies_fired(), 0u);

  // The 5th sample (value 30) is tested against mean 9.375, var 5.859375:
  // z = 20.625/sqrt(5.859375) = 8.52 > 2 — fires exactly once.
  store.ObserveSample("m", 4, 30.0);
  EXPECT_EQ(store.anomalies_fired(), 1u);
  const std::vector<Event> recent = events.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].type, EventType::kMetricAnomaly);
  EXPECT_EQ(recent[0].label, "m");
  EXPECT_DOUBLE_EQ(recent[0].value, 30.0);
  EXPECT_DOUBLE_EQ(recent[0].zscore, 20.625 / std::sqrt(5.859375));
}

TEST(TimeSeriesStoreTest, ConstantSeriesNeverFires) {
  TimeSeriesStore::Options options;
  // With alpha = 1 the mean locks onto the first sample and the variance
  // of a constant series is *exactly* zero from then on — the detector
  // must stay silent instead of dividing by zero, even with a threshold
  // any nonzero z-score would clear.
  options.anomaly_alpha = 1.0;
  options.anomaly_min_samples = 2;
  options.anomaly_threshold = 0.001;
  TimeSeriesStore store(options);
  for (uint64_t step = 0; step < 50; ++step) {
    store.ObserveSample("m", step, 7.0);
  }
  EXPECT_EQ(store.anomalies_fired(), 0u);
}

TEST(TimeSeriesStoreTest, WarmupSuppressesEarlyFirings) {
  TimeSeriesStore::Options options;
  options.anomaly_min_samples = 8;
  options.anomaly_threshold = 1.0;
  TimeSeriesStore store(options);
  // Wildly varying values, but fewer than min_samples: never fires.
  for (uint64_t step = 0; step < 7; ++step) {
    store.ObserveSample("m", step, step % 2 == 0 ? 0.0 : 1000.0);
  }
  EXPECT_EQ(store.anomalies_fired(), 0u);
}

TEST(TimeSeriesStoreTest, SeriesCapRejectsNewNames) {
  TimeSeriesStore::Options options;
  options.max_series = 2;
  TimeSeriesStore store(options);
  store.ObserveSample("a", 0, 1.0);
  store.ObserveSample("b", 0, 2.0);
  store.ObserveSample("c", 0, 3.0);
  EXPECT_EQ(store.num_series(), 2u);
  EXPECT_TRUE(store.Has("a"));
  EXPECT_TRUE(store.Has("b"));
  EXPECT_FALSE(store.Has("c"));
  // Existing series keep ingesting under the cap.
  store.ObserveSample("a", 1, 4.0);
  EXPECT_EQ(store.Series("a", 1).size(), 2u);
}

TEST(TimeSeriesStoreTest, ObserveStepIngestsCounterDeltasAndGaugeValues) {
  MetricsRegistry registry;
  TimeSeriesStore::Options options;
  options.metrics = &registry;
  TimeSeriesStore store(options);

  Counter* docs_new = registry.GetCounter("step.docs_new");
  Counter* moves = registry.GetCounter("kmeans.moves");
  Gauge* gauge = registry.GetGauge("term_stats.tdw");
  Histogram* hist = registry.GetHistogram("kmeans.sweep_ms", {1.0, 10.0});

  docs_new->Increment(10);
  moves->Increment(5);
  gauge->Set(3.5);
  hist->Observe(1.0);
  hist->Observe(3.0);
  store.ObserveStepAt(0, 100.0);

  docs_new->Increment(20);
  moves->Increment(1);
  gauge->Set(7.0);
  store.ObserveStepAt(1, 102.0);

  // Counters become per-step deltas (first sight = the full value).
  const std::vector<SeriesWindow> d = store.Series("step.docs_new", 1);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].mean, 10.0);
  EXPECT_DOUBLE_EQ(d[1].mean, 20.0);
  // Gauges stay raw.
  const std::vector<SeriesWindow> g = store.Series("term_stats.tdw", 1);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g[0].mean, 3.5);
  EXPECT_DOUBLE_EQ(g[1].mean, 7.0);
  // Histograms feed the per-step mean of *new* observations; the silent
  // second step contributes no window.
  const std::vector<SeriesWindow> h = store.Series("kmeans.sweep_ms.mean", 1);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_DOUBLE_EQ(h[0].mean, 2.0);

  // Derived series: docs/sec needs a prior wall reading (step 1 only:
  // 20 docs over 2 injected seconds); moves_per_step mirrors the delta.
  const std::vector<SeriesWindow> rate =
      store.Series("timeseries.docs_per_sec", 1);
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_EQ(rate[0].start_step, 1u);
  EXPECT_DOUBLE_EQ(rate[0].mean, 10.0);
  const std::vector<SeriesWindow> mps =
      store.Series("timeseries.moves_per_step", 1);
  ASSERT_EQ(mps.size(), 2u);
  EXPECT_DOUBLE_EQ(mps[0].mean, 5.0);
  EXPECT_DOUBLE_EQ(mps[1].mean, 1.0);

  // The store's own instruments must not feed back into themselves.
  EXPECT_FALSE(store.Has("timeseries.observations"));
  EXPECT_FALSE(store.Has("timeseries.tracked"));
  EXPECT_EQ(store.observations(), 2u);
}

TEST(TimeSeriesStoreTest, CertifiedFractionAndDurabilityLagDerive) {
  MetricsRegistry registry;
  TimeSeriesStore::Options options;
  options.metrics = &registry;
  TimeSeriesStore store(options);

  Counter* certified = registry.GetCounter("kernel.quantized_certified");
  Counter* fallbacks = registry.GetCounter("kernel.quantized_fallbacks");
  Counter* wal = registry.GetCounter("store.wal_records");
  Counter* snapshots = registry.GetCounter("store.snapshots");

  certified->Increment(8);
  fallbacks->Increment(2);
  wal->Increment(5);
  store.ObserveStepAt(0, 10.0);
  // 8 certified of 10 quantized-scored docs; 5 WAL records since the
  // (never-seen) last snapshot.
  const std::vector<SeriesWindow> frac =
      store.Series("timeseries.certified_fraction", 1);
  ASSERT_EQ(frac.size(), 1u);
  EXPECT_DOUBLE_EQ(frac[0].mean, 0.8);
  std::vector<SeriesWindow> lag = store.Series("timeseries.durability_lag", 1);
  ASSERT_EQ(lag.size(), 1u);
  EXPECT_DOUBLE_EQ(lag[0].mean, 5.0);

  // A snapshot commit resets the lag origin to the WAL high-water mark.
  certified->Increment(10);
  wal->Increment(4);  // 9 total
  snapshots->Increment();
  store.ObserveStepAt(1, 11.0);
  lag = store.Series("timeseries.durability_lag", 1);
  ASSERT_EQ(lag.size(), 2u);
  EXPECT_DOUBLE_EQ(lag[1].mean, 0.0);
  // All-certified step: fraction 1.
  const std::vector<SeriesWindow> frac2 =
      store.Series("timeseries.certified_fraction", 1);
  ASSERT_EQ(frac2.size(), 2u);
  EXPECT_DOUBLE_EQ(frac2[1].mean, 1.0);

  wal->Increment(3);  // 12 total, no new snapshot
  store.ObserveStepAt(2, 12.0);
  lag = store.Series("timeseries.durability_lag", 1);
  ASSERT_EQ(lag.size(), 3u);
  EXPECT_DOUBLE_EQ(lag[2].mean, 3.0);
}

TEST(TimeSeriesStoreTest, PublishesItsOwnInstruments) {
  MetricsRegistry registry;
  TimeSeriesStore::Options options;
  options.metrics = &registry;
  TimeSeriesStore store(options);
  // The timeseries.* family exists (at zero) before the first step, so
  // early registry snapshots already validate.
  EXPECT_EQ(registry.GetCounter("timeseries.observations")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("timeseries.anomalies")->Value(), 0u);
  registry.GetCounter("kmeans.moves")->Increment();
  store.ObserveStepAt(0, 1.0);
  EXPECT_EQ(registry.GetCounter("timeseries.observations")->Value(), 1u);
}

TEST(TimeSeriesStoreTest, RenderJsonRoundTripsThroughParser) {
  TimeSeriesStore store(SmallOptions());
  for (uint64_t step = 0; step < 6; ++step) {
    store.ObserveSample("kmeans.moves", step, static_cast<double>(step));
  }
  const Result<JsonValue> list = ParseJson(RenderTimeSeriesListJson(store));
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list->Find("series")->is_array());
  EXPECT_EQ(list->Find("series")->array.size(), 1u);
  EXPECT_EQ(list->Find("series")->array[0].string_value, "kmeans.moves");
  EXPECT_EQ(list->Find("resolutions")->array.size(), 3u);

  const Result<JsonValue> series =
      ParseJson(RenderTimeSeriesJson(store, "kmeans.moves", 1));
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->Find("metric")->string_value, "kmeans.moves");
  EXPECT_DOUBLE_EQ(series->Find("res")->number, 1.0);
  const JsonValue* windows = series->Find("windows");
  ASSERT_TRUE(windows->is_array());
  ASSERT_EQ(windows->array.size(), 4u);  // raw capacity
  EXPECT_NE(windows->array[0].Find("p99"), nullptr);
}

}  // namespace
}  // namespace nidc::obs
