#include "nidc/forgetting/forgetting_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class ForgettingModelTest : public testing::Test {
 protected:
  void SetUp() override {
    // Five documents over ten days with overlapping vocabulary.
    corpus_.AddText("iraq weapons inspection crisis", 0.0, 1);
    corpus_.AddText("iraq sanctions united nations", 1.0, 1);
    corpus_.AddText("olympics skating gold medal", 2.0, 2);
    corpus_.AddText("olympics hockey final", 6.0, 2);
    corpus_.AddText("tobacco settlement senate", 9.0, 3);
  }

  ForgettingParams Params(double beta = 7.0, double gamma = 14.0) {
    ForgettingParams p;
    p.half_life_days = beta;
    p.life_span_days = gamma;
    return p;
  }

  std::vector<DocId> AllDocs() { return {0, 1, 2, 3, 4}; }

  Corpus corpus_;
};

TEST_F(ForgettingModelTest, AddDocumentsSetsWeights) {
  ForgettingModel m(&corpus_, Params());
  m.AddDocuments({0});
  EXPECT_DOUBLE_EQ(m.Weight(0), 1.0);
  EXPECT_TRUE(m.IsActive(0));
  EXPECT_FALSE(m.IsActive(1));
  EXPECT_EQ(m.num_active(), 1u);
}

TEST_F(ForgettingModelTest, PrDocIsNormalized) {
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(1.0);
  m.AddDocuments({0, 1});  // doc 0 back-dated, doc 1 fresh
  double total = 0.0;
  for (DocId id : m.active_docs()) total += m.PrDoc(id);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(ForgettingModelTest, OlderDocsHaveSmallerPr) {
  ForgettingModel m(&corpus_, Params());
  m.AddDocuments({0});           // acquired day 0
  m.AdvanceTo(2.0);
  m.AddDocuments({2});           // acquired day 2
  EXPECT_LT(m.PrDoc(0), m.PrDoc(2));
}

TEST_F(ForgettingModelTest, PrTermsSumToOne) {
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(9.0);
  m.AddDocuments(AllDocs());
  double total = 0.0;
  for (TermId t = 0; t < corpus_.vocabulary().size(); ++t) {
    total += m.PrTerm(t);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ForgettingModelTest, IdfIsInverseSqrt) {
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(9.0);
  m.AddDocuments(AllDocs());
  const TermId iraq = corpus_.vocabulary().Lookup("iraq");
  ASSERT_NE(iraq, kInvalidTermId);
  EXPECT_NEAR(m.Idf(iraq), 1.0 / std::sqrt(m.PrTerm(iraq)), 1e-12);
}

TEST_F(ForgettingModelTest, IdfOfUnseenTermIsZero) {
  ForgettingModel m(&corpus_, Params());
  m.AddDocuments({0});
  EXPECT_DOUBLE_EQ(m.Idf(static_cast<TermId>(9999)), 0.0);
}

TEST_F(ForgettingModelTest, RareTermsGetHigherIdf) {
  // With equal document ages (equal weights), a term in one document is
  // rarer — hence higher idf — than a term in two. (With unequal ages the
  // comparison is weight-dependent by design.)
  Corpus corpus;
  corpus.AddText("iraq weapons inspection crisis", 0.0, 1);
  corpus.AddText("iraq sanctions united nations", 0.0, 1);
  corpus.AddText("tobacco settlement senate vote", 0.0, 3);
  ForgettingModel m(&corpus, Params());
  m.AddDocuments({0, 1, 2});
  const TermId iraq = corpus.vocabulary().Lookup("iraq");      // 2 docs
  const TermId senate = corpus.vocabulary().Lookup("senat");   // 1 doc
  ASSERT_NE(iraq, kInvalidTermId);
  ASSERT_NE(senate, kInvalidTermId);
  EXPECT_GT(m.Idf(senate), m.Idf(iraq));
}

TEST_F(ForgettingModelTest, ExpirationUsesEpsilon) {
  // β=7, γ=14 → ε=0.25; a doc acquired at day 0 falls below ε after
  // 14 days (weight 2^(-t/7) < 0.25 ⟺ t > 14).
  ForgettingModel m(&corpus_, Params(7.0, 14.0));
  m.AddDocuments({0});
  m.AdvanceTo(14.5);
  m.AddDocuments({4});  // fresh (acquired day 9, weight still high)
  const auto expired = m.ExpireDocuments();
  EXPECT_EQ(expired, (std::vector<DocId>{0}));
  EXPECT_FALSE(m.IsActive(0));
  EXPECT_TRUE(m.IsActive(4));
}

TEST_F(ForgettingModelTest, ExpirationExactlyAtBoundaryKept) {
  ForgettingModel m(&corpus_, Params(7.0, 14.0));
  m.AddDocuments({0});
  m.AdvanceTo(14.0);  // weight == ε exactly; dw < ε is strict
  EXPECT_TRUE(m.ExpireDocuments().empty());
}

TEST_F(ForgettingModelTest, ExpirationRemovesTermMass) {
  ForgettingModel m(&corpus_, Params(7.0, 7.0));  // ε = 0.5
  m.AddDocuments({0});
  m.AdvanceTo(9.0);
  m.AddDocuments({4});
  m.ExpireDocuments();  // doc 0 gone
  const TermId iraq = corpus_.vocabulary().Lookup("iraq");
  EXPECT_NEAR(m.PrTerm(iraq), 0.0, 1e-12);
  // Probabilities still normalized over the survivor.
  double total = 0.0;
  for (TermId t = 0; t < corpus_.vocabulary().size(); ++t) {
    total += m.PrTerm(t);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ForgettingModelTest, RemoveDocumentExplicit) {
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(1.0);
  m.AddDocuments({0, 1});
  m.RemoveDocument(0);
  EXPECT_FALSE(m.IsActive(0));
  EXPECT_NEAR(m.PrDoc(1), 1.0, 1e-12);
}

// The headline incremental-statistics property: stepping day by day gives
// the same state as rebuilding everything from scratch (§5.1's claim).
TEST_F(ForgettingModelTest, IncrementalMatchesFromScratch) {
  ForgettingModel incremental(&corpus_, Params());
  // Feed documents in daily batches.
  for (int day = 0; day <= 9; ++day) {
    incremental.AdvanceTo(static_cast<double>(day));
    std::vector<DocId> batch;
    for (DocId id : {0, 1, 2, 3, 4}) {
      if (corpus_.doc(id).time >= day && corpus_.doc(id).time < day + 1) {
        batch.push_back(id);
      }
    }
    incremental.AddDocuments(batch);
    incremental.ExpireDocuments();
  }

  ForgettingModel scratch(&corpus_, Params());
  scratch.RebuildFromScratch(AllDocs(), 9.0);
  scratch.ExpireDocuments();

  ASSERT_EQ(incremental.num_active(), scratch.num_active());
  EXPECT_NEAR(incremental.TotalWeight(), scratch.TotalWeight(), 1e-9);
  for (DocId id : scratch.active_docs()) {
    EXPECT_NEAR(incremental.Weight(id), scratch.Weight(id), 1e-9) << id;
    EXPECT_NEAR(incremental.PrDoc(id), scratch.PrDoc(id), 1e-9) << id;
  }
  for (TermId t = 0; t < corpus_.vocabulary().size(); ++t) {
    EXPECT_NEAR(incremental.PrTerm(t), scratch.PrTerm(t), 1e-9) << t;
  }
}

TEST_F(ForgettingModelTest, RebuildResetsPreviousState) {
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(9.0);
  m.AddDocuments(AllDocs());
  m.AdvanceTo(20.0);
  m.RebuildFromScratch({4}, 9.0);
  EXPECT_EQ(m.num_active(), 1u);
  EXPECT_DOUBLE_EQ(m.Weight(4), 1.0);
  EXPECT_DOUBLE_EQ(m.now(), 9.0);
}

TEST_F(ForgettingModelTest, PureTimePassageKeepsPrTermInvariant) {
  // Decay hits S_k and tdw identically, so Pr(t_k) only moves on
  // arrival/expiration.
  ForgettingModel m(&corpus_, Params());
  m.AdvanceTo(1.0);
  m.AddDocuments({0, 1});
  const TermId iraq = corpus_.vocabulary().Lookup("iraq");
  const double before = m.PrTerm(iraq);
  m.AdvanceTo(5.0);
  EXPECT_NEAR(m.PrTerm(iraq), before, 1e-12);
}

}  // namespace
}  // namespace nidc
