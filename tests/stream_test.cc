#include "nidc/corpus/stream.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class StreamTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("day zero", 0.5);
    corpus_.AddText("day one a", 1.1);
    corpus_.AddText("day one b", 1.9);
    corpus_.AddText("day three", 3.5);
  }
  Corpus corpus_;
};

TEST_F(StreamTest, DeliversDailyBatches) {
  DocumentStream stream(&corpus_, 0.0, 4.0, 1.0);
  auto b0 = stream.Next();
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->docs, (std::vector<DocId>{0}));
  auto b1 = stream.Next();
  EXPECT_EQ(b1->docs, (std::vector<DocId>{1, 2}));
  auto b2 = stream.Next();
  EXPECT_TRUE(b2->docs.empty());  // quiet day still delivered
  auto b3 = stream.Next();
  EXPECT_EQ(b3->docs, (std::vector<DocId>{3}));
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_TRUE(stream.Done());
}

TEST_F(StreamTest, BatchBoundariesAreHalfOpen) {
  DocumentStream stream(&corpus_, 0.0, 4.0, 2.0);
  auto b0 = stream.Next();
  EXPECT_DOUBLE_EQ(b0->begin, 0.0);
  EXPECT_DOUBLE_EQ(b0->end, 2.0);
  EXPECT_EQ(b0->docs.size(), 3u);  // 0.5, 1.1, 1.9
}

TEST_F(StreamTest, FinalBatchMayBeShort) {
  DocumentStream stream(&corpus_, 0.0, 3.6, 2.0);
  stream.Next();
  auto last = stream.Next();
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->end, 3.6);  // clipped from 4.0 to the stream end
  EXPECT_EQ(last->docs, (std::vector<DocId>{3}));
  EXPECT_TRUE(stream.Done());
}

TEST_F(StreamTest, ResetReplays) {
  DocumentStream stream(&corpus_, 0.0, 4.0, 1.0);
  while (stream.Next()) {
  }
  EXPECT_TRUE(stream.Done());
  stream.Reset();
  EXPECT_FALSE(stream.Done());
  auto b = stream.Next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->docs, (std::vector<DocId>{0}));
}

TEST_F(StreamTest, EmptySpanProducesNothing) {
  DocumentStream stream(&corpus_, 2.0, 2.0, 1.0);
  EXPECT_TRUE(stream.Done());
  EXPECT_FALSE(stream.Next().has_value());
}

TEST_F(StreamTest, AllDocsDeliveredExactlyOnce) {
  DocumentStream stream(&corpus_, 0.0, 4.0, 0.7);
  std::vector<DocId> seen;
  while (auto batch = stream.Next()) {
    seen.insert(seen.end(), batch->docs.begin(), batch->docs.end());
  }
  EXPECT_EQ(seen, (std::vector<DocId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace nidc
