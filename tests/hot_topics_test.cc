#include "nidc/core/hot_topics.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "nidc/core/incremental_clusterer.h"

namespace nidc {
namespace {

class HotTopicsTest : public testing::Test {
 protected:
  void SetUp() override {
    // Old topic (day 0) and fresh topic (day 10), two docs each.
    corpus_.AddText("earthquake rescue teams city", 0.0, 1);
    corpus_.AddText("earthquake rubble rescue search", 0.2, 1);
    corpus_.AddText("election campaign candidates debate", 10.0, 2);
    corpus_.AddText("election candidates economy debate", 10.2, 2);

    ForgettingParams params;
    params.half_life_days = 7.0;
    params.life_span_days = 60.0;
    IncrementalOptions options;
    options.kmeans.k = 2;
    options.kmeans.seed = 1;
    clusterer_ = std::make_unique<IncrementalClusterer>(&corpus_, params,
                                                        options);
    auto step1 = clusterer_->Step({0, 1}, 0.2);
    ASSERT_TRUE(step1.ok());
    auto step2 = clusterer_->Step({2, 3}, 10.2);
    ASSERT_TRUE(step2.ok());
    result_ = step2->clustering;
  }

  Corpus corpus_;
  std::unique_ptr<IncrementalClusterer> clusterer_;
  ClusteringResult result_;
};

TEST_F(HotTopicsTest, FreshClusterRanksFirst) {
  auto digest = RankHotTopics(clusterer_->model(), result_, {});
  ASSERT_EQ(digest.size(), 2u);
  EXPECT_GT(digest[0].mass, digest[1].mass);
  EXPECT_GT(digest[0].newest_doc_time, 9.0);  // the election cluster
  EXPECT_LT(digest[1].newest_doc_time, 1.0);  // the earthquake cluster
}

TEST_F(HotTopicsTest, MassesSumToAtMostOne) {
  auto digest = RankHotTopics(clusterer_->model(), result_, {});
  double total = 0.0;
  for (const auto& topic : digest) total += topic.mass;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);  // no outliers here, so nearly everything
}

TEST_F(HotTopicsTest, TopTermsComeFromCluster) {
  auto digest = RankHotTopics(clusterer_->model(), result_, {});
  ASSERT_FALSE(digest[0].top_terms.empty());
  // The hottest cluster's terms are election-flavored.
  bool found = false;
  for (const auto& term : digest[0].top_terms) {
    if (term == "elect" || term == "candid" || term == "debat") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HotTopicsTest, MaxTopicsTruncates) {
  HotTopicOptions opts;
  opts.max_topics = 1;
  auto digest = RankHotTopics(clusterer_->model(), result_, opts);
  EXPECT_EQ(digest.size(), 1u);
}

TEST_F(HotTopicsTest, MinMassFilters) {
  HotTopicOptions opts;
  opts.min_mass = 0.5;
  auto digest = RankHotTopics(clusterer_->model(), result_, opts);
  // Only the fresh cluster holds >= 50% of the probability mass.
  ASSERT_EQ(digest.size(), 1u);
  EXPECT_GT(digest[0].newest_doc_time, 9.0);
}

TEST_F(HotTopicsTest, MinSizeFilters) {
  HotTopicOptions opts;
  opts.min_size = 3;
  auto digest = RankHotTopics(clusterer_->model(), result_, opts);
  EXPECT_TRUE(digest.empty());  // both clusters have 2 docs
}

TEST_F(HotTopicsTest, RenderProducesOneLinePerTopic) {
  auto digest = RankHotTopics(clusterer_->model(), result_, {});
  const std::string text = RenderHotTopics(digest);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(digest.size()));
  EXPECT_NE(text.find("1. (mass"), std::string::npos);
}

TEST_F(HotTopicsTest, EmptyResultGivesEmptyDigest) {
  ClusteringResult empty;
  EXPECT_TRUE(RankHotTopics(clusterer_->model(), empty, {}).empty());
  EXPECT_EQ(RenderHotTopics({}), "");
}

}  // namespace
}  // namespace nidc
