#include "nidc/repl/shipper.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/state_io.h"
#include "nidc/repl/replica.h"
#include "nidc/store/torture.h"

namespace nidc {
namespace {

std::string FreshDir(const std::string& name) {
  Env* env = Env::Default();
  const std::string dir = testing::TempDir() + "/nidc_shipper_test_" + name;
  env->CreateDir(dir);
  if (auto names = env->ListDir(dir); names.ok()) {
    for (const std::string& entry : *names) {
      env->RemoveFile(dir + "/" + entry);
    }
  }
  return dir;
}

// Records every shipped frame; never fails.
class CollectLink : public repl::FollowerLink {
 public:
  Status Send(const repl::ReplFrame& frame) override {
    frames.push_back(frame);
    return Status::OK();
  }
  size_t Count(repl::FrameType type) const {
    size_t n = 0;
    for (const auto& frame : frames) {
      if (frame.type == type) ++n;
    }
    return n;
  }
  std::vector<repl::ReplFrame> frames;
};

// Applies every shipped frame to a replica inline (the torture harness's
// LocalLink); an Apply refusal fails the link like a dropped connection.
class ApplyLink : public repl::FollowerLink {
 public:
  explicit ApplyLink(repl::ReplicaClusterer* replica) : replica_(replica) {}
  Status Send(const repl::ReplFrame& frame) override {
    return replica_->Apply(frame);
  }

 private:
  repl::ReplicaClusterer* replica_;
};

repl::ReplFrame FreshHello() {
  repl::ReplFrame hello;
  hello.type = repl::FrameType::kHello;
  return hello;
}

class ShipperTest : public ::testing::Test {
 protected:
  void BuildStream(uint64_t seed = 7) {
    TortureOptions shape;
    shape.num_steps = 24;
    shape.seed = seed;
    stream_ = BuildTortureStream(shape);
    params_ = shape.params;
    incremental_.kmeans.k = 4;
  }

  Result<std::unique_ptr<DurableClusterer>> OpenLeader(
      const std::string& dir, repl::WalShipper* shipper,
      uint64_t checkpoint_every = 6) {
    DurableOptions durable;
    durable.dir = dir;
    durable.checkpoint_every = checkpoint_every;
    durable.sink = shipper;
    return DurableClusterer::Open(stream_.corpus.get(), params_,
                                  incremental_, durable);
  }

  void Feed(DurableClusterer* leader, size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      auto result = leader->Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
  }

  std::string ReferenceFingerprint() {
    IncrementalClusterer reference(stream_.corpus.get(), params_,
                                   incremental_);
    for (size_t i = 0; i < stream_.batches.size(); ++i) {
      auto result = reference.Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    return SerializeState(CaptureState(reference));
  }

  TortureStream stream_;
  ForgettingParams params_;
  IncrementalOptions incremental_;
};

TEST_F(ShipperTest, FreshFollowerIsRebasedThenStreamsLive) {
  BuildStream();
  repl::ShipperOptions options;
  options.dir = FreshDir("fresh");
  repl::WalShipper shipper(options);
  auto leader = OpenLeader(options.dir, &shipper);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();

  CollectLink link;
  shipper.AddFollower(&link, FreshHello());
  ASSERT_FALSE(link.frames.empty());
  EXPECT_EQ(link.frames.front().type, repl::FrameType::kSnapshot);
  EXPECT_FALSE(link.frames.front().payload.empty());

  Feed(leader->get(), 0, stream_.batches.size());
  ASSERT_TRUE((*leader)->Close().ok());

  EXPECT_GT(link.Count(repl::FrameType::kWalRecord), 10u);
  EXPECT_GT(link.Count(repl::FrameType::kSeal), 2u);
  // Records are contiguous within each generation, restarting at 1 after
  // every seal.
  uint64_t expected_seq = 1;
  for (const auto& frame : link.frames) {
    if (frame.type == repl::FrameType::kWalRecord) {
      EXPECT_EQ(frame.sequence, expected_seq);
      ++expected_seq;
    } else if (frame.type == repl::FrameType::kSeal) {
      EXPECT_EQ(frame.sequence, expected_seq - 1);
      expected_seq = 1;
    }
  }
  const repl::ShipperStats stats = shipper.stats();
  EXPECT_EQ(stats.ship_errors, 0u);
  EXPECT_EQ(stats.records_shipped, link.Count(repl::FrameType::kWalRecord));
}

TEST_F(ShipperTest, ReconnectWithinTheQueueResumesWithoutSnapshot) {
  BuildStream();
  repl::ShipperOptions options;
  options.dir = FreshDir("reconnect");
  repl::WalShipper shipper(options);
  auto leader = OpenLeader(options.dir, &shipper, /*checkpoint_every=*/50);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();

  CollectLink first;
  const uint64_t first_id = shipper.AddFollower(&first, FreshHello());
  Feed(leader->get(), 0, 6);
  // Remember the watermark of the live follower, then drop it.
  repl::ReplFrame hello = FreshHello();
  for (const auto& frame : first.frames) {
    if (frame.type == repl::FrameType::kWalRecord ||
        frame.type == repl::FrameType::kSeal) {
      hello.generation = frame.generation;
      hello.sequence =
          frame.type == repl::FrameType::kSeal ? 0 : frame.sequence;
      if (frame.type == repl::FrameType::kSeal) ++hello.generation;
      hello.leader_steps = frame.leader_steps;
    }
  }
  shipper.RemoveFollower(first_id);

  // Advance a few records (well inside the queue bound), then reconnect
  // at the remembered watermark: the gap must be bridged from the queue —
  // no snapshot re-ship.
  Feed(leader->get(), 6, 10);
  CollectLink second;
  shipper.AddFollower(&second, hello);
  EXPECT_EQ(second.Count(repl::FrameType::kSnapshot), 0u);
  EXPECT_GT(second.Count(repl::FrameType::kWalRecord), 0u);
  ASSERT_TRUE((*leader)->Close().ok());
}

TEST_F(ShipperTest, OverflowedQueueParksTheFollowerUntilRotation) {
  BuildStream();
  repl::ShipperOptions options;
  options.dir = FreshDir("overflow");
  options.max_queue_records = 2;
  repl::WalShipper shipper(options);
  // A long cadence so the current generation accumulates far more records
  // than the queue retains.
  auto leader = OpenLeader(options.dir, &shipper, /*checkpoint_every=*/8);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  Feed(leader->get(), 0, 6);
  ASSERT_GT(shipper.stats().queue_dropped_records, 0u);

  // A fresh follower is re-based onto the cached base snapshot (sequence
  // 0), but the queue no longer reaches back far enough to bridge the
  // records since then — it parks after that single frame.
  CollectLink link;
  const uint64_t id = shipper.AddFollower(&link, FreshHello());
  EXPECT_TRUE(shipper.FollowerAlive(id));
  ASSERT_EQ(link.frames.size(), 1u);
  EXPECT_EQ(link.frames.front().type, repl::FrameType::kSnapshot);
  EXPECT_EQ(shipper.stats().parked, 1u);

  // The next rotation produces a fresh snapshot; the parked follower is
  // re-based onto it and joins the live stream.
  Feed(leader->get(), 6, stream_.batches.size());
  ASSERT_TRUE((*leader)->Close().ok());
  EXPECT_EQ(shipper.stats().parked, 0u);
  EXPECT_EQ(shipper.stats().in_sync, 1u);
  ASSERT_GT(link.frames.size(), 0u);
  EXPECT_EQ(link.frames.front().type, repl::FrameType::kSnapshot);
  EXPECT_GT(link.Count(repl::FrameType::kWalRecord), 0u);
}

TEST_F(ShipperTest, StaleGenerationFollowerCatchesUpFromSealedSegments) {
  BuildStream();
  repl::ShipperOptions options;
  options.dir = FreshDir("sealed");
  repl::WalShipper shipper(options);
  auto leader = OpenLeader(options.dir, &shipper, /*checkpoint_every=*/4);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();

  // Follow live long enough to sit mid-generation, then disconnect.
  CollectLink first;
  const uint64_t first_id = shipper.AddFollower(&first, FreshHello());
  Feed(leader->get(), 0, 6);
  repl::ReplFrame hello = FreshHello();
  for (const auto& frame : first.frames) {
    if (frame.type == repl::FrameType::kWalRecord ||
        frame.type == repl::FrameType::kSeal) {
      hello.generation = frame.generation;
      hello.sequence =
          frame.type == repl::FrameType::kSeal ? 0 : frame.sequence;
      if (frame.type == repl::FrameType::kSeal) ++hello.generation;
      hello.leader_steps = frame.leader_steps;
    }
  }
  shipper.RemoveFollower(first_id);

  // One rotation passes (still within keep_generations), so the gap spans
  // a *sealed* generation: catch-up must replay the sealed segment from
  // disk and seal it — without re-shipping a snapshot.
  Feed(leader->get(), 6, 9);
  CollectLink second;
  shipper.AddFollower(&second, hello);
  EXPECT_EQ(second.Count(repl::FrameType::kSnapshot), 0u);
  EXPECT_GT(second.Count(repl::FrameType::kSeal), 0u);
  EXPECT_GT(second.Count(repl::FrameType::kWalRecord), 0u);
  EXPECT_EQ(shipper.stats().in_sync, 1u);
  ASSERT_TRUE((*leader)->Close().ok());
}

// The replicated analogue of the store/ recovery-equivalence property:
// across stream seeds and checkpoint cadences, a follower fed through the
// shipper and then promoted is bit-identical to an uninterrupted
// single-node run of the same stream.
TEST_F(ShipperTest, PromotedFollowerMatchesReferenceAcrossSeedsAndCadences) {
  const uint64_t kSeeds[] = {3, 11};
  const uint64_t kCadences[] = {3, 7};
  for (uint64_t seed : kSeeds) {
    for (uint64_t cadence : kCadences) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " cadence " +
                   std::to_string(cadence));
      BuildStream(seed);
      repl::ShipperOptions options;
      options.dir = FreshDir("prop_leader");
      repl::WalShipper shipper(options);

      repl::ReplicaOptions replica_options;
      replica_options.dir = FreshDir("prop_follower");
      auto replica = repl::ReplicaClusterer::Open(
          stream_.corpus.get(), params_, incremental_, replica_options);
      ASSERT_TRUE(replica.ok()) << replica.status().ToString();
      ApplyLink link(replica->get());
      shipper.AddFollower(&link, (*replica)->HelloFrame());

      auto leader = OpenLeader(options.dir, &shipper, cadence);
      ASSERT_TRUE(leader.ok()) << leader.status().ToString();
      Feed(leader->get(), 0, stream_.batches.size());
      ASSERT_TRUE((*leader)->Close().ok());
      EXPECT_EQ(shipper.stats().ship_errors, 0u);
      EXPECT_EQ((*replica)->stats().lag_records, 0u);

      DurableOptions durable;
      durable.checkpoint_every = cadence;
      auto promoted = (*replica)->Promote(durable);
      ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
      EXPECT_EQ(SerializeState(CaptureState((*promoted)->clusterer())),
                ReferenceFingerprint());
      ASSERT_TRUE((*promoted)->Close().ok());
    }
  }
}

}  // namespace
}  // namespace nidc
