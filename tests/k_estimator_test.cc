#include "nidc/core/k_estimator.h"

#include <memory>

#include <gtest/gtest.h>

#include "nidc/synth/tdt2_like_generator.h"

namespace nidc {
namespace {

// A corpus with `groups` well-separated topics, `per_group` docs each.
std::unique_ptr<Corpus> PlantedCorpus(size_t groups, size_t per_group) {
  auto corpus = std::make_unique<Corpus>();
  const char* vocab[][3] = {
      {"alpha", "beta", "gamma"},    {"delta", "epsilon", "zeta"},
      {"theta", "kappa", "lambda"},  {"sigma", "omega", "phi"},
      {"nubira", "kestrel", "vorn"}, {"tandem", "oculus", "brine"},
  };
  for (size_t g = 0; g < groups; ++g) {
    for (size_t i = 0; i < per_group; ++i) {
      std::string text;
      for (int r = 0; r < 3; ++r) {
        for (int w = 0; w < 3; ++w) {
          text += vocab[g][w];
          text += ' ';
        }
      }
      corpus->AddText(text, 0.0, static_cast<TopicId>(g + 1));
    }
  }
  return corpus;
}

std::unique_ptr<ForgettingModel> MakeModel(const Corpus* corpus) {
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  auto model = std::make_unique<ForgettingModel>(corpus, params);
  std::vector<DocId> ids;
  for (DocId d = 0; d < corpus->size(); ++d) ids.push_back(d);
  model->AddDocuments(ids);
  return model;
}

TEST(KEstimatorTest, CoverCoefficientFindsPlantedCount) {
  for (size_t groups : {2u, 4u, 6u}) {
    auto corpus = PlantedCorpus(groups, 5);
    auto model = MakeModel(corpus.get());
    const size_t k = EstimateKByCoverCoefficient(*model);
    EXPECT_GE(k, groups - 1) << groups;
    EXPECT_LE(k, groups + 1) << groups;
  }
}

TEST(KEstimatorTest, GKneeFindsPlantedCountOrder) {
  auto corpus = PlantedCorpus(4, 6);
  auto model = MakeModel(corpus.get());
  SimilarityContext ctx(*model);
  GKneeOptions opts;
  opts.grid = {2, 4, 8, 12};
  opts.kmeans.seed = 3;
  auto estimate = EstimateKByGKnee(ctx, model->active_docs(), opts);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_EQ(estimate->curve.size(), 4u);
  // The knee should land on the planted count (4), not the extremes.
  EXPECT_GE(estimate->k, 2u);
  EXPECT_LE(estimate->k, 8u);
}

TEST(KEstimatorTest, GCurveIsReported) {
  auto corpus = PlantedCorpus(3, 4);
  auto model = MakeModel(corpus.get());
  SimilarityContext ctx(*model);
  GKneeOptions opts;
  opts.grid = {2, 3, 6};
  auto estimate = EstimateKByGKnee(ctx, model->active_docs(), opts);
  ASSERT_TRUE(estimate.ok());
  ASSERT_EQ(estimate->curve.size(), 3u);
  EXPECT_EQ(estimate->curve[0].first, 2u);
  EXPECT_EQ(estimate->curve[2].first, 6u);
  for (const auto& [k, g] : estimate->curve) EXPECT_GE(g, 0.0);
}

TEST(KEstimatorTest, DefaultGridIsGeometric) {
  auto corpus = PlantedCorpus(2, 10);  // 20 docs
  auto model = MakeModel(corpus.get());
  SimilarityContext ctx(*model);
  auto estimate = EstimateKByGKnee(ctx, model->active_docs(), {});
  ASSERT_TRUE(estimate.ok());
  // Grid: 2, 4, 8 (cap n/2 = 10).
  ASSERT_EQ(estimate->curve.size(), 3u);
  EXPECT_EQ(estimate->curve.back().first, 8u);
}

TEST(KEstimatorTest, RejectsEmptyInput) {
  Corpus corpus;
  ForgettingParams params;
  ForgettingModel model(&corpus, params);
  SimilarityContext ctx(model);
  EXPECT_FALSE(EstimateKByGKnee(ctx, {}, {}).ok());
}

TEST(KEstimatorTest, SyntheticWindowEstimateIsPlausible) {
  GeneratorOptions gopts;
  gopts.scale = 0.1;
  Tdt2LikeGenerator generator(gopts);
  auto corpus = std::move(generator.Generate()).value();
  const TimeWindow w = PaperWindows()[3];
  const auto docs = corpus->DocsInRange(w.begin, w.end);
  ForgettingParams params;
  params.half_life_days = 30.0;
  params.life_span_days = 30.0;
  ForgettingModel model(corpus.get(), params);
  model.RebuildFromScratch(docs, w.end);
  const size_t true_topics = ComputeWindowStats(*corpus, w).num_topics;
  const size_t estimate = EstimateKByCoverCoefficient(model);
  // Order of magnitude, not exactness: within [true/3, true*3].
  EXPECT_GE(estimate * 3, true_topics);
  EXPECT_LE(estimate, true_topics * 3);
}

}  // namespace
}  // namespace nidc
