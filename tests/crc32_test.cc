#include "nidc/util/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace nidc {
namespace {

// Known-answer vectors for CRC-32C (Castagnoli); the classic "123456789"
// check value is 0xE3069283.
TEST(Crc32Test, KnownAnswers) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string data = "incremental checksum input";
  const uint32_t whole = Crc32c(data);
  const uint32_t chained = Crc32c(data.substr(10), Crc32c(data.substr(0, 10)));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, SensitiveToSingleBitFlips) {
  std::string data = "the quick brown fox";
  const uint32_t before = Crc32c(data);
  data[4] ^= 0x01;
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32Test, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);
  }
}

}  // namespace
}  // namespace nidc
