#include "nidc/core/clustering_index.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(RelativeGChangeTest, PositiveGrowth) {
  EXPECT_NEAR(RelativeGChange(10.0, 11.0), 0.1, 1e-12);
}

TEST(RelativeGChangeTest, Decrease) {
  EXPECT_NEAR(RelativeGChange(10.0, 9.0), -0.1, 1e-12);
}

TEST(RelativeGChangeTest, ZeroOldZeroNewIsConverged) {
  EXPECT_DOUBLE_EQ(RelativeGChange(0.0, 0.0), 0.0);
}

TEST(RelativeGChangeTest, ZeroOldPositiveNewIsInfinite) {
  EXPECT_TRUE(std::isinf(RelativeGChange(0.0, 5.0)));
}

class GNaiveTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("one shared word apple", 0.0);
    corpus_.AddText("two shared word apple", 0.0);
    corpus_.AddText("three other thing banana", 0.0);
    corpus_.AddText("four other thing banana", 0.0);
    corpus_.AddText("five lonely unique cherry", 0.0);
    ForgettingParams p;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AddDocuments({0, 1, 2, 3, 4});
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }
  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST_F(GNaiveTest, FastGEqualsNaiveG) {
  ClusterSet set(3);
  set.Assign(0, 0, *ctx_);
  set.Assign(1, 0, *ctx_);
  set.Assign(2, 1, *ctx_);
  set.Assign(3, 1, *ctx_);
  set.Assign(4, 2, *ctx_);
  EXPECT_NEAR(ClusteringIndexG(set), ClusteringIndexGNaive(set, *ctx_),
              1e-10);
  EXPECT_GT(ClusteringIndexG(set), 0.0);
}

TEST_F(GNaiveTest, SingletonsContributeZero) {
  ClusterSet set(5);
  for (DocId d = 0; d < 5; ++d) {
    set.Assign(d, static_cast<int>(d), *ctx_);
  }
  EXPECT_DOUBLE_EQ(ClusteringIndexG(set), 0.0);
  EXPECT_DOUBLE_EQ(ClusteringIndexGNaive(set, *ctx_), 0.0);
}

TEST_F(GNaiveTest, CoherentClusteringBeatsIncoherent) {
  ClusterSet good(2);
  good.Assign(0, 0, *ctx_);
  good.Assign(1, 0, *ctx_);
  good.Assign(2, 1, *ctx_);
  good.Assign(3, 1, *ctx_);
  ClusterSet bad(2);
  bad.Assign(0, 0, *ctx_);
  bad.Assign(2, 0, *ctx_);
  bad.Assign(1, 1, *ctx_);
  bad.Assign(3, 1, *ctx_);
  EXPECT_GT(ClusteringIndexG(good), ClusteringIndexG(bad));
}

}  // namespace
}  // namespace nidc
