#include "nidc/text/analyzer.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(AnalyzerTest, CountsTermFrequencies) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  SparseVector v = analyzer.Analyze("bomb bomb explosion");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueAt(vocab.Lookup("bomb")), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(vocab.Lookup("explos")), 1.0);  // stemmed
}

TEST(AnalyzerTest, RemovesStopwords) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  SparseVector v = analyzer.Analyze("the president and the senate");
  EXPECT_EQ(vocab.Lookup("the"), kInvalidTermId);
  EXPECT_EQ(vocab.Lookup("and"), kInvalidTermId);
  EXPECT_EQ(v.Sum(), 2.0);  // president + senate (senat)
}

TEST(AnalyzerTest, StemmingMergesInflections) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  SparseVector v = analyzer.Analyze("elections election elected");
  // "elections"/"election" -> "elect"...; at minimum all three share a stem.
  EXPECT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].value, 3.0);
}

TEST(AnalyzerTest, StemmingCanBeDisabled) {
  Vocabulary vocab;
  AnalyzerOptions opts;
  opts.use_stemming = false;
  Analyzer analyzer(&vocab, opts);
  SparseVector v = analyzer.Analyze("elections election");
  EXPECT_EQ(v.size(), 2u);
}

TEST(AnalyzerTest, StopwordsCanBeDisabled) {
  Vocabulary vocab;
  AnalyzerOptions opts;
  opts.use_stopwords = false;
  Analyzer analyzer(&vocab, opts);
  analyzer.Analyze("the and of");
  EXPECT_NE(vocab.Lookup("the"), kInvalidTermId);
}

TEST(AnalyzerTest, SharedVocabularyAcrossDocuments) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  SparseVector a = analyzer.Analyze("iraq weapons inspection");
  SparseVector b = analyzer.Analyze("iraq sanctions");
  const TermId iraq = vocab.Lookup("iraq");
  ASSERT_NE(iraq, kInvalidTermId);
  EXPECT_DOUBLE_EQ(a.ValueAt(iraq), 1.0);
  EXPECT_DOUBLE_EQ(b.ValueAt(iraq), 1.0);
}

TEST(AnalyzerTest, FrozenAnalysisSkipsUnknownTerms) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  analyzer.Analyze("known word");
  const size_t before = vocab.size();
  SparseVector v = analyzer.AnalyzeFrozen("known brandnewterm");
  EXPECT_EQ(vocab.size(), before);
  EXPECT_EQ(v.Sum(), 1.0);
}

TEST(AnalyzerTest, EmptyTextYieldsEmptyVector) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  EXPECT_TRUE(analyzer.Analyze("").empty());
  EXPECT_TRUE(analyzer.Analyze("the of and").empty());  // all stopwords
}

TEST(AnalyzerTest, RealisticNewsLead) {
  Vocabulary vocab;
  Analyzer analyzer(&vocab);
  SparseVector v = analyzer.Analyze(
      "BAGHDAD, Iraq (CNN) -- U.N. weapons inspectors left Iraq on Wednesday "
      "after Iraqi officials refused to allow inspections of presidential "
      "sites, officials said.");
  const TermId iraq = vocab.Lookup("iraq");
  ASSERT_NE(iraq, kInvalidTermId);
  // "Iraq" appears twice plus "Iraqi" stems to "iraqi" (distinct stem).
  EXPECT_GE(v.ValueAt(iraq), 2.0);
  EXPECT_GT(v.Sum(), 10.0);
}

}  // namespace
}  // namespace nidc
