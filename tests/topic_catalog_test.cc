#include "nidc/synth/topic_catalog.h"

#include <map>

#include <gtest/gtest.h>

namespace nidc {
namespace {

// The exact Table 5 document counts the catalog must reproduce.
const std::map<TopicId, size_t> kTable5Counts = {
    {20001, 1034}, {20002, 923}, {20004, 19},  {20005, 38},  {20011, 18},
    {20012, 150},  {20013, 530}, {20014, 2},   {20015, 1439}, {20017, 17},
    {20018, 99},   {20019, 110}, {20020, 32},  {20021, 53},  {20022, 30},
    {20023, 125},  {20026, 70},  {20030, 2},   {20031, 36},  {20032, 126},
    {20033, 83},   {20036, 5},   {20039, 119}, {20040, 6},   {20041, 26},
    {20042, 29},   {20043, 15},  {20044, 277}, {20046, 5},   {20047, 93},
    {20048, 125},  {20062, 2},   {20063, 16},  {20064, 11},  {20065, 60},
    {20070, 415},  {20071, 201}, {20074, 50},  {20075, 7},   {20076, 225},
    {20077, 117},  {20078, 15},  {20079, 8},   {20082, 4},   {20083, 17},
    {20085, 128},  {20086, 138}, {20087, 79},  {20088, 5},   {20096, 64},
    {20097, 2},    {20098, 9},   {20099, 8},   {20100, 8},
};

TEST(PaperWindowsTest, SixWindowsSpanning178Days) {
  auto windows = PaperWindows();
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_DOUBLE_EQ(windows.front().begin, 0.0);
  EXPECT_DOUBLE_EQ(windows.back().end, 178.0);
  EXPECT_EQ(windows[0].label, "Jan4-Feb2");
  EXPECT_EQ(windows[5].label, "Jun3-Jun30");
  EXPECT_DOUBLE_EQ(windows[5].LengthDays(), 28.0);
}

TEST(NamedTopicsTest, ExactlyTheTable5Topics) {
  auto topics = NamedTdt2Topics();
  EXPECT_EQ(topics.size(), kTable5Counts.size());
  for (const TopicSpec& t : topics) {
    auto it = kTable5Counts.find(t.id);
    ASSERT_NE(it, kTable5Counts.end()) << t.id;
    EXPECT_EQ(t.TotalDocs(), it->second) << t.name;
  }
}

TEST(NamedTopicsTest, NamesMatchPaper) {
  auto topics = NamedTdt2Topics();
  auto find = [&](TopicId id) -> const TopicSpec& {
    for (const auto& t : topics) {
      if (t.id == id) return t;
    }
    ADD_FAILURE() << "missing topic " << id;
    static TopicSpec dummy;
    return dummy;
  };
  EXPECT_EQ(find(20001).name, "Asian Economic Crisis");
  EXPECT_EQ(find(20074).name, "Nigerian Protest Violence");
  EXPECT_EQ(find(20077).name, "Unabomber");
  EXPECT_EQ(find(20078).name, "Denmark Strike");
  EXPECT_EQ(find(20086).name, "GM Strike");
}

TEST(NamedTopicsTest, ValidatesCleanly) {
  EXPECT_TRUE(ValidateTopics(NamedTdt2Topics()).ok());
}

TEST(NamedTopicsTest, NarrativeTopicShapes) {
  auto topics = NamedTdt2Topics();
  const Tdt2Targets targets = PaperTargets();
  (void)targets;
  for (const auto& t : topics) {
    if (t.id == 20074) {
      // Nigerian protests: present in windows 4 and 6 (the paper's §6.2.3
      // discussion), with the window-4 burst late and window-6 burst early.
      EXPECT_EQ(t.shape.CountInWindow(3), 20u);
      EXPECT_EQ(t.shape.CountInWindow(5), 20u);
      for (const auto& alloc : t.shape.allocations()) {
        if (alloc.window == 3 && alloc.day_begin >= 0) {
          EXPECT_GE(alloc.day_begin, 105.0);  // late in Apr4-May3
        }
        if (alloc.window == 5 && alloc.day_end >= 0) {
          EXPECT_LE(alloc.day_end, 165.0);  // early in Jun3-Jun30
        }
      }
    }
    if (t.id == 20077) {
      // Unabomber: bulk in the first half of window 1, resurgence of
      // exactly 10 docs in window 4 (paper: "10 documents").
      EXPECT_GE(t.shape.CountInWindow(0), 90u);
      EXPECT_EQ(t.shape.CountInWindow(3), 10u);
    }
    if (t.id == 20078) {
      // Denmark strike: only windows 4 and 5.
      EXPECT_EQ(t.shape.CountInWindow(3) + t.shape.CountInWindow(4),
                t.TotalDocs());
    }
  }
}

TEST(FillerTopicsTest, AbsorbExactResiduals) {
  auto named = NamedTdt2Topics();
  auto fillers = BuildFillerTopics(named, PaperTargets());
  ASSERT_TRUE(fillers.ok()) << fillers.status().ToString();
  const Tdt2Targets targets = PaperTargets();
  EXPECT_EQ(fillers->size(), targets.total_topics - named.size());
  for (size_t w = 0; w < 6; ++w) {
    size_t total = 0;
    for (const auto& t : named) total += t.shape.CountInWindow(static_cast<int>(w));
    for (const auto& t : *fillers) total += t.shape.CountInWindow(static_cast<int>(w));
    EXPECT_EQ(total, targets.window_docs[w]) << "window " << w;
  }
}

TEST(FillerTopicsTest, EveryFillerNonEmptySingleWindow) {
  auto fillers = BuildFillerTopics(NamedTdt2Topics(), PaperTargets());
  ASSERT_TRUE(fillers.ok());
  for (const auto& t : *fillers) {
    EXPECT_GE(t.TotalDocs(), 1u);
    EXPECT_EQ(t.shape.allocations().size(), 1u);
    EXPECT_GE(t.id, 30001);
  }
}

TEST(FillerTopicsTest, RejectsOverAllocatedNamedTopics) {
  auto named = NamedTdt2Topics();
  // Blow window 1 past its target.
  TopicSpec huge;
  huge.id = 29999;
  huge.name = "Too Big";
  huge.shape = ActivityShape::FromWindowCounts({5000});
  named.push_back(huge);
  EXPECT_FALSE(BuildFillerTopics(named, PaperTargets()).ok());
}

TEST(FullCatalogTest, MatchesTable2Exactly) {
  auto catalog = FullTdt2Catalog();
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  const Tdt2Targets targets = PaperTargets();
  EXPECT_EQ(catalog->size(), targets.total_topics);  // 96 topics
  size_t total = 0;
  for (const auto& t : *catalog) total += t.TotalDocs();
  EXPECT_EQ(total, targets.total_docs);  // 7,578 docs
  for (size_t w = 0; w < 6; ++w) {
    size_t docs = 0;
    for (const auto& t : *catalog) {
      docs += t.shape.CountInWindow(static_cast<int>(w));
    }
    EXPECT_EQ(docs, targets.window_docs[w]) << "window " << w;
  }
}

TEST(FullCatalogTest, WindowTopicCountsApproachPaper) {
  auto catalog = FullTdt2Catalog();
  ASSERT_TRUE(catalog.ok());
  const Tdt2Targets targets = PaperTargets();
  for (size_t w = 0; w < 6; ++w) {
    size_t topics = 0;
    for (const auto& t : *catalog) {
      if (t.shape.CountInWindow(static_cast<int>(w)) > 0) ++topics;
    }
    // Within 40% of the paper's per-window topic count (the totals are
    // matched exactly; topic spread is approximate by design).
    EXPECT_GE(topics, targets.window_topics[w] * 6 / 10) << w;
    EXPECT_LE(topics, targets.window_topics[w] * 14 / 10) << w;
  }
}

TEST(ValidateTopicsTest, CatchesDefects) {
  TopicSpec a;
  a.id = 1;
  a.name = "ok";
  a.shape = ActivityShape::FromWindowCounts({1});
  TopicSpec dup = a;
  EXPECT_FALSE(ValidateTopics({a, dup}).ok());
  TopicSpec unnamed = a;
  unnamed.id = 2;
  unnamed.name = "";
  EXPECT_FALSE(ValidateTopics({a, unnamed}).ok());
  TopicSpec empty = a;
  empty.id = 3;
  empty.shape = ActivityShape();
  EXPECT_FALSE(ValidateTopics({a, empty}).ok());
  TopicSpec negative = a;
  negative.id = -5;
  EXPECT_FALSE(ValidateTopics({negative}).ok());
  EXPECT_TRUE(ValidateTopics({a}).ok());
}

}  // namespace
}  // namespace nidc
