#include "nidc/util/env.h"

#include <string>

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/nidc_env_test_" + name;
}

TEST(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = TestPath("roundtrip");
  auto file = env->NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
  EXPECT_TRUE(env->RemoveFile(path).ok());
}

TEST(EnvTest, ReadMissingFileIsIOError) {
  auto contents = Env::Default()->ReadFileToString(TestPath("missing"));
  EXPECT_FALSE(contents.ok());
}

TEST(EnvTest, AppendModeKeepsExistingContent) {
  Env* env = Env::Default();
  const std::string path = TestPath("append");
  {
    auto file = env->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("first").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("|second").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "first|second");
  env->RemoveFile(path);
}

TEST(EnvTest, RenameReplacesTarget) {
  Env* env = Env::Default();
  const std::string from = TestPath("rename_from");
  const std::string to = TestPath("rename_to");
  ASSERT_TRUE(AtomicWriteFile(env, from, "new").ok());
  ASSERT_TRUE(AtomicWriteFile(env, to, "old").ok());
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  EXPECT_FALSE(env->FileExists(from));
  auto contents = env->ReadFileToString(to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new");
  env->RemoveFile(to);
}

TEST(EnvTest, CreateDirIsIdempotentAndListable) {
  Env* env = Env::Default();
  const std::string dir = TestPath("dir");
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/b", "2").ok());
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/a", "1").ok());
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  env->RemoveFile(dir + "/a");
  env->RemoveFile(dir + "/b");
}

TEST(EnvTest, AtomicWriteFileReplacesWholeFileAndCleansTemp) {
  Env* env = Env::Default();
  const std::string path = TestPath("atomic");
  ASSERT_TRUE(AtomicWriteFile(env, path, "version 1").ok());
  ASSERT_TRUE(AtomicWriteFile(env, path, "version 2 is longer").ok());
  auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "version 2 is longer");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  env->RemoveFile(path);
}

TEST(EnvTest, DirName) {
  EXPECT_EQ(DirName("/a/b/c"), "/a/b");
  EXPECT_EQ(DirName("a/b"), "a");
  EXPECT_EQ(DirName("plain"), ".");
}

}  // namespace
}  // namespace nidc
