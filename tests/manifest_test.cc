#include "nidc/store/manifest.h"

#include <string>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(ManifestTest, FileNamesAreZeroPaddedAndParseable) {
  EXPECT_EQ(SnapshotFileName(1), "snapshot-000001");
  EXPECT_EQ(SnapshotFileName(1234567), "snapshot-1234567");
  EXPECT_EQ(WalFileName(42), "wal-000042");
  uint64_t generation = 0;
  EXPECT_TRUE(ParseSnapshotFileName("snapshot-000031", &generation));
  EXPECT_EQ(generation, 31u);
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-", &generation));
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-12.tmp", &generation));
  EXPECT_FALSE(ParseSnapshotFileName("wal-000031", &generation));
  EXPECT_FALSE(ParseSnapshotFileName("MANIFEST", &generation));
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  Manifest manifest;
  manifest.generation = 17;
  manifest.snapshot_file = "snapshot-000017";
  manifest.wal_file = "wal-000017";
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->generation, 17u);
  EXPECT_EQ(parsed->snapshot_file, "snapshot-000017");
  EXPECT_EQ(parsed->wal_file, "wal-000017");
}

TEST(ManifestTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseManifest("").ok());
  EXPECT_FALSE(ParseManifest("nidc-manifest v2\n").ok());
  EXPECT_FALSE(ParseManifest("nidc-manifest v1\ngeneration x\n").ok());
  EXPECT_FALSE(ParseManifest("nidc-manifest v1\ngeneration 3\n").ok());
}

TEST(ManifestTest, WriteReadRoundTripAndScan) {
  Env* env = Env::Default();
  const std::string dir = testing::TempDir() + "/nidc_manifest_test";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  Manifest manifest;
  manifest.generation = 3;
  manifest.snapshot_file = SnapshotFileName(3);
  manifest.wal_file = WalFileName(3);
  ASSERT_TRUE(WriteManifest(env, dir, manifest).ok());
  auto read = ReadManifest(env, dir);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->generation, 3u);

  ASSERT_TRUE(AtomicWriteFile(env, dir + "/" + SnapshotFileName(1), "a").ok());
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/" + SnapshotFileName(3), "b").ok());
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/" + SnapshotFileName(2), "c").ok());
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/not-a-snapshot", "d").ok());
  auto generations = ListSnapshotGenerations(env, dir);
  ASSERT_TRUE(generations.ok());
  EXPECT_EQ(*generations, (std::vector<uint64_t>{3, 2, 1}));

  for (const std::string& name :
       {std::string("MANIFEST"), SnapshotFileName(1), SnapshotFileName(2),
        SnapshotFileName(3), std::string("not-a-snapshot")}) {
    env->RemoveFile(dir + "/" + name);
  }
}

}  // namespace
}  // namespace nidc
