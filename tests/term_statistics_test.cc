#include "nidc/forgetting/term_statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nidc {
namespace {

Document MakeDoc(DocId id, std::vector<SparseVector::Entry> entries) {
  Document doc;
  doc.id = id;
  doc.terms = SparseVector::FromEntries(std::move(entries));
  return doc;
}

TEST(TermStatisticsTest, SingleDocumentContribution) {
  TermStatistics stats;
  // f = {t0: 2, t1: 1}, len = 3, weight 1 → S_0 = 2/3, S_1 = 1/3.
  stats.AddDocument(MakeDoc(0, {{0, 2.0}, {1, 1.0}}), 1.0);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.SumWeightedFreq(1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.SumWeightedFreq(99), 0.0);
}

TEST(TermStatisticsTest, WeightScalesContribution) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}}), 0.5);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 0.5, 1e-12);
}

TEST(TermStatisticsTest, ContributionsAccumulate) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}, {1, 1.0}}), 1.0);  // 0.5 each
  stats.AddDocument(MakeDoc(1, {{0, 3.0}}), 1.0);            // 1.0 to t0
  EXPECT_NEAR(stats.SumWeightedFreq(0), 1.5, 1e-12);
  EXPECT_NEAR(stats.SumWeightedFreq(1), 0.5, 1e-12);
}

TEST(TermStatisticsTest, RemoveUndoesAdd) {
  TermStatistics stats;
  const Document a = MakeDoc(0, {{0, 2.0}, {1, 1.0}});
  const Document b = MakeDoc(1, {{1, 4.0}, {2, 4.0}});
  stats.AddDocument(a, 1.0);
  stats.AddDocument(b, 0.7);
  stats.RemoveDocument(b, 0.7);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.SumWeightedFreq(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.SumWeightedFreq(2), 0.0, 1e-12);
}

TEST(TermStatisticsTest, DecayScalesAllTerms) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}, {1, 3.0}}), 1.0);
  const double s0 = stats.SumWeightedFreq(0);
  const double s1 = stats.SumWeightedFreq(1);
  stats.Decay(0.8);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 0.8 * s0, 1e-12);
  EXPECT_NEAR(stats.SumWeightedFreq(1), 0.8 * s1, 1e-12);
}

TEST(TermStatisticsTest, AddAfterDecayIsUnscaled) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}}), 1.0);
  stats.Decay(0.5);
  stats.AddDocument(MakeDoc(1, {{0, 1.0}}), 1.0);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 1.5, 1e-12);
}

TEST(TermStatisticsTest, RemoveAfterDecayUsesCurrentWeight) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}}), 1.0);
  stats.Decay(0.5);
  // The document's current weight decayed to 0.5 too.
  stats.RemoveDocument(MakeDoc(0, {{0, 1.0}}), 0.5);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 0.0, 1e-12);
}

TEST(TermStatisticsTest, ManyDecaysTriggerRenormalization) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}}), 1.0);
  // 0.5^500 ≈ 3e-151 crosses the renormalization threshold.
  double expected = 1.0;
  for (int i = 0; i < 500; ++i) {
    stats.Decay(0.5);
    expected *= 0.5;
  }
  // The stored value survives (possibly as a subnormal-free rescaled pair).
  const double got = stats.SumWeightedFreq(0);
  if (expected > 0.0) {
    EXPECT_NEAR(got / expected, 1.0, 1e-9);
  }
  // And adding new mass afterwards still works at full precision.
  stats.AddDocument(MakeDoc(1, {{0, 1.0}}), 1.0);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 1.0 + expected, 1e-9);
}

TEST(TermStatisticsTest, PrTermDividesByTdw) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}, {1, 1.0}}), 1.0);
  EXPECT_NEAR(stats.PrTerm(0, 2.0), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(stats.PrTerm(0, 0.0), 0.0);
}

TEST(TermStatisticsTest, PrTermsSumToOne) {
  // Σ_k Pr(t_k) = Σ_k Σ_i Pr(t_k|d_i) Pr(d_i) = Σ_i Pr(d_i) = 1.
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 2.0}, {1, 3.0}}), 1.0);
  stats.AddDocument(MakeDoc(1, {{1, 1.0}, {2, 1.0}}), 0.6);
  const double tdw = 1.6;
  double total = 0.0;
  for (TermId t = 0; t < 3; ++t) total += stats.PrTerm(t, tdw);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TermStatisticsTest, EmptyDocumentIgnored) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {}), 1.0);
  EXPECT_EQ(stats.num_terms(), 0u);
}

TEST(TermStatisticsTest, ClearDropsState) {
  TermStatistics stats;
  stats.AddDocument(MakeDoc(0, {{0, 1.0}}), 1.0);
  stats.Decay(0.5);
  stats.Clear();
  EXPECT_EQ(stats.num_terms(), 0u);
  stats.AddDocument(MakeDoc(1, {{0, 1.0}}), 1.0);
  EXPECT_NEAR(stats.SumWeightedFreq(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace nidc
