#include "nidc/core/cluster_set.h"

#include <memory>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class ClusterSetTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection", 0.0);
    corpus_.AddText("iraq sanctions embargo", 0.0);
    corpus_.AddText("olympics skating medal", 0.0);
    corpus_.AddText("olympics hockey nagano", 0.0);
    ForgettingParams p;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AddDocuments({0, 1, 2, 3});
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST_F(ClusterSetTest, StartsEmpty) {
  ClusterSet set(3);
  EXPECT_EQ(set.num_clusters(), 3u);
  EXPECT_EQ(set.TotalAssigned(), 0u);
  EXPECT_EQ(set.ClusterOf(0), kUnassigned);
  EXPECT_DOUBLE_EQ(set.G(), 0.0);
}

TEST_F(ClusterSetTest, AssignMovesDocument) {
  ClusterSet set(2);
  set.Assign(0, 0, *ctx_);
  EXPECT_EQ(set.ClusterOf(0), 0);
  EXPECT_EQ(set.cluster(0).size(), 1u);
  set.Assign(0, 1, *ctx_);
  EXPECT_EQ(set.ClusterOf(0), 1);
  EXPECT_EQ(set.cluster(0).size(), 0u);
  EXPECT_EQ(set.cluster(1).size(), 1u);
  EXPECT_EQ(set.TotalAssigned(), 1u);
}

TEST_F(ClusterSetTest, AssignToSameClusterIsNoop) {
  ClusterSet set(2);
  set.Assign(0, 0, *ctx_);
  set.Assign(0, 0, *ctx_);
  EXPECT_EQ(set.cluster(0).size(), 1u);
}

TEST_F(ClusterSetTest, UnassignDetaches) {
  ClusterSet set(2);
  set.Assign(0, 0, *ctx_);
  set.Assign(0, kUnassigned, *ctx_);
  EXPECT_EQ(set.ClusterOf(0), kUnassigned);
  EXPECT_EQ(set.TotalAssigned(), 0u);
  EXPECT_TRUE(set.cluster(0).empty());
}

TEST_F(ClusterSetTest, GSumsSizeWeightedAvgSim) {
  ClusterSet set(2);
  set.Assign(0, 0, *ctx_);
  set.Assign(1, 0, *ctx_);
  set.Assign(2, 1, *ctx_);
  set.Assign(3, 1, *ctx_);
  const double expected = 2.0 * ctx_->Sim(0, 1) + 2.0 * ctx_->Sim(2, 3);
  EXPECT_NEAR(set.G(), expected, 1e-12);
}

TEST_F(ClusterSetTest, RefreshAllPreservesG) {
  ClusterSet set(2);
  set.Assign(0, 0, *ctx_);
  set.Assign(1, 0, *ctx_);
  set.Assign(2, 1, *ctx_);
  const double g = set.G();
  set.RefreshAll(*ctx_);
  EXPECT_NEAR(set.G(), g, 1e-12);
}

}  // namespace
}  // namespace nidc
