#include "nidc/eval/topic_tracking.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class TopicTrackingTest : public testing::Test {
 protected:
  void SetUp() override {
    // Window 0: topic 1 (3 docs), topic 2 (2 docs).
    // Window 1: topic 2 (2 docs), topic 3 (1 doc).
    for (int i = 0; i < 3; ++i) window0_.push_back(corpus_.AddText("a", 0.0, 1));
    for (int i = 0; i < 2; ++i) window0_.push_back(corpus_.AddText("b", 0.0, 2));
    for (int i = 0; i < 2; ++i) window1_.push_back(corpus_.AddText("b", 10.0, 2));
    window1_.push_back(corpus_.AddText("c", 10.0, 3));
  }

  MarkedCluster Mark(TopicId topic, size_t a, size_t b, size_t c,
                     double recall) {
    MarkedCluster mc;
    mc.topic = topic;
    mc.cluster_size = a + b;
    mc.table = {a, b, c, 0};
    mc.precision = mc.table.Precision();
    mc.recall = recall;
    return mc;
  }

  Corpus corpus_;
  std::vector<DocId> window0_;
  std::vector<DocId> window1_;
};

TEST_F(TopicTrackingTest, PresenceCountsPerWindow) {
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, {{}, {}});
  ASSERT_EQ(tracks.size(), 3u);
  EXPECT_EQ(tracks[1].presence, (std::vector<size_t>{3, 0}));
  EXPECT_EQ(tracks[2].presence, (std::vector<size_t>{2, 2}));
  EXPECT_EQ(tracks[3].presence, (std::vector<size_t>{0, 1}));
}

TEST_F(TopicTrackingTest, DetectionFlagsFollowMarkings) {
  std::vector<std::vector<MarkedCluster>> markings = {
      {Mark(1, 3, 0, 0, 1.0)},           // window 0: topic 1 detected
      {Mark(2, 2, 0, 0, 1.0)},           // window 1: topic 2 detected
  };
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, markings);
  EXPECT_EQ(tracks[1].detected, (std::vector<bool>{true, false}));
  EXPECT_EQ(tracks[2].detected, (std::vector<bool>{false, true}));
  EXPECT_EQ(tracks[3].detected, (std::vector<bool>{false, false}));
}

TEST_F(TopicTrackingTest, BestRecallAcrossSplitClusters) {
  // The same topic marked on two clusters: best recall wins.
  std::vector<std::vector<MarkedCluster>> markings = {
      {Mark(1, 1, 0, 2, 1.0 / 3.0), Mark(1, 2, 0, 1, 2.0 / 3.0)},
      {},
  };
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, markings);
  EXPECT_NEAR(tracks[1].best_recall[0], 2.0 / 3.0, 1e-12);
}

TEST_F(TopicTrackingTest, MissedAndDetectedWindows) {
  std::vector<std::vector<MarkedCluster>> markings = {
      {Mark(2, 2, 0, 0, 1.0)},
      {},
  };
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, markings);
  // Topic 2: present in both windows, detected only in window 0.
  EXPECT_EQ(tracks[2].DetectedWindows(), (std::vector<size_t>{0}));
  EXPECT_EQ(tracks[2].MissedWindows(), (std::vector<size_t>{1}));
  // min_presence filter: topic 3 missed only where it actually appears.
  EXPECT_EQ(tracks[3].MissedWindows(1), (std::vector<size_t>{1}));
  EXPECT_TRUE(tracks[3].MissedWindows(2).empty());
}

TEST_F(TopicTrackingTest, UnmarkedClustersIgnored) {
  MarkedCluster unmarked;
  unmarked.cluster_size = 4;
  auto tracks = TrackTopics(corpus_, {window0_, window1_},
                            {{unmarked}, {}});
  EXPECT_FALSE(tracks[1].detected[0]);
}

TEST_F(TopicTrackingTest, RenderShowsLifelines) {
  std::vector<std::vector<MarkedCluster>> markings = {
      {Mark(1, 3, 0, 0, 1.0)},
      {Mark(2, 2, 0, 0, 0.5)},
  };
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, markings);
  const std::string out = RenderTopicTracks(tracks, {"w1", "w2"});
  EXPECT_NE(out.find("3*(R1.00)"), std::string::npos);  // topic 1, window 0
  EXPECT_NE(out.find("2*(R0.50)"), std::string::npos);  // topic 2, window 1
  EXPECT_NE(out.find("w1"), std::string::npos);
}

TEST_F(TopicTrackingTest, RenderFiltersByTotalPresence) {
  auto tracks = TrackTopics(corpus_, {window0_, window1_}, {{}, {}});
  const std::string all = RenderTopicTracks(tracks, {"w1", "w2"}, 1);
  const std::string big = RenderTopicTracks(tracks, {"w1", "w2"}, 4);
  // Topic 3 (1 doc) and topic 1 (3 docs) drop out at threshold 4.
  EXPECT_GT(all.size(), big.size());
  EXPECT_EQ(big.find("\n3 "), std::string::npos);
}

}  // namespace
}  // namespace nidc
