#include "nidc/util/table_printer.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter t({"A", "B"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| A | B |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TablePrinterTest, PadsColumnsToWidestCell) {
  TablePrinter t({"name", "v"});
  t.AddRow({"x", "1234567"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name | v       |"), std::string::npos);
  EXPECT_NE(out.find("| x    | 1234567 |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  // The missing cells render as empty strings without crashing.
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, ExtraCellsAreTruncatedToHeaderWidth) {
  TablePrinter t({"a"});
  t.AddRow({"1", "overflow"});
  const std::string out = t.ToString();
  EXPECT_EQ(out.find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, RuleLinesMatchWidth) {
  TablePrinter t({"col"});
  t.AddRow({"value"});
  const std::string out = t.ToString();
  // Every line has equal length (+1 for '\n').
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace nidc
