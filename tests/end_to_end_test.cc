// Integration: generator → forgetting model → extended K-means → evaluation,
// at reduced scale, exercising the full Experiment-2 pipeline of the paper.

#include <gtest/gtest.h>

#include "nidc/core/incremental_clusterer.h"
#include "nidc/corpus/stream.h"
#include "nidc/eval/f1_measures.h"
#include "nidc/synth/tdt2_like_generator.h"

namespace nidc {
namespace {

class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.scale = 0.15;  // ~1,100 docs: fast but structured
    opts.seed = 20260708;
    generator_ = new Tdt2LikeGenerator(opts);
    auto corpus = generator_->Generate();
    ASSERT_TRUE(corpus.ok());
    corpus_ = corpus.value().release();
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete generator_;
  }

  // Clusters one window non-incrementally with the given half life span,
  // then evaluates against ground truth — the §6.2.2 procedure.
  GlobalF1 RunWindow(size_t window_index, double beta,
                     size_t* outliers = nullptr) {
    const TimeWindow window = PaperWindows()[window_index];
    const std::vector<DocId> docs =
        corpus_->DocsInRange(window.begin, window.end);
    EXPECT_GT(docs.size(), 50u);

    ForgettingParams params;
    params.half_life_days = beta;
    params.life_span_days = 30.0;  // the paper's choice: no expiry in-window
    ExtendedKMeansOptions kmeans;
    kmeans.k = 24;
    kmeans.seed = 7;
    BatchClusterer clusterer(corpus_, params, kmeans);
    auto result = clusterer.Run(docs, window.end);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (outliers != nullptr) {
      *outliers = result->clustering.outliers.size();
    }

    auto marked =
        MarkClusters(*corpus_, result->clustering.clusters, docs, {});
    return ComputeGlobalF1(marked);
  }

  static Tdt2LikeGenerator* generator_;
  static Corpus* corpus_;
};

Tdt2LikeGenerator* EndToEndTest::generator_ = nullptr;
Corpus* EndToEndTest::corpus_ = nullptr;

TEST_F(EndToEndTest, Window1ProducesMeaningfulClusters) {
  GlobalF1 f1 = RunWindow(0, 30.0);
  // The paper's β=30 numbers sit around micro 0.5-0.6; we only require
  // clearly-better-than-noise structure at reduced scale.
  EXPECT_GT(f1.num_marked, 3u);
  EXPECT_GT(f1.micro_f1, 0.25);
  EXPECT_GT(f1.macro_f1, 0.25);
}

TEST_F(EndToEndTest, ShortHalfLifeForgetsMoreAndF1StaysComparable) {
  // Table 4's headline — β=30 beats β=7 on F1 — only stabilizes at full
  // corpus scale (asserted by bench_table4_f1, 6/6 windows). At this
  // reduced scale we assert the *mechanism*: β=7 forgets far more of the
  // window (outliers), while both settings stay in the same F1 regime.
  size_t outliers_short = 0;
  size_t outliers_long = 0;
  const GlobalF1 short_beta = RunWindow(0, 7.0, &outliers_short);
  const GlobalF1 long_beta = RunWindow(0, 30.0, &outliers_long);
  EXPECT_GT(outliers_short, outliers_long);
  EXPECT_NEAR(long_beta.micro_f1, short_beta.micro_f1, 0.30);
  EXPECT_GT(long_beta.micro_precision, 0.8);  // marked clusters stay pure
}

TEST_F(EndToEndTest, IncrementalPipelineOverWindows) {
  // Stream windows 4 and 5 through the incremental clusterer with a
  // 30-day life span; window-4 docs age out during window 5's batches.
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 30.0;
  IncrementalOptions opts;
  opts.kmeans.k = 12;
  opts.kmeans.seed = 3;
  IncrementalClusterer ic(corpus_, params, opts);

  auto windows = PaperWindows();
  size_t steps = 0;
  for (size_t w = 3; w <= 4; ++w) {
    DocumentStream stream(corpus_, windows[w].begin, windows[w].end, 10.0);
    while (auto batch = stream.Next()) {
      auto result = ic.Step(batch->docs, batch->end);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ++steps;
      EXPECT_GT(result->num_active, 0u);
    }
  }
  EXPECT_EQ(steps, 6u);
  // After consuming window 5, some window-4 docs must have expired.
  EXPECT_LT(ic.model().num_active(),
            corpus_->DocsInRange(windows[3].begin, windows[4].end).size());
}

TEST_F(EndToEndTest, HotTopicVisibilityUnderShortHalfLife) {
  // §6.2.3-style check at reduced scale: cluster window 4 with β=7; the
  // late-window Nigerian-protest burst (topic 20074) should be at least as
  // recoverable as under β=30. We assert the weaker, robust property: the
  // topic's documents survive to clustering and the short half life gives
  // recent docs more total probability mass.
  const TimeWindow w4 = PaperWindows()[3];
  const std::vector<DocId> docs = corpus_->DocsInRange(w4.begin, w4.end);

  for (double beta : {7.0, 30.0}) {
    ForgettingParams params;
    params.half_life_days = beta;
    params.life_span_days = 30.0;
    ForgettingModel model(corpus_, params);
    model.RebuildFromScratch(docs, w4.end);
    // Probability mass of the last 10 days vs the first 10 days.
    double recent = 0.0;
    double old = 0.0;
    for (DocId id : docs) {
      const DayTime t = corpus_->doc(id).time;
      if (t >= w4.end - 10.0) recent += model.PrDoc(id);
      if (t < w4.begin + 10.0) old += model.PrDoc(id);
    }
    if (beta == 7.0) {
      EXPECT_GT(recent, old * 1.5);  // strong recency bias
    }
  }
}

}  // namespace
}  // namespace nidc
