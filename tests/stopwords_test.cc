#include "nidc/text/stopwords.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(StopwordsTest, DefaultContainsCoreFunctionWords) {
  StopwordSet s = StopwordSet::Default();
  for (const char* w : {"the", "and", "of", "is", "was", "with", "their"}) {
    EXPECT_TRUE(s.Contains(w)) << w;
  }
}

TEST(StopwordsTest, DefaultExcludesContentWords) {
  StopwordSet s = StopwordSet::Default();
  for (const char* w : {"president", "nuclear", "strike", "olympics"}) {
    EXPECT_FALSE(s.Contains(w)) << w;
  }
}

TEST(StopwordsTest, DefaultSizeIsSubstantial) {
  EXPECT_GT(StopwordSet::Default().size(), 250u);
}

TEST(StopwordsTest, EmptyContainsNothing) {
  StopwordSet s = StopwordSet::Empty();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains("the"));
}

TEST(StopwordsTest, FromWordsLowerCases) {
  StopwordSet s = StopwordSet::FromWords({"Foo", "BAR"});
  EXPECT_TRUE(s.Contains("foo"));
  EXPECT_TRUE(s.Contains("bar"));
  EXPECT_FALSE(s.Contains("Foo"));  // membership is on normalized form
  EXPECT_EQ(s.size(), 2u);
}

TEST(StopwordsTest, CaseSensitiveMembershipAfterNormalization) {
  StopwordSet s = StopwordSet::Default();
  // The set stores lower-case; callers tokenize to lower-case first.
  EXPECT_FALSE(s.Contains("The"));
  EXPECT_TRUE(s.Contains("the"));
}

}  // namespace
}  // namespace nidc
