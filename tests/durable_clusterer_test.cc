#include "nidc/store/durable_clusterer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/state_io.h"
#include "nidc/obs/metrics.h"
#include "nidc/store/torture.h"
#include "nidc/util/fault_env.h"

namespace nidc {
namespace {

std::string FreshDir(const std::string& name) {
  Env* env = Env::Default();
  const std::string dir = testing::TempDir() + "/nidc_durable_test_" + name;
  env->CreateDir(dir);
  if (auto names = env->ListDir(dir); names.ok()) {
    for (const std::string& entry : *names) {
      env->RemoveFile(dir + "/" + entry);
    }
  }
  return dir;
}

std::string Fingerprint(const IncrementalClusterer& clusterer) {
  return SerializeState(CaptureState(clusterer));
}

class DurableClustererTest : public ::testing::Test {
 protected:
  DurableClustererTest() {
    TortureOptions shape;
    shape.num_steps = 24;
    stream_ = BuildTortureStream(shape);
    params_ = shape.params;
    incremental_.kmeans.k = 4;
  }

  DurableOptions Options(const std::string& dir,
                         uint64_t checkpoint_every = 5) const {
    DurableOptions durable;
    durable.dir = dir;
    durable.checkpoint_every = checkpoint_every;
    return durable;
  }

  // Runs steps [from, to) on `durable`, tolerating empty-window
  // FailedPrecondition like the streaming loop does.
  void Feed(DurableClusterer* durable, size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      Result<StepResult> result =
          durable->Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
            << result.status().ToString();
      }
    }
  }

  // The uninterrupted-run fingerprint after all batches.
  std::string ReferenceFingerprint() {
    IncrementalClusterer reference(stream_.corpus.get(), params_,
                                   incremental_);
    for (size_t i = 0; i < stream_.batches.size(); ++i) {
      auto result = reference.Step(stream_.batches[i], stream_.taus[i]);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    return Fingerprint(reference);
  }

  TortureStream stream_;
  ForgettingParams params_;
  IncrementalOptions incremental_;
};

TEST_F(DurableClustererTest, OpenRejectsBadOptions) {
  EXPECT_FALSE(DurableClusterer::Open(stream_.corpus.get(), params_,
                                      incremental_, DurableOptions{})
                   .ok());
  DurableOptions no_keep = Options(FreshDir("bad_options"));
  no_keep.keep_generations = 0;
  EXPECT_FALSE(DurableClusterer::Open(stream_.corpus.get(), params_,
                                      incremental_, no_keep)
                   .ok());
}

TEST_F(DurableClustererTest, FreshOpenStartsEmptyAndRotates) {
  const std::string dir = FreshDir("fresh");
  auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, Options(dir));
  ASSERT_TRUE(durable.ok());
  EXPECT_FALSE((*durable)->recovery().resumed);
  EXPECT_EQ((*durable)->applied_steps(), 0u);
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/MANIFEST"));
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/" + SnapshotFileName(1)));
  ASSERT_TRUE((*durable)->Close().ok());
}

TEST_F(DurableClustererTest, StopAndReopenContinuesBitIdentically) {
  // Property: snapshot at step i + WAL replay of i+1..n reproduces the
  // uninterrupted run's final state bit-for-bit, for every split point.
  // checkpoint_every=5 with 24 steps means most split points land
  // mid-generation, so recovery genuinely replays a WAL tail (the
  // injected kill below stops the destructor from snapshotting).
  const std::string want = ReferenceFingerprint();
  for (size_t split = 0; split <= stream_.batches.size(); split += 3) {
    const std::string dir =
        FreshDir("split_" + std::to_string(split));
    {
      FaultInjectionEnv fault_env(Env::Default());
      DurableOptions options = Options(dir);
      options.env = &fault_env;
      auto first = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, options);
      ASSERT_TRUE(first.ok());
      Feed(first->get(), 0, split);
      // Simulated kill: the destructor's final rotation fails, so
      // whatever the WAL holds since the last periodic checkpoint is the
      // only record of the tail. Under kEveryRecord nothing is lost.
      fault_env.ArmCrashAtOp(1, CrashFlush::kKeepUnsynced);
    }
    auto second = DurableClusterer::Open(stream_.corpus.get(), params_,
                                         incremental_, Options(dir));
    ASSERT_TRUE(second.ok());
    EXPECT_EQ((*second)->applied_steps(), split) << "split " << split;
    if (split > 0) {
      EXPECT_TRUE((*second)->recovery().resumed);
    }
    Feed(second->get(), (*second)->applied_steps(), stream_.batches.size());
    EXPECT_EQ(Fingerprint((*second)->clusterer()), want)
        << "split " << split;
    ASSERT_TRUE((*second)->Close().ok());
  }
}

TEST_F(DurableClustererTest, CorruptWalTailIsQuarantinedNotFatal) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("wal_tail");
  {
    FaultInjectionEnv fault_env(env);
    DurableOptions options = Options(dir, /*checkpoint_every=*/100);
    options.env = &fault_env;
    auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, options);
    ASSERT_TRUE(durable.ok());
    Feed(durable->get(), 0, 7);
    // Simulated kill: no final rotation, so generation 1's WAL holds all
    // 7 records and is the only carrier of the stream's tail.
    fault_env.ArmCrashAtOp(1, CrashFlush::kKeepUnsynced);
  }
  // Flip a byte in the middle of the newest WAL: records before the
  // damage replay, the rest is quarantined.
  const std::string wal_path = dir + "/" + WalFileName(1);
  auto contents = env->ReadFileToString(wal_path);
  ASSERT_TRUE(contents.ok());
  std::string damaged = *contents;
  damaged[damaged.size() * 2 / 3] ^= 0x10;
  ASSERT_TRUE(AtomicWriteFile(env, wal_path, damaged).ok());

  obs::MetricsRegistry metrics;
  DurableOptions options = Options(dir);
  options.metrics = &metrics;
  auto recovered = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->recovery().resumed);
  EXPECT_GT((*recovered)->recovery().replayed_records, 0u);
  EXPECT_LT((*recovered)->recovery().replayed_records, 7u);
  EXPECT_GT((*recovered)->recovery().dropped_wal_bytes, 0u);
  EXPECT_GT(
      metrics.GetCounter("store.recovery.dropped_wal_bytes")->Value(), 0u);
  // Resuming from the surviving prefix still converges on the reference.
  Feed(recovered->get(), (*recovered)->applied_steps(),
       stream_.batches.size());
  EXPECT_EQ(Fingerprint((*recovered)->clusterer()), ReferenceFingerprint());
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(DurableClustererTest, CorruptSnapshotFallsBackToPreviousGeneration) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("snapshot_fallback");
  {
    // keep_generations=3 so the previous generation survives pruning.
    DurableOptions options = Options(dir, /*checkpoint_every=*/5);
    options.keep_generations = 3;
    auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, options);
    ASSERT_TRUE(durable.ok());
    Feed(durable->get(), 0, 12);
    ASSERT_TRUE((*durable)->Close().ok());
  }
  auto generations = ListSnapshotGenerations(env, dir);
  ASSERT_TRUE(generations.ok());
  ASSERT_GE(generations->size(), 2u);
  const uint64_t newest = (*generations)[0];
  // Destroy the newest snapshot (the one the manifest points at).
  ASSERT_TRUE(AtomicWriteFile(env, dir + "/" + SnapshotFileName(newest),
                              "nidc-state v2\ngarbage")
                  .ok());

  auto recovered = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, Options(dir));
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->recovery().resumed);
  EXPECT_GE((*recovered)->recovery().snapshot_fallbacks, 1u);
  EXPECT_LT((*recovered)->recovery().source_generation, newest);
  // The older generation's snapshot+WAL still reconstruct a usable state;
  // finishing the stream matches the reference exactly.
  Feed(recovered->get(), (*recovered)->applied_steps(),
       stream_.batches.size());
  EXPECT_EQ(Fingerprint((*recovered)->clusterer()), ReferenceFingerprint());
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(DurableClustererTest, EveryGenerationPrunedFallsBackToFreshStart) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("all_corrupt");
  {
    auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, Options(dir));
    ASSERT_TRUE(durable.ok());
    Feed(durable->get(), 0, 8);
    ASSERT_TRUE((*durable)->Close().ok());
  }
  auto generations = ListSnapshotGenerations(env, dir);
  ASSERT_TRUE(generations.ok());
  for (uint64_t generation : *generations) {
    ASSERT_TRUE(AtomicWriteFile(env, dir + "/" + SnapshotFileName(generation),
                                "garbage")
                    .ok());
  }
  // Startup must degrade to an empty clusterer, not fail.
  auto recovered = DurableClusterer::Open(stream_.corpus.get(), params_,
                                          incremental_, Options(dir));
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE((*recovered)->recovery().resumed);
  EXPECT_GE((*recovered)->recovery().snapshot_fallbacks, 1u);
  EXPECT_EQ((*recovered)->applied_steps(), 0u);
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(DurableClustererTest, RejectsInvalidStepsWithoutLoggingThem) {
  const std::string dir = FreshDir("validation");
  obs::MetricsRegistry metrics;
  DurableOptions options = Options(dir);
  options.metrics = &metrics;
  auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, options);
  ASSERT_TRUE(durable.ok());
  Feed(durable->get(), 0, 2);
  const uint64_t logged =
      metrics.GetCounter("store.wal_records")->Value();
  // Time travel and unknown ids are rejected before touching the WAL.
  EXPECT_EQ((*durable)->Step({}, stream_.taus[1] - 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*durable)
                ->Step({static_cast<DocId>(stream_.corpus->size())},
                       stream_.taus[2])
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(metrics.GetCounter("store.wal_records")->Value(), logged);
  EXPECT_EQ((*durable)->applied_steps(), 2u);
  ASSERT_TRUE((*durable)->Close().ok());
}

TEST_F(DurableClustererTest, PrunesGenerationsBeyondRetention) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("prune");
  DurableOptions options = Options(dir, /*checkpoint_every=*/2);
  options.keep_generations = 2;
  auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, options);
  ASSERT_TRUE(durable.ok());
  Feed(durable->get(), 0, 12);
  ASSERT_TRUE((*durable)->Close().ok());
  auto generations = ListSnapshotGenerations(env, dir);
  ASSERT_TRUE(generations.ok());
  EXPECT_LE(generations->size(), 2u);
}

TEST_F(DurableClustererTest, ClosedInstanceRefusesSteps) {
  const std::string dir = FreshDir("closed");
  auto durable = DurableClusterer::Open(stream_.corpus.get(), params_,
                                        incremental_, Options(dir));
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Close().ok());
  EXPECT_EQ((*durable)->Step(stream_.batches[0], stream_.taus[0])
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nidc
