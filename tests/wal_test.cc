#include "nidc/store/wal.h"

#include <string>

#include <gtest/gtest.h>

#include "nidc/util/fault_env.h"

namespace nidc {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/nidc_wal_test_" + name;
}

TEST(WalTest, RoundTripsRecords) {
  Env* env = Env::Default();
  const std::string path = TestPath("roundtrip");
  {
    auto writer = WalWriter::Create(env, path, WalSyncMode::kEveryRecord);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRecord("first").ok());
    ASSERT_TRUE((*writer)->AppendRecord("").ok());
    ASSERT_TRUE((*writer)->AppendRecord("third record, longer").ok());
    EXPECT_EQ((*writer)->records_appended(), 3u);
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto read = ReadWal(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  EXPECT_EQ(read->dropped_bytes, 0u);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0], "first");
  EXPECT_EQ(read->records[1], "");
  EXPECT_EQ(read->records[2], "third record, longer");
  env->RemoveFile(path);
}

TEST(WalTest, EmptyWalIsCleanAndHeaderOnly) {
  Env* env = Env::Default();
  const std::string path = TestPath("empty");
  {
    auto writer = WalWriter::Create(env, path, WalSyncMode::kEveryRecord);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto read = ReadWal(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  EXPECT_TRUE(read->records.empty());
  env->RemoveFile(path);
}

TEST(WalTest, TruncatedTailDropsOnlyTheDamage) {
  Env* env = Env::Default();
  const std::string path = TestPath("truncated");
  {
    auto writer = WalWriter::Create(env, path, WalSyncMode::kEveryRecord);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRecord("intact one").ok());
    ASSERT_TRUE((*writer)->AppendRecord("intact two").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto full = env->ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  // Chop 4 bytes off the second record's body.
  const std::string truncated = full->substr(0, full->size() - 4);
  ASSERT_TRUE(AtomicWriteFile(env, path, truncated).ok());

  auto read = ReadWal(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  EXPECT_GT(read->dropped_bytes, 0u);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "intact one");
  env->RemoveFile(path);
}

TEST(WalTest, CorruptedByteFailsChecksumAndStopsThere) {
  Env* env = Env::Default();
  const std::string path = TestPath("corrupt");
  {
    auto writer = WalWriter::Create(env, path, WalSyncMode::kEveryRecord);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRecord("good record").ok());
    ASSERT_TRUE((*writer)->AppendRecord("soon to be flipped").ok());
    ASSERT_TRUE((*writer)->AppendRecord("unreachable after damage").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto full = env->ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string damaged = *full;
  damaged[damaged.size() / 2] ^= 0x40;  // flip a bit mid-file
  ASSERT_TRUE(AtomicWriteFile(env, path, damaged).ok());

  auto read = ReadWal(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "good record");
  env->RemoveFile(path);
}

TEST(WalTest, MissingHeaderQuarantinesEverything) {
  Env* env = Env::Default();
  const std::string path = TestPath("bad_header");
  ASSERT_TRUE(AtomicWriteFile(env, path, "not a wal at all").ok());
  auto read = ReadWal(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->dropped_bytes, 16u);
  env->RemoveFile(path);
}

TEST(WalTest, UnsyncedTailLostOnDropCrashButLogStaysReadable) {
  Env* base = Env::Default();
  const std::string path = TestPath("crash_tail");
  FaultInjectionEnv env(base);
  auto writer = WalWriter::Create(&env, path, WalSyncMode::kEveryRecord);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendRecord("synced record").ok());
  // Crash on the sync of the next record: its bytes never reach storage.
  env.ArmCrashAtOp(2, CrashFlush::kDropUnsynced);
  EXPECT_FALSE((*writer)->AppendRecord("lost record").ok());

  auto read = ReadWal(base, path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "synced record");
  base->RemoveFile(path);
}

TEST(WalTest, TornWriteLeavesDecodablePrefix) {
  Env* base = Env::Default();
  const std::string path = TestPath("torn");
  FaultInjectionEnv env(base);
  auto writer = WalWriter::Create(&env, path, WalSyncMode::kEveryRecord);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendRecord("record before the tear").ok());
  env.ArmCrashAtOp(2, CrashFlush::kTornWrite);
  EXPECT_FALSE((*writer)->AppendRecord("record torn in half").ok());

  auto read = ReadWal(base, path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);  // the torn frame is quarantined
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "record before the tear");
  base->RemoveFile(path);
}

TEST(WalStepRecordTest, EncodeDecodeRoundTripIsExact) {
  WalStepRecord record;
  record.tau = 12.300000000000000710542735760100185871124267578125;
  record.new_docs = {0, 7, 4294967295u};
  auto decoded = DecodeStepRecord(EncodeStepRecord(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tau, record.tau);  // bit-exact via %a hex floats
  EXPECT_EQ(decoded->new_docs, record.new_docs);
}

TEST(WalStepRecordTest, EmptyBatchRoundTrips) {
  WalStepRecord record;
  record.tau = 1.5;
  auto decoded = DecodeStepRecord(EncodeStepRecord(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tau, 1.5);
  EXPECT_TRUE(decoded->new_docs.empty());
}

TEST(WalStepRecordTest, RejectsMalformedPayloads) {
  EXPECT_FALSE(DecodeStepRecord("").ok());
  EXPECT_FALSE(DecodeStepRecord("walk 0x1p+1 0").ok());
  EXPECT_FALSE(DecodeStepRecord("step notanumber 0").ok());
  EXPECT_FALSE(DecodeStepRecord("step 0x1p+1 2 5").ok());      // count lies
  EXPECT_FALSE(DecodeStepRecord("step 0x1p+1 1 hello").ok());  // bad id
  EXPECT_FALSE(
      DecodeStepRecord("step 0x1p+1 1 99999999999999").ok());  // id overflow
}

}  // namespace
}  // namespace nidc
