#include "nidc/text/tokenizer.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(TokenizerTest, LowerCasesAndSplits) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello World"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, SplitsOnPunctuation) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("news,articles;daily!"),
            (std::vector<std::string>{"news", "articles", "daily"}));
}

TEST(TokenizerTest, DropsPureNumbersByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("in 1998 there were 64400 documents"),
            (std::vector<std::string>{"in", "there", "were", "documents"}));
}

TEST(TokenizerTest, KeepsNumbersWhenConfigured) {
  TokenizerOptions opts;
  opts.drop_numbers = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("year 1998"),
            (std::vector<std::string>{"year", "1998"}));
}

TEST(TokenizerTest, DropsSingleLetters) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("a b word x"), (std::vector<std::string>{"word"}));
}

TEST(TokenizerTest, MinLengthConfigurable) {
  TokenizerOptions opts;
  opts.min_length = 1;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("a word"), (std::vector<std::string>{"a", "word"}));
}

TEST(TokenizerTest, StripsPossessive) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Clinton's speech"),
            (std::vector<std::string>{"clinton", "speech"}));
}

TEST(TokenizerTest, KeepsInternalApostrophe) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("O'Brien reported"),
            (std::vector<std::string>{"o'brien", "reported"}));
}

TEST(TokenizerTest, KeepsInternalHyphen) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("e-mail and follow-up"),
            (std::vector<std::string>{"e-mail", "and", "follow-up"}));
}

TEST(TokenizerTest, HyphenAtEdgesStripped) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("-lead trailing- -both-"),
            (std::vector<std::string>{"lead", "trailing", "both"}));
}

TEST(TokenizerTest, HyphenDisabledSplits) {
  TokenizerOptions opts;
  opts.keep_internal_hyphen = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("e-mail"), (std::vector<std::string>{"mail"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("   \t\n  ").empty());
  EXPECT_TRUE(t.Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, MaxLengthFiltersGarbageRuns) {
  TokenizerOptions opts;
  opts.max_length = 10;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize(std::string(50, 'x') + " ok"),
            (std::vector<std::string>{"ok"}));
}

TEST(TokenizerTest, MixedAlnumKept) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("tdt2 corpus"),
            (std::vector<std::string>{"tdt2", "corpus"}));
}

TEST(TokenizerTest, NewswireSentence) {
  Tokenizer t;
  const auto tokens = t.Tokenize(
      "WASHINGTON (AP) -- The President's advisers met on Jan. 21, 1998.");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"washington", "ap", "the", "president",
                                      "advisers", "met", "on", "jan"}));
}

}  // namespace
}  // namespace nidc
