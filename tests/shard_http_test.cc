#include "nidc/shard/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/metrics.h"
#include "nidc/shard/ingest.h"
#include "nidc/shard/service.h"
#include "nidc/shard/tenant.h"

namespace nidc::shard {
namespace {

struct FetchResult {
  bool ok = false;
  int status = 0;
  std::string headers;  // raw header block, for Retry-After assertions
  std::string body;
};

// Minimal blocking HTTP client: one request, Connection: close, reads to
// EOF (mirrors the client in http_server_test.cc, plus header capture).
FetchResult Request(uint16_t port, const std::string& method,
                    const std::string& target, const std::string& body) {
  FetchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  (void)!::write(fd, request.data(), request.size());
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return result;
  result.status = std::atoi(response.c_str() + space + 1);
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.headers = response.substr(0, body_start);
    result.body = response.substr(body_start + 4);
  }
  result.ok = true;
  return result;
}

FetchResult Get(uint16_t port, const std::string& target) {
  return Request(port, "GET", target, "");
}

FetchResult Post(uint16_t port, const std::string& target,
                 const std::string& body = "") {
  return Request(port, "POST", target, body);
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TenantConfig SmallConfig() {
  TenantConfig config;
  config.params.half_life_days = 7.0;
  config.params.life_span_days = 30.0;
  config.k = 3;
  config.step_days = 1.0;
  config.start_time = 0.0;
  config.seed = 42;
  return config;
}

std::vector<RawDocument> MakeFeed(const std::string& salt, int days,
                                  int per_day) {
  std::vector<RawDocument> docs;
  for (int d = 0; d < days; ++d) {
    for (int i = 0; i < per_day; ++i) {
      RawDocument doc;
      doc.time = d + 0.1 + 0.8 * i / per_day;
      doc.topic = i % 3;
      doc.text = salt + "term" + std::to_string(i % 5) + " " + salt +
                 "word" + std::to_string((i + d) % 7) + " shared common " +
                 salt + "tail" + std::to_string(i % 2);
      docs.push_back(std::move(doc));
    }
  }
  auto parsed = ParseIngestJsonl(FormatIngestJsonl(docs));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

std::vector<std::string> WireBatches(const std::vector<RawDocument>& docs,
                                     size_t batch_docs) {
  std::vector<std::string> batches;
  for (size_t off = 0; off < docs.size(); off += batch_docs) {
    const size_t n = std::min(batch_docs, docs.size() - off);
    batches.push_back(FormatIngestJsonl(
        std::vector<RawDocument>(docs.begin() + off,
                                 docs.begin() + off + n)));
  }
  return batches;
}

// The single-stream reference the HTTP path must reproduce bit for bit:
// the same wire batches through a standalone Tenant (the CLI's ingest
// path), no server, no queues, no shard threads.
std::string ReferenceDigest(const std::string& dir,
                            const TenantConfig& config,
                            const std::vector<std::string>& wire_batches,
                            DayTime flush_until) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  TenantRuntime runtime;
  auto tenant = Tenant::Create("reference", dir, config, runtime);
  EXPECT_TRUE(tenant.ok()) << tenant.status().ToString();
  for (const std::string& body : wire_batches) {
    auto docs = ParseIngestJsonl(body);
    EXPECT_TRUE(docs.ok());
    EXPECT_TRUE((*tenant)->Ingest(*docs).ok());
  }
  EXPECT_TRUE((*tenant)->FlushUntil(flush_until).ok());
  return (*tenant)->StateDigest();
}

// One sharded server wired exactly like `nidc_cli serve`: a shared
// registry feeding both the service (shard.*) and the server (serve.*).
class ShardHttpTest : public testing::Test {
 protected:
  ~ShardHttpTest() override { TearDownServer(); }

  std::string Root(const std::string& name) {
    const std::string root =
        testing::TempDir() + "/nidc_shard_http_" + name;
    std::filesystem::remove_all(root);
    return root;
  }

  uint16_t StartServer(const std::string& root, size_t shards,
                       size_t queue_capacity = 64) {
    ShardServiceOptions options;
    options.root = root;
    options.num_shards = shards;
    options.threads_per_shard = 1;
    options.queue_capacity = queue_capacity;
    options.wal_sync = WalSyncMode::kNone;
    options.metrics = &registry_;
    auto service = ShardService::Start(std::move(options));
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
    server_ = std::make_unique<serve::HttpServer>(&registry_);
    RegisterShardHandlers(server_.get(), service_.get(), SmallConfig());
    EXPECT_TRUE(server_->Start(0).ok());
    return server_->port();
  }

  void TearDownServer() {
    if (server_ != nullptr) server_->Stop();
    if (service_ != nullptr) service_->Stop();
    server_.reset();
    service_.reset();
  }

  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardService> service_;
  std::unique_ptr<serve::HttpServer> server_;
};

TEST_F(ShardHttpTest, ServerStateMatchesSingleStreamReference) {
  const std::string root = Root("equiv");
  const auto feed = MakeFeed("equiv", 5, 8);
  const auto batches = WireBatches(feed, 16);
  const DayTime flush_until = 6.0;
  const std::string expected =
      ReferenceDigest(root + "_ref", SmallConfig(), batches, flush_until);

  const uint16_t port = StartServer(root, 2);
  auto created = Post(port, "/tenantz?op=create&tenant=alpha");
  ASSERT_TRUE(created.ok);
  ASSERT_EQ(created.status, 200) << created.body;
  EXPECT_TRUE(Contains(created.body, "\"ok\":true")) << created.body;

  for (const std::string& body : batches) {
    auto accepted = Post(port, "/ingest?tenant=alpha", body);
    ASSERT_TRUE(accepted.ok);
    ASSERT_EQ(accepted.status, 202) << accepted.body;
    EXPECT_TRUE(Contains(accepted.body, "\"tenant\":\"alpha\""));
    EXPECT_TRUE(Contains(accepted.body, "\"accepted\":"));
    EXPECT_TRUE(Contains(accepted.body, "\"queued\":"));
  }
  auto flushed =
      Post(port, "/tenantz?op=flush&tenant=alpha&until=6");
  ASSERT_EQ(flushed.status, 200) << flushed.body;

  auto digest = Get(port, "/digestz?tenant=alpha");
  ASSERT_TRUE(digest.ok);
  ASSERT_EQ(digest.status, 200);
  EXPECT_EQ(digest.body, expected)
      << "HTTP-ingested state diverged from the single-stream reference";

  // The tenant list reflects the ingest.
  auto tenants = Get(port, "/tenantz");
  ASSERT_EQ(tenants.status, 200);
  EXPECT_TRUE(Contains(tenants.body, "\"name\":\"alpha\""));
  EXPECT_TRUE(Contains(
      tenants.body,
      "\"docs_ingested\":" + std::to_string(feed.size())));
}

TEST_F(ShardHttpTest, IngestErrorsMapToHttpStatuses) {
  const uint16_t port = StartServer(Root("errors"), 1);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 200);

  // Missing ?tenant=.
  EXPECT_EQ(Post(port, "/ingest", "{\"time\":1,\"text\":\"x\"}").status,
            400);
  // Unknown tenant.
  auto unknown =
      Post(port, "/ingest?tenant=ghost", "{\"time\":1,\"text\":\"x\"}");
  EXPECT_EQ(unknown.status, 404);
  EXPECT_TRUE(Contains(unknown.body, "error")) << unknown.body;
  // Malformed body: nothing is enqueued, the error names the line.
  auto malformed = Post(port, "/ingest?tenant=alpha",
                        "{\"time\": 1.0, \"text\": \"ok\"}\n{broken\n");
  EXPECT_EQ(malformed.status, 400);
  EXPECT_TRUE(Contains(malformed.body, "line 2")) << malformed.body;
  // Wrong method.
  EXPECT_EQ(Get(port, "/ingest?tenant=alpha").status, 405);
  EXPECT_EQ(Post(port, "/digestz?tenant=alpha").status, 405);

  // The malformed batch never reached the tenant.
  service_->Drain();
  auto tenants = Get(port, "/tenantz");
  EXPECT_TRUE(Contains(tenants.body, "\"docs_ingested\":0"))
      << tenants.body;
}

TEST_F(ShardHttpTest, ControlPlaneValidatesOpsAndConflicts) {
  const uint16_t port = StartServer(Root("ops"), 1);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 200);
  // Duplicate create → 409 (AlreadyExists).
  EXPECT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 409);
  // Bad tenant name → 400.
  EXPECT_EQ(Post(port, "/tenantz?op=create&tenant=.hidden").status, 400);
  // Unknown op → 400; op without tenant → 400.
  EXPECT_EQ(Post(port, "/tenantz?op=explode&tenant=alpha").status, 400);
  EXPECT_EQ(Post(port, "/tenantz?op=evict").status, 400);
  // flush requires ?until=.
  EXPECT_EQ(Post(port, "/tenantz?op=flush&tenant=alpha").status, 400);
  // Ops on a missing tenant → 404.
  EXPECT_EQ(Post(port, "/tenantz?op=evict&tenant=ghost").status, 404);
  EXPECT_EQ(
      Post(port, "/tenantz?op=flush&tenant=ghost&until=3").status, 404);
  EXPECT_EQ(Get(port, "/digestz?tenant=ghost").status, 404);
  EXPECT_EQ(Get(port, "/digestz").status, 400);
  EXPECT_EQ(Get(port, "/statusz?tenant=ghost").status, 404);
  // drain is tenant-less and always succeeds.
  EXPECT_EQ(Post(port, "/tenantz?op=drain").status, 200);
  // checkpoint works over HTTP.
  EXPECT_EQ(Post(port, "/tenantz?op=checkpoint&tenant=alpha").status, 200);
}

TEST_F(ShardHttpTest, CreateAcceptsQueryOverrides) {
  const std::string root = Root("overrides");
  const uint16_t port = StartServer(root, 1);
  ASSERT_EQ(Post(port,
                 "/tenantz?op=create&tenant=custom&k=5&half_life=3.5"
                 "&life_span=14&step=0.5&start=2&seed=7")
                .status,
            200);
  service_->Drain();
  // The persisted TENANT.json carries the overridden fields.
  std::ifstream file(root + "/tenants/custom/TENANT.json");
  std::string json((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  auto config = TenantConfig::FromJson(json);
  ASSERT_TRUE(config.ok()) << config.status().ToString() << " " << json;
  EXPECT_EQ(config->k, 5u);
  EXPECT_DOUBLE_EQ(config->params.half_life_days, 3.5);
  EXPECT_DOUBLE_EQ(config->params.life_span_days, 14.0);
  EXPECT_DOUBLE_EQ(config->step_days, 0.5);
  EXPECT_DOUBLE_EQ(config->start_time, 2.0);
  EXPECT_EQ(config->seed, 7u);
}

TEST_F(ShardHttpTest, FullQueueAnswers429WithRetryAfter) {
  const std::string root = Root("backpressure");
  // Heavy first batch (many windows) keeps the single shard worker busy
  // while the client stacks more batches behind it.
  const auto feed = MakeFeed("press", 16, 12);
  const auto batches = WireBatches(feed, 48);
  const DayTime flush_until = 17.0;
  const std::string expected =
      ReferenceDigest(root + "_ref", SmallConfig(), batches, flush_until);

  const uint16_t port = StartServer(root, 1, /*queue_capacity=*/1);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 200);

  size_t rejections = 0;
  for (const std::string& body : batches) {
    for (;;) {
      auto response = Post(port, "/ingest?tenant=alpha", body);
      ASSERT_TRUE(response.ok);
      if (response.status == 202) break;
      ASSERT_EQ(response.status, 429) << response.body;
      EXPECT_TRUE(Contains(response.headers, "Retry-After: 1"))
          << response.headers;
      ++rejections;
    }
  }
  EXPECT_GT(rejections, 0u)
      << "queue_capacity=1 never pushed back; backpressure is broken";

  // Rejected batches were retried, so nothing is lost or reordered.
  ASSERT_EQ(
      Post(port, "/tenantz?op=flush&tenant=alpha&until=17").status, 200);
  auto digest = Get(port, "/digestz?tenant=alpha");
  ASSERT_EQ(digest.status, 200);
  EXPECT_EQ(digest.body, expected);
  EXPECT_EQ(registry_.GetCounter("shard.ingest.rejected_batches")->Value(),
            rejections);
}

TEST_F(ShardHttpTest, EvictThenReopenKeepsStateAcrossHttp) {
  const std::string root = Root("evict");
  const uint16_t port = StartServer(root, 2);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 200);
  for (const std::string& body : WireBatches(MakeFeed("ev", 3, 6), 9)) {
    ASSERT_EQ(Post(port, "/ingest?tenant=alpha", body).status, 202);
  }
  ASSERT_EQ(Post(port, "/tenantz?op=flush&tenant=alpha&until=4").status,
            200);
  auto before = Get(port, "/digestz?tenant=alpha");
  ASSERT_EQ(before.status, 200);

  ASSERT_EQ(Post(port, "/tenantz?op=evict&tenant=alpha").status, 200);
  EXPECT_EQ(Get(port, "/digestz?tenant=alpha").status, 404);
  EXPECT_EQ(
      Post(port, "/ingest?tenant=alpha", "{\"time\":9,\"text\":\"x\"}")
          .status,
      404);
  // Still on disk: reopen restores the exact state.
  ASSERT_EQ(Post(port, "/tenantz?op=reopen&tenant=alpha").status, 200);
  auto after = Get(port, "/digestz?tenant=alpha");
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(after.body, before.body);
}

TEST_F(ShardHttpTest, IntrospectionEndpointsRender) {
  const uint16_t port = StartServer(Root("introspect"), 2);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=alpha").status, 200);
  ASSERT_EQ(Post(port, "/tenantz?op=create&tenant=bravo").status, 200);
  for (const std::string& body : WireBatches(MakeFeed("in", 3, 6), 9)) {
    ASSERT_EQ(Post(port, "/ingest?tenant=alpha", body).status, 202);
  }
  ASSERT_EQ(Post(port, "/tenantz?op=flush&tenant=alpha&until=4").status,
            200);

  auto health = Get(port, "/healthz");
  ASSERT_EQ(health.status, 200);
  EXPECT_TRUE(Contains(health.body, "\"healthy\":true")) << health.body;
  EXPECT_TRUE(Contains(health.body, "\"num_tenants\":2")) << health.body;
  EXPECT_TRUE(Contains(health.body, "\"failed_tenants\":[]"))
      << health.body;

  // Aggregate /statusz is the tenant list; per-tenant is the pipeline
  // status the single-stream server renders.
  auto aggregate = Get(port, "/statusz");
  ASSERT_EQ(aggregate.status, 200);
  EXPECT_TRUE(Contains(aggregate.body, "\"queue_depths\""));
  EXPECT_TRUE(Contains(aggregate.body, "\"name\":\"bravo\""));
  auto status = Get(port, "/statusz?tenant=alpha");
  ASSERT_EQ(status.status, 200);
  EXPECT_TRUE(Contains(status.body, "\"num_clusters\"")) << status.body;
  EXPECT_TRUE(Contains(status.body, "\"durability\"")) << status.body;

  // Server-wide Prometheus text carries both families.
  auto metrics = Get(port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_TRUE(Contains(metrics.body, "shard_ingest_docs"))
      << metrics.body.substr(0, 400);
  EXPECT_TRUE(Contains(metrics.body, "serve_requests"))
      << metrics.body.substr(0, 400);
  // Per-tenant registry serves the pipeline families.
  auto tenant_metrics = Get(port, "/metrics?tenant=alpha");
  ASSERT_EQ(tenant_metrics.status, 200);
  EXPECT_TRUE(Contains(tenant_metrics.body, "shard_tenant_docs"))
      << tenant_metrics.body.substr(0, 400);
  EXPECT_EQ(Get(port, "/metrics?tenant=ghost").status, 404);

  // /metricsz is one JSON object with the same counters.
  auto metricsz = Get(port, "/metricsz");
  ASSERT_EQ(metricsz.status, 200);
  EXPECT_EQ(metricsz.body.front(), '{');
  EXPECT_TRUE(Contains(metricsz.body, "\"shard.ingest.docs\""))
      << metricsz.body.substr(0, 400);
}

}  // namespace
}  // namespace nidc::shard
