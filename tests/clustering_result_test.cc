#include "nidc/core/clustering_result.h"

#include <memory>

#include <gtest/gtest.h>

namespace nidc {
namespace {

class ClusteringResultTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("apple apple orchard", 0.0);
    corpus_.AddText("apple pie orchard", 0.0);
    corpus_.AddText("stock market crash", 0.0);
    ForgettingParams p;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AddDocuments({0, 1, 2});
    ctx_ = std::make_unique<SimilarityContext>(*model_);
  }

  ClusteringResult MakeResult() {
    ClusterSet set(2);
    set.Assign(0, 0, *ctx_);
    set.Assign(1, 0, *ctx_);
    set.Assign(2, 1, *ctx_);
    return ClusteringResult::FromClusterSet(set, {99}, {0.0, 1.0}, 2, true);
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
};

TEST_F(ClusteringResultTest, SnapshotCarriesClusters) {
  ClusteringResult r = MakeResult();
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0], (std::vector<DocId>{0, 1}));
  EXPECT_EQ(r.clusters[1], (std::vector<DocId>{2}));
  EXPECT_EQ(r.outliers, (std::vector<DocId>{99}));
  EXPECT_EQ(r.iterations, 2);
  EXPECT_TRUE(r.converged);
}

TEST_F(ClusteringResultTest, ClusterOfFindsMembership) {
  ClusteringResult r = MakeResult();
  EXPECT_EQ(r.ClusterOf(0), 0);
  EXPECT_EQ(r.ClusterOf(2), 1);
  EXPECT_EQ(r.ClusterOf(99), kUnassigned);
}

TEST_F(ClusteringResultTest, CountsNonEmptyAndAssigned) {
  ClusteringResult r = MakeResult();
  EXPECT_EQ(r.NumNonEmpty(), 2u);
  EXPECT_EQ(r.TotalAssigned(), 3u);
}

TEST_F(ClusteringResultTest, AvgSimsMatchClusterState) {
  ClusteringResult r = MakeResult();
  EXPECT_NEAR(r.avg_sims[0], ctx_->Sim(0, 1), 1e-12);
  EXPECT_DOUBLE_EQ(r.avg_sims[1], 0.0);  // singleton
}

TEST_F(ClusteringResultTest, TopTermsComeFromRepresentative) {
  ClusteringResult r = MakeResult();
  const auto terms = r.TopTerms(0, corpus_.vocabulary(), 2);
  ASSERT_EQ(terms.size(), 2u);
  // Cluster 0 is the apple/orchard cluster; "appl" dominates (3 counts).
  EXPECT_EQ(terms[0], "appl");
}

TEST_F(ClusteringResultTest, TopTermsOutOfRangeClusterIsEmpty) {
  ClusteringResult r = MakeResult();
  EXPECT_TRUE(r.TopTerms(7, corpus_.vocabulary(), 3).empty());
}

TEST_F(ClusteringResultTest, TopTermsRespectsLimit) {
  ClusteringResult r = MakeResult();
  EXPECT_LE(r.TopTerms(0, corpus_.vocabulary(), 1).size(), 1u);
  // Asking for more terms than the representative has is fine.
  EXPECT_LE(r.TopTerms(1, corpus_.vocabulary(), 50).size(), 3u);
}

}  // namespace
}  // namespace nidc
