#include "nidc/core/extended_kmeans.h"

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

namespace nidc {
namespace {

// Three well-separated synthetic topics, several docs each.
class ExtendedKMeansTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* iraq[] = {"iraq weapons inspection baghdad",
                          "iraq sanctions embargo baghdad",
                          "iraq inspectors weapons crisis",
                          "baghdad standoff weapons inspection"};
    const char* games[] = {"olympics skating medal nagano",
                           "olympics hockey nagano final",
                           "skating gold nagano games",
                           "olympics medal ceremony games"};
    const char* court[] = {"tobacco settlement senate lawsuit",
                           "tobacco lawsuit billions settlement",
                           "senate vote tobacco bill",
                           "settlement lawsuit vote senate"};
    DayTime t = 0.0;
    for (const char* s : iraq) corpus_.AddText(s, t += 0.1, 1);
    for (const char* s : games) corpus_.AddText(s, t += 0.1, 2);
    for (const char* s : court) corpus_.AddText(s, t += 0.1, 3);
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 365.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AdvanceTo(2.0);
    std::vector<DocId> ids(12);
    for (DocId d = 0; d < 12; ++d) ids[d] = d;
    model_->AddDocuments(ids);
    ctx_ = std::make_unique<SimilarityContext>(*model_);
    docs_ = ids;
  }

  // Returns the set of ground-truth topics represented in each non-empty
  // cluster.
  std::vector<std::set<TopicId>> TopicsPerCluster(
      const ClusteringResult& result) {
    std::vector<std::set<TopicId>> out;
    for (const auto& members : result.clusters) {
      if (members.empty()) continue;
      std::set<TopicId> topics;
      for (DocId d : members) topics.insert(corpus_.doc(d).topic);
      out.push_back(std::move(topics));
    }
    return out;
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
  std::unique_ptr<SimilarityContext> ctx_;
  std::vector<DocId> docs_;
};

TEST_F(ExtendedKMeansTest, RecoversPlantedTopics) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 5;
  Result<ClusteringResult> result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every document lands somewhere (no outliers in this easy instance);
  // every non-empty cluster is topic-pure.
  EXPECT_EQ(result->TotalAssigned() + result->outliers.size(), 12u);
  for (const auto& topics : TopicsPerCluster(*result)) {
    EXPECT_EQ(topics.size(), 1u);
  }
}

TEST_F(ExtendedKMeansTest, ResultIsDeterministicForFixedSeed) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 17;
  auto a = RunExtendedKMeans(*ctx_, docs_, opts);
  auto b = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clusters, b->clusters);
  EXPECT_EQ(a->outliers, b->outliers);
  EXPECT_DOUBLE_EQ(a->g, b->g);
}

TEST_F(ExtendedKMeansTest, ConvergesWithinIterationCap) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.max_iterations = 50;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->iterations, 50);
  EXPECT_EQ(result->g_history.size(),
            static_cast<size_t>(result->iterations) + 1);
}

TEST_F(ExtendedKMeansTest, GIsPositiveAfterConvergence) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->g, 0.0);
  EXPECT_DOUBLE_EQ(result->g, result->g_history.back());
}

TEST_F(ExtendedKMeansTest, KLargerThanNIsClamped) {
  ExtendedKMeansOptions opts;
  opts.k = 100;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 12u);
}

TEST_F(ExtendedKMeansTest, KOneGroupsEverythingOrOutliers) {
  ExtendedKMeansOptions opts;
  opts.k = 1;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 1u);
  EXPECT_EQ(result->clusters[0].size() + result->outliers.size(), 12u);
}

TEST_F(ExtendedKMeansTest, RejectsEmptyInput) {
  ExtendedKMeansOptions opts;
  EXPECT_EQ(RunExtendedKMeans(*ctx_, {}, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExtendedKMeansTest, RejectsUnknownDocument) {
  ExtendedKMeansOptions opts;
  EXPECT_EQ(RunExtendedKMeans(*ctx_, {999}, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExtendedKMeansTest, RejectsBadOptions) {
  ExtendedKMeansOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunExtendedKMeans(*ctx_, docs_, opts).ok());
  opts.k = 3;
  opts.max_iterations = 0;
  EXPECT_FALSE(RunExtendedKMeans(*ctx_, docs_, opts).ok());
  opts.max_iterations = 10;
  opts.delta = -1.0;
  EXPECT_FALSE(RunExtendedKMeans(*ctx_, docs_, opts).ok());
}

TEST_F(ExtendedKMeansTest, DisjointDocumentBecomesOutlier) {
  // Add a document sharing no vocabulary with anything else.
  corpus_.AddText("xylophone quixotic zephyr", 2.0, 9);
  model_->AddDocuments({12});
  SimilarityContext ctx(*model_);
  std::vector<DocId> docs = docs_;
  docs.push_back(12);
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 11;
  auto result = RunExtendedKMeans(ctx, docs, opts);
  ASSERT_TRUE(result.ok());
  // The disjoint doc can never increase any cluster's avg_sim unless it
  // seeds a cluster itself.
  const int cluster = result->ClusterOf(12);
  const bool outlier = std::find(result->outliers.begin(),
                                 result->outliers.end(),
                                 12) != result->outliers.end();
  if (!outlier) {
    ASSERT_GE(cluster, 0);
    EXPECT_EQ(result->clusters[static_cast<size_t>(cluster)].size(), 1u);
  } else {
    EXPECT_EQ(cluster, kUnassigned);
  }
}

TEST_F(ExtendedKMeansTest, MembershipSeedingReproducesStructure) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 5;
  auto first = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(first.ok());

  KMeansSeeds seeds;
  seeds.mode = SeedMode::kMembership;
  seeds.memberships = first->clusters;
  auto second = RunExtendedKMeans(*ctx_, docs_, opts, seeds);
  ASSERT_TRUE(second.ok());
  // Seeded from a converged state, one sweep suffices.
  EXPECT_EQ(second->iterations, 1);
  EXPECT_TRUE(second->converged);
  EXPECT_NEAR(second->g, first->g, 1e-9);
}

TEST_F(ExtendedKMeansTest, RepresentativeSeedingWorks) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 5;
  auto first = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(first.ok());

  KMeansSeeds seeds;
  seeds.mode = SeedMode::kRepresentatives;
  seeds.representatives = first->representatives;
  auto second = RunExtendedKMeans(*ctx_, docs_, opts, seeds);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->converged);
  EXPECT_GT(second->g, 0.0);
}

TEST_F(ExtendedKMeansTest, MembershipSeedWithTooManyClustersRejected) {
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kMembership;
  seeds.memberships.assign(10, {});
  ExtendedKMeansOptions opts;
  opts.k = 3;
  EXPECT_EQ(RunExtendedKMeans(*ctx_, docs_, opts, seeds).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExtendedKMeansTest, ShuffledSweepStillRecoversTopics) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 23;
  opts.shuffle_each_iteration = true;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& topics : TopicsPerCluster(*result)) {
    EXPECT_EQ(topics.size(), 1u);
  }
}

TEST_F(ExtendedKMeansTest, IndexedScoringMatchesMergeScoring) {
  // The rep-index path must reproduce the serial merge path's clustering
  // exactly: same memberships, same outliers, same G trajectory.
  for (const AssignmentCriterion criterion :
       {AssignmentCriterion::kGIncrease,
        AssignmentCriterion::kAvgSimIncrease}) {
    ExtendedKMeansOptions merge_opts;
    merge_opts.k = 3;
    merge_opts.seed = 5;
    merge_opts.criterion = criterion;
    merge_opts.use_rep_index = false;
    merge_opts.num_threads = 1;
    ExtendedKMeansOptions indexed_opts = merge_opts;
    indexed_opts.use_rep_index = true;
    auto merge = RunExtendedKMeans(*ctx_, docs_, merge_opts);
    auto indexed = RunExtendedKMeans(*ctx_, docs_, indexed_opts);
    ASSERT_TRUE(merge.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(merge->clusters, indexed->clusters);
    EXPECT_EQ(merge->outliers, indexed->outliers);
    ASSERT_EQ(merge->g_history.size(), indexed->g_history.size());
    for (size_t i = 0; i < merge->g_history.size(); ++i) {
      EXPECT_NEAR(merge->g_history[i], indexed->g_history[i], 1e-12);
    }
  }
}

TEST_F(ExtendedKMeansTest, IndexedScoringMatchesWithRepresentativeSeeds) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.seed = 5;
  auto first = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(first.ok());
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kRepresentatives;
  seeds.representatives = first->representatives;

  ExtendedKMeansOptions merge_opts = opts;
  merge_opts.use_rep_index = false;
  merge_opts.num_threads = 1;
  ExtendedKMeansOptions indexed_opts = opts;
  indexed_opts.use_rep_index = true;
  indexed_opts.num_threads = 1;
  auto merge = RunExtendedKMeans(*ctx_, docs_, merge_opts, seeds);
  auto indexed = RunExtendedKMeans(*ctx_, docs_, indexed_opts, seeds);
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(merge->clusters, indexed->clusters);
  EXPECT_EQ(merge->outliers, indexed->outliers);
}

TEST_F(ExtendedKMeansTest, ThreadCountDoesNotChangeTheResult) {
  // One and eight lanes must produce identical ClusteringResults: parallel
  // lanes only fill disjoint slots / precompute read-only decisions.
  ExtendedKMeansOptions serial_opts;
  serial_opts.k = 3;
  serial_opts.seed = 5;
  serial_opts.num_threads = 1;
  ExtendedKMeansOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = 8;

  auto serial = RunExtendedKMeans(*ctx_, docs_, serial_opts);
  ASSERT_TRUE(serial.ok());
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kRepresentatives;
  seeds.representatives = serial->representatives;

  auto a = RunExtendedKMeans(*ctx_, docs_, serial_opts, seeds);
  auto b = RunExtendedKMeans(*ctx_, docs_, parallel_opts, seeds);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clusters, b->clusters);
  EXPECT_EQ(a->outliers, b->outliers);
  EXPECT_EQ(a->g_history, b->g_history);
  EXPECT_DOUBLE_EQ(a->g, b->g);
}

// δ sweep: looser δ converges at least as fast (in iterations).
class DeltaSweepTest : public ExtendedKMeansTest,
                       public testing::WithParamInterface<double> {};

TEST_P(DeltaSweepTest, ConvergesForAllDeltas) {
  ExtendedKMeansOptions opts;
  opts.k = 3;
  opts.delta = GetParam();
  opts.max_iterations = 100;
  auto result = RunExtendedKMeans(*ctx_, docs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
}

// δ = 0 is excluded: the paper's strict "< δ" criterion would then require
// G to decrease, so a fixed point (ΔG = 0) would never terminate.
INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweepTest,
                         testing::Values(1e-12, 1e-6, 1e-3, 0.05, 0.5));

}  // namespace
}  // namespace nidc
