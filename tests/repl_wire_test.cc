#include "nidc/repl/wire.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nidc::repl {
namespace {

ReplFrame MakeFrame(FrameType type, uint64_t generation, uint64_t sequence,
                    uint64_t leader_steps, std::string payload) {
  ReplFrame frame;
  frame.type = type;
  frame.generation = generation;
  frame.sequence = sequence;
  frame.leader_steps = leader_steps;
  frame.payload = std::move(payload);
  return frame;
}

void ExpectFramesEqual(const ReplFrame& a, const ReplFrame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.leader_steps, b.leader_steps);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(ReplWireTest, EveryFrameTypeRoundTrips) {
  const std::vector<ReplFrame> frames = {
      MakeFrame(FrameType::kHello, 3, 17, 45, ""),
      MakeFrame(FrameType::kSnapshot, 4, 0, 48, "serialized state bytes"),
      MakeFrame(FrameType::kWalRecord, 4, 1, 49, std::string(1000, 'r')),
      MakeFrame(FrameType::kSeal, 4, 8, 56, ""),
      MakeFrame(FrameType::kHeartbeat, 4, 8, 56, ""),
  };
  for (const ReplFrame& frame : frames) {
    FrameParser parser;
    parser.Feed(EncodeFrame(frame));
    Result<std::optional<ReplFrame>> decoded = parser.Next();
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded->has_value());
    ExpectFramesEqual(**decoded, frame);
    // Nothing trails the frame.
    Result<std::optional<ReplFrame>> next = parser.Next();
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next->has_value());
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

TEST(ReplWireTest, ByteAtATimeFeedYieldsTheSameFrames) {
  const ReplFrame a =
      MakeFrame(FrameType::kWalRecord, 2, 5, 12, "payload-a");
  const ReplFrame b = MakeFrame(FrameType::kSeal, 2, 5, 12, "");
  const std::string stream = EncodeFrame(a) + EncodeFrame(b);
  FrameParser parser;
  std::vector<ReplFrame> out;
  for (char byte : stream) {
    parser.Feed(std::string_view(&byte, 1));
    for (;;) {
      Result<std::optional<ReplFrame>> next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      out.push_back(**next);
    }
  }
  ASSERT_EQ(out.size(), 2u);
  ExpectFramesEqual(out[0], a);
  ExpectFramesEqual(out[1], b);
}

TEST(ReplWireTest, TruncatedTailIsNeedMoreBytesNotAnError) {
  const std::string encoded =
      EncodeFrame(MakeFrame(FrameType::kWalRecord, 1, 1, 1, "abcdef"));
  // Every proper prefix — mid-header, mid-CRC, mid-body — must read as a
  // cleanly truncated stream (the torn-TCP analogue of a torn WAL tail).
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameParser parser;
    parser.Feed(std::string_view(encoded).substr(0, cut));
    Result<std::optional<ReplFrame>> next = parser.Next();
    ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                           << next.status().ToString();
    EXPECT_FALSE(next->has_value()) << "cut at " << cut;
  }
}

TEST(ReplWireTest, CorruptedBodyFailsTheStream) {
  std::string encoded =
      EncodeFrame(MakeFrame(FrameType::kWalRecord, 1, 1, 1, "abcdef"));
  encoded[encoded.size() - 3] ^= 0x40;  // flip one payload bit
  FrameParser parser;
  parser.Feed(encoded);
  Result<std::optional<ReplFrame>> next = parser.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReplWireTest, CorruptedHeaderLengthFailsTheStream) {
  std::string encoded =
      EncodeFrame(MakeFrame(FrameType::kHeartbeat, 1, 0, 1, ""));
  encoded[3] = '\xff';  // body length far beyond the frame-size cap
  FrameParser parser;
  parser.Feed(encoded);
  Result<std::optional<ReplFrame>> next = parser.Next();
  EXPECT_FALSE(next.ok());
}

TEST(ReplWireTest, UnknownFrameTypeIsRejected) {
  std::string body;
  body.push_back('\x09');  // no such FrameType
  body.append(24, '\0');
  Result<ReplFrame> decoded = DecodeFrameBody(body);
  EXPECT_FALSE(decoded.ok());
}

TEST(ReplWireTest, BodyShorterThanFixedFieldsIsRejected) {
  EXPECT_FALSE(DecodeFrameBody("").ok());
  EXPECT_FALSE(DecodeFrameBody(std::string(10, '\0')).ok());
}

TEST(ReplWireTest, InterleavedDamageStopsAtTheDamagedFrame) {
  const ReplFrame good = MakeFrame(FrameType::kWalRecord, 1, 1, 1, "ok");
  std::string bad = EncodeFrame(good);
  bad[bad.size() - 1] ^= 0x01;
  FrameParser parser;
  parser.Feed(EncodeFrame(good));
  parser.Feed(bad);
  Result<std::optional<ReplFrame>> first = parser.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  ExpectFramesEqual(**first, good);
  EXPECT_FALSE(parser.Next().ok());
}

}  // namespace
}  // namespace nidc::repl
