#include "nidc/util/csv_writer.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter w({"day", "count"});
  w.AddRow({"1", "10"});
  w.AddRow({"2", "20"});
  EXPECT_EQ(w.ToString(), "day,count\n1,10\n2,20\n");
}

TEST(CsvWriterTest, EscapesCommas) {
  EXPECT_EQ(CsvWriter::EscapeCell("a,b"), "\"a,b\"");
}

TEST(CsvWriterTest, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::EscapeCell("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::EscapeCell("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, PlainCellsUntouched) {
  EXPECT_EQ(CsvWriter::EscapeCell("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeCell(""), "");
}

TEST(CsvWriterTest, WritesFile) {
  const std::string path = testing::TempDir() + "/nidc_csv_test.csv";
  CsvWriter w({"x"});
  w.AddRow({"1"});
  ASSERT_TRUE(w.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n1\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter w({"x"});
  const Status s = w.WriteFile("/nonexistent_dir_zzz/file.csv");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace nidc
