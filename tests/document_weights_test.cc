#include "nidc/forgetting/document_weights.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nidc {
namespace {

constexpr double kLambda = 0.9;

TEST(DocumentWeightsTest, FreshDocumentHasWeightOne) {
  DocumentWeights w(kLambda);
  w.AdvanceTo(5.0);
  w.Add(0, 5.0);
  EXPECT_DOUBLE_EQ(w.Weight(0), 1.0);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 1.0);
}

TEST(DocumentWeightsTest, BackdatedDocumentIsPreDecayed) {
  DocumentWeights w(kLambda);
  w.AdvanceTo(10.0);
  w.Add(0, 7.0);  // acquired 3 days ago
  EXPECT_NEAR(w.Weight(0), std::pow(kLambda, 3.0), 1e-12);
}

TEST(DocumentWeightsTest, AdvanceDecaysExponentially) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.AdvanceTo(1.0);
  EXPECT_NEAR(w.Weight(0), kLambda, 1e-12);
  w.AdvanceTo(3.0);
  EXPECT_NEAR(w.Weight(0), std::pow(kLambda, 3.0), 1e-12);
}

TEST(DocumentWeightsTest, IncrementalDecayMatchesDirectFormula) {
  // Eq. 27: many small advances == one big advance.
  DocumentWeights incremental(kLambda);
  incremental.Add(0, 0.0);
  for (int day = 1; day <= 20; ++day) {
    incremental.AdvanceTo(static_cast<double>(day));
  }
  EXPECT_NEAR(incremental.Weight(0), std::pow(kLambda, 20.0), 1e-12);
}

TEST(DocumentWeightsTest, TdwFollowsEq28) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.Add(1, 0.0);
  const double tdw0 = w.TotalWeight();
  EXPECT_DOUBLE_EQ(tdw0, 2.0);
  w.AdvanceTo(2.0);
  w.Add(2, 2.0);
  w.Add(3, 2.0);
  w.Add(4, 2.0);
  // Eq. 28: tdw' = λ^Δτ · tdw + m'.
  EXPECT_NEAR(w.TotalWeight(), std::pow(kLambda, 2.0) * tdw0 + 3.0, 1e-12);
}

TEST(DocumentWeightsTest, TdwMatchesSumOfWeights) {
  DocumentWeights w(kLambda);
  for (int i = 0; i < 10; ++i) {
    w.AdvanceTo(static_cast<double>(i));
    w.Add(static_cast<DocId>(i), static_cast<double>(i));
  }
  double sum = 0.0;
  for (DocId id : w.active_docs()) sum += w.Weight(id);
  EXPECT_NEAR(w.TotalWeight(), sum, 1e-9);
}

TEST(DocumentWeightsTest, RemoveSubtractsWeight) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.Add(1, 0.0);
  w.AdvanceTo(1.0);
  const double w0 = w.Weight(0);
  w.Remove(0);
  EXPECT_FALSE(w.Contains(0));
  EXPECT_DOUBLE_EQ(w.Weight(0), 0.0);
  EXPECT_NEAR(w.TotalWeight(), w.Weight(1), 1e-12);
  EXPECT_GT(w0, 0.0);
  EXPECT_EQ(w.active_docs(), (std::vector<DocId>{1}));
}

TEST(DocumentWeightsTest, RemoveBelowExpiresOldDocs) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.AdvanceTo(10.0);
  w.Add(1, 10.0);
  // After 10 days at λ=0.9, weight ≈ 0.35; expire below 0.5.
  const auto removed = w.RemoveBelow(0.5);
  EXPECT_EQ(removed, (std::vector<DocId>{0}));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(w.Contains(1));
  EXPECT_NEAR(w.TotalWeight(), 1.0, 1e-12);
}

TEST(DocumentWeightsTest, RemoveBelowKeepsOrder) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.AdvanceTo(5.0);
  w.Add(1, 5.0);
  w.AdvanceTo(20.0);
  w.Add(2, 20.0);
  const auto removed = w.RemoveBelow(0.3);  // drops 0 (w≈0.12) and 1 (w≈0.2)
  EXPECT_EQ(removed, (std::vector<DocId>{0, 1}));
  EXPECT_EQ(w.active_docs(), (std::vector<DocId>{2}));
}

TEST(DocumentWeightsTest, ResetClearsEverything) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.AdvanceTo(3.0);
  w.Reset(7.0);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 0.0);
  EXPECT_DOUBLE_EQ(w.now(), 7.0);
  w.Add(0, 7.0);
  EXPECT_DOUBLE_EQ(w.Weight(0), 1.0);
}

TEST(DocumentWeightsTest, AdvanceToSameTimeIsNoop) {
  DocumentWeights w(kLambda);
  w.Add(0, 0.0);
  w.AdvanceTo(0.0);
  EXPECT_DOUBLE_EQ(w.Weight(0), 1.0);
}

}  // namespace
}  // namespace nidc
