// Reduced-configuration crash torture as a unit test; the full matrix
// (60-step stream, every kill point, both fsync modes) runs as
// tools/nidc_crash_torture in CI.

#include "nidc/store/torture.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::string TortureDir(const std::string& name) {
  return testing::TempDir() + "/nidc_crash_torture_test_" + name;
}

TEST(CrashTortureTest, StreamIsDeterministic) {
  TortureOptions options;
  options.num_steps = 10;
  const TortureStream a = BuildTortureStream(options);
  const TortureStream b = BuildTortureStream(options);
  ASSERT_EQ(a.batches.size(), 10u);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.taus, b.taus);
  ASSERT_EQ(a.corpus->size(), b.corpus->size());
  for (DocId id = 0; id < a.corpus->size(); ++id) {
    EXPECT_EQ(a.corpus->doc(id).terms, b.corpus->doc(id).terms);
    EXPECT_EQ(a.corpus->doc(id).time, b.corpus->doc(id).time);
  }
}

TEST(CrashTortureTest, EarlyKillPointsRecoverBitIdentically) {
  // The first ~40 kill points cover Open's initial rotation, WAL appends,
  // syncs and the first periodic checkpoint under all three crash-flush
  // policies — the highest-value region of the matrix at unit-test cost.
  TortureOptions options;
  options.dir = TortureDir("early");
  options.num_steps = 16;
  options.checkpoint_every = 4;
  options.max_kill_points = 40;
  Result<TortureReport> report = RunCrashTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->kill_points_exercised, 40u);
  EXPECT_EQ(report->recoveries, 40u);
}

TEST(CrashTortureTest, FullMatrixOnShortStreamWithoutFsync) {
  // WalSyncMode::kNone makes dropped-unsynced crashes lose WAL tails, so
  // recovery leans on refeeding from applied_steps(); the final state
  // must still be bit-identical.
  TortureOptions options;
  options.dir = TortureDir("nofsync");
  options.num_steps = 12;
  options.checkpoint_every = 4;
  options.wal_sync = WalSyncMode::kNone;
  Result<TortureReport> report = RunCrashTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_GT(report->kill_points_exercised, 10u);
}

}  // namespace
}  // namespace nidc
