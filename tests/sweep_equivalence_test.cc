// Property test for the scoring-path ablation: for any corpus, K,
// assignment criterion, seeding mode, shuffle setting and thread count, the
// three sweep configurations — merge (reference), indexed (PR-1 hash
// posting index with physical detach/re-attach) and slotted (flat CSR index
// with move-only maintenance) — must produce *identical* ClusteringResults:
// same memberships, same outliers, and a bit-for-bit equal G history. The
// G trace is the sharpest oracle: every float produced by the Eq. 22–26
// cache updates feeds it, so a single rounding divergence anywhere in a
// sweep shows up as a g_history mismatch.

#include "nidc/core/extended_kmeans.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/core/kernels/kernels.h"
#include "nidc/corpus/corpus.h"
#include "nidc/forgetting/forgetting_model.h"
#include "nidc/util/random.h"
#include "nidc/util/thread_pool.h"

namespace nidc {
namespace {

// Restores the process-global kernel selection on scope exit, so a failing
// assertion inside a kernel loop cannot leak a SIMD kernel into later tests.
struct KernelGuard {
  kernels::Kind saved = kernels::Active().kind;
  ~KernelGuard() { kernels::Select(saved); }
};

// A corpus + model + context bundle on the heap (the model and context hold
// pointers into the corpus, so the bundle must not move).
struct Env {
  Corpus corpus;
  std::unique_ptr<ForgettingModel> model;
  std::unique_ptr<SimilarityContext> ctx;
  std::vector<DocId> docs;
};

std::unique_ptr<Env> MakeEnv(uint64_t seed, size_t n_docs,
                             size_t words_per_doc = 8,
                             size_t num_threads = 1) {
  static const char* kPool[] = {
      "alpha", "bravo", "charlie", "delta", "echo",   "fox",
      "golf",  "hotel", "india",   "juliet", "kilo",  "lima",
      "mike",  "nov",   "oscar",   "papa",  "quebec", "romeo",
      "sierra", "tango", "umbra",  "victor", "whiskey", "xray",
      "yankee", "zulu"};
  constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  auto env = std::make_unique<Env>();
  Rng words(seed);
  for (size_t i = 0; i < n_docs; ++i) {
    std::string text;
    for (size_t j = 0; j < words_per_doc; ++j) {
      if (j > 0) text += ' ';
      text += kPool[words.NextBounded(kPoolSize)];
    }
    env->corpus.AddText(text, 0.25 + 0.01 * static_cast<double>(i),
                        static_cast<TopicId>(i % 5));
  }
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  env->model = std::make_unique<ForgettingModel>(&env->corpus, params);
  env->model->AdvanceTo(2.0);
  env->docs.resize(n_docs);
  for (DocId d = 0; d < static_cast<DocId>(n_docs); ++d) env->docs[d] = d;
  env->model->AddDocuments(env->docs);
  env->ctx = std::make_unique<SimilarityContext>(
      *env->model, ThreadPool::Resolve(num_threads));
  return env;
}

ClusteringResult RunConfig(const Env& env, ExtendedKMeansOptions options,
                           bool use_rep_index, bool move_only,
                           const std::optional<KMeansSeeds>& seeds) {
  options.use_rep_index = use_rep_index;
  options.move_only_sweep = move_only;
  auto result = RunExtendedKMeans(*env.ctx, env.docs, options, seeds);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : ClusteringResult{};
}

// Runs the three configurations and asserts identical outputs. g_history is
// compared with EXPECT_EQ on the double vectors — bit-for-bit, no
// tolerance.
void ExpectAllConfigsIdentical(const Env& env,
                               const ExtendedKMeansOptions& options,
                               const std::optional<KMeansSeeds>& seeds =
                                   std::nullopt) {
  const ClusteringResult merge =
      RunConfig(env, options, /*use_rep_index=*/false, /*move_only=*/false,
                seeds);
  const ClusteringResult indexed =
      RunConfig(env, options, /*use_rep_index=*/true, /*move_only=*/false,
                seeds);
  const ClusteringResult slotted =
      RunConfig(env, options, /*use_rep_index=*/true, /*move_only=*/true,
                seeds);
  for (const auto* other : {&indexed, &slotted}) {
    const char* name = other == &indexed ? "indexed" : "slotted";
    SCOPED_TRACE(name);
    EXPECT_EQ(merge.clusters, other->clusters);
    EXPECT_EQ(merge.outliers, other->outliers);
    EXPECT_EQ(merge.g_history, other->g_history);
    EXPECT_EQ(merge.iterations, other->iterations);
    EXPECT_EQ(merge.converged, other->converged);
  }
}

TEST(SweepEquivalenceTest, RandomCorporaAcrossKAndCriterion) {
  for (uint64_t corpus_seed : {11u, 22u, 33u}) {
    auto env = MakeEnv(corpus_seed, /*n_docs=*/70);
    for (size_t k : {3u, 8u}) {
      for (AssignmentCriterion criterion :
           {AssignmentCriterion::kGIncrease,
            AssignmentCriterion::kAvgSimIncrease}) {
        SCOPED_TRACE("corpus_seed=" + std::to_string(corpus_seed) +
                     " k=" + std::to_string(k) + " criterion=" +
                     std::to_string(static_cast<int>(criterion)));
        ExtendedKMeansOptions options;
        options.k = k;
        options.seed = corpus_seed * 101 + k;
        options.criterion = criterion;
        ExpectAllConfigsIdentical(*env, options);
      }
    }
  }
}

TEST(SweepEquivalenceTest, ThreadCountDoesNotChangeSlottedResults) {
  // The context build is parallel but slot-deterministic, and the seeded
  // assignment pass applies its results in sweep order — every thread
  // count must yield the same bits.
  auto serial = MakeEnv(5, /*n_docs=*/60, 8, /*num_threads=*/1);
  ExtendedKMeansOptions options;
  options.k = 6;
  options.seed = 9;
  const ClusteringResult base =
      RunConfig(*serial, options, true, true, std::nullopt);
  for (size_t threads : {2u, 4u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto env = MakeEnv(5, /*n_docs=*/60, 8, threads);
    ExtendedKMeansOptions opts = options;
    opts.num_threads = threads;
    const ClusteringResult got =
        RunConfig(*env, opts, true, true, std::nullopt);
    EXPECT_EQ(base.clusters, got.clusters);
    EXPECT_EQ(base.outliers, got.outliers);
    EXPECT_EQ(base.g_history, got.g_history);
  }
}

TEST(SweepEquivalenceTest, ShuffledSweepOrderStaysIdentical) {
  auto env = MakeEnv(17, /*n_docs=*/50);
  ExtendedKMeansOptions options;
  options.k = 5;
  options.seed = 4;
  options.shuffle_each_iteration = true;
  ExpectAllConfigsIdentical(*env, options);
}

TEST(SweepEquivalenceTest, DisjointVocabulariesExerciseEmptyClusterReseed) {
  // Every document gets a private vocabulary: cross-document similarities
  // are all zero, so clusters collapse to singletons, documents fall to the
  // outlier list, and the first-empty-cluster reseed branch (including the
  // slotted sweep's n_detached == 0 physical roundtrip) fires constantly.
  auto env = std::make_unique<Env>();
  for (size_t i = 0; i < 6; ++i) {
    const std::string tag = "w" + std::to_string(i);
    env->corpus.AddText(tag + "a " + tag + "b " + tag + "c",
                        0.25 + 0.01 * static_cast<double>(i),
                        static_cast<TopicId>(i));
  }
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  env->model = std::make_unique<ForgettingModel>(&env->corpus, params);
  env->model->AdvanceTo(1.0);
  env->docs = {0, 1, 2, 3, 4, 5};
  env->model->AddDocuments(env->docs);
  env->ctx = std::make_unique<SimilarityContext>(*env->model);

  for (size_t k : {4u, 10u}) {  // 10 > n_docs: effective-K reduction too
    for (AssignmentCriterion criterion :
         {AssignmentCriterion::kGIncrease,
          AssignmentCriterion::kAvgSimIncrease}) {
      SCOPED_TRACE("k=" + std::to_string(k) + " criterion=" +
                   std::to_string(static_cast<int>(criterion)));
      ExtendedKMeansOptions options;
      options.k = k;
      options.seed = 3;
      options.criterion = criterion;
      ExpectAllConfigsIdentical(*env, options);
    }
  }
}

TEST(SweepEquivalenceTest, MembershipSeedingStaysIdentical) {
  auto env = MakeEnv(29, /*n_docs=*/60);
  ExtendedKMeansOptions options;
  options.k = 5;
  options.seed = 13;
  const ClusteringResult previous =
      RunConfig(*env, options, false, false, std::nullopt);
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kMembership;
  seeds.memberships = previous.clusters;
  ExpectAllConfigsIdentical(*env, options, seeds);
}

TEST(SweepEquivalenceTest, RepresentativeSeedingStaysIdentical) {
  auto env = MakeEnv(31, /*n_docs=*/60);
  ExtendedKMeansOptions options;
  options.k = 5;
  options.seed = 21;
  const ClusteringResult previous =
      RunConfig(*env, options, false, false, std::nullopt);
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kRepresentatives;
  seeds.representatives = previous.representatives;
  ExpectAllConfigsIdentical(*env, options, seeds);
}

TEST(SweepEquivalenceTest, KernelAndQuantizationDimensionsStayIdentical) {
  // The kernel dimension of the ablation: for every compiled-in scoring
  // kernel (unavailable ones skipped) × quantized scoring on/off × K on
  // both sides of the AVX-512 register-resident threshold (K ≤ 16 vs the
  // gather/scatter spill path) × corpus seed, the slotted sweep must match
  // the merge reference bit-for-bit. The shared vocabulary makes posting
  // lengths span 1..K, so odd lengths and vector-tail remainders are
  // exercised on every scan.
  KernelGuard guard;
  const kernels::Kind kinds[] = {kernels::Kind::kScalar,
                                 kernels::Kind::kAvx2,
                                 kernels::Kind::kAvx512};
  for (uint64_t corpus_seed : {41u, 43u}) {
    auto env = MakeEnv(corpus_seed, /*n_docs=*/70);
    for (size_t k : {5u, 20u}) {
      ExtendedKMeansOptions options;
      options.k = k;
      options.seed = corpus_seed * 7 + k;
      options.quantized_scoring = false;
      kernels::Select(kernels::Kind::kScalar);
      const ClusteringResult merge =
          RunConfig(*env, options, /*use_rep_index=*/false,
                    /*move_only=*/false, std::nullopt);
      for (kernels::Kind kind : kinds) {
        if (!kernels::Available(kind)) continue;
        for (bool quantized : {false, true}) {
          SCOPED_TRACE("seed=" + std::to_string(corpus_seed) +
                       " k=" + std::to_string(k) + " kernel=" +
                       kernels::KindName(kind) +
                       " quantized=" + std::to_string(quantized));
          kernels::Select(kind);
          ExtendedKMeansOptions opts = options;
          opts.quantized_scoring = quantized;
          const ClusteringResult slotted =
              RunConfig(*env, opts, /*use_rep_index=*/true,
                        /*move_only=*/true, std::nullopt);
          EXPECT_EQ(merge.clusters, slotted.clusters);
          EXPECT_EQ(merge.outliers, slotted.outliers);
          EXPECT_EQ(merge.g_history, slotted.g_history);
          EXPECT_EQ(merge.iterations, slotted.iterations);
        }
      }
    }
  }
}

TEST(SweepEquivalenceTest, KernelsStayIdenticalAcrossThreadCounts) {
  // Kernel × thread-count cross product: the parallel RefreshAll and
  // context build must not perturb any kernel's scoring decisions.
  KernelGuard guard;
  kernels::Select(kernels::Kind::kScalar);
  auto serial = MakeEnv(47, /*n_docs=*/60, 8, /*num_threads=*/1);
  ExtendedKMeansOptions options;
  options.k = 6;
  options.seed = 19;
  options.quantized_scoring = false;
  const ClusteringResult base =
      RunConfig(*serial, options, true, true, std::nullopt);
  for (kernels::Kind kind : {kernels::Kind::kScalar, kernels::Kind::kAvx2,
                             kernels::Kind::kAvx512}) {
    if (!kernels::Available(kind)) continue;
    for (size_t threads : {2u, 0u}) {
      for (bool quantized : {false, true}) {
        SCOPED_TRACE(std::string("kernel=") + kernels::KindName(kind) +
                     " threads=" + std::to_string(threads) +
                     " quantized=" + std::to_string(quantized));
        kernels::Select(kind);
        auto env = MakeEnv(47, /*n_docs=*/60, 8, threads);
        ExtendedKMeansOptions opts = options;
        opts.num_threads = threads;
        opts.quantized_scoring = quantized;
        const ClusteringResult got =
            RunConfig(*env, opts, true, true, std::nullopt);
        EXPECT_EQ(base.clusters, got.clusters);
        EXPECT_EQ(base.outliers, got.outliers);
        EXPECT_EQ(base.g_history, got.g_history);
      }
    }
  }
}

TEST(SweepEquivalenceTest, NearTieArgmaxTriggersExactRecheckNotDrift) {
  // A corpus of near-duplicate documents: clusters end up with nearly
  // identical gains, so the quantized margins cannot strictly separate the
  // argmax. The certification must refuse (exact re-checks fire) rather
  // than guess — and the decisions must stay bit-identical to both the
  // un-quantized slotted sweep and the merge reference.
  KernelGuard guard;
  auto env = std::make_unique<Env>();
  for (size_t i = 0; i < 24; ++i) {
    // Three groups of near-duplicates; the i % 3 == 0 group is exactly
    // duplicated text, producing exact score ties between clusters.
    std::string text = "common core words shared by every doc";
    if (i % 3 == 1) text += " tilt";
    if (i % 3 == 2) text += " other";
    env->corpus.AddText(text, 0.25 + 0.001 * static_cast<double>(i),
                        static_cast<TopicId>(i % 3));
  }
  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 365.0;
  env->model = std::make_unique<ForgettingModel>(&env->corpus, params);
  env->model->AdvanceTo(1.0);
  env->docs.resize(24);
  for (DocId d = 0; d < 24; ++d) env->docs[d] = d;
  env->model->AddDocuments(env->docs);
  env->ctx = std::make_unique<SimilarityContext>(*env->model);

  ExtendedKMeansOptions options;
  options.k = 4;
  options.seed = 11;
  const ClusteringResult merge =
      RunConfig(*env, options, /*use_rep_index=*/false, /*move_only=*/false,
                std::nullopt);
  size_t total_fallbacks = 0;
  for (kernels::Kind kind :
       {kernels::Kind::kScalar, kernels::Kind::kAvx2,
        kernels::Kind::kAvx512}) {
    if (!kernels::Available(kind)) continue;
    SCOPED_TRACE(kernels::KindName(kind));
    kernels::Select(kind);
    KMeansProfile profile;
    ExtendedKMeansOptions opts = options;
    opts.quantized_scoring = true;
    opts.profile = &profile;
    opts.use_rep_index = true;
    opts.move_only_sweep = true;
    auto result = RunExtendedKMeans(*env->ctx, env->docs, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(merge.clusters, result->clusters);
    EXPECT_EQ(merge.outliers, result->outliers);
    EXPECT_EQ(merge.g_history, result->g_history);
    total_fallbacks += profile.quantized_fallbacks;
  }
  // The margin logic must actually have hit ambiguous ties somewhere —
  // otherwise this test exercises nothing.
  EXPECT_GT(total_fallbacks, 0u);
}

TEST(SweepEquivalenceTest, DegenerateRepresentativeSeedsStayIdentical) {
  // Bogus seed vectors: an empty representative, one over terms no active
  // document contains, and one real ψ. The seeded assignment pass leaves
  // clusters empty / degenerate, and all three sweeps must recover through
  // the same reseed decisions.
  auto env = MakeEnv(37, /*n_docs=*/40);
  KMeansSeeds seeds;
  seeds.mode = SeedMode::kRepresentatives;
  seeds.representatives.resize(3);
  seeds.representatives[0] = SparseVector();  // empty
  seeds.representatives[1] = SparseVector::FromEntries(
      {{9999998, 1.0}, {9999999, 2.0}});  // out-of-vocabulary
  seeds.representatives[2] = env->ctx->Psi(0);
  ExtendedKMeansOptions options;
  options.k = 3;
  options.seed = 2;
  ExpectAllConfigsIdentical(*env, options, seeds);
}

}  // namespace
}  // namespace nidc
