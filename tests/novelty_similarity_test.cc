#include "nidc/core/novelty_similarity.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "nidc/synth/tdt2_like_generator.h"
#include "nidc/util/random.h"

namespace nidc {
namespace {

class NoveltySimilarityTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection crisis baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions weapons united nations", 1.0, 1);
    corpus_.AddText("olympics skating gold medal nagano", 2.0, 2);
    corpus_.AddText("olympics hockey final nagano games", 3.0, 2);
    corpus_.AddText("tobacco settlement senate vote", 4.0, 3);
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 30.0;
    model_ = std::make_unique<ForgettingModel>(&corpus_, p);
    model_->AdvanceTo(4.0);
    model_->AddDocuments({0, 1, 2, 3, 4});
  }

  Corpus corpus_;
  std::unique_ptr<ForgettingModel> model_;
};

TEST_F(NoveltySimilarityTest, FactoredFormMatchesReference) {
  // ψ_i · ψ_j must equal the literal Eq. 16 computation.
  SimilarityContext ctx(*model_);
  for (DocId a = 0; a < 5; ++a) {
    for (DocId b = 0; b < 5; ++b) {
      EXPECT_NEAR(ctx.Sim(a, b), NoveltySimilarityReference(*model_, a, b),
                  1e-12)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST_F(NoveltySimilarityTest, Eq11PreTfidfFormAgrees) {
  // The chain of transformations §3 performs must be exact: the Eq. 11
  // form  Pr(d_i)Pr(d_j)/(Σf_il·Σf_jl) · Σ_k f_ik·f_jk/Pr(t_k)  equals the
  // factored ψ_i·ψ_j.
  SimilarityContext ctx(*model_);
  for (DocId a = 0; a < 5; ++a) {
    for (DocId b = 0; b < 5; ++b) {
      const Document& da = corpus_.doc(a);
      const Document& db = corpus_.doc(b);
      double weighted_overlap = 0.0;
      for (const auto& e : da.terms.entries()) {
        const double fb = db.terms.ValueAt(e.id);
        if (fb == 0.0) continue;
        const double pr_t = model_->PrTerm(e.id);
        ASSERT_GT(pr_t, 0.0);
        weighted_overlap += e.value * fb / pr_t;
      }
      const double eq11 = model_->PrDoc(a) * model_->PrDoc(b) /
                          (da.Length() * db.Length()) * weighted_overlap;
      EXPECT_NEAR(ctx.Sim(a, b), eq11, 1e-12) << a << "," << b;
    }
  }
}

TEST_F(NoveltySimilarityTest, SimilarityIsSymmetric) {
  SimilarityContext ctx(*model_);
  for (DocId a = 0; a < 5; ++a) {
    for (DocId b = a + 1; b < 5; ++b) {
      EXPECT_DOUBLE_EQ(ctx.Sim(a, b), ctx.Sim(b, a));
    }
  }
}

TEST_F(NoveltySimilarityTest, SimilarityIsNonNegative) {
  SimilarityContext ctx(*model_);
  for (DocId a = 0; a < 5; ++a) {
    for (DocId b = 0; b < 5; ++b) {
      EXPECT_GE(ctx.Sim(a, b), 0.0);
    }
  }
}

TEST_F(NoveltySimilarityTest, SameTopicPairsScoreHigher) {
  SimilarityContext ctx(*model_);
  // Docs 0,1 share iraq/weapons; docs 2,3 share olympics/nagano; cross
  // pairs share nothing.
  EXPECT_GT(ctx.Sim(0, 1), ctx.Sim(0, 2));
  EXPECT_GT(ctx.Sim(2, 3), ctx.Sim(1, 3));
  EXPECT_DOUBLE_EQ(ctx.Sim(0, 4), 0.0);  // disjoint vocabulary
}

TEST_F(NoveltySimilarityTest, SelfSimMatchesSim) {
  SimilarityContext ctx(*model_);
  for (DocId d = 0; d < 5; ++d) {
    EXPECT_NEAR(ctx.SelfSim(d), ctx.Sim(d, d), 1e-15);
  }
}

TEST_F(NoveltySimilarityTest, OlderDocumentsLoseSimilarity) {
  // The novelty effect (§3): as a document ages, its similarity with every
  // other document shrinks because Pr(d_i) shrinks.
  SimilarityContext before(*model_);
  const double sim_before = before.Sim(0, 1);

  model_->AdvanceTo(20.0);  // pure aging, no arrivals
  SimilarityContext after(*model_);
  const double sim_after = after.Sim(0, 1);

  // Both docs aged equally and Pr(t_k) is passage-invariant, but their
  // Pr(d) values are unchanged relative to tdw... similarity is invariant
  // under *uniform* aging. Add a fresh document to steal probability mass:
  corpus_.AddText("unrelated fresh story entirely", 20.0, 9);
  model_->AddDocuments({5});
  SimilarityContext diluted(*model_);
  EXPECT_LT(diluted.Sim(0, 1), sim_before);
  EXPECT_NEAR(sim_after, sim_before, 1e-9);
}

TEST_F(NoveltySimilarityTest, FreshDocPairOutscoresAgedPairOnEqualText) {
  // Two identical-text pairs, one old, one new: the new pair must score
  // higher under the forgetting model.
  Corpus corpus;
  corpus.AddText("alpha beta gamma", 0.0, 1);
  corpus.AddText("alpha beta gamma", 0.0, 1);
  corpus.AddText("alpha beta gamma", 10.0, 1);
  corpus.AddText("alpha beta gamma", 10.0, 1);
  ForgettingParams p;
  p.half_life_days = 7.0;
  p.life_span_days = 60.0;
  ForgettingModel model(&corpus, p);
  model.AddDocuments({0, 1});
  model.AdvanceTo(10.0);
  model.AddDocuments({2, 3});
  SimilarityContext ctx(model);
  EXPECT_GT(ctx.Sim(2, 3), ctx.Sim(0, 1));
  // And the mixed pair sits in between.
  EXPECT_GT(ctx.Sim(2, 3), ctx.Sim(0, 2));
  EXPECT_GT(ctx.Sim(0, 2), ctx.Sim(0, 1));
}

TEST_F(NoveltySimilarityTest, ContextSnapshotsActiveDocsOnly) {
  model_->RemoveDocument(2);
  SimilarityContext ctx(*model_);
  EXPECT_EQ(ctx.size(), 4u);
  EXPECT_FALSE(ctx.Contains(2));
  EXPECT_TRUE(ctx.Contains(0));
}

TEST(SimilarityContextParallelTest, ParallelBuildIsBitIdenticalToSerial) {
  // Enough documents to cross the parallel-build threshold.
  Corpus corpus;
  const char* pool[] = {"alpha", "bravo", "charlie", "delta", "echo",
                        "fox",   "golf",  "hotel",   "india", "juliet"};
  Rng rng(5);
  const size_t n = 400;
  for (size_t i = 0; i < n; ++i) {
    std::string text;
    for (int j = 0; j < 6; ++j) {
      if (j > 0) text += ' ';
      text += pool[rng.NextBounded(10)];
    }
    corpus.AddText(text, 0.01 * static_cast<double>(i),
                   static_cast<TopicId>(i % 3));
  }
  ForgettingParams p;
  p.life_span_days = 365.0;
  ForgettingModel model(&corpus, p);
  model.AdvanceTo(5.0);
  std::vector<DocId> ids(n);
  for (DocId d = 0; d < static_cast<DocId>(n); ++d) ids[d] = d;
  model.AddDocuments(ids);

  SimilarityContext serial(model, 1);
  SimilarityContext parallel(model, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (DocId d : ids) {
    EXPECT_EQ(serial.Psi(d), parallel.Psi(d)) << "doc " << d;
    EXPECT_EQ(serial.SelfSim(d), parallel.SelfSim(d)) << "doc " << d;
  }
}

TEST_F(NoveltySimilarityTest, EmptyDocumentHasZeroPsi) {
  Corpus corpus;
  corpus.AddText("the of and", 0.0);  // analyzes to nothing
  corpus.AddText("real content here", 0.0);
  ForgettingParams p;
  ForgettingModel model(&corpus, p);
  model.AddDocuments({0, 1});
  SimilarityContext ctx(model);
  EXPECT_DOUBLE_EQ(ctx.SelfSim(0), 0.0);
  EXPECT_DOUBLE_EQ(ctx.Sim(0, 1), 0.0);
}

}  // namespace
}  // namespace nidc
