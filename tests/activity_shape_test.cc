#include "nidc/synth/activity_shape.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::vector<TimeWindow> Windows() { return MakeWindows(0.0, 3, 10.0); }

TEST(ActivityShapeTest, FromWindowCountsSkipsZeros) {
  ActivityShape shape = ActivityShape::FromWindowCounts({5, 0, 3});
  EXPECT_EQ(shape.allocations().size(), 2u);
  EXPECT_EQ(shape.TotalCount(), 8u);
  EXPECT_EQ(shape.CountInWindow(0), 5u);
  EXPECT_EQ(shape.CountInWindow(1), 0u);
  EXPECT_EQ(shape.CountInWindow(2), 3u);
}

TEST(ActivityShapeTest, MultipleAllocationsSameWindowSum) {
  ActivityShape shape;
  shape.Add({1, 4, -1.0, -1.0});
  shape.Add({1, 6, 12.0, 15.0});
  EXPECT_EQ(shape.CountInWindow(1), 10u);
}

TEST(ActivityShapeTest, SampleTimesRespectWindows) {
  Rng rng(5);
  ActivityShape shape = ActivityShape::FromWindowCounts({10, 0, 20});
  auto times = shape.SampleTimes(Windows(), &rng);
  ASSERT_EQ(times.size(), 30u);
  size_t in_w1 = 0;
  size_t in_w3 = 0;
  for (DayTime t : times) {
    if (t >= 0.0 && t < 10.0) ++in_w1;
    if (t >= 20.0 && t < 30.0) ++in_w3;
  }
  EXPECT_EQ(in_w1, 10u);
  EXPECT_EQ(in_w3, 20u);
}

TEST(ActivityShapeTest, DayPinnedSamplesStayInRange) {
  Rng rng(7);
  ActivityShape shape;
  shape.Add({0, 50, 3.0, 5.0});
  for (DayTime t : shape.SampleTimes(Windows(), &rng)) {
    EXPECT_GE(t, 3.0);
    EXPECT_LT(t, 5.0);
  }
}

TEST(ActivityShapeTest, DayRangeClampedToWindow) {
  Rng rng(9);
  ActivityShape shape;
  // Range leaks past the window end; samples must be clamped to [8, 10).
  shape.Add({0, 50, 8.0, 14.0});
  for (DayTime t : shape.SampleTimes(Windows(), &rng)) {
    EXPECT_GE(t, 8.0);
    EXPECT_LT(t, 10.0);
  }
}

TEST(ActivityShapeTest, ScaledRoundsCounts) {
  ActivityShape shape = ActivityShape::FromWindowCounts({10, 4, 1});
  ActivityShape half = shape.Scaled(0.5);
  EXPECT_EQ(half.CountInWindow(0), 5u);
  EXPECT_EQ(half.CountInWindow(1), 2u);
  // 0.5 rounds to 0 or 1 depending on llround(0.5)=1.
  EXPECT_EQ(half.CountInWindow(2), 1u);
}

TEST(ActivityShapeTest, ScaledDropsZeroAllocations) {
  ActivityShape shape = ActivityShape::FromWindowCounts({1, 100});
  ActivityShape tiny = shape.Scaled(0.1);
  EXPECT_EQ(tiny.CountInWindow(0), 0u);
  EXPECT_EQ(tiny.CountInWindow(1), 10u);
  EXPECT_EQ(tiny.allocations().size(), 1u);
}

TEST(ActivityShapeTest, ScaleUpMultiplies) {
  ActivityShape shape = ActivityShape::FromWindowCounts({3, 5});
  ActivityShape doubled = shape.Scaled(2.0);
  EXPECT_EQ(doubled.TotalCount(), 16u);
}

TEST(ActivityShapeTest, SamplingIsDeterministicPerSeed) {
  ActivityShape shape = ActivityShape::FromWindowCounts({20});
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(shape.SampleTimes(Windows(), &a),
            shape.SampleTimes(Windows(), &b));
}

}  // namespace
}  // namespace nidc
