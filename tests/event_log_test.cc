#include "nidc/obs/event_log.h"

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"

namespace nidc {
namespace {

obs::Event MoveEvent(uint64_t doc, uint64_t from, uint64_t to) {
  obs::Event event;
  event.type = obs::EventType::kDocMoved;
  event.doc = doc;
  event.from_cluster = from;
  event.cluster_id = to;
  return event;
}

TEST(EventLogTest, EmitAssignsSequenceAndStep) {
  obs::EventLog log(8);
  log.SetStep(7);
  log.Emit(MoveEvent(1, 0, 2));
  log.Emit(MoveEvent(2, 2, 0));
  const std::vector<obs::Event> events = log.Recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 0u);
  EXPECT_EQ(events[1].sequence, 1u);
  EXPECT_EQ(events[0].step, 7u);
  EXPECT_EQ(events[1].step, 7u);
  EXPECT_GE(events[1].seconds, events[0].seconds);
}

TEST(EventLogTest, RingWrapDropsOldestAndCounts) {
  obs::EventLog log(4);
  for (uint64_t i = 0; i < 6; ++i) log.Emit(MoveEvent(i, 0, 1));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_emitted(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<obs::Event> events = log.Recent();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the two oldest (docs 0, 1) are gone.
  EXPECT_EQ(events.front().doc, 2u);
  EXPECT_EQ(events.back().doc, 5u);
}

TEST(EventLogTest, RecentCapsTheCount) {
  obs::EventLog log(8);
  for (uint64_t i = 0; i < 5; ++i) log.Emit(MoveEvent(i, 0, 1));
  const std::vector<obs::Event> events = log.Recent(2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].doc, 3u);
  EXPECT_EQ(events[1].doc, 4u);
}

TEST(EventLogTest, PublishesCountersWhenRegistrySupplied) {
  obs::MetricsRegistry registry;
  obs::EventLog log(2, &registry);
  // Counters exist (at zero) before any emission — snapshots taken early
  // still carry the events.* family.
  EXPECT_EQ(registry.GetCounter("events.emitted")->Value(), 0u);
  for (uint64_t i = 0; i < 3; ++i) log.Emit(MoveEvent(i, 0, 1));
  EXPECT_EQ(registry.GetCounter("events.emitted")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("events.dropped")->Value(), 1u);
}

TEST(EventLogTest, RenderJsonOmitsInapplicableFields) {
  obs::Event expired;
  expired.type = obs::EventType::kDocExpired;
  expired.doc = 42;
  const std::string json = obs::RenderEventJson(expired);
  EXPECT_NE(json.find("\"type\":\"doc_expired\""), std::string::npos);
  EXPECT_NE(json.find("\"doc\":42"), std::string::npos);
  EXPECT_EQ(json.find("cluster"), std::string::npos);

  obs::Event checkpoint;
  checkpoint.type = obs::EventType::kCheckpointCommitted;
  checkpoint.detail = 9;
  const std::string ckpt_json = obs::RenderEventJson(checkpoint);
  EXPECT_NE(ckpt_json.find("\"generation\":9"), std::string::npos);
}

TEST(EventLogTest, EveryTypeHasAStableName) {
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kClusterCreated),
               "cluster_created");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kClusterEmptied),
               "cluster_emptied");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kClusterReseeded),
               "cluster_reseeded");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kDocMoved), "doc_moved");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kDocExpired),
               "doc_expired");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kCheckpointCommitted),
               "checkpoint_committed");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kWalRotated),
               "wal_rotated");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kMetricAnomaly),
               "metric_anomaly");
}

TEST(EventLogTest, MetricAnomalyRendersSeriesValueAndZscore) {
  obs::Event anomaly;
  anomaly.type = obs::EventType::kMetricAnomaly;
  anomaly.label = "kmeans.moves";
  anomaly.value = 512.0;
  anomaly.zscore = 6.25;
  const std::string json = obs::RenderEventJson(anomaly);
  const Result<obs::JsonValue> parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->Find("type")->string_value, "metric_anomaly");
  EXPECT_EQ(parsed->Find("metric")->string_value, "kmeans.moves");
  EXPECT_DOUBLE_EQ(parsed->Find("value")->number, 512.0);
  EXPECT_DOUBLE_EQ(parsed->Find("zscore")->number, 6.25);
  // Cluster/doc fields stay omitted — the anomaly names a series.
  EXPECT_EQ(json.find("cluster"), std::string::npos);
  EXPECT_EQ(json.find("doc"), std::string::npos);
}

TEST(EventLogTest, DroppedCountSurvivesManyWraps) {
  // Regression for the events.dropped exposure: dropped() must equal
  // total_emitted() - retained across arbitrarily many wraps, and the
  // counter must match.
  obs::MetricsRegistry registry;
  obs::EventLog log(8, &registry);
  for (uint64_t i = 0; i < 1000; ++i) log.Emit(MoveEvent(i, 0, 1));
  EXPECT_EQ(log.total_emitted(), 1000u);
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.dropped(), 992u);
  EXPECT_EQ(registry.GetCounter("events.dropped")->Value(), 992u);
  EXPECT_EQ(log.Recent().front().doc, 992u);
}

TEST(EventLogTest, ExportJsonlWritesParseableLines) {
  obs::EventLog log(8);
  log.SetStep(3);
  log.Emit(MoveEvent(10, 1, 2));
  obs::Event expired;
  expired.type = obs::EventType::kDocExpired;
  expired.doc = 11;
  log.Emit(expired);

  const std::string path = testing::TempDir() + "/event_log_test.jsonl";
  ASSERT_TRUE(log.ExportJsonl(path).ok());

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const Result<obs::JsonValue> parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->is_object());
    EXPECT_NE(parsed->Find("type"), nullptr);
    EXPECT_NE(parsed->Find("seq"), nullptr);
    EXPECT_NE(parsed->Find("step"), nullptr);
  }
  EXPECT_EQ(lines, 2u);
}

TEST(EventLogTest, ConcurrentEmittersKeepSequenceDense) {
  obs::EventLog log(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) log.Emit(MoveEvent(i, 0, 1));
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.total_emitted(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<obs::Event> events = log.Recent();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i);
  }
}

}  // namespace
}  // namespace nidc
