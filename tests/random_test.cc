#include "nidc/util/random.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all of -3..3 hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, SampleDiscreteZeroWeightNeverChosen) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.SampleDiscrete(weights), 1u);
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(37);
  for (double mean : {0.5, 3.0, 12.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    const int k = rng.NextZipf(50, 1.1);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 50);
  }
}

TEST(RngTest, ZipfRankOneIsMostFrequent) {
  Rng rng(47);
  std::map<int, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(20, 1.0)];
  for (const auto& [rank, count] : counts) {
    if (rank == 1) continue;
    EXPECT_GT(counts[1], count) << "rank " << rank;
  }
}

TEST(RngTest, ZipfFrequencyRatioApproximatesPowerLaw) {
  Rng rng(53);
  std::map<int, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(100, 1.0)];
  // P(1)/P(2) should be ~2 for s=1.
  const double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(RngTest, ZipfSingletonSupport) {
  Rng rng(59);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextZipf(1, 1.2), 1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(67);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(30, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t s : sample) EXPECT_LT(s, 30u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(73);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(79);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t s : rng.SampleWithoutReplacement(10, 3)) ++hits[s];
  }
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(trials), 0.3, 0.02);
  }
}

}  // namespace
}  // namespace nidc
