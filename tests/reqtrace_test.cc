#include "nidc/obs/reqtrace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "nidc/obs/metrics.h"

namespace nidc::obs {
namespace {

TEST(TraceContextTest, HexRoundTrip) {
  TraceContext id;
  id.hi = 0x0123456789abcdefULL;
  id.lo = 0xfedcba9876543210ULL;
  const std::string hex = id.ToHex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  const TraceContext parsed = TraceContext::FromHex(hex);
  EXPECT_EQ(parsed, id);
}

TEST(TraceContextTest, TraceparentRoundTrip) {
  TraceContext id;
  id.hi = 0x00000000000000ffULL;
  id.lo = 0x1ULL;
  const std::string header = id.ToTraceparent();
  EXPECT_EQ(header.substr(0, 3), "00-");
  const TraceContext parsed = TraceContext::FromTraceparent(header);
  EXPECT_TRUE(parsed.valid());
  EXPECT_EQ(parsed, id);
}

TEST(TraceContextTest, FromTraceparentRejectsMalformedHeaders) {
  // Valid reference, then break one field at a time.
  const std::string ok =
      "00-0123456789abcdeffedcba9876543210-fedcba9876543210-01";
  EXPECT_TRUE(TraceContext::FromTraceparent(ok).valid());
  EXPECT_FALSE(TraceContext::FromTraceparent("").valid());
  EXPECT_FALSE(TraceContext::FromTraceparent("garbage").valid());
  // Forbidden version.
  EXPECT_FALSE(TraceContext::FromTraceparent(
                   "ff-0123456789abcdeffedcba9876543210-fedcba9876543210-01")
                   .valid());
  // All-zero trace id.
  EXPECT_FALSE(TraceContext::FromTraceparent(
                   "00-00000000000000000000000000000000-fedcba9876543210-01")
                   .valid());
  // Non-hex trace id.
  EXPECT_FALSE(TraceContext::FromTraceparent(
                   "00-0123456789abcdeffedcba987654321g-fedcba9876543210-01")
                   .valid());
  // Truncated parent id.
  EXPECT_FALSE(TraceContext::FromTraceparent(
                   "00-0123456789abcdeffedcba9876543210-fedcba98-01")
                   .valid());
  // Version 00 must not carry trailing data.
  EXPECT_FALSE(TraceContext::FromTraceparent(ok + "-extra").valid());
}

TEST(RequestTracerTest, MintsDistinctValidIds) {
  RequestTracer tracer;
  const TraceContext a = tracer.Mint();
  const TraceContext b = tracer.Mint();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a == b);
}

TEST(RequestTracerTest, StagesFoldIntoOrderedRecord) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kIngest, 1.0);
  tracer.RecordStage(id, Stage::kEnqueue, 1.5);
  tracer.RecordStage(id, Stage::kDequeue, 2.0);
  tracer.RecordStage(id, Stage::kWindowClose, 2.5);
  tracer.RecordStage(id, Stage::kStep, 3.0);

  TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(id, &record));
  EXPECT_EQ(record.tenant, "alpha");
  EXPECT_TRUE(record.completed);
  EXPECT_FALSE(record.resumed);
  ASSERT_EQ(record.stages.size(), 5u);
  EXPECT_EQ(record.stages.front().stage, Stage::kIngest);
  EXPECT_EQ(record.stages.back().stage, Stage::kStep);
  for (size_t i = 1; i < record.stages.size(); ++i) {
    EXPECT_GE(record.stages[i].seconds, record.stages[i - 1].seconds);
  }
  EXPECT_DOUBLE_EQ(record.StageSeconds(Stage::kDequeue), 2.0);
  EXPECT_DOUBLE_EQ(record.StageSeconds(Stage::kApply), -1.0);
  EXPECT_DOUBLE_EQ(record.EndToEndSeconds(), 2.0);
  EXPECT_EQ(tracer.traces_started(), 1u);
  EXPECT_EQ(tracer.traces_completed(), 1u);
}

TEST(RequestTracerTest, CompletionFiresCallbackAndMetrics) {
  MetricsRegistry registry;
  std::vector<std::pair<std::string, double>> completions;
  RequestTracer::Options options;
  options.metrics = &registry;
  options.on_complete = [&](const std::string& tenant, double e2e,
                            double /*now*/) {
    completions.emplace_back(tenant, e2e);
  };
  RequestTracer tracer(std::move(options));

  // Eager registration: the family exists before any trace.
  EXPECT_EQ(registry.GetCounter("pipeline.traces_started")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("pipeline.traces_completed")->Value(), 0u);

  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kEnqueue, 10.0);
  tracer.RecordStage(id, Stage::kStep, 10.25);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].first, "alpha");
  EXPECT_DOUBLE_EQ(completions[0].second, 0.25);
  EXPECT_EQ(registry.GetCounter("pipeline.traces_started")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("pipeline.traces_completed")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("pipeline.stage_events")->Value(), 2u);
}

TEST(RequestTracerTest, DocBindingsRecoverWindowTraces) {
  RequestTracer tracer;
  const TraceContext a = tracer.Mint();
  const TraceContext b = tracer.Mint();
  tracer.Begin(a, "alpha");
  tracer.Begin(b, "alpha");
  tracer.BindDoc("alpha", 1, a);
  tracer.BindDoc("alpha", 2, a);
  tracer.BindDoc("alpha", 3, b);
  tracer.BindDoc("bravo", 1, b);

  // Duplicate doc ids collapse to distinct traces; tenants are isolated.
  const auto traces = tracer.TracesForDocs("alpha", {1, 2, 3});
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0], a);
  EXPECT_EQ(traces[1], b);
  EXPECT_TRUE(tracer.TracesForDocs("bravo", {2, 3}).empty());
  EXPECT_TRUE(tracer.TracesForDocs("alpha", {99}).empty());
}

TEST(RequestTracerTest, StepScopeStampsActiveTraces) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kEnqueue, 1.0);
  {
    RequestTracer::StepScope scope(&tracer, {id});
    tracer.RecordActive(Stage::kWalCommit);
    tracer.RecordActive(Stage::kStep);
  }
  // Outside the scope the stamp is a no-op.
  tracer.RecordActive(Stage::kCheckpoint);

  TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(id, &record));
  EXPECT_TRUE(record.completed);
  ASSERT_EQ(record.stages.size(), 3u);
  EXPECT_EQ(record.stages[1].stage, Stage::kWalCommit);
  EXPECT_EQ(record.stages[2].stage, Stage::kStep);
}

TEST(RequestTracerTest, ShipmentRegistrationStampsApply) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kEnqueue, 1.0);
  {
    RequestTracer::StepScope scope(&tracer, {id});
    tracer.RecordActive(Stage::kShip);
    tracer.RegisterShipment(/*generation=*/3, /*sequence=*/7);
    tracer.RecordActive(Stage::kStep);
  }
  // The follower only knows the watermark — possibly on another thread.
  std::thread applier([&] { tracer.RecordApplied(3, 7); });
  applier.join();
  // An unknown watermark is a no-op (the cross-process case).
  tracer.RecordApplied(9, 9);

  TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(id, &record));
  ASSERT_FALSE(record.stages.empty());
  EXPECT_EQ(record.stages.back().stage, Stage::kApply);
  EXPECT_GE(record.StageSeconds(Stage::kApply), 0.0);
}

TEST(RequestTracerTest, MarkResumedFlagsTheRecord) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.MarkResumed(id);
  TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(id, &record));
  EXPECT_TRUE(record.resumed);
}

TEST(RequestTracerTest, AggregatesCarryExemplars) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kEnqueue, 1.0);
  tracer.RecordStage(id, Stage::kDequeue, 1.1);
  tracer.RecordStage(id, Stage::kStep, 1.2);

  auto aggregates = tracer.Aggregates();
  // Tenant "alpha" plus the all-tenant roll-up "".
  ASSERT_TRUE(aggregates.count("alpha"));
  ASSERT_TRUE(aggregates.count(""));
  const StageAggregate& dequeue =
      aggregates["alpha"][static_cast<size_t>(Stage::kDequeue)];
  EXPECT_EQ(dequeue.total, 1u);
  EXPECT_GT(dequeue.Quantile(0.5), 0.0);
  EXPECT_EQ(dequeue.ExemplarAt(0.99), id);
}

TEST(RequestTracerTest, CompletedFiltersByTenant) {
  RequestTracer tracer;
  for (int i = 0; i < 3; ++i) {
    const TraceContext id = tracer.Mint();
    tracer.Begin(id, i < 2 ? "alpha" : "bravo");
    tracer.RecordStage(id, Stage::kEnqueue, 1.0 + i);
    tracer.RecordStage(id, Stage::kStep, 1.5 + i);
  }
  EXPECT_EQ(tracer.Completed(10).size(), 3u);
  EXPECT_EQ(tracer.Completed(10, "alpha").size(), 2u);
  EXPECT_EQ(tracer.Completed(1, "alpha").size(), 1u);
  EXPECT_TRUE(tracer.Completed(10, "charlie").empty());
}

TEST(RequestTracerTest, TracezJsonAnswersUnknownTraceWithError) {
  RequestTracer tracer;
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  tracer.RecordStage(id, Stage::kEnqueue, 1.0);
  tracer.RecordStage(id, Stage::kStep, 1.5);

  const std::string known = tracer.RenderTracezJson(id.ToHex(), "", 10);
  EXPECT_NE(known.find(id.ToHex()), std::string::npos);
  EXPECT_NE(known.find("\"step\""), std::string::npos);

  const std::string unknown =
      tracer.RenderTracezJson(std::string(32, 'f'), "", 10);
  EXPECT_EQ(unknown.rfind("{\"error\"", 0), 0u);

  const std::string waterfall = tracer.RenderWaterfallJson();
  EXPECT_NE(waterfall.find("\"waterfall\""), std::string::npos);
  EXPECT_NE(waterfall.find("\"traces_completed\""), std::string::npos);
}

TEST(RequestTracerTest, RingOverrunCountsDropsInsteadOfBlocking) {
  RequestTracer::Options options;
  options.ring_capacity = 8;
  RequestTracer tracer(std::move(options));
  const TraceContext id = tracer.Mint();
  tracer.Begin(id, "alpha");
  // 64 stamps into an 8-slot ring with no fold in between: the writers
  // lap the fold cursor and the overwritten events must surface as drops,
  // never as a stall or a crash.
  for (int i = 0; i < 64; ++i) {
    tracer.RecordStage(id, Stage::kEnqueue, 1.0 + i);
  }
  TraceRecord record;
  ASSERT_TRUE(tracer.Lookup(id, &record));  // Lookup folds
  EXPECT_GT(tracer.stage_events_dropped(), 0u);
  EXPECT_LE(record.stages.size(), 8u);
}

TEST(RequestTracerTest, RecordTableIsBounded) {
  RequestTracer::Options options;
  options.max_records = 4;
  RequestTracer tracer(std::move(options));
  std::vector<TraceContext> ids;
  for (int i = 0; i < 10; ++i) {
    const TraceContext id = tracer.Mint();
    ids.push_back(id);
    tracer.Begin(id, "alpha");
  }
  TraceRecord record;
  EXPECT_FALSE(tracer.Lookup(ids.front(), &record));  // evicted
  EXPECT_TRUE(tracer.Lookup(ids.back(), &record));
  EXPECT_EQ(tracer.traces_started(), 10u);
}

TEST(RequestTracerTest, ConcurrentStampsSurviveTsan) {
  MetricsRegistry registry;
  RequestTracer::Options options;
  options.metrics = &registry;
  RequestTracer tracer(std::move(options));
  std::vector<TraceContext> ids;
  for (int i = 0; i < 4; ++i) {
    const TraceContext id = tracer.Mint();
    tracer.Begin(id, "t" + std::to_string(i));
    ids.push_back(id);
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        tracer.RecordStage(ids[t], Stage::kEnqueue);
        tracer.RecordStage(ids[t], Stage::kStep);
      }
    });
  }
  // A concurrent reader folds while the writers stamp.
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) {
      tracer.Aggregates();
    }
  });
  for (auto& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(tracer.traces_started(), 4u);
  EXPECT_GE(tracer.traces_completed(), 4u);
}

}  // namespace
}  // namespace nidc::obs
