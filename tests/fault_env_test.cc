#include "nidc/util/fault_env.h"

#include <string>

#include <gtest/gtest.h>

namespace nidc {
namespace {

std::string TestDir() {
  const std::string dir = testing::TempDir() + "/nidc_fault_env_test";
  Env::Default()->CreateDir(dir);
  return dir;
}

TEST(FaultEnvTest, PassesThroughWhenDisarmed) {
  FaultInjectionEnv env(Env::Default());
  const std::string path = TestDir() + "/passthrough";
  ASSERT_TRUE(AtomicWriteFile(&env, path, "payload").ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
  EXPECT_FALSE(env.crashed());
  EXPECT_GT(env.ops_issued(), 0u);
  env.RemoveFile(path);
}

TEST(FaultEnvTest, UnsyncedBytesInvisibleUntilSync) {
  // The fault env buffers appends; the base filesystem must not see them
  // before Sync — that is what makes kDropUnsynced meaningful.
  FaultInjectionEnv env(Env::Default());
  const std::string path = TestDir() + "/buffered";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("buffered bytes").ok());
  auto before = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, "");
  ASSERT_TRUE((*file)->Sync().ok());
  auto after = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "buffered bytes");
  ASSERT_TRUE((*file)->Close().ok());
  env.RemoveFile(path);
}

TEST(FaultEnvTest, CrashAtNthOpFailsThatAndAllLaterOps) {
  FaultInjectionEnv env(Env::Default());
  const std::string path = TestDir() + "/crash_counting";
  env.ArmCrashAtOp(3);  // open is op 1, first append op 2, second append op 3
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("a").ok());
  const Status crashed = (*file)->Append("b");
  EXPECT_FALSE(crashed.ok());
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env.NewWritableFile(TestDir() + "/other", true).ok());
  EXPECT_FALSE(env.RenameFile(path, path + "2").ok());
}

TEST(FaultEnvTest, DropUnsyncedLosesTail) {
  const std::string path = TestDir() + "/drop";
  Env::Default()->RemoveFile(path);
  FaultInjectionEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("doomed").ok());
  env.ArmCrashAtOp(1, CrashFlush::kDropUnsynced);
  EXPECT_FALSE((*file)->Sync().ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "durable|");
}

TEST(FaultEnvTest, KeepUnsyncedPreservesBufferedTail) {
  const std::string path = TestDir() + "/keep";
  Env::Default()->RemoveFile(path);
  FaultInjectionEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("synced|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("unsynced").ok());
  env.ArmCrashAtOp(1, CrashFlush::kKeepUnsynced);
  EXPECT_FALSE((*file)->Sync().ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "synced|unsynced");
}

TEST(FaultEnvTest, TornWriteKeepsStrictPrefixOfUnsyncedBytes) {
  const std::string path = TestDir() + "/torn";
  Env::Default()->RemoveFile(path);
  FaultInjectionEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("head|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  env.ArmCrashAtOp(1, CrashFlush::kTornWrite);
  EXPECT_FALSE((*file)->Sync().ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // The synced prefix survives untouched; some strict prefix of the
  // unsynced tail may follow.
  ASSERT_GE(contents->size(), 5u);
  EXPECT_EQ(contents->substr(0, 5), "head|");
  EXPECT_LT(contents->size(), 15u);
  EXPECT_EQ(*contents, std::string("head|0123456789").substr(
                           0, contents->size()));
}

TEST(FaultEnvTest, CrashedRenameNeverHappened) {
  Env* base = Env::Default();
  const std::string from = TestDir() + "/rename_from";
  const std::string to = TestDir() + "/rename_to";
  ASSERT_TRUE(AtomicWriteFile(base, from, "new").ok());
  ASSERT_TRUE(AtomicWriteFile(base, to, "old").ok());
  FaultInjectionEnv env(base);
  env.ArmCrashAtOp(1);
  EXPECT_FALSE(env.RenameFile(from, to).ok());
  auto contents = base->ReadFileToString(to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "old");
  EXPECT_TRUE(base->FileExists(from));
  base->RemoveFile(from);
  base->RemoveFile(to);
}

TEST(FaultEnvTest, DisarmCancelsPendingCrash) {
  FaultInjectionEnv env(Env::Default());
  env.ArmCrashAtOp(1);
  env.Disarm();
  const std::string path = TestDir() + "/disarmed";
  EXPECT_TRUE(AtomicWriteFile(&env, path, "fine").ok());
  EXPECT_FALSE(env.crashed());
  env.RemoveFile(path);
}

}  // namespace
}  // namespace nidc
