// End-to-end smoke of the live introspection stack: a real incremental
// clustering run with the event log, health monitor and metrics registry
// wired in, served over an in-process HttpServer, scraped with a raw
// socket client mid-run.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "nidc/core/incremental_clusterer.h"
#include "nidc/obs/cluster_health.h"
#include "nidc/obs/event_log.h"
#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/profiler.h"
#include "nidc/obs/provenance.h"
#include "nidc/obs/timeseries.h"
#include "nidc/serve/http_server.h"
#include "nidc/serve/introspection.h"

namespace nidc {
namespace {

struct FetchResult {
  bool ok = false;
  int status = 0;
  std::string body;
};

FetchResult Fetch(uint16_t port, const std::string& target) {
  FetchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return result;
  result.status = std::atoi(response.c_str() + space + 1);
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.body = response.substr(body_start + 4);
  }
  result.ok = true;
  return result;
}

class ServeSmokeTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions baghdad embargo", 0.0, 1);
    corpus_.AddText("olympics skating nagano medal", 0.0, 2);
    corpus_.AddText("olympics hockey nagano final", 1.0, 2);
    corpus_.AddText("tobacco settlement senate lawsuit", 1.0, 3);
    corpus_.AddText("tobacco lawsuit vote senate", 2.0, 3);
  }

  Corpus corpus_;
};

TEST_F(ServeSmokeTest, EndpointsServeALiveRun) {
  obs::MetricsRegistry registry;
  obs::EventLog events(1024, &registry);
  obs::ClusterHealthOptions health_options;
  health_options.metrics = &registry;
  obs::ClusterHealthMonitor health(health_options);
  serve::StatusBoard board;
  obs::TimeSeriesStore::Options ts_options;
  ts_options.metrics = &registry;
  ts_options.events = &events;
  obs::TimeSeriesStore timeseries(ts_options);
  obs::PhaseProfiler profiler;
  obs::ScopedProfilerInstall install_profiler(&profiler);
  obs::ProvenanceLog provenance(256, &registry);

  serve::HttpServer server(&registry);
  serve::IntrospectionOptions introspection;
  introspection.metrics = &registry;
  introspection.events = &events;
  introspection.health = &health;
  introspection.board = &board;
  introspection.timeseries = &timeseries;
  introspection.profiler = &profiler;
  introspection.provenance = &provenance;
  serve::RegisterIntrospectionEndpoints(&server, introspection);
  ASSERT_TRUE(server.Start(0).ok());

  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 14.0;
  IncrementalOptions options;
  options.kmeans.k = 3;
  options.kmeans.seed = 3;
  options.metrics = &registry;
  options.events = &events;
  options.health = &health;
  options.provenance = &provenance;
  IncrementalClusterer clusterer(&corpus_, params, options);

  const std::vector<std::vector<DocId>> batches = {{0, 1}, {2, 3}, {4, 5}};
  uint64_t step_index = 0;
  for (const std::vector<DocId>& batch : batches) {
    profiler.SetStep(step_index);
    auto result = clusterer.Step(batch, static_cast<double>(step_index));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    timeseries.ObserveStep(step_index);
    serve::StatusBoard::StepRecord record;
    record.step = step_index;
    record.num_new = result->num_new;
    record.num_active = result->num_active;
    record.num_outliers = result->num_outliers;
    record.num_clusters = result->clustering.NumNonEmpty();
    record.iterations = result->iterations;
    record.g = result->final_g;
    board.RecordStep(record);
    ++step_index;

    // Scrape while the pipeline is mid-run, after every step.
    const FetchResult healthz = Fetch(server.port(), "/healthz");
    ASSERT_TRUE(healthz.ok);
    EXPECT_EQ(healthz.status, 200);
  }

  // /healthz: alive, step count matches.
  const FetchResult healthz = Fetch(server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status, 200);
  const Result<obs::JsonValue> health_json = obs::ParseJson(healthz.body);
  ASSERT_TRUE(health_json.ok()) << healthz.body;
  ASSERT_NE(health_json->Find("status"), nullptr);
  EXPECT_EQ(health_json->Find("status")->string_value, "ok");
  ASSERT_NE(health_json->Find("steps"), nullptr);
  EXPECT_EQ(health_json->Find("steps")->number, 3.0);
  // Replication fields are always present; without a RecordReplication
  // the role is standalone with zero lag.
  ASSERT_NE(health_json->Find("role"), nullptr);
  EXPECT_EQ(health_json->Find("role")->string_value, "standalone");
  ASSERT_NE(health_json->Find("replication_lag_records"), nullptr);
  EXPECT_EQ(health_json->Find("replication_lag_records")->number, 0.0);
  ASSERT_NE(health_json->Find("last_ship_age_s"), nullptr);

  // A published replication status shows up on the next scrape.
  serve::ReplicationStatus replication;
  replication.enabled = true;
  replication.role = "leader";
  replication.generation = 4;
  replication.replication_lag_records = 2;
  replication.last_ship_age_seconds = 0.25;
  replication.followers = 1;
  board.RecordReplication(replication);
  const FetchResult repl_healthz = Fetch(server.port(), "/healthz");
  ASSERT_TRUE(repl_healthz.ok);
  const Result<obs::JsonValue> repl_json = obs::ParseJson(repl_healthz.body);
  ASSERT_TRUE(repl_json.ok()) << repl_healthz.body;
  ASSERT_NE(repl_json->Find("role"), nullptr);
  EXPECT_EQ(repl_json->Find("role")->string_value, "leader");
  EXPECT_EQ(repl_json->Find("replication_lag_records")->number, 2.0);
  EXPECT_EQ(repl_json->Find("replication_generation")->number, 4.0);
  EXPECT_EQ(repl_json->Find("followers")->number, 1.0);

  // /statusz: step digest, G tail, health section with cluster rows.
  const FetchResult statusz = Fetch(server.port(), "/statusz");
  ASSERT_TRUE(statusz.ok);
  EXPECT_EQ(statusz.status, 200);
  const Result<obs::JsonValue> status_json = obs::ParseJson(statusz.body);
  ASSERT_TRUE(status_json.ok()) << statusz.body;
  ASSERT_NE(status_json->Find("step"), nullptr);
  EXPECT_EQ(status_json->Find("step")->number, 2.0);
  const obs::JsonValue* g_tail = status_json->Find("g_tail");
  ASSERT_NE(g_tail, nullptr);
  EXPECT_EQ(g_tail->array.size(), 3u);
  const obs::JsonValue* health_section = status_json->Find("health");
  ASSERT_NE(health_section, nullptr);
  EXPECT_NE(health_section->Find("mean_drift"), nullptr);
  const obs::JsonValue* clusters = status_json->Find("clusters");
  ASSERT_NE(clusters, nullptr);
  EXPECT_FALSE(clusters->array.empty());

  // /metrics: Prometheus text with the health/events/serve families.
  const FetchResult metrics = Fetch(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("health_topic_drift"), std::string::npos);
  EXPECT_NE(metrics.body.find("events_emitted"), std::string::npos);
  EXPECT_NE(metrics.body.find("serve_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("kmeans_runs"), std::string::npos);

  // /eventsz: the run emitted cluster_created events, and ?n= caps.
  const FetchResult eventsz = Fetch(server.port(), "/eventsz");
  ASSERT_TRUE(eventsz.ok);
  EXPECT_EQ(eventsz.status, 200);
  EXPECT_NE(eventsz.body.find("cluster_created"), std::string::npos);
  const FetchResult capped = Fetch(server.port(), "/eventsz?n=1");
  ASSERT_TRUE(capped.ok);
  const Result<obs::JsonValue> capped_json = obs::ParseJson(capped.body);
  ASSERT_TRUE(capped_json.ok()) << capped.body;
  const obs::JsonValue* capped_events = capped_json->Find("events");
  ASSERT_NE(capped_events, nullptr);
  EXPECT_EQ(capped_events->array.size(), 1u);

  // /timeseriesz: series list, then one metric's raw windows — the run
  // observed 3 steps, so the per-step resolution holds 3 windows.
  const FetchResult ts_list = Fetch(server.port(), "/timeseriesz");
  ASSERT_TRUE(ts_list.ok);
  EXPECT_EQ(ts_list.status, 200);
  const Result<obs::JsonValue> ts_list_json = obs::ParseJson(ts_list.body);
  ASSERT_TRUE(ts_list_json.ok()) << ts_list.body;
  const obs::JsonValue* series_names = ts_list_json->Find("series");
  ASSERT_NE(series_names, nullptr);
  EXPECT_FALSE(series_names->array.empty());
  EXPECT_EQ(ts_list_json->Find("observations")->number, 3.0);
  const FetchResult ts_metric =
      Fetch(server.port(), "/timeseriesz?metric=step.docs_new&res=1");
  ASSERT_TRUE(ts_metric.ok);
  EXPECT_EQ(ts_metric.status, 200);
  const Result<obs::JsonValue> ts_json = obs::ParseJson(ts_metric.body);
  ASSERT_TRUE(ts_json.ok()) << ts_metric.body;
  EXPECT_EQ(ts_json->Find("metric")->string_value, "step.docs_new");
  const obs::JsonValue* windows = ts_json->Find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), 3u);
  // Two fresh documents arrived every step.
  EXPECT_DOUBLE_EQ(windows->array[0].Find("mean")->number, 2.0);
  EXPECT_DOUBLE_EQ(windows->array[2].Find("max")->number, 2.0);
  const FetchResult ts_unknown =
      Fetch(server.port(), "/timeseriesz?metric=no.such.series");
  ASSERT_TRUE(ts_unknown.ok);
  EXPECT_EQ(ts_unknown.status, 404);
  const FetchResult ts_bad_res =
      Fetch(server.port(), "/timeseriesz?metric=step.docs_new&res=7");
  ASSERT_TRUE(ts_bad_res.ok);
  EXPECT_EQ(ts_bad_res.status, 404);

  // /profilez: phase table JSON, collapsed flamegraph text, chrome trace.
  const FetchResult profilez = Fetch(server.port(), "/profilez");
  ASSERT_TRUE(profilez.ok);
  EXPECT_EQ(profilez.status, 200);
  const Result<obs::JsonValue> profile_json = obs::ParseJson(profilez.body);
  ASSERT_TRUE(profile_json.ok()) << profilez.body;
  EXPECT_GT(profile_json->Find("spans")->number, 0.0);
  const obs::JsonValue* totals = profile_json->Find("totals");
  ASSERT_NE(totals, nullptr);
  ASSERT_FALSE(totals->array.empty());
  EXPECT_NE(totals->array[0].Find("path"), nullptr);
  const FetchResult collapsed =
      Fetch(server.port(), "/profilez?format=collapsed");
  ASSERT_TRUE(collapsed.ok);
  EXPECT_EQ(collapsed.status, 200);
  EXPECT_NE(collapsed.body.find("kmeans.run"), std::string::npos);
  const FetchResult chrome = Fetch(server.port(), "/profilez?format=chrome");
  ASSERT_TRUE(chrome.ok);
  EXPECT_EQ(chrome.status, 200);
  const Result<obs::JsonValue> chrome_json = obs::ParseJson(chrome.body);
  ASSERT_TRUE(chrome_json.ok()) << chrome.body;
  EXPECT_FALSE(chrome_json->Find("traceEvents")->array.empty());
  const FetchResult bad_format =
      Fetch(server.port(), "/profilez?format=bogus");
  ASSERT_TRUE(bad_format.ok);
  EXPECT_EQ(bad_format.status, 404);

  // /explainz: summary, per-doc lookup, and the 404 paths.
  const FetchResult explain_summary = Fetch(server.port(), "/explainz");
  ASSERT_TRUE(explain_summary.ok);
  EXPECT_EQ(explain_summary.status, 200);
  const Result<obs::JsonValue> summary_json =
      obs::ParseJson(explain_summary.body);
  ASSERT_TRUE(summary_json.ok()) << explain_summary.body;
  EXPECT_GT(summary_json->Find("recorded")->number, 0.0);
  ASSERT_NE(summary_json->Find("recent"), nullptr);
  EXPECT_FALSE(summary_json->Find("recent")->array.empty());
  const FetchResult explain_doc = Fetch(server.port(), "/explainz?doc=0");
  ASSERT_TRUE(explain_doc.ok);
  EXPECT_EQ(explain_doc.status, 200);
  const Result<obs::JsonValue> doc_json = obs::ParseJson(explain_doc.body);
  ASSERT_TRUE(doc_json.ok()) << explain_doc.body;
  EXPECT_EQ(doc_json->Find("doc")->number, 0.0);
  ASSERT_NE(doc_json->Find("verdict"), nullptr);
  ASSERT_NE(doc_json->Find("margin"), nullptr);
  const FetchResult explain_missing =
      Fetch(server.port(), "/explainz?doc=99999");
  ASSERT_TRUE(explain_missing.ok);
  EXPECT_EQ(explain_missing.status, 404);
  const FetchResult explain_malformed =
      Fetch(server.port(), "/explainz?doc=banana");
  ASSERT_TRUE(explain_malformed.ok);
  EXPECT_EQ(explain_malformed.status, 404);

  server.Stop();
}

TEST_F(ServeSmokeTest, HealthzGoesStaleWithoutSteps) {
  serve::StatusBoard board;
  serve::HttpServer server;
  serve::IntrospectionOptions introspection;
  introspection.board = &board;
  introspection.stale_after_seconds = 0.0;  // everything is stale
  serve::RegisterIntrospectionEndpoints(&server, introspection);
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult healthz = Fetch(server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status, 503);
  EXPECT_NE(healthz.body.find("stale"), std::string::npos);
  server.Stop();
}

TEST_F(ServeSmokeTest, StatusBeforeFirstStepReportsNotStarted) {
  serve::StatusBoard board;
  serve::IntrospectionOptions introspection;
  introspection.board = &board;
  const std::string rendered = serve::RenderStatusJson(introspection);
  const Result<obs::JsonValue> parsed = obs::ParseJson(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered;
  ASSERT_NE(parsed->Find("started"), nullptr);
  EXPECT_FALSE(parsed->Find("started")->bool_value);
}

}  // namespace
}  // namespace nidc
