// End-to-end smoke of the live introspection stack: a real incremental
// clustering run with the event log, health monitor and metrics registry
// wired in, served over an in-process HttpServer, scraped with a raw
// socket client mid-run.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "nidc/core/incremental_clusterer.h"
#include "nidc/obs/cluster_health.h"
#include "nidc/obs/event_log.h"
#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"
#include "nidc/serve/http_server.h"
#include "nidc/serve/introspection.h"

namespace nidc {
namespace {

struct FetchResult {
  bool ok = false;
  int status = 0;
  std::string body;
};

FetchResult Fetch(uint16_t port, const std::string& target) {
  FetchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return result;
  result.status = std::atoi(response.c_str() + space + 1);
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.body = response.substr(body_start + 4);
  }
  result.ok = true;
  return result;
}

class ServeSmokeTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_.AddText("iraq weapons inspection baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions baghdad embargo", 0.0, 1);
    corpus_.AddText("olympics skating nagano medal", 0.0, 2);
    corpus_.AddText("olympics hockey nagano final", 1.0, 2);
    corpus_.AddText("tobacco settlement senate lawsuit", 1.0, 3);
    corpus_.AddText("tobacco lawsuit vote senate", 2.0, 3);
  }

  Corpus corpus_;
};

TEST_F(ServeSmokeTest, EndpointsServeALiveRun) {
  obs::MetricsRegistry registry;
  obs::EventLog events(1024, &registry);
  obs::ClusterHealthOptions health_options;
  health_options.metrics = &registry;
  obs::ClusterHealthMonitor health(health_options);
  serve::StatusBoard board;

  serve::HttpServer server(&registry);
  serve::IntrospectionOptions introspection;
  introspection.metrics = &registry;
  introspection.events = &events;
  introspection.health = &health;
  introspection.board = &board;
  serve::RegisterIntrospectionEndpoints(&server, introspection);
  ASSERT_TRUE(server.Start(0).ok());

  ForgettingParams params;
  params.half_life_days = 7.0;
  params.life_span_days = 14.0;
  IncrementalOptions options;
  options.kmeans.k = 3;
  options.kmeans.seed = 3;
  options.metrics = &registry;
  options.events = &events;
  options.health = &health;
  IncrementalClusterer clusterer(&corpus_, params, options);

  const std::vector<std::vector<DocId>> batches = {{0, 1}, {2, 3}, {4, 5}};
  uint64_t step_index = 0;
  for (const std::vector<DocId>& batch : batches) {
    auto result = clusterer.Step(batch, static_cast<double>(step_index));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    serve::StatusBoard::StepRecord record;
    record.step = step_index;
    record.num_new = result->num_new;
    record.num_active = result->num_active;
    record.num_outliers = result->num_outliers;
    record.num_clusters = result->clustering.NumNonEmpty();
    record.iterations = result->iterations;
    record.g = result->final_g;
    board.RecordStep(record);
    ++step_index;

    // Scrape while the pipeline is mid-run, after every step.
    const FetchResult healthz = Fetch(server.port(), "/healthz");
    ASSERT_TRUE(healthz.ok);
    EXPECT_EQ(healthz.status, 200);
  }

  // /healthz: alive, step count matches.
  const FetchResult healthz = Fetch(server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status, 200);
  const Result<obs::JsonValue> health_json = obs::ParseJson(healthz.body);
  ASSERT_TRUE(health_json.ok()) << healthz.body;
  ASSERT_NE(health_json->Find("status"), nullptr);
  EXPECT_EQ(health_json->Find("status")->string_value, "ok");
  ASSERT_NE(health_json->Find("steps"), nullptr);
  EXPECT_EQ(health_json->Find("steps")->number, 3.0);

  // /statusz: step digest, G tail, health section with cluster rows.
  const FetchResult statusz = Fetch(server.port(), "/statusz");
  ASSERT_TRUE(statusz.ok);
  EXPECT_EQ(statusz.status, 200);
  const Result<obs::JsonValue> status_json = obs::ParseJson(statusz.body);
  ASSERT_TRUE(status_json.ok()) << statusz.body;
  ASSERT_NE(status_json->Find("step"), nullptr);
  EXPECT_EQ(status_json->Find("step")->number, 2.0);
  const obs::JsonValue* g_tail = status_json->Find("g_tail");
  ASSERT_NE(g_tail, nullptr);
  EXPECT_EQ(g_tail->array.size(), 3u);
  const obs::JsonValue* health_section = status_json->Find("health");
  ASSERT_NE(health_section, nullptr);
  EXPECT_NE(health_section->Find("mean_drift"), nullptr);
  const obs::JsonValue* clusters = status_json->Find("clusters");
  ASSERT_NE(clusters, nullptr);
  EXPECT_FALSE(clusters->array.empty());

  // /metrics: Prometheus text with the health/events/serve families.
  const FetchResult metrics = Fetch(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("health_topic_drift"), std::string::npos);
  EXPECT_NE(metrics.body.find("events_emitted"), std::string::npos);
  EXPECT_NE(metrics.body.find("serve_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("kmeans_runs"), std::string::npos);

  // /eventsz: the run emitted cluster_created events, and ?n= caps.
  const FetchResult eventsz = Fetch(server.port(), "/eventsz");
  ASSERT_TRUE(eventsz.ok);
  EXPECT_EQ(eventsz.status, 200);
  EXPECT_NE(eventsz.body.find("cluster_created"), std::string::npos);
  const FetchResult capped = Fetch(server.port(), "/eventsz?n=1");
  ASSERT_TRUE(capped.ok);
  const Result<obs::JsonValue> capped_json = obs::ParseJson(capped.body);
  ASSERT_TRUE(capped_json.ok()) << capped.body;
  const obs::JsonValue* capped_events = capped_json->Find("events");
  ASSERT_NE(capped_events, nullptr);
  EXPECT_EQ(capped_events->array.size(), 1u);

  server.Stop();
}

TEST_F(ServeSmokeTest, HealthzGoesStaleWithoutSteps) {
  serve::StatusBoard board;
  serve::HttpServer server;
  serve::IntrospectionOptions introspection;
  introspection.board = &board;
  introspection.stale_after_seconds = 0.0;  // everything is stale
  serve::RegisterIntrospectionEndpoints(&server, introspection);
  ASSERT_TRUE(server.Start(0).ok());
  const FetchResult healthz = Fetch(server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status, 503);
  EXPECT_NE(healthz.body.find("stale"), std::string::npos);
  server.Stop();
}

TEST_F(ServeSmokeTest, StatusBeforeFirstStepReportsNotStarted) {
  serve::StatusBoard board;
  serve::IntrospectionOptions introspection;
  introspection.board = &board;
  const std::string rendered = serve::RenderStatusJson(introspection);
  const Result<obs::JsonValue> parsed = obs::ParseJson(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered;
  ASSERT_NE(parsed->Find("started"), nullptr);
  EXPECT_FALSE(parsed->Find("started")->bool_value);
}

}  // namespace
}  // namespace nidc
