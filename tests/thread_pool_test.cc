#include "nidc/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // 0 resolves to hardware concurrency (>= 1).
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ResolveDecodesAuto) {
  EXPECT_EQ(ThreadPool::Resolve(0), ThreadPool::DefaultThreads());
  EXPECT_EQ(ThreadPool::Resolve(3), 3u);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, 7, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForOverEmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForOverOneElementRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(1, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, GrainZeroIsClampedToOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.ParallelFor(10, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(100, 1,
                         [](size_t begin, size_t) {
                           if (begin == 42) {
                             throw std::runtime_error("chunk 42 failed");
                           }
                         }),
        std::runtime_error);
    // The pool stays usable after a failed ParallelFor.
    std::atomic<size_t> total{0};
    pool.ParallelFor(10, 1, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 10u);
  }
}

TEST(ThreadPoolTest, StatsCountFanOutWork) {
  const ThreadPool::Stats before_global = ThreadPool::GlobalStats();
  {
    ThreadPool pool(4);
    const ThreadPool::Stats fresh = pool.stats();
    EXPECT_EQ(fresh.tasks_executed, 0u);
    EXPECT_EQ(fresh.parallel_fors, 0u);
    pool.ParallelFor(1000, 1, [](size_t, size_t) {});
    pool.ParallelFor(1000, 1, [](size_t, size_t) {});
    // parallel_fors and queue_high_water update synchronously in the
    // caller; tasks_executed lands on worker threads, so it is only
    // asserted after the join below.
    const ThreadPool::Stats after = pool.stats();
    EXPECT_EQ(after.parallel_fors, 2u);
    EXPECT_GT(after.queue_high_water, 0u);
  }
  // The process-wide aggregate outlives the pool, and the destructor's
  // join makes every worker-side increment visible.
  const ThreadPool::Stats after_global = ThreadPool::GlobalStats();
  EXPECT_GE(after_global.parallel_fors, before_global.parallel_fors + 2);
  EXPECT_GT(after_global.tasks_executed, before_global.tasks_executed);
}

TEST(ThreadPoolTest, InlineRunsAreNotCountedAsFanOuts) {
  ThreadPool pool(1);
  pool.ParallelFor(100, 1, [](size_t, size_t) {});
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.parallel_fors, 0u);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(ThreadPoolTest, ResultsMatchSerialSum) {
  const size_t n = 4096;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 1.0);
  // Disjoint output slots: each chunk writes its own partials, so the
  // parallel result is bit-identical to the serial one.
  std::vector<double> doubled_serial(n);
  for (size_t i = 0; i < n; ++i) doubled_serial[i] = values[i] * 2.0;
  std::vector<double> doubled(n);
  ThreadPool pool(8);
  pool.ParallelFor(n, 128, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) doubled[i] = values[i] * 2.0;
  });
  EXPECT_EQ(doubled, doubled_serial);
}

}  // namespace
}  // namespace nidc
