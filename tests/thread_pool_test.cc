#include "nidc/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // 0 resolves to hardware concurrency (>= 1).
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ResolveDecodesAuto) {
  EXPECT_EQ(ThreadPool::Resolve(0), ThreadPool::DefaultThreads());
  EXPECT_EQ(ThreadPool::Resolve(3), 3u);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, 7, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForOverEmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForOverOneElementRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(1, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, GrainZeroIsClampedToOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.ParallelFor(10, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(100, 1,
                         [](size_t begin, size_t) {
                           if (begin == 42) {
                             throw std::runtime_error("chunk 42 failed");
                           }
                         }),
        std::runtime_error);
    // The pool stays usable after a failed ParallelFor.
    std::atomic<size_t> total{0};
    pool.ParallelFor(10, 1, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 10u);
  }
}

TEST(ThreadPoolTest, ResultsMatchSerialSum) {
  const size_t n = 4096;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 1.0);
  // Disjoint output slots: each chunk writes its own partials, so the
  // parallel result is bit-identical to the serial one.
  std::vector<double> doubled_serial(n);
  for (size_t i = 0; i < n; ++i) doubled_serial[i] = values[i] * 2.0;
  std::vector<double> doubled(n);
  ThreadPool pool(8);
  pool.ParallelFor(n, 128, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) doubled[i] = values[i] * 2.0;
  });
  EXPECT_EQ(doubled, doubled_serial);
}

}  // namespace
}  // namespace nidc
