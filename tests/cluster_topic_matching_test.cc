#include "nidc/eval/cluster_topic_matching.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

class MatchingTest : public testing::Test {
 protected:
  void SetUp() override {
    // 10 documents: topic 1 x5, topic 2 x3, unlabeled x2.
    for (int i = 0; i < 5; ++i) docs_.push_back(corpus_.AddText("t1 doc", 0.0, 1));
    for (int i = 0; i < 3; ++i) docs_.push_back(corpus_.AddText("t2 doc", 0.0, 2));
    for (int i = 0; i < 2; ++i) docs_.push_back(corpus_.AddText("no topic", 0.0));
  }
  Corpus corpus_;
  std::vector<DocId> docs_;
};

TEST_F(MatchingTest, PureClusterIsMarked) {
  // Cluster of 4 topic-1 docs: precision 1.0, recall 4/5.
  std::vector<std::vector<DocId>> clusters = {{0, 1, 2, 3}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_TRUE(marked[0].marked());
  EXPECT_EQ(marked[0].topic, 1);
  EXPECT_DOUBLE_EQ(marked[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(marked[0].recall, 0.8);
  EXPECT_EQ(marked[0].table.a, 4u);
  EXPECT_EQ(marked[0].table.b, 0u);
  EXPECT_EQ(marked[0].table.c, 1u);
  EXPECT_EQ(marked[0].table.d, 5u);
}

TEST_F(MatchingTest, MixedClusterAboveThresholdMarked) {
  // 3 of topic 1 + 2 of topic 2: precision 0.6 == threshold -> marked.
  std::vector<std::vector<DocId>> clusters = {{0, 1, 2, 5, 6}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_TRUE(marked[0].marked());
  EXPECT_EQ(marked[0].topic, 1);
  EXPECT_DOUBLE_EQ(marked[0].precision, 0.6);
}

TEST_F(MatchingTest, BelowThresholdUnmarked) {
  // 2+2 split: best precision 0.5 < 0.6.
  std::vector<std::vector<DocId>> clusters = {{0, 1, 5, 6}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_FALSE(marked[0].marked());
  EXPECT_EQ(marked[0].topic, kNoTopic);
  EXPECT_EQ(marked[0].cluster_size, 4u);
}

TEST_F(MatchingTest, ThresholdIsConfigurable) {
  std::vector<std::vector<DocId>> clusters = {{0, 1, 5, 6}};
  MatchingOptions opts;
  opts.precision_threshold = 0.5;
  auto marked = MarkClusters(corpus_, clusters, docs_, opts);
  EXPECT_TRUE(marked[0].marked());
}

TEST_F(MatchingTest, UnlabeledDocsCountAgainstPrecision) {
  // 3 topic-1 docs + 2 unlabeled: precision 0.6 -> marked.
  std::vector<std::vector<DocId>> clusters = {{0, 1, 2, 8, 9}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  EXPECT_TRUE(marked[0].marked());
  EXPECT_DOUBLE_EQ(marked[0].precision, 0.6);
  EXPECT_EQ(marked[0].table.b, 2u);
}

TEST_F(MatchingTest, AllUnlabeledClusterUnmarked) {
  std::vector<std::vector<DocId>> clusters = {{8, 9}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  EXPECT_FALSE(marked[0].marked());
}

TEST_F(MatchingTest, EmptyClustersSkippedByDefault) {
  std::vector<std::vector<DocId>> clusters = {{}, {0, 1, 2, 3}, {}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_EQ(marked[0].cluster_index, 1u);
}

TEST_F(MatchingTest, EmptyClustersKeptWhenRequested) {
  std::vector<std::vector<DocId>> clusters = {{}, {0, 1, 2, 3}};
  MatchingOptions opts;
  opts.skip_empty_clusters = false;
  auto marked = MarkClusters(corpus_, clusters, docs_, opts);
  ASSERT_EQ(marked.size(), 2u);
  EXPECT_FALSE(marked[0].marked());
}

TEST_F(MatchingTest, TwoClustersSameTopicBothMarked) {
  // The paper observes large topics split across clusters; both halves get
  // marked with the same topic.
  std::vector<std::vector<DocId>> clusters = {{0, 1}, {2, 3, 4}};
  auto marked = MarkClusters(corpus_, clusters, docs_, {});
  ASSERT_EQ(marked.size(), 2u);
  EXPECT_EQ(marked[0].topic, 1);
  EXPECT_EQ(marked[1].topic, 1);
  EXPECT_DOUBLE_EQ(marked[0].recall, 0.4);
  EXPECT_DOUBLE_EQ(marked[1].recall, 0.6);
}

TEST_F(MatchingTest, RecallScopedToEvaluatedDocs) {
  // Evaluate only a subset: topic sizes shrink accordingly.
  std::vector<DocId> subset = {0, 1, 5};
  std::vector<std::vector<DocId>> clusters = {{0, 1}};
  auto marked = MarkClusters(corpus_, clusters, subset, {});
  ASSERT_TRUE(marked[0].marked());
  EXPECT_DOUBLE_EQ(marked[0].recall, 1.0);  // both topic-1 docs in subset
}

}  // namespace
}  // namespace nidc
