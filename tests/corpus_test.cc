#include "nidc/corpus/corpus.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

TEST(CorpusTest, AddAssignsSequentialIds) {
  Corpus c;
  EXPECT_EQ(c.AddText("first doc", 0.0), 0u);
  EXPECT_EQ(c.AddText("second doc", 1.0), 1u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(CorpusTest, AddTextAnalyzesAgainstSharedVocabulary) {
  Corpus c;
  const DocId a = c.AddText("iraq conflict weapons", 0.0);
  const DocId b = c.AddText("iraq sanctions", 0.5);
  const TermId iraq = c.vocabulary().Lookup("iraq");
  ASSERT_NE(iraq, kInvalidTermId);
  EXPECT_DOUBLE_EQ(c.doc(a).terms.ValueAt(iraq), 1.0);
  EXPECT_DOUBLE_EQ(c.doc(b).terms.ValueAt(iraq), 1.0);
}

TEST(CorpusTest, DocCarriesMetadata) {
  Corpus c;
  const DocId id = c.AddText("text body", 3.5, 20001, "CNN");
  const Document& doc = c.doc(id);
  EXPECT_DOUBLE_EQ(doc.time, 3.5);
  EXPECT_EQ(doc.topic, 20001);
  EXPECT_EQ(doc.source, "CNN");
}

TEST(CorpusTest, LengthIsTermCountSum) {
  Corpus c;
  const DocId id = c.AddText("bomb bomb explosion", 0.0);
  EXPECT_DOUBLE_EQ(c.doc(id).Length(), 3.0);
}

TEST(CorpusTest, IsChronologicalDetectsOrder) {
  Corpus c;
  c.AddText("one", 0.0);
  c.AddText("two", 1.0);
  c.AddText("three", 1.0);  // ties allowed
  EXPECT_TRUE(c.IsChronological());
  c.AddText("rewind", 0.5);
  EXPECT_FALSE(c.IsChronological());
}

TEST(CorpusTest, DocsInRangeHalfOpen) {
  Corpus c;
  c.AddText("a", 0.0);
  c.AddText("b", 1.0);
  c.AddText("c", 2.0);
  EXPECT_EQ(c.DocsInRange(0.0, 2.0), (std::vector<DocId>{0, 1}));
  EXPECT_EQ(c.DocsInRange(1.0, 1.5), (std::vector<DocId>{1}));
  EXPECT_TRUE(c.DocsInRange(5.0, 6.0).empty());
}

TEST(CorpusTest, TopicCountsSkipUnlabeled) {
  Corpus c;
  c.AddText("a", 0.0, 7);
  c.AddText("b", 0.0, 7);
  c.AddText("c", 0.0, 9);
  c.AddText("d", 0.0);  // unlabeled
  auto counts = c.TopicCounts();
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[7], 2u);
  EXPECT_EQ(counts[9], 1u);
  EXPECT_EQ(c.Topics(), (std::vector<TopicId>{7, 9}));
}

TEST(CorpusTest, MinMaxTime) {
  Corpus c;
  EXPECT_DOUBLE_EQ(c.MinTime(), 0.0);
  c.AddText("a", 2.0);
  c.AddText("b", 5.0);
  c.AddText("c", 1.0);
  EXPECT_DOUBLE_EQ(c.MinTime(), 1.0);
  EXPECT_DOUBLE_EQ(c.MaxTime(), 5.0);
}

TEST(CorpusTest, EmptyCorpus) {
  Corpus c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.Topics().empty());
  EXPECT_TRUE(c.IsChronological());
}

}  // namespace
}  // namespace nidc
