#include "nidc/obs/exporters.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "nidc/obs/json_util.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/trace.h"

namespace nidc::obs {
namespace {

TEST(JsonUtilTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(JsonUtilTest, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(2.0), "2");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "null");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  const double value = 0.1234567890123456;
  const auto parsed = ParseJson(JsonNumber(value));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->number, value);
}

TEST(JsonUtilTest, BuilderRoundTripsThroughParser) {
  JsonObjectBuilder builder;
  builder.Add("label", std::string("he said \"hi\""))
      .Add("pi", 3.25)
      .Add("count", uint64_t{7})
      .Add("step", -2)
      .Add("ok", true)
      .AddRaw("list", "[1,2,3]");
  const auto parsed = ParseJson(builder.Render());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("label")->string_value, "he said \"hi\"");
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->number, 3.25);
  EXPECT_DOUBLE_EQ(parsed->Find("count")->number, 7.0);
  EXPECT_DOUBLE_EQ(parsed->Find("step")->number, -2.0);
  EXPECT_TRUE(parsed->Find("ok")->bool_value);
  ASSERT_TRUE(parsed->Find("list")->is_array());
  EXPECT_EQ(parsed->Find("list")->array.size(), 3u);
}

TEST(JsonUtilTest, ParserRejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

std::vector<MetricSample> SampleRegistry() {
  MetricsRegistry registry;
  registry.GetCounter("kmeans.runs")->Increment(2);
  registry.GetGauge("kmeans.g_final")->Set(41.5);
  Histogram* h = registry.GetHistogram("step.seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(5.0);
  return registry.Snapshot();
}

TEST(ExportersTest, MetricsJsonRoundTripsThroughParser) {
  const std::string json = RenderMetricsJson(SampleRegistry());
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_DOUBLE_EQ(parsed->Find("kmeans.runs")->number, 2.0);
  EXPECT_DOUBLE_EQ(parsed->Find("kmeans.g_final")->number, 41.5);
  const JsonValue* hist = parsed->Find("step.seconds");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 5.05);
  ASSERT_TRUE(hist->Find("buckets")->is_array());
  const auto& buckets = hist->Find("buckets")->array;
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].Find("le")->number, 0.1);
  EXPECT_DOUBLE_EQ(buckets[0].Find("count")->number, 1.0);
}

TEST(ExportersTest, TraceJsonRoundTripsThroughParser) {
  Tracer tracer;
  {
    ScopedTracerInstall install(&tracer);
    NIDC_SPAN("step");
    { NIDC_SPAN("sweep"); }
    { NIDC_SPAN("sweep"); }
  }
  const auto parsed = ParseJson(RenderTraceJson(tracer.root()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& children = parsed->Find("children")->array;
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].Find("name")->string_value, "step");
  const auto& grandchildren = children[0].Find("children")->array;
  ASSERT_EQ(grandchildren.size(), 1u);
  EXPECT_EQ(grandchildren[0].Find("name")->string_value, "sweep");
  EXPECT_DOUBLE_EQ(grandchildren[0].Find("count")->number, 2.0);
}

TEST(ExportersTest, PrometheusFlattensNamesAndExpandsHistograms) {
  const std::string text = RenderPrometheus(SampleRegistry());
  EXPECT_NE(text.find("# TYPE kmeans_runs counter"), std::string::npos);
  EXPECT_NE(text.find("kmeans_runs 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kmeans_g_final gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE step_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("step_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("step_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("step_seconds_count 2"), std::string::npos);
}

TEST(ExportersTest, PrometheusNameValidatesAndFlattensMalformedNames) {
  // The flattened form of any registry name must pass the exposition
  // charset check — including names with spaces, leading digits, unicode
  // and empties.
  const char* kMalformed[] = {"9kmeans.bad name", "a b", "Ω.metric",
                              "", "kmeans.ok", "trailing dot."};
  for (const char* name : kMalformed) {
    EXPECT_TRUE(IsValidPrometheusName(PrometheusName(name)))
        << "'" << name << "' -> '" << PrometheusName(name) << "'";
  }
  EXPECT_EQ(PrometheusName("9kmeans.bad name"), "_9kmeans_bad_name");
  EXPECT_EQ(PrometheusName(""), "_");
  EXPECT_FALSE(IsValidPrometheusName("9leading"));
  EXPECT_FALSE(IsValidPrometheusName("has space"));
  EXPECT_FALSE(IsValidPrometheusName(""));
  EXPECT_TRUE(IsValidPrometheusName("kmeans_runs:rate"));
}

TEST(ExportersTest, PrometheusEscapesHelpAndLabelText) {
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(PrometheusEscapeHelp("back\\slash"), "back\\\\slash");
  // HELP text keeps quotes verbatim (only label values escape them).
  EXPECT_EQ(PrometheusEscapeHelp("say \"hi\""), "say \"hi\"");
  EXPECT_EQ(PrometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b\nc"), "a\\\\b\\nc");
}

TEST(ExportersTest, PrometheusEmitsEscapedHelpForEveryMetric) {
  std::map<std::string, std::string> help;
  help["kmeans.runs"] = "RunExtendedKMeans calls\nsecond line \\ slash";
  const std::string text = RenderPrometheus(SampleRegistry(), help);
  // Explicit help: escaped onto one line.
  EXPECT_NE(
      text.find(
          "# HELP kmeans_runs RunExtendedKMeans calls\\nsecond line "
          "\\\\ slash\n"),
      std::string::npos);
  // Metrics without explicit help still get a HELP line (family default).
  EXPECT_NE(text.find("# HELP kmeans_g_final "), std::string::npos);
  EXPECT_NE(text.find("# HELP step_seconds "), std::string::npos);
  // No raw newline may survive inside any HELP line: every line must
  // start with a name, '#', or be a sample — i.e. parse as exposition.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample line: the token before ' ' or '{' must validate.
    const size_t cut = line.find_first_of(" {");
    ASSERT_NE(cut, std::string::npos) << line;
    EXPECT_TRUE(IsValidPrometheusName(line.substr(0, cut))) << line;
  }
}

TEST(ExportersTest, PrometheusMalformedRegistryNamesStillValidate) {
  // Regression: a registry name outside the exposition charset must be
  // flattened everywhere it appears — TYPE/HELP lines and samples alike.
  MetricsRegistry registry;
  registry.GetCounter("9kmeans.bad name")->Increment(3);
  registry.GetHistogram("2nd histogram", {1.0})->Observe(0.5);
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE _9kmeans_bad_name counter"),
            std::string::npos);
  EXPECT_NE(text.find("_9kmeans_bad_name 3"), std::string::npos);
  EXPECT_NE(text.find("_2nd_histogram_bucket{le=\"1\"} 1"),
            std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comment lines may mention the original registry name in their
      // free-text HELP, but the *exposition name* after HELP/TYPE must
      // be the flattened one.
      EXPECT_EQ(line.find("# HELP 9"), std::string::npos) << line;
      EXPECT_EQ(line.find("# TYPE 9"), std::string::npos) << line;
      continue;
    }
    // Sample lines must carry only valid flattened names — the raw
    // registry spellings may never reach a scrapeable sample.
    EXPECT_EQ(line.find("9kmeans."), std::string::npos) << line;
    EXPECT_EQ(line.find("bad name"), std::string::npos) << line;
    const size_t cut = line.find_first_of(" {");
    ASSERT_NE(cut, std::string::npos) << line;
    EXPECT_TRUE(IsValidPrometheusName(line.substr(0, cut))) << line;
  }
}

TEST(ExportersTest, JsonlWriterEmitsOneParseableRecordPerLine) {
  const std::string path = testing::TempDir() + "exporters_test.jsonl";
  {
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.Append(RenderMetricsJson(SampleRegistry())).ok());
    ASSERT_TRUE(writer.Append("{\"step\":1}").ok());
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(ParseJson(line).ok()) << "line " << lines << ": " << line;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(ExportersTest, CsvSeriesKeepsColumnsStableAcrossSteps) {
  MetricsCsvSeries series;
  {
    MetricsRegistry registry;
    registry.GetCounter("a")->Increment();
    registry.GetGauge("b")->Set(2.0);
    registry.GetHistogram("h", {1.0})->Observe(0.5);
    series.AddStep(0, registry.Snapshot());
  }
  {
    // Second step misses "b" and adds an unseen metric — the column set
    // must stay what the first snapshot established.
    MetricsRegistry registry;
    registry.GetCounter("a")->Increment(3);
    registry.GetCounter("unseen")->Increment();
    registry.GetHistogram("h", {1.0})->Observe(2.0);
    series.AddStep(1, registry.Snapshot());
  }
  EXPECT_EQ(series.num_steps(), 2u);
  const std::string csv = series.ToString();
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "step,a,b,h.count,h.sum");
  std::string row0, row1;
  ASSERT_TRUE(std::getline(in, row0));
  ASSERT_TRUE(std::getline(in, row1));
  EXPECT_EQ(row0.substr(0, 2), "0,");
  EXPECT_EQ(row1.substr(0, 2), "1,");
  EXPECT_EQ(row1.find("unseen"), std::string::npos);
}

}  // namespace
}  // namespace nidc::obs
