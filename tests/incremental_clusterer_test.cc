#include "nidc/core/incremental_clusterer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "nidc/obs/metrics.h"
#include "nidc/obs/trace.h"

namespace nidc {
namespace {

class IncrementalClustererTest : public testing::Test {
 protected:
  void SetUp() override {
    // Day 0: iraq topic. Day 1: olympics. Day 30: tobacco (iraq expires
    // under a short life span by then).
    corpus_.AddText("iraq weapons inspection baghdad", 0.0, 1);
    corpus_.AddText("iraq sanctions baghdad embargo", 0.0, 1);
    corpus_.AddText("olympics skating nagano medal", 1.0, 2);
    corpus_.AddText("olympics hockey nagano final", 1.0, 2);
    corpus_.AddText("tobacco settlement senate lawsuit", 30.0, 3);
    corpus_.AddText("tobacco lawsuit vote senate", 30.0, 3);
  }

  ForgettingParams Params(double beta = 7.0, double gamma = 14.0) {
    ForgettingParams p;
    p.half_life_days = beta;
    p.life_span_days = gamma;
    return p;
  }

  IncrementalOptions Options(size_t k = 2) {
    IncrementalOptions o;
    o.kmeans.k = k;
    o.kmeans.seed = 3;
    return o;
  }

  Corpus corpus_;
};

TEST_F(IncrementalClustererTest, FirstStepClustersFromScratch) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  auto result = ic.Step({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_new, 4u);
  EXPECT_EQ(result->num_active, 4u);
  EXPECT_TRUE(result->expired.empty());
  EXPECT_TRUE(ic.last_result().has_value());
}

TEST_F(IncrementalClustererTest, StepsAccumulateDocuments) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  ASSERT_TRUE(ic.Step({0, 1}, 0.0).ok());
  auto second = ic.Step({2, 3}, 1.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_active, 4u);
}

TEST_F(IncrementalClustererTest, OldDocumentsExpire) {
  IncrementalClusterer ic(&corpus_, Params(7.0, 14.0), Options());
  ASSERT_TRUE(ic.Step({0, 1, 2, 3}, 1.0).ok());
  // 29 days later the day-0/1 docs are far below ε = 0.25.
  auto result = ic.Step({4, 5}, 30.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->expired.size(), 4u);
  EXPECT_EQ(result->num_active, 2u);
  EXPECT_EQ(ic.model().num_active(), 2u);
}

TEST_F(IncrementalClustererTest, RejectsTimeTravel) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  ASSERT_TRUE(ic.Step({0, 1, 2, 3}, 5.0).ok());
  EXPECT_EQ(ic.Step({4}, 2.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IncrementalClustererTest, RejectsNonFiniteStepTime) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  EXPECT_EQ(ic.Step({0, 1}, std::nan("")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ic.Step({0, 1}, std::numeric_limits<double>::infinity()).status().code(),
      StatusCode::kInvalidArgument);
  // A rejected step must not mutate the model; the clean step still works.
  EXPECT_TRUE(ic.Step({0, 1}, 0.0).ok());
}

TEST_F(IncrementalClustererTest, RejectsMalformedBatches) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  // Beyond-corpus id.
  EXPECT_EQ(ic.Step({99}, 0.0).status().code(), StatusCode::kInvalidArgument);
  // Duplicate id within the batch.
  EXPECT_EQ(ic.Step({0, 1, 0}, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(ic.Step({0, 1}, 0.0).ok());
  // Re-adding an already-active document.
  EXPECT_EQ(ic.Step({1, 2}, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  // None of the rejects advanced the model clock or active set.
  EXPECT_EQ(ic.model().now(), 0.0);
  EXPECT_EQ(ic.model().num_active(), 2u);
}

TEST_F(IncrementalClustererTest, FailsWhenEverythingExpired) {
  IncrementalClusterer ic(&corpus_, Params(1.0, 2.0), Options());
  ASSERT_TRUE(ic.Step({0, 1}, 0.0).ok());
  // 100 days of silence: both docs expire, nothing to cluster.
  EXPECT_EQ(ic.Step({}, 100.0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalClustererTest, TimingsAreRecorded) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  auto result = ic.Step({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats_update_seconds, 0.0);
  EXPECT_GT(result->clustering_seconds, 0.0);
}

TEST_F(IncrementalClustererTest, StepResultCarriesClusteringDigest) {
  IncrementalClusterer ic(&corpus_, Params(), Options());
  auto result = ic.Step({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, result->clustering.iterations);
  EXPECT_GT(result->iterations, 0);
  EXPECT_EQ(result->num_outliers, result->clustering.outliers.size());
  EXPECT_DOUBLE_EQ(result->final_g, result->clustering.g);
  ASSERT_FALSE(result->clustering.g_history.empty());
  EXPECT_DOUBLE_EQ(result->final_g, result->clustering.g_history.back());
}

TEST_F(IncrementalClustererTest, StepPopulatesMetricsRegistry) {
  obs::MetricsRegistry registry;
  IncrementalOptions opts = Options();
  opts.metrics = &registry;
  IncrementalClusterer ic(&corpus_, Params(), opts);
  auto result = ic.Step({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(registry.GetCounter("step.count")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("step.docs_new")->Value(), 4u);
  EXPECT_EQ(registry.GetCounter("kmeans.runs")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("kmeans.iterations")->Value(),
            static_cast<uint64_t>(result->iterations));
  EXPECT_DOUBLE_EQ(registry.GetGauge("kmeans.g_final")->Value(),
                   result->final_g);
  EXPECT_DOUBLE_EQ(registry.GetGauge("step.active_docs")->Value(), 4.0);
  EXPECT_GT(registry.GetGauge("term_stats.vocab_size")->Value(), 0.0);

  ASSERT_TRUE(ic.Step({4, 5}, 30.0).ok());
  EXPECT_EQ(registry.GetCounter("step.count")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("kmeans.runs")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("step.docs_expired")->Value(), 4u);
}

TEST_F(IncrementalClustererTest, StepRecordsTraceSpans) {
  obs::Tracer tracer;
  obs::ScopedTracerInstall install(&tracer);
  IncrementalClusterer ic(&corpus_, Params(), Options());
  ASSERT_TRUE(ic.Step({0, 1, 2, 3}, 1.0).ok());
  const std::string rendered = tracer.Render();
  EXPECT_NE(rendered.find("clusterer.step"), std::string::npos);
  EXPECT_NE(rendered.find("step.stats_update"), std::string::npos);
  EXPECT_NE(rendered.find("kmeans.run"), std::string::npos);
  EXPECT_NE(rendered.find("kmeans.sweep"), std::string::npos);
}

TEST_F(IncrementalClustererTest, MembershipReseedKeepsStableClusters) {
  IncrementalClusterer ic(&corpus_, Params(7.0, 60.0), Options());
  auto first = ic.Step({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(first.ok());
  const auto clusters_before = first->clustering.clusters;
  // A quiet step (no new docs, tiny time passage) shouldn't upend anything.
  auto second = ic.Step({}, 1.5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->clustering.clusters, clusters_before);
}

TEST_F(IncrementalClustererTest, RepresentativeReseedModeRuns) {
  IncrementalOptions opts = Options();
  opts.reseed_mode = SeedMode::kRepresentatives;
  IncrementalClusterer ic(&corpus_, Params(7.0, 60.0), opts);
  ASSERT_TRUE(ic.Step({0, 1, 2, 3}, 1.0).ok());
  auto second = ic.Step({4, 5}, 30.0);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->clustering.TotalAssigned(), 0u);
}

TEST_F(IncrementalClustererTest, BatchClustererRebuildsEachTime) {
  BatchClusterer bc(&corpus_, Params(7.0, 14.0), Options().kmeans);
  auto run1 = bc.Run({0, 1, 2, 3}, 1.0);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(run1->num_active, 4u);
  // A later run over everything expires the old docs via ε.
  auto run2 = bc.Run({0, 1, 2, 3, 4, 5}, 30.0);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->expired.size(), 4u);
  EXPECT_EQ(run2->num_active, 2u);
}

TEST_F(IncrementalClustererTest, IncrementalAndBatchAgreeOnActiveSet) {
  IncrementalClusterer ic(&corpus_, Params(7.0, 14.0), Options());
  ASSERT_TRUE(ic.Step({0, 1}, 0.0).ok());
  ASSERT_TRUE(ic.Step({2, 3}, 1.0).ok());
  auto inc = ic.Step({4, 5}, 30.0);
  ASSERT_TRUE(inc.ok());

  BatchClusterer bc(&corpus_, Params(7.0, 14.0), Options().kmeans);
  auto batch = bc.Run({0, 1, 2, 3, 4, 5}, 30.0);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(inc->num_active, batch->num_active);
  for (DocId id : ic.model().active_docs()) {
    EXPECT_NEAR(ic.model().Weight(id), bc.model().Weight(id), 1e-9);
    EXPECT_NEAR(ic.model().PrDoc(id), bc.model().PrDoc(id), 1e-9);
  }
}

}  // namespace
}  // namespace nidc
