#include "nidc/corpus/tdt2_reader.h"

#include <gtest/gtest.h>

namespace nidc {
namespace {

constexpr const char* kSampleSgml = R"(
<DOC>
<DOCNO> APW19980104.0845 </DOCNO>
<DATE_TIME> 19980104.0845 </DATE_TIME>
<TEXT>
<P>BAGHDAD (AP) - U.N. weapons inspectors left Iraq on Sunday.</P>
<P>Officials said the standoff would continue.</P>
</TEXT>
</DOC>
<DOC>
<DOCNO> CNN19980105.1600.0042 </DOCNO>
<TEXT>
The Winter Olympics open next month in Nagano, Japan.
</TEXT>
</DOC>
<DOC>
<DOCNO> NYT19980118.0001 </DOCNO>
<DATE> 19980118 </DATE>
<TEXT>Tobacco settlement talks resumed in the Senate.</TEXT>
</DOC>
)";

TEST(Tdt2DateTest, ConvertsRelativeToEpoch) {
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980104", 19980104).value(), 0.0);
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980105", 19980104).value(), 1.0);
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980203", 19980104).value(), 30.0);
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980630", 19980104).value(), 177.0);
}

TEST(Tdt2DateTest, ParsesTimeOfDayFraction) {
  // 0600 = a quarter of a day.
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980104.0600", 19980104).value(), 0.25);
  EXPECT_NEAR(Tdt2DateToDays("19980105.1200.0042", 19980104).value(), 1.5,
              1e-12);
}

TEST(Tdt2DateTest, HandlesMonthAndYearBoundaries) {
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19980301", 19980228).value(), 1.0);
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("19990101", 19981231).value(), 1.0);
  // 2000 was a leap year.
  EXPECT_DOUBLE_EQ(Tdt2DateToDays("20000301", 20000228).value(), 2.0);
}

TEST(Tdt2DateTest, RejectsGarbage) {
  EXPECT_FALSE(Tdt2DateToDays("not-a-date", 19980104).ok());
  EXPECT_FALSE(Tdt2DateToDays("1998", 19980104).ok());
  EXPECT_FALSE(Tdt2DateToDays("19981341", 19980104).ok());  // month 13
}

TEST(Tdt2SgmlTest, ParsesAllRecords) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok()) << docs.status().ToString();
  ASSERT_EQ(docs->size(), 3u);
  EXPECT_EQ((*docs)[0].docno, "APW19980104.0845");
  EXPECT_EQ((*docs)[1].docno, "CNN19980105.1600.0042");
  EXPECT_EQ((*docs)[2].docno, "NYT19980118.0001");
}

TEST(Tdt2SgmlTest, ExtractsDatesWithDocnoFallback) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok());
  EXPECT_NEAR((*docs)[0].time, 0.0 + (8.0 * 60 + 45) / 1440.0, 1e-9);
  // Second record has no DATE element; the DOCNO stamp is used.
  EXPECT_NEAR((*docs)[1].time, 1.0 + 16.0 / 24.0, 1e-9);
  EXPECT_DOUBLE_EQ((*docs)[2].time, 14.0);
}

TEST(Tdt2SgmlTest, StripsInnerMarkup) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].text.find('<'), std::string::npos);
  EXPECT_NE((*docs)[0].text.find("weapons inspectors left Iraq"),
            std::string::npos);
  EXPECT_NE((*docs)[0].text.find("standoff would continue"),
            std::string::npos);
}

TEST(Tdt2SgmlTest, InfersSources) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].source, "APW");
  EXPECT_EQ((*docs)[1].source, "CNN");
  EXPECT_EQ((*docs)[2].source, "NYT");
}

TEST(Tdt2SgmlTest, MissingDocnoIsError) {
  EXPECT_FALSE(ParseTdt2Sgml("<DOC><TEXT>orphan</TEXT></DOC>").ok());
}

TEST(Tdt2SgmlTest, MissingDocnoReportsRecordContext) {
  const std::string content =
      "<DOC><DOCNO> APW19980104.0845 </DOCNO><TEXT>fine</TEXT></DOC>\n"
      "<DOC><TEXT>orphan</TEXT></DOC>\n";
  auto docs = ParseTdt2Sgml(content);
  ASSERT_FALSE(docs.ok());
  // The diagnostic names the damaged record, not just "parse failed".
  EXPECT_NE(docs.status().message().find("DOC record #2"), std::string::npos);
}

TEST(Tdt2SgmlTest, LenientModeSkipsAndCountsBadRecords) {
  const std::string content =
      "<DOC><DOCNO> APW19980104.0845 </DOCNO><TEXT>kept one</TEXT></DOC>\n"
      "<DOC><TEXT>orphan without docno</TEXT></DOC>\n"
      "<DOC><DOCNO> NYT19980118.0001 </DOCNO><TEXT>kept two</TEXT></DOC>\n";
  CorpusReadOptions lenient;
  lenient.strict = false;
  CorpusReadStats stats;
  auto docs = ParseTdt2Sgml(content, 19980104, lenient, &stats);
  ASSERT_TRUE(docs.ok()) << docs.status().ToString();
  ASSERT_EQ(docs->size(), 2u);
  EXPECT_EQ((*docs)[0].docno, "APW19980104.0845");
  EXPECT_EQ((*docs)[1].docno, "NYT19980118.0001");
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_EQ(stats.bad_records, 1u);
  EXPECT_NE(stats.first_error.find("DOC record #2"), std::string::npos);
}

TEST(Tdt2SgmlTest, EmptyInputYieldsNoDocs) {
  auto docs = ParseTdt2Sgml("no sgml here");
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->empty());
}

TEST(RelevanceTableTest, ParsesJudgments) {
  auto judgments = ParseRelevanceTable(
      "# topic docno level\n"
      "20001 APW19980104.0845 YES\n"
      "20002 APW19980104.0845 BRIEF\n"
      "\n"
      "20015 NYT19980118.0001 yes\n");
  ASSERT_TRUE(judgments.ok()) << judgments.status().ToString();
  ASSERT_EQ(judgments->size(), 3u);
  EXPECT_EQ((*judgments)[0].topic, 20001);
  EXPECT_TRUE((*judgments)[0].yes);
  EXPECT_FALSE((*judgments)[1].yes);
  EXPECT_TRUE((*judgments)[2].yes);  // lower-case level accepted
}

TEST(RelevanceTableTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRelevanceTable("20001 only-two-fields\n").ok());
  EXPECT_FALSE(ParseRelevanceTable("20001 doc MAYBE\n").ok());
}

TEST(RelevanceTableTest, LenientModeSkipsMalformedLines) {
  CorpusReadOptions lenient;
  lenient.strict = false;
  CorpusReadStats stats;
  auto judgments = ParseRelevanceTable(
      "20001 APW19980104.0845 YES\n"
      "20002 broken-line\n"
      "xxxxx NYT19980118.0001 YES\n"
      "20003 NYT19980118.0001 BRIEF\n",
      lenient, &stats);
  ASSERT_TRUE(judgments.ok()) << judgments.status().ToString();
  ASSERT_EQ(judgments->size(), 2u);
  EXPECT_EQ((*judgments)[0].topic, 20001);
  EXPECT_EQ((*judgments)[1].topic, 20003);
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_EQ(stats.bad_records, 2u);
  EXPECT_NE(stats.first_error.find("line 2"), std::string::npos);
}

TEST(FilterSingleYesTest, PaperSelectionRule) {
  std::vector<Tdt2Judgment> judgments = {
      {20001, "docA", true},            // single YES -> kept
      {20002, "docB", true},
      {20003, "docB", true},            // two YES -> dropped
      {20004, "docC", false},           // only BRIEF -> dropped
      {20005, "docD", true},
      {20006, "docD", false},           // YES + BRIEF -> kept with YES topic
  };
  auto labels = FilterSingleYes(judgments);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels.at("docA"), 20001);
  EXPECT_EQ(labels.at("docD"), 20005);
}

TEST(BuildCorpusTest, LabeledChronologicalCorpus) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok());
  std::map<std::string, TopicId> labels = {
      {"APW19980104.0845", 20015},
      {"NYT19980118.0001", 20044},
  };
  auto corpus = BuildCorpusFromTdt2(*docs, labels);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ((*corpus)->size(), 2u);  // unlabeled CNN doc dropped
  EXPECT_TRUE((*corpus)->IsChronological());
  EXPECT_EQ((*corpus)->doc(0).topic, 20015);
  EXPECT_EQ((*corpus)->doc(1).topic, 20044);
  EXPECT_NE((*corpus)->vocabulary().Lookup("iraq"), kInvalidTermId);
}

TEST(BuildCorpusTest, KeepUnlabeledOption) {
  auto docs = ParseTdt2Sgml(kSampleSgml);
  ASSERT_TRUE(docs.ok());
  auto corpus = BuildCorpusFromTdt2(*docs, {}, /*keep_unlabeled=*/true);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ((*corpus)->size(), 3u);
  EXPECT_EQ((*corpus)->doc(0).topic, kNoTopic);
}

TEST(LoadTdt2FileTest, ReadsFromDisk) {
  const std::string path = testing::TempDir() + "/nidc_tdt2_test.sgml";
  FILE* f = fopen(path.c_str(), "w");
  fputs(kSampleSgml, f);
  fclose(f);
  auto docs = LoadTdt2File(path);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 3u);
  std::remove(path.c_str());
}

TEST(LoadTdt2FileTest, MissingFileFails) {
  EXPECT_EQ(LoadTdt2File("/no/such/file.sgml").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace nidc
