// Integration: the incremental statistics path must agree with the
// from-scratch path on a realistic generated stream (the paper's §5.1
// efficiency claim rests on this equivalence), and seeded incremental
// clustering must produce results of comparable quality.

#include <gtest/gtest.h>

#include <algorithm>

#include "nidc/core/incremental_clusterer.h"
#include "nidc/corpus/stream.h"
#include "nidc/eval/f1_measures.h"
#include "nidc/synth/tdt2_like_generator.h"

namespace nidc {
namespace {

class IncrementalVsBatchTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.scale = 0.08;
    opts.seed = 424242;
    Tdt2LikeGenerator generator(opts);
    auto corpus = generator.Generate();
    ASSERT_TRUE(corpus.ok());
    corpus_ = corpus.value().release();
  }
  static void TearDownTestSuite() { delete corpus_; }

  static ForgettingParams Params() {
    ForgettingParams p;
    p.half_life_days = 7.0;
    p.life_span_days = 14.0;
    return p;
  }

  static Corpus* corpus_;
};

Corpus* IncrementalVsBatchTest::corpus_ = nullptr;

TEST_F(IncrementalVsBatchTest, StatisticsAgreeAfterLongStream) {
  const DayTime end = 60.0;
  IncrementalClusterer ic(corpus_, Params(), {});
  DocumentStream stream(corpus_, 0.0, end, 5.0);
  while (auto batch = stream.Next()) {
    // Steps whose active set empties are fine to skip clustering-wise; the
    // statistics must stay consistent regardless.
    auto step = ic.Step(batch->docs, batch->end);
    if (!step.ok()) {
      ASSERT_EQ(step.status().code(), StatusCode::kFailedPrecondition);
    }
  }

  ForgettingModel scratch(corpus_, Params());
  scratch.RebuildFromScratch(corpus_->DocsInRange(0.0, end), end);
  scratch.ExpireDocuments();

  const ForgettingModel& inc = ic.model();
  ASSERT_EQ(inc.num_active(), scratch.num_active());
  EXPECT_NEAR(inc.TotalWeight(), scratch.TotalWeight(),
              1e-6 * scratch.TotalWeight());
  for (DocId id : scratch.active_docs()) {
    ASSERT_TRUE(inc.IsActive(id));
    EXPECT_NEAR(inc.PrDoc(id), scratch.PrDoc(id), 1e-9);
  }
  // Term probabilities agree on a sample of the vocabulary.
  for (TermId t = 0; t < corpus_->vocabulary().size(); t += 7) {
    EXPECT_NEAR(inc.PrTerm(t), scratch.PrTerm(t), 1e-9) << t;
  }
}

TEST_F(IncrementalVsBatchTest, SeededClusteringQualityComparable) {
  // The paper's §6.2.2 observation: incremental and non-incremental
  // results are "roughly close". Compare micro-F1 on the same final state.
  const DayTime end = 30.0;
  const std::vector<DocId> docs = corpus_->DocsInRange(0.0, end);

  IncrementalOptions iopts;
  iopts.kmeans.k = 12;
  iopts.kmeans.seed = 5;
  IncrementalClusterer ic(corpus_, Params(), iopts);
  DocumentStream stream(corpus_, 0.0, end, 5.0);
  std::optional<StepResult> last;
  while (auto batch = stream.Next()) {
    auto step = ic.Step(batch->docs, batch->end);
    ASSERT_TRUE(step.ok());
    last = std::move(step).value();
  }
  ASSERT_TRUE(last.has_value());

  ExtendedKMeansOptions kopts = iopts.kmeans;
  BatchClusterer bc(corpus_, Params(), kopts);
  auto batch_run = bc.Run(docs, end);
  ASSERT_TRUE(batch_run.ok());

  const std::vector<DocId> active = ic.model().active_docs();
  auto inc_f1 = ComputeGlobalF1(
      MarkClusters(*corpus_, last->clustering.clusters, active, {}));
  auto batch_f1 = ComputeGlobalF1(MarkClusters(
      *corpus_, batch_run->clustering.clusters, active, {}));
  // Not identical (different seeds/paths), but in the same quality regime.
  EXPECT_GT(inc_f1.num_marked, 0u);
  EXPECT_GT(batch_f1.num_marked, 0u);
  EXPECT_NEAR(inc_f1.micro_f1, batch_f1.micro_f1, 0.35);
}

TEST_F(IncrementalVsBatchTest, IncrementalStatsUpdateTouchesLessWork) {
  // The Table 1 mechanism: an incremental step's statistics update handles
  // only the new batch, the from-scratch rebuild handles everything.
  const DayTime end = 40.0;
  IncrementalClusterer ic(corpus_, Params(), {});
  DocumentStream stream(corpus_, 0.0, end, 10.0);
  size_t max_batch = 0;
  while (auto batch = stream.Next()) {
    max_batch = std::max(max_batch, batch->docs.size());
    auto step = ic.Step(batch->docs, batch->end);
    if (step.ok()) {
      EXPECT_EQ(step->num_new, batch->docs.size());
    }
  }
  const size_t all = corpus_->DocsInRange(0.0, end).size();
  EXPECT_LT(max_batch, all);
}

}  // namespace
}  // namespace nidc
