// Umbrella header: the full public API of the nidc library.
//
// For finer-grained builds include the per-module headers directly; this
// header is for applications that want everything (the examples and the
// CLI use it implicitly through their specific includes).

#ifndef NIDC_NIDC_H_
#define NIDC_NIDC_H_

// Utilities.
#include "nidc/util/csv_writer.h"
#include "nidc/util/logging.h"
#include "nidc/util/random.h"
#include "nidc/util/status.h"
#include "nidc/util/stopwatch.h"
#include "nidc/util/string_util.h"
#include "nidc/util/table_printer.h"

// Text pipeline.
#include "nidc/text/analyzer.h"
#include "nidc/text/inverted_index.h"
#include "nidc/text/porter_stemmer.h"
#include "nidc/text/sparse_vector.h"
#include "nidc/text/stopwords.h"
#include "nidc/text/tokenizer.h"
#include "nidc/text/vocabulary.h"

// Corpus substrate.
#include "nidc/corpus/corpus.h"
#include "nidc/corpus/corpus_io.h"
#include "nidc/corpus/document.h"
#include "nidc/corpus/stream.h"
#include "nidc/corpus/tdt2_reader.h"
#include "nidc/corpus/time_window.h"

// Synthetic TDT2-like corpus.
#include "nidc/synth/tdt2_like_generator.h"

// Forgetting model.
#include "nidc/forgetting/forgetting_model.h"

// Core clustering.
#include "nidc/core/cluster.h"
#include "nidc/core/cluster_set.h"
#include "nidc/core/clustering_index.h"
#include "nidc/core/clustering_result.h"
#include "nidc/core/cover_coefficient.h"
#include "nidc/core/extended_kmeans.h"
#include "nidc/core/first_story.h"
#include "nidc/core/hot_topics.h"
#include "nidc/core/incremental_clusterer.h"
#include "nidc/core/k_estimator.h"
#include "nidc/core/novelty_similarity.h"
#include "nidc/core/state_io.h"

// Baselines.
#include "nidc/baselines/f2icm.h"
#include "nidc/baselines/group_average_clustering.h"
#include "nidc/baselines/single_pass_incr.h"
#include "nidc/baselines/spherical_kmeans.h"
#include "nidc/baselines/tfidf_model.h"

// Evaluation.
#include "nidc/eval/cluster_topic_matching.h"
#include "nidc/eval/clustering_metrics.h"
#include "nidc/eval/contingency.h"
#include "nidc/eval/f1_measures.h"
#include "nidc/eval/report.h"
#include "nidc/eval/topic_tracking.h"

#endif  // NIDC_NIDC_H_
