#include "nidc/baselines/spherical_kmeans.h"

#include <algorithm>

namespace nidc {

Result<SphericalKMeansResult> RunSphericalKMeans(
    const TfIdfModel& model, const SphericalKMeansOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (model.size() == 0) {
    return Status::InvalidArgument("cannot cluster an empty document set");
  }
  const std::vector<DocId>& docs = model.docs();
  const size_t k = std::min(options.k, docs.size());
  Rng rng(options.seed);

  // Seed centroids with K distinct random documents.
  std::vector<SparseVector> centroids;
  centroids.reserve(k);
  for (size_t i : rng.SampleWithoutReplacement(docs.size(), k)) {
    centroids.push_back(model.Vector(docs[i]));
  }

  std::vector<int> assignment(docs.size(), -1);
  SphericalKMeansResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step: nearest centroid by cosine.
    size_t changed = 0;
    for (size_t i = 0; i < docs.size(); ++i) {
      int best = 0;
      double best_sim = -1.0;
      for (size_t p = 0; p < k; ++p) {
        const double sim = centroids[p].Dot(model.Vector(docs[i]));
        if (sim > best_sim) {
          best_sim = sim;
          best = static_cast<int>(p);
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        ++changed;
      }
    }
    result.iterations = iter + 1;
    if (static_cast<double>(changed) <=
        options.reassignment_tolerance * static_cast<double>(docs.size())) {
      result.converged = true;
      break;
    }

    // Update step: mean direction of members; empty clusters are reseeded
    // with a random document so K is preserved.
    for (size_t p = 0; p < k; ++p) centroids[p] = SparseVector();
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < docs.size(); ++i) {
      centroids[static_cast<size_t>(assignment[i])].AddScaled(
          model.Vector(docs[i]), 1.0);
      ++counts[static_cast<size_t>(assignment[i])];
    }
    for (size_t p = 0; p < k; ++p) {
      if (counts[p] == 0) {
        centroids[p] = model.Vector(docs[rng.NextBounded(docs.size())]);
        continue;
      }
      const double norm = centroids[p].Norm();
      if (norm > 0.0) centroids[p].ScaleInPlace(1.0 / norm);
    }
  }

  result.clusters.assign(k, {});
  result.centroids = std::move(centroids);
  for (size_t i = 0; i < docs.size(); ++i) {
    result.clusters[static_cast<size_t>(assignment[i])].push_back(docs[i]);
    result.objective += result.centroids[static_cast<size_t>(assignment[i])]
                            .Dot(model.Vector(docs[i]));
  }
  return result;
}

}  // namespace nidc
