#include "nidc/baselines/single_pass_incr.h"

#include <algorithm>

namespace nidc {

Result<SinglePassResult> RunSinglePass(const Corpus& corpus,
                                       const TfIdfModel& model,
                                       const std::vector<DocId>& docs,
                                       const SinglePassOptions& options) {
  if (!(options.threshold >= 0.0 && options.threshold <= 1.0)) {
    return Status::InvalidArgument("threshold must be in [0, 1]");
  }
  SinglePassResult result;
  for (DocId id : docs) {
    if (!model.Contains(id)) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " missing from the tf-idf model");
    }
    const SparseVector& v = model.Vector(id);
    const DayTime t = corpus.doc(id).time;

    int best = -1;
    double best_sim = -1.0;
    for (size_t p = 0; p < result.clusters.size(); ++p) {
      const double norm = result.centroids[p].Norm();
      if (norm <= 0.0) continue;
      double sim = result.centroids[p].Dot(v) / norm;
      if (options.window_days > 0.0) {
        // Linear decaying weight over the time window (Yang et al.): the
        // similarity to a cluster idle for a full window decays to zero.
        const double age = t - result.last_update[p];
        sim *= std::max(0.0, 1.0 - age / options.window_days);
      }
      if (sim > best_sim) {
        best_sim = sim;
        best = static_cast<int>(p);
      }
    }

    const bool can_seed = options.max_clusters == 0 ||
                          result.clusters.size() < options.max_clusters;
    if (best >= 0 && (best_sim >= options.threshold || !can_seed)) {
      const size_t p = static_cast<size_t>(best);
      result.clusters[p].push_back(id);
      result.centroids[p].AddScaled(v, 1.0);
      result.last_update[p] = std::max(result.last_update[p], t);
    } else {
      result.clusters.push_back({id});
      result.centroids.push_back(v);
      result.last_update.push_back(t);
      ++result.num_seeded;
    }
  }
  return result;
}

}  // namespace nidc
