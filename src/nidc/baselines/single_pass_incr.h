// Single-pass incremental clustering (INCR) after Yang et al., "Learning
// Approaches for Detecting and Tracking News Events" (IEEE IS 1999) — the
// incremental baseline the paper's related-work section contrasts against:
// one pass over chronologically ordered documents, join-or-spawn by a
// similarity threshold, with a time window and a *linear* decaying weight in
// the similarity function (versus the paper's exponential decay).

#ifndef NIDC_BASELINES_SINGLE_PASS_INCR_H_
#define NIDC_BASELINES_SINGLE_PASS_INCR_H_

#include "nidc/baselines/tfidf_model.h"
#include "nidc/util/status.h"

namespace nidc {

struct SinglePassOptions {
  /// Join threshold: a document joins the best cluster if the (decayed)
  /// similarity clears it; otherwise it seeds a new cluster.
  double threshold = 0.2;

  /// Time-window width in days for the linear decay; <= 0 disables decay.
  double window_days = 30.0;

  /// Cap on the number of clusters (0 = unlimited). When the cap is hit,
  /// below-threshold documents join their best cluster anyway.
  size_t max_clusters = 0;
};

struct SinglePassResult {
  std::vector<std::vector<DocId>> clusters;
  /// Unnormalized centroid sums (normalized on similarity evaluation).
  std::vector<SparseVector> centroids;
  /// Time of each cluster's most recent member (drives the decay).
  std::vector<DayTime> last_update;
  size_t num_seeded = 0;
};

/// Runs INCR over `docs` in the given order (callers pass chronological
/// order). Documents must be present in `model`.
Result<SinglePassResult> RunSinglePass(const Corpus& corpus,
                                       const TfIdfModel& model,
                                       const std::vector<DocId>& docs,
                                       const SinglePassOptions& options);

}  // namespace nidc

#endif  // NIDC_BASELINES_SINGLE_PASS_INCR_H_
