// Classical tf·idf vector-space model (idf = log(N/df), L2-normalized
// vectors, cosine similarity) — the representation the baseline clusterers
// operate on, in contrast to the novelty-weighted ψ vectors of the core.

#ifndef NIDC_BASELINES_TFIDF_MODEL_H_
#define NIDC_BASELINES_TFIDF_MODEL_H_

#include <unordered_map>
#include <vector>

#include "nidc/corpus/corpus.h"

namespace nidc {

/// Snapshot of tf·idf vectors for a document subset.
class TfIdfModel {
 public:
  /// Builds idf over `docs` (df counted within the subset) and materializes
  /// one L2-normalized tf·idf vector per document.
  TfIdfModel(const Corpus& corpus, const std::vector<DocId>& docs);

  /// The normalized tf·idf vector of a document in the snapshot.
  const SparseVector& Vector(DocId id) const;

  /// Cosine similarity (dot of normalized vectors).
  double Cosine(DocId a, DocId b) const;

  bool Contains(DocId id) const { return index_.contains(id); }
  const std::vector<DocId>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }

  /// idf of a term (0 for terms absent from the subset).
  double Idf(TermId term) const;

 private:
  std::vector<DocId> docs_;
  std::unordered_map<DocId, size_t> index_;
  std::vector<SparseVector> vectors_;
  std::unordered_map<TermId, double> idf_;
};

}  // namespace nidc

#endif  // NIDC_BASELINES_TFIDF_MODEL_H_
