#include "nidc/baselines/f2icm.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace nidc {

Result<F2IcmResult> RunF2Icm(const ForgettingModel& model,
                             const SimilarityContext& ctx,
                             const F2IcmOptions& options) {
  if (model.num_active() == 0) {
    return Status::InvalidArgument("no active documents to cluster");
  }
  const CoverCoefficients cc = ComputeCoverCoefficients(model);

  F2IcmResult result;
  result.nc_estimate = cc.nc;
  size_t num_seeds = options.num_seeds > 0 ? options.num_seeds
                                           : cc.EstimatedClusterCount();
  if (options.max_seeds > 0) num_seeds = std::min(num_seeds, options.max_seeds);
  num_seeds = std::min(num_seeds, cc.docs.size());

  // Select the num_seeds highest-power documents (stable order for ties).
  std::vector<size_t> order(cc.docs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cc.seed_power[a] > cc.seed_power[b];
  });
  result.seeds.reserve(num_seeds);
  std::unordered_map<DocId, size_t> seed_index;
  for (size_t i = 0; i < num_seeds; ++i) {
    const DocId seed = cc.docs[order[i]];
    seed_index.emplace(seed, result.seeds.size());
    result.seeds.push_back(seed);
  }
  result.clusters.assign(result.seeds.size(), {});
  for (size_t s = 0; s < result.seeds.size(); ++s) {
    result.clusters[s].push_back(result.seeds[s]);
  }

  // Single classification pass: every non-seed document joins the most
  // similar seed (C²ICM classifies against seeds only).
  for (DocId id : cc.docs) {
    if (seed_index.contains(id)) continue;
    double best_sim = 0.0;
    int best = -1;
    for (size_t s = 0; s < result.seeds.size(); ++s) {
      const double sim = ctx.Sim(id, result.seeds[s]);
      if (sim > best_sim) {
        best_sim = sim;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) {
      result.outliers.push_back(id);
    } else {
      result.clusters[static_cast<size_t>(best)].push_back(id);
    }
  }
  return result;
}

}  // namespace nidc
