#include "nidc/baselines/tfidf_model.h"

#include <cassert>
#include <cmath>

namespace nidc {

TfIdfModel::TfIdfModel(const Corpus& corpus, const std::vector<DocId>& docs)
    : docs_(docs) {
  // Document frequencies within the subset.
  std::unordered_map<TermId, size_t> df;
  for (DocId id : docs_) {
    for (const auto& e : corpus.doc(id).terms.entries()) {
      if (e.value > 0.0) ++df[e.id];
    }
  }
  const double n = static_cast<double>(docs_.size());
  idf_.reserve(df.size());
  for (const auto& [term, count] : df) {
    idf_[term] = std::log(n / static_cast<double>(count));
  }

  vectors_.reserve(docs_.size());
  index_.reserve(docs_.size());
  for (size_t i = 0; i < docs_.size(); ++i) {
    const Document& doc = corpus.doc(docs_[i]);
    std::vector<SparseVector::Entry> entries;
    entries.reserve(doc.terms.size());
    for (const auto& e : doc.terms.entries()) {
      const double weight = e.value * Idf(e.id);
      if (weight > 0.0) entries.push_back({e.id, weight});
    }
    SparseVector v = SparseVector::FromEntries(std::move(entries));
    const double norm = v.Norm();
    if (norm > 0.0) v.ScaleInPlace(1.0 / norm);
    vectors_.push_back(std::move(v));
    index_.emplace(docs_[i], i);
  }
}

const SparseVector& TfIdfModel::Vector(DocId id) const {
  auto it = index_.find(id);
  assert(it != index_.end());
  return vectors_[it->second];
}

double TfIdfModel::Cosine(DocId a, DocId b) const {
  return Vector(a).Dot(Vector(b));
}

double TfIdfModel::Idf(TermId term) const {
  auto it = idf_.find(term);
  return it == idf_.end() ? 0.0 : it->second;
}

}  // namespace nidc
