// F²ICM — the Forgetting-Factor-based Incremental Clustering Method of
// Ishikawa, Chen & Kitagawa (ECDL 2001), the predecessor this paper's §2.2
// describes: it shares the same forgetting-based similarity function but
// clusters by *seed selection + single classification pass*, following
// Can's C²ICM (ACM TOIS 1993) cover-coefficient methodology, instead of the
// extended K-means iteration.
//
// Cover-coefficient machinery (Can 1993), with forgetting weights folded in
// by replacing raw frequencies f_ik with dw_i·f_ik:
//   α_i = 1 / Σ_k w_ik          (row normalizer,   w_ik = dw_i·f_ik)
//   β_k = 1 / Σ_i w_ik          (column normalizer)
//   δ_i = α_i · Σ_k w_ik²·β_k   (decoupling coefficient, = c_ii)
//   ψ_i = 1 − δ_i               (coupling coefficient)
//   n_c = Σ_i δ_i               (estimated number of clusters)
//   p_i = δ_i · ψ_i · Σ_k w_ik  (seed power)
// The n_c highest-power documents become cluster seeds; every other
// document joins the seed it is most similar to under the novelty-based
// similarity (Eq. 16 of the paper), or the outlier list when it has zero
// similarity to every seed.

#ifndef NIDC_BASELINES_F2ICM_H_
#define NIDC_BASELINES_F2ICM_H_

#include <vector>

#include "nidc/core/cover_coefficient.h"
#include "nidc/core/novelty_similarity.h"
#include "nidc/util/status.h"

namespace nidc {

struct F2IcmOptions {
  /// Number of seeds; 0 = use the cover-coefficient estimate n_c.
  size_t num_seeds = 0;
  /// Upper bound on seeds when estimating (0 = unbounded).
  size_t max_seeds = 256;
};

struct F2IcmResult {
  /// Seed documents, one per cluster (cluster i is seeded by seeds[i]).
  std::vector<DocId> seeds;
  std::vector<std::vector<DocId>> clusters;
  std::vector<DocId> outliers;
  /// The δ-based estimate that chose the seed count (informational).
  double nc_estimate = 0.0;
};

/// Runs one F²ICM clustering pass over the model's active documents: seed
/// selection by seed power, then a single classification sweep by
/// novelty-based similarity to the seeds.
Result<F2IcmResult> RunF2Icm(const ForgettingModel& model,
                             const SimilarityContext& ctx,
                             const F2IcmOptions& options = {});

}  // namespace nidc

#endif  // NIDC_BASELINES_F2ICM_H_
