// GAC-lite: bucketed group-average agglomerative clustering after Yang et
// al.'s GAC (itself extending Cutting's Fractionation) — the hierarchical
// baseline of the paper's related work. Chronologically ordered documents
// are divided into buckets; each bucket is clustered by group-average
// agglomeration; surviving clusters are re-bucketed and the process repeats
// until at most `target_clusters` remain.

#ifndef NIDC_BASELINES_GROUP_AVERAGE_CLUSTERING_H_
#define NIDC_BASELINES_GROUP_AVERAGE_CLUSTERING_H_

#include "nidc/baselines/tfidf_model.h"
#include "nidc/util/status.h"

namespace nidc {

struct GacOptions {
  /// Stop when this many clusters remain.
  size_t target_clusters = 24;

  /// Bucket capacity (in clusters) for the divide step.
  size_t bucket_size = 200;

  /// Within a bucket, stop merging when the best group-average similarity
  /// falls below this value (0 disables the quality gate).
  double min_merge_similarity = 0.0;

  /// Reduction factor per bucket pass: each bucket's cluster count is
  /// reduced to ceil(count * reduction_factor).
  double reduction_factor = 0.5;
};

struct GacResult {
  std::vector<std::vector<DocId>> clusters;
  /// Number of divide-and-merge passes performed.
  int passes = 0;
};

/// Runs bucketed group-average clustering over `docs` (callers pass
/// chronological order, giving temporally proximate stories a higher chance
/// of early merging, as GAC intends).
Result<GacResult> RunGroupAverageClustering(const TfIdfModel& model,
                                            const std::vector<DocId>& docs,
                                            const GacOptions& options);

}  // namespace nidc

#endif  // NIDC_BASELINES_GROUP_AVERAGE_CLUSTERING_H_
