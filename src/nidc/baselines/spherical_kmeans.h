// Classical spherical K-means over tf·idf vectors: the "conventional
// clustering" the paper contrasts against (a 30-day half-life "resembles
// the conventional clustering"; this baseline removes time entirely).

#ifndef NIDC_BASELINES_SPHERICAL_KMEANS_H_
#define NIDC_BASELINES_SPHERICAL_KMEANS_H_

#include "nidc/baselines/tfidf_model.h"
#include "nidc/util/random.h"
#include "nidc/util/status.h"

namespace nidc {

struct SphericalKMeansOptions {
  size_t k = 24;
  int max_iterations = 50;
  uint64_t seed = 42;
  /// Stop when fewer than this fraction of documents change cluster.
  double reassignment_tolerance = 0.0;
};

struct SphericalKMeansResult {
  std::vector<std::vector<DocId>> clusters;
  /// L2-normalized centroids (concept vectors).
  std::vector<SparseVector> centroids;
  /// Objective: Σ_d cos(d, centroid(d)) at termination.
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Runs spherical K-means on the model's documents.
Result<SphericalKMeansResult> RunSphericalKMeans(
    const TfIdfModel& model, const SphericalKMeansOptions& options);

}  // namespace nidc

#endif  // NIDC_BASELINES_SPHERICAL_KMEANS_H_
