#include "nidc/baselines/group_average_clustering.h"

#include <algorithm>
#include <cmath>

namespace nidc {

namespace {

// Working cluster: member list plus the unnormalized centroid sum. With
// L2-normalized document vectors, the group-average similarity between two
// clusters is (Σa · Σb) / (|a||b|), and the merge gain can be computed from
// centroid sums alone — the same trick the core library's Eq. 22 plays.
struct WorkCluster {
  std::vector<DocId> members;
  SparseVector sum;
};

double GroupAverage(const WorkCluster& a, const WorkCluster& b) {
  const double denom =
      static_cast<double>(a.members.size()) * static_cast<double>(b.members.size());
  return denom <= 0.0 ? 0.0 : a.sum.Dot(b.sum) / denom;
}

// Agglomerates `clusters` down to `target` clusters (greedy best-pair
// merging), or earlier if the best similarity drops below `floor`.
void AgglomerateBucket(std::vector<WorkCluster>* clusters, size_t target,
                       double floor) {
  while (clusters->size() > target) {
    double best_sim = -1.0;
    size_t best_i = 0;
    size_t best_j = 0;
    for (size_t i = 0; i < clusters->size(); ++i) {
      for (size_t j = i + 1; j < clusters->size(); ++j) {
        const double sim = GroupAverage((*clusters)[i], (*clusters)[j]);
        if (sim > best_sim) {
          best_sim = sim;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_sim < floor) break;
    WorkCluster& dst = (*clusters)[best_i];
    WorkCluster& src = (*clusters)[best_j];
    dst.members.insert(dst.members.end(), src.members.begin(),
                       src.members.end());
    dst.sum.AddScaled(src.sum, 1.0);
    clusters->erase(clusters->begin() + static_cast<long>(best_j));
  }
}

}  // namespace

Result<GacResult> RunGroupAverageClustering(const TfIdfModel& model,
                                            const std::vector<DocId>& docs,
                                            const GacOptions& options) {
  if (options.target_clusters == 0) {
    return Status::InvalidArgument("target_clusters must be >= 1");
  }
  if (options.bucket_size < 2) {
    return Status::InvalidArgument("bucket_size must be >= 2");
  }
  if (!(options.reduction_factor > 0.0 && options.reduction_factor < 1.0)) {
    return Status::InvalidArgument("reduction_factor must be in (0, 1)");
  }

  // Singleton clusters in document (chronological) order.
  std::vector<WorkCluster> clusters;
  clusters.reserve(docs.size());
  for (DocId id : docs) {
    if (!model.Contains(id)) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " missing from the tf-idf model");
    }
    clusters.push_back({{id}, model.Vector(id)});
  }

  GacResult result;
  while (clusters.size() > options.target_clusters) {
    // Divide into consecutive buckets and shrink each.
    std::vector<WorkCluster> next;
    next.reserve(clusters.size());
    bool any_merge = false;
    for (size_t begin = 0; begin < clusters.size();
         begin += options.bucket_size) {
      const size_t end = std::min(begin + options.bucket_size,
                                  clusters.size());
      std::vector<WorkCluster> bucket(
          std::make_move_iterator(clusters.begin() + static_cast<long>(begin)),
          std::make_move_iterator(clusters.begin() + static_cast<long>(end)));
      const size_t before = bucket.size();
      const size_t bucket_target = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(static_cast<double>(before) *
                                           options.reduction_factor)));
      AgglomerateBucket(&bucket, bucket_target,
                        options.min_merge_similarity);
      if (bucket.size() < before) any_merge = true;
      for (WorkCluster& c : bucket) next.push_back(std::move(c));
    }
    clusters = std::move(next);
    ++result.passes;
    if (!any_merge) break;  // quality gate blocked all merges
  }

  // Final global agglomeration down to the target.
  AgglomerateBucket(&clusters, options.target_clusters,
                    options.min_merge_similarity);
  ++result.passes;

  result.clusters.reserve(clusters.size());
  for (WorkCluster& c : clusters) {
    result.clusters.push_back(std::move(c.members));
  }
  return result;
}

}  // namespace nidc
