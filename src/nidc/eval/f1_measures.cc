#include "nidc/eval/f1_measures.h"

namespace nidc {

GlobalF1 ComputeGlobalF1(const std::vector<MarkedCluster>& marked) {
  GlobalF1 out;
  out.num_evaluated = marked.size();
  Contingency merged;
  double f1_sum = 0.0;
  for (const MarkedCluster& mc : marked) {
    if (!mc.marked()) continue;
    ++out.num_marked;
    merged += mc.table;
    f1_sum += mc.table.F1();
  }
  if (out.num_marked == 0) return out;
  out.micro_f1 = merged.F1();
  out.micro_precision = merged.Precision();
  out.micro_recall = merged.Recall();
  out.macro_f1 = f1_sum / static_cast<double>(out.num_marked);
  return out;
}

}  // namespace nidc
