#include "nidc/eval/topic_tracking.h"

#include <algorithm>

#include "nidc/util/string_util.h"

namespace nidc {

std::vector<size_t> TopicTrack::MissedWindows(size_t min_presence) const {
  std::vector<size_t> out;
  for (size_t w = 0; w < presence.size(); ++w) {
    if (presence[w] >= min_presence && !detected[w]) out.push_back(w);
  }
  return out;
}

std::vector<size_t> TopicTrack::DetectedWindows() const {
  std::vector<size_t> out;
  for (size_t w = 0; w < detected.size(); ++w) {
    if (detected[w]) out.push_back(w);
  }
  return out;
}

std::map<TopicId, TopicTrack> TrackTopics(
    const Corpus& corpus,
    const std::vector<std::vector<DocId>>& window_docs,
    const std::vector<std::vector<MarkedCluster>>& window_markings) {
  const size_t num_windows = window_docs.size();
  std::map<TopicId, TopicTrack> tracks;
  auto track_of = [&](TopicId topic) -> TopicTrack& {
    TopicTrack& track = tracks[topic];
    if (track.presence.empty()) {
      track.topic = topic;
      track.presence.assign(num_windows, 0);
      track.detected.assign(num_windows, false);
      track.best_recall.assign(num_windows, 0.0);
    }
    return track;
  };

  for (size_t w = 0; w < num_windows; ++w) {
    for (DocId id : window_docs[w]) {
      const TopicId topic = corpus.doc(id).topic;
      if (topic != kNoTopic) ++track_of(topic).presence[w];
    }
    if (w >= window_markings.size()) continue;
    for (const MarkedCluster& mc : window_markings[w]) {
      if (!mc.marked()) continue;
      TopicTrack& track = track_of(mc.topic);
      track.detected[w] = true;
      track.best_recall[w] = std::max(track.best_recall[w], mc.recall);
    }
  }
  return tracks;
}

std::string RenderTopicTracks(const std::map<TopicId, TopicTrack>& tracks,
                              const std::vector<std::string>& window_labels,
                              size_t min_total_presence) {
  std::string out = "topic   ";
  for (const std::string& label : window_labels) {
    out += StringPrintf(" %-12s", label.c_str());
  }
  out += "\n";
  for (const auto& [topic, track] : tracks) {
    size_t total = 0;
    for (size_t count : track.presence) total += count;
    if (total < min_total_presence) continue;
    out += StringPrintf("%-8d", topic);
    for (size_t w = 0; w < track.presence.size(); ++w) {
      if (track.presence[w] == 0) {
        out += StringPrintf(" %-12s", ".");
      } else if (track.detected[w]) {
        out += StringPrintf(" %-12s",
                            StringPrintf("%zu*(R%.2f)", track.presence[w],
                                         track.best_recall[w])
                                .c_str());
      } else {
        out += StringPrintf(" %zu%-11s", track.presence[w], "");
      }
    }
    out += "\n";
  }
  out += "(N* = detected with best recall R; bare N = present, undetected)\n";
  return out;
}

}  // namespace nidc
