// Micro- and macro-averaged F1 over marked clusters, following the
// convention of Yang et al. that the paper cites (§6.2.3): microaverage
// merges the per-cluster contingency tables cell-wise; macroaverage averages
// the per-cluster measures. Unmarked clusters are excluded.

#ifndef NIDC_EVAL_F1_MEASURES_H_
#define NIDC_EVAL_F1_MEASURES_H_

#include <vector>

#include "nidc/eval/cluster_topic_matching.h"

namespace nidc {

/// The global performance numbers of one clustering (one Table 4 cell pair).
struct GlobalF1 {
  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double micro_precision = 0.0;
  double micro_recall = 0.0;
  /// Number of clusters that were marked with a topic.
  size_t num_marked = 0;
  /// Number of clusters evaluated (marked + unmarked, excluding skipped
  /// empties).
  size_t num_evaluated = 0;
};

/// Computes global micro/macro F1 from per-cluster markings.
GlobalF1 ComputeGlobalF1(const std::vector<MarkedCluster>& marked);

}  // namespace nidc

#endif  // NIDC_EVAL_F1_MEASURES_H_
