#include "nidc/eval/clustering_metrics.h"

#include <cmath>
#include <map>

namespace nidc {

namespace {

// n·(n−1)/2 as a double (pair counts overflow size_t only past ~6e9 docs,
// but doubles keep the arithmetic simple and exact enough here).
double PairCount(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

ClusteringMetrics ComputeClusteringMetrics(
    const Corpus& corpus, const std::vector<std::vector<DocId>>& clusters) {
  ClusteringMetrics out;

  // Contingency: cluster × topic counts over labeled docs.
  std::vector<std::map<TopicId, size_t>> table;
  std::map<TopicId, size_t> topic_totals;
  std::vector<size_t> cluster_totals;
  for (const auto& members : clusters) {
    std::map<TopicId, size_t> row;
    for (DocId id : members) {
      const TopicId topic = corpus.doc(id).topic;
      if (topic == kNoTopic) continue;
      ++row[topic];
      ++topic_totals[topic];
      ++out.num_docs;
    }
    if (row.empty()) continue;
    size_t total = 0;
    for (const auto& [topic, count] : row) total += count;
    cluster_totals.push_back(total);
    table.push_back(std::move(row));
  }
  out.num_clusters = table.size();
  out.num_topics = topic_totals.size();
  if (out.num_docs == 0) return out;
  const double n = static_cast<double>(out.num_docs);

  // Purity.
  double majority_sum = 0.0;
  for (const auto& row : table) {
    size_t best = 0;
    for (const auto& [topic, count] : row) best = std::max(best, count);
    majority_sum += static_cast<double>(best);
  }
  out.purity = majority_sum / n;

  // Entropies and mutual information (natural log; units cancel).
  double h_clusters = 0.0;
  for (size_t total : cluster_totals) {
    const double p = static_cast<double>(total) / n;
    h_clusters -= p * std::log(p);
  }
  double h_topics = 0.0;
  for (const auto& [topic, total] : topic_totals) {
    const double p = static_cast<double>(total) / n;
    h_topics -= p * std::log(p);
  }
  double mutual_information = 0.0;
  for (size_t p = 0; p < table.size(); ++p) {
    for (const auto& [topic, count] : table[p]) {
      const double joint = static_cast<double>(count) / n;
      const double pc = static_cast<double>(cluster_totals[p]) / n;
      const double pt = static_cast<double>(topic_totals[topic]) / n;
      mutual_information += joint * std::log(joint / (pc * pt));
    }
  }
  const double mean_entropy = (h_clusters + h_topics) / 2.0;
  out.nmi = mean_entropy > 0.0 ? mutual_information / mean_entropy : 0.0;

  // Adjusted Rand index.
  double sum_joint_pairs = 0.0;
  for (const auto& row : table) {
    for (const auto& [topic, count] : row) {
      sum_joint_pairs += PairCount(static_cast<double>(count));
    }
  }
  double sum_cluster_pairs = 0.0;
  for (size_t total : cluster_totals) {
    sum_cluster_pairs += PairCount(static_cast<double>(total));
  }
  double sum_topic_pairs = 0.0;
  for (const auto& [topic, total] : topic_totals) {
    sum_topic_pairs += PairCount(static_cast<double>(total));
  }
  const double total_pairs = PairCount(n);
  if (total_pairs > 0.0) {
    const double expected = sum_cluster_pairs * sum_topic_pairs / total_pairs;
    const double max_index = (sum_cluster_pairs + sum_topic_pairs) / 2.0;
    const double denom = max_index - expected;
    out.adjusted_rand =
        denom != 0.0 ? (sum_joint_pairs - expected) / denom : 0.0;
  }
  return out;
}

}  // namespace nidc
