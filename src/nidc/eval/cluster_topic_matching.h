// Marking clusters with topics (paper §6.2.3): a cluster is marked with a
// topic when the precision of that topic within the cluster is >= 0.60; a
// cluster with no such topic stays unmarked and is excluded from the
// averaged measures.

#ifndef NIDC_EVAL_CLUSTER_TOPIC_MATCHING_H_
#define NIDC_EVAL_CLUSTER_TOPIC_MATCHING_H_

#include <optional>
#include <vector>

#include "nidc/corpus/corpus.h"
#include "nidc/eval/contingency.h"

namespace nidc {

/// Evaluation of one cluster against its marked topic.
struct MarkedCluster {
  size_t cluster_index = 0;
  size_t cluster_size = 0;
  /// The marking topic; kNoTopic when the cluster is unmarked.
  TopicId topic = kNoTopic;
  /// Contingency of the marked topic vs this cluster (undefined cells when
  /// unmarked).
  Contingency table;
  double precision = 0.0;
  double recall = 0.0;

  bool marked() const { return topic != kNoTopic; }
};

/// Options for the marking procedure.
struct MatchingOptions {
  /// Minimum within-cluster precision for a topic to mark a cluster (paper:
  /// 0.60).
  double precision_threshold = 0.60;
  /// Skip empty clusters entirely.
  bool skip_empty_clusters = true;
};

/// Evaluates every cluster of `clusters` against ground-truth labels.
///
/// `evaluated_docs` defines the evaluation universe (the docs clustered in
/// this window): recall denominators count on-topic documents within it.
/// Documents with kNoTopic are counted as "not on topic" for every topic.
std::vector<MarkedCluster> MarkClusters(
    const Corpus& corpus, const std::vector<std::vector<DocId>>& clusters,
    const std::vector<DocId>& evaluated_docs, const MatchingOptions& options);

}  // namespace nidc

#endif  // NIDC_EVAL_CLUSTER_TOPIC_MATCHING_H_
