// Topic lifecycle tracking across time windows — the automated form of the
// paper's §6.2.3 analysis ("the topic appears in the clustering of the
// 7-day half life span in the fourth time window ... but not in the
// clustering of the 30-day one").

#ifndef NIDC_EVAL_TOPIC_TRACKING_H_
#define NIDC_EVAL_TOPIC_TRACKING_H_

#include <map>
#include <string>
#include <vector>

#include "nidc/eval/cluster_topic_matching.h"

namespace nidc {

/// One topic's detection record over a sequence of windows.
struct TopicTrack {
  TopicId topic = kNoTopic;
  /// Per window: number of documents the topic has there.
  std::vector<size_t> presence;
  /// Per window: was some cluster marked with this topic?
  std::vector<bool> detected;
  /// Per window: best recall among clusters marked with it (0 if none).
  std::vector<double> best_recall;

  /// Windows where the topic has >= min_presence docs but no detection.
  std::vector<size_t> MissedWindows(size_t min_presence = 1) const;
  /// Windows where the topic is detected.
  std::vector<size_t> DetectedWindows() const;
};

/// Builds per-topic tracks from per-window cluster markings.
/// `window_docs[w]` are the documents evaluated in window w and
/// `window_markings[w]` the MarkClusters output for that window. Topics
/// are the distinct labels across all windows.
std::map<TopicId, TopicTrack> TrackTopics(
    const Corpus& corpus,
    const std::vector<std::vector<DocId>>& window_docs,
    const std::vector<std::vector<MarkedCluster>>& window_markings);

/// Renders tracks as a compact lifeline table:
///   topic 20074 |  .  .  3· 20* 7·  20*  (·=present, *=detected)
std::string RenderTopicTracks(const std::map<TopicId, TopicTrack>& tracks,
                              const std::vector<std::string>& window_labels,
                              size_t min_total_presence = 1);

}  // namespace nidc

#endif  // NIDC_EVAL_TOPIC_TRACKING_H_
