// Human-readable evaluation reports: the per-cluster precision/recall
// listings behind the paper's Figures 1–4 and the Table 4 summary rows.

#ifndef NIDC_EVAL_REPORT_H_
#define NIDC_EVAL_REPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "nidc/eval/f1_measures.h"

namespace nidc {

/// Resolves a TopicId to a display name; defaults to "topic<N>".
using TopicNamer = std::function<std::string(TopicId)>;

/// Renders the per-cluster table: cluster idx, size, marked topic,
/// precision, recall (Figures 1–4 are bar charts of exactly these columns).
std::string RenderClusterReport(const std::vector<MarkedCluster>& marked,
                                const TopicNamer& namer = nullptr);

/// Renders per-cluster precision/recall as paired ASCII bars, visually
/// mirroring the paper's figures.
std::string RenderPrecisionRecallBars(const std::vector<MarkedCluster>& marked,
                                      size_t bar_width = 25);

/// One "first (β=7 / β=30)"-style Table 4 row.
std::string FormatTable4Row(const std::string& window_label,
                            const GlobalF1& short_beta,
                            const GlobalF1& long_beta);

}  // namespace nidc

#endif  // NIDC_EVAL_REPORT_H_
