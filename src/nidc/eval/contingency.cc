#include "nidc/eval/contingency.h"

namespace nidc {

double Contingency::Precision() const {
  const size_t denom = a + b;
  return denom == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(denom);
}

double Contingency::Recall() const {
  const size_t denom = a + c;
  return denom == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(denom);
}

double Contingency::F1() const {
  const size_t denom = 2 * a + b + c;
  return denom == 0 ? 0.0
                    : 2.0 * static_cast<double>(a) / static_cast<double>(denom);
}

Contingency& Contingency::operator+=(const Contingency& other) {
  a += other.a;
  b += other.b;
  c += other.c;
  d += other.d;
  return *this;
}

}  // namespace nidc
