#include "nidc/eval/cluster_topic_matching.h"

#include <map>

namespace nidc {

std::vector<MarkedCluster> MarkClusters(
    const Corpus& corpus, const std::vector<std::vector<DocId>>& clusters,
    const std::vector<DocId>& evaluated_docs, const MatchingOptions& options) {
  // Topic sizes over the evaluation universe (recall denominators a+c).
  std::map<TopicId, size_t> topic_sizes;
  for (DocId id : evaluated_docs) {
    const TopicId topic = corpus.doc(id).topic;
    if (topic != kNoTopic) ++topic_sizes[topic];
  }

  std::vector<MarkedCluster> out;
  for (size_t p = 0; p < clusters.size(); ++p) {
    const std::vector<DocId>& members = clusters[p];
    if (members.empty() && options.skip_empty_clusters) continue;

    MarkedCluster mc;
    mc.cluster_index = p;
    mc.cluster_size = members.size();

    // Count members per topic, then pick the highest-precision topic.
    std::map<TopicId, size_t> in_cluster;
    for (DocId id : members) {
      const TopicId topic = corpus.doc(id).topic;
      if (topic != kNoTopic) ++in_cluster[topic];
    }
    TopicId best_topic = kNoTopic;
    size_t best_count = 0;
    for (const auto& [topic, count] : in_cluster) {
      if (count > best_count) {
        best_count = count;
        best_topic = topic;
      }
    }
    if (best_topic != kNoTopic && !members.empty()) {
      const double precision = static_cast<double>(best_count) /
                               static_cast<double>(members.size());
      if (precision >= options.precision_threshold) {
        mc.topic = best_topic;
        mc.table.a = best_count;
        mc.table.b = members.size() - best_count;
        mc.table.c = topic_sizes[best_topic] - best_count;
        mc.table.d = evaluated_docs.size() - members.size() -
                     mc.table.c;
        mc.precision = mc.table.Precision();
        mc.recall = mc.table.Recall();
      }
    }
    out.push_back(std::move(mc));
  }
  return out;
}

}  // namespace nidc
