// The 2×2 contingency table of paper Table 3 and the precision/recall/F1
// definitions of §6.2.3.

#ifndef NIDC_EVAL_CONTINGENCY_H_
#define NIDC_EVAL_CONTINGENCY_H_

#include <cstddef>

namespace nidc {

/// Counts of documents by (in cluster?) × (on topic?) — paper Table 3.
struct Contingency {
  size_t a = 0;  ///< in cluster, on topic
  size_t b = 0;  ///< in cluster, not on topic
  size_t c = 0;  ///< not in cluster, on topic
  size_t d = 0;  ///< not in cluster, not on topic

  /// p = a/(a+b); 0 when the cluster is empty.
  double Precision() const;

  /// r = a/(a+c); 0 when the topic is empty.
  double Recall() const;

  /// F1 = 2a/(2a+b+c); 0 when undefined.
  double F1() const;

  /// Cell-wise sum (used to build the merged table for microaveraging).
  Contingency& operator+=(const Contingency& other);
};

}  // namespace nidc

#endif  // NIDC_EVAL_CONTINGENCY_H_
