// Standard external clustering-quality measures beyond the paper's
// marked-cluster F1: purity, normalized mutual information, and the
// adjusted Rand index. Used by the baseline benches to report quality on
// scales the F1-marking procedure (precision ≥ 0.6 gate) cannot see.
//
// Conventions: the evaluation universe is the set of *assigned* documents
// passed in (outliers excluded by the caller, or included as singleton
// clusters if desired); documents labeled kNoTopic are skipped.

#ifndef NIDC_EVAL_CLUSTERING_METRICS_H_
#define NIDC_EVAL_CLUSTERING_METRICS_H_

#include <vector>

#include "nidc/corpus/corpus.h"

namespace nidc {

/// External-measure summary of one clustering against ground truth.
struct ClusteringMetrics {
  /// Σ_p max_t |C_p ∩ T_t| / N — fraction of docs in their cluster's
  /// majority topic.
  double purity = 0.0;
  /// NMI with the arithmetic-mean normalization: I(C;T) / ((H(C)+H(T))/2).
  /// 0 when either entropy is 0.
  double nmi = 0.0;
  /// Adjusted Rand index (chance-corrected pair agreement), in [-1, 1].
  double adjusted_rand = 0.0;
  /// Labeled documents actually evaluated.
  size_t num_docs = 0;
  /// Non-empty clusters containing at least one labeled document.
  size_t num_clusters = 0;
  /// Distinct ground-truth topics present.
  size_t num_topics = 0;
};

/// Computes all measures for `clusters` over labeled documents.
ClusteringMetrics ComputeClusteringMetrics(
    const Corpus& corpus, const std::vector<std::vector<DocId>>& clusters);

}  // namespace nidc

#endif  // NIDC_EVAL_CLUSTERING_METRICS_H_
