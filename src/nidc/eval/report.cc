#include "nidc/eval/report.h"

#include <sstream>

#include "nidc/util/string_util.h"
#include "nidc/util/table_printer.h"

namespace nidc {

namespace {
std::string TopicName(const TopicNamer& namer, TopicId topic) {
  if (topic == kNoTopic) return "-";
  if (namer) return namer(topic);
  return StringPrintf("topic%d", topic);
}
}  // namespace

std::string RenderClusterReport(const std::vector<MarkedCluster>& marked,
                                const TopicNamer& namer) {
  TablePrinter table({"cluster", "size", "marked topic", "precision",
                      "recall", "F1"});
  for (const MarkedCluster& mc : marked) {
    if (mc.marked()) {
      table.AddRow({std::to_string(mc.cluster_index),
                    std::to_string(mc.cluster_size),
                    TopicName(namer, mc.topic),
                    StringPrintf("%.2f", mc.precision),
                    StringPrintf("%.2f", mc.recall),
                    StringPrintf("%.2f", mc.table.F1())});
    } else {
      table.AddRow({std::to_string(mc.cluster_index),
                    std::to_string(mc.cluster_size), "(unmarked)", "-", "-",
                    "-"});
    }
  }
  return table.ToString();
}

std::string RenderPrecisionRecallBars(const std::vector<MarkedCluster>& marked,
                                      size_t bar_width) {
  std::ostringstream oss;
  auto bar = [bar_width](double value) {
    const size_t filled =
        static_cast<size_t>(value * static_cast<double>(bar_width) + 0.5);
    return std::string(filled, '#') + std::string(bar_width - filled, '.');
  };
  for (const MarkedCluster& mc : marked) {
    if (!mc.marked()) {
      oss << StringPrintf("c%02zu %-32s (unmarked, %zu docs)\n",
                          mc.cluster_index, "", mc.cluster_size);
      continue;
    }
    oss << StringPrintf("c%02zu  P %.2f |%s|  R %.2f |%s|  topic%d (%zu docs)\n",
                        mc.cluster_index, mc.precision,
                        bar(mc.precision).c_str(), mc.recall,
                        bar(mc.recall).c_str(), mc.topic, mc.cluster_size);
  }
  return oss.str();
}

std::string FormatTable4Row(const std::string& window_label,
                            const GlobalF1& short_beta,
                            const GlobalF1& long_beta) {
  return StringPrintf("%s  micro %.2f / %.2f   macro %.2f / %.2f",
                      window_label.c_str(), short_beta.micro_f1,
                      long_beta.micro_f1, short_beta.macro_f1,
                      long_beta.macro_f1);
}

}  // namespace nidc
