// The document forgetting model (paper §3 and §5.1).
//
// Every document gets weight dw_i = λ^(τ - T_i) (Eq. 1), with
// λ = exp(-ln 2 / β) derived from the half-life span β (Eq. 2). The model
// maintains, incrementally:
//   * per-document weights dw_i            (Eq. 27: dw|τ+Δτ = λ^Δτ · dw|τ)
//   * the total weight tdw = Σ dw_i        (Eq. 28: tdw' = λ^Δτ · tdw + m')
//   * selection probabilities Pr(d_i) = dw_i / tdw               (Eq. 29)
//   * term statistics S_k = Σ_i dw_i · f_ik / len_i, from which
//     Pr(t_k) = S_k / tdw                  (Eq. 10 combined with Eq. 4/8)
// and expires documents whose weight fell below ε = λ^γ (§5.2 step 2).

#ifndef NIDC_FORGETTING_FORGETTING_MODEL_H_
#define NIDC_FORGETTING_FORGETTING_MODEL_H_

#include <utility>
#include <vector>

#include "nidc/corpus/corpus.h"
#include "nidc/forgetting/document_weights.h"
#include "nidc/forgetting/term_statistics.h"
#include "nidc/util/status.h"

namespace nidc {

/// User-facing parameters of the forgetting model.
struct ForgettingParams {
  /// Half-life span β in days: the period in which a document loses half of
  /// its weight (Eq. 2). Must be > 0.
  double half_life_days = 7.0;

  /// Life span γ in days: the period during which a document stays active;
  /// defines the expiration threshold ε = λ^γ. Must be > 0.
  double life_span_days = 14.0;

  /// λ = exp(-ln 2 / β) ∈ (0, 1).
  double Lambda() const;

  /// ε = λ^γ = 2^(-γ/β).
  double Epsilon() const;

  /// Validates parameter ranges: β and γ must be finite and > 0, and the
  /// derived ε = 2^(-γ/β) must lie in (0, 1) — an ε that underflows to 0
  /// would silently disable expiration and grow the active set forever.
  Status Validate() const;
};

/// The complete numeric state of a ForgettingModel, captured in its exact
/// internal representation (raw weights, raw term sums plus their decay
/// scale). Restoring it yields a model whose every future computation is
/// bit-identical to the original's — the property the durability layer's
/// recovery-equivalence guarantee rests on. (Rebuilding from acquisition
/// times instead reproduces the same values only up to last-bit rounding,
/// since λ^a · λ^b ≠ λ^(a+b) in floating point.)
struct ExactModelState {
  DayTime now = 0.0;
  double tdw = 0.0;
  /// (id, dw) in insertion order — doubles as the active-document list.
  std::vector<std::pair<DocId, double>> weights;
  double term_scale = 1.0;
  /// Raw S̃_k entries, sorted by term id.
  std::vector<std::pair<TermId, double>> term_sums;
};

/// Incrementally maintained forgetting-model state over a Corpus.
///
/// The model tracks the *active* subset of the corpus: documents that have
/// been added and have not yet expired. All probabilities are with respect
/// to the active set, matching the paper's repository semantics.
class ForgettingModel {
 public:
  /// `corpus` must outlive the model.
  ForgettingModel(const Corpus* corpus, ForgettingParams params);

  // --- Incremental interface (paper §5.1 / §5.2 steps 1–2) ---

  /// Advances the clock to `tau` (must be >= now()), decaying all document
  /// weights, tdw and the term statistics by λ^Δτ.
  void AdvanceTo(DayTime tau);

  /// Incorporates documents into the active set. Each document's initial
  /// weight is λ^(now - T_i), i.e. exactly 1 when its acquisition time is
  /// the current time. Documents must not already be active.
  void AddDocuments(const std::vector<DocId>& ids);

  /// Removes and returns all active documents with dw < ε (§5.2 step 2).
  std::vector<DocId> ExpireDocuments();

  /// Removes one document explicitly.
  void RemoveDocument(DocId id);

  // --- Non-incremental (from-scratch) interface, for Experiment 1 ---

  /// Clears all state, sets the clock to `tau`, and recomputes every
  /// statistic from scratch for `ids`. Cost is O(Σ |terms of d|) — this is
  /// the "non-incremental" arm of the paper's Table 1.
  void RebuildFromScratch(const std::vector<DocId>& ids, DayTime tau);

  // --- Exact persistence (see ExactModelState) ---

  /// Captures the full numeric state for a bit-exact snapshot.
  ExactModelState CaptureExact() const;

  /// Restores a captured state verbatim. Rejects duplicate or
  /// out-of-corpus document ids and non-finite values; on error the model
  /// is left empty at the state's clock.
  Status RestoreExact(const ExactModelState& state);

  // --- Accessors ---

  /// Selection probability Pr(d_i) = dw_i / tdw (Eq. 4). 0 if inactive.
  double PrDoc(DocId id) const;

  /// Occurrence probability Pr(t_k) (Eq. 10). 0 for unseen terms.
  double PrTerm(TermId term) const;

  /// idf_k = 1 / sqrt(Pr(t_k)) (Eq. 14). Returns 0 for unseen terms so the
  /// corresponding tf·idf components vanish instead of exploding.
  double Idf(TermId term) const;

  /// Current document weight dw_i; 0 if inactive.
  double Weight(DocId id) const { return weights_.Weight(id); }

  /// Total document weight tdw (Eq. 3).
  double TotalWeight() const { return weights_.TotalWeight(); }

  /// Whether the document is in the active set.
  bool IsActive(DocId id) const { return weights_.Contains(id); }

  /// Ids of all active documents, in insertion order.
  const std::vector<DocId>& active_docs() const {
    return weights_.active_docs();
  }
  size_t num_active() const { return weights_.size(); }

  /// Number of terms with recorded statistics — the active vocabulary
  /// size, as surfaced in the step telemetry.
  size_t NumTerms() const { return terms_.num_terms(); }

  DayTime now() const { return weights_.now(); }
  const ForgettingParams& params() const { return params_; }
  const Corpus& corpus() const { return *corpus_; }

 private:
  const Corpus* corpus_;
  ForgettingParams params_;
  DocumentWeights weights_;
  TermStatistics terms_;
};

}  // namespace nidc

#endif  // NIDC_FORGETTING_FORGETTING_MODEL_H_
