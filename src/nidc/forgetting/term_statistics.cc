#include "nidc/forgetting/term_statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nidc {

namespace {
// Below this scale we fold the scalar back into the entries to preserve
// precision; 1e-120 leaves ample headroom above denormals.
constexpr double kRenormalizeThreshold = 1e-120;
}  // namespace

void TermStatistics::AddDocument(const Document& doc, double weight) {
  const double len = doc.Length();
  if (len <= 0.0) return;  // empty documents carry no term mass
  const double unit = weight / len / scale_;
  for (const auto& entry : doc.terms.entries()) {
    sums_[entry.id] += unit * entry.value;
  }
}

void TermStatistics::RemoveDocument(const Document& doc, double weight) {
  const double len = doc.Length();
  if (len <= 0.0) return;
  const double unit = weight / len / scale_;
  for (const auto& entry : doc.terms.entries()) {
    auto it = sums_.find(entry.id);
    if (it == sums_.end()) continue;
    it->second -= unit * entry.value;
    if (it->second <= 0.0) sums_.erase(it);
  }
}

void TermStatistics::Decay(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  scale_ *= factor;
  if (scale_ < kRenormalizeThreshold) Renormalize();
}

void TermStatistics::Renormalize() {
  for (auto& [term, sum] : sums_) sum *= scale_;
  scale_ = 1.0;
}

double TermStatistics::SumWeightedFreq(TermId term) const {
  auto it = sums_.find(term);
  if (it == sums_.end()) return 0.0;
  const double value = scale_ * it->second;
  return value > 0.0 ? value : 0.0;
}

double TermStatistics::PrTerm(TermId term, double tdw) const {
  if (tdw <= 0.0) return 0.0;
  return SumWeightedFreq(term) / tdw;
}

void TermStatistics::Clear() {
  sums_.clear();
  scale_ = 1.0;
}

std::vector<std::pair<TermId, double>> TermStatistics::ExactSums() const {
  std::vector<std::pair<TermId, double>> out(sums_.begin(), sums_.end());
  std::sort(out.begin(), out.end());
  return out;
}

Status TermStatistics::RestoreExact(
    double scale, const std::vector<std::pair<TermId, double>>& sums) {
  if (!std::isfinite(scale) || scale <= 0.0) {
    return Status::InvalidArgument("invalid term-statistics scale");
  }
  Clear();
  scale_ = scale;
  for (const auto& [term, sum] : sums) {
    if (!std::isfinite(sum)) {
      return Status::InvalidArgument("non-finite sum for term " +
                                     std::to_string(term));
    }
    if (!sums_.emplace(term, sum).second) {
      return Status::InvalidArgument("duplicate term " +
                                     std::to_string(term) + " in sums");
    }
  }
  return Status::OK();
}

}  // namespace nidc
