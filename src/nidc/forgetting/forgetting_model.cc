#include "nidc/forgetting/forgetting_model.h"

#include <cassert>
#include <cmath>

namespace nidc {

double ForgettingParams::Lambda() const {
  return std::exp(-std::log(2.0) / half_life_days);
}

double ForgettingParams::Epsilon() const {
  return std::pow(Lambda(), life_span_days);
}

Status ForgettingParams::Validate() const {
  if (!std::isfinite(half_life_days) || !(half_life_days > 0.0)) {
    return Status::InvalidArgument("half_life_days must be finite and > 0");
  }
  if (!std::isfinite(life_span_days) || !(life_span_days > 0.0)) {
    return Status::InvalidArgument("life_span_days must be finite and > 0");
  }
  const double epsilon = Epsilon();
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument(
        "epsilon = 2^(-gamma/beta) must lie in (0, 1); gamma/beta is too "
        "extreme for this beta/gamma pair");
  }
  return Status::OK();
}

ForgettingModel::ForgettingModel(const Corpus* corpus, ForgettingParams params)
    : corpus_(corpus), params_(params), weights_(params.Lambda()) {
  assert(params.Validate().ok());
}

void ForgettingModel::AdvanceTo(DayTime tau) {
  assert(tau >= now());
  if (tau == now()) return;
  const double decay = std::pow(params_.Lambda(), tau - now());
  weights_.AdvanceTo(tau);
  terms_.Decay(decay);
}

void ForgettingModel::AddDocuments(const std::vector<DocId>& ids) {
  for (DocId id : ids) {
    const Document& doc = corpus_->doc(id);
    weights_.Add(id, doc.time);
    terms_.AddDocument(doc, weights_.Weight(id));
  }
}

std::vector<DocId> ForgettingModel::ExpireDocuments() {
  // Capture weights before removal so term mass is subtracted consistently.
  const double epsilon = params_.Epsilon();
  std::vector<std::pair<DocId, double>> expiring;
  for (DocId id : weights_.active_docs()) {
    const double w = weights_.Weight(id);
    if (w < epsilon) expiring.emplace_back(id, w);
  }
  std::vector<DocId> removed = weights_.RemoveBelow(epsilon);
  for (const auto& [id, w] : expiring) {
    terms_.RemoveDocument(corpus_->doc(id), w);
  }
  return removed;
}

void ForgettingModel::RemoveDocument(DocId id) {
  const double w = weights_.Weight(id);
  assert(weights_.Contains(id));
  weights_.Remove(id);
  terms_.RemoveDocument(corpus_->doc(id), w);
}

void ForgettingModel::RebuildFromScratch(const std::vector<DocId>& ids,
                                         DayTime tau) {
  weights_.Reset(tau);
  terms_.Clear();
  AddDocuments(ids);
}

ExactModelState ForgettingModel::CaptureExact() const {
  ExactModelState state;
  state.now = weights_.now();
  state.tdw = weights_.TotalWeight();
  state.weights = weights_.ExactWeights();
  state.term_scale = terms_.scale();
  state.term_sums = terms_.ExactSums();
  return state;
}

Status ForgettingModel::RestoreExact(const ExactModelState& state) {
  for (const auto& [id, weight] : state.weights) {
    (void)weight;
    if (id >= corpus_->size()) {
      return Status::InvalidArgument("exact state references document " +
                                     std::to_string(id) +
                                     " beyond the corpus");
    }
  }
  Status st = weights_.RestoreExact(state.now, state.tdw, state.weights);
  if (st.ok()) st = terms_.RestoreExact(state.term_scale, state.term_sums);
  if (!st.ok()) {
    weights_.Reset(state.now);
    terms_.Clear();
  }
  return st;
}

double ForgettingModel::PrDoc(DocId id) const {
  const double tdw = weights_.TotalWeight();
  if (tdw <= 0.0) return 0.0;
  return weights_.Weight(id) / tdw;
}

double ForgettingModel::PrTerm(TermId term) const {
  return terms_.PrTerm(term, weights_.TotalWeight());
}

double ForgettingModel::Idf(TermId term) const {
  const double pr = PrTerm(term);
  if (pr <= 0.0) return 0.0;
  return 1.0 / std::sqrt(pr);
}

}  // namespace nidc
