// Per-document forgetting weights dw_i and their total tdw, maintained
// incrementally exactly as Eq. 27–28 prescribe.

#ifndef NIDC_FORGETTING_DOCUMENT_WEIGHTS_H_
#define NIDC_FORGETTING_DOCUMENT_WEIGHTS_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "nidc/corpus/document.h"
#include "nidc/util/status.h"

namespace nidc {

/// Tracks dw_i for the active document set and tdw = Σ dw_i.
///
/// AdvanceTo multiplies every stored weight by λ^Δτ (the paper's explicit
/// update; O(active docs)). Add/Remove adjust tdw by the document's weight.
class DocumentWeights {
 public:
  explicit DocumentWeights(double lambda);

  /// Advances the clock; `tau` must be >= now().
  void AdvanceTo(DayTime tau);

  /// Registers a document acquired at `acquisition_time` (<= now()); its
  /// initial weight is λ^(now - T). Must not already be present.
  void Add(DocId id, DayTime acquisition_time);

  /// Unregisters a document, subtracting its weight from tdw. O(1): the
  /// active list is swap-and-popped via a position map, so the order of
  /// active_docs()/ExactWeights() after a single Remove is *not* insertion
  /// order (production expiry goes through the order-preserving
  /// RemoveBelow; this entry point only serves tests and tooling).
  void Remove(DocId id);

  /// Removes every document with weight < epsilon; returns removed ids.
  std::vector<DocId> RemoveBelow(double epsilon);

  /// Clears all documents and resets the clock to `tau`.
  void Reset(DayTime tau);

  /// Bit-exact persistence support: the (id, dw) pairs in insertion order.
  /// Together with TotalWeight() and now() this captures the full numeric
  /// state, so a restored instance continues with identical arithmetic.
  std::vector<std::pair<DocId, double>> ExactWeights() const;

  /// Restores the exact state captured above. `tdw` is installed verbatim
  /// (recomputing the sum would differ in the last bits from the
  /// incrementally maintained total). Rejects duplicate ids and
  /// non-finite or non-positive weights.
  Status RestoreExact(DayTime now, double tdw,
                      const std::vector<std::pair<DocId, double>>& weights);

  double Weight(DocId id) const;
  bool Contains(DocId id) const { return pos_.contains(id); }
  double TotalWeight() const { return tdw_; }
  DayTime now() const { return now_; }
  size_t size() const { return active_.size(); }

  /// Active document ids in insertion (chronological) order — except after
  /// a single-document Remove, which swap-and-pops (see Remove).
  const std::vector<DocId>& active_docs() const { return active_; }

  double lambda() const { return lambda_; }

 private:
  double lambda_;
  DayTime now_ = 0.0;
  double tdw_ = 0.0;
  // Weights live in a vector parallel to active_ (dense iteration for the
  // per-advance decay); pos_ maps an id to its index in both.
  std::vector<DocId> active_;
  std::vector<double> dw_;
  std::unordered_map<DocId, size_t> pos_;
};

}  // namespace nidc

#endif  // NIDC_FORGETTING_DOCUMENT_WEIGHTS_H_
