#include "nidc/forgetting/document_weights.h"

#include <cassert>
#include <cmath>

namespace nidc {

DocumentWeights::DocumentWeights(double lambda) : lambda_(lambda) {
  assert(lambda > 0.0 && lambda < 1.0);
}

void DocumentWeights::AdvanceTo(DayTime tau) {
  assert(tau >= now_);
  if (tau == now_) return;
  // Eq. 27: dw|τ+Δτ = λ^Δτ · dw|τ ; Eq. 28's decay half for tdw.
  const double decay = std::pow(lambda_, tau - now_);
  for (double& weight : dw_) weight *= decay;
  tdw_ *= decay;
  now_ = tau;
}

void DocumentWeights::Add(DocId id, DayTime acquisition_time) {
  assert(!pos_.contains(id));
  assert(acquisition_time <= now_);
  // Eq. 1 at the current clock; exactly 1 when T_i == now.
  const double weight = std::pow(lambda_, now_ - acquisition_time);
  pos_.emplace(id, active_.size());
  active_.push_back(id);
  dw_.push_back(weight);
  tdw_ += weight;  // Eq. 28's "+ m'" generalized to back-dated arrivals.
}

void DocumentWeights::Remove(DocId id) {
  auto it = pos_.find(id);
  assert(it != pos_.end());
  const size_t pos = it->second;
  tdw_ -= dw_[pos];
  pos_.erase(it);
  const size_t last = active_.size() - 1;
  if (pos != last) {
    active_[pos] = active_[last];
    dw_[pos] = dw_[last];
    pos_[active_[pos]] = pos;
  }
  active_.pop_back();
  dw_.pop_back();
}

std::vector<DocId> DocumentWeights::RemoveBelow(double epsilon) {
  std::vector<DocId> removed;
  size_t kept = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    if (dw_[i] < epsilon) {
      tdw_ -= dw_[i];
      pos_.erase(active_[i]);
      removed.push_back(active_[i]);
    } else {
      active_[kept] = active_[i];
      dw_[kept] = dw_[i];
      pos_[active_[kept]] = kept;
      ++kept;
    }
  }
  active_.resize(kept);
  dw_.resize(kept);
  return removed;
}

void DocumentWeights::Reset(DayTime tau) {
  active_.clear();
  dw_.clear();
  pos_.clear();
  tdw_ = 0.0;
  now_ = tau;
}

std::vector<std::pair<DocId, double>> DocumentWeights::ExactWeights() const {
  std::vector<std::pair<DocId, double>> out;
  out.reserve(active_.size());
  for (size_t i = 0; i < active_.size(); ++i) {
    out.emplace_back(active_[i], dw_[i]);
  }
  return out;
}

Status DocumentWeights::RestoreExact(
    DayTime now, double tdw,
    const std::vector<std::pair<DocId, double>>& weights) {
  if (!std::isfinite(now) || !std::isfinite(tdw) || tdw < 0.0) {
    return Status::InvalidArgument("non-finite clock or total weight");
  }
  Reset(now);
  for (const auto& [id, weight] : weights) {
    if (pos_.contains(id)) {
      return Status::InvalidArgument("duplicate document " +
                                     std::to_string(id) + " in weights");
    }
    if (!std::isfinite(weight) || weight <= 0.0) {
      return Status::InvalidArgument("invalid weight for document " +
                                     std::to_string(id));
    }
    pos_.emplace(id, active_.size());
    active_.push_back(id);
    dw_.push_back(weight);
  }
  tdw_ = tdw;
  return Status::OK();
}

double DocumentWeights::Weight(DocId id) const {
  auto it = pos_.find(id);
  return it == pos_.end() ? 0.0 : dw_[it->second];
}

}  // namespace nidc
