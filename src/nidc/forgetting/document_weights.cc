#include "nidc/forgetting/document_weights.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nidc {

DocumentWeights::DocumentWeights(double lambda) : lambda_(lambda) {
  assert(lambda > 0.0 && lambda < 1.0);
}

void DocumentWeights::AdvanceTo(DayTime tau) {
  assert(tau >= now_);
  if (tau == now_) return;
  // Eq. 27: dw|τ+Δτ = λ^Δτ · dw|τ ; Eq. 28's decay half for tdw.
  const double decay = std::pow(lambda_, tau - now_);
  for (auto& [id, weight] : weights_) weight *= decay;
  tdw_ *= decay;
  now_ = tau;
}

void DocumentWeights::Add(DocId id, DayTime acquisition_time) {
  assert(!weights_.contains(id));
  assert(acquisition_time <= now_);
  // Eq. 1 at the current clock; exactly 1 when T_i == now.
  const double weight = std::pow(lambda_, now_ - acquisition_time);
  weights_.emplace(id, weight);
  active_.push_back(id);
  tdw_ += weight;  // Eq. 28's "+ m'" generalized to back-dated arrivals.
}

void DocumentWeights::Remove(DocId id) {
  auto it = weights_.find(id);
  assert(it != weights_.end());
  tdw_ -= it->second;
  weights_.erase(it);
  active_.erase(std::find(active_.begin(), active_.end(), id));
}

std::vector<DocId> DocumentWeights::RemoveBelow(double epsilon) {
  std::vector<DocId> removed;
  std::vector<DocId> kept;
  kept.reserve(active_.size());
  for (DocId id : active_) {
    auto it = weights_.find(id);
    if (it->second < epsilon) {
      tdw_ -= it->second;
      weights_.erase(it);
      removed.push_back(id);
    } else {
      kept.push_back(id);
    }
  }
  active_ = std::move(kept);
  return removed;
}

void DocumentWeights::Reset(DayTime tau) {
  weights_.clear();
  active_.clear();
  tdw_ = 0.0;
  now_ = tau;
}

std::vector<std::pair<DocId, double>> DocumentWeights::ExactWeights() const {
  std::vector<std::pair<DocId, double>> out;
  out.reserve(active_.size());
  for (DocId id : active_) {
    out.emplace_back(id, weights_.at(id));
  }
  return out;
}

Status DocumentWeights::RestoreExact(
    DayTime now, double tdw,
    const std::vector<std::pair<DocId, double>>& weights) {
  if (!std::isfinite(now) || !std::isfinite(tdw) || tdw < 0.0) {
    return Status::InvalidArgument("non-finite clock or total weight");
  }
  Reset(now);
  for (const auto& [id, weight] : weights) {
    if (weights_.contains(id)) {
      return Status::InvalidArgument("duplicate document " +
                                     std::to_string(id) + " in weights");
    }
    if (!std::isfinite(weight) || weight <= 0.0) {
      return Status::InvalidArgument("invalid weight for document " +
                                     std::to_string(id));
    }
    weights_.emplace(id, weight);
    active_.push_back(id);
  }
  tdw_ = tdw;
  return Status::OK();
}

double DocumentWeights::Weight(DocId id) const {
  auto it = weights_.find(id);
  return it == weights_.end() ? 0.0 : it->second;
}

}  // namespace nidc
