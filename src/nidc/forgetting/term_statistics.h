// Incremental maintenance of the term statistics behind Pr(t_k) (Eq. 10).
//
// With Pr(t_k|d_i) = f_ik / len_i (Eq. 8) and Pr(d_i) = dw_i / tdw (Eq. 4),
//   Pr(t_k) = Σ_i (f_ik / len_i) · (dw_i / tdw) = S_k / tdw,
// where S_k ≡ Σ_i dw_i · f_ik / len_i.
//
// Time decay multiplies every dw_i — hence every S_k — by the same factor
// λ^Δτ. We exploit this by storing S̃_k with S_k = scale · S̃_k and folding
// decay into the single scalar `scale`, so an update step costs O(terms of
// the new documents) instead of O(vocabulary). (The division by tdw, which
// decays identically, makes Pr(t_k) invariant to pure time passage — only
// arrivals and expirations change it.)

#ifndef NIDC_FORGETTING_TERM_STATISTICS_H_
#define NIDC_FORGETTING_TERM_STATISTICS_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "nidc/corpus/document.h"
#include "nidc/util/status.h"

namespace nidc {

/// Maintains S_k = Σ_{active i} dw_i · f_ik / len_i.
class TermStatistics {
 public:
  TermStatistics() = default;

  /// Adds a document's contribution with its current weight dw_i.
  void AddDocument(const Document& doc, double weight);

  /// Removes a document's contribution given its current weight. Residual
  /// mass from float cancellation is clamped at zero on read.
  void RemoveDocument(const Document& doc, double weight);

  /// Applies a global decay factor (λ^Δτ) to every S_k in O(1).
  void Decay(double factor);

  /// S_k for the term; 0 for unseen terms.
  double SumWeightedFreq(TermId term) const;

  /// Pr(t_k) = S_k / tdw for the given total weight.
  double PrTerm(TermId term, double tdw) const;

  /// Drops all statistics.
  void Clear();

  /// Number of terms with recorded (possibly zero) mass.
  size_t num_terms() const { return sums_.size(); }

  /// Bit-exact persistence support: the internal representation
  /// (S_k = scale() · S̃_k) rather than the folded products, so a restored
  /// instance performs identical arithmetic on every later read.
  double scale() const { return scale_; }
  /// The raw S̃_k entries, sorted by term id for deterministic output.
  std::vector<std::pair<TermId, double>> ExactSums() const;
  /// Restores the exact representation captured above; rejects duplicate
  /// terms, non-finite sums and a non-positive scale.
  Status RestoreExact(double scale,
                      const std::vector<std::pair<TermId, double>>& sums);

 private:
  /// Folds `scale_` into the stored values when it underflows toward 0.
  void Renormalize();

  std::unordered_map<TermId, double> sums_;  // S̃_k
  double scale_ = 1.0;                       // S_k = scale_ · S̃_k
};

}  // namespace nidc

#endif  // NIDC_FORGETTING_TERM_STATISTICS_H_
