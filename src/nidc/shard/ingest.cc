#include "nidc/shard/ingest.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "nidc/obs/json_util.h"

namespace nidc::shard {

std::string SanitizeText(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

namespace {

Status LineError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + message);
}

// Snaps a time to what it becomes after a corpus.tsv round trip
// (FormatRawDocument writes "%.6f"). Ingested times must land on that
// grid immediately, or a tenant reopened from its TSV file would analyze
// the same feed at slightly different times than the live instance — and
// reopen is required to be bit-identical.
double CanonicalTime(double time) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", time);
  return std::strtod(buf, nullptr);
}

Result<RawDocument> ParseIngestLine(const std::string& line,
                                    size_t line_number) {
  Result<obs::JsonValue> parsed = obs::ParseJson(line);
  if (!parsed.ok()) {
    return LineError(line_number, parsed.status().message());
  }
  const obs::JsonValue& value = *parsed;
  if (!value.is_object()) {
    return LineError(line_number, "expected a JSON object");
  }
  for (const auto& [key, unused] : value.object) {
    if (key != "time" && key != "text" && key != "topic" && key != "source") {
      return LineError(line_number, "unknown field \"" + key + "\"");
    }
  }

  RawDocument doc;
  const obs::JsonValue* time = value.Find("time");
  if (time == nullptr || !time->is_number()) {
    return LineError(line_number, "missing or non-numeric \"time\"");
  }
  if (!std::isfinite(time->number)) {
    return LineError(line_number, "\"time\" must be finite");
  }
  doc.time = CanonicalTime(time->number);

  const obs::JsonValue* text = value.Find("text");
  if (text == nullptr || text->kind != obs::JsonValue::Kind::kString) {
    return LineError(line_number, "missing or non-string \"text\"");
  }
  doc.text = SanitizeText(text->string_value);
  if (doc.text.find_first_not_of(' ') == std::string::npos) {
    return LineError(line_number, "\"text\" must not be empty");
  }

  if (const obs::JsonValue* topic = value.Find("topic"); topic != nullptr) {
    if (!topic->is_number() ||
        topic->number != static_cast<double>(static_cast<int32_t>(topic->number))) {
      return LineError(line_number, "\"topic\" must be a 32-bit integer");
    }
    doc.topic = static_cast<TopicId>(topic->number);
  }
  if (const obs::JsonValue* source = value.Find("source");
      source != nullptr) {
    if (source->kind != obs::JsonValue::Kind::kString) {
      return LineError(line_number, "\"source\" must be a string");
    }
    doc.source = SanitizeText(source->string_value);
  }
  return doc;
}

}  // namespace

Result<std::vector<RawDocument>> ParseIngestJsonl(const std::string& body) {
  std::vector<RawDocument> docs;
  size_t pos = 0;
  size_t line_number = 0;
  while (pos <= body.size()) {
    size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_number;
    if (line.find_first_not_of(" \t") != std::string::npos) {
      Result<RawDocument> doc = ParseIngestLine(line, line_number);
      if (!doc.ok()) return doc.status();
      docs.push_back(std::move(doc).value());
    }
    if (end == body.size()) break;
    pos = end + 1;
  }
  return docs;
}

std::string FormatIngestJson(const RawDocument& doc) {
  obs::JsonObjectBuilder builder;
  builder.Add("time", doc.time);
  builder.Add("text", SanitizeText(doc.text));
  if (doc.topic != kNoTopic) builder.Add("topic", static_cast<int>(doc.topic));
  if (!doc.source.empty()) builder.Add("source", SanitizeText(doc.source));
  return builder.Render();
}

std::string FormatIngestJsonl(const std::vector<RawDocument>& docs) {
  std::string out;
  for (const RawDocument& doc : docs) {
    out += FormatIngestJson(doc);
    out += '\n';
  }
  return out;
}

}  // namespace nidc::shard
