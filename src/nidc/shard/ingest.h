// The ingest wire format of the sharded service (see docs/serving.md):
// one JSON object per line (JSONL), each line one document —
//
//   {"time": 12.5, "text": "raw document text", "topic": 3, "source": "ap"}
//
// `time` (finite number, days) and `text` (non-empty string) are
// required; `topic` (integer ground-truth label, for evaluation feeds)
// and `source` default to kNoTopic / "". Parsing is strict: the first
// malformed line fails the whole batch with a line diagnostic, so a
// rejected POST never partially ingests.
//
// Both directions sanitize text the way corpus_io does on save
// (tabs/newlines/carriage returns become spaces): the tenant's
// append-only corpus.tsv must re-load to byte-identical documents, or
// reopen-from-disk would diverge from the live state.

#ifndef NIDC_SHARD_INGEST_H_
#define NIDC_SHARD_INGEST_H_

#include <string>
#include <vector>

#include "nidc/corpus/corpus_io.h"
#include "nidc/util/status.h"

namespace nidc::shard {

/// Replaces '\t', '\n' and '\r' with ' ' — the same normalization
/// FormatRawDocument applies — so in-memory analysis matches what a
/// reopened tenant re-analyzes from corpus.tsv.
std::string SanitizeText(std::string_view text);

/// Parses a JSONL request body into raw documents (text already
/// sanitized). Blank lines are skipped; the first malformed line fails
/// with InvalidArgument("line N: ..."). An empty batch is valid.
Result<std::vector<RawDocument>> ParseIngestJsonl(const std::string& body);

/// Renders documents as the JSONL body ParseIngestJsonl accepts — the
/// shared encoder used by `nidc_cli` and the capacity benchmark, so every
/// client speaks byte-identical requests.
std::string FormatIngestJsonl(const std::vector<RawDocument>& docs);

/// Renders one document as its ingest JSON object (no newline).
std::string FormatIngestJson(const RawDocument& doc);

}  // namespace nidc::shard

#endif  // NIDC_SHARD_INGEST_H_
