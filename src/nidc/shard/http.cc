#include "nidc/shard/http.h"

#include <cstdlib>
#include <optional>
#include <string>

#include "nidc/obs/exporters.h"
#include "nidc/obs/json_util.h"
#include "nidc/serve/introspection.h"
#include "nidc/shard/ingest.h"

namespace nidc::shard {

namespace {

// Raw value of `key` in a query string ("key=value&..."), or nullopt.
std::optional<std::string> QueryParam(const std::string& query,
                                      const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = end + 1;
  }
  return std::nullopt;
}

std::optional<double> QueryNumber(const std::string& query,
                                  const std::string& key) {
  const std::optional<std::string> raw = QueryParam(query, key);
  if (!raw.has_value() || raw->empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end != raw->c_str() + raw->size()) return std::nullopt;
  return value;
}

serve::HttpResponse JsonResponse(int status, const std::string& json) {
  serve::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = json + "\n";
  return response;
}

serve::HttpResponse ErrorResponse(const Status& status,
                                  int retry_after_seconds = 1) {
  obs::JsonObjectBuilder builder;
  builder.Add("error", status.ToString());
  serve::HttpResponse response =
      JsonResponse(HttpStatusFor(status), builder.Render());
  if (response.status == 429) {
    // Derived from the owning shard's recent queue drain rate when the
    // caller has one (ShardService::RetryAfterHintSeconds); 1 otherwise.
    response.extra_headers.emplace_back(
        "Retry-After", std::to_string(retry_after_seconds));
  }
  return response;
}

serve::HttpResponse MethodNotAllowed() {
  serve::HttpResponse response;
  response.status = 405;
  response.body = "wrong method for this endpoint\n";
  return response;
}

std::string TenantListJson(ShardService* service,
                           obs::RequestTracer* tracer = nullptr) {
  std::string tenants = "[";
  bool first = true;
  for (const TenantInfo& info : service->Tenants()) {
    obs::JsonObjectBuilder row;
    row.Add("name", info.name);
    row.Add("shard", static_cast<uint64_t>(info.shard));
    row.Add("failed", info.failed);
    row.Add("docs_ingested", info.docs_ingested);
    row.Add("steps_applied", info.steps_applied);
    row.Add("now", info.now);
    if (!first) tenants += ",";
    tenants += row.Render();
    first = false;
  }
  tenants += "]";

  std::string queues = "[";
  for (size_t i = 0; i < service->num_shards(); ++i) {
    if (i > 0) queues += ",";
    queues += std::to_string(service->QueueDepth(i));
  }
  queues += "]";

  obs::JsonObjectBuilder builder;
  builder.Add("num_shards", static_cast<uint64_t>(service->num_shards()));
  builder.Add("threads_per_shard",
              static_cast<uint64_t>(service->threads_per_shard()));
  builder.AddRaw("queue_depths", queues);
  builder.AddRaw("tenants", tenants);
  if (tracer != nullptr) {
    // The aggregate per-tenant stage waterfall (the /statusz view).
    builder.AddRaw("pipeline", tracer->RenderWaterfallJson());
  }
  return builder.Render();
}

}  // namespace

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kOutOfRange:
      return 429;
    default:
      return 503;  // FailedPrecondition / IOError / Internal
  }
}

void RegisterShardHandlers(serve::HttpServer* server, ShardService* service,
                           const TenantConfig& default_config,
                           obs::RequestTracer* tracer, obs::SloEngine* slo) {
  server->Handle("/ingest", [service, tracer,
                             slo](const serve::HttpRequest& request) {
    if (request.method != "POST") return MethodNotAllowed();
    const std::optional<std::string> tenant =
        QueryParam(request.query, "tenant");
    if (!tenant.has_value() || tenant->empty()) {
      return ErrorResponse(
          Status::InvalidArgument("POST /ingest requires ?tenant="));
    }
    // Every response with a tenant feeds the availability objective;
    // good = not pushed back (429) and not failing (503).
    auto observe = [&](int http_status) {
      if (slo != nullptr) {
        slo->ObserveRequest(*tenant, http_status != 429 && http_status != 503,
                            obs::RequestTracer::NowSeconds());
      }
    };
    Result<std::vector<RawDocument>> docs =
        ParseIngestJsonl(request.body);
    if (!docs.ok()) {
      observe(HttpStatusFor(docs.status()));
      return ErrorResponse(docs.status());
    }
    obs::TraceContext trace;
    if (tracer != nullptr) {
      // Accept the caller's W3C traceparent; mint when absent/malformed.
      trace = obs::TraceContext::FromTraceparent(request.traceparent);
      if (!trace.valid()) trace = tracer->Mint();
      tracer->Begin(trace, *tenant);
      tracer->RecordStage(trace, obs::Stage::kIngest);
    }
    const size_t accepted = docs->size();
    if (Status enqueued =
            service->EnqueueIngest(*tenant, std::move(docs).value(), trace);
        !enqueued.ok()) {
      observe(HttpStatusFor(enqueued));
      return ErrorResponse(
          enqueued,
          service->RetryAfterHintSeconds(service->ShardOf(*tenant)));
    }
    observe(202);
    obs::JsonObjectBuilder builder;
    builder.Add("tenant", *tenant);
    builder.Add("accepted", static_cast<uint64_t>(accepted));
    builder.Add("queued",
                static_cast<uint64_t>(service->TotalQueueDepth()));
    if (trace.valid()) builder.Add("trace", trace.ToHex());
    return JsonResponse(202, builder.Render());
  });

  server->Handle("/tenantz", [service, default_config](
                                 const serve::HttpRequest& request) {
    if (request.method == "GET") {
      return JsonResponse(200, TenantListJson(service));
    }
    const std::string op =
        QueryParam(request.query, "op").value_or("");
    const std::string tenant =
        QueryParam(request.query, "tenant").value_or("");
    Status status = Status::OK();
    if (op == "drain") {
      service->Drain();
    } else if (tenant.empty()) {
      status = Status::InvalidArgument("op=" + op + " requires ?tenant=");
    } else if (op == "create") {
      TenantConfig config = default_config;
      if (auto v = QueryNumber(request.query, "k")) {
        config.k = static_cast<size_t>(*v);
      }
      if (auto v = QueryNumber(request.query, "half_life")) {
        config.params.half_life_days = *v;
      }
      if (auto v = QueryNumber(request.query, "life_span")) {
        config.params.life_span_days = *v;
      }
      if (auto v = QueryNumber(request.query, "step")) config.step_days = *v;
      if (auto v = QueryNumber(request.query, "start")) {
        config.start_time = *v;
      }
      if (auto v = QueryNumber(request.query, "seed")) {
        config.seed = static_cast<uint64_t>(*v);
      }
      status = service->CreateTenant(tenant, config);
    } else if (op == "evict") {
      status = service->EvictTenant(tenant);
    } else if (op == "reopen") {
      status = service->OpenTenant(tenant);
    } else if (op == "checkpoint") {
      status = service->Checkpoint(tenant);
    } else if (op == "flush") {
      const std::optional<double> until =
          QueryNumber(request.query, "until");
      if (!until.has_value()) {
        status = Status::InvalidArgument("op=flush requires ?until=DAY");
      } else {
        status = service->Flush(tenant, *until);
      }
    } else {
      status = Status::InvalidArgument("unknown op \"" + op + "\"");
    }
    if (!status.ok()) return ErrorResponse(status);
    obs::JsonObjectBuilder builder;
    builder.Add("ok", true);
    builder.Add("op", op);
    if (!tenant.empty()) builder.Add("tenant", tenant);
    return JsonResponse(200, builder.Render());
  });

  server->Handle("/digestz", [service](const serve::HttpRequest& request) {
    if (request.method != "GET") return MethodNotAllowed();
    const std::string tenant =
        QueryParam(request.query, "tenant").value_or("");
    if (tenant.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("GET /digestz requires ?tenant="));
    }
    Result<std::string> digest = service->StateDigest(tenant);
    if (!digest.ok()) return ErrorResponse(digest.status());
    serve::HttpResponse response;
    response.body = *digest;
    return response;
  });

  server->Handle("/statusz", [service,
                              tracer](const serve::HttpRequest& request) {
    const std::string tenant =
        QueryParam(request.query, "tenant").value_or("");
    if (tenant.empty()) {
      return JsonResponse(200, TenantListJson(service, tracer));
    }
    std::shared_ptr<Tenant> entry = service->GetTenant(tenant);
    if (entry == nullptr) {
      return ErrorResponse(Status::NotFound("no tenant named " + tenant));
    }
    serve::IntrospectionOptions options;
    options.metrics = &entry->metrics();
    options.board = &entry->board();
    options.health = &entry->health();
    options.events = &entry->events();
    return JsonResponse(200, serve::RenderStatusJson(options));
  });

  server->Handle("/healthz", [service, slo](const serve::HttpRequest&) {
    size_t failed = 0;
    std::string failed_names = "[";
    const std::vector<TenantInfo> tenants = service->Tenants();
    for (const TenantInfo& info : tenants) {
      if (!info.failed) continue;
      if (failed > 0) failed_names += ",";
      failed_names += "\"" + obs::JsonEscape(info.name) + "\"";
      ++failed;
    }
    failed_names += "]";
    obs::JsonObjectBuilder builder;
    builder.Add("healthy", failed == 0);
    builder.Add("num_tenants", static_cast<uint64_t>(tenants.size()));
    builder.Add("num_shards",
                static_cast<uint64_t>(service->num_shards()));
    builder.Add("queued_batches",
                static_cast<uint64_t>(service->TotalQueueDepth()));
    builder.AddRaw("failed_tenants", failed_names);
    if (slo != nullptr) {
      // SLO burn is a detail field, not a liveness signal: a burning
      // budget wants paging, not a load balancer pulling the instance.
      std::string burning = "[";
      bool first = true;
      for (const std::string& name :
           slo->BurningTenants(obs::RequestTracer::NowSeconds())) {
        if (!first) burning += ",";
        first = false;
        burning += "\"" + obs::JsonEscape(name) + "\"";
      }
      burning += "]";
      builder.Add("slo_burning", !first);
      builder.AddRaw("slo_burning_tenants", burning);
    }
    return JsonResponse(failed == 0 ? 200 : 503, builder.Render());
  });

  server->Handle("/metrics", [service](const serve::HttpRequest& request) {
    const std::string tenant =
        QueryParam(request.query, "tenant").value_or("");
    serve::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    if (tenant.empty()) {
      response.body =
          obs::RenderPrometheus(service->metrics()->Snapshot());
      return response;
    }
    std::shared_ptr<Tenant> entry = service->GetTenant(tenant);
    if (entry == nullptr) {
      return ErrorResponse(Status::NotFound("no tenant named " + tenant));
    }
    response.body = obs::RenderPrometheus(entry->metrics().Snapshot());
    return response;
  });

  server->Handle("/metricsz", [service](const serve::HttpRequest&) {
    return JsonResponse(
        200, obs::RenderMetricsJson(service->metrics()->Snapshot()));
  });

  server->Handle("/tracez", [tracer](const serve::HttpRequest& request) {
    if (request.method != "GET") return MethodNotAllowed();
    if (tracer == nullptr) {
      return ErrorResponse(
          Status::FailedPrecondition("request tracing is disabled"));
    }
    const std::string trace =
        QueryParam(request.query, "trace").value_or("");
    const std::string tenant =
        QueryParam(request.query, "tenant").value_or("");
    size_t n = 20;
    if (const std::optional<double> v = QueryNumber(request.query, "n");
        v.has_value() && *v >= 1.0) {
      n = static_cast<size_t>(*v);
    }
    const std::string json = tracer->RenderTracezJson(trace, tenant, n);
    // The one-trace lookup renders {"error": ...} when the id is unknown
    // or no longer retained.
    const int status =
        !trace.empty() && json.rfind("{\"error\"", 0) == 0 ? 404 : 200;
    return JsonResponse(status, json);
  });

  server->Handle("/slosz", [slo](const serve::HttpRequest& request) {
    if (request.method != "GET") return MethodNotAllowed();
    if (slo == nullptr) {
      return ErrorResponse(
          Status::FailedPrecondition("SLO engine is disabled"));
    }
    return JsonResponse(
        200, slo->RenderJson(obs::RequestTracer::NowSeconds()));
  });
}

}  // namespace nidc::shard
