// The sharded service's HTTP surface (see docs/serving.md for schemas):
//
//   POST /ingest?tenant=NAME   — body: JSONL documents (ingest.h). 202 on
//       accept (the batch is queued, not yet applied), 400 on a malformed
//       body, 404 unknown tenant, 429 + Retry-After when the owning
//       shard's queue is full, 503 when the tenant's storage failed;
//   GET  /tenantz              — tenant list (name, shard, docs, steps,
//       clock, failed) plus shard/queue summary;
//   POST /tenantz?op=...&tenant=NAME — control plane: op=create (optional
//       k/half_life/life_span/step/start/seed overrides of the server's
//       default TenantConfig), evict, reopen, checkpoint,
//       flush (&until=DAY), drain (no tenant);
//   GET  /digestz?tenant=NAME  — the serialized clusterer state, rendered
//       on the owning shard (the equivalence-test currency);
//   GET  /statusz?tenant=NAME  — the tenant's pipeline status JSON (same
//       renderer as the single-stream server); without ?tenant= an
//       aggregate per-tenant/per-shard view;
//   GET  /healthz              — 200 while every tenant is healthy, 503
//       once any tenant failed; aggregate durability lag;
//   GET  /metrics?tenant=NAME  — the tenant's registry in Prometheus
//       text; without ?tenant= the server-wide registry (serve.* +
//       shard.* families);
//   GET  /metricsz             — the server-wide registry as one JSON
//       object (RenderMetricsJson), consumed by
//       `nidc_metrics_check --shard-snapshot`;
//   GET  /tracez               — request-trace introspection (when a
//       tracer is wired): ?trace=ID one trace's stage waterfall,
//       ?tenant=T&n=K a tenant's recent completed traces, bare the
//       aggregate per-stage summary plus recent traces;
//   GET  /slosz                — per-tenant SLO burn-rate evaluation
//       (when an SLO engine is wired).
//
// With a tracer, POST /ingest accepts a W3C `traceparent` header (minting
// a fresh trace id when absent or malformed), stamps the ingest stage,
// and echoes the trace id in the 202 body. With an SLO engine, every
// /ingest response feeds the availability objective (good = not 429/503)
// and /healthz carries the burning-tenant detail fields. 429 responses
// derive Retry-After from the owning shard's recent queue drain rate.

#ifndef NIDC_SHARD_HTTP_H_
#define NIDC_SHARD_HTTP_H_

#include "nidc/obs/reqtrace.h"
#include "nidc/obs/slo.h"
#include "nidc/serve/http_server.h"
#include "nidc/shard/service.h"

namespace nidc::shard {

/// Registers every endpoint above on `server`. `default_config` seeds
/// op=create (query parameters override individual fields). Call before
/// HttpServer::Start; `service` (and, when supplied, `tracer` and `slo`)
/// must outlive the server. Null tracer/slo disable the corresponding
/// endpoints (they answer 503).
void RegisterShardHandlers(serve::HttpServer* server, ShardService* service,
                           const TenantConfig& default_config,
                           obs::RequestTracer* tracer = nullptr,
                           obs::SloEngine* slo = nullptr);

/// Maps a service Status to the HTTP status the handlers answer with
/// (OutOfRange → 429, NotFound → 404, AlreadyExists → 409, ...).
int HttpStatusFor(const Status& status);

}  // namespace nidc::shard

#endif  // NIDC_SHARD_HTTP_H_
