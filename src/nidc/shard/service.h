// The multi-tenant shard service: N shard worker threads, each owning a
// disjoint set of tenants (assignment by stable name hash), each with a
// bounded FIFO ingest queue. Re-entrancy boundaries, in order:
//
//   * a tenant's mutating interface is only ever called by its owning
//     shard worker — no locks inside Tenant, no shared mutable state
//     between shards;
//   * the tenant map itself is under one service mutex, touched briefly
//     for lookup/insert/erase; tenants are held by shared_ptr so an HTTP
//     worker rendering /statusz keeps its tenant alive across a
//     concurrent eviction (the surfaces it reads — StatusBoard, metrics
//     registry, health snapshot — are internally synchronized);
//   * anything that must read clusterer internals (StateDigest) runs as
//     a synchronous job on the owning shard, never cross-thread;
//   * each shard's K-means thread budget defaults to
//     hardware/num_shards, so per-step parallelism and shard parallelism
//     compose without oversubscribing the machine.
//
// Backpressure contract: EnqueueIngest is asynchronous (the HTTP layer
// answers 202 on accept); when the owning shard already holds
// `queue_capacity` pending ingest batches the call returns OutOfRange,
// which the HTTP layer maps to 429 + Retry-After. Control jobs (create,
// evict, flush, digest, drain barriers) do not count against the
// capacity and are never rejected, so operators can always drain a
// backed-up shard.

#ifndef NIDC_SHARD_SERVICE_H_
#define NIDC_SHARD_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nidc/obs/reqtrace.h"
#include "nidc/shard/tenant.h"

namespace nidc::shard {

struct ShardServiceOptions {
  /// Service root; tenants live under `<root>/tenants/<name>/`. Required.
  std::string root;
  /// Shard worker threads. 0 = hardware concurrency.
  size_t num_shards = 0;
  /// Pending ingest batches per shard before EnqueueIngest pushes back.
  size_t queue_capacity = 64;
  /// K-means threads each tenant steps with. 0 = max(1, hardware /
  /// num_shards) — the non-oversubscribing default.
  size_t threads_per_shard = 0;
  /// Per-tenant durability cadence + fsync policy.
  uint64_t checkpoint_every = 16;
  WalSyncMode wal_sync = WalSyncMode::kEveryRecord;
  /// Filesystem; null selects Env::Default().
  Env* env = nullptr;
  /// `shard.*` family sink shared with the HTTP server; null = the
  /// service owns a private registry (exposed via metrics()).
  obs::MetricsRegistry* metrics = nullptr;
  /// Process-wide request tracer; null disables stage stamping. The
  /// service stamps enqueue/dequeue and hands the tracer down to every
  /// tenant (window close, WAL commit, step, checkpoint, ship, apply).
  obs::RequestTracer* tracer = nullptr;
};

/// Summary row of one tenant, safe to read from any thread.
struct TenantInfo {
  std::string name;
  size_t shard = 0;
  bool failed = false;
  uint64_t docs_ingested = 0;
  uint64_t steps_applied = 0;
  DayTime now = 0.0;
};

class ShardService {
 public:
  /// Creates the root layout, reopens every tenant directory found under
  /// `<root>/tenants/` (crash recovery happens here, before traffic),
  /// and starts the shard workers.
  static Result<std::unique_ptr<ShardService>> Start(
      ShardServiceOptions options);

  ShardService(const ShardService&) = delete;
  ShardService& operator=(const ShardService&) = delete;

  /// Drains every queue, closes every tenant (final checkpoints), joins
  /// the workers. Idempotent; the destructor calls it.
  void Stop();
  ~ShardService();

  /// Creates a tenant (AlreadyExists if live or on disk) on its shard.
  Status CreateTenant(const std::string& name, const TenantConfig& config);

  /// Reopens an evicted (or never-opened) tenant directory from disk.
  Status OpenTenant(const std::string& name);

  /// Closes the tenant (final checkpoint) and drops it from the service;
  /// its directory stays on disk for OpenTenant. Queued ingest for it is
  /// dropped (counted in shard.ingest.dropped).
  Status EvictTenant(const std::string& name);

  /// Asynchronously ingests one batch on the tenant's shard. OutOfRange
  /// = owning shard queue full (HTTP 429); NotFound = no such tenant;
  /// FailedPrecondition = tenant failed (HTTP 503). `docs` must already
  /// be parsed/sanitized (ParseIngestJsonl output). A valid `trace`
  /// rides the batch through the pipeline; the enqueue stage is stamped
  /// here on admission.
  Status EnqueueIngest(const std::string& name, std::vector<RawDocument> docs,
                       obs::TraceContext trace = obs::TraceContext());

  /// Synchronous per-tenant operations (run on the owning shard).
  Status Flush(const std::string& name, DayTime until);
  Status Checkpoint(const std::string& name);
  Result<std::string> StateDigest(const std::string& name);

  /// Barrier: returns once every job enqueued before the call has run.
  void Drain();

  /// Tenant lookup for the introspection layer; null when absent. Only
  /// the internally-synchronized surfaces (board(), metrics(), health(),
  /// plain accessors) may be used from non-shard threads.
  std::shared_ptr<Tenant> GetTenant(const std::string& name) const;

  std::vector<std::string> TenantNames() const;
  std::vector<TenantInfo> Tenants() const;

  /// Pending ingest batches on one shard / across all shards.
  size_t QueueDepth(size_t shard) const;
  size_t TotalQueueDepth() const;

  /// Enqueue-to-completion latencies (seconds) of ingest batches since
  /// the last call — the capacity benchmark's p50/p99 source.
  std::vector<double> TakeLatencySamples();

  /// Suggested Retry-After (whole seconds, clamped to [1, 30]) for a 429
  /// on `shard`: pending batches divided by the shard's recent drain
  /// rate. Falls back to 1 before enough completions have been observed.
  int RetryAfterHintSeconds(size_t shard) const;

  size_t num_shards() const { return shards_.size(); }
  size_t threads_per_shard() const { return threads_per_shard_; }
  const std::string& root() const { return options_.root; }
  obs::MetricsRegistry* metrics() { return metrics_; }
  obs::RequestTracer* tracer() const { return options_.tracer; }

  /// Stable shard assignment of a tenant name.
  size_t ShardOf(const std::string& name) const;

  /// [A-Za-z0-9_.-], 1..64 chars, no leading dot — names are directory
  /// components and HTTP query values.
  static Status ValidateTenantName(const std::string& name);

 private:
  struct Job {
    bool is_ingest = false;
    std::string tenant;               // ingest only
    std::vector<RawDocument> docs;    // ingest only
    double enqueued_seconds = 0.0;    // ingest only
    obs::TraceContext trace;          // ingest only (may be invalid)
    std::function<void()> call;       // control jobs
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    size_t ingest_pending = 0;  // capacity accounting (ingest jobs only)
    /// Completion timestamps of recent ingest jobs (bounded), the 429
    /// Retry-After drain-rate estimate.
    std::deque<double> completion_seconds;
    bool stopping = false;
    std::thread worker;
  };

  struct Entry {
    std::shared_ptr<Tenant> tenant;
    size_t shard = 0;
  };

  explicit ShardService(ShardServiceOptions options);

  Status Init();
  void WorkerLoop(size_t shard_index);
  void RunIngestJob(size_t shard_index, Job& job);
  /// Runs `fn` on shard `shard_index` and waits for it.
  Status RunOnShard(size_t shard_index, std::function<Status()> fn);
  TenantRuntime MakeRuntime() const;
  std::string TenantDir(const std::string& name) const;
  double NowSeconds() const;

  ShardServiceOptions options_;
  obs::MetricsRegistry owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  size_t threads_per_shard_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex mu_;  // tenant map
  std::unordered_map<std::string, Entry> tenants_;

  std::mutex samples_mu_;
  std::vector<double> latency_samples_;

  bool stopped_ = false;
};

}  // namespace nidc::shard

#endif  // NIDC_SHARD_SERVICE_H_
