#include "nidc/shard/tenant.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nidc/obs/json_util.h"
#include "nidc/shard/ingest.h"

namespace nidc::shard {

namespace {

constexpr char kConfigFile[] = "/TENANT.json";
constexpr char kCorpusFile[] = "/corpus.tsv";
constexpr char kStoreDir[] = "/store";

Env* EnvOf(const TenantRuntime& runtime) {
  return runtime.env != nullptr ? runtime.env : Env::Default();
}

}  // namespace

Status TenantConfig::Validate() const {
  NIDC_RETURN_NOT_OK(params.Validate());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!std::isfinite(step_days) || step_days <= 0.0) {
    return Status::InvalidArgument("step_days must be finite and > 0");
  }
  if (!std::isfinite(start_time)) {
    return Status::InvalidArgument("start_time must be finite");
  }
  return Status::OK();
}

std::string TenantConfig::ToJson() const {
  obs::JsonObjectBuilder builder;
  builder.Add("half_life_days", params.half_life_days);
  builder.Add("life_span_days", params.life_span_days);
  builder.Add("k", static_cast<uint64_t>(k));
  builder.Add("step_days", step_days);
  builder.Add("start_time", start_time);
  builder.Add("seed", static_cast<uint64_t>(seed));
  return builder.Render();
}

Result<TenantConfig> TenantConfig::FromJson(const std::string& json) {
  Result<obs::JsonValue> parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("TENANT.json: expected a JSON object");
  }
  TenantConfig config;
  auto number = [&](const char* key, double* out) -> Status {
    const obs::JsonValue* value = parsed->Find(key);
    if (value == nullptr || !value->is_number()) {
      return Status::InvalidArgument(std::string("TENANT.json: missing ") +
                                     key);
    }
    *out = value->number;
    return Status::OK();
  };
  double k = 0.0, seed = 0.0;
  NIDC_RETURN_NOT_OK(number("half_life_days", &config.params.half_life_days));
  NIDC_RETURN_NOT_OK(number("life_span_days", &config.params.life_span_days));
  NIDC_RETURN_NOT_OK(number("k", &k));
  NIDC_RETURN_NOT_OK(number("step_days", &config.step_days));
  NIDC_RETURN_NOT_OK(number("start_time", &config.start_time));
  NIDC_RETURN_NOT_OK(number("seed", &seed));
  config.k = static_cast<size_t>(k);
  config.seed = static_cast<uint64_t>(seed);
  NIDC_RETURN_NOT_OK(config.Validate());
  return config;
}

Tenant::Tenant(std::string name, std::string dir, TenantConfig config,
               TenantRuntime runtime)
    : name_(std::move(name)),
      dir_(std::move(dir)),
      config_(config),
      runtime_(runtime),
      batcher_(config.start_time, config.step_days),
      last_time_(config.start_time) {
  events_ = std::make_unique<obs::EventLog>(256, &metrics_);
  obs::ClusterHealthOptions health_options;
  health_options.metrics = &metrics_;
  health_ = std::make_unique<obs::ClusterHealthMonitor>(health_options);
}

Result<std::unique_ptr<Tenant>> Tenant::Create(const std::string& name,
                                               const std::string& dir,
                                               const TenantConfig& config,
                                               const TenantRuntime& runtime) {
  NIDC_RETURN_NOT_OK(config.Validate());
  Env* env = EnvOf(runtime);
  NIDC_RETURN_NOT_OK(env->CreateDir(dir));
  if (env->FileExists(dir + kConfigFile)) {
    return Status::AlreadyExists("tenant directory " + dir +
                                 " already holds a TENANT.json");
  }
  NIDC_RETURN_NOT_OK(
      AtomicWriteFile(env, dir + kConfigFile, config.ToJson()));
  std::unique_ptr<Tenant> tenant(
      new Tenant(name, dir, config, runtime));
  NIDC_RETURN_NOT_OK(
      tenant->Boot(std::make_unique<Corpus>(), /*fresh=*/true));
  return tenant;
}

Result<std::unique_ptr<Tenant>> Tenant::Open(const std::string& name,
                                             const std::string& dir,
                                             const TenantRuntime& runtime) {
  Env* env = EnvOf(runtime);
  if (!env->FileExists(dir + kConfigFile)) {
    return Status::NotFound("no TENANT.json under " + dir);
  }
  Result<std::string> config_text = env->ReadFileToString(dir + kConfigFile);
  if (!config_text.ok()) return config_text.status();
  Result<TenantConfig> config = TenantConfig::FromJson(*config_text);
  if (!config.ok()) return config.status();

  std::unique_ptr<Corpus> corpus;
  const std::string corpus_path = dir + kCorpusFile;
  if (env->FileExists(corpus_path)) {
    Result<std::unique_ptr<Corpus>> loaded = LoadCorpus(corpus_path);
    if (!loaded.ok()) return loaded.status();
    corpus = std::move(loaded).value();
  } else {
    corpus = std::make_unique<Corpus>();
  }

  std::unique_ptr<Tenant> tenant(
      new Tenant(name, dir, *config, runtime));
  NIDC_RETURN_NOT_OK(tenant->Boot(std::move(corpus), /*fresh=*/false));
  return tenant;
}

Status Tenant::Boot(std::unique_ptr<Corpus> corpus, bool fresh) {
  corpus_ = std::move(corpus);

  IncrementalOptions options;
  options.kmeans.k = config_.k;
  options.kmeans.seed = config_.seed;
  options.kmeans.num_threads =
      runtime_.kmeans_threads == 0 ? 1 : runtime_.kmeans_threads;
  options.metrics = &metrics_;
  options.events = events_.get();
  options.health = health_.get();

  DurableOptions durable;
  durable.dir = dir_ + kStoreDir;
  durable.checkpoint_every = runtime_.checkpoint_every;
  durable.wal_sync = runtime_.wal_sync;
  durable.env = runtime_.env;
  durable.metrics = &metrics_;
  durable.tracer = runtime_.tracer;

  Result<std::unique_ptr<DurableClusterer>> opened = DurableClusterer::Open(
      corpus_.get(), config_.params, options, std::move(durable));
  if (!opened.ok()) return opened.status();
  durable_ = std::move(opened).value();

  batcher_ = TimeBatcher(config_.start_time, config_.step_days);
  last_time_ =
      std::max(config_.start_time,
               corpus_->empty() ? config_.start_time : corpus_->MaxTime());
  docs_ingested_ = corpus_->size();

  if (!fresh && durable_->recovery().resumed) {
    // A stepped document's time is strictly below its window end, which
    // is at most the recovered clock — so everything at or after the
    // clock is exactly the unstepped tail, and re-priming it rebuilds
    // the open window. Windows that close during the re-prime were
    // appended to corpus.tsv but never reached the WAL (a crash between
    // the two); stepping them now heals that gap.
    const DayTime resume_cursor =
        std::max(config_.start_time, durable_->recovery().recovered_now);
    NIDC_RETURN_NOT_OK(batcher_.SeekTo(resume_cursor));
    std::vector<DocumentBatch> closed;
    std::vector<uint64_t> reprimed;
    for (const Document& doc : corpus_->docs()) {
      if (doc.time < resume_cursor) continue;
      NIDC_RETURN_NOT_OK(batcher_.Add(doc.id, doc.time, &closed));
      reprimed.push_back(static_cast<uint64_t>(doc.id));
    }
    if (runtime_.tracer != nullptr && !reprimed.empty()) {
      // Traces bound before the crash/evict finish their stage records
      // through this re-drive; flag them so /tracez shows the resume.
      for (const obs::TraceContext& trace :
           runtime_.tracer->TracesForDocs(name_, reprimed)) {
        runtime_.tracer->MarkResumed(trace);
      }
    }
    NIDC_RETURN_NOT_OK(StepWindows(closed));
  }

  // Append handle for future ingest; created fresh for a new tenant.
  Result<std::unique_ptr<WritableFile>> file =
      EnvOf(runtime_)->NewWritableFile(dir_ + kCorpusFile,
                                       /*truncate=*/fresh);
  if (!file.ok()) return file.status();
  corpus_file_ = std::move(file).value();
  return Status::OK();
}

Status Tenant::Ingest(const std::vector<RawDocument>& docs,
                      const obs::TraceContext& trace) {
  if (closed_) return Status::FailedPrecondition("tenant is closed");
  if (failed_) {
    return Status::FailedPrecondition(
        "tenant storage is in an unknown state; evict and reopen");
  }
  if (docs.empty()) return Status::OK();

  // Validate the whole batch before touching anything: the feed must stay
  // chronological end to end (corpus.tsv order is DocId order), and no
  // document may fall before the open window.
  DayTime floor = std::max(last_time_, batcher_.cursor());
  for (const RawDocument& doc : docs) {
    if (!std::isfinite(doc.time) || doc.time < floor) {
      return Status::InvalidArgument(
          "document times must be non-decreasing and not before day " +
          std::to_string(floor));
    }
    floor = doc.time;
    if (SanitizeText(doc.text).find_first_not_of(' ') == std::string::npos) {
      return Status::InvalidArgument("document text must not be empty");
    }
  }

  // Persist before stepping: the WAL must never reference a DocId the
  // corpus file does not yet durably hold, or recovery replay would meet
  // unknown ids. (The reverse — corpus ahead of the WAL — heals on
  // reopen; see Boot.)
  std::string block;
  std::vector<RawDocument> sanitized;
  sanitized.reserve(docs.size());
  for (const RawDocument& doc : docs) {
    RawDocument clean = doc;
    clean.text = SanitizeText(doc.text);
    clean.source = SanitizeText(doc.source);
    sanitized.push_back(std::move(clean));
    block += FormatRawDocument(sanitized.back());
    block += '\n';
  }
  if (Status appended = corpus_file_->Append(block); !appended.ok()) {
    failed_ = true;
    return appended;
  }
  if (Status synced = corpus_file_->Sync(); !synced.ok()) {
    failed_ = true;
    return synced;
  }

  std::vector<DocumentBatch> closed;
  for (const RawDocument& doc : sanitized) {
    const DocId id =
        corpus_->AddText(doc.text, doc.time, doc.topic, doc.source);
    if (runtime_.tracer != nullptr && trace.valid()) {
      runtime_.tracer->BindDoc(name_, static_cast<uint64_t>(id), trace);
    }
    // Cannot fail: validation pinned every time at or after the cursor.
    NIDC_RETURN_NOT_OK(batcher_.Add(id, doc.time, &closed));
  }
  docs_ingested_ += sanitized.size();
  last_time_ = sanitized.back().time;
  if (runtime_.shared_metrics != nullptr) {
    runtime_.shared_metrics->GetCounter("shard.ingest.docs")
        ->Increment(sanitized.size());
    runtime_.shared_metrics
        ->GetCounter("shard.tenant." + name_ + ".docs")
        ->Increment(sanitized.size());
  }
  metrics_.GetCounter("shard.tenant.docs")->Increment(sanitized.size());
  return StepWindows(closed);
}

Status Tenant::FlushUntil(DayTime until) {
  if (closed_) return Status::FailedPrecondition("tenant is closed");
  if (failed_) {
    return Status::FailedPrecondition(
        "tenant storage is in an unknown state; evict and reopen");
  }
  if (!std::isfinite(until)) {
    return Status::InvalidArgument("flush time must be finite");
  }
  std::vector<DocumentBatch> closed;
  batcher_.FlushUntil(until, &closed);
  return StepWindows(closed);
}

Status Tenant::StepWindows(std::vector<DocumentBatch>& closed) {
  for (DocumentBatch& window : closed) {
    std::vector<obs::TraceContext> traces;
    if (runtime_.tracer != nullptr && !window.docs.empty()) {
      std::vector<uint64_t> ids;
      ids.reserve(window.docs.size());
      for (DocId doc : window.docs) {
        ids.push_back(static_cast<uint64_t>(doc));
      }
      traces = runtime_.tracer->TracesForDocs(name_, ids);
      for (const obs::TraceContext& trace : traces) {
        runtime_.tracer->RecordStage(trace, obs::Stage::kWindowClose);
      }
    }
    // Scope the window's traces onto this thread so the layers below —
    // WAL commit, ship, step, checkpoint, (in-process) apply — stamp
    // their stages without knowing trace ids. (The emptiness check must
    // not be an argument sibling of the move — argument evaluation order
    // would race it against the move.)
    obs::RequestTracer* scope_tracer =
        traces.empty() ? nullptr : runtime_.tracer;
    obs::RequestTracer::StepScope scope(scope_tracer, std::move(traces));
    Result<StepResult> result = durable_->Step(window.docs, window.end);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kFailedPrecondition &&
          window.docs.empty()) {
        // An empty window with no active documents is a quiet day before
        // the feed starts (or after everything expired) — the CLI replay
        // skips it the same way, so bit-identity is preserved.
        ++empty_windows_skipped_;
        metrics_.GetCounter("shard.tenant.empty_windows_skipped")
            ->Increment();
        continue;
      }
      if (result.status().code() == StatusCode::kIOError) failed_ = true;
      return result.status();
    }
    PublishStep(window, *result);
  }
  return Status::OK();
}

void Tenant::PublishStep(const DocumentBatch& window,
                         const StepResult& result) {
  serve::StatusBoard::StepRecord record;
  record.step = durable_->applied_steps() > 0
                    ? durable_->applied_steps() - 1
                    : 0;  // StepRecord carries the 0-based index.
  record.num_new = result.num_new;
  record.num_active = result.num_active;
  record.num_outliers = result.num_outliers;
  record.num_clusters = result.clustering.NumNonEmpty();
  record.iterations = result.iterations;
  record.g = result.final_g;
  record.stats_seconds = result.stats_update_seconds;
  record.clustering_seconds = result.clustering_seconds;
  board_.RecordStep(record);

  serve::DurabilityStatus lag;
  lag.enabled = true;
  lag.generation = durable_->generation();
  lag.wal_records_since_checkpoint = durable_->wal_records_since_checkpoint();
  lag.checkpoint_every = durable_->checkpoint_every();
  board_.RecordDurability(lag);

  metrics_.GetGauge("shard.tenant.now")->Set(window.end);
  if (runtime_.shared_metrics != nullptr) {
    runtime_.shared_metrics->GetCounter("shard.steps")->Increment();
  }
}

Status Tenant::Checkpoint() {
  if (closed_ || failed_) {
    return Status::FailedPrecondition("tenant is closed or failed");
  }
  Status status = durable_->Checkpoint();
  if (!status.ok() && status.code() == StatusCode::kIOError) failed_ = true;
  return status;
}

Status Tenant::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Status status = durable_ != nullptr ? durable_->Close() : Status::OK();
  if (corpus_file_ != nullptr) {
    Status file_closed = corpus_file_->Close();
    if (status.ok()) status = file_closed;
  }
  return status;
}

Tenant::~Tenant() { Close(); }

std::string Tenant::StateDigest() const {
  return SerializeState(CaptureState(durable_->clusterer()));
}

uint64_t Tenant::steps_applied() const { return durable_->applied_steps(); }

const RecoveryInfo& Tenant::recovery() const { return durable_->recovery(); }

}  // namespace nidc::shard
