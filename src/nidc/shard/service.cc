#include "nidc/shard/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>

namespace nidc::shard {

namespace {

// Bound on retained latency samples; beyond it the oldest are dropped
// (the histogram keeps the full distribution either way).
constexpr size_t kMaxLatencySamples = 1 << 20;

const std::vector<double> kLatencyBucketsSeconds = {
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};

// Completion timestamps retained per shard for the Retry-After drain-rate
// estimate; 32 spans enough history to smooth bursts without remembering
// a stale rate for long.
constexpr size_t kMaxCompletionSamples = 32;

}  // namespace

Status ShardService::ValidateTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return Status::InvalidArgument("tenant name must be 1..64 characters");
  }
  if (name.front() == '.') {
    return Status::InvalidArgument("tenant name must not start with '.'");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) {
      return Status::InvalidArgument(
          "tenant name may only contain [A-Za-z0-9_.-]");
    }
  }
  return Status::OK();
}

ShardService::ShardService(ShardServiceOptions options)
    : options_(std::move(options)) {
  metrics_ = options_.metrics != nullptr ? options_.metrics : &owned_metrics_;
}

Result<std::unique_ptr<ShardService>> ShardService::Start(
    ShardServiceOptions options) {
  if (options.root.empty()) {
    return Status::InvalidArgument("ShardServiceOptions.root is required");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  std::unique_ptr<ShardService> service(new ShardService(std::move(options)));
  NIDC_RETURN_NOT_OK(service->Init());
  return service;
}

Status ShardService::Init() {
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t num_shards =
      options_.num_shards == 0 ? hardware : options_.num_shards;
  num_shards = std::max<size_t>(1, num_shards);
  threads_per_shard_ = options_.threads_per_shard != 0
                           ? options_.threads_per_shard
                           : std::max<size_t>(1, hardware / num_shards);

  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  Env* env = options_.env != nullptr ? options_.env : Env::Default();
  NIDC_RETURN_NOT_OK(env->CreateDir(options_.root));
  NIDC_RETURN_NOT_OK(env->CreateDir(options_.root + "/tenants"));

  // Reopen every tenant directory before traffic starts: crash recovery
  // happens here, single-threaded, so the workers only ever see healthy
  // (or explicitly failed) tenants.
  Result<std::vector<std::string>> entries =
      env->ListDir(options_.root + "/tenants");
  if (!entries.ok()) return entries.status();
  for (const std::string& name : *entries) {
    if (!ValidateTenantName(name).ok()) continue;
    if (!env->FileExists(TenantDir(name) + "/TENANT.json")) continue;
    Result<std::unique_ptr<Tenant>> tenant =
        Tenant::Open(name, TenantDir(name), MakeRuntime());
    if (!tenant.ok()) return tenant.status();
    Entry entry;
    entry.tenant = std::shared_ptr<Tenant>(std::move(tenant).value());
    entry.shard = ShardOf(name);
    tenants_.emplace(name, std::move(entry));
  }
  metrics_->GetGauge("shard.tenants")
      ->Set(static_cast<double>(tenants_.size()));
  metrics_->GetGauge("shard.shards")->Set(static_cast<double>(num_shards));
  // Register the whole family eagerly so a /metricsz scrape (and
  // `nidc_metrics_check --shard-snapshot`) sees every shard.* series
  // from boot, not only after the first rejection or failure.
  metrics_->GetCounter("shard.ingest.docs");
  metrics_->GetCounter("shard.ingest.batches");
  metrics_->GetCounter("shard.ingest.rejected_batches");
  metrics_->GetCounter("shard.ingest.failed");
  metrics_->GetCounter("shard.ingest.dropped");
  metrics_->GetCounter("shard.steps");
  metrics_->GetHistogram("shard.ingest.latency_seconds",
                         kLatencyBucketsSeconds);
  for (size_t i = 0; i < num_shards; ++i) {
    metrics_->GetGauge("shard.queue." + std::to_string(i) + ".depth")
        ->Set(0.0);
  }

  for (size_t i = 0; i < num_shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

size_t ShardService::ShardOf(const std::string& name) const {
  // FNV-1a: stable across processes (std::hash is not guaranteed to be),
  // so a tenant reopens onto the same shard after a restart.
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return static_cast<size_t>(hash % shards_.size());
}

TenantRuntime ShardService::MakeRuntime() const {
  TenantRuntime runtime;
  runtime.env = options_.env;
  runtime.checkpoint_every = options_.checkpoint_every;
  runtime.wal_sync = options_.wal_sync;
  runtime.kmeans_threads = threads_per_shard_;
  runtime.shared_metrics = metrics_;
  runtime.tracer = options_.tracer;
  return runtime;
}

std::string ShardService::TenantDir(const std::string& name) const {
  return options_.root + "/tenants/" + name;
}

double ShardService::NowSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ShardService::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  obs::Gauge* depth_gauge = metrics_->GetGauge(
      "shard.queue." + std::to_string(shard_index) + ".depth");
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return shard.stopping || !shard.queue.empty();
      });
      if (shard.queue.empty()) return;  // stopping && drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
      if (job.is_ingest) --shard.ingest_pending;
      depth_gauge->Set(static_cast<double>(shard.ingest_pending));
    }
    if (job.is_ingest) {
      if (options_.tracer != nullptr && job.trace.valid()) {
        options_.tracer->RecordStage(job.trace, obs::Stage::kDequeue);
      }
      RunIngestJob(shard_index, job);
    } else {
      job.call();
    }
  }
}

void ShardService::RunIngestJob(size_t shard_index, Job& job) {
  std::shared_ptr<Tenant> tenant = GetTenant(job.tenant);
  Status status = tenant == nullptr
                      ? Status::NotFound("tenant evicted before ingest ran")
                      : tenant->Ingest(job.docs, job.trace);
  if (!status.ok()) {
    metrics_->GetCounter(tenant == nullptr ? "shard.ingest.dropped"
                                           : "shard.ingest.failed")
        ->Increment();
  }
  const double done = NowSeconds();
  const double latency = done - job.enqueued_seconds;
  metrics_
      ->GetHistogram("shard.ingest.latency_seconds", kLatencyBucketsSeconds)
      ->Observe(latency);
  {
    Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.completion_seconds.push_back(done);
    while (shard.completion_seconds.size() > kMaxCompletionSamples) {
      shard.completion_seconds.pop_front();
    }
  }
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (latency_samples_.size() >= kMaxLatencySamples) {
    latency_samples_.erase(latency_samples_.begin(),
                           latency_samples_.begin() + kMaxLatencySamples / 2);
  }
  latency_samples_.push_back(latency);
}

int ShardService::RetryAfterHintSeconds(size_t shard_index) const {
  if (shard_index >= shards_.size()) return 1;
  const Shard& shard = *shards_[shard_index];
  size_t pending;
  double span;
  size_t completions;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    pending = shard.ingest_pending;
    completions = shard.completion_seconds.size();
    span = completions >= 2 ? shard.completion_seconds.back() -
                                  shard.completion_seconds.front()
                            : 0.0;
  }
  // Too little history (or all completions inside one tick) to estimate a
  // rate: keep the old one-second contract.
  if (completions < 2 || span <= 0.0) return 1;
  const double rate = static_cast<double>(completions - 1) / span;
  const double wait = static_cast<double>(pending) / rate;
  const double clamped = std::min(30.0, std::max(1.0, std::ceil(wait)));
  return static_cast<int>(clamped);
}

Status ShardService::RunOnShard(size_t shard_index,
                                std::function<Status()> fn) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  std::promise<Status> done;
  std::future<Status> result = done.get_future();
  {
    Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.stopping) {
      return Status::FailedPrecondition("service is stopping");
    }
    Job job;
    job.call = [fn = std::move(fn), &done] { done.set_value(fn()); };
    shard.queue.push_back(std::move(job));
    shard.cv.notify_one();
  }
  return result.get();
}

Status ShardService::CreateTenant(const std::string& name,
                                  const TenantConfig& config) {
  NIDC_RETURN_NOT_OK(ValidateTenantName(name));
  NIDC_RETURN_NOT_OK(config.Validate());
  const size_t shard = ShardOf(name);
  return RunOnShard(shard, [this, name, config, shard]() -> Status {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tenants_.count(name) != 0) {
        return Status::AlreadyExists("tenant " + name + " already exists");
      }
    }
    Result<std::unique_ptr<Tenant>> tenant =
        Tenant::Create(name, TenantDir(name), config, MakeRuntime());
    if (!tenant.ok()) return tenant.status();
    Entry entry;
    entry.tenant = std::shared_ptr<Tenant>(std::move(tenant).value());
    entry.shard = shard;
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.emplace(name, std::move(entry));
    metrics_->GetGauge("shard.tenants")
        ->Set(static_cast<double>(tenants_.size()));
    return Status::OK();
  });
}

Status ShardService::OpenTenant(const std::string& name) {
  NIDC_RETURN_NOT_OK(ValidateTenantName(name));
  const size_t shard = ShardOf(name);
  return RunOnShard(shard, [this, name, shard]() -> Status {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tenants_.count(name) != 0) {
        return Status::AlreadyExists("tenant " + name + " is already open");
      }
    }
    Result<std::unique_ptr<Tenant>> tenant =
        Tenant::Open(name, TenantDir(name), MakeRuntime());
    if (!tenant.ok()) return tenant.status();
    Entry entry;
    entry.tenant = std::shared_ptr<Tenant>(std::move(tenant).value());
    entry.shard = shard;
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.emplace(name, std::move(entry));
    metrics_->GetGauge("shard.tenants")
        ->Set(static_cast<double>(tenants_.size()));
    return Status::OK();
  });
}

Status ShardService::EvictTenant(const std::string& name) {
  NIDC_RETURN_NOT_OK(ValidateTenantName(name));
  return RunOnShard(ShardOf(name), [this, name]() -> Status {
    std::shared_ptr<Tenant> tenant;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tenants_.find(name);
      if (it == tenants_.end()) {
        return Status::NotFound("no tenant named " + name);
      }
      tenant = std::move(it->second.tenant);
      tenants_.erase(it);
      metrics_->GetGauge("shard.tenants")
          ->Set(static_cast<double>(tenants_.size()));
    }
    // Close on the owning shard thread; an HTTP worker may still hold the
    // shared_ptr for a /statusz render, which stays safe (its surfaces
    // are synchronized and outlive Close).
    return tenant->Close();
  });
}

Status ShardService::EnqueueIngest(const std::string& name,
                                   std::vector<RawDocument> docs,
                                   obs::TraceContext trace) {
  size_t shard_index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("no tenant named " + name);
    }
    if (it->second.tenant->failed()) {
      return Status::FailedPrecondition(
          "tenant " + name + " storage failed; evict and reopen");
    }
    shard_index = it->second.shard;
  }
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.stopping) {
      return Status::FailedPrecondition("service is stopping");
    }
    if (shard.ingest_pending >= options_.queue_capacity) {
      metrics_->GetCounter("shard.ingest.rejected_batches")->Increment();
      return Status::OutOfRange(
          "shard " + std::to_string(shard_index) + " queue is full (" +
          std::to_string(shard.ingest_pending) + " pending batches)");
    }
    Job job;
    job.is_ingest = true;
    job.tenant = name;
    job.docs = std::move(docs);
    job.enqueued_seconds = NowSeconds();
    job.trace = trace;
    shard.queue.push_back(std::move(job));
    ++shard.ingest_pending;
    metrics_->GetGauge("shard.queue." + std::to_string(shard_index) +
                       ".depth")
        ->Set(static_cast<double>(shard.ingest_pending));
    metrics_->GetCounter("shard.ingest.batches")->Increment();
    shard.cv.notify_one();
  }
  if (options_.tracer != nullptr && trace.valid()) {
    options_.tracer->RecordStage(trace, obs::Stage::kEnqueue);
  }
  return Status::OK();
}

Status ShardService::Flush(const std::string& name, DayTime until) {
  return RunOnShard(ShardOf(name), [this, name, until]() -> Status {
    std::shared_ptr<Tenant> tenant = GetTenant(name);
    if (tenant == nullptr) return Status::NotFound("no tenant named " + name);
    return tenant->FlushUntil(until);
  });
}

Status ShardService::Checkpoint(const std::string& name) {
  return RunOnShard(ShardOf(name), [this, name]() -> Status {
    std::shared_ptr<Tenant> tenant = GetTenant(name);
    if (tenant == nullptr) return Status::NotFound("no tenant named " + name);
    return tenant->Checkpoint();
  });
}

Result<std::string> ShardService::StateDigest(const std::string& name) {
  std::string digest;
  Status status = RunOnShard(ShardOf(name), [this, name, &digest]() -> Status {
    std::shared_ptr<Tenant> tenant = GetTenant(name);
    if (tenant == nullptr) return Status::NotFound("no tenant named " + name);
    digest = tenant->StateDigest();
    return Status::OK();
  });
  if (!status.ok()) return status;
  return digest;
}

void ShardService::Drain() {
  std::vector<std::future<Status>> barriers;
  std::vector<std::shared_ptr<std::promise<Status>>> promises;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    auto done = std::make_shared<std::promise<Status>>();
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.stopping) continue;
    Job job;
    job.call = [done] { done->set_value(Status::OK()); };
    shard.queue.push_back(std::move(job));
    shard.cv.notify_one();
    barriers.push_back(done->get_future());
    promises.push_back(done);
  }
  for (auto& barrier : barriers) barrier.get();
}

std::shared_ptr<Tenant> ShardService::GetTenant(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.tenant;
}

std::vector<std::string> ShardService::TenantNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(tenants_.size());
    for (const auto& [name, entry] : tenants_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<TenantInfo> ShardService::Tenants() const {
  std::vector<TenantInfo> infos;
  {
    std::lock_guard<std::mutex> lock(mu_);
    infos.reserve(tenants_.size());
    for (const auto& [name, entry] : tenants_) {
      TenantInfo info;
      info.name = name;
      info.shard = entry.shard;
      info.failed = entry.tenant->failed();
      info.docs_ingested = entry.tenant->docs_ingested();
      info.steps_applied = entry.tenant->steps_applied();
      info.now = entry.tenant->now();
      infos.push_back(std::move(info));
    }
  }
  std::sort(infos.begin(), infos.end(),
            [](const TenantInfo& a, const TenantInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

size_t ShardService::QueueDepth(size_t shard) const {
  if (shard >= shards_.size()) return 0;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->ingest_pending;
}

size_t ShardService::TotalQueueDepth() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) total += QueueDepth(i);
  return total;
}

std::vector<double> ShardService::TakeLatencySamples() {
  std::lock_guard<std::mutex> lock(samples_mu_);
  std::vector<double> samples;
  samples.swap(latency_samples_);
  return samples;
}

void ShardService::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stopping = true;
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Workers are gone; closing tenants here is single-threaded.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : tenants_) {
    entry.tenant->Close();  // final checkpoint; errors already marked
  }
}

ShardService::~ShardService() { Stop(); }

}  // namespace nidc::shard
