// One tenant of the sharded service: a topic feed owning a full private
// pipeline — corpus, DurableClusterer (WAL + checkpoints), TimeBatcher,
// metrics registry, event log, health monitor and StatusBoard. Tenants
// share nothing mutable; the owning shard worker is the only thread that
// calls the mutating interface (Ingest/FlushUntil/Checkpoint/Close),
// while the introspection accessors (board(), metrics(), health()) are
// internally synchronized and safe from HTTP worker threads.
//
// On-disk layout under the tenant directory (see docs/serving.md):
//   TENANT.json   — the persisted TenantConfig (identity of the feed);
//   corpus.tsv    — append-only raw documents, corpus_io TSV, fsynced
//                   before any Step that references the new ids (the WAL
//                   must never get ahead of the corpus, or replay would
//                   meet unknown DocIds);
//   store/        — the DurableClusterer's WAL + generation snapshots.
//
// Reopen (Tenant::Open) recovers bit-identically: LoadCorpus re-analyzes
// corpus.tsv in file order (ids are stable because appends are ordered),
// DurableClusterer::Open restores the newest durable state, and the
// TimeBatcher seeks to the recovered clock; documents the WAL had not yet
// stepped (time >= recovered clock — an invariant, since a stepped
// document's time is strictly below its window end) are re-primed into
// the open window, re-running any window that closed but never reached
// the WAL. A crash between the corpus append and the WAL append therefore
// heals instead of diverging.

#ifndef NIDC_SHARD_TENANT_H_
#define NIDC_SHARD_TENANT_H_

#include <memory>
#include <string>
#include <vector>

#include "nidc/corpus/corpus_io.h"
#include "nidc/corpus/stream.h"
#include "nidc/obs/cluster_health.h"
#include "nidc/obs/event_log.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/reqtrace.h"
#include "nidc/serve/introspection.h"
#include "nidc/store/durable_clusterer.h"

namespace nidc::shard {

/// The persisted identity of a tenant feed — everything that must be
/// equal between a live tenant and its reopened successor (or a CLI
/// replay of the same feed) for the states to be bit-identical.
struct TenantConfig {
  /// Forgetting model (β half-life, γ life span).
  ForgettingParams params;
  /// Cluster count K of every step.
  size_t k = 8;
  /// Batching window length in days.
  double step_days = 1.0;
  /// Start of the first window.
  DayTime start_time = 0.0;
  /// K-means seed (per-step stream offset is part of durable state).
  uint64_t seed = 42;

  Status Validate() const;

  /// TENANT.json round trip.
  std::string ToJson() const;
  static Result<TenantConfig> FromJson(const std::string& json);
};

/// Host-side (non-persisted) wiring a tenant runs with.
struct TenantRuntime {
  /// Filesystem; null selects Env::Default().
  Env* env = nullptr;
  /// DurableClusterer rotation cadence.
  uint64_t checkpoint_every = 16;
  WalSyncMode wal_sync = WalSyncMode::kEveryRecord;
  /// K-means thread budget for this tenant's steps — the shard's share of
  /// the machine, so shard parallelism and K-means parallelism compose
  /// without oversubscription. 1 = serial.
  size_t kmeans_threads = 1;
  /// Cross-tenant `shard.*` family (doc counters, step counters); null
  /// disables. Per-tenant pipeline metrics always go to the tenant's own
  /// registry regardless.
  obs::MetricsRegistry* shared_metrics = nullptr;
  /// Process-wide request tracer; null disables stage stamping. The
  /// tenant binds ingested documents to their batch's trace, stamps
  /// window close, and scopes the closing window's traces onto the step
  /// thread so the durability and replication layers stamp their stages.
  obs::RequestTracer* tracer = nullptr;
};

class Tenant {
 public:
  /// Creates a fresh tenant directory (AlreadyExists when `dir` already
  /// holds a TENANT.json) and opens it.
  static Result<std::unique_ptr<Tenant>> Create(const std::string& name,
                                                const std::string& dir,
                                                const TenantConfig& config,
                                                const TenantRuntime& runtime);

  /// Reopens a tenant from disk, recovering as described above
  /// (NotFound when `dir` has no TENANT.json).
  static Result<std::unique_ptr<Tenant>> Open(const std::string& name,
                                              const std::string& dir,
                                              const TenantRuntime& runtime);

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;
  ~Tenant();

  /// Ingests one batch: validates (times non-decreasing and not before
  /// anything already ingested — the feed is chronological end to end),
  /// appends to corpus.tsv, syncs, analyzes into the corpus, pushes
  /// through the TimeBatcher and steps every window that closes.
  /// InvalidArgument rejections change nothing; an IOError marks the
  /// tenant failed (storage in unknown state — evict and reopen). A
  /// valid `trace` is bound to every document of the batch so the later
  /// window close can stamp the remaining pipeline stages.
  Status Ingest(const std::vector<RawDocument>& docs,
                const obs::TraceContext& trace = obs::TraceContext());

  /// Closes and steps every window up to `until` (final partial window
  /// included), exactly like a DocumentStream replay ending at `until`.
  Status FlushUntil(DayTime until);

  /// Forces a checkpoint rotation.
  Status Checkpoint();

  /// Final checkpoint + WAL close; the destructor calls it too.
  Status Close();

  /// Serialized ClustererState of the current model — the bit-identity
  /// currency of the equivalence tests.
  std::string StateDigest() const;

  const std::string& name() const { return name_; }
  const TenantConfig& config() const { return config_; }
  /// Storage hit an unknown state; the tenant refuses further work.
  bool failed() const { return failed_; }
  /// Start of the open (not yet stepped) window.
  DayTime now() const { return batcher_.cursor(); }
  uint64_t docs_ingested() const { return docs_ingested_; }
  uint64_t steps_applied() const;
  /// Windows skipped because they were empty with no active documents.
  uint64_t empty_windows_skipped() const { return empty_windows_skipped_; }
  const RecoveryInfo& recovery() const;

  // Introspection surfaces (thread-safe; read by HTTP workers).
  const serve::StatusBoard& board() const { return board_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::ClusterHealthMonitor& health() const { return *health_; }
  const obs::EventLog& events() const { return *events_; }
  const DurableClusterer& durable() const { return *durable_; }

 private:
  Tenant(std::string name, std::string dir, TenantConfig config,
         TenantRuntime runtime);

  /// Shared tail of Create/Open: builds the clusterer over the loaded
  /// corpus, recovers, seeks the batcher and re-primes unstepped docs.
  Status Boot(std::unique_ptr<Corpus> corpus, bool fresh);

  /// Steps every closed window, skipping benign empty-window
  /// FailedPreconditions and publishing telemetry.
  Status StepWindows(std::vector<DocumentBatch>& closed);

  void PublishStep(const DocumentBatch& window, const StepResult& result);

  std::string name_;
  std::string dir_;
  TenantConfig config_;
  TenantRuntime runtime_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::EventLog> events_;
  std::unique_ptr<obs::ClusterHealthMonitor> health_;
  serve::StatusBoard board_;

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<DurableClusterer> durable_;
  std::unique_ptr<WritableFile> corpus_file_;
  TimeBatcher batcher_;
  /// Newest ingested document time; the chronological floor.
  DayTime last_time_ = 0.0;
  uint64_t docs_ingested_ = 0;
  uint64_t empty_windows_skipped_ = 0;
  bool failed_ = false;
  bool closed_ = false;
};

}  // namespace nidc::shard

#endif  // NIDC_SHARD_TENANT_H_
