#include "nidc/core/cluster_set.h"

#include <cassert>

#include "nidc/util/thread_pool.h"

namespace nidc {

void ClusterSet::Assign(DocId id, int p, const SimilarityContext& ctx) {
  assert(p == kUnassigned ||
         (p >= 0 && static_cast<size_t>(p) < clusters_.size()));
  if (id >= assignment_.size()) {
    assignment_.resize(static_cast<size_t>(id) + 1, kUnassigned);
  }
  const int current = assignment_[id];
  if (current == p) return;
  if (current != kUnassigned) {
    clusters_[static_cast<size_t>(current)].Remove(id, ctx);
    if (scoring_ == ClusterScoring::kIndexed) {
      rep_index_.Remove(static_cast<size_t>(current), ctx.Psi(id));
    } else if (scoring_ == ClusterScoring::kSlotted) {
      flat_index_.ApplyRemove(ctx, ctx.SlotOf(id),
                              static_cast<size_t>(current));
    }
    assignment_[id] = kUnassigned;
    --total_assigned_;
  }
  if (p != kUnassigned) {
    Cluster& target = clusters_[static_cast<size_t>(p)];
    if (target.empty() && !target.ReseedContinuesIdentity(id)) {
      target.set_id(next_id_++);
    }
    target.Add(id, ctx);
    if (scoring_ == ClusterScoring::kIndexed) {
      rep_index_.Add(static_cast<size_t>(p), ctx.Psi(id));
    } else if (scoring_ == ClusterScoring::kSlotted) {
      flat_index_.ApplyAdd(ctx, ctx.SlotOf(id), static_cast<size_t>(p));
    }
    assignment_[id] = p;
    ++total_assigned_;
  }
}

size_t ClusterSet::InstallIds(const std::vector<uint64_t>& seed_ids,
                              uint64_t first_fresh_id) {
  next_id_ = first_fresh_id;
  for (uint64_t seed : seed_ids) {
    if (seed != Cluster::kNoClusterId && seed >= next_id_) {
      next_id_ = seed + 1;
    }
  }
  size_t fresh = 0;
  for (size_t p = 0; p < clusters_.size(); ++p) {
    if (p < seed_ids.size() && seed_ids[p] != Cluster::kNoClusterId) {
      clusters_[p].set_id(seed_ids[p]);
    } else {
      clusters_[p].set_id(next_id_++);
      ++fresh;
    }
  }
  return fresh;
}

std::vector<uint64_t> ClusterSet::cluster_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(clusters_.size());
  for (const Cluster& c : clusters_) ids.push_back(c.id());
  return ids;
}

void ClusterSet::ReplayStay(DocId id, size_t p, double t_attached,
                            double t_detached, const SimilarityContext& ctx) {
  assert(ClusterOf(id) == static_cast<int>(p));
  clusters_[p].ReplayDetachReattach(id, t_attached, t_detached,
                                    ctx.SelfSim(id));
  // Posting weights round-trip to themselves under remove + re-add, so the
  // index needs no touch — that is the whole point of the move-only sweep.
}

void ClusterSet::RefreshAll(const SimilarityContext& ctx, ThreadPool* pool) {
  if (pool != nullptr && pool->num_threads() > 1 && clusters_.size() > 1) {
    // Each Cluster::Refresh reads only the context and its own members and
    // writes only its own caches — independent across clusters, so lanes
    // produce the serial results bit-for-bit.
    pool->ParallelFor(clusters_.size(), /*grain=*/1,
                      [&](size_t begin, size_t end) {
                        for (size_t p = begin; p < end; ++p) {
                          clusters_[p].Refresh(ctx);
                        }
                      });
  } else {
    for (Cluster& c : clusters_) c.Refresh(ctx);
  }
  if (scoring_ == ClusterScoring::kIndexed) {
    // Rebuild the postings with the same per-term addition order as
    // Cluster::Refresh uses for the representatives, so indexed scores stay
    // aligned with the merge path and tombstone drift is cleared.
    rep_index_.Reset(clusters_.size());
    for (size_t p = 0; p < clusters_.size(); ++p) {
      for (DocId id : clusters_[p].members()) {
        rep_index_.Add(p, ctx.Psi(id));
      }
    }
  } else if (scoring_ == ClusterScoring::kSlotted) {
    // One-pass CSR rebuild (same member-order accumulation); also clears
    // the mid-sweep overlay and tombstones.
    flat_index_.BuildFromClusters(ctx, clusters_, pool);
  }
}

double ClusterSet::G() const {
  double g = 0.0;
  for (const Cluster& c : clusters_) {
    g += static_cast<double>(c.size()) * c.AvgSim();
  }
  return g;
}

}  // namespace nidc
