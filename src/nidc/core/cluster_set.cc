#include "nidc/core/cluster_set.h"

#include <cassert>

namespace nidc {

void ClusterSet::Assign(DocId id, int p, const SimilarityContext& ctx) {
  assert(p == kUnassigned ||
         (p >= 0 && static_cast<size_t>(p) < clusters_.size()));
  const int current = ClusterOf(id);
  if (current == p) return;
  if (current != kUnassigned) {
    clusters_[static_cast<size_t>(current)].Remove(id, ctx);
    assignment_.erase(id);
  }
  if (p != kUnassigned) {
    clusters_[static_cast<size_t>(p)].Add(id, ctx);
    assignment_[id] = p;
  }
}

void ClusterSet::RefreshAll(const SimilarityContext& ctx) {
  for (Cluster& c : clusters_) c.Refresh(ctx);
}

double ClusterSet::G() const {
  double g = 0.0;
  for (const Cluster& c : clusters_) {
    g += static_cast<double>(c.size()) * c.AvgSim();
  }
  return g;
}

size_t ClusterSet::TotalAssigned() const {
  return assignment_.size();
}

}  // namespace nidc
