#include "nidc/core/cluster_set.h"

#include <cassert>

namespace nidc {

void ClusterSet::Assign(DocId id, int p, const SimilarityContext& ctx) {
  assert(p == kUnassigned ||
         (p >= 0 && static_cast<size_t>(p) < clusters_.size()));
  const int current = ClusterOf(id);
  if (current == p) return;
  if (current != kUnassigned) {
    clusters_[static_cast<size_t>(current)].Remove(id, ctx);
    if (rep_index_enabled_) {
      rep_index_.Remove(static_cast<size_t>(current), ctx.Psi(id));
    }
    assignment_.erase(id);
  }
  if (p != kUnassigned) {
    clusters_[static_cast<size_t>(p)].Add(id, ctx);
    if (rep_index_enabled_) {
      rep_index_.Add(static_cast<size_t>(p), ctx.Psi(id));
    }
    assignment_[id] = p;
  }
}

void ClusterSet::RefreshAll(const SimilarityContext& ctx) {
  for (Cluster& c : clusters_) c.Refresh(ctx);
  if (rep_index_enabled_) {
    // Rebuild the postings with the same per-term addition order as
    // Cluster::Refresh uses for the representatives, so indexed scores stay
    // aligned with the merge path and tombstone drift is cleared.
    rep_index_.Reset(clusters_.size());
    for (size_t p = 0; p < clusters_.size(); ++p) {
      for (DocId id : clusters_[p].members()) {
        rep_index_.Add(p, ctx.Psi(id));
      }
    }
  }
}

double ClusterSet::G() const {
  double g = 0.0;
  for (const Cluster& c : clusters_) {
    g += static_cast<double>(c.size()) * c.AvgSim();
  }
  return g;
}

size_t ClusterSet::TotalAssigned() const {
  return assignment_.size();
}

}  // namespace nidc
