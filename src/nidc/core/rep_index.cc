#include "nidc/core/rep_index.h"

#include <algorithm>

#include "nidc/util/logging.h"

namespace nidc {

void ClusterRepIndex::Reset(size_t num_clusters) {
  postings_.clear();
  k_ = num_clusters;
  // The entry gauges track the (now empty) postings; the maintenance
  // counters survive — RefreshAll resets the index once per sweep, and the
  // telemetry wants tombstone/compaction churn per run, not per sweep.
  stats_.live_entries = 0;
  stats_.dead_entries = 0;
}

void ClusterRepIndex::Add(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    PostingList& list = postings_[e.id];
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    if (found == nullptr) {
      list.entries.push_back({static_cast<uint32_t>(p), 1, e.value});
      ++stats_.live_entries;
    } else {
      if (found->refs == 0) {  // revive a tombstone
        --list.dead;
        --stats_.dead_entries;
        ++stats_.live_entries;
        ++stats_.tombstones_revived;
      }
      ++found->refs;
      found->weight += e.value;
    }
  }
}

void ClusterRepIndex::Remove(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    auto it = postings_.find(e.id);
    NIDC_CHECK(it != postings_.end())
        << "removing term " << e.id << " never added to cluster " << p;
    PostingList& list = it->second;
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    NIDC_CHECK(found != nullptr && found->refs > 0)
        << "removing term " << e.id << " never added to cluster " << p;
    found->weight -= e.value;
    if (--found->refs == 0) {
      // Last contributor gone: snap the residual to exact zero (the
      // posting-side analogue of Cluster::Clear) and tombstone.
      found->weight = 0.0;
      ++list.dead;
      --stats_.live_entries;
      ++stats_.dead_entries;
      ++stats_.tombstones_created;
      MaybeCompact(&list);
      if (list.entries.empty()) postings_.erase(it);
    }
  }
}

void ClusterRepIndex::MaybeCompact(PostingList* list) {
  if (list->dead * 2 <= list->entries.size()) return;
  list->entries.erase(
      std::remove_if(list->entries.begin(), list->entries.end(),
                     [](const Entry& e) { return e.refs == 0; }),
      list->entries.end());
  ++stats_.compactions;
  stats_.entries_compacted += list->dead;
  stats_.dead_entries -= list->dead;
  list->dead = 0;
}

void ClusterRepIndex::ScoreAll(const SparseVector& psi,
                               std::vector<double>* scores) const {
  scores->assign(k_, 0.0);
  for (const auto& e : psi.entries()) {
    auto it = postings_.find(e.id);
    if (it == postings_.end()) continue;
    for (const Entry& entry : it->second.entries) {
      (*scores)[entry.cluster] += entry.weight * e.value;
    }
  }
}

std::vector<std::pair<size_t, double>> ClusterRepIndex::PostingsOf(
    TermId term) const {
  std::vector<std::pair<size_t, double>> out;
  auto it = postings_.find(term);
  if (it == postings_.end()) return out;
  for (const Entry& e : it->second.entries) {
    if (e.refs > 0) out.emplace_back(e.cluster, e.weight);
  }
  return out;
}

void FlatRepIndex::PrepareBuild(const SimilarityContext& ctx) {
  const size_t terms = ctx.num_local_terms();
  counts_.assign(terms, 0);
  mark_.assign(terms, 0);
  has_delta_.assign(terms, 0);
  delta_.clear();
  stats_.dead_entries = 0;
  ++stats_.builds;
  built_ = true;
}

void FlatRepIndex::BuildFromClusters(const SimilarityContext& ctx,
                                     const std::vector<Cluster>& clusters) {
  k_ = clusters.size();
  PrepareBuild(ctx);

  // Pass 1: count distinct (term, cluster) pairs per term. Clusters are
  // visited in ascending order, so a per-term marker of the last touching
  // cluster suffices to dedupe.
  for (size_t p = 0; p < k_; ++p) {
    const uint32_t tag = static_cast<uint32_t>(p) + 1;
    for (DocId id : clusters[p].members()) {
      const SimilarityContext::Row row = ctx.RowAt(ctx.SlotOf(id));
      for (size_t i = 0; i < row.size; ++i) {
        const uint32_t t = row.terms[i];
        if (mark_[t] != tag) {
          mark_[t] = tag;
          ++counts_[t];
        }
      }
    }
  }

  // Prefix-sum the counts into offsets; counts_ then becomes the per-term
  // fill cursor.
  const size_t terms = counts_.size();
  offsets_.assign(terms + 1, 0);
  for (size_t t = 0; t < terms; ++t) offsets_[t + 1] = offsets_[t] + counts_[t];
  entries_.assign(offsets_[terms], Entry{});
  for (size_t t = 0; t < terms; ++t) counts_[t] = offsets_[t];

  // Pass 2: accumulate member ψ values per entry, in member order — the
  // same addition sequence Cluster::Refresh replays into the
  // representative, so weights match it bit-for-bit. Ascending cluster
  // order means an existing entry for cluster p is always the last one
  // filled for its term.
  for (size_t p = 0; p < k_; ++p) {
    const uint32_t cluster = static_cast<uint32_t>(p);
    for (DocId id : clusters[p].members()) {
      const SimilarityContext::Row row = ctx.RowAt(ctx.SlotOf(id));
      for (size_t i = 0; i < row.size; ++i) {
        const uint32_t t = row.terms[i];
        const size_t cursor = counts_[t];
        if (cursor > offsets_[t] && entries_[cursor - 1].cluster == cluster &&
            entries_[cursor - 1].refs > 0) {
          entries_[cursor - 1].refs += 1;
          entries_[cursor - 1].weight += row.values[i];
        } else {
          entries_[cursor] = {cluster, 1, row.values[i]};
          counts_[t] = cursor + 1;
        }
      }
    }
  }
  stats_.live_entries = entries_.size();
}

void FlatRepIndex::BuildFromRepresentatives(
    const SimilarityContext& ctx, const std::vector<SparseVector>& reps) {
  k_ = reps.size();
  PrepareBuild(ctx);

  const size_t terms = counts_.size();
  for (size_t p = 0; p < k_; ++p) {
    for (const auto& e : reps[p].entries()) {
      if (e.value == 0.0) continue;
      const uint32_t t = ctx.LocalTerm(e.id);
      if (t == SimilarityContext::kNoLocalTerm) continue;
      ++counts_[t];
    }
  }
  offsets_.assign(terms + 1, 0);
  for (size_t t = 0; t < terms; ++t) offsets_[t + 1] = offsets_[t] + counts_[t];
  entries_.assign(offsets_[terms], Entry{});
  for (size_t t = 0; t < terms; ++t) counts_[t] = offsets_[t];
  for (size_t p = 0; p < k_; ++p) {
    for (const auto& e : reps[p].entries()) {
      if (e.value == 0.0) continue;
      const uint32_t t = ctx.LocalTerm(e.id);
      if (t == SimilarityContext::kNoLocalTerm) continue;
      entries_[counts_[t]++] = {static_cast<uint32_t>(p), 1, e.value};
    }
  }
  stats_.live_entries = entries_.size();
}

void FlatRepIndex::ScoreAll(const SimilarityContext& ctx,
                            SimilarityContext::Slot slot,
                            std::vector<double>* scores) const {
  NIDC_CHECK(built_) << "FlatRepIndex scored before a build";
  scores->assign(k_, 0.0);
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    for (size_t e = offsets_[t]; e < offsets_[t + 1]; ++e) {
      (*scores)[entries_[e].cluster] += entries_[e].weight * v;
    }
    if (has_delta_[t]) {
      for (const Entry& entry : delta_.at(t)) {
        (*scores)[entry.cluster] += entry.weight * v;
      }
    }
  }
}

void FlatRepIndex::ScoreAllDetached(const SimilarityContext& ctx,
                                    SimilarityContext::Slot slot, size_t home,
                                    std::vector<double>* scores,
                                    double* home_attached) const {
  NIDC_CHECK(built_) << "FlatRepIndex scored before a build";
  scores->assign(k_, 0.0);
  const uint32_t home_cluster = static_cast<uint32_t>(home);
  double attached = 0.0;
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    for (size_t e = offsets_[t]; e < offsets_[t + 1]; ++e) {
      const Entry& entry = entries_[e];
      if (entry.cluster == home_cluster) {
        // Detached home score: the posting weight the physical remove
        // would leave is fl(w − v); multiplying by v afterwards replays
        // the removed-then-rescored arithmetic exactly.
        attached += entry.weight * v;
        (*scores)[home] += (entry.weight - v) * v;
      } else {
        (*scores)[entry.cluster] += entry.weight * v;
      }
    }
    if (has_delta_[t]) {
      for (const Entry& entry : delta_.at(t)) {
        if (entry.cluster == home_cluster) {
          attached += entry.weight * v;
          (*scores)[home] += (entry.weight - v) * v;
        } else {
          (*scores)[entry.cluster] += entry.weight * v;
        }
      }
    }
  }
  *home_attached = attached;
}

FlatRepIndex::Entry* FlatRepIndex::FindEntry(uint32_t local_term, size_t p) {
  const uint32_t cluster = static_cast<uint32_t>(p);
  for (size_t e = offsets_[local_term]; e < offsets_[local_term + 1]; ++e) {
    if (entries_[e].cluster == cluster) return &entries_[e];
  }
  if (has_delta_[local_term]) {
    for (Entry& entry : delta_[local_term]) {
      if (entry.cluster == cluster) return &entry;
    }
  }
  return nullptr;
}

void FlatRepIndex::ApplyRemove(const SimilarityContext& ctx,
                               SimilarityContext::Slot slot, size_t p) {
  if (!built_) return;
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  ++stats_.moves_applied;
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    if (row.values[i] == 0.0) continue;
    Entry* entry = FindEntry(row.terms[i], p);
    NIDC_CHECK(entry != nullptr && entry->refs > 0)
        << "removing term " << ctx.GlobalTerm(row.terms[i])
        << " never added to cluster " << p;
    entry->weight -= row.values[i];
    if (--entry->refs == 0) {
      // Last contributor gone: snap the residual to exact zero (the
      // posting-side analogue of Cluster::Clear) and tombstone.
      entry->weight = 0.0;
      --stats_.live_entries;
      ++stats_.dead_entries;
      ++stats_.tombstones_created;
    }
  }
}

void FlatRepIndex::ApplyAdd(const SimilarityContext& ctx,
                            SimilarityContext::Slot slot, size_t p) {
  if (!built_) return;
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  ++stats_.moves_applied;
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    if (row.values[i] == 0.0) continue;
    const uint32_t t = row.terms[i];
    Entry* entry = FindEntry(t, p);
    if (entry == nullptr) {
      // First (term, cluster) pairing since the last rebuild — the base
      // CSR cannot grow in place, so the pair lives in the overlay until
      // the next RefreshAll folds it into the base.
      has_delta_[t] = 1;
      delta_[t].push_back({static_cast<uint32_t>(p), 1, row.values[i]});
      ++stats_.delta_entries_added;
      ++stats_.live_entries;
      continue;
    }
    if (entry->refs == 0) {
      --stats_.dead_entries;
      ++stats_.live_entries;
      ++stats_.tombstones_revived;
    }
    ++entry->refs;
    entry->weight += row.values[i];
  }
}

std::vector<std::pair<size_t, double>> FlatRepIndex::PostingsOf(
    const SimilarityContext& ctx, TermId term) const {
  std::vector<std::pair<size_t, double>> out;
  const uint32_t t = ctx.LocalTerm(term);
  if (!built_ || t == SimilarityContext::kNoLocalTerm) return out;
  for (size_t e = offsets_[t]; e < offsets_[t + 1]; ++e) {
    if (entries_[e].refs > 0) out.emplace_back(entries_[e].cluster,
                                               entries_[e].weight);
  }
  if (has_delta_[t]) {
    for (const Entry& entry : delta_.at(t)) {
      if (entry.refs > 0) out.emplace_back(entry.cluster, entry.weight);
    }
  }
  return out;
}

}  // namespace nidc
