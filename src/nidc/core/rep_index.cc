#include "nidc/core/rep_index.h"

#include <algorithm>

#include "nidc/util/logging.h"

namespace nidc {

void ClusterRepIndex::Reset(size_t num_clusters) {
  postings_.clear();
  k_ = num_clusters;
  // The entry gauges track the (now empty) postings; the maintenance
  // counters survive — RefreshAll resets the index once per sweep, and the
  // telemetry wants tombstone/compaction churn per run, not per sweep.
  stats_.live_entries = 0;
  stats_.dead_entries = 0;
}

void ClusterRepIndex::Add(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    PostingList& list = postings_[e.id];
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    if (found == nullptr) {
      list.entries.push_back({static_cast<uint32_t>(p), 1, e.value});
      ++stats_.live_entries;
    } else {
      if (found->refs == 0) {  // revive a tombstone
        --list.dead;
        --stats_.dead_entries;
        ++stats_.live_entries;
        ++stats_.tombstones_revived;
      }
      ++found->refs;
      found->weight += e.value;
    }
  }
}

void ClusterRepIndex::Remove(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    auto it = postings_.find(e.id);
    NIDC_CHECK(it != postings_.end())
        << "removing term " << e.id << " never added to cluster " << p;
    PostingList& list = it->second;
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    NIDC_CHECK(found != nullptr && found->refs > 0)
        << "removing term " << e.id << " never added to cluster " << p;
    found->weight -= e.value;
    if (--found->refs == 0) {
      // Last contributor gone: snap the residual to exact zero (the
      // posting-side analogue of Cluster::Clear) and tombstone.
      found->weight = 0.0;
      ++list.dead;
      --stats_.live_entries;
      ++stats_.dead_entries;
      ++stats_.tombstones_created;
      MaybeCompact(&list);
      if (list.entries.empty()) postings_.erase(it);
    }
  }
}

void ClusterRepIndex::MaybeCompact(PostingList* list) {
  if (list->dead * 2 <= list->entries.size()) return;
  list->entries.erase(
      std::remove_if(list->entries.begin(), list->entries.end(),
                     [](const Entry& e) { return e.refs == 0; }),
      list->entries.end());
  ++stats_.compactions;
  stats_.entries_compacted += list->dead;
  stats_.dead_entries -= list->dead;
  list->dead = 0;
}

void ClusterRepIndex::ScoreAll(const SparseVector& psi,
                               std::vector<double>* scores) const {
  scores->assign(k_, 0.0);
  for (const auto& e : psi.entries()) {
    auto it = postings_.find(e.id);
    if (it == postings_.end()) continue;
    for (const Entry& entry : it->second.entries) {
      (*scores)[entry.cluster] += entry.weight * e.value;
    }
  }
}

std::vector<std::pair<size_t, double>> ClusterRepIndex::PostingsOf(
    TermId term) const {
  std::vector<std::pair<size_t, double>> out;
  auto it = postings_.find(term);
  if (it == postings_.end()) return out;
  for (const Entry& e : it->second.entries) {
    if (e.refs > 0) out.emplace_back(e.cluster, e.weight);
  }
  return out;
}

}  // namespace nidc
