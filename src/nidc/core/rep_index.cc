#include "nidc/core/rep_index.h"

#include <algorithm>
#include <cmath>

#include "nidc/core/kernels/kernels.h"
#include "nidc/util/logging.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

namespace {

// Bytes a scan reads per posting entry: cluster id (4) + fp64 weight (8)
// on the exact path, cluster id (4) + fp16 shadow weight (2) on the
// quantized path; every path also streams the document row itself
// (4-byte term + 8-byte value per term).
constexpr uint64_t kExactEntryBytes = 12;
constexpr uint64_t kQuantizedEntryBytes = 6;
constexpr uint64_t kRowBytesPerTerm = 12;

void CountScan(FlatRepIndex::ScanStats* stats, uint64_t entries,
               size_t row_terms, uint64_t entry_bytes) {
  stats->docs_scored.fetch_add(1, std::memory_order_relaxed);
  stats->entries_scanned.fetch_add(entries, std::memory_order_relaxed);
  stats->bytes_scanned.fetch_add(
      entries * entry_bytes +
          static_cast<uint64_t>(row_terms) * kRowBytesPerTerm,
      std::memory_order_relaxed);
}

}  // namespace

void ClusterRepIndex::Reset(size_t num_clusters) {
  postings_.clear();
  k_ = num_clusters;
  // The entry gauges track the (now empty) postings; the maintenance
  // counters survive — RefreshAll resets the index once per sweep, and the
  // telemetry wants tombstone/compaction churn per run, not per sweep.
  stats_.live_entries = 0;
  stats_.dead_entries = 0;
}

void ClusterRepIndex::Add(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    PostingList& list = postings_[e.id];
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    if (found == nullptr) {
      list.entries.push_back({static_cast<uint32_t>(p), 1, e.value});
      ++stats_.live_entries;
    } else {
      if (found->refs == 0) {  // revive a tombstone
        --list.dead;
        --stats_.dead_entries;
        ++stats_.live_entries;
        ++stats_.tombstones_revived;
      }
      ++found->refs;
      found->weight += e.value;
    }
  }
}

void ClusterRepIndex::Remove(size_t p, const SparseVector& psi) {
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  for (const auto& e : psi.entries()) {
    if (e.value == 0.0) continue;
    auto it = postings_.find(e.id);
    NIDC_CHECK(it != postings_.end())
        << "removing term " << e.id << " never added to cluster " << p;
    PostingList& list = it->second;
    Entry* found = nullptr;
    for (Entry& entry : list.entries) {
      if (entry.cluster == p) {
        found = &entry;
        break;
      }
    }
    NIDC_CHECK(found != nullptr && found->refs > 0)
        << "removing term " << e.id << " never added to cluster " << p;
    found->weight -= e.value;
    if (--found->refs == 0) {
      // Last contributor gone: snap the residual to exact zero (the
      // posting-side analogue of Cluster::Clear) and tombstone.
      found->weight = 0.0;
      ++list.dead;
      --stats_.live_entries;
      ++stats_.dead_entries;
      ++stats_.tombstones_created;
      MaybeCompact(&list);
      if (list.entries.empty()) postings_.erase(it);
    }
  }
}

void ClusterRepIndex::MaybeCompact(PostingList* list) {
  if (list->dead * 2 <= list->entries.size()) return;
  list->entries.erase(
      std::remove_if(list->entries.begin(), list->entries.end(),
                     [](const Entry& e) { return e.refs == 0; }),
      list->entries.end());
  ++stats_.compactions;
  stats_.entries_compacted += list->dead;
  stats_.dead_entries -= list->dead;
  list->dead = 0;
}

void ClusterRepIndex::ScoreAll(const SparseVector& psi,
                               std::vector<double>* scores) const {
  scores->assign(k_, 0.0);
  for (const auto& e : psi.entries()) {
    auto it = postings_.find(e.id);
    if (it == postings_.end()) continue;
    for (const Entry& entry : it->second.entries) {
      (*scores)[entry.cluster] += entry.weight * e.value;
    }
  }
}

std::vector<std::pair<size_t, double>> ClusterRepIndex::PostingsOf(
    TermId term) const {
  std::vector<std::pair<size_t, double>> out;
  auto it = postings_.find(term);
  if (it == postings_.end()) return out;
  for (const Entry& e : it->second.entries) {
    if (e.refs > 0) out.emplace_back(e.cluster, e.weight);
  }
  return out;
}

void FlatRepIndex::PrepareBuild(const SimilarityContext& ctx) {
  const size_t terms = ctx.num_local_terms();
  counts_.assign(terms, 0);
  mark_.assign(terms, 0);
  has_delta_.assign(terms, 0);
  delta_.clear();
  stats_.dead_entries = 0;
  ++stats_.builds;
  built_ = true;
}

void FlatRepIndex::ResizeEntries(size_t n) {
  // The SIMD kernels read full vectors past a posting tail; the padding
  // slots are zeroed (cluster 0, weight 0.0) and masked off in-register,
  // so they never reach an accumulator.
  clusters_.assign(n + kernels::kPostingPadding, 0);
  refs_.assign(n, 0);
  weights_.assign(n + kernels::kPostingPadding, 0.0);
  qweights_.assign(n + kernels::kPostingPadding, 0);
}

void FlatRepIndex::QuantizeAll() {
  const size_t n = offsets_.empty() ? 0 : offsets_.back();
  for (size_t e = 0; e < n; ++e) {
    qweights_[e] = kernels::HalfFromDouble(weights_[e]);
  }
}

void FlatRepIndex::BuildFromClusters(const SimilarityContext& ctx,
                                     const std::vector<Cluster>& clusters,
                                     ThreadPool* pool) {
  k_ = clusters.size();
  PrepareBuild(ctx);
  if (pool != nullptr && pool->num_threads() > 1 && k_ > 1) {
    BuildFromClustersParallel(ctx, clusters, pool);
  } else {
    BuildFromClustersSerial(ctx, clusters);
  }
  QuantizeAll();
  stats_.live_entries = offsets_.empty() ? 0 : offsets_.back();
}

void FlatRepIndex::BuildFromClustersSerial(
    const SimilarityContext& ctx, const std::vector<Cluster>& clusters) {
  // Pass 1: count distinct (term, cluster) pairs per term. Clusters are
  // visited in ascending order, so a per-term marker of the last touching
  // cluster suffices to dedupe.
  for (size_t p = 0; p < k_; ++p) {
    const uint32_t tag = static_cast<uint32_t>(p) + 1;
    for (DocId id : clusters[p].members()) {
      const SimilarityContext::Row row = ctx.RowAt(ctx.SlotOf(id));
      for (size_t i = 0; i < row.size; ++i) {
        const uint32_t t = row.terms[i];
        if (mark_[t] != tag) {
          mark_[t] = tag;
          ++counts_[t];
        }
      }
    }
  }

  // Prefix-sum the counts into offsets; counts_ then becomes the per-term
  // fill cursor.
  const size_t terms = counts_.size();
  offsets_.assign(terms + 1, 0);
  for (size_t t = 0; t < terms; ++t) offsets_[t + 1] = offsets_[t] + counts_[t];
  ResizeEntries(offsets_[terms]);
  for (size_t t = 0; t < terms; ++t) counts_[t] = offsets_[t];

  // Pass 2: accumulate member ψ values per entry, in member order — the
  // same addition sequence Cluster::Refresh replays into the
  // representative, so weights match it bit-for-bit. Ascending cluster
  // order means an existing entry for cluster p is always the last one
  // filled for its term.
  for (size_t p = 0; p < k_; ++p) {
    const uint32_t cluster = static_cast<uint32_t>(p);
    for (DocId id : clusters[p].members()) {
      const SimilarityContext::Row row = ctx.RowAt(ctx.SlotOf(id));
      for (size_t i = 0; i < row.size; ++i) {
        const uint32_t t = row.terms[i];
        const size_t cursor = counts_[t];
        if (cursor > offsets_[t] && clusters_[cursor - 1] == cluster &&
            refs_[cursor - 1] > 0) {
          refs_[cursor - 1] += 1;
          weights_[cursor - 1] += row.values[i];
        } else {
          clusters_[cursor] = cluster;
          refs_[cursor] = 1;
          weights_[cursor] = row.values[i];
          counts_[t] = cursor + 1;
        }
      }
    }
  }
}

void FlatRepIndex::BuildFromClustersParallel(
    const SimilarityContext& ctx, const std::vector<Cluster>& clusters,
    ThreadPool* pool) {
  // Phase A (parallel, one lane per cluster range): accumulate each
  // cluster's (term, refs, weight) list independently. Within one
  // (term, cluster) pair the member ψ values are added in member order —
  // the serial build's exact addition sequence — so phase B can lay the
  // accumulated triples out without any further arithmetic.
  struct PairAccum {
    uint32_t term;
    uint32_t refs;
    double weight;
  };
  const size_t terms = counts_.size();
  std::vector<std::vector<PairAccum>> per_cluster(k_);
  pool->ParallelFor(k_, /*grain=*/1, [&](size_t begin, size_t end) {
    // Chunk-local scratch: term → position in the current cluster's list,
    // tagged per cluster so clearing is O(1).
    std::vector<uint32_t> tag(terms, 0);
    std::vector<uint32_t> pos(terms, 0);
    for (size_t p = begin; p < end; ++p) {
      const uint32_t cluster_tag = static_cast<uint32_t>(p) + 1;
      std::vector<PairAccum>& list = per_cluster[p];
      for (DocId id : clusters[p].members()) {
        const SimilarityContext::Row row = ctx.RowAt(ctx.SlotOf(id));
        for (size_t i = 0; i < row.size; ++i) {
          const uint32_t t = row.terms[i];
          if (tag[t] == cluster_tag) {
            list[pos[t]].refs += 1;
            list[pos[t]].weight += row.values[i];
          } else {
            tag[t] = cluster_tag;
            pos[t] = static_cast<uint32_t>(list.size());
            list.push_back({t, 1, row.values[i]});
          }
        }
      }
    }
  });

  // Phase B (serial): count, prefix-sum, then fill in ascending cluster
  // order — reproducing the serial build's per-term entry order (ascending
  // cluster ids) and therefore a bit-identical CSR.
  for (size_t p = 0; p < k_; ++p) {
    for (const PairAccum& a : per_cluster[p]) ++counts_[a.term];
  }
  offsets_.assign(terms + 1, 0);
  for (size_t t = 0; t < terms; ++t) offsets_[t + 1] = offsets_[t] + counts_[t];
  ResizeEntries(offsets_[terms]);
  for (size_t t = 0; t < terms; ++t) counts_[t] = offsets_[t];
  for (size_t p = 0; p < k_; ++p) {
    const uint32_t cluster = static_cast<uint32_t>(p);
    for (const PairAccum& a : per_cluster[p]) {
      const size_t cursor = counts_[a.term]++;
      clusters_[cursor] = cluster;
      refs_[cursor] = a.refs;
      weights_[cursor] = a.weight;
    }
  }
}

void FlatRepIndex::BuildFromRepresentatives(
    const SimilarityContext& ctx, const std::vector<SparseVector>& reps) {
  k_ = reps.size();
  PrepareBuild(ctx);

  const size_t terms = counts_.size();
  for (size_t p = 0; p < k_; ++p) {
    for (const auto& e : reps[p].entries()) {
      if (e.value == 0.0) continue;
      const uint32_t t = ctx.LocalTerm(e.id);
      if (t == SimilarityContext::kNoLocalTerm) continue;
      ++counts_[t];
    }
  }
  offsets_.assign(terms + 1, 0);
  for (size_t t = 0; t < terms; ++t) offsets_[t + 1] = offsets_[t] + counts_[t];
  ResizeEntries(offsets_[terms]);
  for (size_t t = 0; t < terms; ++t) counts_[t] = offsets_[t];
  for (size_t p = 0; p < k_; ++p) {
    for (const auto& e : reps[p].entries()) {
      if (e.value == 0.0) continue;
      const uint32_t t = ctx.LocalTerm(e.id);
      if (t == SimilarityContext::kNoLocalTerm) continue;
      const size_t cursor = counts_[t]++;
      clusters_[cursor] = static_cast<uint32_t>(p);
      refs_[cursor] = 1;
      weights_[cursor] = e.value;
    }
  }
  QuantizeAll();
  stats_.live_entries = offsets_[terms];
}

bool FlatRepIndex::NeedsDeltaFallback(
    const SimilarityContext::Row& row) const {
  if (delta_.empty()) return false;
  for (size_t i = 0; i < row.size; ++i) {
    if (has_delta_[row.terms[i]]) return true;
  }
  return false;
}

// The pre-kernel scalar loop over base + overlay, with the per-term
// base-then-overlay interleaving the overlay semantics require. `home` is
// kernels::kNoHome for a plain (no detached cluster) scan. Returns posting
// entries touched.
uint64_t FlatRepIndex::ScoreAllDeltaFallback(const SimilarityContext::Row& row,
                                             uint32_t home,
                                             std::vector<double>* scores,
                                             double* home_attached) const {
  double attached = 0.0;
  uint64_t entries = 0;
  for (size_t i = 0; i < row.size; ++i) {
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    entries += offsets_[t + 1] - offsets_[t];
    for (size_t e = offsets_[t]; e < offsets_[t + 1]; ++e) {
      if (clusters_[e] == home) {
        // Detached home score: the posting weight the physical remove
        // would leave is fl(w − v); multiplying by v afterwards replays
        // the removed-then-rescored arithmetic exactly.
        attached += weights_[e] * v;
        (*scores)[home] += (weights_[e] - v) * v;
      } else {
        (*scores)[clusters_[e]] += weights_[e] * v;
      }
    }
    if (has_delta_[t]) {
      const std::vector<Entry>& overlay = delta_.at(t);
      entries += overlay.size();
      for (const Entry& entry : overlay) {
        if (entry.cluster == home) {
          attached += entry.weight * v;
          (*scores)[home] += (entry.weight - v) * v;
        } else {
          (*scores)[entry.cluster] += entry.weight * v;
        }
      }
    }
  }
  *home_attached = attached;
  return entries;
}

void FlatRepIndex::ScoreAll(const SimilarityContext& ctx,
                            SimilarityContext::Slot slot,
                            std::vector<double>* scores) const {
  NIDC_CHECK(built_) << "FlatRepIndex scored before a build";
  const SimilarityContext::Row row = ctx.RowAt(slot);
  double attached = 0.0;
  if (NeedsDeltaFallback(row)) {
    scores->assign(k_, 0.0);
    const uint64_t entries =
        ScoreAllDeltaFallback(row, kernels::kNoHome, scores, &attached);
    CountScan(&scan_stats_, entries, row.size, kExactEntryBytes);
    scan_stats_.delta_fallback_docs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  scores->resize(k_);  // the kernel zeroes every lane itself
  const kernels::ScoreKernel& kern = kernels::Active();
  const uint64_t entries =
      kern.score(View(), DocRowOf(row), kernels::kNoHome, scores->data(),
                 &attached);
  CountScan(&scan_stats_, entries, row.size, kExactEntryBytes);
}

void FlatRepIndex::ScoreAllDetached(const SimilarityContext& ctx,
                                    SimilarityContext::Slot slot, size_t home,
                                    std::vector<double>* scores,
                                    double* home_attached) const {
  NIDC_CHECK(built_) << "FlatRepIndex scored before a build";
  const SimilarityContext::Row row = ctx.RowAt(slot);
  const uint32_t home_cluster = static_cast<uint32_t>(home);
  if (NeedsDeltaFallback(row)) {
    scores->assign(k_, 0.0);
    const uint64_t entries =
        ScoreAllDeltaFallback(row, home_cluster, scores, home_attached);
    CountScan(&scan_stats_, entries, row.size, kExactEntryBytes);
    scan_stats_.delta_fallback_docs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  scores->resize(k_);  // the kernel zeroes every lane itself
  const kernels::ScoreKernel& kern = kernels::Active();
  const uint64_t entries = kern.score(View(), DocRowOf(row), home_cluster,
                                      scores->data(), home_attached);
  CountScan(&scan_stats_, entries, row.size, kExactEntryBytes);
}

bool FlatRepIndex::ScoreAllQuantized(const SimilarityContext& ctx,
                                     SimilarityContext::Slot slot, int home,
                                     std::vector<float>* scores_f32,
                                     std::vector<float>* abs_f32,
                                     double* home_attached,
                                     double* home_detached) const {
  NIDC_CHECK(built_) << "FlatRepIndex scored before a build";
  const SimilarityContext::Row row = ctx.RowAt(slot);
  scores_f32->resize(k_);  // the kernel zeroes every lane itself
  abs_f32->resize(k_);
  const uint32_t home_cluster =
      home < 0 ? kernels::kNoHome : static_cast<uint32_t>(home);
  const kernels::ScoreKernel& kern = kernels::Active();
  uint64_t entries = kern.score_quantized(
      View(), DocRowOf(row), home_cluster, scores_f32->data(),
      abs_f32->data(), home_attached, home_detached);
  // Overlay entries (mid-sweep moves) carry no fp16 shadow; fold them in
  // fp32 after the base scan. Base and overlay are disjoint per
  // (term, cluster) pair, so every accumulator still sees at most one
  // contribution per row term and the certified margin's R-term summation
  // bound — which holds for any fp32 accumulation order — stays sound.
  // Overlay weights are exact fp64, so their conversion error is strictly
  // below the fp16 allowance already in the margin. Only a home-cluster
  // overlay entry forces the exact path: it would have to enter the exact
  // fp64 side-channel mid-sequence to reproduce the legacy interleaved
  // accumulation order bit-for-bit.
  if (!delta_.empty()) {
    float* scores = scores_f32->data();
    float* abs_sums = abs_f32->data();
    for (size_t i = 0; i < row.size; ++i) {
      const uint32_t t = row.terms[i];
      if (!has_delta_[t]) continue;
      const float vf = static_cast<float>(row.values[i]);
      const std::vector<Entry>& overlay = delta_.at(t);
      entries += overlay.size();
      for (const Entry& entry : overlay) {
        if (entry.cluster == home_cluster) return false;
        const float p = static_cast<float>(entry.weight) * vf;
        scores[entry.cluster] += p;
        abs_sums[entry.cluster] += std::fabs(p);
      }
    }
  }
  CountScan(&scan_stats_, entries, row.size, kQuantizedEntryBytes);
  scan_stats_.quantized_docs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t FlatRepIndex::FindBase(uint32_t local_term, size_t p) const {
  const uint32_t cluster = static_cast<uint32_t>(p);
  for (size_t e = offsets_[local_term]; e < offsets_[local_term + 1]; ++e) {
    if (clusters_[e] == cluster) return e;
  }
  return kNoEntry;
}

FlatRepIndex::Entry* FlatRepIndex::FindDelta(uint32_t local_term, size_t p) {
  if (!has_delta_[local_term]) return nullptr;
  const uint32_t cluster = static_cast<uint32_t>(p);
  for (Entry& entry : delta_[local_term]) {
    if (entry.cluster == cluster) return &entry;
  }
  return nullptr;
}

void FlatRepIndex::ApplyRemove(const SimilarityContext& ctx,
                               SimilarityContext::Slot slot, size_t p) {
  if (!built_) return;
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  ++stats_.moves_applied;
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    if (row.values[i] == 0.0) continue;
    const uint32_t t = row.terms[i];
    const size_t e = FindBase(t, p);
    if (e != kNoEntry) {
      NIDC_CHECK(refs_[e] > 0)
          << "removing term " << ctx.GlobalTerm(t) << " never added to "
          << "cluster " << p;
      weights_[e] -= row.values[i];
      if (--refs_[e] == 0) {
        // Last contributor gone: snap the residual to exact zero (the
        // posting-side analogue of Cluster::Clear) and tombstone.
        weights_[e] = 0.0;
        qweights_[e] = 0;
        --stats_.live_entries;
        ++stats_.dead_entries;
        ++stats_.tombstones_created;
      } else {
        qweights_[e] = kernels::HalfFromDouble(weights_[e]);
      }
      continue;
    }
    Entry* entry = FindDelta(t, p);
    NIDC_CHECK(entry != nullptr && entry->refs > 0)
        << "removing term " << ctx.GlobalTerm(t) << " never added to "
        << "cluster " << p;
    entry->weight -= row.values[i];
    if (--entry->refs == 0) {
      entry->weight = 0.0;
      --stats_.live_entries;
      ++stats_.dead_entries;
      ++stats_.tombstones_created;
    }
  }
}

void FlatRepIndex::ApplyAdd(const SimilarityContext& ctx,
                            SimilarityContext::Slot slot, size_t p) {
  if (!built_) return;
  NIDC_CHECK(p < k_) << "cluster " << p << " out of range (K = " << k_ << ")";
  ++stats_.moves_applied;
  const SimilarityContext::Row row = ctx.RowAt(slot);
  for (size_t i = 0; i < row.size; ++i) {
    if (row.values[i] == 0.0) continue;
    const uint32_t t = row.terms[i];
    const size_t e = FindBase(t, p);
    if (e != kNoEntry) {
      if (refs_[e] == 0) {
        --stats_.dead_entries;
        ++stats_.live_entries;
        ++stats_.tombstones_revived;
      }
      ++refs_[e];
      weights_[e] += row.values[i];
      qweights_[e] = kernels::HalfFromDouble(weights_[e]);
      continue;
    }
    Entry* entry = FindDelta(t, p);
    if (entry == nullptr) {
      // First (term, cluster) pairing since the last rebuild — the base
      // CSR cannot grow in place, so the pair lives in the overlay until
      // the next RefreshAll folds it into the base.
      has_delta_[t] = 1;
      delta_[t].push_back({static_cast<uint32_t>(p), 1, row.values[i]});
      ++stats_.delta_entries_added;
      ++stats_.live_entries;
      continue;
    }
    if (entry->refs == 0) {
      --stats_.dead_entries;
      ++stats_.live_entries;
      ++stats_.tombstones_revived;
    }
    ++entry->refs;
    entry->weight += row.values[i];
  }
}

std::vector<std::pair<size_t, double>> FlatRepIndex::PostingsOf(
    const SimilarityContext& ctx, TermId term) const {
  std::vector<std::pair<size_t, double>> out;
  const uint32_t t = ctx.LocalTerm(term);
  if (!built_ || t == SimilarityContext::kNoLocalTerm) return out;
  for (size_t e = offsets_[t]; e < offsets_[t + 1]; ++e) {
    if (refs_[e] > 0) out.emplace_back(clusters_[e], weights_[e]);
  }
  if (has_delta_[t]) {
    for (const Entry& entry : delta_.at(t)) {
      if (entry.refs > 0) out.emplace_back(entry.cluster, entry.weight);
    }
  }
  return out;
}

}  // namespace nidc
