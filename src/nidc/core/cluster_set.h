// A fixed-K collection of clusters plus the document→cluster assignment map.

#ifndef NIDC_CORE_CLUSTER_SET_H_
#define NIDC_CORE_CLUSTER_SET_H_

#include <unordered_map>
#include <vector>

#include "nidc/core/cluster.h"
#include "nidc/core/rep_index.h"

namespace nidc {

/// Cluster index within a ClusterSet; kUnassigned for outliers/unseen docs.
inline constexpr int kUnassigned = -1;

/// Owns K clusters and keeps the assignment map consistent with their
/// membership. With the rep index enabled, a term → (cluster, weight)
/// posting structure additionally mirrors the K representative vectors and
/// is kept in sync by Assign/RefreshAll, so ScoreAllClusters can evaluate
/// cr_sim(C_p, {d}) for every cluster in one pass over ψ_d.
class ClusterSet {
 public:
  explicit ClusterSet(size_t k, bool use_rep_index = false)
      : clusters_(k), rep_index_(use_rep_index ? k : 0),
        rep_index_enabled_(use_rep_index) {}

  size_t num_clusters() const { return clusters_.size(); }
  Cluster& cluster(size_t p) { return clusters_[p]; }
  const Cluster& cluster(size_t p) const { return clusters_[p]; }

  /// Cluster index of `id`, or kUnassigned.
  int ClusterOf(DocId id) const {
    auto it = assignment_.find(id);
    return it == assignment_.end() ? kUnassigned : it->second;
  }

  /// Moves `id` into cluster `p` (removing it from its current cluster
  /// first, if any). `p` may be kUnassigned to just detach the document.
  void Assign(DocId id, int p, const SimilarityContext& ctx);

  /// Recomputes every cluster's cached statistics (and the rep index, when
  /// enabled) from its members.
  void RefreshAll(const SimilarityContext& ctx);

  /// Clustering index G = Σ_p |C_p| · avg_sim(C_p) (Eq. 17).
  double G() const;

  /// Total number of assigned documents.
  size_t TotalAssigned() const;

  bool rep_index_enabled() const { return rep_index_enabled_; }

  /// The posting index (meaningful only when enabled), e.g. for its
  /// maintenance stats().
  const ClusterRepIndex& rep_index() const { return rep_index_; }

  /// Document-at-a-time scoring (requires the rep index): fills scores[p]
  /// with c⃗_p · psi for all K clusters in one posting scan.
  void ScoreAllClusters(const SparseVector& psi,
                        std::vector<double>* scores) const {
    rep_index_.ScoreAll(psi, scores);
  }

 private:
  std::vector<Cluster> clusters_;
  std::unordered_map<DocId, int> assignment_;
  ClusterRepIndex rep_index_;
  bool rep_index_enabled_ = false;
};

}  // namespace nidc

#endif  // NIDC_CORE_CLUSTER_SET_H_
