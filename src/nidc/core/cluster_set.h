// A fixed-K collection of clusters plus the document→cluster assignment map.

#ifndef NIDC_CORE_CLUSTER_SET_H_
#define NIDC_CORE_CLUSTER_SET_H_

#include <vector>

#include "nidc/core/cluster.h"
#include "nidc/core/rep_index.h"

namespace nidc {

/// Cluster index within a ClusterSet; kUnassigned for outliers/unseen docs.
inline constexpr int kUnassigned = -1;

/// How SweepAssign evaluates the cross terms cr_sim(C_p, {d}).
enum class ClusterScoring {
  /// K independent sparse dot products per document (the reference path).
  kMerge,
  /// Document-at-a-time scan of the hash-map posting index, with physical
  /// detach/re-attach per document (the PR-1 path, kept as a comparison
  /// point).
  kIndexed,
  /// Document-at-a-time scan of the flat CSR posting index with move-only
  /// maintenance: documents are scored attached, the detached home
  /// statistics are derived algebraically, and postings/caches change only
  /// on actual moves. Default.
  kSlotted,
};

/// Owns K clusters and keeps the assignment map consistent with their
/// membership. With kIndexed scoring, a term → (cluster, weight) posting
/// structure additionally mirrors the K representative vectors and is kept
/// in sync by Assign/RefreshAll, so ScoreAllClusters can evaluate
/// cr_sim(C_p, {d}) for every cluster in one pass over ψ_d. With kSlotted,
/// the same role is played by a flat CSR index over the context's dense
/// local term ids (see FlatRepIndex).
class ClusterSet {
 public:
  ClusterSet(size_t k, ClusterScoring scoring)
      : clusters_(k),
        rep_index_(scoring == ClusterScoring::kIndexed ? k : 0),
        scoring_(scoring) {}

  explicit ClusterSet(size_t k, bool use_rep_index = false)
      : ClusterSet(k, use_rep_index ? ClusterScoring::kIndexed
                                    : ClusterScoring::kMerge) {}

  size_t num_clusters() const { return clusters_.size(); }
  Cluster& cluster(size_t p) { return clusters_[p]; }
  const Cluster& cluster(size_t p) const { return clusters_[p]; }

  /// Cluster index of `id`, or kUnassigned — a flat array lookup (DocIds
  /// are dense corpus indices).
  int ClusterOf(DocId id) const {
    return id < assignment_.size() ? assignment_[id] : kUnassigned;
  }

  /// Moves `id` into cluster `p` (removing it from its current cluster
  /// first, if any). `p` may be kUnassigned to just detach the document.
  /// Populating an empty cluster mints it a fresh stable id unless the
  /// arriving document is the one whose departure emptied it (a
  /// detach/re-attach round trip keeps the identity).
  void Assign(DocId id, int p, const SimilarityContext& ctx);

  /// Installs stable cluster ids after the seeding phase: cluster `p`
  /// inherits `seed_ids[p]` when available, every other cluster gets a
  /// fresh id. The fresh-id counter starts at the larger of
  /// `first_fresh_id` and max(seed_ids)+1, so ids stay globally monotone
  /// across incremental steps. Returns the count of fresh ids handed out.
  size_t InstallIds(const std::vector<uint64_t>& seed_ids,
                    uint64_t first_fresh_id);

  /// Stable id of cluster `p` (Cluster::kNoClusterId before any
  /// population).
  uint64_t cluster_id(size_t p) const { return clusters_[p].id(); }

  /// All K stable ids, index-aligned with the clusters.
  std::vector<uint64_t> cluster_ids() const;

  /// The next fresh id the set would mint — the value a driver persists
  /// to keep ids monotone across RunExtendedKMeans calls.
  uint64_t next_cluster_id() const { return next_id_; }

  /// Replays the detach + immediate re-attach of a document that stays in
  /// cluster `p` during a move-only sweep: the cluster's scalar caches and
  /// member order take the exact rounding/permutation steps the legacy
  /// sweep applies, while the representative vector and the posting index
  /// — for which remove-then-re-add is the identity — stay untouched.
  void ReplayStay(DocId id, size_t p, double t_attached, double t_detached,
                  const SimilarityContext& ctx);

  /// Recomputes every cluster's cached statistics (and the posting index,
  /// when scoring through one) from its members. With a pool of >= 2
  /// threads, the per-cluster refreshes and the CSR rebuild's accumulation
  /// phase run sharded across it; results are bit-identical to the serial
  /// path for any thread count (clusters are independent, and the CSR fill
  /// order is reproduced exactly).
  void RefreshAll(const SimilarityContext& ctx, ThreadPool* pool = nullptr);

  /// Clustering index G = Σ_p |C_p| · avg_sim(C_p) (Eq. 17).
  double G() const;

  /// Total number of assigned documents.
  size_t TotalAssigned() const { return total_assigned_; }

  ClusterScoring scoring() const { return scoring_; }
  bool rep_index_enabled() const {
    return scoring_ == ClusterScoring::kIndexed;
  }

  /// The hash posting index (meaningful only with kIndexed), e.g. for its
  /// maintenance stats().
  const ClusterRepIndex& rep_index() const { return rep_index_; }

  /// The flat CSR posting index (meaningful only with kSlotted).
  const FlatRepIndex& flat_index() const { return flat_index_; }

  /// Document-at-a-time scoring (requires kIndexed): fills scores[p]
  /// with c⃗_p · psi for all K clusters in one posting scan.
  void ScoreAllClusters(const SparseVector& psi,
                        std::vector<double>* scores) const {
    rep_index_.ScoreAll(psi, scores);
  }

 private:
  std::vector<Cluster> clusters_;
  std::vector<int> assignment_;  // DocId → cluster, kUnassigned gaps
  size_t total_assigned_ = 0;
  uint64_t next_id_ = 0;  // next fresh stable cluster id
  ClusterRepIndex rep_index_;
  FlatRepIndex flat_index_;
  ClusterScoring scoring_ = ClusterScoring::kMerge;
};

}  // namespace nidc

#endif  // NIDC_CORE_CLUSTER_SET_H_
