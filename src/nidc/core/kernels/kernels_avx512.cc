// AVX-512 scoring kernels. Compiled with -mavx512f and reached only
// through the runtime dispatch table (kernels.cc); everything here stays
// inside the AVX512F foundation set (no BW/VL/DQ dependencies).
//
// Exact fp64 kernel: 8 postings per iteration, masked vgatherdpd /
// vscatterdpd against the fp64 score table. Within one term the posting
// cluster ids are distinct, so gather-add-scatter inside a chunk never
// collides, and each score accumulator still sees its additions in the
// same term order as the scalar kernel — products are separate mul + add
// (no FMA contraction), so the result is bit-identical.
//
// Quantized kernel: 16 postings per iteration over the fp16 shadow
// weights. For K <= 16 the per-cluster fp32 accumulators live entirely in
// two zmm registers: the sorted-distinct cluster ids of a chunk become a
// bitmask (sllv + reduce-or) and vexpandps distributes the products into
// their cluster lanes — the hot loop does no score loads or stores at
// all. Larger K falls back to masked fp32 gather/scatter.

#include "nidc/core/kernels/kernels.h"

#if defined(NIDC_HAVE_KERNEL_AVX512)

#include <immintrin.h>

namespace nidc::kernels {

namespace {

inline void PrefetchTermExact(const PostingsView& view, const DocRow& row,
                              size_t i) {
  if (i + 2 < row.size) {
    const size_t off = view.offsets[row.terms[i + 2]];
    _mm_prefetch(reinterpret_cast<const char*>(view.clusters + off),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(view.weights + off),
                 _MM_HINT_T0);
  }
}

inline void PrefetchTermQuantized(const PostingsView& view, const DocRow& row,
                                  size_t i) {
  if (i + 2 < row.size) {
    const size_t off = view.offsets[row.terms[i + 2]];
    _mm_prefetch(reinterpret_cast<const char*>(view.clusters + off),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(view.qweights + off),
                 _MM_HINT_T0);
  }
}

// Quantized path for K <= 16: all per-cluster accumulators in registers.
uint64_t ScoreQuantizedRegister(const PostingsView& view, const DocRow& row,
                                uint32_t home, float* scores_f32,
                                float* abs_f32, double* home_attached,
                                double* home_detached) {
  const __m512i kOnes = _mm512_set1_epi32(1);
  const __m512i kAbsMask = _mm512_set1_epi32(0x7fffffff);
  const __m512i home_v = _mm512_set1_epi32(static_cast<int>(home));
  __m512 acc_scores = _mm512_setzero_ps();
  __m512 acc_abs = _mm512_setzero_ps();
  double attached = 0.0;
  double detached = 0.0;
  uint64_t entries = 0;
  for (size_t i = 0; i < row.size; ++i) {
    PrefetchTermQuantized(view, row, i);
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const size_t begin = view.offsets[t];
    const size_t n = view.offsets[t + 1] - begin;
    if (n == 0) continue;  // K <= 16, so n <= 16: one chunk per term
    entries += n;
    const __mmask16 m =
        static_cast<__mmask16>((uint32_t{1} << n) - 1u);  // n <= 16
    // Padded SoA arrays make the full-width loads safe on the tail.
    const __m512i ids = _mm512_loadu_si512(view.clusters + begin);
    const __m256i halfs = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(view.qweights + begin));
    const __m512 wq = _mm512_cvtph_ps(halfs);
    const __m512 vvf = _mm512_set1_ps(static_cast<float>(v));
    const __m512 prod = _mm512_maskz_mul_ps(m, wq, vvf);
    const __m512 absp = _mm512_castsi512_ps(
        _mm512_and_si512(_mm512_castps_si512(prod), kAbsMask));
    // Sorted distinct ids -> set bits of `cb` in the same order the chunk's
    // products sit in the low lanes, so vexpandps routes product j straight
    // to cluster lane ids[j].
    const __m512i bits = _mm512_maskz_sllv_epi32(m, kOnes, ids);
    const __mmask16 cb =
        static_cast<__mmask16>(_mm512_reduce_or_epi32(bits));
    acc_scores = _mm512_add_ps(acc_scores, _mm512_maskz_expand_ps(cb, prod));
    acc_abs = _mm512_add_ps(acc_abs, _mm512_maskz_expand_ps(cb, absp));
    if (home != kNoHome) {
      const __mmask16 kh = _mm512_mask_cmpeq_epi32_mask(m, ids, home_v);
      if (kh != 0) {
        // Exact fp64 side-channel for the home cluster (<= 1 entry/term).
        const size_t e = begin + static_cast<size_t>(__builtin_ctz(kh));
        const double hw = view.weights[e];
        attached += hw * v;
        detached += (hw - v) * v;
      }
    }
  }
  const __mmask16 out_mask = static_cast<__mmask16>(
      (uint32_t{1} << view.num_clusters) - 1u);  // num_clusters <= 16
  _mm512_mask_storeu_ps(scores_f32, out_mask, acc_scores);
  _mm512_mask_storeu_ps(abs_f32, out_mask, acc_abs);
  *home_attached = attached;
  *home_detached = detached;
  return entries;
}

}  // namespace

uint64_t ScoreAvx512(const PostingsView& view, const DocRow& row,
                     uint32_t home, double* scores, double* home_attached) {
  const size_t k = view.num_clusters;
  for (size_t p = 0; p < k; ++p) scores[p] = 0.0;
  double attached = 0.0;
  uint64_t entries = 0;
  const __m512i home64 =
      _mm512_set1_epi64(static_cast<long long>(static_cast<uint64_t>(home)));
  for (size_t i = 0; i < row.size; ++i) {
    PrefetchTermExact(view, row, i);
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    const __m512d vv = _mm512_set1_pd(v);
    for (size_t e = begin; e < end; e += 8) {
      const size_t rem = end - e < 8 ? end - e : 8;
      const __mmask8 m = static_cast<__mmask8>(0xffu >> (8 - rem));
      const __m256i ids = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.clusters + e));
      const __m512d w = _mm512_loadu_pd(view.weights + e);
      __m512d prod = _mm512_mul_pd(w, vv);
      if (home != kNoHome) {
        const __m512i ids64 = _mm512_cvtepu32_epi64(ids);
        const __mmask8 kh = _mm512_mask_cmpeq_epi64_mask(m, ids64, home64);
        if (kh != 0) {
          // Detached home lane: same sub-then-mul expression as the scalar
          // kernel, and the attached cross term recomputed in scalar fp64.
          const __m512d prod_home =
              _mm512_mul_pd(_mm512_sub_pd(w, vv), vv);
          prod = _mm512_mask_mov_pd(prod, kh, prod_home);
          const size_t he = e + static_cast<size_t>(__builtin_ctz(kh));
          attached += view.weights[he] * v;
        }
      }
      // Distinct ids within a term: no lane collisions inside the chunk.
      const __m512d old = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m,
                                                   ids, scores, 8);
      _mm512_mask_i32scatter_pd(scores, m, ids, _mm512_add_pd(old, prod), 8);
    }
  }
  *home_attached = attached;
  return entries;
}

uint64_t ScoreQuantizedAvx512(const PostingsView& view, const DocRow& row,
                              uint32_t home, float* scores_f32, float* abs_f32,
                              double* home_attached, double* home_detached) {
  const size_t k = view.num_clusters;
  if (k <= 16) {
    return ScoreQuantizedRegister(view, row, home, scores_f32, abs_f32,
                                  home_attached, home_detached);
  }
  for (size_t p = 0; p < k; ++p) {
    scores_f32[p] = 0.0f;
    abs_f32[p] = 0.0f;
  }
  const __m512i kAbsMask = _mm512_set1_epi32(0x7fffffff);
  const __m512i home_v = _mm512_set1_epi32(static_cast<int>(home));
  double attached = 0.0;
  double detached = 0.0;
  uint64_t entries = 0;
  for (size_t i = 0; i < row.size; ++i) {
    PrefetchTermQuantized(view, row, i);
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    const __m512 vvf = _mm512_set1_ps(static_cast<float>(v));
    for (size_t e = begin; e < end; e += 16) {
      const size_t rem = end - e < 16 ? end - e : 16;
      const __mmask16 m = static_cast<__mmask16>(0xffffu >> (16 - rem));
      const __m512i ids = _mm512_loadu_si512(view.clusters + e);
      const __m256i halfs = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.qweights + e));
      const __m512 wq = _mm512_cvtph_ps(halfs);
      const __m512 prod = _mm512_maskz_mul_ps(m, wq, vvf);
      const __m512 absp = _mm512_castsi512_ps(
          _mm512_and_si512(_mm512_castps_si512(prod), kAbsMask));
      // Distinct ids within a term: gather-add-scatter cannot collide.
      const __m512 olds = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), m,
                                                   ids, scores_f32, 4);
      _mm512_mask_i32scatter_ps(scores_f32, m, ids, _mm512_add_ps(olds, prod),
                                4);
      const __m512 olda = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), m,
                                                   ids, abs_f32, 4);
      _mm512_mask_i32scatter_ps(abs_f32, m, ids, _mm512_add_ps(olda, absp),
                                4);
      if (home != kNoHome) {
        const __mmask16 kh = _mm512_mask_cmpeq_epi32_mask(m, ids, home_v);
        if (kh != 0) {
          const size_t he = e + static_cast<size_t>(__builtin_ctz(kh));
          const double hw = view.weights[he];
          attached += hw * v;
          detached += (hw - v) * v;
        }
      }
    }
  }
  *home_attached = attached;
  *home_detached = detached;
  return entries;
}

}  // namespace nidc::kernels

#endif  // NIDC_HAVE_KERNEL_AVX512
