#include "nidc/core/kernels/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "nidc/util/cpuid.h"
#include "nidc/util/logging.h"

namespace nidc::kernels {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the historical FlatRepIndex loops
// moved verbatim: every SIMD kernel is verified (and the quantized margins
// are certified) against the decisions this code produces.
// ---------------------------------------------------------------------------

namespace {

uint64_t ScoreScalar(const PostingsView& view, const DocRow& row,
                     uint32_t home, double* scores, double* home_attached) {
  const size_t k = view.num_clusters;
  for (size_t p = 0; p < k; ++p) scores[p] = 0.0;
  double attached = 0.0;
  uint64_t entries = 0;
  for (size_t i = 0; i < row.size; ++i) {
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    for (size_t e = begin; e < end; ++e) {
      const uint32_t c = view.clusters[e];
      const double w = view.weights[e];
      if (c == home) {
        // Detached home score: the posting weight a physical remove would
        // leave is fl(w − v); multiplying by v afterwards replays the
        // removed-then-rescored arithmetic exactly.
        attached += w * v;
        scores[c] += (w - v) * v;
      } else {
        scores[c] += w * v;
      }
    }
  }
  *home_attached = attached;
  return entries;
}

uint64_t ScoreQuantizedScalar(const PostingsView& view, const DocRow& row,
                              uint32_t home, float* scores_f32,
                              float* abs_f32, double* home_attached,
                              double* home_detached) {
  const size_t k = view.num_clusters;
  for (size_t p = 0; p < k; ++p) {
    scores_f32[p] = 0.0f;
    abs_f32[p] = 0.0f;
  }
  double attached = 0.0;
  double detached = 0.0;
  uint64_t entries = 0;
  for (size_t i = 0; i < row.size; ++i) {
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const float vf = static_cast<float>(v);
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    for (size_t e = begin; e < end; ++e) {
      const uint32_t c = view.clusters[e];
      if (c == home) {
        // Exact fp64 side-channel for the home cluster — at most one entry
        // per term, accumulated in term order like the exact kernel.
        const double w = view.weights[e];
        attached += w * v;
        detached += (w - v) * v;
      }
      const float p = HalfToFloat(view.qweights[e]) * vf;
      scores_f32[c] += p;
      abs_f32[c] += std::fabs(p);
    }
  }
  *home_attached = attached;
  *home_detached = detached;
  return entries;
}

}  // namespace

// ---------------------------------------------------------------------------
// fp16 conversions (software, round-to-nearest-even).
// ---------------------------------------------------------------------------

uint16_t HalfFromDouble(double value) {
  // Convert through fp32 first (correctly rounded by the hardware). The
  // double rounding through fp32 can differ from a direct fp64→fp16
  // rounding by at most one fp16 ulp in half-way cases — well inside the
  // quantization error margin the sweep certifies against.
  float f = static_cast<float>(value);
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN
    return static_cast<uint16_t>(sign | 0x7c00u | (abs > 0x7f800000u ? 0x200u : 0u));
  }
  if (abs >= 0x477ff000u) {  // rounds to >= 2^16: overflow to inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {  // subnormal fp16 (|x| < 2^-14)
    if (abs < 0x33000000u) return static_cast<uint16_t>(sign);  // underflow
    // The fp16 subnormal value is mant16 · 2^-24; the fp32 significand
    // (24 bits, implicit 1) represents |x| = mant · 2^(e − 23) with
    // e = (abs >> 23) − 127, so mant16 = mant >> (126 − (abs >> 23)).
    const int shift = 126 - static_cast<int>(abs >> 23);  // 14..24 bits out
    const uint64_t mant = static_cast<uint64_t>((abs & 0x7fffffu) | 0x800000u);
    // Round-to-nearest-even on the bits shifted out.
    const uint64_t shifted = mant >> shift;
    const uint64_t rest = mant & ((uint64_t{1} << shift) - 1u);
    const uint64_t half = uint64_t{1} << (shift - 1);
    uint64_t out = shifted;
    if (rest > half || (rest == half && (shifted & 1u))) ++out;
    return static_cast<uint16_t>(sign | static_cast<uint32_t>(out));
  }
  // Normal range: rebias exponent, round mantissa to 10 bits.
  uint32_t out = ((abs >> 13) & 0x3ffu) | ((((abs >> 23) - 112u) & 0x1fu) << 10);
  const uint32_t rest = abs & 0x1fffu;
  if (rest > 0x1000u || (rest == 0x1000u && (out & 1u))) ++out;
  return static_cast<uint16_t>(sign | out);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1fu;
  const uint32_t mant = half & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal: normalize into fp32.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | ((113u - static_cast<uint32_t>(e) - 1u) << 23) |
             ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

// Defined in kernels_avx2.cc / kernels_avx512.cc when the toolchain can
// target the ISA; weak-less portable alternative: the build defines
// NIDC_HAVE_KERNEL_AVX2/512 and we declare conditionally.
#if defined(NIDC_HAVE_KERNEL_AVX2)
uint64_t ScoreAvx2(const PostingsView&, const DocRow&, uint32_t, double*,
                   double*);
uint64_t ScoreQuantizedAvx2(const PostingsView&, const DocRow&, uint32_t,
                            float*, float*, double*, double*);
#endif
#if defined(NIDC_HAVE_KERNEL_AVX512)
uint64_t ScoreAvx512(const PostingsView&, const DocRow&, uint32_t, double*,
                     double*);
uint64_t ScoreQuantizedAvx512(const PostingsView&, const DocRow&, uint32_t,
                              float*, float*, double*, double*);
#endif

namespace {

constexpr ScoreKernel kScalarKernel = {"scalar", Kind::kScalar, ScoreScalar,
                                       ScoreQuantizedScalar};
#if defined(NIDC_HAVE_KERNEL_AVX2)
constexpr ScoreKernel kAvx2Kernel = {"avx2", Kind::kAvx2, ScoreAvx2,
                                     ScoreQuantizedAvx2};
#endif
#if defined(NIDC_HAVE_KERNEL_AVX512)
constexpr ScoreKernel kAvx512Kernel = {"avx512", Kind::kAvx512, ScoreAvx512,
                                       ScoreQuantizedAvx512};
#endif

const ScoreKernel* KernelFor(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return &kScalarKernel;
    case Kind::kAvx2:
#if defined(NIDC_HAVE_KERNEL_AVX2)
      return &kAvx2Kernel;
#else
      return nullptr;
#endif
    case Kind::kAvx512:
#if defined(NIDC_HAVE_KERNEL_AVX512)
      return &kAvx512Kernel;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const ScoreKernel* g_active = nullptr;
std::once_flag g_init_once;

Kind BestAvailable() {
  if (Available(Kind::kAvx512)) return Kind::kAvx512;
  if (Available(Kind::kAvx2)) return Kind::kAvx2;
  return Kind::kScalar;
}

void InitFromEnv() {
  const char* env = std::getenv("NIDC_KERNEL");
  Kind kind = BestAvailable();
  if (env != nullptr && env[0] != '\0') {
    Kind requested;
    NIDC_CHECK(ParseKind(env, &requested))
        << "NIDC_KERNEL='" << env << "' is not scalar|avx2|avx512";
    NIDC_CHECK(Available(requested))
        << "NIDC_KERNEL=" << env << " requested but the CPU (or this "
        << "build) does not support it";
    kind = requested;
  }
  g_active = KernelFor(kind);
}

}  // namespace

bool Available(Kind kind) {
  if (KernelFor(kind) == nullptr) return false;
  switch (kind) {
    case Kind::kScalar:
      return true;
    case Kind::kAvx2:
      return CpuSupportsAvx2();
    case Kind::kAvx512:
      return CpuSupportsAvx512();
  }
  return false;
}

const ScoreKernel& Active() {
  std::call_once(g_init_once, InitFromEnv);
  return *g_active;
}

void Select(Kind kind) {
  std::call_once(g_init_once, InitFromEnv);
  NIDC_CHECK(Available(kind))
      << "kernel '" << KindName(kind) << "' is not available on this CPU";
  g_active = KernelFor(kind);
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseKind(const char* name, Kind* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = Kind::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = Kind::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = Kind::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace nidc::kernels
