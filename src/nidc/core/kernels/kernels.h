// Vectorized scoring kernels for the slotted (CSR) sweep hot path.
//
// The extended K-means inner loop is a document-at-a-time posting scan:
// for every term of a document's ψ row, walk that term's (cluster, weight)
// posting list and accumulate scores[cluster] += weight · value — plus,
// for the document's home cluster, the detached variant
// (weight − value) · value and the attached cross term weight · value
// (see FlatRepIndex::ScoreAllDetached). This file isolates exactly that
// loop behind a runtime-dispatched function-pointer table with three
// implementations:
//
//   scalar   portable reference — bit-for-bit the historical loop
//   avx2     256-bit lanes + F16C fp16 loads, software-prefetched rows
//   avx512   512-bit masked lanes; for K <= 16 the score accumulators
//            live entirely in registers (mask-expand instead of
//            gather/scatter)
//
// The active kernel is chosen at startup from CPUID (best available) and
// can be overridden with NIDC_KERNEL=scalar|avx2|avx512 for testing, or
// programmatically via Select(). Every kernel produces *bit-identical*
// exact scores: within one term the posting clusters are distinct, so
// reordering the per-term lane arithmetic never reorders any single
// accumulator's addition sequence, and products are kept as separate
// mul + add (never FMA-contracted).
//
// The quantized pass scores in fp32 arithmetic over an fp16 shadow copy of
// the posting weights (6 bytes touched per entry instead of 12) and
// additionally accumulates per-cluster absolute sums, from which the sweep
// derives a rigorous error margin; candidates inside the margin are
// re-checked exactly (see extended_kmeans.cc), so clustering decisions
// stay bit-identical to the exact path.

#ifndef NIDC_CORE_KERNELS_KERNELS_H_
#define NIDC_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace nidc::kernels {

/// Kernel implementations, in increasing ISA order.
enum class Kind { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Loads beyond a posting list's logical end must stay in-bounds: the
/// SIMD kernels read full vectors and mask in-register, so the SoA arrays
/// they scan carry this many zeroed slots of padding after the last entry.
inline constexpr size_t kPostingPadding = 16;

/// Read-only SoA view of a flat CSR posting index (see FlatRepIndex).
/// Posting entries of one term are sorted by ascending cluster id; the
/// clusters / weights / qweights arrays are padded with kPostingPadding
/// zeroed slots past offsets[num_terms].
struct PostingsView {
  const size_t* offsets = nullptr;     // num_terms + 1 entries
  const uint32_t* clusters = nullptr;  // entry cluster ids
  const double* weights = nullptr;     // exact fp64 weights
  const uint16_t* qweights = nullptr;  // fp16 shadow (null: quantization off)
  size_t num_terms = 0;
  size_t num_clusters = 0;
};

/// One document's ψ as local-term/value arrays (SimilarityContext::Row).
struct DocRow {
  const uint32_t* terms = nullptr;
  const double* values = nullptr;
  size_t size = 0;
};

/// `home` value meaning "score every cluster attached" (document has no
/// home cluster). Never collides with a real cluster id.
inline constexpr uint32_t kNoHome = UINT32_MAX;

/// Exact fp64 document-at-a-time scan. `scores` (size num_clusters) is
/// zeroed by the kernel, then accumulates scores[c] += w·v in term-major
/// order; entries of cluster `home` instead accumulate (w−v)·v into
/// scores[home] and w·v into *home_attached (zeroed by the kernel) — the
/// detachment identity of the move-only sweep. Returns posting entries
/// touched (for bytes accounting).
using ScoreFn = uint64_t (*)(const PostingsView& view, const DocRow& row,
                             uint32_t home, double* scores,
                             double* home_attached);

/// Quantized scan: fp32 products of fp16 posting weights and fp32-converted
/// row values. scores_f32[c] accumulates the products, abs_f32[c] their
/// absolute values (both size num_clusters, zeroed by the kernel). Entries
/// of cluster `home` additionally take the *exact* fp64 side-channel:
/// *home_attached += w·v and *home_detached += (w−v)·v, bit-identical to
/// the exact kernel's home lane. Requires view.qweights != null. Returns
/// posting entries touched.
using ScoreQuantizedFn = uint64_t (*)(const PostingsView& view,
                                      const DocRow& row, uint32_t home,
                                      float* scores_f32, float* abs_f32,
                                      double* home_attached,
                                      double* home_detached);

/// One dispatch-table row.
struct ScoreKernel {
  const char* name = "scalar";
  Kind kind = Kind::kScalar;
  ScoreFn score = nullptr;
  ScoreQuantizedFn score_quantized = nullptr;
};

/// The active kernel. First call resolves NIDC_KERNEL (scalar|avx2|avx512;
/// fatal when the requested ISA is not supported by the running CPU), or
/// picks the best supported implementation when the variable is unset.
const ScoreKernel& Active();

/// True when `kind` can run on this CPU (scalar always can). A kernel
/// compiled out of the binary (toolchain without the ISA) is unavailable.
bool Available(Kind kind);

/// Overrides the active kernel (test hook; fatal if unavailable).
void Select(Kind kind);

const char* KindName(Kind kind);

/// Parses "scalar" / "avx2" / "avx512"; returns false on anything else.
bool ParseKind(const char* name, Kind* out);

/// IEEE binary16 conversions (software, round-to-nearest-even; values
/// beyond ±65504 become ±inf, which the sweep's margin logic turns into a
/// guaranteed exact re-check). Used to build and maintain the fp16 shadow
/// weights; kernels may decode with hardware F16C instead — decoding
/// differences are covered by the quantization error margin, never by
/// bit-agreement between kernels.
uint16_t HalfFromDouble(double value);
float HalfToFloat(uint16_t half);

}  // namespace nidc::kernels

#endif  // NIDC_CORE_KERNELS_KERNELS_H_
