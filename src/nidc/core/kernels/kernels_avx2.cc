// AVX2 + F16C scoring kernels. Compiled with -mavx2 -mf16c and reached
// only through the runtime dispatch table (kernels.cc), so the binary
// stays safe on CPUs without these ISAs.
//
// Strategy: the per-term products are computed 4 (fp64) or 8 (fp32) lanes
// at a time; the score accumulation itself stays scalar (AVX2 has gathers
// but no scatters, and K is small enough that the store-to-buffer +
// scalar-accumulate loop wins over a gather/blend dance). Home-cluster
// entries take the exact scalar arithmetic — identical expressions to the
// scalar kernel — so detached home scores are bit-for-bit reproducible.

#include "nidc/core/kernels/kernels.h"

#if defined(NIDC_HAVE_KERNEL_AVX2)

#include <immintrin.h>

#include <cmath>

namespace nidc::kernels {

namespace {

// Prefetches the posting arrays of the term two positions ahead of the
// scan cursor — far enough to cover an L2 miss, near enough to stay in
// the row's reuse window.
inline void PrefetchTerm(const PostingsView& view, const DocRow& row,
                         size_t i) {
  if (i + 2 < row.size) {
    const size_t off = view.offsets[row.terms[i + 2]];
    _mm_prefetch(reinterpret_cast<const char*>(view.clusters + off),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(view.weights + off),
                 _MM_HINT_T0);
  }
}

inline void PrefetchTermQuantized(const PostingsView& view, const DocRow& row,
                                  size_t i) {
  if (i + 2 < row.size) {
    const size_t off = view.offsets[row.terms[i + 2]];
    _mm_prefetch(reinterpret_cast<const char*>(view.clusters + off),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(view.qweights + off),
                 _MM_HINT_T0);
  }
}

}  // namespace

uint64_t ScoreAvx2(const PostingsView& view, const DocRow& row, uint32_t home,
                   double* scores, double* home_attached) {
  const size_t k = view.num_clusters;
  for (size_t p = 0; p < k; ++p) scores[p] = 0.0;
  double attached = 0.0;
  uint64_t entries = 0;
  alignas(32) double prod_buf[4];
  alignas(16) uint32_t id_buf[4];
  for (size_t i = 0; i < row.size; ++i) {
    PrefetchTerm(view, row, i);
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    const __m256d vv = _mm256_set1_pd(v);
    for (size_t e = begin; e < end; e += 4) {
      // Padded SoA arrays make the full-width loads safe on the tail.
      const __m128i ids = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(view.clusters + e));
      const __m256d w = _mm256_loadu_pd(view.weights + e);
      _mm256_store_pd(prod_buf, _mm256_mul_pd(w, vv));
      _mm_store_si128(reinterpret_cast<__m128i*>(id_buf), ids);
      const size_t rem = end - e < 4 ? end - e : 4;
      for (size_t j = 0; j < rem; ++j) {
        const uint32_t c = id_buf[j];
        if (c == home) {
          // Same scalar expressions as the reference kernel, so the
          // detached home score replays the removed-then-rescored
          // arithmetic exactly.
          const double hw = view.weights[e + j];
          attached += hw * v;
          scores[c] += (hw - v) * v;
        } else {
          scores[c] += prod_buf[j];
        }
      }
    }
  }
  *home_attached = attached;
  return entries;
}

uint64_t ScoreQuantizedAvx2(const PostingsView& view, const DocRow& row,
                            uint32_t home, float* scores_f32, float* abs_f32,
                            double* home_attached, double* home_detached) {
  const size_t k = view.num_clusters;
  for (size_t p = 0; p < k; ++p) {
    scores_f32[p] = 0.0f;
    abs_f32[p] = 0.0f;
  }
  double attached = 0.0;
  double detached = 0.0;
  uint64_t entries = 0;
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  alignas(32) float prod_buf[8];
  alignas(32) float abs_buf[8];
  alignas(32) uint32_t id_buf[8];
  for (size_t i = 0; i < row.size; ++i) {
    PrefetchTermQuantized(view, row, i);
    const uint32_t t = row.terms[i];
    const double v = row.values[i];
    const float vf = static_cast<float>(v);
    const size_t begin = view.offsets[t];
    const size_t end = view.offsets[t + 1];
    entries += end - begin;
    const __m256 vvf = _mm256_set1_ps(vf);
    for (size_t e = begin; e < end; e += 8) {
      const __m256i ids = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.clusters + e));
      const __m128i halfs = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(view.qweights + e));
      const __m256 wq = _mm256_cvtph_ps(halfs);
      const __m256 prod = _mm256_mul_ps(wq, vvf);
      _mm256_store_ps(prod_buf, prod);
      _mm256_store_ps(abs_buf, _mm256_and_ps(prod, abs_mask));
      _mm256_store_si256(reinterpret_cast<__m256i*>(id_buf), ids);
      const size_t rem = end - e < 8 ? end - e : 8;
      for (size_t j = 0; j < rem; ++j) {
        const uint32_t c = id_buf[j];
        scores_f32[c] += prod_buf[j];
        abs_f32[c] += abs_buf[j];
        if (c == home) {
          // Exact fp64 side-channel for the home cluster.
          const double hw = view.weights[e + j];
          attached += hw * v;
          detached += (hw - v) * v;
        }
      }
    }
  }
  *home_attached = attached;
  *home_detached = detached;
  return entries;
}

}  // namespace nidc::kernels

#endif  // NIDC_HAVE_KERNEL_AVX2
