// Hot-topic digests: the user-facing product the paper's introduction
// motivates ("clustering results reflecting current trends of hot topics").
// Ranks the clusters of a ClusteringResult by their recency-weighted
// probability mass Σ_{d∈C} Pr(d) and extracts a human-readable digest.

#ifndef NIDC_CORE_HOT_TOPICS_H_
#define NIDC_CORE_HOT_TOPICS_H_

#include <string>
#include <vector>

#include "nidc/core/clustering_result.h"
#include "nidc/forgetting/forgetting_model.h"

namespace nidc {

/// One entry of the digest.
struct HotTopic {
  /// Index into the ClusteringResult's clusters.
  size_t cluster_index = 0;
  /// Recency-weighted mass Σ Pr(d) over members — the ranking key. Masses
  /// over a result sum to <= 1 (outliers hold the rest).
  double mass = 0.0;
  size_t size = 0;
  /// Acquisition time of the newest member.
  DayTime newest_doc_time = 0.0;
  /// Highest-weight representative terms.
  std::vector<std::string> top_terms;
};

struct HotTopicOptions {
  /// Maximum digest length (0 = all non-empty clusters).
  size_t max_topics = 5;
  size_t terms_per_topic = 4;
  /// Skip clusters whose mass falls below this floor.
  double min_mass = 0.0;
  /// Skip clusters smaller than this.
  size_t min_size = 1;
};

/// Builds the digest for `result` under `model`'s current probabilities,
/// most-massive cluster first. Documents no longer active contribute zero
/// mass (so a stale result naturally ranks low).
std::vector<HotTopic> RankHotTopics(const ForgettingModel& model,
                                    const ClusteringResult& result,
                                    const HotTopicOptions& options = {});

/// Renders a digest as "1. (mass 0.31, 12 docs) term term term" lines.
std::string RenderHotTopics(const std::vector<HotTopic>& digest);

}  // namespace nidc

#endif  // NIDC_CORE_HOT_TOPICS_H_
