// First story detection (FSD) — one of the TDT tasks the paper's related
// work surveys (§2.1): decide, for each arriving document, whether it is
// the first story of a new topic. This detector runs on the library's
// forgetting model: a document is novel when it is dissimilar to every
// *active* (non-expired) document, so old topics naturally "re-fire" when
// they resurface after their life span — the on-line behaviour the paper's
// novelty goal implies.
//
// Scores use the cosine of the ψ vectors (ψ_i·ψ_j / (|ψ_i||ψ_j|)), i.e.
// the novelty-weighted tf·idf direction: unlike raw Eq. 16 values (which
// scale with Pr(d)²), cosines are comparable across time, so a single
// threshold works for the whole stream.

#ifndef NIDC_CORE_FIRST_STORY_H_
#define NIDC_CORE_FIRST_STORY_H_

#include <vector>

#include "nidc/core/novelty_similarity.h"
#include "nidc/text/inverted_index.h"

namespace nidc {

struct FirstStoryOptions {
  /// A document is a first story when its maximum cosine to every earlier
  /// active document is below this threshold.
  double novelty_threshold = 0.25;
};

/// Verdict for one observed document.
struct FirstStoryVerdict {
  DocId doc = 0;
  /// Highest cosine against any earlier active document (0 when none).
  double max_similarity = 0.0;
  /// The earlier document achieving it (meaningless when max is 0).
  DocId nearest = 0;
  bool is_first_story = false;
};

/// On-line first-story detector over a forgetting model.
class FirstStoryDetector {
 public:
  FirstStoryDetector(const Corpus* corpus, ForgettingParams params,
                     FirstStoryOptions options = {});

  /// Observes a batch of documents acquired by time `tau` (>= now):
  /// advances the clock, expires stale documents, and scores each new
  /// document against all earlier active ones (earlier batch members
  /// included, in order). The batch is incorporated afterwards.
  Result<std::vector<FirstStoryVerdict>> Observe(
      const std::vector<DocId>& new_docs, DayTime tau);

  const ForgettingModel& model() const { return model_; }
  ForgettingModel& model() { return model_; }
  const FirstStoryOptions& options() const { return options_; }

  /// Total first stories flagged so far.
  size_t num_first_stories() const { return num_first_stories_; }

  /// The candidate-pruning index over the active set (exposed for tests
  /// and diagnostics).
  const InvertedIndex& index() const { return index_; }

 private:
  ForgettingModel model_;
  FirstStoryOptions options_;
  InvertedIndex index_;
  size_t num_first_stories_ = 0;
};

}  // namespace nidc

#endif  // NIDC_CORE_FIRST_STORY_H_
