#include "nidc/core/novelty_similarity.h"

#include <algorithm>

#include "nidc/util/logging.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

namespace {

// Below this many documents the pool dispatch costs more than the build.
constexpr size_t kParallelBuildThreshold = 256;

}  // namespace

SimilarityContext::SimilarityContext(const ForgettingModel& model,
                                     size_t num_threads) {
  docs_ = model.active_docs();
  psi_.resize(docs_.size());
  self_sim_.resize(docs_.size());

  const auto build = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const DocId id = docs_[i];
      const Document& doc = model.corpus().doc(id);
      const double len = doc.Length();
      const double pr = model.PrDoc(id);
      std::vector<SparseVector::Entry> entries;
      entries.reserve(doc.terms.size());
      if (len > 0.0 && pr > 0.0) {
        const double unit = pr / len;
        for (const auto& e : doc.terms.entries()) {
          const double idf = model.Idf(e.id);
          if (idf <= 0.0) continue;
          entries.push_back({e.id, unit * e.value * idf});
        }
      }
      psi_[i] = SparseVector::FromEntries(std::move(entries));
      self_sim_[i] = psi_[i].SquaredNorm();
    }
  };

  const size_t threads = ThreadPool::Resolve(num_threads);
  if (threads > 1 && docs_.size() >= kParallelBuildThreshold) {
    ThreadPool pool(threads);
    pool.ParallelFor(docs_.size(), /*grain=*/64, build);
  } else {
    build(0, docs_.size());
  }

  BuildArena();
}

void SimilarityContext::BuildArena() {
  // DocId → slot. DocIds are dense corpus indices, so a flat array with a
  // sentinel replaces the former hash map.
  DocId max_doc = 0;
  for (DocId id : docs_) max_doc = std::max(max_doc, id);
  slot_of_.assign(docs_.empty() ? 0 : static_cast<size_t>(max_doc) + 1,
                  kNoSlot);
  for (size_t i = 0; i < docs_.size(); ++i) {
    slot_of_[docs_[i]] = static_cast<Slot>(i);
  }

  TermId max_term = 0;
  size_t total_entries = 0;
  for (const SparseVector& psi : psi_) {
    total_entries += psi.size();
    for (const auto& e : psi.entries()) max_term = std::max(max_term, e.id);
  }

  // One pass fills the arena and assigns local term ids in first-appearance
  // order over slots — deterministic for a given active set.
  global_to_local_.assign(total_entries == 0
                              ? 0
                              : static_cast<size_t>(max_term) + 1,
                          kNoLocalTerm);
  row_offsets_.reserve(docs_.size() + 1);
  row_terms_.reserve(total_entries);
  row_values_.reserve(total_entries);
  row_offsets_.push_back(0);
  for (const SparseVector& psi : psi_) {
    for (const auto& e : psi.entries()) {
      uint32_t& local = global_to_local_[e.id];
      if (local == kNoLocalTerm) {
        local = static_cast<uint32_t>(local_to_global_.size());
        local_to_global_.push_back(e.id);
      }
      row_terms_.push_back(local);
      row_values_.push_back(e.value);
    }
    row_offsets_.push_back(row_terms_.size());
  }
}

double SimilarityContext::Sim(DocId a, DocId b) const {
  return Psi(a).Dot(Psi(b));
}

SimilarityContext::Slot SimilarityContext::SlotOf(DocId id) const {
  NIDC_CHECK(Contains(id)) << "SimilarityContext::SlotOf: document " << id
                           << " is not in the snapshot";
  return slot_of_[id];
}

double SimilarityContext::SelfSim(DocId id) const {
  NIDC_CHECK(Contains(id)) << "SimilarityContext::SelfSim: document " << id
                           << " is not in the snapshot";
  return self_sim_[slot_of_[id]];
}

const SparseVector& SimilarityContext::Psi(DocId id) const {
  NIDC_CHECK(Contains(id)) << "SimilarityContext::Psi: document " << id
                           << " is not in the snapshot";
  return psi_[slot_of_[id]];
}

double NoveltySimilarityReference(const ForgettingModel& model, DocId a,
                                  DocId b) {
  const Document& da = model.corpus().doc(a);
  const Document& db = model.corpus().doc(b);
  const double len_a = da.Length();
  const double len_b = db.Length();
  if (len_a <= 0.0 || len_b <= 0.0) return 0.0;
  // d⃗_i · d⃗_j with components tf_ik · idf_k (Eq. 12–14).
  double dot = 0.0;
  for (const auto& ea : da.terms.entries()) {
    const double fb = db.terms.ValueAt(ea.id);
    if (fb == 0.0) continue;
    const double idf = model.Idf(ea.id);
    dot += (ea.value * idf) * (fb * idf);
  }
  return model.PrDoc(a) * model.PrDoc(b) * dot / (len_a * len_b);
}

}  // namespace nidc
