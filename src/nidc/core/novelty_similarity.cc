#include "nidc/core/novelty_similarity.h"

#include "nidc/util/logging.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

namespace {

// Below this many documents the pool dispatch costs more than the build.
constexpr size_t kParallelBuildThreshold = 256;

}  // namespace

SimilarityContext::SimilarityContext(const ForgettingModel& model,
                                     size_t num_threads) {
  docs_ = model.active_docs();
  psi_.resize(docs_.size());
  self_sim_.resize(docs_.size());
  index_.reserve(docs_.size());
  for (size_t i = 0; i < docs_.size(); ++i) index_.emplace(docs_[i], i);

  const auto build = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const DocId id = docs_[i];
      const Document& doc = model.corpus().doc(id);
      const double len = doc.Length();
      const double pr = model.PrDoc(id);
      std::vector<SparseVector::Entry> entries;
      entries.reserve(doc.terms.size());
      if (len > 0.0 && pr > 0.0) {
        const double unit = pr / len;
        for (const auto& e : doc.terms.entries()) {
          const double idf = model.Idf(e.id);
          if (idf <= 0.0) continue;
          entries.push_back({e.id, unit * e.value * idf});
        }
      }
      psi_[i] = SparseVector::FromEntries(std::move(entries));
      self_sim_[i] = psi_[i].SquaredNorm();
    }
  };

  const size_t threads = ThreadPool::Resolve(num_threads);
  if (threads > 1 && docs_.size() >= kParallelBuildThreshold) {
    ThreadPool pool(threads);
    pool.ParallelFor(docs_.size(), /*grain=*/64, build);
  } else {
    build(0, docs_.size());
  }
}

double SimilarityContext::Sim(DocId a, DocId b) const {
  return Psi(a).Dot(Psi(b));
}

double SimilarityContext::SelfSim(DocId id) const {
  auto it = index_.find(id);
  NIDC_CHECK(it != index_.end())
      << "SimilarityContext::SelfSim: document " << id
      << " is not in the snapshot";
  return self_sim_[it->second];
}

const SparseVector& SimilarityContext::Psi(DocId id) const {
  auto it = index_.find(id);
  NIDC_CHECK(it != index_.end())
      << "SimilarityContext::Psi: document " << id
      << " is not in the snapshot";
  return psi_[it->second];
}

double NoveltySimilarityReference(const ForgettingModel& model, DocId a,
                                  DocId b) {
  const Document& da = model.corpus().doc(a);
  const Document& db = model.corpus().doc(b);
  const double len_a = da.Length();
  const double len_b = db.Length();
  if (len_a <= 0.0 || len_b <= 0.0) return 0.0;
  // d⃗_i · d⃗_j with components tf_ik · idf_k (Eq. 12–14).
  double dot = 0.0;
  for (const auto& ea : da.terms.entries()) {
    const double fb = db.terms.ValueAt(ea.id);
    if (fb == 0.0) continue;
    const double idf = model.Idf(ea.id);
    dot += (ea.value * idf) * (fb * idf);
  }
  return model.PrDoc(a) * model.PrDoc(b) * dot / (len_a * len_b);
}

}  // namespace nidc
