// Novelty-based similarity (paper Eq. 16) in its factored form.
//
// Define the *weighted document vector* (the per-document summand of the
// cluster representative, Eq. 20):
//   ψ_i ≡ (Pr(d_i) / len_i) · (f_i1·idf_1, ..., f_im·idf_m),
// with idf_k = 1/√Pr(t_k). Then
//   sim(d_i, d_j) = Pr(d_i)·Pr(d_j)·(d⃗_i·d⃗_j)/(len_i·len_j) = ψ_i · ψ_j,
// the cluster representative is c⃗_p = Σ_{d_i∈C_p} ψ_i, and
// cr_sim(C_p, C_q) = c⃗_p · c⃗_q (Eq. 21) falls out as a plain dot product.
//
// ψ depends on Pr(d_i) and Pr(t_k), which are fixed during one clustering
// pass; a SimilarityContext snapshots them for the active document set.

#ifndef NIDC_CORE_NOVELTY_SIMILARITY_H_
#define NIDC_CORE_NOVELTY_SIMILARITY_H_

#include <unordered_map>
#include <vector>

#include "nidc/forgetting/forgetting_model.h"

namespace nidc {

/// Snapshot of ψ vectors (and self-similarities) for one clustering pass.
class SimilarityContext {
 public:
  /// Builds ψ_i for every active document of `model` at its current clock.
  /// The per-document constructions are independent, so with
  /// `num_threads > 1` they are spread over a thread pool; each thread
  /// writes only its own slots, making the result bit-identical to the
  /// serial build for any thread count (0 = hardware concurrency).
  explicit SimilarityContext(const ForgettingModel& model,
                             size_t num_threads = 1);

  /// sim(d_i, d_j) = ψ_i · ψ_j (Eq. 16). Both must be in the snapshot.
  double Sim(DocId a, DocId b) const;

  /// Self-similarity sim(d_i, d_i) = ψ_i · ψ_i — the per-document term of
  /// ss(C_p) (Eq. 23). Fatal (in every build type) on an unknown DocId.
  double SelfSim(DocId id) const;

  /// The ψ vector of a document. Fatal (in every build type) on an unknown
  /// DocId — a bad seed must fail loudly, not read stale memory.
  const SparseVector& Psi(DocId id) const;

  bool Contains(DocId id) const { return index_.contains(id); }

  /// Documents in the snapshot, in the model's active order.
  const std::vector<DocId>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }

 private:
  std::vector<DocId> docs_;
  std::unordered_map<DocId, size_t> index_;
  std::vector<SparseVector> psi_;
  std::vector<double> self_sim_;
};

/// Reference (unfactored) implementation of Eq. 16, used by tests to verify
/// the factored form: Pr(d_i)·Pr(d_j)·(d⃗_i·d⃗_j)/(len_i·len_j) with tf·idf
/// vectors built directly from Eq. 12–15.
double NoveltySimilarityReference(const ForgettingModel& model, DocId a,
                                  DocId b);

}  // namespace nidc

#endif  // NIDC_CORE_NOVELTY_SIMILARITY_H_
