// Novelty-based similarity (paper Eq. 16) in its factored form.
//
// Define the *weighted document vector* (the per-document summand of the
// cluster representative, Eq. 20):
//   ψ_i ≡ (Pr(d_i) / len_i) · (f_i1·idf_1, ..., f_im·idf_m),
// with idf_k = 1/√Pr(t_k). Then
//   sim(d_i, d_j) = Pr(d_i)·Pr(d_j)·(d⃗_i·d⃗_j)/(len_i·len_j) = ψ_i · ψ_j,
// the cluster representative is c⃗_p = Σ_{d_i∈C_p} ψ_i, and
// cr_sim(C_p, C_q) = c⃗_p · c⃗_q (Eq. 21) falls out as a plain dot product.
//
// ψ depends on Pr(d_i) and Pr(t_k), which are fixed during one clustering
// pass; a SimilarityContext snapshots them for the active document set.
//
// Layout: besides the per-document SparseVector API, the snapshot stores
// every ψ entry in one contiguous CSR arena (row offsets + flat term/value
// arrays). Documents get a dense *slot* (their index in docs()) reachable
// from a DocId through a flat array rather than a hash probe, and terms get
// a dense *local* id covering only the vocabulary that actually appears in
// some ψ. The clustering inner loop (extended_kmeans.cc, rep_index.h) runs
// entirely on these array indices.

#ifndef NIDC_CORE_NOVELTY_SIMILARITY_H_
#define NIDC_CORE_NOVELTY_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "nidc/forgetting/forgetting_model.h"

namespace nidc {

/// Snapshot of ψ vectors (and self-similarities) for one clustering pass.
class SimilarityContext {
 public:
  /// Dense document index within the snapshot (== position in docs()).
  using Slot = uint32_t;
  static constexpr Slot kNoSlot = UINT32_MAX;
  /// Sentinel for terms outside the snapshot's active vocabulary.
  static constexpr uint32_t kNoLocalTerm = UINT32_MAX;

  /// One document's ψ as a view into the CSR arena. `terms` holds *local*
  /// dense term ids; the underlying entries are in ascending global TermId
  /// order (the SparseVector entry order), so scans accumulate in the same
  /// order as a sorted-merge dot product.
  struct Row {
    const uint32_t* terms = nullptr;
    const double* values = nullptr;
    size_t size = 0;
  };

  /// Builds ψ_i for every active document of `model` at its current clock.
  /// The per-document constructions are independent, so with
  /// `num_threads > 1` they are spread over a thread pool; each thread
  /// writes only its own slots, making the result bit-identical to the
  /// serial build for any thread count (0 = hardware concurrency). The CSR
  /// arena and term remap are derived serially afterwards (one pass over
  /// the entries) and are deterministic: local term ids are assigned in
  /// first-appearance order over slots.
  explicit SimilarityContext(const ForgettingModel& model,
                             size_t num_threads = 1);

  /// sim(d_i, d_j) = ψ_i · ψ_j (Eq. 16). Both must be in the snapshot.
  double Sim(DocId a, DocId b) const;

  /// Self-similarity sim(d_i, d_i) = ψ_i · ψ_i — the per-document term of
  /// ss(C_p) (Eq. 23). Fatal (in every build type) on an unknown DocId.
  double SelfSim(DocId id) const;

  /// The ψ vector of a document. Fatal (in every build type) on an unknown
  /// DocId — a bad seed must fail loudly, not read stale memory.
  const SparseVector& Psi(DocId id) const;

  bool Contains(DocId id) const {
    return id < slot_of_.size() && slot_of_[id] != kNoSlot;
  }

  /// Dense slot of a document. Fatal (in every build type) on an unknown
  /// DocId, like Psi.
  Slot SlotOf(DocId id) const;

  /// Slot-indexed accessors — plain array loads, no hashing.
  DocId DocAt(Slot slot) const { return docs_[slot]; }
  double SelfSimAt(Slot slot) const { return self_sim_[slot]; }
  const SparseVector& PsiAt(Slot slot) const { return psi_[slot]; }
  Row RowAt(Slot slot) const {
    const size_t begin = row_offsets_[slot];
    return {row_terms_.data() + begin, row_values_.data() + begin,
            row_offsets_[slot + 1] - begin};
  }

  /// Size of the local (active-vocabulary) term space; every Row term id is
  /// < this.
  size_t num_local_terms() const { return local_to_global_.size(); }
  /// Local id of a global term, or kNoLocalTerm when it appears in no ψ.
  uint32_t LocalTerm(TermId term) const {
    return term < global_to_local_.size() ? global_to_local_[term]
                                          : kNoLocalTerm;
  }
  /// Global TermId of a local id.
  TermId GlobalTerm(uint32_t local) const { return local_to_global_[local]; }

  /// Documents in the snapshot, in the model's active order.
  const std::vector<DocId>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }

 private:
  void BuildArena();

  std::vector<DocId> docs_;
  std::vector<Slot> slot_of_;  // DocId → slot; kNoSlot for inactive ids
  std::vector<SparseVector> psi_;
  std::vector<double> self_sim_;
  // CSR arena over the ψ entries, with globally-sorted terms remapped to a
  // dense local id space.
  std::vector<size_t> row_offsets_;    // size() + 1 entries
  std::vector<uint32_t> row_terms_;    // local term ids
  std::vector<double> row_values_;
  std::vector<uint32_t> global_to_local_;
  std::vector<TermId> local_to_global_;
};

/// Reference (unfactored) implementation of Eq. 16, used by tests to verify
/// the factored form: Pr(d_i)·Pr(d_j)·(d⃗_i·d⃗_j)/(len_i·len_j) with tf·idf
/// vectors built directly from Eq. 12–15.
double NoveltySimilarityReference(const ForgettingModel& model, DocId a,
                                  DocId b);

}  // namespace nidc

#endif  // NIDC_CORE_NOVELTY_SIMILARITY_H_
