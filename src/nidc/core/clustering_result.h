// Immutable snapshot of one clustering pass: memberships, outliers,
// per-cluster quality, convergence trace.

#ifndef NIDC_CORE_CLUSTERING_RESULT_H_
#define NIDC_CORE_CLUSTERING_RESULT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "nidc/core/cluster_set.h"
#include "nidc/text/vocabulary.h"

namespace nidc {

/// Result of ExtendedKMeans::Run (and of each IncrementalClusterer step).
struct ClusteringResult {
  /// Cluster memberships, index-aligned with representatives/avg_sims.
  std::vector<std::vector<DocId>> clusters;

  /// Final cluster representatives c⃗_p (Eq. 20) — reused as seeds by the
  /// incremental procedure (§5.2 step 3).
  std::vector<SparseVector> representatives;

  /// avg_sim(C_p) of each cluster at termination.
  std::vector<double> avg_sims;

  /// Stable cluster ids, index-aligned with `clusters`. Unlike the
  /// positional index, an id survives sweeps and incremental reseeding
  /// (cluster p of step N+1 inherits the id of the cluster that seeded
  /// it), and a slot reseeded by an unrelated document gets a fresh id —
  /// the identity drift telemetry and the event log match on.
  std::vector<uint64_t> cluster_ids;

  /// The id counter after this run; feed it back as
  /// ExtendedKMeansOptions::first_cluster_id to keep ids monotone across
  /// runs (IncrementalClusterer does this automatically).
  uint64_t next_cluster_id = 0;

  /// Documents left on the outlier list at termination.
  std::vector<DocId> outliers;

  /// Clustering index G at termination and its per-iteration trace.
  double g = 0.0;
  std::vector<double> g_history;

  /// Number of repetition sweeps executed.
  int iterations = 0;

  /// True if the δ-criterion fired (false: max_iterations hit).
  bool converged = false;

  /// Cluster index of a document, or kUnassigned.
  int ClusterOf(DocId id) const;

  /// Number of non-empty clusters.
  size_t NumNonEmpty() const;

  /// Total documents assigned to clusters (excludes outliers).
  size_t TotalAssigned() const;

  /// The `n` highest-weight terms of cluster `p`'s representative,
  /// resolved through `vocab` — a human-readable cluster digest.
  std::vector<std::string> TopTerms(size_t p, const Vocabulary& vocab,
                                    size_t n) const;

  /// Builds the snapshot from a live ClusterSet.
  static ClusteringResult FromClusterSet(const ClusterSet& set,
                                         std::vector<DocId> outliers,
                                         std::vector<double> g_history,
                                         int iterations, bool converged);
};

}  // namespace nidc

#endif  // NIDC_CORE_CLUSTERING_RESULT_H_
