// The clustering index G (paper §4.2, Eq. 17–18) as free functions, plus
// the naive reference used to validate the representative-based fast path.

#ifndef NIDC_CORE_CLUSTERING_INDEX_H_
#define NIDC_CORE_CLUSTERING_INDEX_H_

#include "nidc/core/cluster_set.h"

namespace nidc {

/// G = Σ_p |C_p| · avg_sim(C_p) via the cached cluster statistics (Eq. 24).
double ClusteringIndexG(const ClusterSet& clusters);

/// Same quantity computed from pairwise similarities (Eq. 18 literally);
/// O(Σ |C_p|²). Used by tests and the ablation bench.
double ClusteringIndexGNaive(const ClusterSet& clusters,
                             const SimilarityContext& ctx);

/// Relative change (G_new − G_old)/G_old used by the convergence test
/// (§4.3 repetition step 4). When G_old is 0: returns 0 if G_new is also 0,
/// +infinity otherwise (so a run that just created structure keeps going).
double RelativeGChange(double g_old, double g_new);

}  // namespace nidc

#endif  // NIDC_CORE_CLUSTERING_INDEX_H_
