// Posting index over the K cluster representatives: term → (cluster,
// weight) entries, where `weight` is that term's coefficient in the
// cluster's representative vector c⃗_p = Σ_{d∈C_p} ψ_d (Eq. 20).
//
// This turns the extended K-means inner loop from K independent sparse
// dot products (one sorted merge per cluster per document) into a single
// document-at-a-time scan: one pass over ψ_d's nonzeros accumulates
// cr_sim(C_p, {d}) = c⃗_p · ψ_d for *all* K clusters at once, which is
// sublinear in K whenever cluster vocabularies do not all overlap — the
// standard inverted-index scoring trick of IR / novelty-detection systems.
//
// Maintenance mirrors the tombstone + amortized-compaction idiom of
// text/inverted_index.cc: each (term, cluster) entry carries a reference
// count of live member documents containing the term. When the count drops
// to zero the weight snaps to exact 0.0 (clearing float drift, like
// Cluster::Clear does for an emptied cluster) and the entry is tombstoned;
// dead entries are physically dropped once they outnumber live ones.
//
// Weight updates replay the same per-term additions, in the same order, as
// Cluster::Add/Remove apply to the representative via AddScaled — so the
// indexed scores match the merge-path `representative_.Dot(ψ)` not just
// within float tolerance but (except for tombstone-cleared residuals)
// bit-for-bit.

#ifndef NIDC_CORE_REP_INDEX_H_
#define NIDC_CORE_REP_INDEX_H_

#include <atomic>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nidc/core/cluster.h"
#include "nidc/core/kernels/kernels.h"
#include "nidc/core/novelty_similarity.h"
#include "nidc/text/sparse_vector.h"

namespace nidc {
class ThreadPool;
}  // namespace nidc

namespace nidc {

/// Incrementally maintained term → (cluster, weight) postings over a fixed
/// number of clusters.
class ClusterRepIndex {
 public:
  ClusterRepIndex() = default;
  explicit ClusterRepIndex(size_t num_clusters) : k_(num_clusters) {}

  size_t num_clusters() const { return k_; }
  size_t num_terms() const { return postings_.size(); }

  /// Maintenance telemetry. Counters are cumulative over the index's
  /// lifetime (Reset preserves them — RefreshAll resets once per sweep);
  /// live/dead entries reflect the current postings.
  struct Stats {
    uint64_t tombstones_created = 0;  // entries whose refs dropped to 0
    uint64_t tombstones_revived = 0;  // tombstones re-added before compaction
    uint64_t compactions = 0;         // posting lists physically compacted
    uint64_t entries_compacted = 0;   // dead entries dropped by compaction
    size_t live_entries = 0;          // (term, cluster) entries with refs > 0
    size_t dead_entries = 0;          // tombstones not yet compacted
  };
  const Stats& stats() const { return stats_; }

  /// Drops all postings and resets the cluster count.
  void Reset(size_t num_clusters);

  /// Folds a member document's ψ (or any sparse vector, e.g. a whole seed
  /// representative) into cluster `p`'s postings: weight += value per term.
  void Add(size_t p, const SparseVector& psi);

  /// Removes a previously added vector from cluster `p`: weight -= value
  /// per term. Every term of `psi` must have been Add-ed for `p` before
  /// (checked); entries whose contributor count reaches zero are zeroed and
  /// tombstoned.
  void Remove(size_t p, const SparseVector& psi);

  /// Document-at-a-time scoring: resizes `scores` to K and fills
  /// scores[p] = c⃗_p · psi for every cluster in one pass over `psi`.
  /// Cost is Σ_{t ∈ psi} |postings(t)| ≤ |psi| · K.
  void ScoreAll(const SparseVector& psi, std::vector<double>* scores) const;

  /// The live postings of one term, for tests: (cluster, weight) pairs in
  /// unspecified order.
  std::vector<std::pair<size_t, double>> PostingsOf(TermId term) const;

 private:
  // One cluster's accumulated weight for one term. `refs` counts the live
  // member vectors contributing to the weight; refs == 0 marks a tombstone
  // (weight is exactly 0.0 and the entry is skipped by compaction).
  struct Entry {
    uint32_t cluster = 0;
    uint32_t refs = 0;
    double weight = 0.0;
  };
  struct PostingList {
    std::vector<Entry> entries;
    size_t dead = 0;
  };

  void MaybeCompact(PostingList* list);

  std::unordered_map<TermId, PostingList> postings_;
  size_t k_ = 0;
  Stats stats_;
};

/// CSR posting index over the K cluster representatives, addressed by the
/// SimilarityContext's dense *local* term ids: one flat entry array plus a
/// per-term offset table, rebuilt in one pass at every RefreshAll. Scoring a
/// document is then a pure sequential scan over its CSR row — no hashing
/// anywhere on the path.
///
/// Between rebuilds the index is maintained *move-only*: the sweep scores
/// documents with their ψ still attached (ScoreAllDetached supplies the
/// detached home cross term algebraically), so postings change only when a
/// document actually moves. A move updates base entries in place (same
/// refs/zero-snap tombstone semantics as ClusterRepIndex); the rare
/// (term, cluster) pairs that first appear mid-sweep go to a small overlay
/// keyed by local term id, disjoint from the base entries.
///
/// Weight maintenance replays the same per-term additions, in the same
/// order, as Cluster::Refresh / Cluster::Add / Cluster::Remove apply to the
/// representatives — so scores match the merge path bit-for-bit (except
/// zero-snapped tombstone residuals, as with ClusterRepIndex).
///
/// The base postings live in padded SoA arrays (clusters / refs / weights
/// plus an fp16 shadow of the weights) and are scanned through the
/// runtime-dispatched SIMD kernels of core/kernels — every kernel is
/// bit-identical to the scalar reference on the exact path, and the fp16
/// quantized pass (ScoreAllQuantized) feeds the sweep's certified-margin
/// re-check. On the exact path, documents touching mid-sweep overlay terms
/// fall back to the legacy scalar loops (the per-term base/overlay
/// interleaving is the semantic definition); the quantized pass folds the
/// overlay in after the kernel scan instead, which its margin absorbs.
class FlatRepIndex {
 public:
  /// Cumulative counters survive rebuilds (like ClusterRepIndex::Stats);
  /// live/dead/base entries reflect the current postings.
  struct Stats {
    uint64_t builds = 0;              // full CSR rebuilds
    uint64_t moves_applied = 0;       // ApplyAdd/ApplyRemove sides applied
    uint64_t tombstones_created = 0;  // entries whose refs dropped to 0
    uint64_t tombstones_revived = 0;  // tombstones re-added before a rebuild
    uint64_t delta_entries_added = 0;  // overlay entries ever created
    size_t live_entries = 0;  // base + overlay entries with refs > 0
    size_t dead_entries = 0;  // tombstones (cleared by the next rebuild)
  };
  const Stats& stats() const { return stats_; }

  /// Scoring-scan telemetry (cumulative, like Stats). Atomic because the
  /// seeded assignment pass scores one shared index from parallel lanes;
  /// relaxed increments keep the hot path at one uncontended add each.
  struct ScanStats {
    std::atomic<uint64_t> docs_scored{0};      // ScoreAll* calls
    std::atomic<uint64_t> entries_scanned{0};  // posting entries touched
    std::atomic<uint64_t> bytes_scanned{0};    // posting + row bytes read
    std::atomic<uint64_t> quantized_docs{0};   // docs scored via fp16 pass
    std::atomic<uint64_t> delta_fallback_docs{0};  // overlay-forced scalar

    ScanStats() = default;
    ScanStats(const ScanStats& o) { *this = o; }
    ScanStats& operator=(const ScanStats& o) {
      docs_scored = o.docs_scored.load(std::memory_order_relaxed);
      entries_scanned = o.entries_scanned.load(std::memory_order_relaxed);
      bytes_scanned = o.bytes_scanned.load(std::memory_order_relaxed);
      quantized_docs = o.quantized_docs.load(std::memory_order_relaxed);
      delta_fallback_docs =
          o.delta_fallback_docs.load(std::memory_order_relaxed);
      return *this;
    }
  };
  const ScanStats& scan_stats() const { return scan_stats_; }

  size_t num_clusters() const { return k_; }
  bool built() const { return built_; }

  /// Rebuilds the CSR postings from the cluster memberships, accumulating
  /// member ψ values per (term, cluster) in member order — the exact
  /// addition order Cluster::Refresh uses for the representatives. Clears
  /// the overlay and all tombstones. One pass over the context's CSR rows
  /// of the members; with a pool of >= 2 threads the per-cluster
  /// accumulation runs sharded across it (the serial fill order is
  /// reproduced exactly, so the result is bit-identical).
  void BuildFromClusters(const SimilarityContext& ctx,
                         const std::vector<Cluster>& clusters,
                         ThreadPool* pool = nullptr);

  /// Rebuilds from fixed representative vectors (seeded assignment): each
  /// term of rep[p] becomes one entry with refs = 1. Terms outside the
  /// context's active vocabulary can never match a ψ and are skipped.
  void BuildFromRepresentatives(const SimilarityContext& ctx,
                                const std::vector<SparseVector>& reps);

  /// Document-at-a-time scoring: fills scores[p] = c⃗_p · ψ for every
  /// cluster in one sequential scan over the document's CSR row.
  void ScoreAll(const SimilarityContext& ctx, SimilarityContext::Slot slot,
                std::vector<double>* scores) const;

  /// ScoreAll with the document's home cluster evaluated *as if detached*:
  /// scores[home] accumulates (w − ψ_t)·ψ_t per shared term — bit-identical
  /// to physically removing ψ and rescoring — while *home_attached receives
  /// the attached cross term Σ w·ψ_t (the dot product Cluster::Remove
  /// would compute), so the caller can derive the detached cluster
  /// statistics without mutating anything.
  void ScoreAllDetached(const SimilarityContext& ctx,
                        SimilarityContext::Slot slot, size_t home,
                        std::vector<double>* scores,
                        double* home_attached) const;

  /// Quantized scoring pass over the fp16 shadow weights (see
  /// kernels/kernels.h): scores_f32/abs_f32 are resized to K and receive
  /// the fp32 product and absolute-product accumulators; entries of
  /// cluster `home` (pass kUnassigned for none) additionally feed the
  /// *exact* fp64 side-channel *home_attached / *home_detached,
  /// bit-identical to ScoreAllDetached's home lane. Mid-sweep overlay
  /// entries (no fp16 shadow) are folded in after the base kernel scan —
  /// sound for the certified margin, which holds for any fp32 summation
  /// order. Returns false — outputs then meaningless — only when an
  /// overlay entry belongs to the home cluster, whose exact side-channel
  /// must replay the legacy interleaved order; the caller then takes the
  /// exact path.
  bool ScoreAllQuantized(const SimilarityContext& ctx,
                         SimilarityContext::Slot slot, int home,
                         std::vector<float>* scores_f32,
                         std::vector<float>* abs_f32, double* home_attached,
                         double* home_detached) const;

  /// Applies the posting side of an actual document move: weight -= ψ_t on
  /// every term (zero-snap tombstone when the last contributor leaves).
  /// No-ops before the first build — seeding assigns are followed by a
  /// rebuild, so maintaining postings for them would be wasted work.
  void ApplyRemove(const SimilarityContext& ctx,
                   SimilarityContext::Slot slot, size_t p);

  /// The add side of a move: weight += ψ_t, reviving tombstones or
  /// appending overlay entries for first-seen (term, cluster) pairs.
  /// No-ops before the first build (see ApplyRemove).
  void ApplyAdd(const SimilarityContext& ctx, SimilarityContext::Slot slot,
                size_t p);

  /// Live (cluster, weight) postings of one *global* term, for tests; base
  /// entries first, then overlay entries.
  std::vector<std::pair<size_t, double>> PostingsOf(
      const SimilarityContext& ctx, TermId term) const;

 private:
  // One overlay entry: a cluster's accumulated weight for one term;
  // refs == 0 marks a tombstone with weight exactly 0.0, skipped only
  // logically. (The base postings store the same triple in SoA arrays —
  // see below.)
  struct Entry {
    uint32_t cluster = 0;
    uint32_t refs = 0;
    double weight = 0.0;
  };
  static constexpr size_t kNoEntry = static_cast<size_t>(-1);

  size_t FindBase(uint32_t local_term, size_t p) const;
  Entry* FindDelta(uint32_t local_term, size_t p);
  void PrepareBuild(const SimilarityContext& ctx);
  // Sizes the SoA arrays (zeroed, with kPostingPadding slots of tail
  // padding) for `n` base entries.
  void ResizeEntries(size_t n);
  // Refreshes the fp16 shadow of every base entry (one pass, post-build).
  void QuantizeAll();
  void BuildFromClustersSerial(const SimilarityContext& ctx,
                               const std::vector<Cluster>& clusters);
  void BuildFromClustersParallel(const SimilarityContext& ctx,
                                 const std::vector<Cluster>& clusters,
                                 ThreadPool* pool);
  // True when the document's row touches a term with overlay entries —
  // those carry no fp16 shadow and are interleaved per term, so such docs
  // take the legacy scalar loops.
  bool NeedsDeltaFallback(const SimilarityContext::Row& row) const;
  uint64_t ScoreAllDeltaFallback(const SimilarityContext::Row& row,
                                 uint32_t home, std::vector<double>* scores,
                                 double* home_attached) const;
  kernels::PostingsView View() const {
    return {offsets_.data(), clusters_.data(), weights_.data(),
            qweights_.data(), offsets_.size() - 1, k_};
  }
  static kernels::DocRow DocRowOf(const SimilarityContext::Row& row) {
    return {row.terms, row.values, row.size};
  }

  std::vector<size_t> offsets_;  // per local term, into the SoA arrays
  // Base CSR postings as parallel SoA arrays — the layout the SIMD kernels
  // scan. clusters_/weights_/qweights_ carry kernels::kPostingPadding
  // zeroed tail slots so full-width vector loads on a posting tail stay
  // in-bounds; refs_ is maintenance-only and unpadded.
  std::vector<uint32_t> clusters_;
  std::vector<uint32_t> refs_;
  std::vector<double> weights_;
  std::vector<uint16_t> qweights_;  // fp16 shadow of weights_
  // Overlay for (term, cluster) pairs introduced by mid-sweep moves;
  // has_delta_ lets the scan skip the hash probe for untouched terms.
  std::vector<uint8_t> has_delta_;
  std::unordered_map<uint32_t, std::vector<Entry>> delta_;
  // Build scratch, reused across rebuilds: per-term entry counts / fill
  // cursors and a last-cluster marker for distinct-pair counting.
  std::vector<size_t> counts_;
  std::vector<uint32_t> mark_;
  size_t k_ = 0;
  bool built_ = false;
  Stats stats_;
  mutable ScanStats scan_stats_;
};

}  // namespace nidc

#endif  // NIDC_CORE_REP_INDEX_H_
