// Posting index over the K cluster representatives: term → (cluster,
// weight) entries, where `weight` is that term's coefficient in the
// cluster's representative vector c⃗_p = Σ_{d∈C_p} ψ_d (Eq. 20).
//
// This turns the extended K-means inner loop from K independent sparse
// dot products (one sorted merge per cluster per document) into a single
// document-at-a-time scan: one pass over ψ_d's nonzeros accumulates
// cr_sim(C_p, {d}) = c⃗_p · ψ_d for *all* K clusters at once, which is
// sublinear in K whenever cluster vocabularies do not all overlap — the
// standard inverted-index scoring trick of IR / novelty-detection systems.
//
// Maintenance mirrors the tombstone + amortized-compaction idiom of
// text/inverted_index.cc: each (term, cluster) entry carries a reference
// count of live member documents containing the term. When the count drops
// to zero the weight snaps to exact 0.0 (clearing float drift, like
// Cluster::Clear does for an emptied cluster) and the entry is tombstoned;
// dead entries are physically dropped once they outnumber live ones.
//
// Weight updates replay the same per-term additions, in the same order, as
// Cluster::Add/Remove apply to the representative via AddScaled — so the
// indexed scores match the merge-path `representative_.Dot(ψ)` not just
// within float tolerance but (except for tombstone-cleared residuals)
// bit-for-bit.

#ifndef NIDC_CORE_REP_INDEX_H_
#define NIDC_CORE_REP_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nidc/text/sparse_vector.h"

namespace nidc {

/// Incrementally maintained term → (cluster, weight) postings over a fixed
/// number of clusters.
class ClusterRepIndex {
 public:
  ClusterRepIndex() = default;
  explicit ClusterRepIndex(size_t num_clusters) : k_(num_clusters) {}

  size_t num_clusters() const { return k_; }
  size_t num_terms() const { return postings_.size(); }

  /// Maintenance telemetry. Counters are cumulative over the index's
  /// lifetime (Reset preserves them — RefreshAll resets once per sweep);
  /// live/dead entries reflect the current postings.
  struct Stats {
    uint64_t tombstones_created = 0;  // entries whose refs dropped to 0
    uint64_t tombstones_revived = 0;  // tombstones re-added before compaction
    uint64_t compactions = 0;         // posting lists physically compacted
    uint64_t entries_compacted = 0;   // dead entries dropped by compaction
    size_t live_entries = 0;          // (term, cluster) entries with refs > 0
    size_t dead_entries = 0;          // tombstones not yet compacted
  };
  const Stats& stats() const { return stats_; }

  /// Drops all postings and resets the cluster count.
  void Reset(size_t num_clusters);

  /// Folds a member document's ψ (or any sparse vector, e.g. a whole seed
  /// representative) into cluster `p`'s postings: weight += value per term.
  void Add(size_t p, const SparseVector& psi);

  /// Removes a previously added vector from cluster `p`: weight -= value
  /// per term. Every term of `psi` must have been Add-ed for `p` before
  /// (checked); entries whose contributor count reaches zero are zeroed and
  /// tombstoned.
  void Remove(size_t p, const SparseVector& psi);

  /// Document-at-a-time scoring: resizes `scores` to K and fills
  /// scores[p] = c⃗_p · psi for every cluster in one pass over `psi`.
  /// Cost is Σ_{t ∈ psi} |postings(t)| ≤ |psi| · K.
  void ScoreAll(const SparseVector& psi, std::vector<double>* scores) const;

  /// The live postings of one term, for tests: (cluster, weight) pairs in
  /// unspecified order.
  std::vector<std::pair<size_t, double>> PostingsOf(TermId term) const;

 private:
  // One cluster's accumulated weight for one term. `refs` counts the live
  // member vectors contributing to the weight; refs == 0 marks a tombstone
  // (weight is exactly 0.0 and the entry is skipped by compaction).
  struct Entry {
    uint32_t cluster = 0;
    uint32_t refs = 0;
    double weight = 0.0;
  };
  struct PostingList {
    std::vector<Entry> entries;
    size_t dead = 0;
  };

  void MaybeCompact(PostingList* list);

  std::unordered_map<TermId, PostingList> postings_;
  size_t k_ = 0;
  Stats stats_;
};

}  // namespace nidc

#endif  // NIDC_CORE_REP_INDEX_H_
