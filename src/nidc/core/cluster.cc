#include "nidc/core/cluster.h"

#include <algorithm>
#include <cassert>

namespace nidc {

void Cluster::Add(DocId id, const SimilarityContext& ctx) {
  assert(!Contains(id));
  const SparseVector& psi = ctx.Psi(id);
  const double self = ctx.SelfSim(id);
  // cr_sim(C∪{d}, C∪{d}) = cr_self + 2·cr_sim(C, {d}) + sim(d, d):
  // the expansion that makes Eq. 26 a single dot product.
  cr_self_ += 2.0 * representative_.Dot(psi) + self;
  ss_ += self;
  representative_.AddScaled(psi, 1.0);
  member_pos_.emplace(id, members_.size());
  members_.push_back(id);
  has_last_leaver_ = false;
}

void Cluster::Remove(DocId id, const SimilarityContext& ctx) {
  auto it = member_pos_.find(id);
  assert(it != member_pos_.end());
  const SparseVector& psi = ctx.Psi(id);
  const double self = ctx.SelfSim(id);
  // Deletion counterpart: with c' = c − ψ_d,
  // c'·c' = c·c − 2·c·ψ_d + ψ_d·ψ_d.
  cr_self_ += -2.0 * representative_.Dot(psi) + self;
  ss_ -= self;
  representative_.AddScaled(psi, -1.0);
  // Swap-and-pop so removal costs O(1), not a linear member scan.
  const size_t pos = it->second;
  member_pos_.erase(it);
  if (pos + 1 != members_.size()) {
    members_[pos] = members_.back();
    member_pos_[members_[pos]] = pos;
  }
  members_.pop_back();
  if (members_.empty()) {
    Clear();  // snap caches to exact zero
    // Recorded after Clear so the identity-continuity window opens only
    // for a genuine empty-by-removal, never for a bulk Clear.
    last_leaver_ = id;
    has_last_leaver_ = true;
  }
}

void Cluster::ReplayDetachReattach(DocId id, double t_attached,
                                   double t_detached, double self) {
  assert(members_.size() >= 2);
  // Remove's scalar updates, with its internal dot product substituted ...
  cr_self_ += -2.0 * t_attached + self;
  ss_ -= self;
  // ... then Add's, against the (never materialized) detached state.
  cr_self_ += 2.0 * t_detached + self;
  ss_ += self;
  // Swap-and-pop + push_back nets out to rotating `id` to the end and
  // dropping the previously-last member into its old position.
  auto it = member_pos_.find(id);
  assert(it != member_pos_.end());
  const size_t pos = it->second;
  const size_t last = members_.size() - 1;
  if (pos != last) {
    members_[pos] = members_[last];
    member_pos_[members_[pos]] = pos;
    members_[last] = id;
    member_pos_[id] = last;
  }
}

double Cluster::AvgSim() const {
  const double n = static_cast<double>(members_.size());
  if (n <= 1.0) return 0.0;
  // Eq. 24.
  return (cr_self_ - ss_) / (n * (n - 1.0));
}

double Cluster::AvgSimIfAdded(DocId id, const SimilarityContext& ctx) const {
  assert(!Contains(id));
  const double n = static_cast<double>(members_.size());
  if (members_.empty()) return 0.0;  // singleton result: avg_sim = 0
  // Eq. 26: [cr_sim(C,C) + 2·cr_sim(C,{d}) − ss(C)] / (|C|(|C|+1)).
  const double cr_cd = representative_.Dot(ctx.Psi(id));
  return (cr_self_ + 2.0 * cr_cd - ss_) / (n * (n + 1.0));
}

double Cluster::AvgSimIfMerged(const Cluster& other) const {
  const double n = static_cast<double>(members_.size() +
                                       other.members_.size());
  if (n <= 1.0) return 0.0;
  // Eq. 25: [cr(C_p,C_p) + 2·cr(C_p,C_q) + cr(C_q,C_q) − ss_p − ss_q] /
  //         [(|C_p|+|C_q|)(|C_p|+|C_q|−1)].
  const double cr_pq = representative_.Dot(other.representative_);
  return (cr_self_ + 2.0 * cr_pq + other.cr_self_ - ss_ - other.ss_) /
         (n * (n - 1.0));
}

void Cluster::MergeFrom(Cluster* other) {
  for (DocId id : other->members_) {
    assert(!Contains(id));
    member_pos_.emplace(id, members_.size());
    members_.push_back(id);
  }
  cr_self_ +=
      2.0 * representative_.Dot(other->representative_) + other->cr_self_;
  ss_ += other->ss_;
  representative_.AddScaled(other->representative_, 1.0);
  other->Clear();
}

void Cluster::Refresh(const SimilarityContext& ctx) {
  SparseVector rep;
  double ss = 0.0;
  for (DocId id : members_) {
    rep.AddScaled(ctx.Psi(id), 1.0);
    ss += ctx.SelfSim(id);
  }
  representative_ = std::move(rep);
  ss_ = ss;
  cr_self_ = representative_.SquaredNorm();
}

void Cluster::Clear() {
  members_.clear();
  member_pos_.clear();
  representative_ = SparseVector();
  cr_self_ = 0.0;
  ss_ = 0.0;
  has_last_leaver_ = false;  // id_ is kept: identity persists while empty
}

double Cluster::AvgSimNaive(const SimilarityContext& ctx) const {
  const size_t n = members_.size();
  if (n <= 1) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += ctx.Sim(members_[i], members_[j]);
    }
  }
  return total / (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace nidc
