#include "nidc/core/first_story.h"

#include <cmath>

namespace nidc {

FirstStoryDetector::FirstStoryDetector(const Corpus* corpus,
                                       ForgettingParams params,
                                       FirstStoryOptions options)
    : model_(corpus, params), options_(options) {}

Result<std::vector<FirstStoryVerdict>> FirstStoryDetector::Observe(
    const std::vector<DocId>& new_docs, DayTime tau) {
  if (tau < model_.now()) {
    return Status::InvalidArgument("observation time precedes model time");
  }
  model_.AdvanceTo(tau);
  for (DocId id : model_.ExpireDocuments()) {
    index_.Remove(model_.corpus().doc(id));
  }

  // Incorporate the batch so one SimilarityContext covers everyone; each
  // newcomer is scored before it enters the index, so it is only compared
  // against strictly earlier documents (pre-batch actives plus earlier
  // batch members). The inverted index prunes the scan to documents that
  // share at least one term — all others have similarity exactly 0.
  model_.AddDocuments(new_docs);
  SimilarityContext ctx(model_);

  std::vector<FirstStoryVerdict> verdicts;
  verdicts.reserve(new_docs.size());
  for (DocId id : new_docs) {
    FirstStoryVerdict verdict;
    verdict.doc = id;
    const Document& doc = model_.corpus().doc(id);
    const double self = ctx.SelfSim(id);
    if (self > 0.0) {
      for (DocId other : index_.Candidates(doc.terms, id)) {
        const double other_self = ctx.SelfSim(other);
        if (other_self <= 0.0) continue;
        const double cosine =
            ctx.Sim(id, other) / std::sqrt(self * other_self);
        if (cosine > verdict.max_similarity) {
          verdict.max_similarity = cosine;
          verdict.nearest = other;
        }
      }
    }
    verdict.is_first_story =
        verdict.max_similarity < options_.novelty_threshold;
    if (verdict.is_first_story) ++num_first_stories_;
    verdicts.push_back(verdict);
    index_.Add(doc);
  }
  return verdicts;
}

}  // namespace nidc
