// Cover-coefficient statistics (Can, ACM TOIS 1993) with the forgetting
// weights folded in — the machinery behind the F²ICM predecessor's seed
// selection and behind the decoupling-sum estimate of the cluster count
// (used by both the F²ICM baseline and the K estimator).
//
// With weighted frequencies w_ik = dw_i·f_ik:
//   α_i = 1 / Σ_k w_ik          (row normalizer)
//   β_k = 1 / Σ_i w_ik          (column normalizer)
//   δ_i = α_i · Σ_k w_ik²·β_k   (decoupling coefficient, = c_ii)
//   ψ_i = 1 − δ_i               (coupling coefficient)
//   n_c = Σ_i δ_i               (estimated number of clusters)
//   p_i = δ_i · ψ_i · Σ_k w_ik  (seed power)

#ifndef NIDC_CORE_COVER_COEFFICIENT_H_
#define NIDC_CORE_COVER_COEFFICIENT_H_

#include <vector>

#include "nidc/forgetting/forgetting_model.h"

namespace nidc {

/// Per-document cover-coefficient statistics over a model's active set.
struct CoverCoefficients {
  std::vector<DocId> docs;
  /// Decoupling coefficient δ_i of each document (index-aligned with docs;
  /// δ_i ∈ (0, 1], 1 when the document shares no terms with anyone).
  std::vector<double> decoupling;
  /// Seed power p_i of each document.
  std::vector<double> seed_power;
  /// Estimated cluster count n_c = Σ δ_i (clamped to >= 1).
  double nc = 1.0;

  /// n_c rounded to an integer cluster count (>= 1).
  size_t EstimatedClusterCount() const;
};

/// Computes the weight-folded cover coefficients for the model's active
/// documents. O(Σ nnz).
CoverCoefficients ComputeCoverCoefficients(const ForgettingModel& model);

}  // namespace nidc

#endif  // NIDC_CORE_COVER_COEFFICIENT_H_
