// A cluster with representative-based O(1) intra-similarity maintenance
// (paper §4.4, Eq. 19–26).
//
// Maintained invariants (up to float drift; re-established by Refresh()):
//   representative_ = Σ_{d∈members} ψ_d               (Eq. 20)
//   cr_self_        = representative_ · representative_  (Eq. 21, p = q)
//   ss_             = Σ_{d∈members} ψ_d · ψ_d            (Eq. 23)
// From these, avg_sim follows via Eq. 24, and the incremental add/remove
// updates use the identities of Eq. 25/26 and their deletion counterparts.

#ifndef NIDC_CORE_CLUSTER_H_
#define NIDC_CORE_CLUSTER_H_

#include <unordered_map>
#include <vector>

#include "nidc/core/novelty_similarity.h"

namespace nidc {

/// One cluster of the extended K-means. Mutation keeps the representative,
/// cr_self and ss synchronized incrementally.
class Cluster {
 public:
  /// Sentinel for a cluster that has never been assigned a stable id.
  static constexpr uint64_t kNoClusterId = ~0ull;

  Cluster() = default;

  /// Adds a document. O(|ψ_d| + |rep|) for the representative merge; the
  /// cr_self update is the Eq. 26 machinery: one dot product.
  void Add(DocId id, const SimilarityContext& ctx);

  /// Removes a member (must be present); the deletion counterpart of Eq. 26.
  /// O(|ψ_d| + |rep|): the member list is swap-and-popped via a position
  /// map, so detach-reattach sweeps never pay a linear membership scan.
  /// Note members() order is therefore *not* insertion order after a
  /// removal.
  void Remove(DocId id, const SimilarityContext& ctx);

  /// avg_sim(C_p) per Eq. 24; defined as 0 for |C| <= 1.
  double AvgSim() const;

  /// avg_sim(C_p ∪ {d}) if `id` were appended (Eq. 26) — does not mutate.
  /// Requires id not to be a member.
  double AvgSimIfAdded(DocId id, const SimilarityContext& ctx) const;

  /// The increase avg_sim(C_p ∪ {d}) − avg_sim(C_p) used by the
  /// paper-literal assignment rule of the extended K-means.
  double GainIfAdded(DocId id, const SimilarityContext& ctx) const {
    return AvgSimIfAdded(id, ctx) - AvgSim();
  }

  /// The increase of this cluster's clustering-index contribution
  /// |C_p|·avg_sim(C_p) (one term of Eq. 17) if `id` were appended — the
  /// G-greedy assignment rule. With S the pairwise-similarity sum
  /// (= cr_self − ss, Eq. 22) and T = cr_sim(C_p, {d}):
  ///   Δg = (S + 2T)/|C| − S/(|C|−1).
  double GainInGIfAdded(DocId id, const SimilarityContext& ctx) const {
    if (members_.empty()) return 0.0;  // an empty cluster stays at g = 0
    return GainInGGivenT(CrSimWithDoc(id, ctx));
  }

  /// Eq. 24 on explicit statistics — shared by the attached accessors below
  /// and the move-only sweep, which evaluates a document's *detached* home
  /// cluster from (n−1, cr', ss') without mutating it.
  static double AvgSimWith(double n, double cr_self, double ss) {
    if (n <= 1.0) return 0.0;
    return (cr_self - ss) / (n * (n - 1.0));
  }

  /// GainGivenT on explicit statistics (Eq. 26 minus Eq. 24). Requires
  /// n >= 1.
  static double GainGivenTWith(double t, double n, double cr_self,
                               double ss) {
    const double after = (cr_self + 2.0 * t - ss) / (n * (n + 1.0));
    return after - AvgSimWith(n, cr_self, ss);
  }

  /// GainInGGivenT on explicit statistics. Requires n >= 1.
  static double GainInGGivenTWith(double t, double n, double cr_self,
                                  double ss) {
    const double pair_sum = cr_self - ss;  // S = n(n−1)·avg_sim (Eq. 22)
    const double g_now = n > 1.0 ? pair_sum / (n - 1.0) : 0.0;
    return (pair_sum + 2.0 * t) / n - g_now;
  }

  /// GainIfAdded with the cross term T = cr_sim(C_p, {d}) supplied by the
  /// caller — the formula the rep-index scoring path shares with the
  /// merge path, so both compute gains identically. Requires |C| >= 1.
  double GainGivenT(double t) const {
    return GainGivenTWith(t, static_cast<double>(members_.size()), cr_self_,
                          ss_);
  }

  /// GainInGIfAdded with T supplied by the caller. Requires |C| >= 1.
  double GainInGGivenT(double t) const {
    return GainInGGivenTWith(t, static_cast<double>(members_.size()),
                             cr_self_, ss_);
  }

  /// Replays the scalar-cache effect of detaching `id` and immediately
  /// re-attaching it — what the legacy sweep does to a document that stays
  /// put — without touching the representative vector. `t_attached` is the
  /// attached cross term c⃗·ψ (what Remove's internal dot product would
  /// yield) and `t_detached` the detached one ((c⃗−ψ)·ψ); both cached
  /// scalars take the same two rounding steps as Remove-then-Add, and the
  /// member list is rotated exactly as swap-and-pop + push_back would
  /// leave it, so subsequent Refresh accumulation order matches too.
  /// Requires |C| >= 2 (a detached singleton goes through Clear instead).
  void ReplayDetachReattach(DocId id, double t_attached, double t_detached,
                            double self);

  /// Similarity of this cluster's representative with a document's ψ —
  /// cr_sim(C_p, {d}) of Eq. 21 for a singleton.
  double CrSimWithDoc(DocId id, const SimilarityContext& ctx) const {
    return representative_.Dot(ctx.Psi(id));
  }

  /// cr_sim(C_p, C_q) (Eq. 21).
  double CrSimWith(const Cluster& other) const {
    return representative_.Dot(other.representative_);
  }

  /// avg_sim(C_p ∪ C_q) for a disjoint cluster, via Eq. 25 — does not
  /// mutate; one representative dot product.
  double AvgSimIfMerged(const Cluster& other) const;

  /// Absorbs a disjoint cluster (Eq. 25 machinery applied for real):
  /// members, representative, cr_self and ss are all merged incrementally.
  /// `other` is left empty.
  void MergeFrom(Cluster* other);

  /// Recomputes representative, cr_self and ss exactly from the members,
  /// clearing accumulated float drift. O(Σ |ψ_d|).
  void Refresh(const SimilarityContext& ctx);

  /// Drops all members and zeroes the cached statistics.
  void Clear();

  /// Naive O(|C|²) recomputation of avg_sim via pairwise sims — the
  /// reference the representative path is verified (and benchmarked)
  /// against.
  double AvgSimNaive(const SimilarityContext& ctx) const;

  /// Stable cluster identity: unlike the positional index within a
  /// ClusterSet, the id survives sweeps and is minted fresh when an
  /// emptied cluster is reseeded by a *different* document — so telemetry
  /// that matches clusters across steps (topic drift, churn, event logs)
  /// never confuses a reseeded slot with the topic that used to live
  /// there. Assigned by ClusterSet; kNoClusterId until then.
  uint64_t id() const { return id_; }
  void set_id(uint64_t id) { id_ = id; }

  /// True when re-populating this (empty) cluster with `id` continues its
  /// previous identity: the cluster was emptied by this very document
  /// leaving, i.e. a detach/re-attach round trip of its only member. Any
  /// other document reseeding the slot starts a new topic.
  bool ReseedContinuesIdentity(DocId id) const {
    return has_last_leaver_ && last_leaver_ == id;
  }

  bool Contains(DocId id) const { return member_pos_.contains(id); }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  /// Members in unspecified (but deterministic) order — see Remove().
  const std::vector<DocId>& members() const { return members_; }

  const SparseVector& representative() const { return representative_; }
  double cr_self() const { return cr_self_; }
  double ss() const { return ss_; }

 private:
  std::vector<DocId> members_;
  std::unordered_map<DocId, size_t> member_pos_;  // id → index in members_
  SparseVector representative_;
  double cr_self_ = 0.0;
  double ss_ = 0.0;

  uint64_t id_ = kNoClusterId;
  // The document whose removal emptied the cluster, while it stays empty
  // (see ReseedContinuesIdentity). Cleared by the next Add.
  DocId last_leaver_ = 0;
  bool has_last_leaver_ = false;
};

}  // namespace nidc

#endif  // NIDC_CORE_CLUSTER_H_
