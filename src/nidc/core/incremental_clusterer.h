// Drivers for the paper's two processing regimes.
//
// IncrementalClusterer implements §5.2: each step ingests newly arrived
// documents, expires stale ones (dw < ε), updates statistics incrementally
// (§5.1), and re-clusters seeded from the previous result.
//
// BatchClusterer is the non-incremental arm of Experiment 1: every step
// rebuilds all statistics from scratch and clusters from a random start.

#ifndef NIDC_CORE_INCREMENTAL_CLUSTERER_H_
#define NIDC_CORE_INCREMENTAL_CLUSTERER_H_

#include <memory>
#include <optional>
#include <vector>

#include "nidc/core/extended_kmeans.h"
#include "nidc/forgetting/forgetting_model.h"

namespace nidc::obs {
class ClusterHealthMonitor;
}  // namespace nidc::obs

namespace nidc {

/// Outcome of one processing step, with the two phase timings the paper's
/// Table 1 reports separately.
struct StepResult {
  ClusteringResult clustering;
  std::vector<DocId> expired;
  size_t num_new = 0;
  size_t num_active = 0;
  double stats_update_seconds = 0.0;
  double clustering_seconds = 0.0;

  /// Clustering telemetry, duplicated from `clustering` so step-level
  /// consumers (CLI digests, JSONL exports) need not reach into the full
  /// result: repetition sweeps run, outlier-list size, and the final
  /// clustering index G.
  int iterations = 0;
  size_t num_outliers = 0;
  double final_g = 0.0;
};

/// Options for the incremental driver.
struct IncrementalOptions {
  ExtendedKMeansOptions kmeans;
  /// How step N+1 is seeded from step N's result (first step: random).
  SeedMode reseed_mode = SeedMode::kMembership;

  /// Telemetry sink for step-level metrics (doc churn, phase timings,
  /// vocabulary/tdw gauges, thread-pool utilization); also propagated to
  /// the K-means run unless `kmeans.metrics` is set explicitly. Null (the
  /// default) disables all instrumentation.
  obs::MetricsRegistry* metrics = nullptr;

  /// Lifecycle-event sink (see obs/event_log.h): the step loop emits
  /// doc_expired here and propagates the log to the K-means run (cluster
  /// created/emptied/reseeded, doc moves) unless `kmeans.events` is set
  /// explicitly. Null (the default) emits nothing.
  obs::EventLog* events = nullptr;

  /// Per-step semantic health monitor (topic drift, membership churn,
  /// outlier/G EWMAs — see obs/cluster_health.h). When set, the driver
  /// builds a StepObservation from every completed step and feeds it; null
  /// (the default) skips the observation build entirely.
  obs::ClusterHealthMonitor* health = nullptr;

  /// Decision-provenance sink (see obs/provenance.h): stamped with the
  /// step number and propagated to the K-means run unless
  /// `kmeans.provenance` is set explicitly, so every record answers "why
  /// did doc D land in cluster C at step S". Null (the default) records
  /// nothing.
  obs::ProvenanceLog* provenance = nullptr;
};

/// Stateful on-line clusterer (§5.2).
class IncrementalClusterer {
 public:
  IncrementalClusterer(const Corpus* corpus, ForgettingParams params,
                       IncrementalOptions options);

  /// Processes the batch of documents acquired up to time `tau`:
  ///   1. advance the clock and incorporate `new_docs` (§5.2 step 1),
  ///   2. expire documents with dw < ε and update statistics (step 2),
  ///   3. cluster, seeded from the previous result (step 3).
  /// Rejects inputs that ValidateStepInputs rejects.
  Result<StepResult> Step(const std::vector<DocId>& new_docs, DayTime tau);

  /// Checks a prospective step without applying it: `tau` must be finite
  /// and >= the current model time (no time travel), and every id must
  /// name a corpus document that is not yet active (no duplicates within
  /// the batch either). Returns InvalidArgument describing the first
  /// violation. The durability layer calls this before logging a step to
  /// its write-ahead log so rejected inputs never enter the log.
  Status ValidateStepInputs(const std::vector<DocId>& new_docs,
                            DayTime tau) const;

  /// The most recent clustering, if any step has run.
  const std::optional<ClusteringResult>& last_result() const {
    return last_result_;
  }

  /// Number of Step() calls applied so far (including any accounted by a
  /// restored snapshot). Also the offset of the per-step random-seed
  /// stream, which is why snapshots persist it.
  uint64_t step_count() const { return step_count_; }

  /// Reconstructs internal state from a persisted snapshot (see
  /// state_io.h): rebuilds the statistics for `active` at clock `now`
  /// (exact up to last-bit rounding, since dw ≡ λ^(now−T)), installs
  /// `last` as the seeding result and recomputes its cluster
  /// representatives from the current ψ. Rejects duplicate or unknown
  /// active ids. `step_count` restores the seed stream; when nullopt a
  /// legacy heuristic (1 if `last` is present, else 0) applies.
  Status RestoreState(DayTime now, const std::vector<DocId>& active,
                      std::optional<ClusteringResult> last,
                      std::optional<uint64_t> step_count = std::nullopt);

  /// Restores from a bit-exact model snapshot (ExactModelState): every
  /// subsequent Step computes exactly what the original instance would
  /// have computed — the foundation of the durability layer's
  /// recovery-equivalence guarantee.
  Status RestoreExact(const ExactModelState& model_state,
                      std::optional<ClusteringResult> last,
                      uint64_t step_count);

  ForgettingModel& model() { return model_; }
  const ForgettingModel& model() const { return model_; }
  const IncrementalOptions& options() const { return options_; }

 private:
  /// Recomputes `last_result_`'s representatives/avg_sims from the current
  /// model (they are derived state; snapshots do not carry them).
  Status RecomputeSeedDerivedState();

  ForgettingModel model_;
  IncrementalOptions options_;
  std::optional<ClusteringResult> last_result_;
  uint64_t step_count_ = 0;
};

/// Stateless from-scratch driver (non-incremental arm of Experiment 1).
class BatchClusterer {
 public:
  BatchClusterer(const Corpus* corpus, ForgettingParams params,
                 ExtendedKMeansOptions kmeans);

  /// Rebuilds all statistics from scratch for `docs` at time `tau`, expires
  /// documents below ε, then clusters from a random start.
  Result<StepResult> Run(const std::vector<DocId>& docs, DayTime tau);

  const ForgettingModel& model() const { return model_; }

 private:
  ForgettingModel model_;
  ExtendedKMeansOptions kmeans_;
};

}  // namespace nidc

#endif  // NIDC_CORE_INCREMENTAL_CLUSTERER_H_
