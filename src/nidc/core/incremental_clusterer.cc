#include "nidc/core/incremental_clusterer.h"

#include "nidc/util/stopwatch.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

IncrementalClusterer::IncrementalClusterer(const Corpus* corpus,
                                           ForgettingParams params,
                                           IncrementalOptions options)
    : model_(corpus, params), options_(options) {}

Result<StepResult> IncrementalClusterer::Step(
    const std::vector<DocId>& new_docs, DayTime tau) {
  if (tau < model_.now()) {
    return Status::InvalidArgument("step time precedes model time");
  }
  StepResult result;

  // Phase 1: incremental statistics update (§5.1; §5.2 steps 1–2).
  Stopwatch stats_timer;
  model_.AdvanceTo(tau);
  model_.AddDocuments(new_docs);
  result.expired = model_.ExpireDocuments();
  result.num_new = new_docs.size();
  result.num_active = model_.num_active();
  result.stats_update_seconds = stats_timer.ElapsedSeconds();

  if (model_.num_active() == 0) {
    return Status::FailedPrecondition("no active documents to cluster");
  }

  // Phase 2: clustering, seeded from the previous result (§5.2 step 3).
  Stopwatch cluster_timer;
  SimilarityContext ctx(model_,
                        ThreadPool::Resolve(options_.kmeans.num_threads));
  std::optional<KMeansSeeds> seeds;
  ExtendedKMeansOptions kmeans = options_.kmeans;
  // Vary the random-seed stream per step so repeated random inits differ.
  kmeans.seed = options_.kmeans.seed + step_count_;
  if (last_result_) {
    KMeansSeeds s;
    s.mode = options_.reseed_mode;
    if (s.mode == SeedMode::kMembership) {
      s.memberships = last_result_->clusters;
    } else if (s.mode == SeedMode::kRepresentatives) {
      s.representatives = last_result_->representatives;
    }
    seeds = std::move(s);
  }
  Result<ClusteringResult> clustering =
      RunExtendedKMeans(ctx, model_.active_docs(), kmeans, seeds);
  if (!clustering.ok()) return clustering.status();
  result.clustering_seconds = cluster_timer.ElapsedSeconds();

  result.clustering = std::move(clustering).value();
  last_result_ = result.clustering;
  ++step_count_;
  return result;
}

Status IncrementalClusterer::RestoreState(
    DayTime now, const std::vector<DocId>& active,
    std::optional<ClusteringResult> last) {
  model_.RebuildFromScratch(active, now);
  last_result_ = std::move(last);
  if (last_result_ && model_.num_active() > 0) {
    // Recompute representatives (Eq. 20) for the restored memberships —
    // they are derived state, so snapshots do not carry them.
    SimilarityContext ctx(model_,
                          ThreadPool::Resolve(options_.kmeans.num_threads));
    last_result_->representatives.assign(last_result_->clusters.size(),
                                         SparseVector());
    last_result_->avg_sims.assign(last_result_->clusters.size(), 0.0);
    for (size_t p = 0; p < last_result_->clusters.size(); ++p) {
      Cluster cluster;
      for (DocId id : last_result_->clusters[p]) {
        if (!ctx.Contains(id)) {
          return Status::InvalidArgument(
              "restored cluster references inactive document " +
              std::to_string(id));
        }
        cluster.Add(id, ctx);
      }
      last_result_->representatives[p] = cluster.representative();
      last_result_->avg_sims[p] = cluster.AvgSim();
    }
  }
  // Step numbering continues from the restored result's presence.
  step_count_ = last_result_ ? 1 : 0;
  return Status::OK();
}

BatchClusterer::BatchClusterer(const Corpus* corpus, ForgettingParams params,
                               ExtendedKMeansOptions kmeans)
    : model_(corpus, params), kmeans_(kmeans) {}

Result<StepResult> BatchClusterer::Run(const std::vector<DocId>& docs,
                                       DayTime tau) {
  StepResult result;

  // Phase 1: from-scratch statistics computation over every document.
  Stopwatch stats_timer;
  model_.RebuildFromScratch(docs, tau);
  result.expired = model_.ExpireDocuments();
  result.num_new = docs.size();
  result.num_active = model_.num_active();
  result.stats_update_seconds = stats_timer.ElapsedSeconds();

  if (model_.num_active() == 0) {
    return Status::FailedPrecondition("no active documents to cluster");
  }

  // Phase 2: clustering from a random start.
  Stopwatch cluster_timer;
  SimilarityContext ctx(model_, ThreadPool::Resolve(kmeans_.num_threads));
  Result<ClusteringResult> clustering =
      RunExtendedKMeans(ctx, model_.active_docs(), kmeans_);
  if (!clustering.ok()) return clustering.status();
  result.clustering_seconds = cluster_timer.ElapsedSeconds();

  result.clustering = std::move(clustering).value();
  return result;
}

}  // namespace nidc
