#include "nidc/core/incremental_clusterer.h"

#include <cmath>
#include <optional>
#include <unordered_set>

#include "nidc/obs/cluster_health.h"
#include "nidc/obs/event_log.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/provenance.h"
#include "nidc/obs/trace.h"
#include "nidc/util/stopwatch.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

namespace {

// Shared histogram bucket bounds for the per-step phase timings,
// constructed once instead of on every RecordStepMetrics call.
const std::vector<double>& SecondsBuckets() {
  static const std::vector<double> kSecondsBuckets = {1e-4, 1e-3, 1e-2, 0.1,
                                                      0.5,  1.0,  5.0,  30.0};
  return kSecondsBuckets;
}

// Publishes the per-step telemetry shared by the incremental and batch
// drivers: document churn, phase timings, model gauges (vocabulary size,
// tdw) and process-wide thread-pool utilization.
void RecordStepMetrics(obs::MetricsRegistry* metrics,
                       const ForgettingModel& model,
                       const StepResult& result) {
  if (metrics == nullptr) return;
  metrics->GetCounter("step.count")->Increment();
  metrics->GetCounter("step.docs_new")->Increment(result.num_new);
  metrics->GetCounter("step.docs_expired")->Increment(result.expired.size());
  metrics->GetGauge("step.active_docs")
      ->Set(static_cast<double>(result.num_active));
  metrics->GetGauge("step.expired")
      ->Set(static_cast<double>(result.expired.size()));
  const std::vector<double>& kSecondsBuckets = SecondsBuckets();
  metrics->GetHistogram("step.stats_seconds", kSecondsBuckets)
      ->Observe(result.stats_update_seconds);
  metrics->GetHistogram("step.clustering_seconds", kSecondsBuckets)
      ->Observe(result.clustering_seconds);
  metrics->GetGauge("term_stats.vocab_size")
      ->Set(static_cast<double>(model.NumTerms()));
  metrics->GetGauge("term_stats.tdw")->Set(model.TotalWeight());
  const ThreadPool::Stats pool_stats = ThreadPool::GlobalStats();
  metrics->GetGauge("thread_pool.tasks_executed")
      ->Set(static_cast<double>(pool_stats.tasks_executed));
  metrics->GetGauge("thread_pool.parallel_fors")
      ->Set(static_cast<double>(pool_stats.parallel_fors));
  metrics->GetGauge("thread_pool.queue_high_water")
      ->Set(static_cast<double>(pool_stats.queue_high_water));
}

// Copies the clustering digest into the step-level convenience fields.
void FillClusteringDigest(StepResult* result) {
  result->iterations = result->clustering.iterations;
  result->num_outliers = result->clustering.outliers.size();
  result->final_g = result->clustering.g;
}

// Translates a completed step into the obs-layer observation the health
// monitor consumes (non-empty clusters only; ids/vectors/memberships are
// copied, which is why the build is skipped when no monitor is attached).
void FeedHealthMonitor(obs::ClusterHealthMonitor* health, uint64_t step,
                       const StepResult& result) {
  if (health == nullptr) return;
  obs::StepObservation observation;
  observation.step = step;
  observation.g = result.final_g;
  observation.num_active = result.num_active;
  observation.num_outliers = result.num_outliers;
  const ClusteringResult& clustering = result.clustering;
  for (size_t p = 0; p < clustering.clusters.size(); ++p) {
    if (clustering.clusters[p].empty()) continue;
    obs::ClusterObservation cluster;
    cluster.id = clustering.cluster_ids[p];
    cluster.representative = clustering.representatives[p];
    cluster.avg_sim = clustering.avg_sims[p];
    cluster.members.assign(clustering.clusters[p].begin(),
                           clustering.clusters[p].end());
    observation.clusters.push_back(std::move(cluster));
  }
  health->ObserveStep(observation);
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(const Corpus* corpus,
                                           ForgettingParams params,
                                           IncrementalOptions options)
    : model_(corpus, params), options_(options) {}

Status IncrementalClusterer::ValidateStepInputs(
    const std::vector<DocId>& new_docs, DayTime tau) const {
  if (!std::isfinite(tau)) {
    return Status::InvalidArgument("step time must be finite");
  }
  if (tau < model_.now()) {
    return Status::InvalidArgument(
        "step time " + std::to_string(tau) + " precedes model time " +
        std::to_string(model_.now()));
  }
  std::unordered_set<DocId> batch;
  batch.reserve(new_docs.size());
  for (DocId id : new_docs) {
    if (id >= model_.corpus().size()) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " is beyond the corpus");
    }
    if (model_.IsActive(id)) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " is already active");
    }
    if (!batch.insert(id).second) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " appears twice in the batch");
    }
  }
  return Status::OK();
}

Result<StepResult> IncrementalClusterer::Step(
    const std::vector<DocId>& new_docs, DayTime tau) {
  NIDC_RETURN_NOT_OK(ValidateStepInputs(new_docs, tau));
  NIDC_SPAN("clusterer.step");
  StepResult result;
  if (options_.events != nullptr) options_.events->SetStep(step_count_);
  if (options_.provenance != nullptr) {
    options_.provenance->SetStep(step_count_);
  }

  // Phase 1: incremental statistics update (§5.1; §5.2 steps 1–2).
  Stopwatch stats_timer;
  {
    NIDC_SPAN("step.stats_update");
    model_.AdvanceTo(tau);
    model_.AddDocuments(new_docs);
    result.expired = model_.ExpireDocuments();
  }
  if (options_.events != nullptr) {
    for (DocId id : result.expired) {
      obs::Event expired;
      expired.type = obs::EventType::kDocExpired;
      expired.doc = id;
      options_.events->Emit(expired);
    }
  }
  result.num_new = new_docs.size();
  result.num_active = model_.num_active();
  result.stats_update_seconds = stats_timer.ElapsedSeconds();

  if (model_.num_active() == 0) {
    return Status::FailedPrecondition("no active documents to cluster");
  }

  // Phase 2: clustering, seeded from the previous result (§5.2 step 3).
  Stopwatch cluster_timer;
  std::optional<SimilarityContext> ctx;
  {
    NIDC_SPAN("step.context_build");
    ctx.emplace(model_, ThreadPool::Resolve(options_.kmeans.num_threads));
  }
  std::optional<KMeansSeeds> seeds;
  ExtendedKMeansOptions kmeans = options_.kmeans;
  // Vary the random-seed stream per step so repeated random inits differ.
  kmeans.seed = options_.kmeans.seed + step_count_;
  if (kmeans.metrics == nullptr) kmeans.metrics = options_.metrics;
  if (kmeans.events == nullptr) kmeans.events = options_.events;
  if (kmeans.provenance == nullptr) kmeans.provenance = options_.provenance;
  if (last_result_) {
    KMeansSeeds s;
    s.mode = options_.reseed_mode;
    if (s.mode == SeedMode::kMembership) {
      s.memberships = last_result_->clusters;
    } else if (s.mode == SeedMode::kRepresentatives) {
      s.representatives = last_result_->representatives;
    }
    // Surviving clusters keep their stable ids; the run mints fresh ones
    // from where the previous run stopped, so ids stay globally monotone.
    s.cluster_ids = last_result_->cluster_ids;
    kmeans.first_cluster_id = last_result_->next_cluster_id;
    seeds = std::move(s);
  }
  Result<ClusteringResult> clustering =
      RunExtendedKMeans(*ctx, model_.active_docs(), kmeans, seeds);
  if (!clustering.ok()) return clustering.status();
  result.clustering_seconds = cluster_timer.ElapsedSeconds();

  result.clustering = std::move(clustering).value();
  FillClusteringDigest(&result);
  RecordStepMetrics(kmeans.metrics, model_, result);
  FeedHealthMonitor(options_.health, step_count_, result);
  last_result_ = result.clustering;
  ++step_count_;
  return result;
}

namespace {

// Rejects active lists with repeated entries or ids outside the corpus —
// a corrupt snapshot must fail restoration instead of corrupting the
// statistics it seeds.
Status ValidateActiveIds(const Corpus& corpus,
                         const std::vector<DocId>& active) {
  std::unordered_set<DocId> seen;
  seen.reserve(active.size());
  for (DocId id : active) {
    if (id >= corpus.size()) {
      return Status::InvalidArgument("active document " +
                                     std::to_string(id) +
                                     " is beyond the corpus");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("active document " +
                                     std::to_string(id) +
                                     " is listed twice");
    }
  }
  return Status::OK();
}

}  // namespace

Status IncrementalClusterer::RecomputeSeedDerivedState() {
  if (!last_result_ || model_.num_active() == 0) return Status::OK();
  // Recompute representatives (Eq. 20) for the restored memberships —
  // they are derived state, so snapshots do not carry them.
  SimilarityContext ctx(model_,
                        ThreadPool::Resolve(options_.kmeans.num_threads));
  last_result_->representatives.assign(last_result_->clusters.size(),
                                       SparseVector());
  last_result_->avg_sims.assign(last_result_->clusters.size(), 0.0);
  for (size_t p = 0; p < last_result_->clusters.size(); ++p) {
    Cluster cluster;
    for (DocId id : last_result_->clusters[p]) {
      if (!ctx.Contains(id)) {
        return Status::InvalidArgument(
            "restored cluster references inactive document " +
            std::to_string(id));
      }
      cluster.Add(id, ctx);
    }
    last_result_->representatives[p] = cluster.representative();
    last_result_->avg_sims[p] = cluster.AvgSim();
  }
  return Status::OK();
}

Status IncrementalClusterer::RestoreState(
    DayTime now, const std::vector<DocId>& active,
    std::optional<ClusteringResult> last,
    std::optional<uint64_t> step_count) {
  NIDC_RETURN_NOT_OK(ValidateActiveIds(model_.corpus(), active));
  model_.RebuildFromScratch(active, now);
  last_result_ = std::move(last);
  NIDC_RETURN_NOT_OK(RecomputeSeedDerivedState());
  // Without a persisted count, step numbering continues from the restored
  // result's presence (legacy v1 snapshots).
  step_count_ = step_count.value_or(last_result_ ? 1 : 0);
  return Status::OK();
}

Status IncrementalClusterer::RestoreExact(
    const ExactModelState& model_state, std::optional<ClusteringResult> last,
    uint64_t step_count) {
  NIDC_RETURN_NOT_OK(model_.RestoreExact(model_state));
  last_result_ = std::move(last);
  NIDC_RETURN_NOT_OK(RecomputeSeedDerivedState());
  step_count_ = step_count;
  return Status::OK();
}

BatchClusterer::BatchClusterer(const Corpus* corpus, ForgettingParams params,
                               ExtendedKMeansOptions kmeans)
    : model_(corpus, params), kmeans_(kmeans) {}

Result<StepResult> BatchClusterer::Run(const std::vector<DocId>& docs,
                                       DayTime tau) {
  NIDC_SPAN("clusterer.batch_run");
  StepResult result;

  // Phase 1: from-scratch statistics computation over every document.
  Stopwatch stats_timer;
  {
    NIDC_SPAN("step.stats_update");
    model_.RebuildFromScratch(docs, tau);
    result.expired = model_.ExpireDocuments();
  }
  result.num_new = docs.size();
  result.num_active = model_.num_active();
  result.stats_update_seconds = stats_timer.ElapsedSeconds();

  if (model_.num_active() == 0) {
    return Status::FailedPrecondition("no active documents to cluster");
  }

  // Phase 2: clustering from a random start.
  Stopwatch cluster_timer;
  std::optional<SimilarityContext> ctx;
  {
    NIDC_SPAN("step.context_build");
    ctx.emplace(model_, ThreadPool::Resolve(kmeans_.num_threads));
  }
  Result<ClusteringResult> clustering =
      RunExtendedKMeans(*ctx, model_.active_docs(), kmeans_);
  if (!clustering.ok()) return clustering.status();
  result.clustering_seconds = cluster_timer.ElapsedSeconds();

  result.clustering = std::move(clustering).value();
  FillClusteringDigest(&result);
  RecordStepMetrics(kmeans_.metrics, model_, result);
  return result;
}

}  // namespace nidc
