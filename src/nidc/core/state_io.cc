#include "nidc/core/state_io.h"

#include <fstream>
#include <sstream>

#include "nidc/util/string_util.h"

namespace nidc {

namespace {

void EmitIds(std::ostringstream& out, const char* tag,
             const std::vector<DocId>& ids) {
  out << tag << ' ' << ids.size();
  for (DocId id : ids) out << ' ' << id;
  out << '\n';
}

// Reads "<tag> <n> <id>*n" from the stream.
bool ReadIds(std::istringstream& in, const std::string& expected_tag,
             std::vector<DocId>* ids) {
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != expected_tag) return false;
  ids->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*ids)[i])) return false;
  }
  return true;
}

}  // namespace

ClustererState CaptureState(const IncrementalClusterer& clusterer) {
  ClustererState state;
  state.params = clusterer.model().params();
  state.now = clusterer.model().now();
  state.active_docs = clusterer.model().active_docs();
  state.last_result = clusterer.last_result();
  return state;
}

std::string SerializeState(const ClustererState& state) {
  std::ostringstream out;
  out.precision(17);
  out << "nidc-state v1\n";
  out << "params " << state.params.half_life_days << ' '
      << state.params.life_span_days << '\n';
  out << "now " << state.now << '\n';
  EmitIds(out, "active", state.active_docs);
  if (!state.last_result) {
    out << "clusters none\n";
    return out.str();
  }
  const ClusteringResult& r = *state.last_result;
  out << "clusters " << r.clusters.size() << '\n';
  for (const auto& members : r.clusters) {
    EmitIds(out, "cluster", members);
  }
  EmitIds(out, "outliers", r.outliers);
  out << "g " << r.g << '\n';
  out << "iterations " << r.iterations << ' ' << (r.converged ? 1 : 0)
      << '\n';
  return out.str();
}

Result<ClustererState> ParseState(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  std::string version;
  if (!(in >> word >> version) || word != "nidc-state" || version != "v1") {
    return Status::InvalidArgument("not a nidc-state v1 snapshot");
  }
  ClustererState state;
  if (!(in >> word >> state.params.half_life_days >>
        state.params.life_span_days) ||
      word != "params" || !state.params.Validate().ok()) {
    return Status::InvalidArgument("malformed params line");
  }
  if (!(in >> word >> state.now) || word != "now") {
    return Status::InvalidArgument("malformed now line");
  }
  if (!ReadIds(in, "active", &state.active_docs)) {
    return Status::InvalidArgument("malformed active list");
  }
  std::string count_token;
  if (!(in >> word >> count_token) || word != "clusters") {
    return Status::InvalidArgument("malformed clusters header");
  }
  if (count_token == "none") return state;

  ClusteringResult result;
  size_t num_clusters = 0;
  try {
    num_clusters = static_cast<size_t>(std::stoul(count_token));
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad cluster count: " + count_token);
  }
  result.clusters.resize(num_clusters);
  for (size_t p = 0; p < num_clusters; ++p) {
    if (!ReadIds(in, "cluster", &result.clusters[p])) {
      return Status::InvalidArgument("malformed cluster member list");
    }
  }
  if (!ReadIds(in, "outliers", &result.outliers)) {
    return Status::InvalidArgument("malformed outlier list");
  }
  int converged = 0;
  if (!(in >> word >> result.g) || word != "g") {
    return Status::InvalidArgument("malformed g line");
  }
  if (!(in >> word >> result.iterations >> converged) ||
      word != "iterations") {
    return Status::InvalidArgument("malformed iterations line");
  }
  result.converged = converged != 0;
  state.last_result = std::move(result);
  return state;
}

Status SaveState(const ClustererState& state, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeState(state);
  out.flush();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<ClustererState> LoadState(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseState(buffer.str());
}

Result<std::unique_ptr<IncrementalClusterer>> RestoreClusterer(
    const Corpus* corpus, IncrementalOptions options,
    const ClustererState& state) {
  NIDC_RETURN_NOT_OK(state.params.Validate());
  for (DocId id : state.active_docs) {
    if (id >= corpus->size()) {
      return Status::InvalidArgument(
          "snapshot references document " + std::to_string(id) +
          " beyond the corpus (wrong corpus for this snapshot?)");
    }
    if (corpus->doc(id).time > state.now) {
      return Status::InvalidArgument(
          "snapshot clock precedes document " + std::to_string(id) +
          "'s acquisition time");
    }
  }
  auto clusterer = std::make_unique<IncrementalClusterer>(
      corpus, state.params, options);
  NIDC_RETURN_NOT_OK(clusterer->RestoreState(
      state.now, state.active_docs, state.last_result));
  return clusterer;
}

}  // namespace nidc
