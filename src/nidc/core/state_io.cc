#include "nidc/core/state_io.h"

#include <cstdlib>
#include <sstream>

#include "nidc/util/string_util.h"

namespace nidc {

namespace {

void EmitIds(std::ostringstream& out, const char* tag,
             const std::vector<DocId>& ids) {
  out << tag << ' ' << ids.size();
  for (DocId id : ids) out << ' ' << id;
  out << '\n';
}

// Reads "<tag> <n> <id>*n" from the stream.
bool ReadIds(std::istringstream& in, const std::string& expected_tag,
             std::vector<DocId>* ids) {
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != expected_tag) return false;
  ids->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*ids)[i])) return false;
  }
  return true;
}

// Hex floats (%a) round-trip doubles bit-exactly; iostream extraction does
// not parse them, so exact-section values go through strtod.
bool ReadHexDouble(std::istringstream& in, double* value) {
  std::string token;
  if (!(in >> token)) return false;
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

template <typename Id>
void EmitExactPairs(std::ostringstream& out, const char* tag,
                    const std::vector<std::pair<Id, double>>& pairs) {
  out << tag << ' ' << pairs.size();
  for (const auto& [id, value] : pairs) {
    out << ' ' << id << ' ' << StringPrintf("%a", value);
  }
  out << '\n';
}

template <typename Id>
bool ReadExactPairs(std::istringstream& in, const std::string& expected_tag,
                    std::vector<std::pair<Id, double>>* pairs) {
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != expected_tag) return false;
  pairs->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*pairs)[i].first)) return false;
    if (!ReadHexDouble(in, &(*pairs)[i].second)) return false;
  }
  return true;
}

Status ParseExactSection(std::istringstream& in, ExactModelState* exact) {
  std::string word;
  if (!(in >> word) || word != "now" || !ReadHexDouble(in, &exact->now)) {
    return Status::InvalidArgument("malformed exact now field");
  }
  if (!(in >> word) || word != "tdw" || !ReadHexDouble(in, &exact->tdw)) {
    return Status::InvalidArgument("malformed exact tdw field");
  }
  if (!ReadExactPairs(in, "weights", &exact->weights)) {
    return Status::InvalidArgument("malformed exact weights list");
  }
  if (!(in >> word) || word != "scale" ||
      !ReadHexDouble(in, &exact->term_scale)) {
    return Status::InvalidArgument("malformed exact scale field");
  }
  if (!ReadExactPairs(in, "terms", &exact->term_sums)) {
    return Status::InvalidArgument("malformed exact terms list");
  }
  return Status::OK();
}

Status ParseResultSection(std::istringstream& in,
                          const std::string& count_token,
                          ClusteringResult* result) {
  size_t num_clusters = 0;
  try {
    num_clusters = static_cast<size_t>(std::stoul(count_token));
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad cluster count: " + count_token);
  }
  result->clusters.resize(num_clusters);
  for (size_t p = 0; p < num_clusters; ++p) {
    if (!ReadIds(in, "cluster", &result->clusters[p])) {
      return Status::InvalidArgument("malformed cluster member list");
    }
  }
  if (!ReadIds(in, "outliers", &result->outliers)) {
    return Status::InvalidArgument("malformed outlier list");
  }
  std::string word;
  int converged = 0;
  if (!(in >> word >> result->g) || word != "g") {
    return Status::InvalidArgument("malformed g line");
  }
  if (!(in >> word >> result->iterations >> converged) ||
      word != "iterations") {
    return Status::InvalidArgument("malformed iterations line");
  }
  result->converged = converged != 0;
  return Status::OK();
}

}  // namespace

ClustererState CaptureState(const IncrementalClusterer& clusterer) {
  ClustererState state;
  state.params = clusterer.model().params();
  state.now = clusterer.model().now();
  state.active_docs = clusterer.model().active_docs();
  state.last_result = clusterer.last_result();
  state.step_count = clusterer.step_count();
  state.exact = clusterer.model().CaptureExact();
  return state;
}

std::string SerializeState(const ClustererState& state) {
  std::ostringstream out;
  out.precision(17);
  out << "nidc-state v2\n";
  out << "params " << state.params.half_life_days << ' '
      << state.params.life_span_days << '\n';
  out << "now " << state.now << '\n';
  out << "steps " << state.step_count << '\n';
  EmitIds(out, "active", state.active_docs);
  if (!state.last_result) {
    out << "clusters none\n";
  } else {
    const ClusteringResult& r = *state.last_result;
    out << "clusters " << r.clusters.size() << '\n';
    for (const auto& members : r.clusters) {
      EmitIds(out, "cluster", members);
    }
    EmitIds(out, "outliers", r.outliers);
    out << "g " << r.g << '\n';
    out << "iterations " << r.iterations << ' ' << (r.converged ? 1 : 0)
        << '\n';
  }
  if (state.exact) {
    const ExactModelState& exact = *state.exact;
    out << "exact\n";
    out << "now " << StringPrintf("%a", exact.now) << " tdw "
        << StringPrintf("%a", exact.tdw) << '\n';
    EmitExactPairs(out, "weights", exact.weights);
    out << "scale " << StringPrintf("%a", exact.term_scale) << '\n';
    EmitExactPairs(out, "terms", exact.term_sums);
  }
  return out.str();
}

Result<ClustererState> ParseState(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  std::string version;
  if (!(in >> word >> version) || word != "nidc-state" ||
      (version != "v1" && version != "v2")) {
    return Status::InvalidArgument("not a nidc-state v1/v2 snapshot");
  }
  ClustererState state;
  if (!(in >> word >> state.params.half_life_days >>
        state.params.life_span_days) ||
      word != "params" || !state.params.Validate().ok()) {
    return Status::InvalidArgument("malformed params line");
  }
  if (!(in >> word >> state.now) || word != "now") {
    return Status::InvalidArgument("malformed now line");
  }
  if (version == "v2") {
    if (!(in >> word >> state.step_count) || word != "steps") {
      return Status::InvalidArgument("malformed steps line");
    }
  }
  if (!ReadIds(in, "active", &state.active_docs)) {
    return Status::InvalidArgument("malformed active list");
  }
  std::string count_token;
  if (!(in >> word >> count_token) || word != "clusters") {
    return Status::InvalidArgument("malformed clusters header");
  }
  if (count_token != "none") {
    ClusteringResult result;
    NIDC_RETURN_NOT_OK(ParseResultSection(in, count_token, &result));
    state.last_result = std::move(result);
  }
  if (version == "v1") {
    // v1 predates the persisted step counter; mirror the legacy restore
    // heuristic so old snapshots resume with the seed stream they used to.
    state.step_count = state.last_result ? 1 : 0;
    return state;
  }
  if (in >> word) {
    if (word != "exact") {
      return Status::InvalidArgument("unexpected trailing section: " + word);
    }
    ExactModelState exact;
    NIDC_RETURN_NOT_OK(ParseExactSection(in, &exact));
    if (exact.weights.size() != state.active_docs.size()) {
      return Status::InvalidArgument(
          "exact weights disagree with the active list");
    }
    for (size_t i = 0; i < exact.weights.size(); ++i) {
      if (exact.weights[i].first != state.active_docs[i]) {
        return Status::InvalidArgument(
            "exact weights disagree with the active list");
      }
    }
    state.exact = std::move(exact);
  }
  return state;
}

Status SaveState(const ClustererState& state, const std::string& path,
                 Env* env) {
  if (env == nullptr) env = Env::Default();
  return AtomicWriteFile(env, path, SerializeState(state));
}

Result<ClustererState> LoadState(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return ParseState(*contents);
}

Result<std::unique_ptr<IncrementalClusterer>> RestoreClusterer(
    const Corpus* corpus, IncrementalOptions options,
    const ClustererState& state) {
  NIDC_RETURN_NOT_OK(state.params.Validate());
  for (DocId id : state.active_docs) {
    if (id >= corpus->size()) {
      return Status::InvalidArgument(
          "snapshot references document " + std::to_string(id) +
          " beyond the corpus (wrong corpus for this snapshot?)");
    }
    if (corpus->doc(id).time > state.now) {
      return Status::InvalidArgument(
          "snapshot clock precedes document " + std::to_string(id) +
          "'s acquisition time");
    }
  }
  auto clusterer = std::make_unique<IncrementalClusterer>(
      corpus, state.params, options);
  if (state.exact) {
    NIDC_RETURN_NOT_OK(clusterer->RestoreExact(
        *state.exact, state.last_result, state.step_count));
  } else {
    NIDC_RETURN_NOT_OK(clusterer->RestoreState(
        state.now, state.active_docs, state.last_result, state.step_count));
  }
  return clusterer;
}

}  // namespace nidc
