// The paper's extension of the K-means method (§4.3).
//
// Initial process: K random documents seed K singleton clusters.
// Repetition process: every document is (re)assigned to the cluster whose
// intra-cluster average similarity increases the most when the document is
// appended (evaluated via the Eq. 26 fast path); documents that increase no
// cluster go to the outlier list and re-enter the pool next iteration.
// Convergence: the relative change of the clustering index G falls below δ.

#ifndef NIDC_CORE_EXTENDED_KMEANS_H_
#define NIDC_CORE_EXTENDED_KMEANS_H_

#include <optional>
#include <vector>

#include "nidc/core/cluster_set.h"
#include "nidc/core/clustering_result.h"
#include "nidc/util/random.h"
#include "nidc/util/status.h"

namespace nidc::obs {
class EventLog;
class MetricsRegistry;
class ProvenanceLog;
}  // namespace nidc::obs

namespace nidc {

/// How the K initial clusters are formed.
enum class SeedMode {
  /// K random documents become singleton clusters (§4.3 initial process).
  kRandom,
  /// Clusters start from a given membership (incremental §5.2: documents
  /// keep their previous cluster; representatives are recomputed from the
  /// surviving members — the consistent reading of "reuse the cluster
  /// representatives", since Eq. 20 defines them as member sums).
  kMembership,
  /// Clusters start from given representative *vectors*: a single
  /// assignment pass against the fixed vectors populates the clusters, then
  /// the normal repetition process takes over (the literal reading of
  /// §5.2 step 3).
  kRepresentatives,
};

/// Which greedy gain the repetition step maximizes when (re)assigning a
/// document.
enum class AssignmentCriterion {
  /// Paper-literal §4.3 wording: the increase of avg_sim(C_p). Admits a
  /// document only when its mean similarity to the members *exceeds* the
  /// current intra-cluster average, which tightens clusters monotonically
  /// and leaves most documents on the outlier list.
  kAvgSimIncrease,
  /// The increase of the cluster's clustering-index term |C_p|·avg_sim
  /// (Eq. 17) — the objective the convergence test (step 4) actually
  /// monitors. Admits a document when its mean similarity to members
  /// exceeds half the current average; reproduces the cluster sizes and
  /// recalls the paper's evaluation reports. Default.
  kGIncrease,
};

/// Tuning knobs of the extended K-means.
struct ExtendedKMeansOptions {
  /// Number of clusters K.
  size_t k = 24;

  /// Assignment gain definition (see AssignmentCriterion).
  AssignmentCriterion criterion = AssignmentCriterion::kGIncrease;

  /// Convergence constant δ of the repetition step 4.
  double delta = 1e-3;

  /// Hard cap on repetition sweeps.
  int max_iterations = 50;

  /// Sweep documents in a fresh random order each iteration (false:
  /// chronological document order — deterministic).
  bool shuffle_each_iteration = false;

  /// Seed for initial-cluster selection and shuffling.
  uint64_t seed = 42;

  /// Score gains through a cluster-representative posting index: one pass
  /// over a document's ψ yields cr_sim(C_p, {d}) for all K clusters at
  /// once, instead of K sorted-merge dot products.
  /// Off: the original per-cluster merge path (kept as the reference).
  bool use_rep_index = true;

  /// With the posting index enabled, run the slotted move-only sweep: the
  /// flat CSR index (FlatRepIndex) is scanned with each document's ψ still
  /// attached, the detached home-cluster statistics are derived via the
  /// Eq. 25/26 identity (T_detached from the (c⃗−ψ)·ψ scan), and postings
  /// plus cluster caches are touched only when a document actually moves —
  /// per-sweep maintenance drops from O(N·|ψ|) to O(moves·|ψ|) with
  /// bit-identical results. Off: the PR-1 hash-index sweep that physically
  /// detaches and re-attaches every document (kept as a comparison point).
  /// Ignored when use_rep_index is false.
  bool move_only_sweep = true;

  /// With the slotted sweep, score documents through the fp16-quantized
  /// kernel pass first (see core/kernels): the fp32 scan touches half the
  /// posting bytes, and a certified error margin (derived from the
  /// per-cluster absolute-sum accumulators) proves which cluster the exact
  /// path would pick. Ambiguous documents — and documents touching
  /// mid-sweep overlay terms — are re-scored exactly, so every clustering
  /// decision stays bit-identical to the unquantized sweep. Ignored
  /// outside kSlotted scoring.
  bool quantized_scoring = true;

  /// Concurrency for the read-only scans (ψ-vector construction in
  /// SimilarityContext when driven through the clusterers, the seeded
  /// assignment pass against fixed representatives, and the per-cluster
  /// refresh + CSR rebuild in RefreshAll). 0 = hardware concurrency.
  /// Results are bit-identical for every value — parallel lanes write
  /// disjoint slots and assignments are applied in sweep order.
  size_t num_threads = 0;

  /// Telemetry sink for the run (see obs/metrics.h): iteration counts,
  /// per-sweep moves, sweep/refresh timings, outlier counts,
  /// seeded-vs-sweep assignment split, G endpoints, and rep-index
  /// maintenance stats. Null (the default) skips all instrumentation — the
  /// hot path stays untouched.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional per-phase wall-clock sink (see KMeansProfile); used by the
  /// sweep bench to split score vs. index-maintenance vs. refresh time.
  /// Null (the default) skips the extra clock reads.
  struct KMeansProfile* profile = nullptr;

  /// First fresh stable cluster id this run may mint (see
  /// ClusteringResult::cluster_ids). Seeded clusters inherit
  /// KMeansSeeds::cluster_ids instead; incremental drivers pass the
  /// previous run's next_cluster_id here to keep ids globally monotone.
  uint64_t first_cluster_id = 0;

  /// Lifecycle-event sink (cluster created/emptied/reseeded, document
  /// moves — see obs/event_log.h). Null (the default) emits nothing and
  /// adds no work to the sweeps.
  obs::EventLog* events = nullptr;

  /// Decision-provenance sink (see obs/provenance.h): the sweeps capture
  /// each document's top-2 gains, margin, scoring path/kernel and
  /// quantized outcome into a per-slot buffer (a few scalar stores per
  /// decision), and the run flushes one DecisionRecord per document —
  /// the *final* sweep's decision — at the end. Null (the default) adds
  /// no work to the sweeps.
  obs::ProvenanceLog* provenance = nullptr;

  Status Validate() const;
};

/// Accumulated wall-clock totals of one RunExtendedKMeans call, split by
/// phase. maintenance_seconds is the mutation time *inside* sweeps
/// (cluster/index updates for moves and stay-replays); sweep_seconds
/// includes it, so scoring time is sweep_seconds − maintenance_seconds.
struct KMeansProfile {
  double seed_seconds = 0.0;
  double sweep_seconds = 0.0;
  double maintenance_seconds = 0.0;
  double refresh_seconds = 0.0;
  double score_seconds() const { return sweep_seconds - maintenance_seconds; }

  /// Scoring-kernel telemetry (slotted sweeps only; see core/kernels).
  /// Bytes/entry counters come from the flat index's scan stats; the
  /// quantized counters split certified fast-path docs from exact
  /// re-checks.
  const char* kernel = "";          // active kernel name (scalar/avx2/...)
  uint64_t score_bytes = 0;         // posting + row bytes streamed
  uint64_t entries_scanned = 0;     // posting entries touched
  uint64_t docs_scored = 0;         // ScoreAll* calls
  uint64_t quantized_docs = 0;      // docs scored via the fp16 pass
  uint64_t quantized_fallbacks = 0;  // margin-ambiguous exact re-checks
  uint64_t delta_fallbacks = 0;      // overlay-forced scalar fallbacks

  /// Effective scoring bandwidth in GB/s (0 when nothing was timed).
  double score_gbps() const {
    const double s = score_seconds();
    return s > 0.0 ? static_cast<double>(score_bytes) / s / 1e9 : 0.0;
  }
};

/// Seeding payload for the incremental modes.
struct KMeansSeeds {
  SeedMode mode = SeedMode::kRandom;
  /// For kMembership: previous memberships (pruned to docs in the context).
  std::vector<std::vector<DocId>> memberships;
  /// For kRepresentatives: previous representative vectors.
  std::vector<SparseVector> representatives;
  /// Stable ids the seeded clusters inherit (index-aligned with
  /// memberships/representatives; empty = every cluster gets a fresh id).
  std::vector<uint64_t> cluster_ids;
};

/// Runs the extended K-means over `docs` (which must all be in `ctx`).
///
/// Returns InvalidArgument if options are malformed or docs/ctx disagree;
/// with fewer documents than K the effective K is reduced.
Result<ClusteringResult> RunExtendedKMeans(
    const SimilarityContext& ctx, const std::vector<DocId>& docs,
    const ExtendedKMeansOptions& options,
    const std::optional<KMeansSeeds>& seeds = std::nullopt);

}  // namespace nidc

#endif  // NIDC_CORE_EXTENDED_KMEANS_H_
