#include "nidc/core/cover_coefficient.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace nidc {

size_t CoverCoefficients::EstimatedClusterCount() const {
  return static_cast<size_t>(std::max(1.0, std::round(nc)));
}

CoverCoefficients ComputeCoverCoefficients(const ForgettingModel& model) {
  CoverCoefficients out;
  out.docs = model.active_docs();

  // Column sums Σ_i w_ik with w_ik = dw_i·f_ik.
  std::unordered_map<TermId, double> column_sum;
  for (DocId id : out.docs) {
    const Document& doc = model.corpus().doc(id);
    const double dw = model.Weight(id);
    for (const auto& e : doc.terms.entries()) {
      column_sum[e.id] += dw * e.value;
    }
  }

  out.decoupling.reserve(out.docs.size());
  out.seed_power.reserve(out.docs.size());
  double nc = 0.0;
  for (DocId id : out.docs) {
    const Document& doc = model.corpus().doc(id);
    const double dw = model.Weight(id);
    const double row_sum = dw * doc.Length();
    double delta = 0.0;
    if (row_sum > 0.0) {
      const double alpha = 1.0 / row_sum;
      for (const auto& e : doc.terms.entries()) {
        const double w = dw * e.value;
        const double beta_denominator = column_sum[e.id];
        if (beta_denominator > 0.0) {
          delta += alpha * w * w / beta_denominator;
        }
      }
    }
    out.decoupling.push_back(delta);
    out.seed_power.push_back(delta * (1.0 - delta) * row_sum);
    nc += delta;
  }
  out.nc = std::max(1.0, nc);
  return out;
}

}  // namespace nidc
