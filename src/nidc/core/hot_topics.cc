#include "nidc/core/hot_topics.h"

#include <algorithm>

#include "nidc/util/string_util.h"

namespace nidc {

std::vector<HotTopic> RankHotTopics(const ForgettingModel& model,
                                    const ClusteringResult& result,
                                    const HotTopicOptions& options) {
  std::vector<HotTopic> digest;
  for (size_t p = 0; p < result.clusters.size(); ++p) {
    const auto& members = result.clusters[p];
    if (members.size() < std::max<size_t>(options.min_size, 1)) continue;
    HotTopic topic;
    topic.cluster_index = p;
    topic.size = members.size();
    for (DocId d : members) {
      topic.mass += model.PrDoc(d);
      topic.newest_doc_time =
          std::max(topic.newest_doc_time, model.corpus().doc(d).time);
    }
    if (topic.mass < options.min_mass) continue;
    topic.top_terms = result.TopTerms(p, model.corpus().vocabulary(),
                                      options.terms_per_topic);
    digest.push_back(std::move(topic));
  }
  std::stable_sort(digest.begin(), digest.end(),
                   [](const HotTopic& a, const HotTopic& b) {
                     return a.mass > b.mass;
                   });
  if (options.max_topics > 0 && digest.size() > options.max_topics) {
    digest.resize(options.max_topics);
  }
  return digest;
}

std::string RenderHotTopics(const std::vector<HotTopic>& digest) {
  std::string out;
  for (size_t i = 0; i < digest.size(); ++i) {
    const HotTopic& topic = digest[i];
    out += StringPrintf("%zu. (mass %.2f, %zu docs, newest day %.1f)",
                        i + 1, topic.mass, topic.size,
                        topic.newest_doc_time);
    for (const std::string& term : topic.top_terms) {
      out += ' ';
      out += term;
    }
    out += '\n';
  }
  return out;
}

}  // namespace nidc
