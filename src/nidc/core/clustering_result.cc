#include "nidc/core/clustering_result.h"

#include <algorithm>

namespace nidc {

int ClusteringResult::ClusterOf(DocId id) const {
  for (size_t p = 0; p < clusters.size(); ++p) {
    if (std::find(clusters[p].begin(), clusters[p].end(), id) !=
        clusters[p].end()) {
      return static_cast<int>(p);
    }
  }
  return kUnassigned;
}

size_t ClusteringResult::NumNonEmpty() const {
  size_t n = 0;
  for (const auto& members : clusters) {
    if (!members.empty()) ++n;
  }
  return n;
}

size_t ClusteringResult::TotalAssigned() const {
  size_t n = 0;
  for (const auto& members : clusters) n += members.size();
  return n;
}

std::vector<std::string> ClusteringResult::TopTerms(size_t p,
                                                    const Vocabulary& vocab,
                                                    size_t n) const {
  std::vector<std::string> out;
  if (p >= representatives.size()) return out;
  std::vector<SparseVector::Entry> entries = representatives[p].entries();
  std::sort(entries.begin(), entries.end(),
            [](const SparseVector::Entry& a, const SparseVector::Entry& b) {
              return a.value > b.value;
            });
  for (size_t i = 0; i < entries.size() && out.size() < n; ++i) {
    Result<std::string> term = vocab.TermOf(entries[i].id);
    if (term.ok()) out.push_back(term.value());
  }
  return out;
}

ClusteringResult ClusteringResult::FromClusterSet(
    const ClusterSet& set, std::vector<DocId> outliers,
    std::vector<double> g_history, int iterations, bool converged) {
  ClusteringResult result;
  result.clusters.reserve(set.num_clusters());
  result.representatives.reserve(set.num_clusters());
  result.avg_sims.reserve(set.num_clusters());
  for (size_t p = 0; p < set.num_clusters(); ++p) {
    const Cluster& c = set.cluster(p);
    result.clusters.push_back(c.members());
    result.representatives.push_back(c.representative());
    result.avg_sims.push_back(c.AvgSim());
    result.cluster_ids.push_back(c.id());
  }
  result.next_cluster_id = set.next_cluster_id();
  result.outliers = std::move(outliers);
  result.g = set.G();
  result.g_history = std::move(g_history);
  result.iterations = iterations;
  result.converged = converged;
  return result;
}

}  // namespace nidc
