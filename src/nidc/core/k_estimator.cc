#include "nidc/core/k_estimator.h"

#include <algorithm>

#include "nidc/core/cover_coefficient.h"

namespace nidc {

size_t EstimateKByCoverCoefficient(const ForgettingModel& model) {
  return ComputeCoverCoefficients(model).EstimatedClusterCount();
}

Result<GKneeEstimate> EstimateKByGKnee(const SimilarityContext& ctx,
                                       const std::vector<DocId>& docs,
                                       const GKneeOptions& options) {
  if (docs.empty()) {
    return Status::InvalidArgument("cannot estimate K for an empty set");
  }
  std::vector<size_t> grid = options.grid;
  if (grid.empty()) {
    const size_t cap = std::min(options.max_k, std::max<size_t>(2, docs.size() / 2));
    for (size_t k = 2; k <= cap; k *= 2) grid.push_back(k);
    if (grid.empty()) grid.push_back(2);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  GKneeEstimate estimate;
  for (size_t k : grid) {
    ExtendedKMeansOptions opts = options.kmeans;
    opts.k = std::min(k, docs.size());
    Result<ClusteringResult> run = RunExtendedKMeans(ctx, docs, opts);
    if (!run.ok()) return run.status();
    estimate.curve.emplace_back(k, run->g);
  }

  // The knee: the last grid point whose G improves on its predecessor by
  // more than min_relative_gain (G is generally non-decreasing in K; once
  // extra clusters only shave off fragments, gains collapse).
  estimate.k = estimate.curve.front().first;
  for (size_t i = 1; i < estimate.curve.size(); ++i) {
    const double prev = estimate.curve[i - 1].second;
    const double cur = estimate.curve[i].second;
    if (prev <= 0.0 ||
        (cur - prev) / prev > options.min_relative_gain) {
      estimate.k = estimate.curve[i].first;
    }
  }
  return estimate;
}

}  // namespace nidc
