// Estimating the number of clusters K — the paper's §7 names "a method to
// estimate the appropriate K value" as future work; this module provides
// two estimators and a bench (`bench_k_estimation`) evaluates them against
// the ground-truth topic counts of the synthetic corpus.
//
// 1. Cover-coefficient estimate (Can 1993, the basis of the paper's F²ICM
//    predecessor): n_c = Σ_i δ_i, the sum of decoupling coefficients, with
//    the forgetting weights folded into the frequencies. O(Σ nnz).
// 2. G-knee estimate: run the extended K-means over a geometric K grid and
//    pick the K after which the clustering index G stops improving
//    materially (largest relative-gain drop). O(grid · clustering).

#ifndef NIDC_CORE_K_ESTIMATOR_H_
#define NIDC_CORE_K_ESTIMATOR_H_

#include <vector>

#include "nidc/core/extended_kmeans.h"

namespace nidc {

/// Cover-coefficient (decoupling-sum) estimate of K for the model's active
/// documents. Always >= 1.
size_t EstimateKByCoverCoefficient(const ForgettingModel& model);

struct GKneeOptions {
  /// K grid; empty = geometric {2, 4, 8, ..., min(max_k, n/2)}.
  std::vector<size_t> grid;
  size_t max_k = 64;
  /// Clustering options used per grid point (k is overwritten).
  ExtendedKMeansOptions kmeans;
  /// A grid point "still improves" while G grows by more than this factor
  /// per doubling; the knee is the last such point.
  double min_relative_gain = 0.15;
};

struct GKneeEstimate {
  size_t k = 1;
  /// The evaluated (K, G) curve, for reporting.
  std::vector<std::pair<size_t, double>> curve;
};

/// G-knee estimate over `docs` (all must be in `ctx`).
Result<GKneeEstimate> EstimateKByGKnee(const SimilarityContext& ctx,
                                       const std::vector<DocId>& docs,
                                       const GKneeOptions& options = {});

}  // namespace nidc

#endif  // NIDC_CORE_K_ESTIMATOR_H_
