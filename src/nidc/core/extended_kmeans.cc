#include "nidc/core/extended_kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "nidc/core/clustering_index.h"
#include "nidc/core/kernels/kernels.h"
#include "nidc/core/rep_index.h"
#include "nidc/obs/event_log.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/provenance.h"
#include "nidc/obs/trace.h"
#include "nidc/util/stopwatch.h"
#include "nidc/util/thread_pool.h"

namespace nidc {

Status ExtendedKMeansOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!(delta >= 0.0)) return Status::InvalidArgument("delta must be >= 0");
  if (max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return Status::OK();
}

namespace {

ClusterScoring ScoringOf(const ExtendedKMeansOptions& options) {
  if (!options.use_rep_index) return ClusterScoring::kMerge;
  return options.move_only_sweep ? ClusterScoring::kSlotted
                                 : ClusterScoring::kIndexed;
}

// Accumulates elapsed seconds into *acc on destruction; no clock reads at
// all when acc is null, so unprofiled runs pay nothing.
class ScopedSeconds {
 public:
  explicit ScopedSeconds(double* acc) : acc_(acc) {
    if (acc_ != nullptr) timer_.Restart();
  }
  ~ScopedSeconds() {
    if (acc_ != nullptr) *acc_ += timer_.ElapsedSeconds();
  }
  ScopedSeconds(const ScopedSeconds&) = delete;
  ScopedSeconds& operator=(const ScopedSeconds&) = delete;

 private:
  double* acc_;
  Stopwatch timer_;
};

// Sampled variant for the per-document maintenance slices: timing every
// mutation costs two clock reads per document per sweep, which was the
// single largest line item in the instrumentation-overhead budget. One
// mutation in kStride is timed and the sum scaled back up on destruction —
// document order is uncorrelated with the stride phase, so the estimate
// stays within a few percent of the exhaustive sum at 1/kStride of the
// clock cost. A null sink samples nothing, exactly like ScopedSeconds.
class SampledSeconds {
 public:
  static constexpr uint32_t kStride = 16;

  explicit SampledSeconds(double* acc) : acc_(acc) {}
  ~SampledSeconds() {
    if (acc_ != nullptr) *acc_ += sampled_ * kStride;
  }
  SampledSeconds(const SampledSeconds&) = delete;
  SampledSeconds& operator=(const SampledSeconds&) = delete;

  /// Sink for one timed slice: the sampled accumulator on every
  /// kStride-th call, null (skip the clocks) otherwise.
  double* Next() {
    if (acc_ == nullptr) return nullptr;
    return (tick_++ % kStride) == 0 ? &sampled_ : nullptr;
  }

 private:
  double* acc_;
  double sampled_ = 0.0;
  uint32_t tick_ = 0;
};

// Shared per-document telemetry of one sweep iteration.
struct SweepCounters {
  size_t moves = 0;
  /// Documents that re-populated an empty cluster other than their own —
  /// the slot was handed to a new topic and minted a fresh stable id.
  size_t reseeds = 0;
  /// Documents whose clustering decision the quantized pass certified.
  size_t quantized_certified = 0;
  /// Documents the quantized margins could not separate — re-scored exactly.
  size_t quantized_fallbacks = 0;
};

// Per-slot provenance capture of a document's latest sweep decision,
// indexed by ctx.SlotOf(id) and overwritten every sweep — so after the
// loop the buffer holds exactly the run's settled decisions, flushed to
// the ProvenanceLog in one batch (no extra scoring pass). Gains are
// decision-bar relative: both floored at the sweeps' `> 0` outlier bar,
// so margin = best - runner_up is >= 0 and path-independent.
struct ProvCapture {
  int best = kUnassigned;
  int runner_up = kUnassigned;
  double best_gain = 0.0;
  double runner_up_gain = 0.0;
  obs::ProvenanceVerdict verdict = obs::ProvenanceVerdict::kOutlier;
  obs::QuantizedOutcome quantized = obs::QuantizedOutcome::kOff;
  uint32_t iteration = 0;
};

// Per-slot constants of the quantized error bound, filled lazily and
// reused across sweep iterations: a slot's row (term count, |v|max) is
// immutable for the lifetime of a run, so its margin coefficients never
// change. rel < 0 marks a row the bound cannot certify (over-long row or
// non-finite values) — such documents skip the quantized scan entirely.
struct QuantMargins {
  std::vector<double> rel;
  std::vector<double> abs_term;
  std::vector<uint8_t> cached;

  void EnsureSize(size_t n) {
    if (cached.size() < n) {
      rel.resize(n, 0.0);
      abs_term.resize(n, 0.0);
      cached.resize(n, 0);
    }
  }
};

// Emits the lifecycle events of one settled per-document decision: the
// move itself, the source cluster left empty (if any), and a reseeded
// empty slot (if the reseed branch fired). Cluster ids are read *after*
// the assignment — an emptied cluster keeps its id until reseeded, and a
// reseeded cluster's fresh id is exactly what the event should carry.
// Stages the events of one settled document into `buffer` — the sweeps
// flush the whole buffer through EventLog::EmitBatch once per sweep, so
// the per-document cost is plain stores instead of a mutex + clock read
// per move (which showed up in the instrumentation-overhead budget on
// first sweeps, where every document "moves" from unassigned).
void EmitSweepEvents(std::vector<obs::Event>* buffer,
                     const ClusterSet& clusters, DocId id, int previous,
                     int best, bool reseeded) {
  if (best == previous) return;
  obs::Event moved;
  moved.type = obs::EventType::kDocMoved;
  moved.doc = id;
  if (previous != kUnassigned) {
    moved.from_cluster = clusters.cluster_id(static_cast<size_t>(previous));
  }
  if (best != kUnassigned) {
    moved.cluster_id = clusters.cluster_id(static_cast<size_t>(best));
  }
  buffer->push_back(std::move(moved));
  if (previous != kUnassigned &&
      clusters.cluster(static_cast<size_t>(previous)).empty()) {
    obs::Event emptied;
    emptied.type = obs::EventType::kClusterEmptied;
    emptied.cluster_id = clusters.cluster_id(static_cast<size_t>(previous));
    buffer->push_back(std::move(emptied));
  }
  if (reseeded && best != kUnassigned) {
    obs::Event reseed;
    reseed.type = obs::EventType::kClusterReseeded;
    reseed.cluster_id = clusters.cluster_id(static_cast<size_t>(best));
    buffer->push_back(std::move(reseed));
  }
}

// One repetition sweep (§4.3 step 1) in its legacy form: every document is
// physically detached, the best avg_sim gain over all clusters is found via
// Eq. 26, and the document is re-attached to the argmax cluster — or put on
// the outlier list when no assignment increases any intra-cluster
// similarity.
//
// Two scoring paths compute the cross terms T_p = cr_sim(C_p, {d}):
//   * merge: K independent sparse dot products against the representatives;
//   * indexed (kIndexed): one document-at-a-time posting scan yields every
//     T_p at once, then the same gain formulas are applied per cluster from
//     the cached statistics.
std::vector<DocId> SweepAssignLegacy(const std::vector<DocId>& order,
                                     const SimilarityContext& ctx,
                                     AssignmentCriterion criterion,
                                     ClusterSet* clusters,
                                     SweepCounters* counters,
                                     obs::EventLog* events,
                                     double* maintenance_seconds,
                                     std::vector<ProvCapture>* capture,
                                     uint32_t iteration) {
  std::vector<DocId> outliers;
  std::vector<double> t_scores;
  std::vector<obs::Event> staged_events;
  SampledSeconds maint_sampler(maintenance_seconds);
  const bool indexed = clusters->rep_index_enabled();
  for (DocId id : order) {
    const int previous = clusters->ClusterOf(id);
    bool reseeded = false;
    {
      ScopedSeconds maint(maint_sampler.Next());
      clusters->Assign(id, kUnassigned, ctx);
    }
    int best = kUnassigned;
    double best_gain = 0.0;
    int runner_up = kUnassigned;
    double runner_up_gain = 0.0;
    if (indexed) {
      clusters->ScoreAllClusters(ctx.Psi(id), &t_scores);
      for (size_t p = 0; p < clusters->num_clusters(); ++p) {
        const Cluster& c = clusters->cluster(p);
        if (c.empty()) continue;  // an empty cluster's gain is 0
        const double gain = criterion == AssignmentCriterion::kGIncrease
                                ? c.GainInGGivenT(t_scores[p])
                                : c.GainGivenT(t_scores[p]);
        if (gain > best_gain) {
          runner_up_gain = best_gain;
          runner_up = best;
          best_gain = gain;
          best = static_cast<int>(p);
        } else if (gain > runner_up_gain) {
          runner_up_gain = gain;
          runner_up = static_cast<int>(p);
        }
      }
    } else {
      for (size_t p = 0; p < clusters->num_clusters(); ++p) {
        const Cluster& c = clusters->cluster(p);
        const double gain = criterion == AssignmentCriterion::kGIncrease
                                ? c.GainInGIfAdded(id, ctx)
                                : c.GainIfAdded(id, ctx);
        if (gain > best_gain) {
          runner_up_gain = best_gain;
          runner_up = best;
          best_gain = gain;
          best = static_cast<int>(p);
        } else if (gain > runner_up_gain) {
          runner_up_gain = gain;
          runner_up = static_cast<int>(p);
        }
      }
    }
    if (capture != nullptr) {
      ProvCapture& pc = (*capture)[ctx.SlotOf(id)];
      pc.best_gain = best_gain;
      pc.runner_up = runner_up;
      pc.runner_up_gain = runner_up_gain;
      pc.quantized = obs::QuantizedOutcome::kOff;
    }
    if (best == kUnassigned) {
      // No assignment increases any cluster's quality. Before declaring the
      // document an outlier, let it (re)seed an empty cluster — otherwise a
      // singleton seed drains to the outlier list the moment it is swept
      // (removing it empties its own cluster, and an empty cluster's gain
      // is 0, never "> 0").
      for (size_t p = 0; p < clusters->num_clusters(); ++p) {
        if (clusters->cluster(p).empty()) {
          best = static_cast<int>(p);
          reseeded = true;
          break;
        }
      }
    }
    if (best == kUnassigned) {
      outliers.push_back(id);
    } else {
      ScopedSeconds maint(maint_sampler.Next());
      clusters->Assign(id, best, ctx);
    }
    if (best != previous) {
      ++counters->moves;
      // A document handed back its own emptied cluster continues that
      // cluster's identity — only cross-cluster reseeds count.
      if (reseeded) ++counters->reseeds;
    }
    if (capture != nullptr) {
      ProvCapture& pc = (*capture)[ctx.SlotOf(id)];
      pc.best = best;
      pc.verdict = reseeded ? obs::ProvenanceVerdict::kReseeded
                   : best == kUnassigned
                       ? obs::ProvenanceVerdict::kOutlier
                       : obs::ProvenanceVerdict::kAssigned;
      pc.iteration = iteration;
    }
    if (events != nullptr) {
      EmitSweepEvents(&staged_events, *clusters, id, previous, best,
                      reseeded);
    }
  }
  if (events != nullptr) events->EmitBatch(&staged_events);
  return outliers;
}

// The move-only sweep (kSlotted): scores every document against the flat
// CSR index *with its ψ still attached*. ScoreAllDetached folds the home
// cluster's detachment into the scan — scores[home] accumulates
// (c⃗_q − ψ)·ψ per term while the attached cross term T_att = c⃗_q·ψ is
// collected alongside — so the detached home statistics follow from the
// Eq. 25/26 identity:
//   cr' = cr − 2·T_att + self,   ss' = ss − self,   n' = n − 1,
// replaying the exact floating-point expressions Cluster::Remove would
// apply. Decisions are therefore bit-identical to the legacy
// detach/score/re-attach loop, but clusters and postings are only mutated
// when a document actually moves; a document that stays put costs one
// scalar-cache replay (ReplayStay) and zero index work.
std::vector<DocId> SweepAssignMoveOnly(const std::vector<DocId>& order,
                                       const SimilarityContext& ctx,
                                       AssignmentCriterion criterion,
                                       bool quantized, ClusterSet* clusters,
                                       SweepCounters* counters,
                                       QuantMargins* margins,
                                       obs::EventLog* events,
                                       double* maintenance_seconds,
                                       std::vector<ProvCapture>* capture,
                                       uint32_t iteration) {
  std::vector<DocId> outliers;
  if (quantized) margins->EnsureSize(ctx.size());
  std::vector<double> t_scores;
  std::vector<obs::Event> staged_events;
  SampledSeconds maint_sampler(maintenance_seconds);
  std::vector<float> q_scores;
  std::vector<float> q_abs;
  std::vector<double> g_lo;
  std::vector<double> g_hi;
  const FlatRepIndex& index = clusters->flat_index();
  const size_t k = clusters->num_clusters();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // The exact per-cluster gain expressions of the reference loop below.
  // Both are affine in the cross term t with a positive coefficient, each
  // rounding step is monotone, and t appears exactly once — so evaluating
  // them at t ± m brackets the value at any t' in [t − m, t + m].
  const auto gain_of = [criterion](const Cluster& c, double t) {
    return criterion == AssignmentCriterion::kGIncrease ? c.GainInGGivenT(t)
                                                        : c.GainGivenT(t);
  };
  const auto gain_detached = [criterion](double t, double n, double cr,
                                         double ss) {
    return criterion == AssignmentCriterion::kGIncrease
               ? Cluster::GainInGGivenTWith(t, n, cr, ss)
               : Cluster::GainGivenTWith(t, n, cr, ss);
  };

  for (DocId id : order) {
    const int previous = clusters->ClusterOf(id);
    bool reseeded = false;
    const SimilarityContext::Slot slot = ctx.SlotOf(id);

    double t_attached = 0.0;
    double t_home_detached = 0.0;  // scores[home] of the exact scan
    double n_detached = 0.0;
    double cr_detached = 0.0;
    double ss_detached = 0.0;
    // Derives the detached home statistics from the exact attached cross
    // term — the same expressions (and rounding steps) as Cluster::Remove.
    const auto derive_home = [&]() {
      const Cluster& home = clusters->cluster(static_cast<size_t>(previous));
      const double self = ctx.SelfSimAt(slot);
      n_detached = static_cast<double>(home.size() - 1);
      cr_detached = home.cr_self() + (-2.0 * t_attached + self);
      ss_detached = home.ss() - self;
    };

    int best = kUnassigned;
    bool decided = false;

    // Quantized fast path: one fp16/fp32 scan plus an error-margin
    // certification. The home cluster's cross terms arrive through the
    // kernel's exact fp64 side-channel, so its gain is exact; every other
    // cluster gets a gain interval [g_lo, g_hi] from the quantized score
    // ± a rigorous bound. A decision is taken only when the intervals
    // prove what the exact path would choose; anything ambiguous falls
    // through to the exact scan below, keeping decisions bit-identical.
    if (quantized) {
      // Margin of the quantized cross term T̃_p = scores_f32[p], with
      // Ã_p = abs_f32[p] and R the document's term count:
      //   |T̃_p − T_p| ≤ rel · Ã_p + abs_term, where
      //   rel covers the fp16 shadow's relative error (2^-10 includes
      //   its double rounding) plus the fp32 product/summation error
      //   γ32(R + 4) = ((R+4)·2^-24) / (1 − (R+4)·2^-24), and
      //   abs_term covers fp16 subnormal quantization (2^-25 · |v|) and
      //   fp32 underflow per contribution. kSafety = 4 absorbs the
      //   second-order cross terms. fp16 overflow makes Ã_p infinite,
      //   which fails the finiteness checks and forces the exact path.
      // The coefficients depend only on the (immutable) row, so they are
      // computed once per slot and reused across iterations.
      if (!margins->cached[slot]) {
        const SimilarityContext::Row row = ctx.RowAt(slot);
        double vmax = 0.0;
        for (size_t i = 0; i < row.size; ++i) {
          vmax = std::max(vmax, std::fabs(row.values[i]));
        }
        const double r = static_cast<double>(row.size);
        const double gamma_n = (r + 4.0) * 0x1p-24;
        const bool usable = gamma_n < 0.5 && std::isfinite(vmax);
        margins->rel[slot] =
            usable ? 4.0 * (0x1p-10 + gamma_n / (1.0 - gamma_n)) : -1.0;
        margins->abs_term[slot] = 4.0 * r * (0x1p-25 * vmax + 1e-40);
        margins->cached[slot] = 1;
      }
      const double rel = margins->rel[slot];
      const double abs_term = margins->abs_term[slot];
      double ha = 0.0;
      double hd = 0.0;
      if (rel >= 0.0 &&
          index.ScoreAllQuantized(ctx, slot, previous, &q_scores, &q_abs,
                                  &ha, &hd)) {
        if (previous != kUnassigned) {
          t_attached = ha;
          t_home_detached = hd;
          derive_home();
        }
        bool ok = true;
        g_lo.assign(k, kNegInf);  // skipped clusters stay at [-inf, -inf]
        g_hi.assign(k, kNegInf);
        int cand = kUnassigned;
        double cand_lo = 0.0;  // mirrors the exact loop's `gain > 0` bar
        for (size_t p = 0; ok && p < k; ++p) {
          double lo;
          double hi;
          if (static_cast<int>(p) == previous) {
            // A home cluster the detachment would empty is an empty
            // cluster: gain 0, never "> 0" — skip, as the exact loop does.
            if (n_detached < 1.0) continue;
            lo = hi = gain_detached(hd, n_detached, cr_detached,
                                    ss_detached);
            if (std::isnan(lo)) ok = false;
          } else {
            const Cluster& c = clusters->cluster(p);
            if (c.empty()) continue;
            const double t_mid = static_cast<double>(q_scores[p]);
            const double m =
                rel * static_cast<double>(q_abs[p]) + abs_term;
            if (!std::isfinite(t_mid) || !std::isfinite(m)) {
              ok = false;
              break;
            }
            lo = gain_of(c, t_mid - m);
            hi = gain_of(c, t_mid + m);
            if (std::isnan(lo) || std::isnan(hi)) ok = false;
          }
          if (!ok) break;
          g_lo[p] = lo;
          g_hi[p] = hi;
          if (lo > cand_lo) {
            cand_lo = lo;
            cand = static_cast<int>(p);
          }
        }
        if (ok) {
          if (cand == kUnassigned) {
            // Certified outlier: every cluster's best case fails `> 0`.
            bool all_below = true;
            for (size_t p = 0; p < k; ++p) {
              if (g_hi[p] > 0.0) {
                all_below = false;
                break;
              }
            }
            if (all_below) decided = true;  // best stays kUnassigned
          } else {
            // Certified argmax: cand's worst case strictly beats every
            // other cluster's best case, so the exact gains have a unique
            // strict maximum at cand (> 0) — tie-breaking can't differ.
            bool separated = true;
            for (size_t p = 0; p < k; ++p) {
              if (static_cast<int>(p) == cand) continue;
              if (!(g_hi[p] < cand_lo)) {
                separated = false;
                break;
              }
            }
            if (separated) {
              best = cand;
              decided = true;
            }
          }
        }
        if (decided) {
          ++counters->quantized_certified;
        } else {
          ++counters->quantized_fallbacks;
        }
        if (capture != nullptr && decided) {
          // Certified decisions have interval bounds, not exact gains:
          // record the winner's certified lower bound against the best
          // rival's certified upper bound (a conservative margin that is
          // >= 0 by the separation proof), marked kCertified so
          // consumers know these are bounds. Certified outliers record
          // the bar itself (0/0) — no cluster's best case cleared it.
          ProvCapture& pc = (*capture)[slot];
          pc.quantized = obs::QuantizedOutcome::kCertified;
          if (best == kUnassigned) {
            pc.best_gain = 0.0;
            pc.runner_up = kUnassigned;
            pc.runner_up_gain = 0.0;
          } else {
            pc.best_gain = cand_lo;
            int rival = kUnassigned;
            double rival_hi = 0.0;
            for (size_t p = 0; p < k; ++p) {
              if (static_cast<int>(p) == best) continue;
              if (g_hi[p] > rival_hi) {
                rival_hi = g_hi[p];
                rival = static_cast<int>(p);
              }
            }
            pc.runner_up = rival;
            pc.runner_up_gain = rival_hi;
          }
        }
      }
    }

    if (!decided) {
      // Exact path: score all clusters, deriving the home cluster's
      // detached statistics without touching it.
      if (previous == kUnassigned) {
        index.ScoreAll(ctx, slot, &t_scores);
      } else {
        index.ScoreAllDetached(ctx, slot, static_cast<size_t>(previous),
                               &t_scores, &t_attached);
        t_home_detached = t_scores[static_cast<size_t>(previous)];
        derive_home();
      }
      double best_gain = 0.0;
      int runner_up = kUnassigned;
      double runner_up_gain = 0.0;
      for (size_t p = 0; p < k; ++p) {
        double gain;
        if (static_cast<int>(p) == previous) {
          // A home cluster the detachment would empty is an empty cluster:
          // its gain is 0, never "> 0" (legacy: Remove triggered Clear).
          if (n_detached < 1.0) continue;
          gain = gain_detached(t_scores[p], n_detached, cr_detached,
                               ss_detached);
        } else {
          const Cluster& c = clusters->cluster(p);
          if (c.empty()) continue;
          gain = gain_of(c, t_scores[p]);
        }
        if (gain > best_gain) {
          runner_up_gain = best_gain;
          runner_up = best;
          best_gain = gain;
          best = static_cast<int>(p);
        } else if (gain > runner_up_gain) {
          runner_up_gain = gain;
          runner_up = static_cast<int>(p);
        }
      }
      if (capture != nullptr) {
        ProvCapture& pc = (*capture)[slot];
        pc.best_gain = best_gain;
        pc.runner_up = runner_up;
        pc.runner_up_gain = runner_up_gain;
        pc.quantized = quantized ? obs::QuantizedOutcome::kRecheck
                                 : obs::QuantizedOutcome::kOff;
      }
    }

    if (best == kUnassigned) {
      // Empty-cluster reseed, with "empty" evaluated as the legacy sweep
      // saw it mid-detachment: the home cluster counts as empty when the
      // document was its only member.
      for (size_t p = 0; p < k; ++p) {
        const bool empty = static_cast<int>(p) == previous
                               ? n_detached == 0.0
                               : clusters->cluster(p).empty();
        if (empty) {
          best = static_cast<int>(p);
          reseeded = true;
          break;
        }
      }
    }

    if (best == kUnassigned) {
      if (previous != kUnassigned) {
        ScopedSeconds maint(maint_sampler.Next());
        clusters->Assign(id, kUnassigned, ctx);
      }
      outliers.push_back(id);
    } else if (best == previous) {
      ScopedSeconds maint(maint_sampler.Next());
      if (n_detached == 0.0) {
        // Re-seeding its own emptied cluster: replay the physical
        // round-trip so Clear() purges accumulated drift exactly as the
        // legacy path does.
        clusters->Assign(id, kUnassigned, ctx);
        clusters->Assign(id, best, ctx);
      } else {
        // t_home_detached is scores[home] of the exact scan; the quantized
        // path produced the identical value through the kernel's exact
        // fp64 side-channel.
        clusters->ReplayStay(id, static_cast<size_t>(best), t_attached,
                             t_home_detached, ctx);
      }
    } else {
      // An actual move: delegate to the legacy mutation path (its internal
      // dot products equal the scanned cross terms bit-for-bit).
      ScopedSeconds maint(maint_sampler.Next());
      clusters->Assign(id, best, ctx);
    }
    if (best != previous) {
      ++counters->moves;
      if (reseeded) ++counters->reseeds;
    }
    if (capture != nullptr) {
      ProvCapture& pc = (*capture)[slot];
      pc.best = best;
      pc.verdict = reseeded ? obs::ProvenanceVerdict::kReseeded
                   : best == kUnassigned
                       ? obs::ProvenanceVerdict::kOutlier
                       : obs::ProvenanceVerdict::kAssigned;
      pc.iteration = iteration;
    }
    if (events != nullptr) {
      EmitSweepEvents(&staged_events, *clusters, id, previous, best,
                      reseeded);
    }
  }
  if (events != nullptr) events->EmitBatch(&staged_events);
  return outliers;
}

std::vector<DocId> SweepAssign(const std::vector<DocId>& order,
                               const SimilarityContext& ctx,
                               AssignmentCriterion criterion, bool quantized,
                               ClusterSet* clusters, SweepCounters* counters,
                               QuantMargins* margins, obs::EventLog* events,
                               double* maintenance_seconds,
                               std::vector<ProvCapture>* capture,
                               uint32_t iteration) {
  if (clusters->scoring() == ClusterScoring::kSlotted) {
    return SweepAssignMoveOnly(order, ctx, criterion, quantized, clusters,
                               counters, margins, events,
                               maintenance_seconds, capture, iteration);
  }
  return SweepAssignLegacy(order, ctx, criterion, clusters, counters, events,
                           maintenance_seconds, capture, iteration);
}

// Populates clusters from fixed representative vectors: each document joins
// the cluster whose representative it is most similar to (cr_sim with the
// singleton {d}); non-positive best similarity goes to the outlier list.
//
// The scan is read-only against the fixed vectors, so the per-document
// decisions are computed in parallel (optionally through a posting index
// over the seed representatives) and then applied serially in document
// order — bit-identical to the serial loop for any thread count.
std::vector<DocId> AssignAgainstFixedRepresentatives(
    const std::vector<DocId>& docs, const std::vector<SparseVector>& reps,
    const SimilarityContext& ctx, ClusterScoring scoring, ThreadPool* pool,
    ClusterSet* clusters) {
  ClusterRepIndex seed_index;
  FlatRepIndex flat_seed_index;
  if (scoring == ClusterScoring::kIndexed) {
    seed_index.Reset(reps.size());
    for (size_t p = 0; p < reps.size(); ++p) seed_index.Add(p, reps[p]);
  } else if (scoring == ClusterScoring::kSlotted) {
    flat_seed_index.BuildFromRepresentatives(ctx, reps);
  }

  std::vector<int> decisions(docs.size(), kUnassigned);
  const auto decide = [&](size_t begin, size_t end) {
    std::vector<double> scores;
    for (size_t i = begin; i < end; ++i) {
      int best = kUnassigned;
      double best_sim = 0.0;
      if (scoring == ClusterScoring::kSlotted) {
        flat_seed_index.ScoreAll(ctx, ctx.SlotOf(docs[i]), &scores);
        for (size_t p = 0; p < reps.size(); ++p) {
          if (scores[p] > best_sim) {
            best_sim = scores[p];
            best = static_cast<int>(p);
          }
        }
      } else if (scoring == ClusterScoring::kIndexed) {
        seed_index.ScoreAll(ctx.Psi(docs[i]), &scores);
        for (size_t p = 0; p < reps.size(); ++p) {
          if (scores[p] > best_sim) {
            best_sim = scores[p];
            best = static_cast<int>(p);
          }
        }
      } else {
        const SparseVector& psi = ctx.Psi(docs[i]);
        for (size_t p = 0; p < reps.size(); ++p) {
          const double sim = reps[p].Dot(psi);
          if (sim > best_sim) {
            best_sim = sim;
            best = static_cast<int>(p);
          }
        }
      }
      decisions[i] = best;
    }
  };
  pool->ParallelFor(docs.size(), /*grain=*/64, decide);

  std::vector<DocId> outliers;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (decisions[i] == kUnassigned) {
      outliers.push_back(docs[i]);
    } else {
      clusters->Assign(docs[i], decisions[i], ctx);
    }
  }
  return outliers;
}

}  // namespace

Result<ClusteringResult> RunExtendedKMeans(
    const SimilarityContext& ctx, const std::vector<DocId>& docs,
    const ExtendedKMeansOptions& options,
    const std::optional<KMeansSeeds>& seeds) {
  NIDC_RETURN_NOT_OK(options.Validate());
  if (docs.empty()) {
    return Status::InvalidArgument("cannot cluster an empty document set");
  }
  for (DocId id : docs) {
    if (!ctx.Contains(id)) {
      return Status::InvalidArgument("document " + std::to_string(id) +
                                     " is not in the similarity context");
    }
  }

  NIDC_SPAN("kmeans.run");
  const size_t k = std::min(options.k, docs.size());
  const ClusterScoring scoring = ScoringOf(options);
  ClusterSet clusters(k, scoring);
  Rng rng(options.seed);
  ThreadPool pool(ThreadPool::Resolve(options.num_threads));
  std::vector<DocId> outliers;
  obs::MetricsRegistry* metrics = options.metrics;
  KMeansProfile* profile = options.profile;
  // kmeans.score_gbps needs the phase split even when the caller only asked
  // for metrics — time into a local profile in that case.
  KMeansProfile local_profile;
  if (metrics != nullptr && profile == nullptr) profile = &local_profile;
  double* maintenance_seconds =
      profile == nullptr ? nullptr : &profile->maintenance_seconds;

  // --- Initial process ---
  bool degenerate_restart = false;
  const auto run_initial_process = [&]() -> Status {
    NIDC_SPAN("kmeans.seed");
    ScopedSeconds seed_timer(profile == nullptr ? nullptr
                                                : &profile->seed_seconds);
    const SeedMode mode = seeds ? seeds->mode : SeedMode::kRandom;
    switch (mode) {
      case SeedMode::kRandom: {
        // §4.3: select K documents randomly, form initial K clusters.
        size_t next = 0;
        for (size_t p : rng.SampleWithoutReplacement(docs.size(), k)) {
          clusters.Assign(docs[p], static_cast<int>(next++), ctx);
        }
        break;
      }
      case SeedMode::kMembership: {
        if (seeds->memberships.size() > k) {
          return Status::InvalidArgument("membership seed has more clusters "
                                         "than k");
        }
        for (size_t p = 0; p < seeds->memberships.size(); ++p) {
          for (DocId id : seeds->memberships[p]) {
            if (ctx.Contains(id)) {
              clusters.Assign(id, static_cast<int>(p), ctx);
            }
          }
        }
        break;
      }
      case SeedMode::kRepresentatives: {
        if (seeds->representatives.size() > k) {
          return Status::InvalidArgument("representative seed has more "
                                         "clusters than k");
        }
        outliers = AssignAgainstFixedRepresentatives(
            docs, seeds->representatives, ctx, scoring, &pool, &clusters);
        break;
      }
    }
    // Degenerate-seed fallback: representative/membership seeds can leave
    // every cluster empty (e.g. the whole previous vocabulary expired). An
    // empty cluster can never attract documents (its avg_sim gain is 0), so
    // restart from random singletons as the initial process prescribes.
    if (clusters.TotalAssigned() == 0) {
      degenerate_restart = true;
      size_t next = 0;
      for (size_t p : rng.SampleWithoutReplacement(docs.size(), k)) {
        clusters.Assign(docs[p], static_cast<int>(next++), ctx);
      }
      outliers.clear();
    }
    clusters.RefreshAll(ctx, &pool);
    return Status::OK();
  };
  NIDC_RETURN_NOT_OK(run_initial_process());
  const size_t seeded_assigned = clusters.TotalAssigned();

  // Install stable cluster ids: seeded clusters inherit the previous run's
  // ids (the drift telemetry matches on them); random seeds — and seeded
  // runs that fell back to the random restart — mint fresh ones. From here
  // on, ClusterSet::Assign mints a fresh id whenever a sweep hands an
  // emptied slot to a new topic.
  static const std::vector<uint64_t> kNoSeedIds;
  const std::vector<uint64_t>& seed_ids =
      (seeds && !degenerate_restart) ? seeds->cluster_ids : kNoSeedIds;
  clusters.InstallIds(seed_ids, options.first_cluster_id);
  if (options.events != nullptr) {
    for (size_t p = 0; p < clusters.num_clusters(); ++p) {
      if (clusters.cluster(p).empty()) continue;
      if (p < seed_ids.size() && seed_ids[p] != Cluster::kNoClusterId) {
        continue;  // inherited identity, not a birth
      }
      obs::Event created;
      created.type = obs::EventType::kClusterCreated;
      created.cluster_id = clusters.cluster_id(p);
      options.events->Emit(created);
    }
  }

  // --- Repetition process ---
  std::vector<double> g_history;
  double g_old = clusters.G();
  g_history.push_back(g_old);

  static const std::vector<double> kSweepSecondsBuckets = {
      1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0};
  obs::Histogram* moves_per_sweep =
      metrics == nullptr
          ? nullptr
          : metrics->GetHistogram("kmeans.moves_per_sweep",
                                  {0, 1, 10, 100, 1000, 10000, 100000});
  obs::Histogram* sweep_seconds_hist =
      metrics == nullptr ? nullptr
                         : metrics->GetHistogram("kmeans.sweep_seconds",
                                                 kSweepSecondsBuckets);
  obs::Histogram* refresh_seconds_hist =
      metrics == nullptr ? nullptr
                         : metrics->GetHistogram("kmeans.refresh_seconds",
                                                 kSweepSecondsBuckets);
  const bool time_phases = metrics != nullptr || profile != nullptr;
  std::vector<DocId> order = docs;
  int iterations = 0;
  bool converged = false;
  size_t total_moves = 0;
  size_t total_reseeds = 0;
  size_t total_quantized_certified = 0;
  size_t total_quantized_fallbacks = 0;
  QuantMargins quant_margins;
  // Slot-indexed provenance capture, overwritten every sweep; the final
  // sweep's contents are the run's settled decisions (flushed below).
  std::vector<ProvCapture> prov_capture;
  std::vector<ProvCapture>* capture = nullptr;
  if (options.provenance != nullptr) {
    prov_capture.resize(ctx.size());
    capture = &prov_capture;
  }
  Stopwatch phase_timer;
  while (iterations < options.max_iterations) {
    if (options.shuffle_each_iteration) rng.Shuffle(&order);
    SweepCounters counters;
    {
      NIDC_SPAN("kmeans.sweep");
      if (time_phases) phase_timer.Restart();
      outliers = SweepAssign(order, ctx, options.criterion,
                             options.quantized_scoring, &clusters, &counters,
                             &quant_margins, options.events,
                             maintenance_seconds, capture,
                             static_cast<uint32_t>(iterations + 1));
      if (time_phases) {
        const double seconds = phase_timer.ElapsedSeconds();
        if (sweep_seconds_hist != nullptr) {
          sweep_seconds_hist->Observe(seconds);
        }
        if (profile != nullptr) profile->sweep_seconds += seconds;
      }
    }
    total_moves += counters.moves;
    total_reseeds += counters.reseeds;
    total_quantized_certified += counters.quantized_certified;
    total_quantized_fallbacks += counters.quantized_fallbacks;
    if (moves_per_sweep != nullptr) {
      moves_per_sweep->Observe(static_cast<double>(counters.moves));
    }
    ++iterations;
    // Step 2: recompute cluster representatives (also clears float drift).
    {
      NIDC_SPAN("kmeans.refresh");
      if (time_phases) phase_timer.Restart();
      clusters.RefreshAll(ctx, &pool);
      if (time_phases) {
        const double seconds = phase_timer.ElapsedSeconds();
        if (refresh_seconds_hist != nullptr) {
          refresh_seconds_hist->Observe(seconds);
        }
        if (profile != nullptr) profile->refresh_seconds += seconds;
      }
    }
    // Steps 3–4: G_new and the δ test.
    const double g_new = clusters.G();
    g_history.push_back(g_new);
    if (RelativeGChange(g_old, g_new) < options.delta) {
      converged = true;
      g_old = g_new;
      break;
    }
    g_old = g_new;
  }

  if (metrics != nullptr) {
    metrics->GetCounter("kmeans.runs")->Increment();
    metrics->GetCounter("kmeans.iterations")
        ->Increment(static_cast<uint64_t>(iterations));
    metrics
        ->GetHistogram("kmeans.iterations_per_run",
                       {1, 2, 3, 5, 8, 13, 21, 34, 50})
        ->Observe(static_cast<double>(iterations));
    if (converged) metrics->GetCounter("kmeans.converged")->Increment();
    metrics->GetCounter("kmeans.moves")->Increment(total_moves);
    metrics->GetCounter("kmeans.cluster_reseeds")->Increment(total_reseeds);
    metrics->GetCounter("kmeans.docs_swept")
        ->Increment(static_cast<uint64_t>(order.size()) *
                    static_cast<uint64_t>(iterations));
    metrics->GetCounter("kmeans.seeded_assigned")->Increment(seeded_assigned);
    metrics->GetGauge("kmeans.outliers")
        ->Set(static_cast<double>(outliers.size()));
    metrics->GetCounter("kmeans.outliers_total")->Increment(outliers.size());
    metrics->GetGauge("kmeans.g_initial")->Set(g_history.front());
    metrics->GetGauge("kmeans.g_final")->Set(g_old);
    if (scoring == ClusterScoring::kIndexed) {
      const ClusterRepIndex::Stats& ris = clusters.rep_index().stats();
      metrics->GetCounter("rep_index.tombstones")
          ->Increment(ris.tombstones_created);
      metrics->GetCounter("rep_index.tombstones_revived")
          ->Increment(ris.tombstones_revived);
      metrics->GetCounter("rep_index.compactions")->Increment(ris.compactions);
      metrics->GetCounter("rep_index.entries_compacted")
          ->Increment(ris.entries_compacted);
      metrics->GetGauge("rep_index.live_entries")
          ->Set(static_cast<double>(ris.live_entries));
      metrics->GetGauge("rep_index.dead_entries")
          ->Set(static_cast<double>(ris.dead_entries));
      metrics->GetGauge("rep_index.terms")
          ->Set(static_cast<double>(clusters.rep_index().num_terms()));
    } else if (scoring == ClusterScoring::kSlotted) {
      // Counters are cumulative over the FlatRepIndex lifetime (one run) —
      // incrementing by the final values folds them into the registry.
      const FlatRepIndex::Stats& fis = clusters.flat_index().stats();
      metrics->GetCounter("rep_index.moves_applied")
          ->Increment(fis.moves_applied);
      metrics->GetCounter("rep_index.builds")->Increment(fis.builds);
      metrics->GetCounter("rep_index.tombstones")
          ->Increment(fis.tombstones_created);
      metrics->GetCounter("rep_index.tombstones_revived")
          ->Increment(fis.tombstones_revived);
      metrics->GetCounter("rep_index.delta_entries")
          ->Increment(fis.delta_entries_added);
      // The flat index never compacts between rebuilds; the key is kept so
      // dashboards (and nidc_metrics_check) see a stable metric family.
      metrics->GetCounter("rep_index.compactions")->Increment(0);
      metrics->GetGauge("rep_index.live_entries")
          ->Set(static_cast<double>(fis.live_entries));
      metrics->GetGauge("rep_index.dead_entries")
          ->Set(static_cast<double>(fis.dead_entries));
      metrics->GetGauge("rep_index.terms")
          ->Set(static_cast<double>(ctx.num_local_terms()));
    }
  }

  // Scoring-kernel telemetry: fill the profile from the flat index's scan
  // stats and export the kernel.* metric family.
  if (scoring == ClusterScoring::kSlotted && profile != nullptr) {
    const FlatRepIndex::ScanStats& ss = clusters.flat_index().scan_stats();
    profile->kernel = kernels::Active().name;
    profile->score_bytes = ss.bytes_scanned.load(std::memory_order_relaxed);
    profile->entries_scanned =
        ss.entries_scanned.load(std::memory_order_relaxed);
    profile->docs_scored = ss.docs_scored.load(std::memory_order_relaxed);
    profile->quantized_docs =
        ss.quantized_docs.load(std::memory_order_relaxed);
    profile->quantized_fallbacks =
        static_cast<uint64_t>(total_quantized_fallbacks);
    profile->delta_fallbacks =
        ss.delta_fallback_docs.load(std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics
          ->GetGauge(std::string("kernel.dispatch.") + profile->kernel)
          ->Set(1.0);
      metrics->GetCounter("kernel.bytes_scanned")
          ->Increment(profile->score_bytes);
      metrics->GetCounter("kernel.entries_scanned")
          ->Increment(profile->entries_scanned);
      metrics->GetCounter("kernel.docs_scored")
          ->Increment(profile->docs_scored);
      metrics->GetCounter("kernel.quantized_docs")
          ->Increment(profile->quantized_docs);
      metrics->GetCounter("kernel.quantized_certified")
          ->Increment(static_cast<uint64_t>(total_quantized_certified));
      metrics->GetCounter("kernel.quantized_fallbacks")
          ->Increment(profile->quantized_fallbacks);
      metrics->GetCounter("kernel.delta_fallbacks")
          ->Increment(profile->delta_fallbacks);
      metrics->GetGauge("kmeans.score_gbps")->Set(profile->score_gbps());
    }
  }

  // Flush the final sweep's per-slot captures as decision records, one
  // batch under one log lock. Cluster indices resolve to the stable ids
  // the slots carry *now* (end of run) — exactly the ids the result and
  // the event log report.
  if (options.provenance != nullptr) {
    std::vector<obs::DecisionRecord> records;
    records.reserve(docs.size());
    const char* kernel =
        scoring == ClusterScoring::kSlotted ? kernels::Active().name : "";
    const obs::ProvenancePath path =
        scoring == ClusterScoring::kMerge     ? obs::ProvenancePath::kMerge
        : scoring == ClusterScoring::kIndexed ? obs::ProvenancePath::kIndexed
                                              : obs::ProvenancePath::kSlotted;
    for (DocId id : docs) {
      const ProvCapture& pc = prov_capture[ctx.SlotOf(id)];
      obs::DecisionRecord record;
      record.doc = id;
      record.iteration = pc.iteration;
      record.verdict = pc.verdict;
      record.path = path;
      record.quantized = pc.quantized;
      record.kernel = kernel;
      if (pc.best != kUnassigned) {
        record.cluster_id =
            clusters.cluster_id(static_cast<size_t>(pc.best));
      }
      if (pc.runner_up != kUnassigned) {
        record.runner_up_id =
            clusters.cluster_id(static_cast<size_t>(pc.runner_up));
      }
      record.best_gain = pc.best_gain;
      record.runner_up_gain = pc.runner_up_gain;
      record.margin = pc.best_gain - pc.runner_up_gain;
      records.push_back(record);
    }
    options.provenance->RecordBatch(records);
  }

  return ClusteringResult::FromClusterSet(clusters, std::move(outliers),
                                          std::move(g_history), iterations,
                                          converged);
}

}  // namespace nidc
