#include "nidc/core/clustering_index.h"

#include <limits>

namespace nidc {

double ClusteringIndexG(const ClusterSet& clusters) { return clusters.G(); }

double ClusteringIndexGNaive(const ClusterSet& clusters,
                             const SimilarityContext& ctx) {
  double g = 0.0;
  for (size_t p = 0; p < clusters.num_clusters(); ++p) {
    const Cluster& c = clusters.cluster(p);
    g += static_cast<double>(c.size()) * c.AvgSimNaive(ctx);
  }
  return g;
}

double RelativeGChange(double g_old, double g_new) {
  if (g_old == 0.0) {
    return g_new == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return (g_new - g_old) / g_old;
}

}  // namespace nidc
