// Persistence for the on-line clusterer: snapshot the incremental state
// (clock, active set, last clustering) to a text file and restore it after
// a process restart, without replaying the stream. The corpus itself is
// persisted separately (corpus_io.h); a snapshot is only valid against the
// same corpus loaded in the same order (document ids and term ids must
// match).
//
// Format v2 additionally embeds the model's ExactModelState (raw weights,
// term sums and decay scale as hex floats) and the step counter, so a
// restored clusterer continues *bit-identically* — the property the
// store/ durability layer's crash-recovery guarantee is built on. v1
// snapshots (no exact section) still load; they restore statistics by
// rebuilding dw = λ^(now − T_i) from acquisition times, which is exact up
// to last-bit rounding.
//
// SaveState writes through the atomic write-temp + fsync + rename helper:
// a crash mid-save can never destroy the previous good snapshot.

#ifndef NIDC_CORE_STATE_IO_H_
#define NIDC_CORE_STATE_IO_H_

#include <optional>
#include <string>

#include "nidc/core/incremental_clusterer.h"
#include "nidc/util/env.h"

namespace nidc {

/// Everything needed to resume an IncrementalClusterer.
struct ClustererState {
  ForgettingParams params;
  DayTime now = 0.0;
  std::vector<DocId> active_docs;
  std::optional<ClusteringResult> last_result;
  /// Steps applied so far (offsets the per-step random-seed stream).
  uint64_t step_count = 0;
  /// Bit-exact numeric state; present in v2 snapshots.
  std::optional<ExactModelState> exact;
};

/// Captures the clusterer's current state (always includes the exact
/// section).
ClustererState CaptureState(const IncrementalClusterer& clusterer);

/// Serializes a state to its text representation / parses it back.
/// Serialization emits format v2; parsing accepts v1 and v2.
std::string SerializeState(const ClustererState& state);
Result<ClustererState> ParseState(const std::string& text);

/// File round-trip helpers. Saving is atomic (write-temp + fsync +
/// rename) through `env`, which defaults to the process-wide POSIX Env.
Status SaveState(const ClustererState& state, const std::string& path,
                 Env* env = nullptr);
Result<ClustererState> LoadState(const std::string& path,
                                 Env* env = nullptr);

/// Builds a clusterer over `corpus` resuming from `state`. With an exact
/// section the numeric state is installed verbatim (bit-identical
/// continuation); otherwise statistics are rebuilt from the active set.
/// Cluster representatives are recomputed from the restored memberships
/// either way. Returns InvalidArgument if the state references documents
/// the corpus does not have, repeats an active id, or is internally
/// inconsistent.
Result<std::unique_ptr<IncrementalClusterer>> RestoreClusterer(
    const Corpus* corpus, IncrementalOptions options,
    const ClustererState& state);

}  // namespace nidc

#endif  // NIDC_CORE_STATE_IO_H_
