// Persistence for the on-line clusterer: snapshot the incremental state
// (clock, active set, last clustering) to a text file and restore it after
// a process restart, without replaying the stream. The corpus itself is
// persisted separately (corpus_io.h); a snapshot is only valid against the
// same corpus loaded in the same order (document ids and term ids must
// match).
//
// Restoration is exact for the statistics: rebuilding document weights as
// λ^(now − T_i) from acquisition times reproduces dw (and hence tdw, Pr(d),
// Pr(t_k)) to double precision, because that is their definition (Eq. 1).

#ifndef NIDC_CORE_STATE_IO_H_
#define NIDC_CORE_STATE_IO_H_

#include <optional>
#include <string>

#include "nidc/core/incremental_clusterer.h"

namespace nidc {

/// Everything needed to resume an IncrementalClusterer.
struct ClustererState {
  ForgettingParams params;
  DayTime now = 0.0;
  std::vector<DocId> active_docs;
  std::optional<ClusteringResult> last_result;
};

/// Captures the clusterer's current state.
ClustererState CaptureState(const IncrementalClusterer& clusterer);

/// Serializes a state to its text representation / parses it back.
std::string SerializeState(const ClustererState& state);
Result<ClustererState> ParseState(const std::string& text);

/// File round-trip helpers.
Status SaveState(const ClustererState& state, const std::string& path);
Result<ClustererState> LoadState(const std::string& path);

/// Builds a clusterer over `corpus` resuming from `state` (statistics are
/// reconstructed exactly; cluster representatives are recomputed from the
/// restored memberships). Returns InvalidArgument if the state references
/// documents the corpus does not have.
Result<std::unique_ptr<IncrementalClusterer>> RestoreClusterer(
    const Corpus* corpus, IncrementalOptions options,
    const ClustererState& state);

}  // namespace nidc

#endif  // NIDC_CORE_STATE_IO_H_
