// Crash-torture driver for the durability layer.
//
// The headline guarantee of store/ is: kill the process at *any* I/O
// operation, recover, finish the stream, and the final clustering is
// bit-identical to an uninterrupted run. This driver proves it by brute
// force:
//
//   1. build a deterministic synthetic corpus and batch schedule;
//   2. run an uninterrupted IncrementalClusterer over it and fingerprint
//      the final state (full serialized snapshot, exact section included);
//   3. for kill point n = 1, 2, 3, ...: wipe the checkpoint directory,
//      arm a FaultInjectionEnv to crash at the nth mutating filesystem
//      operation (cycling through the three CrashFlush policies), stream
//      until the injected crash "kills" the process, then recover with a
//      clean Env, resume feeding batches from applied_steps(), and compare
//      the final fingerprint against the reference;
//   4. stop when a run completes without the injection firing — every
//      reachable crash point has then been exercised.
//
// Used by tools/nidc_crash_torture (full matrix, CI) and the
// crash_torture_test unit test (reduced configuration).

#ifndef NIDC_STORE_TORTURE_H_
#define NIDC_STORE_TORTURE_H_

#include <string>
#include <vector>

#include "nidc/store/durable_clusterer.h"

namespace nidc {

struct TortureOptions {
  /// Checkpoint directory to torture (wiped before every kill point).
  std::string dir;

  /// Stream shape. Defaults give a 60-step stream over 30 days with
  /// expirations (life span 6 days) and a small but real clustering
  /// problem per step.
  size_t num_steps = 60;
  size_t docs_per_step = 3;
  double step_days = 0.5;
  size_t k = 4;
  uint64_t seed = 7;

  ForgettingParams params{/*half_life=*/2.0, /*life_span=*/6.0};

  /// Durability knobs under test.
  uint64_t checkpoint_every = 8;
  WalSyncMode wal_sync = WalSyncMode::kEveryRecord;

  /// 0 = exercise every kill point until one run survives un-crashed;
  /// otherwise stop after this many (reduced configurations for unit
  /// tests).
  uint64_t max_kill_points = 0;

  /// Progress lines on stderr every `report_every` kill points (0 = quiet).
  uint64_t report_every = 0;
};

struct TortureReport {
  bool passed = false;
  /// Kill points that actually fired a crash and went through recovery.
  uint64_t kill_points_exercised = 0;
  /// Successful recoveries (== kill_points_exercised when passed).
  uint64_t recoveries = 0;
  /// First divergence/failure, empty when passed.
  std::string failure;
};

/// The deterministic corpus + batch schedule the torture run streams.
struct TortureStream {
  std::unique_ptr<Corpus> corpus;
  std::vector<std::vector<DocId>> batches;
  std::vector<DayTime> taus;
};

TortureStream BuildTortureStream(const TortureOptions& options);

/// Runs the full matrix. Returns a non-OK status only for setup errors
/// (e.g. the reference run itself failing); a recovery divergence is
/// reported via TortureReport::passed/failure.
Result<TortureReport> RunCrashTorture(const TortureOptions& options);

}  // namespace nidc

#endif  // NIDC_STORE_TORTURE_H_
