#include "nidc/store/manifest.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "nidc/util/string_util.h"

namespace nidc {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kSnapshotPrefix[] = "snapshot-";
}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  return StringPrintf("snapshot-%06llu",
                      static_cast<unsigned long long>(generation));
}

std::string WalFileName(uint64_t generation) {
  return StringPrintf("wal-%06llu",
                      static_cast<unsigned long long>(generation));
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* generation) {
  if (!StartsWith(name, kSnapshotPrefix)) return false;
  const std::string digits = name.substr(sizeof(kSnapshotPrefix) - 1);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *generation = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

std::string SerializeManifest(const Manifest& manifest) {
  std::ostringstream out;
  out << "nidc-manifest v1\n";
  out << "generation " << manifest.generation << '\n';
  out << "snapshot " << manifest.snapshot_file << '\n';
  out << "wal " << manifest.wal_file << '\n';
  return out.str();
}

Result<Manifest> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  std::string version;
  if (!(in >> word >> version) || word != "nidc-manifest" ||
      version != "v1") {
    return Status::InvalidArgument("not a nidc-manifest v1 file");
  }
  Manifest manifest;
  if (!(in >> word >> manifest.generation) || word != "generation") {
    return Status::InvalidArgument("malformed generation line");
  }
  if (!(in >> word >> manifest.snapshot_file) || word != "snapshot") {
    return Status::InvalidArgument("malformed snapshot line");
  }
  if (!(in >> word >> manifest.wal_file) || word != "wal") {
    return Status::InvalidArgument("malformed wal line");
  }
  return manifest;
}

Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest) {
  return AtomicWriteFile(env, dir + "/" + kManifestName,
                         SerializeManifest(manifest));
}

Result<Manifest> ReadManifest(Env* env, const std::string& dir) {
  auto text = env->ReadFileToString(dir + "/" + kManifestName);
  if (!text.ok()) return text.status();
  return ParseManifest(*text);
}

Result<std::vector<uint64_t>> ListSnapshotGenerations(
    Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> generations;
  for (const std::string& name : *names) {
    uint64_t generation = 0;
    if (ParseSnapshotFileName(name, &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.rbegin(), generations.rend());
  return generations;
}

std::vector<uint64_t> ListRecoveryCandidates(Env* env,
                                             const std::string& dir) {
  std::vector<uint64_t> candidates;
  if (Result<Manifest> manifest = ReadManifest(env, dir); manifest.ok()) {
    candidates.push_back(manifest->generation);
  }
  if (Result<std::vector<uint64_t>> scanned = ListSnapshotGenerations(env, dir);
      scanned.ok()) {
    for (uint64_t generation : *scanned) {
      if (std::find(candidates.begin(), candidates.end(), generation) ==
          candidates.end()) {
        candidates.push_back(generation);
      }
    }
  }
  // Keep the manifest's generation first, but order the rest descending.
  if (candidates.size() > 1) {
    std::sort(candidates.begin() + 1, candidates.end(),
              std::greater<uint64_t>());
  }
  return candidates;
}

}  // namespace nidc
