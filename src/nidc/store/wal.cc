#include "nidc/store/wal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "nidc/util/crc32.h"
#include "nidc/util/string_util.h"

namespace nidc {

namespace {

constexpr char kWalMagic[] = "NIDCWAL1";
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 masked crc

// A single record larger than this is treated as framing damage rather
// than an allocation request (a torn length field can decode to garbage).
constexpr uint32_t kMaxRecordSize = 1u << 30;

void AppendFrame(std::string* out, std::string_view payload);

void PutU32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xFF),
                   static_cast<char>((v >> 8) & 0xFF),
                   static_cast<char>((v >> 16) & 0xFF),
                   static_cast<char>((v >> 24) & 0xFF)};
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, MaskCrc32c(Crc32c(payload)));
  out->append(payload);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Env* env,
                                                     const std::string& path,
                                                     WalSyncMode mode) {
  auto file = env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  std::unique_ptr<WalWriter> writer(
      new WalWriter(path, std::move(file).value(), mode));
  NIDC_RETURN_NOT_OK(writer->file_->Append(
      std::string_view(kWalMagic, kMagicSize)));
  if (mode == WalSyncMode::kEveryRecord) {
    NIDC_RETURN_NOT_OK(writer->file_->Sync());
  }
  return writer;
}

Status WalWriter::AppendRecord(std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append to closed WAL " + path_);
  }
  if (payload.size() > kMaxRecordSize) {
    return Status::InvalidArgument("WAL record exceeds maximum size");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(&frame, payload);
  NIDC_RETURN_NOT_OK(file_->Append(frame));
  if (mode_ == WalSyncMode::kEveryRecord) {
    NIDC_RETURN_NOT_OK(file_->Sync());
  }
  ++records_appended_;
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("sync of closed WAL " + path_);
  }
  return file_->Sync();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const Status st = file_->Close();
  file_ = nullptr;
  return st;
}

Result<WalReadResult> ReadWal(Env* env, const std::string& path) {
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  WalReadResult result;
  if (data.size() < kMagicSize ||
      std::memcmp(data.data(), kWalMagic, kMagicSize) != 0) {
    result.clean = data.empty();
    result.dropped_bytes = data.size();
    if (!result.clean) result.error = "missing or damaged WAL header";
    return result;
  }
  size_t pos = kMagicSize;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderSize) {
      result.clean = false;
      result.dropped_bytes = data.size() - pos;
      result.error = "truncated frame header at offset " +
                     std::to_string(pos);
      break;
    }
    const uint32_t length = GetU32(data.data() + pos);
    const uint32_t stored_crc = UnmaskCrc32c(GetU32(data.data() + pos + 4));
    if (length > kMaxRecordSize ||
        data.size() - pos - kFrameHeaderSize < length) {
      result.clean = false;
      result.dropped_bytes = data.size() - pos;
      result.error = "truncated record body at offset " +
                     std::to_string(pos);
      break;
    }
    const std::string_view payload(data.data() + pos + kFrameHeaderSize,
                                   length);
    if (Crc32c(payload) != stored_crc) {
      result.clean = false;
      result.dropped_bytes = data.size() - pos;
      result.error = "checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    result.records.emplace_back(payload);
    pos += kFrameHeaderSize + length;
  }
  return result;
}

Status RewriteWal(Env* env, const std::string& path,
                  const std::vector<std::string>& records) {
  std::string contents(kWalMagic, kMagicSize);
  for (const std::string& record : records) {
    if (record.size() > kMaxRecordSize) {
      return Status::InvalidArgument("WAL record exceeds maximum size");
    }
    AppendFrame(&contents, record);
  }
  return AtomicWriteFile(env, path, contents);
}

Result<std::unique_ptr<WalWriter>> OpenWalForAppend(Env* env,
                                                    const std::string& path,
                                                    WalSyncMode mode,
                                                    uint64_t existing_records) {
  auto file = env->NewWritableFile(path, /*truncate=*/false);
  if (!file.ok()) return file.status();
  std::unique_ptr<WalWriter> writer(
      new WalWriter(path, std::move(file).value(), mode));
  writer->records_appended_ = existing_records;
  return writer;
}

std::string EncodeStepRecord(const WalStepRecord& record) {
  std::string out = StringPrintf("step %a %zu", record.tau,
                                 record.new_docs.size());
  for (DocId id : record.new_docs) {
    out += StringPrintf(" %u", id);
  }
  return out;
}

Result<WalStepRecord> DecodeStepRecord(std::string_view payload) {
  const std::vector<std::string> tokens =
      Split(std::string(payload), ' ');
  if (tokens.size() < 3 || tokens[0] != "step") {
    return Status::InvalidArgument("not a step record");
  }
  WalStepRecord record;
  char* end = nullptr;
  record.tau = std::strtod(tokens[1].c_str(), &end);
  if (end == tokens[1].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad tau in step record: " + tokens[1]);
  }
  errno = 0;
  const unsigned long long count = std::strtoull(tokens[2].c_str(), &end, 10);
  if (end == tokens[2].c_str() || *end != '\0' ||
      count != tokens.size() - 3) {
    return Status::InvalidArgument("bad doc count in step record");
  }
  record.new_docs.reserve(count);
  for (size_t i = 3; i < tokens.size(); ++i) {
    errno = 0;
    const unsigned long long id = std::strtoull(tokens[i].c_str(), &end, 10);
    if (end == tokens[i].c_str() || *end != '\0' || errno == ERANGE ||
        id > std::numeric_limits<DocId>::max()) {
      return Status::InvalidArgument("bad doc id in step record: " +
                                     tokens[i]);
    }
    record.new_docs.push_back(static_cast<DocId>(id));
  }
  return record;
}

}  // namespace nidc
