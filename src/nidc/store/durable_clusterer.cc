#include "nidc/store/durable_clusterer.h"

#include <algorithm>

#include "nidc/obs/event_log.h"
#include "nidc/util/logging.h"

namespace nidc {

Result<std::unique_ptr<DurableClusterer>> DurableClusterer::Open(
    const Corpus* corpus, ForgettingParams params,
    IncrementalOptions options, DurableOptions durable) {
  if (durable.dir.empty()) {
    return Status::InvalidArgument("DurableOptions::dir is required");
  }
  if (durable.keep_generations == 0) {
    return Status::InvalidArgument("keep_generations must be >= 1");
  }
  if (durable.checkpoint_every == 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 1");
  }
  NIDC_RETURN_NOT_OK(params.Validate());
  Env* env = durable.env != nullptr ? durable.env : Env::Default();
  durable.env = env;
  NIDC_RETURN_NOT_OK(env->CreateDir(durable.dir));
  // Sweep temp files a crashed AtomicWriteFile may have left behind; they
  // are never recovery inputs (the scan only matches fully renamed names).
  if (Result<std::vector<std::string>> names = env->ListDir(durable.dir);
      names.ok()) {
    for (const std::string& name : *names) {
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        env->RemoveFile(durable.dir + "/" + name);
      }
    }
  }
  obs::MetricsRegistry* metrics =
      durable.metrics != nullptr ? durable.metrics : options.metrics;

  RecoveryInfo recovery;
  std::unique_ptr<IncrementalClusterer> inner;
  uint64_t newest_seen = 0;
  for (uint64_t generation : ListRecoveryCandidates(env, durable.dir)) {
    newest_seen = std::max(newest_seen, generation);
    const std::string snapshot_path =
        durable.dir + "/" + SnapshotFileName(generation);
    Result<ClustererState> state = LoadState(snapshot_path, env);
    Result<std::unique_ptr<IncrementalClusterer>> restored =
        state.ok() ? RestoreClusterer(corpus, options, *state)
                   : Result<std::unique_ptr<IncrementalClusterer>>(
                         state.status());
    if (!restored.ok()) {
      ++recovery.snapshot_fallbacks;
      NIDC_LOG(Warning) << "checkpoint generation " << generation
                       << " unusable (" << restored.status().ToString()
                       << "); falling back";
      continue;
    }
    inner = std::move(restored).value();

    // Replay this generation's WAL tail through Step().
    const std::string wal_path =
        durable.dir + "/" + WalFileName(generation);
    if (env->FileExists(wal_path)) {
      Result<WalReadResult> wal = ReadWal(env, wal_path);
      if (!wal.ok()) return wal.status();
      recovery.dropped_wal_bytes += wal->dropped_bytes;
      if (!wal->clean) {
        NIDC_LOG(Warning) << "WAL " << wal_path << ": " << wal->error
                         << " (" << wal->dropped_bytes
                         << " bytes quarantined)";
      }
      for (const std::string& payload : wal->records) {
        Result<WalStepRecord> record = DecodeStepRecord(payload);
        if (!record.ok()) {
          ++recovery.quarantined_records;
          NIDC_LOG(Warning) << "quarantining undecodable WAL record: "
                           << record.status().ToString();
          break;
        }
        Result<StepResult> applied =
            inner->Step(record->new_docs, record->tau);
        if (!applied.ok() &&
            applied.status().code() != StatusCode::kFailedPrecondition) {
          // FailedPrecondition (an empty active window) also occurred in
          // the original run and leaves the model advanced — replay goes
          // on. Anything else means the record contradicts the state.
          ++recovery.quarantined_records;
          NIDC_LOG(Warning) << "quarantining unreplayable WAL record: "
                           << applied.status().ToString();
          break;
        }
        ++recovery.replayed_records;
      }
    }
    recovery.resumed = true;
    recovery.source_generation = generation;
    break;
  }

  if (inner == nullptr) {
    inner = std::make_unique<IncrementalClusterer>(corpus, params, options);
  }
  recovery.recovered_now = inner->model().now();

  std::unique_ptr<DurableClusterer> durable_clusterer(new DurableClusterer(
      std::move(inner), std::move(durable), metrics));
  durable_clusterer->recovery_ = recovery;
  durable_clusterer->generation_ = newest_seen;
  // Start a fresh generation so post-recovery writes never touch the
  // files recovery might still need as fallback.
  NIDC_RETURN_NOT_OK(durable_clusterer->Rotate());
  durable_clusterer->recovery_.new_generation =
      durable_clusterer->generation_;

  if (metrics != nullptr) {
    metrics->GetCounter("store.recovery.replayed_records")
        ->Increment(recovery.replayed_records);
    metrics->GetCounter("store.recovery.quarantined_records")
        ->Increment(recovery.quarantined_records);
    metrics->GetCounter("store.recovery.snapshot_fallbacks")
        ->Increment(recovery.snapshot_fallbacks);
    metrics->GetCounter("store.recovery.dropped_wal_bytes")
        ->Increment(recovery.dropped_wal_bytes);
  }
  return durable_clusterer;
}

Result<StepResult> DurableClusterer::Step(const std::vector<DocId>& new_docs,
                                          DayTime tau) {
  if (closed_ || wal_ == nullptr) {
    return Status::FailedPrecondition("durable clusterer is closed");
  }
  // Validate first so rejected inputs never enter the log.
  NIDC_RETURN_NOT_OK(inner_->ValidateStepInputs(new_docs, tau));

  WalStepRecord record;
  record.tau = tau;
  record.new_docs = new_docs;
  const std::string payload = EncodeStepRecord(record);
  const uint64_t bytes_before = wal_->bytes_appended();
  NIDC_RETURN_NOT_OK(wal_->AppendRecord(payload));
  ++records_since_checkpoint_;
  BumpCounter("store.wal_records");
  BumpCounter("store.wal_bytes", wal_->bytes_appended() - bytes_before);
  if (durable_.tracer != nullptr) {
    durable_.tracer->RecordActive(obs::Stage::kWalCommit);
  }
  if (durable_.sink != nullptr) {
    // Ship only after the record is durably appended locally: a follower
    // never holds a record this leader could lose in a crash it survives.
    durable_.sink->OnWalRecord(generation_, records_since_checkpoint_,
                               inner_->step_count() + 1, payload);
  }

  Result<StepResult> result = inner_->Step(new_docs, tau);
  // FailedPrecondition (no active documents) leaves the instance — and
  // its WAL — consistent; the caller may keep streaming.
  if (!result.ok() &&
      result.status().code() != StatusCode::kFailedPrecondition) {
    return result;
  }
  if (durable_.tracer != nullptr) {
    durable_.tracer->RecordActive(obs::Stage::kStep);
  }
  if (records_since_checkpoint_ >= durable_.checkpoint_every) {
    NIDC_RETURN_NOT_OK(Rotate());
    if (durable_.tracer != nullptr) {
      durable_.tracer->RecordActive(obs::Stage::kCheckpoint);
    }
  }
  return result;
}

Status DurableClusterer::Checkpoint() {
  if (closed_) {
    return Status::FailedPrecondition("durable clusterer is closed");
  }
  return Rotate();
}

Status DurableClusterer::Rotate() {
  Env* env = durable_.env;
  const uint64_t next = generation_ + 1;
  const uint64_t sealed_records = records_since_checkpoint_;
  const std::string snapshot_name = SnapshotFileName(next);
  const std::string wal_name = WalFileName(next);

  // Order matters: snapshot first, then a fresh WAL, then the manifest
  // flip. A crash between any two leaves the previous generation (still
  // on disk, still current in the manifest) fully recoverable.
  const std::string snapshot_text = SerializeState(CaptureState(*inner_));
  NIDC_RETURN_NOT_OK(AtomicWriteFile(env, durable_.dir + "/" + snapshot_name,
                                     snapshot_text));
  if (wal_ != nullptr) {
    wal_->Close();  // superseded; any unsynced tail is covered by the snapshot
  }
  auto wal = WalWriter::Create(env, durable_.dir + "/" + wal_name,
                               durable_.wal_sync);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();

  Manifest manifest;
  manifest.generation = next;
  manifest.snapshot_file = snapshot_name;
  manifest.wal_file = wal_name;
  NIDC_RETURN_NOT_OK(WriteManifest(env, durable_.dir, manifest));

  generation_ = next;
  records_since_checkpoint_ = 0;
  if (durable_.sink != nullptr) {
    // The manifest flip above is the commit point; followers only learn
    // about generations that recovery on this node would itself pick.
    durable_.sink->OnRotate(generation_, sealed_records,
                            inner_->step_count(), snapshot_text);
  }
  BumpCounter("store.snapshots");
  if (metrics_ != nullptr) {
    metrics_->GetGauge("store.generation")
        ->Set(static_cast<double>(generation_));
  }
  if (obs::EventLog* events = inner_->options().events; events != nullptr) {
    obs::Event committed;
    committed.type = obs::EventType::kCheckpointCommitted;
    committed.detail = generation_;
    events->Emit(committed);
    obs::Event rotated;
    rotated.type = obs::EventType::kWalRotated;
    rotated.detail = generation_;
    events->Emit(rotated);
  }

  // Prune generations beyond the retention window (best effort — stale
  // files are harmless and will be retried next rotation).
  if (Result<std::vector<uint64_t>> generations =
          ListSnapshotGenerations(env, durable_.dir);
      generations.ok()) {
    for (uint64_t generation : *generations) {
      if (generation + durable_.keep_generations <= generation_) {
        env->RemoveFile(durable_.dir + "/" + SnapshotFileName(generation));
        env->RemoveFile(durable_.dir + "/" + WalFileName(generation));
      }
    }
  }
  return Status::OK();
}

Status DurableClusterer::Close() {
  if (closed_) return Status::OK();
  Status st = Rotate();  // final durable snapshot; empty WAL tail
  if (wal_ != nullptr) {
    const Status closed = wal_->Close();
    if (st.ok()) st = closed;
    wal_ = nullptr;
  }
  closed_ = true;
  return st;
}

DurableClusterer::~DurableClusterer() { Close(); }

void DurableClusterer::BumpCounter(const char* name, uint64_t delta) {
  if (metrics_ != nullptr) metrics_->GetCounter(name)->Increment(delta);
}

}  // namespace nidc
