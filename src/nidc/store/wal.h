// Write-ahead log for the incremental clusterer (store/ durability layer).
//
// One record is appended per Step *before* the step mutates in-memory
// state, so "newest valid snapshot + replay of the WAL tail" reconstructs
// the clusterer after a crash (see durable_clusterer.h for the protocol).
//
// File layout:
//   8-byte magic "NIDCWAL1"
//   repeated records:  u32-le payload length | u32-le masked CRC-32C of
//                      the payload | payload bytes
//
// The reader is torn-tail tolerant: it stops at the first frame that is
// short, oversized, or fails its checksum and reports how many bytes it
// dropped. A WAL truncated mid-record therefore recovers every record
// before the tear instead of failing outright.

#ifndef NIDC_STORE_WAL_H_
#define NIDC_STORE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nidc/corpus/document.h"
#include "nidc/util/env.h"

namespace nidc {

/// When WAL appends are pushed to durable storage.
enum class WalSyncMode {
  /// fsync after every record: a completed Step is never lost.
  kEveryRecord,
  /// No per-record fsync; records since the last snapshot (or explicit
  /// Sync) can vanish in a crash. Recovery still yields a consistent,
  /// merely older, state.
  kNone,
};

/// Appends CRC-framed records to a fresh WAL file.
class WalWriter {
 public:
  /// Creates (truncates) `path` and writes the file header.
  static Result<std::unique_ptr<WalWriter>> Create(Env* env,
                                                   const std::string& path,
                                                   WalSyncMode mode);

  /// Appends one record; fsyncs when the mode is kEveryRecord.
  Status AppendRecord(std::string_view payload);

  /// Explicit fsync (used at snapshot rotation under WalSyncMode::kNone).
  Status Sync();

  Status Close();

  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  const std::string& path() const { return path_; }

 private:
  friend Result<std::unique_ptr<WalWriter>> OpenWalForAppend(
      Env* env, const std::string& path, WalSyncMode mode,
      uint64_t existing_records);

  WalWriter(std::string path, std::unique_ptr<WritableFile> file,
            WalSyncMode mode)
      : path_(std::move(path)), file_(std::move(file)), mode_(mode) {}

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  WalSyncMode mode_;
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
};

/// Outcome of scanning one WAL file.
struct WalReadResult {
  std::vector<std::string> records;
  /// Bytes after the last valid record that were dropped (0 on a clean
  /// read all the way to EOF).
  size_t dropped_bytes = 0;
  /// True when the file ended exactly on a record boundary.
  bool clean = true;
  /// Human-readable description of the first bad frame, when !clean.
  std::string error;
};

/// Reads every valid record of `path`. Returns IOError only when the file
/// cannot be read at all; framing damage is reported via WalReadResult.
Result<WalReadResult> ReadWal(Env* env, const std::string& path);

/// Atomically rewrites `path` to contain exactly `records` (header
/// included). Used to repair a torn tail before reopening a WAL for
/// append: records past the damage are discarded, records before it are
/// kept byte-identical.
Status RewriteWal(Env* env, const std::string& path,
                  const std::vector<std::string>& records);

/// Reopens an existing WAL for appending (no header is written). The file
/// must end on a record boundary — callers that found a torn tail repair
/// it with RewriteWal first. `existing_records` seeds records_appended()
/// so sequence numbers continue where the file left off.
Result<std::unique_ptr<WalWriter>> OpenWalForAppend(Env* env,
                                                    const std::string& path,
                                                    WalSyncMode mode,
                                                    uint64_t existing_records);

/// One logical clusterer step as logged in the WAL.
struct WalStepRecord {
  DayTime tau = 0.0;
  std::vector<DocId> new_docs;
};

/// Step-record payload codec. The timestamp is serialized as a C99 hex
/// float so replay sees the bit-exact value the original Step saw.
std::string EncodeStepRecord(const WalStepRecord& record);
Result<WalStepRecord> DecodeStepRecord(std::string_view payload);

}  // namespace nidc

#endif  // NIDC_STORE_WAL_H_
