#include "nidc/store/torture.h"

#include <cstdio>
#include <random>

#include "nidc/core/state_io.h"
#include "nidc/util/fault_env.h"
#include "nidc/util/string_util.h"

namespace nidc {

namespace {

// Four synthetic "topics" with overlapping but distinguishable vocabulary,
// so every step poses a small real clustering problem.
constexpr const char* kTopicWords[4][8] = {
    {"election", "senate", "vote", "ballot", "campaign", "poll", "candidate",
     "debate"},
    {"earthquake", "rescue", "aftershock", "tremor", "relief", "damage",
     "evacuation", "magnitude"},
    {"championship", "tournament", "goal", "finals", "coach", "stadium",
     "season", "victory"},
    {"merger", "shares", "market", "earnings", "investor", "acquisition",
     "profit", "quarter"},
};

// Wipes every file in `dir` (flat directory; checkpoint dirs have no
// subdirectories).
void WipeDir(Env* env, const std::string& dir) {
  Result<std::vector<std::string>> names = env->ListDir(dir);
  if (!names.ok()) return;  // directory absent: nothing to wipe
  for (const std::string& name : *names) {
    env->RemoveFile(dir + "/" + name);
  }
}

std::string Fingerprint(const IncrementalClusterer& clusterer) {
  return SerializeState(CaptureState(clusterer));
}

DurableOptions MakeDurableOptions(const TortureOptions& options, Env* env) {
  DurableOptions durable;
  durable.dir = options.dir;
  durable.checkpoint_every = options.checkpoint_every;
  durable.wal_sync = options.wal_sync;
  durable.env = env;
  return durable;
}

// Feeds batches starting at the clusterer's applied-step index. Stops on
// kIOError (the injected crash); any other unexpected error is fatal.
Status FeedRemaining(DurableClusterer* durable, const TortureStream& stream) {
  for (size_t i = durable->applied_steps(); i < stream.batches.size(); ++i) {
    Result<StepResult> result =
        durable->Step(stream.batches[i], stream.taus[i]);
    if (result.ok()) continue;
    const StatusCode code = result.status().code();
    if (code == StatusCode::kFailedPrecondition) continue;
    if (code == StatusCode::kIOError) return result.status();
    return Status::Internal("torture step " + std::to_string(i) +
                            " rejected: " + result.status().ToString());
  }
  return Status::OK();
}

}  // namespace

TortureStream BuildTortureStream(const TortureOptions& options) {
  TortureStream stream;
  stream.corpus = std::make_unique<Corpus>();
  std::mt19937 rng(static_cast<uint32_t>(options.seed));
  std::uniform_int_distribution<size_t> pick_word(0, 7);
  for (size_t i = 0; i < options.num_steps; ++i) {
    const DayTime tau = static_cast<double>(i + 1) * options.step_days;
    std::vector<DocId> batch;
    for (size_t d = 0; d < options.docs_per_step; ++d) {
      const size_t topic = (i + d) % 4;
      std::string text;
      for (size_t w = 0; w < 6; ++w) {
        if (w > 0) text += ' ';
        text += kTopicWords[topic][pick_word(rng)];
      }
      const DayTime time =
          static_cast<double>(i) * options.step_days +
          options.step_days * static_cast<double>(d + 1) /
              static_cast<double>(options.docs_per_step + 1);
      batch.push_back(stream.corpus->AddText(
          text, time, static_cast<TopicId>(topic + 1)));
    }
    stream.batches.push_back(std::move(batch));
    stream.taus.push_back(tau);
  }
  return stream;
}

Result<TortureReport> RunCrashTorture(const TortureOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("TortureOptions::dir is required");
  }
  TortureReport report;
  const TortureStream stream = BuildTortureStream(options);
  IncrementalOptions incremental;
  incremental.kmeans.k = options.k;

  // Reference: the uninterrupted run.
  IncrementalClusterer reference(stream.corpus.get(), options.params,
                                 incremental);
  for (size_t i = 0; i < stream.batches.size(); ++i) {
    Result<StepResult> result =
        reference.Step(stream.batches[i], stream.taus[i]);
    if (!result.ok() &&
        result.status().code() != StatusCode::kFailedPrecondition) {
      return Status::Internal("reference step " + std::to_string(i) +
                              " failed: " + result.status().ToString());
    }
  }
  const std::string want = Fingerprint(reference);

  Env* base = Env::Default();
  for (uint64_t kill = 1;; ++kill) {
    if (options.max_kill_points > 0 && kill > options.max_kill_points) {
      report.passed = report.failure.empty();
      return report;
    }
    WipeDir(base, options.dir);

    // Doomed run: crash at the kill-th mutating filesystem operation,
    // cycling the three crash-flush policies across kill points.
    const CrashFlush flush = static_cast<CrashFlush>((kill - 1) % 3);
    FaultInjectionEnv fault_env(base);
    fault_env.ArmCrashAtOp(kill, flush);
    {
      Result<std::unique_ptr<DurableClusterer>> doomed =
          DurableClusterer::Open(stream.corpus.get(), options.params,
                                 incremental,
                                 MakeDurableOptions(options, &fault_env));
      if (doomed.ok()) {
        const Status fed = FeedRemaining(doomed->get(), stream);
        if (!fed.ok() && fed.code() != StatusCode::kIOError) return fed;
        if (!fault_env.crashed()) {
          (*doomed)->Close();  // may itself be the crashing operation
        }
      }
    }
    if (!fault_env.crashed()) {
      // The whole run (open + stream + close) finished under the injected
      // budget: every reachable crash point has been exercised.
      report.passed = true;
      return report;
    }
    ++report.kill_points_exercised;

    // Recovery with a healthy filesystem: reopen, resume, finish.
    Result<std::unique_ptr<DurableClusterer>> recovered =
        DurableClusterer::Open(stream.corpus.get(), options.params,
                               incremental, MakeDurableOptions(options, base));
    if (!recovered.ok()) {
      report.failure = StringPrintf(
          "kill point %llu (flush mode %d): recovery failed: %s",
          static_cast<unsigned long long>(kill), static_cast<int>(flush),
          recovered.status().ToString().c_str());
      return report;
    }
    ++report.recoveries;
    if (const Status fed = FeedRemaining(recovered->get(), stream);
        !fed.ok()) {
      report.failure = StringPrintf(
          "kill point %llu (flush mode %d): resume failed: %s",
          static_cast<unsigned long long>(kill), static_cast<int>(flush),
          fed.ToString().c_str());
      return report;
    }
    const std::string got = Fingerprint((*recovered)->clusterer());
    (*recovered)->Close();
    if (got != want) {
      report.failure = StringPrintf(
          "kill point %llu (flush mode %d): recovered final state "
          "diverges from the uninterrupted run",
          static_cast<unsigned long long>(kill), static_cast<int>(flush));
      return report;
    }
    if (options.report_every > 0 && kill % options.report_every == 0) {
      std::fprintf(stderr, "torture: %llu kill points ok\n",
                   static_cast<unsigned long long>(kill));
    }
  }
}

}  // namespace nidc
