// Checkpoint-directory manifest: a tiny, atomically replaced file that
// names the current snapshot + WAL generation. Layout of a checkpoint
// directory:
//
//   MANIFEST            current generation pointer (this file)
//   snapshot-000012     ClustererState snapshot for generation 12
//   wal-000012          WAL with the steps applied after snapshot 12
//   snapshot-000011 ... older generations kept as fallback
//
// The manifest is written with AtomicWriteFile, so it always names a
// generation whose snapshot was already durably written. If it is missing
// or corrupt, recovery falls back to scanning the directory for snapshot
// files, newest generation first.

#ifndef NIDC_STORE_MANIFEST_H_
#define NIDC_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nidc/util/env.h"

namespace nidc {

struct Manifest {
  uint64_t generation = 0;
  std::string snapshot_file;  // file name within the checkpoint directory
  std::string wal_file;
};

/// Canonical per-generation file names ("snapshot-000012", "wal-000012").
std::string SnapshotFileName(uint64_t generation);
std::string WalFileName(uint64_t generation);

/// Parses the generation number out of a snapshot file name; returns
/// false when `name` is not a snapshot file.
bool ParseSnapshotFileName(const std::string& name, uint64_t* generation);

/// Serializes / parses the manifest text representation.
std::string SerializeManifest(const Manifest& manifest);
Result<Manifest> ParseManifest(const std::string& text);

/// Atomically replaces `dir`/MANIFEST.
Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest);

/// Reads `dir`/MANIFEST. IOError when unreadable, InvalidArgument when
/// damaged — callers fall back to ListSnapshotGenerations in both cases.
Result<Manifest> ReadManifest(Env* env, const std::string& dir);

/// Generations with a snapshot file present in `dir`, newest first.
Result<std::vector<uint64_t>> ListSnapshotGenerations(Env* env,
                                                      const std::string& dir);

/// Candidate generations to try recovering from, best first: the
/// manifest's generation leads (it is only updated after its snapshot is
/// durable), then every other snapshot found by the directory scan in
/// descending order. Used by DurableClusterer::Open and the follower-side
/// ReplicaClusterer, so both sides recover through the same policy.
std::vector<uint64_t> ListRecoveryCandidates(Env* env,
                                             const std::string& dir);

}  // namespace nidc

#endif  // NIDC_STORE_MANIFEST_H_
