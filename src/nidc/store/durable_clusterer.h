// Crash-safe wrapper around IncrementalClusterer (the tentpole of the
// store/ durability subsystem).
//
// Persistence protocol:
//   * Every Step is first appended to the current generation's write-ahead
//     log (wal.h) — tau + new document ids, CRC-framed — and only then
//     applied in memory. Under WalSyncMode::kEveryRecord the record is
//     fsynced before the step runs, so a completed step is never lost.
//   * Every `checkpoint_every` steps the wrapper rotates to a new
//     generation: it writes a bit-exact ClustererState snapshot
//     (write-temp + fsync + rename), starts a fresh WAL, atomically
//     updates the MANIFEST, and prunes generations beyond
//     `keep_generations`.
//   * Open() recovers: newest valid snapshot (manifest first, directory
//     scan as fallback) + replay of that generation's WAL tail through
//     Step(). Corrupt WAL tails are quarantined — valid records before
//     the damage still replay — and a corrupt snapshot falls back to the
//     previous generation instead of failing startup.
//
// Because snapshots carry the model's ExactModelState, recovery is
// *bit-identical*: a recovered clusterer fed the rest of the stream
// produces exactly the clustering an uninterrupted run would have
// produced. tools/nidc_crash_torture kills the I/O layer at every
// injected fault point and asserts precisely that.
//
// Error contract: a Status with code kIOError means the storage layer is
// in an unknown state — discard the instance and recover via Open(). Any
// other error (e.g. FailedPrecondition when no documents are active)
// leaves the instance consistent and usable.

#ifndef NIDC_STORE_DURABLE_CLUSTERER_H_
#define NIDC_STORE_DURABLE_CLUSTERER_H_

#include <memory>
#include <string>

#include "nidc/core/state_io.h"
#include "nidc/store/manifest.h"
#include "nidc/store/wal.h"
#include "nidc/obs/metrics.h"
#include "nidc/obs/reqtrace.h"

namespace nidc {

/// Observer of the durability layer's commit points, the attachment point
/// for WAL shipping (src/nidc/repl/). Callbacks run on the Step thread
/// *after* the corresponding bytes are durably on local storage, so a
/// sink never observes a record the leader could lose in a crash it
/// survives. Implementations must not fail the step path: a follower
/// outage degrades replication (queueing, drop-oldest, snapshot
/// catch-up), never ingest.
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;

  /// One WAL record was appended (and fsynced, under kEveryRecord).
  /// `sequence` is 1-based within `generation`; `leader_steps` is the
  /// total step count once this record is applied.
  virtual void OnWalRecord(uint64_t generation, uint64_t sequence,
                           uint64_t leader_steps,
                           std::string_view payload) = 0;

  /// A checkpoint rotation committed: generation `generation` is now
  /// current, its base state is `snapshot` (serialized ClustererState),
  /// and the previous generation's WAL was sealed at `sealed_records`
  /// records.
  virtual void OnRotate(uint64_t generation, uint64_t sealed_records,
                        uint64_t leader_steps,
                        const std::string& snapshot) = 0;
};

/// Configuration of the durability wrapper.
struct DurableOptions {
  /// Checkpoint directory (created if missing). Required.
  std::string dir;

  /// Steps between snapshot rotations.
  uint64_t checkpoint_every = 16;

  /// WAL fsync policy (see WalSyncMode). kNone trades the tail since the
  /// last checkpoint for throughput; recovery still yields a consistent,
  /// merely older, state.
  WalSyncMode wal_sync = WalSyncMode::kEveryRecord;

  /// Newest generations kept on disk; older snapshot/WAL pairs are pruned
  /// after a successful rotation. Must be >= 1.
  uint64_t keep_generations = 2;

  /// Filesystem to operate on; null selects Env::Default(). Tests inject
  /// a FaultInjectionEnv here.
  Env* env = nullptr;

  /// Recovery / IO counters ("store.*"); null falls back to the inner
  /// IncrementalOptions::metrics, and disables them when that is null too.
  obs::MetricsRegistry* metrics = nullptr;

  /// Replication hook; null disables shipping. Must outlive the
  /// clusterer. See ReplicationSink for the callback contract.
  ReplicationSink* sink = nullptr;

  /// Request tracer; null disables stage stamping. Step stamps the
  /// wal_commit / step / checkpoint stages for the traces the caller
  /// scoped onto the thread (RequestTracer::StepScope) — a pure
  /// side-channel off the deterministic clustering path.
  obs::RequestTracer* tracer = nullptr;
};

/// What Open() found and did while recovering.
struct RecoveryInfo {
  /// True when a previous generation was loaded (false = fresh start).
  bool resumed = false;
  /// Generation recovered from (meaningful when resumed).
  uint64_t source_generation = 0;
  /// Generation started for new writes.
  uint64_t new_generation = 0;
  /// WAL records replayed through Step() during recovery.
  uint64_t replayed_records = 0;
  /// Damaged WAL bytes dropped after the last valid record.
  uint64_t dropped_wal_bytes = 0;
  /// Records that were framed correctly but could not be applied
  /// (undecodable payload or rejected by Step); they and everything after
  /// them are skipped.
  uint64_t quarantined_records = 0;
  /// Candidate generations skipped because their snapshot (or restore)
  /// was invalid.
  uint64_t snapshot_fallbacks = 0;
  /// Model clock after recovery.
  DayTime recovered_now = 0.0;
};

class DurableClusterer {
 public:
  /// Opens (and if necessary creates) the checkpoint directory, recovers
  /// the newest valid state, and starts a fresh generation. When a
  /// snapshot is recovered its persisted ForgettingParams take precedence
  /// over `params` (matching `nidc_cli --state` resume semantics).
  static Result<std::unique_ptr<DurableClusterer>> Open(
      const Corpus* corpus, ForgettingParams params,
      IncrementalOptions options, DurableOptions durable);

  /// Logs the step to the WAL, applies it, and rotates the checkpoint
  /// when due. See the class comment for the error contract.
  Result<StepResult> Step(const std::vector<DocId>& new_docs, DayTime tau);

  /// Forces a snapshot rotation now.
  Status Checkpoint();

  /// Final checkpoint + WAL close. The destructor calls this (ignoring
  /// errors); call it explicitly to observe failures.
  Status Close();

  ~DurableClusterer();

  /// Steps applied to the in-memory clusterer so far, counting those
  /// accounted by the recovered snapshot and WAL replay. A driver that
  /// feeds a deterministic batch sequence resumes at this index.
  uint64_t applied_steps() const { return inner_->step_count(); }

  /// Snapshot generation currently being written (the durability lag
  /// trio below feeds /healthz: records since the last checkpoint out of
  /// `checkpoint_every` is how much stream the next crash would replay).
  uint64_t generation() const { return generation_; }

  /// WAL records appended since the last checkpoint rotation.
  uint64_t wal_records_since_checkpoint() const {
    return records_since_checkpoint_;
  }

  /// The configured rotation cadence (DurableOptions::checkpoint_every).
  uint64_t checkpoint_every() const { return durable_.checkpoint_every; }

  const RecoveryInfo& recovery() const { return recovery_; }
  const IncrementalClusterer& clusterer() const { return *inner_; }
  IncrementalClusterer& clusterer() { return *inner_; }
  const std::optional<ClusteringResult>& last_result() const {
    return inner_->last_result();
  }

 private:
  DurableClusterer(std::unique_ptr<IncrementalClusterer> inner,
                   DurableOptions durable, obs::MetricsRegistry* metrics)
      : inner_(std::move(inner)),
        durable_(std::move(durable)),
        metrics_(metrics) {}

  /// Writes a snapshot of the current state as generation `generation_+1`,
  /// switches the WAL, updates the manifest and prunes old generations.
  Status Rotate();

  void BumpCounter(const char* name, uint64_t delta = 1);

  std::unique_ptr<IncrementalClusterer> inner_;
  DurableOptions durable_;
  obs::MetricsRegistry* metrics_;
  RecoveryInfo recovery_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t generation_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  bool closed_ = false;
};

}  // namespace nidc

#endif  // NIDC_STORE_DURABLE_CLUSTERER_H_
