// Fixed-width ASCII table rendering for the benchmark harnesses, which must
// print the same rows the paper's tables report.

#ifndef NIDC_UTIL_TABLE_PRINTER_H_
#define NIDC_UTIL_TABLE_PRINTER_H_

#include <cstddef>

#include <ostream>
#include <string>
#include <vector>

namespace nidc {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"Approach", "Dataset", "Clustering"});
///   t.AddRow({"Incremental", "Jan18", "15min25sec"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule; pads each column to its widest cell.
  void Print(std::ostream& os) const;

  /// Convenience: render to a string (used in tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nidc

#endif  // NIDC_UTIL_TABLE_PRINTER_H_
