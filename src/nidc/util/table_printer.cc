#include "nidc/util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace nidc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace nidc
