#include "nidc/util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace nidc {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace nidc
