#include "nidc/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace nidc {

namespace {
// Process-wide aggregates across all pools (see ThreadPool::GlobalStats).
std::atomic<uint64_t> g_tasks_executed{0};
std::atomic<uint64_t> g_parallel_fors{0};
std::atomic<uint64_t> g_queue_high_water{0};

void RaiseHighWater(std::atomic<uint64_t>* high_water, uint64_t depth) {
  uint64_t current = high_water->load(std::memory_order_relaxed);
  while (depth > current &&
         !high_water->compare_exchange_weak(current, depth,
                                            std::memory_order_relaxed)) {
  }
}
}  // namespace

// Shared state of one ParallelFor invocation. Workers and the caller pull
// chunk indices from `next_chunk`; the last lane to finish signals `done`.
struct ThreadPool::ForState {
  size_t n = 0;
  size_t chunk = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t lanes_pending = 0;
  std::exception_ptr error;

  // Runs chunks until the cursor is exhausted; records the first exception.
  void Drain() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * chunk;
      const size_t end = std::min(n, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
  }

  void FinishLane() {
    std::lock_guard<std::mutex> lock(mu);
    if (--lanes_pending == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t resolved = Resolve(num_threads);
  workers_.reserve(resolved - 1);
  for (size_t i = 0; i + 1 < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  const size_t num_chunks = (n + grain - 1) / grain;
  // One lane (or one chunk) means the serial loop — skip the machinery so
  // ThreadPool(1) has no overhead and no cross-thread effects at all. The
  // grain-based chunking is preserved so callbacks see the same subranges
  // regardless of lane count.
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = c * grain;
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }

  ForState state;
  state.n = n;
  state.chunk = grain;
  state.num_chunks = num_chunks;
  state.fn = &fn;
  const size_t lanes = std::min(workers_.size() + 1, num_chunks);
  state.lanes_pending = lanes;

  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  g_parallel_fors.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i + 1 < lanes; ++i) {
      queue_.emplace_back([&state] {
        state.Drain();
        state.FinishLane();
      });
    }
    RaiseHighWater(&queue_high_water_, queue_.size());
    RaiseHighWater(&g_queue_high_water, queue_.size());
  }
  work_cv_.notify_all();

  state.Drain();
  state.FinishLane();
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.lanes_pending == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool::Stats ThreadPool::GlobalStats() {
  Stats s;
  s.tasks_executed = g_tasks_executed.load(std::memory_order_relaxed);
  s.parallel_fors = g_parallel_fors.load(std::memory_order_relaxed);
  s.queue_high_water = g_queue_high_water.load(std::memory_order_relaxed);
  return s;
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ThreadPool::Resolve(size_t requested) {
  return requested == 0 ? DefaultThreads() : requested;
}

}  // namespace nidc
