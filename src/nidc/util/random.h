// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (corpus generation, K-means
// seeding) draw from Rng so experiments are exactly reproducible from a seed.
// The generator is xoshiro256**, seeded via splitmix64, which is both faster
// and better distributed than std::mt19937 while keeping the state small.

#ifndef NIDC_UTIL_RANDOM_H_
#define NIDC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nidc {

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0xdeadbeefcafe1234ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller; one value per call, no caching so
  /// the stream is position-independent).
  double NextGaussian();

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size()-1 if rounding pushes past the end.
  /// Requires a positive total weight.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Poisson variate with the given mean (Knuth for small means, normal
  /// approximation for large means).
  int NextPoisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent s (via rejection
  /// inversion; exact for the bounded Zipf distribution).
  int NextZipf(int n, double s);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices in [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace nidc

#endif  // NIDC_UTIL_RANDOM_H_
