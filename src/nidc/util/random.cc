#include "nidc/util/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace nidc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  // Box–Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

int Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double value = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  return value < 0.0 ? 0 : static_cast<int>(value);
}

int Rng::NextZipf(int n, double s) {
  assert(n >= 1);
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) for the
  // bounded Zipf distribution P(k) ∝ k^-s, k in [1, n].
  if (n == 1) return 1;
  // H(x) = ∫ x^-s dx, the integral of the hat function.
  auto H = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto H_inv = [s](double x) {
    if (s == 1.0) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x1 = H(1.5) - 1.0;  // H(1.5) − h(1), h(1) = 1
  const double h_n = H(n + 0.5);
  const double threshold = 2.0 - H_inv(H(2.5) - std::pow(2.0, -s));
  for (;;) {
    const double u = h_n + NextDouble() * (h_x1 - h_n);
    const double x = H_inv(u);
    int k = static_cast<int>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept immediately in the tight band around k, otherwise accept iff
    // u falls under the true mass h(k) = k^-s.
    if (k - x <= threshold) return k;
    if (u >= H(k + 0.5) - std::pow(static_cast<double>(k), -s)) return k;
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace nidc
