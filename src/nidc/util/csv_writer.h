// CSV output for experiment series (e.g. figure data for external plotting).

#ifndef NIDC_UTIL_CSV_WRITER_H_
#define NIDC_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "nidc/util/status.h"

namespace nidc {

/// Buffers rows and writes an RFC-4180-quoted CSV file on Flush().
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Writes header + rows to `path`, atomically replacing any existing
  /// file (write-temp + fsync + rename). Returns IOError on failure.
  Status WriteFile(const std::string& path) const;

  /// Renders the CSV content as a string.
  std::string ToString() const;

  /// Quotes a single cell if it contains a comma, quote, or newline.
  static std::string EscapeCell(const std::string& cell);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nidc

#endif  // NIDC_UTIL_CSV_WRITER_H_
