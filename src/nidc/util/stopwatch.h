// Monotonic wall-clock stopwatch used by the benchmark harnesses
// (Table 1 reports statistics-update time and clustering time separately).

#ifndef NIDC_UTIL_STOPWATCH_H_
#define NIDC_UTIL_STOPWATCH_H_

#include <chrono>
#include <string>

namespace nidc {

/// Starts on construction (or Restart()); Elapsed* read without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Formats a duration as "1min45sec" / "58.3sec" / "12.4ms", mirroring the
  /// units used in the paper's Table 1.
  static std::string FormatDuration(double seconds);

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nidc

#endif  // NIDC_UTIL_STOPWATCH_H_
