#include "nidc/util/cpuid.h"

namespace nidc {

// __builtin_cpu_supports executes CPUID once at startup (libgcc caches the
// result), so these are cheap enough to call on any path. Non-x86 targets
// (or compilers without the builtin) report no SIMD support and the
// dispatcher falls back to the scalar kernels.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))

bool CpuSupportsAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
}

bool CpuSupportsAvx512() { return __builtin_cpu_supports("avx512f"); }

#else

bool CpuSupportsAvx2() { return false; }
bool CpuSupportsAvx512() { return false; }

#endif

}  // namespace nidc
