// Status / Result error handling, modelled after the idiom used by
// LevelDB/RocksDB and Apache Arrow: fallible operations return a Status (or a
// Result<T> carrying a value), never throw across the public API boundary.

#ifndef NIDC_UTIL_STATUS_H_
#define NIDC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace nidc {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no message and is cheap to copy. Use the static
/// factories (`Status::OK()`, `Status::InvalidArgument(...)`) to construct.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : repr_(std::move(value)) {}
  /* implicit */ Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status to the caller.
#define NIDC_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::nidc::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace nidc

#endif  // NIDC_UTIL_STATUS_H_
