// Fault-injecting Env for crash-recovery testing.
//
// Wraps a base Env and counts every mutating filesystem operation (append,
// sync, close, rename, create-dir, remove). The harness arms a "crash" at
// the Nth such operation: that operation fails, every later operation
// fails too (the process is considered dead), and unsynced data is
// resolved according to a CrashFlush policy that models what a real crash
// can leave on disk:
//
//   * kDropUnsynced — nothing past the last successful Sync() survives
//     (power loss with an unhelpful disk cache);
//   * kTornWrite    — an arbitrary prefix of the unsynced bytes survives
//     (page cache partially written back; torn page);
//   * kKeepUnsynced — all buffered bytes survive (plain process kill:
//     the OS page cache is unaffected).
//
// To make the policies meaningful, writable files buffer appended bytes in
// memory and only push them to the base Env on Sync() (or on a clean
// Close()). After a crash, a *fresh* Env reading the same paths sees
// exactly the surviving bytes, so recovery code can be exercised against
// every reachable on-disk state.

#ifndef NIDC_UTIL_FAULT_ENV_H_
#define NIDC_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <unordered_set>

#include "nidc/util/env.h"

namespace nidc {

/// What happens to bytes appended but not yet synced when the crash fires.
enum class CrashFlush {
  kDropUnsynced,
  kTornWrite,
  kKeepUnsynced,
};

class FaultInjectionEnv : public Env {
 public:
  /// `base` must outlive this env.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}
  ~FaultInjectionEnv() override;

  /// Arms the crash: the `nth` mutating operation from now (1-based) fails
  /// and marks the env dead. Unsynced buffers across all open files are
  /// resolved per `flush`.
  void ArmCrashAtOp(uint64_t nth, CrashFlush flush = CrashFlush::kDropUnsynced);

  /// Cancels a pending (not yet fired) crash.
  void Disarm() { countdown_ = 0; }

  bool crashed() const { return crashed_; }

  /// Mutating operations issued so far (including the crashing one); lets a
  /// torture harness discover the total op count of an uninterrupted run.
  uint64_t ops_issued() const { return ops_issued_; }

  // Env interface.
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultWritableFile;

  /// Counts one mutating op; fires the crash when the countdown reaches
  /// zero. Returns the injected error when this op (or an earlier one)
  /// crashed the env.
  Status GuardOp();

  /// Applies the crash-flush policy to every still-open file.
  void FlushSurvivors();

  Status Dead() const {
    return Status::IOError("injected crash: environment is dead");
  }

  Env* base_;
  uint64_t countdown_ = 0;  // 0 = disarmed
  CrashFlush flush_ = CrashFlush::kDropUnsynced;
  bool crashed_ = false;
  uint64_t ops_issued_ = 0;
  std::unordered_set<class FaultWritableFile*> open_files_;
};

}  // namespace nidc

#endif  // NIDC_UTIL_FAULT_ENV_H_
