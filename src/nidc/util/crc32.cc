#include "nidc/util/crc32.h"

#include <array>

namespace nidc {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

constexpr uint32_t kMaskDelta = 0xA282EAD8u;

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xFFu];
  }
  return ~crc;
}

uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace nidc
