// Runtime CPU feature detection for the SIMD kernel dispatch
// (core/kernels). Wraps the compiler's cpuid machinery so the kernels and
// their tests share one answer about what the *running* machine supports —
// compile-time ISA flags only say what the binary contains.

#ifndef NIDC_UTIL_CPUID_H_
#define NIDC_UTIL_CPUID_H_

namespace nidc {

/// True when the running CPU supports AVX2 + F16C (the fp16 loads the
/// quantized scoring pass uses are F16C conversions).
bool CpuSupportsAvx2();

/// True when the running CPU supports the AVX-512 foundation set
/// (AVX512F), which covers every 512-bit instruction the kernels emit:
/// masked arithmetic, expand, gather/scatter and vcvtph2ps on zmm.
bool CpuSupportsAvx512();

}  // namespace nidc

#endif  // NIDC_UTIL_CPUID_H_
