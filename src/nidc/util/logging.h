// Minimal leveled logging. Examples and benches log progress at Info; the
// library itself only logs at Debug so it stays quiet under tests.

#ifndef NIDC_UTIL_LOGGING_H_
#define NIDC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace nidc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Reads the `NIDC_LOG_LEVEL` environment variable ("debug" | "info" |
/// "warning" | "error", case-insensitive; also accepts "warn") and applies
/// it via SetLogLevel. Called once automatically before main(); exposed so
/// tests and long-lived hosts can re-apply a changed environment. Unset or
/// unrecognized values leave the current level untouched.
void InitLogLevelFromEnv();

/// Emits one formatted line to stderr if `level` passes the global filter.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style helper behind the NIDC_LOG macro; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Stream-style helper behind NIDC_CHECK: collects the failure message and
/// aborts the process on destruction. Fires in every build type — unlike
/// assert(), which Release (NDEBUG) builds silently compile away.
class FatalLogLine {
 public:
  FatalLogLine(const char* file, int line, const char* condition);
  ~FatalLogLine();

  template <typename T>
  FatalLogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nidc

/// NIDC_LOG(Info) << "processed " << n << " docs";
#define NIDC_LOG(severity) \
  ::nidc::internal::LogLine(::nidc::LogLevel::k##severity)

/// Fatal invariant check, active in all build types:
///   NIDC_CHECK(it != map.end()) << "unknown doc " << id;
/// The `while` makes the trailing stream well-formed; the FatalLogLine
/// destructor aborts, so the loop body runs at most once.
#define NIDC_CHECK(condition)                \
  while (!(condition))                       \
  ::nidc::internal::FatalLogLine(__FILE__, __LINE__, #condition)

#endif  // NIDC_UTIL_LOGGING_H_
