#include "nidc/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nidc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[nidc %s] %s\n", LevelName(level), message.c_str());
}

namespace internal {

FatalLogLine::FatalLogLine(const char* file, int line,
                           const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": `" << condition
          << "` ";
}

FatalLogLine::~FatalLogLine() {
  // Bypass the level filter: a failed check must always be heard.
  std::fprintf(stderr, "[nidc FATAL] %s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace nidc
