#include "nidc/util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace nidc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Small sequential thread id for log prefixes — stable within a process
// and far more readable than the platform's opaque thread handles.
int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1);
  return id;
}

// ISO-8601 UTC wall time with millisecond resolution, e.g.
// "2026-08-06T14:03:21.042Z".
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buf, size, "%s.%03dZ", date, static_cast<int>(millis));
}

// Runs InitLogLevelFromEnv before main() so NIDC_LOG_LEVEL takes effect
// without any explicit call from hosts.
struct EnvLevelInitializer {
  EnvLevelInitializer() { InitLogLevelFromEnv(); }
};
const EnvLevelInitializer g_env_level_initializer;
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void InitLogLevelFromEnv() {
  const char* raw = std::getenv("NIDC_LOG_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return;
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "warn") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "error") {
    SetLogLevel(LogLevel::kError);
  }
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char stamp[48];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "%s [nidc %s t%d] %s\n", stamp, LevelName(level),
               LogThreadId(), message.c_str());
}

namespace internal {

FatalLogLine::FatalLogLine(const char* file, int line,
                           const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": `" << condition
          << "` ";
}

FatalLogLine::~FatalLogLine() {
  // Bypass the level filter: a failed check must always be heard.
  char stamp[48];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "%s [nidc FATAL t%d] %s\n", stamp, LogThreadId(),
               stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace nidc
