// CRC-32C (Castagnoli) checksums, used to frame write-ahead-log records so
// torn or corrupted tails are detected on recovery. Software table-driven
// implementation; the polynomial matches iSCSI/ext4/LevelDB (0x1EDC6F41).

#ifndef NIDC_UTIL_CRC32_H_
#define NIDC_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace nidc {

/// CRC-32C of `data`, continuing from `seed` (pass the previous return
/// value to checksum data in chunks; 0 starts a fresh checksum).
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

/// Masks a CRC so that storing a CRC inside CRC-protected data does not
/// degrade it into a weak checksum of itself (same scheme as LevelDB).
uint32_t MaskCrc32c(uint32_t crc);
uint32_t UnmaskCrc32c(uint32_t masked);

}  // namespace nidc

#endif  // NIDC_UTIL_CRC32_H_
